package apps

import (
	"packetshader/internal/core"
	"packetshader/internal/hw/gpu"
	"packetshader/internal/ipsec"
	"packetshader/internal/lookup/ipv4"
	"packetshader/internal/model"
	"packetshader/internal/packet"
	"packetshader/internal/route"
)

// IPsecTerm is the tunnel-terminator counterpart of IPsecGW: it
// receives ESP packets, authenticates and decapsulates them (AES-CTR +
// HMAC-SHA1 on the GPU path), then forwards the inner packets with a
// DIR-24-8 lookup — the downstream half of a site-to-site VPN.
type IPsecTerm struct {
	// SAs maps SPI → inbound SA.
	SAs map[uint32]*ipsec.SA
	// Table routes the decapsulated inner packets.
	Table    *ipv4.Table
	NumPorts int

	// Drops per failure class.
	BadSPI, AuthFail, Replayed, Malformed uint64
}

// NewIPsecTerm builds a terminator for the given inbound SAs.
func NewIPsecTerm(sas []*ipsec.SA, tbl *ipv4.Table, numPorts int) *IPsecTerm {
	m := make(map[uint32]*ipsec.SA, len(sas))
	for _, sa := range sas {
		m[sa.SPI] = sa
	}
	return &IPsecTerm{SAs: m, Table: tbl, NumPorts: numPorts}
}

type ipsecTermState struct {
	sa   []*ipsec.SA
	hops []uint16
	// lens caches the decrypt+auth byte volume for the cost model.
	bytes int
}

// Name implements core.App.
func (a *IPsecTerm) Name() string { return "ipsec-terminator" }

// Kernel implements core.App (same crypto profile as the gateway —
// decryption and verification cost what encryption does for CTR+HMAC).
func (a *IPsecTerm) Kernel() *gpu.KernelSpec { return &gpu.KernelIPsec }

// PreShade classifies ESP packets and locates their SA by SPI.
func (a *IPsecTerm) PreShade(c *core.Chunk) core.PreResult {
	n := len(c.Bufs)
	st := &ipsecTermState{sa: make([]*ipsec.SA, n), hops: make([]uint16, n)}
	c.State = st
	var d packet.Decoder
	inBytes := 0
	for i, b := range c.Bufs {
		c.OutPorts[i] = -1
		if err := d.DecodeFast(b.Data); err != nil || !d.Has(packet.LayerESP) {
			a.Malformed++
			continue
		}
		if len(d.Payload) < 4 {
			a.Malformed++
			continue
		}
		spi := uint32(d.Payload[0])<<24 | uint32(d.Payload[1])<<16 |
			uint32(d.Payload[2])<<8 | uint32(d.Payload[3])
		sa := a.SAs[spi]
		if sa == nil {
			a.BadSPI++
			continue
		}
		st.sa[i] = sa
		c.OutPorts[i] = -2
		inBytes += len(b.Data)
	}
	st.bytes = inBytes
	return core.PreResult{
		CPUCycles:   float64(n) * model.AppIPsecPreCycles,
		Threads:     n,
		InBytes:     inBytes,
		OutBytes:    inBytes, // inner packets come back
		StreamBytes: inBytes,
	}
}

// RunKernel authenticates, decrypts, and unwraps every packet; failures
// mark the packet dropped with the failure class counted.
func (a *IPsecTerm) RunKernel(c *core.Chunk) {
	st := c.State.(*ipsecTermState)
	for i, b := range c.Bufs {
		if c.OutPorts[i] != -2 {
			continue
		}
		inner, err := st.sa[i].Decap(b.Data[packet.EthHdrLen:])
		switch err {
		case nil:
		case ipsec.ErrAuth:
			a.AuthFail++
			c.OutPorts[i] = -1
			continue
		case ipsec.ErrReplay:
			a.Replayed++
			c.OutPorts[i] = -1
			continue
		default:
			a.Malformed++
			c.OutPorts[i] = -1
			continue
		}
		// Replace the frame payload with the inner packet and route it.
		var hdr packet.IPv4Hdr
		if _, err := hdr.Decode(inner); err != nil {
			a.Malformed++
			c.OutPorts[i] = -1
			continue
		}
		st.hops[i] = a.Table.Lookup(hdr.Dst)
		need := packet.EthHdrLen + len(inner)
		copy(b.Data[packet.EthHdrLen:need], inner)
		b.Reset(need)
	}
}

// PostShade maps inner-route hops to ports.
func (a *IPsecTerm) PostShade(c *core.Chunk) float64 {
	st := c.State.(*ipsecTermState)
	for i := range c.Bufs {
		if c.OutPorts[i] != -2 {
			continue
		}
		if st.hops[i] == route.NoRoute {
			c.OutPorts[i] = -1
			continue
		}
		c.OutPorts[i] = int(st.hops[i]) % a.NumPorts
	}
	return float64(len(c.Bufs)) * model.AppIPsecPostCycles
}

// CPUWork performs the decapsulation on the CPU.
func (a *IPsecTerm) CPUWork(c *core.Chunk) float64 {
	cycles := 0.0
	for i := range c.Bufs {
		if c.OutPorts[i] == -2 {
			cycles += model.IPsecCPUPerPacketCycles +
				model.IPsecCPUPerByteCycles*float64(len(c.Bufs[i].Data))
		}
	}
	a.RunKernel(c)
	return cycles
}
