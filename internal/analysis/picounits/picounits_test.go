package picounits_test

import (
	"testing"

	"packetshader/internal/analysis/analysistest"
	"packetshader/internal/analysis/picounits"
)

func TestPicoUnits(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), picounits.Analyzer, "picounits")
}
