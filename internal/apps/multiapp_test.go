package apps

import (
	"testing"

	"packetshader/internal/core"
	"packetshader/internal/lookup/ipv4"
	"packetshader/internal/packet"
	"packetshader/internal/route"
)

// classifier: packets destined to 10.200/16 go to the IPsec tunnel
// (app 1); everything else is plain IPv4 forwarding (app 0).
func tunnelClassifier(d *packet.Decoder, b *packet.Buf) int {
	if !d.Has(packet.LayerIPv4) {
		return -1
	}
	if uint32(d.IPv4.Dst)>>16 == 0x0AC8 {
		return 1
	}
	return 0
}

func newMulti(t *testing.T) (*MultiApp, *IPv4Fwd, *IPsecGW) {
	t.Helper()
	entries := []route.Entry{
		{Prefix: route.Prefix{Addr: 0x0B000000, Len: 8}, NextHop: 2},
		{Prefix: route.Prefix{Addr: 0x0AC80000, Len: 16}, NextHop: 5},
	}
	tbl, err := ipv4.Build(entries)
	if err != nil {
		t.Fatal(err)
	}
	fwd := &IPv4Fwd{Table: tbl, NumPorts: 8}
	gw := NewIPsecGW(8)
	return NewMultiApp(tunnelClassifier, 50, fwd, gw), fwd, gw
}

func TestMultiAppSplitsByClassifier(t *testing.T) {
	m, _, _ := newMulti(t)
	c := mkChunk(
		udp4Frame(0x0B010101, 64), // plain → app 0
		udp4Frame(0x0AC80001, 64), // tunnel subnet → app 1
		udp4Frame(0x0B020202, 64), // plain → app 0
	)
	pre := m.PreShade(c)
	st := c.State.(*multiState)
	if st.assignment[0] != 0 || st.assignment[1] != 1 || st.assignment[2] != 0 {
		t.Fatalf("assignment = %v", st.assignment)
	}
	if len(st.subChunks[0].Bufs) != 2 || len(st.subChunks[1].Bufs) != 1 {
		t.Fatalf("sub-chunk sizes %d/%d", len(st.subChunks[0].Bufs), len(st.subChunks[1].Bufs))
	}
	if pre.Threads != 3 {
		t.Errorf("threads = %d, want 3", pre.Threads)
	}
	// IPsec contributes stream bytes; IPv4 does not.
	if pre.StreamBytes == 0 {
		t.Error("no stream bytes from the IPsec sub-chunk")
	}
}

func TestMultiAppEndToEnd(t *testing.T) {
	m, _, gw := newMulti(t)
	c := mkChunk(
		udp4Frame(0x0B010101, 64),
		udp4Frame(0x0AC80001, 128),
	)
	plainLen := len(c.Bufs[0].Data)
	tunnelLen := len(c.Bufs[1].Data)
	m.PreShade(c)
	m.RunKernel(c)
	m.PostShade(c)
	// Plain packet: forwarded per the route table (10.0.0.0/8... dst
	// 0x0B = 11/8 route → hop 2).
	if c.OutPorts[0] != 2 {
		t.Errorf("plain packet port = %d, want 2", c.OutPorts[0])
	}
	if len(c.Bufs[0].Data) != plainLen {
		t.Error("plain packet length changed")
	}
	// Tunnel packet: ESP-encapsulated (grew) and routed to its SA port.
	if len(c.Bufs[1].Data) <= tunnelLen {
		t.Error("tunnel packet not encapsulated")
	}
	if c.OutPorts[1] < 0 || c.OutPorts[1] >= 8 {
		t.Errorf("tunnel packet port = %d", c.OutPorts[1])
	}
	if gw.Errors != 0 {
		t.Errorf("encap errors: %d", gw.Errors)
	}
}

func TestMultiAppUnclassifiedDropped(t *testing.T) {
	m, _, _ := newMulti(t)
	dst := packet.IPv6AddrFromParts(1<<61, 0)
	c := mkChunk(udp6Frame(dst, 78)) // IPv6: classifier returns -1
	m.PreShade(c)
	m.RunKernel(c)
	m.PostShade(c)
	if c.OutPorts[0] != -1 {
		t.Errorf("unclassified packet forwarded to %d", c.OutPorts[0])
	}
}

func TestMultiAppCPUPathAgrees(t *testing.T) {
	mGPU, _, _ := newMulti(t)
	mCPU, _, _ := newMulti(t) // fresh SAs so sequence numbers align
	frames := [][]byte{
		udp4Frame(0x0B010101, 64),
		udp4Frame(0x0AC80001, 90),
		udp4Frame(0x0B030303, 200),
	}
	g := mkChunk(frames...)
	mGPU.PreShade(g)
	mGPU.RunKernel(g)
	mGPU.PostShade(g)
	c := mkChunk(frames...)
	mCPU.PreShade(c)
	if cyc := mCPU.CPUWork(c); cyc <= 0 {
		t.Error("CPUWork charged nothing")
	}
	mCPU.PostShade(c)
	for i := range frames {
		if g.OutPorts[i] != c.OutPorts[i] {
			t.Fatalf("packet %d: GPU port %d vs CPU port %d", i, g.OutPorts[i], c.OutPorts[i])
		}
		if string(g.Bufs[i].Data) != string(c.Bufs[i].Data) {
			t.Fatalf("packet %d: payloads diverge", i)
		}
	}
}

func TestMultiAppKernelComposesProfiles(t *testing.T) {
	m, _, _ := newMulti(t)
	// All-IPv4 chunk → lookup-like profile, no stream rate.
	c := mkChunk(udp4Frame(0x0B010101, 64), udp4Frame(0x0B010102, 64))
	m.PreShade(c)
	if m.Kernel().StreamBytesPerSec != 0 {
		t.Error("pure-IPv4 mix has a stream rate")
	}
	// Mixed chunk → stream rate from IPsec appears.
	c2 := mkChunk(udp4Frame(0x0B010101, 64), udp4Frame(0x0AC80001, 64))
	m.PreShade(c2)
	if m.Kernel().StreamBytesPerSec == 0 {
		t.Error("mixed chunk lost the IPsec stream profile")
	}
}

func TestMultiAppInRouter(t *testing.T) {
	// End-to-end through the framework in both modes.
	m, _, _ := newMulti(t)
	cfg := core.DefaultConfig()
	cfg.IO.Nodes, cfg.IO.Ports = 1, 2
	cfg.PacketSize = 64
	cfg.OfferedGbpsPerPort = 3
	runRouterApp(t, cfg, m)
}

// runRouterApp drives a router with a 50/50 plain/tunnel source.
func runRouterApp(t *testing.T, cfg core.Config, app core.App) {
	t.Helper()
	for _, mode := range []core.Mode{core.ModeCPUOnly, core.ModeGPU} {
		cfg := cfg
		cfg.Mode = mode
		env := simEnv()
		r := core.New(env, cfg, app)
		r.SetSource(mixSource{})
		r.Start()
		env.Run(simTime(3))
		_, _, tx, _ := r.Engine.AggregateStats()
		if tx == 0 {
			t.Errorf("mode %v: nothing forwarded", mode)
		}
	}
}

type mixSource struct{}

func (mixSource) Fill(b *packet.Buf, port, queue int, seq uint64) {
	dst := packet.IPv4Addr(0x0B000001 + uint32(seq))
	if seq%2 == 0 {
		dst = packet.IPv4Addr(0x0AC80000 | uint32(seq)&0xffff)
	}
	b.Data = packet.BuildUDP4(b.Data[:cap(b.Data)], 64, srcMAC, dstMAC,
		0x0B000099, dst, uint16(seq), uint16(seq>>16))
}
