package packetshader_test

import (
	"strings"
	"testing"

	"packetshader"
	"packetshader/internal/pktgen"
)

// TestOptionPacketSizeReachesGenerator is the regression test for the
// bug class the old syncSourceSize hack papered over: the source is now
// constructed from the resolved config, so WithPacketSize must land in
// the generator no matter where it sits in the option list.
func TestOptionPacketSizeReachesGenerator(t *testing.T) {
	v4 := packetshader.Must(packetshader.IPv4(1000, 3,
		packetshader.WithOfferedGbps(5),
		packetshader.WithPacketSize(512)))
	if s, ok := v4.Router.Source().(*pktgen.UDP4Source); !ok || s.Size != 512 {
		t.Errorf("IPv4 generator size = %+v, want 512", v4.Router.Source())
	}
	v6 := packetshader.Must(packetshader.IPv6(1000, 3,
		packetshader.WithPacketSize(1024),
		packetshader.WithMode(packetshader.ModeCPUOnly)))
	if s, ok := v6.Router.Source().(*pktgen.UDP6Source); !ok || s.Size != 1024 {
		t.Errorf("IPv6 generator size = %+v, want 1024", v6.Router.Source())
	}
	// And the configured size really flows to the wire: mean delivered
	// frame must match, not the 64B default.
	rep := v4.Run(2 * packetshader.Millisecond)
	if rep.DeliveredGbps <= 0 {
		t.Fatal("512B run delivered nothing")
	}
}

// TestReportRoundTripUnchanged pins the redesigned build path: reports
// from two identical constructions must be equal field-for-field, in
// both CPU-only and fault-free GPU mode.
func TestReportRoundTripUnchanged(t *testing.T) {
	run := func(mode packetshader.Mode) packetshader.Report {
		inst := packetshader.Must(packetshader.IPv4(3000, 7,
			packetshader.WithMode(mode)))
		inst.Run(2 * packetshader.Millisecond) // warmup
		return inst.Run(2 * packetshader.Millisecond)
	}
	for _, mode := range []packetshader.Mode{packetshader.ModeCPUOnly, packetshader.ModeGPU} {
		r1, r2 := run(mode), run(mode)
		if r1 != r2 {
			t.Errorf("mode %v: identical builds diverged:\n%+v\n%+v", mode, r1, r2)
		}
		if r1.DegradedTime != 0 {
			t.Errorf("mode %v: fault-free run reports degraded time %v", mode, r1.DegradedTime)
		}
	}
}

func TestFacadeGPUOutage(t *testing.T) {
	inst := packetshader.Must(packetshader.IPv4(2000, 5,
		packetshader.WithGPUOutage(1*packetshader.Millisecond, 2*packetshader.Millisecond)))
	rep := inst.Run(6 * packetshader.Millisecond)
	if rep.Stats.GPUStalls == 0 {
		t.Error("outage produced no watchdog stalls")
	}
	if rep.DegradedTime == 0 {
		t.Error("outage produced no degraded time")
	}
	if rep.DeliveredGbps <= 0 {
		t.Error("throughput collapsed during outage")
	}
}

func TestFacadeLinkFlap(t *testing.T) {
	inst := packetshader.Must(packetshader.IPv4(2000, 5,
		packetshader.WithLinkFlap(0, 1*packetshader.Millisecond, 1*packetshader.Millisecond)))
	rep := inst.Run(4 * packetshader.Millisecond)
	if inst.Router.CarrierDrops() == 0 {
		t.Error("flap produced no carrier drops")
	}
	if rep.DroppedPackets < inst.Router.CarrierDrops() {
		t.Error("Report.DroppedPackets does not include carrier drops")
	}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := packetshader.IPv4(1000, 1, packetshader.WithPacketSize(4000)); err == nil ||
		!strings.Contains(err.Error(), "packet size") {
		t.Errorf("oversized packet accepted: %v", err)
	}
	if _, err := packetshader.IPv6(1000, 1, packetshader.WithStreams(0)); err == nil {
		t.Error("zero streams accepted")
	}
	if _, err := packetshader.IPsec(1, packetshader.WithChunkCap(0)); err == nil {
		t.Error("zero chunk cap accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("Must did not panic on error")
		}
	}()
	packetshader.Must(packetshader.IPv4(1000, 1, packetshader.WithPacketSize(10)))
}
