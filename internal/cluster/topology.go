// topology.go abstracts the fabric's wiring so the event-level
// simulator in fabric.go can run any interconnect, not just the §7 full
// mesh. A Topology enumerates nodes and directed links in a fixed
// creation order (which pins the deterministic barrier-flush order) and
// makes the per-hop routing decision. Two implementations: FullMesh
// reproduces the original mesh exactly (Direct and Valiant routing),
// and LeafSpine is the datacenter-scale two-tier Clos of ROADMAP item
// 2 — L leaves × S spines with ECMP over parallel uplinks, links
// growing O(L·S) instead of the mesh's O(n²).
package cluster

import (
	"errors"
	"fmt"
)

// TopoLink is one directed fabric link: batches from node From
// serialize at Gbps and propagate to node To.
type TopoLink struct {
	From, To int
	Gbps     float64
}

// Topology describes a fabric interconnect to RunFabric. Nodes are
// numbered 0..Nodes()-1; a node's outgoing links are its entries of
// Links() in order, indexed by slot. External nodes own an external
// port: they are the sources and sinks of the traffic matrix (the
// matrix is indexed by external node id, so implementations must
// number external nodes first).
type Topology interface {
	Name() string
	// Nodes is the total node count, Externals how many of them (the
	// first Externals ids) have external ports.
	Nodes() int
	Externals() int
	// ExternalGbps is node i's external port rate (i < Externals);
	// ForwardGbps its packet-processing budget.
	ExternalGbps(i int) float64
	ForwardGbps(i int) float64
	// Links enumerates every directed link once, grouped by From in a
	// fixed order: the k-th link of node i is its egress slot k.
	Links() []TopoLink
	// NextHop picks the egress slot at node i for b (b.dst != i).
	// alive is node i's per-slot link-up state; implementations must
	// not pick a dead slot. ok=false means the batch is unroutable
	// (blackholed) at this node.
	NextHop(i int, b *batch, alive []bool) (slot int, ok bool)
	Validate() error
}

// FullMesh is the original §7 scale-out fabric: every node pairs with
// every other over a dedicated link, routed Direct or via Valiant
// intermediates. All nodes are external.
type FullMesh struct {
	Cluster Config
	Scheme  Routing
}

// Name implements Topology.
func (m *FullMesh) Name() string { return "mesh-" + m.Scheme.String() }

// Nodes implements Topology.
func (m *FullMesh) Nodes() int { return m.Cluster.Nodes }

// Externals implements Topology: every mesh node has an external port.
func (m *FullMesh) Externals() int { return m.Cluster.Nodes }

// ExternalGbps implements Topology.
func (m *FullMesh) ExternalGbps(int) float64 { return m.Cluster.ExternalGbps }

// ForwardGbps implements Topology.
func (m *FullMesh) ForwardGbps(int) float64 { return m.Cluster.NodeForwardingGbps }

// Links implements Topology: the full mesh in (src, dst) order, exactly
// the creation order the pre-Topology fabric used.
func (m *FullMesh) Links() []TopoLink {
	n := m.Cluster.Nodes
	links := make([]TopoLink, 0, n*(n-1))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j != i {
				links = append(links, TopoLink{From: i, To: j, Gbps: m.Cluster.InternalLinkGbps})
			}
		}
	}
	return links
}

// NextHop implements Topology. Routing is src → via → dst with
// degenerate intermediates collapsing to the direct link, mirroring
// Evaluate's addFlow; the Valiant intermediate comes from the batch's
// RSS flow hash, the way hardware RSS spreads flows over queues.
func (m *FullMesh) NextHop(i int, b *batch, alive []bool) (int, bool) {
	hop := b.dst
	if m.Scheme == VLB && i == b.src {
		if via := int(b.hash % uint32(m.Cluster.Nodes)); via != b.src && via != b.dst {
			hop = via
		}
	}
	slot := hop
	if hop > i {
		slot = hop - 1
	}
	return slot, alive[slot]
}

// Validate implements Topology.
func (m *FullMesh) Validate() error {
	if err := m.Cluster.Validate(); err != nil {
		return err
	}
	if m.Scheme != Direct && m.Scheme != VLB {
		return fmt.Errorf("fabric: scheme %v not modeled (use the analytic Evaluate)", m.Scheme)
	}
	return nil
}

// LeafSpine is a two-tier Clos fabric: Leaves edge nodes (external
// ports, ids 0..Leaves-1) each connect to every one of Spines core
// nodes (ids Leaves..Leaves+Spines-1) over Uplinks parallel links.
// Leaf-to-leaf traffic crosses one spine chosen per flow by ECMP over
// the batch's RSS hash — among the live parallel links of live spines —
// so a fabric of L leaves needs L·S·Uplinks·2 links instead of the
// mesh's L·(L-1).
type LeafSpine struct {
	Leaves, Spines int
	// Uplinks is the number of parallel links between each leaf-spine
	// pair (ECMP width per pair).
	Uplinks int
	// EdgeGbps is each leaf's external port rate; LeafGbps and
	// SpineGbps the forwarding budgets; UplinkGbps each link's rate.
	EdgeGbps   float64
	LeafGbps   float64
	SpineGbps  float64
	UplinkGbps float64
}

// Name implements Topology.
func (t *LeafSpine) Name() string {
	return fmt.Sprintf("leafspine-%dx%d", t.Leaves, t.Spines)
}

// Nodes implements Topology.
func (t *LeafSpine) Nodes() int { return t.Leaves + t.Spines }

// Externals implements Topology: the leaves.
func (t *LeafSpine) Externals() int { return t.Leaves }

// ExternalGbps implements Topology (spines have no external port).
func (t *LeafSpine) ExternalGbps(i int) float64 {
	if i < t.Leaves {
		return t.EdgeGbps
	}
	return 0
}

// ForwardGbps implements Topology.
func (t *LeafSpine) ForwardGbps(i int) float64 {
	if i < t.Leaves {
		return t.LeafGbps
	}
	return t.SpineGbps
}

// Links implements Topology. A leaf's slot s*Uplinks+u is its u-th
// parallel link to spine s; a spine's slot l*Uplinks+u its u-th link
// down to leaf l — pure arithmetic, no routing tables.
func (t *LeafSpine) Links() []TopoLink {
	links := make([]TopoLink, 0, 2*t.Leaves*t.Spines*t.Uplinks)
	for l := 0; l < t.Leaves; l++ {
		for s := 0; s < t.Spines; s++ {
			for u := 0; u < t.Uplinks; u++ {
				links = append(links, TopoLink{From: l, To: t.Leaves + s, Gbps: t.UplinkGbps})
			}
		}
	}
	for s := 0; s < t.Spines; s++ {
		for l := 0; l < t.Leaves; l++ {
			for u := 0; u < t.Uplinks; u++ {
				links = append(links, TopoLink{From: t.Leaves + s, To: l, Gbps: t.UplinkGbps})
			}
		}
	}
	return links
}

// NextHop implements Topology. At a leaf, ECMP picks the hash-th live
// slot among all Spines×Uplinks uplinks, so a flow sticks to one path
// while live-path churn (faults) only remaps hash buckets. At a spine,
// the same hash picks among the Uplinks parallel links down to the
// destination leaf.
func (t *LeafSpine) NextHop(i int, b *batch, alive []bool) (int, bool) {
	lo, hi := 0, len(alive)
	if i >= t.Leaves {
		lo = b.dst * t.Uplinks
		hi = lo + t.Uplinks
	}
	live := 0
	for s := lo; s < hi; s++ {
		if alive[s] {
			live++
		}
	}
	if live == 0 {
		return 0, false
	}
	pick := int(b.hash % uint32(live))
	for s := lo; s < hi; s++ {
		if alive[s] {
			if pick == 0 {
				return s, true
			}
			pick--
		}
	}
	panic("cluster: LeafSpine.NextHop live-slot accounting")
}

// Validate implements Topology.
func (t *LeafSpine) Validate() error {
	if t.Leaves < 2 || t.Spines < 1 || t.Uplinks < 1 {
		return errors.New("cluster: leaf-spine needs ≥2 leaves, ≥1 spine, ≥1 uplink")
	}
	if t.EdgeGbps <= 0 || t.LeafGbps <= 0 || t.SpineGbps <= 0 || t.UplinkGbps <= 0 {
		return errors.New("cluster: leaf-spine rates must be positive")
	}
	return nil
}
