package openflow

import (
	"math/rand"
	"testing"
	"testing/quick"

	"packetshader/internal/packet"
)

func randKey(rng *rand.Rand) FlowKey {
	var k FlowKey
	k.InPort = uint16(rng.Intn(8))
	rng.Read(k.DlSrc[:])
	rng.Read(k.DlDst[:])
	k.DlVLAN = packet.VLANNone
	k.DlType = packet.EtherTypeIPv4
	k.NwSrc = packet.IPv4Addr(rng.Uint32())
	k.NwDst = packet.IPv4Addr(rng.Uint32())
	k.NwProto = packet.ProtoUDP
	k.TpSrc = uint16(rng.Uint32())
	k.TpDst = uint16(rng.Uint32())
	return k
}

func TestFlowKeyBytesInjective(t *testing.T) {
	// Distinct keys must serialize distinctly (the hash input covers
	// every field).
	rng := rand.New(rand.NewSource(1))
	a := randKey(rng)
	fields := []func(*FlowKey){
		func(k *FlowKey) { k.InPort++ },
		func(k *FlowKey) { k.DlSrc[5]++ },
		func(k *FlowKey) { k.DlDst[0]++ },
		func(k *FlowKey) { k.DlVLAN++ },
		func(k *FlowKey) { k.DlType++ },
		func(k *FlowKey) { k.NwSrc++ },
		func(k *FlowKey) { k.NwDst++ },
		func(k *FlowKey) { k.NwProto++ },
		func(k *FlowKey) { k.TpSrc++ },
		func(k *FlowKey) { k.TpDst++ },
	}
	ab := a.Bytes()
	for i, mut := range fields {
		b := a
		mut(&b)
		if b.Bytes() == ab {
			t.Errorf("field %d not covered by Bytes()", i)
		}
	}
}

func TestHashDistribution(t *testing.T) {
	// The FNV hash over random keys should spread across buckets: no
	// bucket of 256 should get more than ~8x its fair share over 16k
	// keys.
	rng := rand.New(rand.NewSource(2))
	const buckets = 256
	var counts [buckets]int
	const n = 16384
	for i := 0; i < n; i++ {
		k := randKey(rng)
		counts[k.Hash()%buckets]++
	}
	for i, c := range counts {
		if c > 8*n/buckets {
			t.Errorf("bucket %d has %d of %d keys", i, c, n)
		}
	}
}

func TestExtractKeyUDP4(t *testing.T) {
	var buf [128]byte
	src, dst := packet.IPv4Addr(0x0A000001), packet.IPv4Addr(0x0A000002)
	frame := packet.BuildUDP4(buf[:], 64,
		packet.MAC{1, 2, 3, 4, 5, 6}, packet.MAC{7, 8, 9, 10, 11, 12},
		src, dst, 1000, 2000)
	var d packet.Decoder
	if err := d.Decode(frame); err != nil {
		t.Fatal(err)
	}
	k := ExtractKey(&d, 3)
	if k.InPort != 3 || k.NwSrc != src || k.NwDst != dst ||
		k.TpSrc != 1000 || k.TpDst != 2000 ||
		k.NwProto != packet.ProtoUDP || k.DlType != packet.EtherTypeIPv4 {
		t.Errorf("key = %+v", k)
	}
	if k.DlVLAN != packet.VLANNone {
		t.Errorf("VLAN = %d", k.DlVLAN)
	}
}

func TestExactTableInsertLookupRemove(t *testing.T) {
	tbl := NewExactTable(100)
	rng := rand.New(rand.NewSource(3))
	k := randKey(rng)
	if _, _, ok := tbl.Lookup(k); ok {
		t.Error("lookup in empty table hit")
	}
	tbl.Insert(k, Action{Type: ActionOutput, Port: 5})
	a, probes, ok := tbl.Lookup(k)
	if !ok || a.Port != 5 || a.Type != ActionOutput {
		t.Errorf("lookup = %+v, %v", a, ok)
	}
	if probes < 1 {
		t.Errorf("probes = %d", probes)
	}
	// Replace.
	tbl.Insert(k, Action{Type: ActionDrop})
	if a, _, _ := tbl.Lookup(k); a.Type != ActionDrop {
		t.Error("replace failed")
	}
	if tbl.Len() != 1 {
		t.Errorf("len = %d, want 1", tbl.Len())
	}
	if !tbl.Remove(k) {
		t.Error("remove failed")
	}
	if tbl.Remove(k) {
		t.Error("double remove succeeded")
	}
	if _, _, ok := tbl.Lookup(k); ok {
		t.Error("lookup after remove hit")
	}
}

func TestExactTableManyFlows(t *testing.T) {
	tbl := NewExactTable(32768)
	rng := rand.New(rand.NewSource(4))
	keys := make([]FlowKey, 32768)
	for i := range keys {
		keys[i] = randKey(rng)
		tbl.Insert(keys[i], Action{Type: ActionOutput, Port: uint16(i % 8)})
	}
	if tbl.Len() != len(keys) {
		t.Fatalf("len = %d", tbl.Len())
	}
	for i, k := range keys {
		a, _, ok := tbl.Lookup(k)
		if !ok || a.Port != uint16(i%8) {
			t.Fatalf("flow %d: %+v %v", i, a, ok)
		}
	}
	// Random keys must miss (with overwhelming probability).
	misses := 0
	for i := 0; i < 1000; i++ {
		if _, _, ok := tbl.Lookup(randKey(rng)); !ok {
			misses++
		}
	}
	if misses < 999 {
		t.Errorf("only %d/1000 random keys missed", misses)
	}
}

func TestExactTableStats(t *testing.T) {
	tbl := NewExactTable(4)
	rng := rand.New(rand.NewSource(5))
	k := randKey(rng)
	tbl.Insert(k, Action{Type: ActionOutput, Port: 1})
	for i := 0; i < 7; i++ {
		tbl.Lookup(k)
	}
	st, ok := tbl.Stats(k)
	if !ok || st.Packets != 7 {
		t.Errorf("stats = %+v, %v", st, ok)
	}
}

func TestWildcardPriorityOrder(t *testing.T) {
	tbl := NewWildcardTable()
	low := Rule{Wild: WAll, Priority: 1, Action: Action{Type: ActionDrop}}
	high := Rule{Wild: WAll &^ WNwProto, Priority: 10,
		Key:    FlowKey{NwProto: packet.ProtoUDP},
		Action: Action{Type: ActionOutput, Port: 2}}
	tbl.Insert(low)
	tbl.Insert(high)
	k := FlowKey{NwProto: packet.ProtoUDP}
	a, scanned, ok := tbl.Lookup(&k)
	if !ok || a.Type != ActionOutput {
		t.Errorf("high priority rule not matched: %+v", a)
	}
	if scanned != 1 {
		t.Errorf("scanned = %d, want 1 (high priority first)", scanned)
	}
	k2 := FlowKey{NwProto: packet.ProtoTCP}
	a2, scanned2, ok := tbl.Lookup(&k2)
	if !ok || a2.Type != ActionDrop {
		t.Errorf("fallback rule not matched")
	}
	if scanned2 != 2 {
		t.Errorf("scanned = %d, want 2", scanned2)
	}
}

func TestWildcardIPPrefixMatch(t *testing.T) {
	tbl := NewWildcardTable()
	tbl.Insert(Rule{
		Wild:      WAll,
		Key:       FlowKey{NwDst: packet.IPv4Addr(0x0A010000)},
		NwDstBits: 16,
		Priority:  5,
		Action:    Action{Type: ActionOutput, Port: 7},
	})
	in := FlowKey{NwDst: packet.IPv4Addr(0x0A01FFFF)}
	if _, _, ok := tbl.Lookup(&in); !ok {
		t.Error("address inside /16 did not match")
	}
	out := FlowKey{NwDst: packet.IPv4Addr(0x0A020000)}
	if _, _, ok := tbl.Lookup(&out); ok {
		t.Error("address outside /16 matched")
	}
}

func TestWildcardAllFieldsChecked(t *testing.T) {
	// A rule with no wildcards must match only the exact key.
	rng := rand.New(rand.NewSource(6))
	key := randKey(rng)
	tbl := NewWildcardTable()
	tbl.Insert(Rule{Key: key, Wild: 0, NwSrcBits: 32, NwDstBits: 32,
		Priority: 1, Action: Action{Type: ActionOutput, Port: 1}})
	if _, _, ok := tbl.Lookup(&key); !ok {
		t.Fatal("exact rule did not match its own key")
	}
	muts := []func(*FlowKey){
		func(k *FlowKey) { k.InPort++ },
		func(k *FlowKey) { k.DlSrc[0]++ },
		func(k *FlowKey) { k.DlDst[0]++ },
		func(k *FlowKey) { k.DlVLAN ^= 1 },
		func(k *FlowKey) { k.DlType++ },
		func(k *FlowKey) { k.NwSrc++ },
		func(k *FlowKey) { k.NwDst++ },
		func(k *FlowKey) { k.NwProto++ },
		func(k *FlowKey) { k.TpSrc++ },
		func(k *FlowKey) { k.TpDst++ },
	}
	for i, mut := range muts {
		k := key
		mut(&k)
		if _, _, ok := tbl.Lookup(&k); ok {
			t.Errorf("mutation %d still matched exact rule", i)
		}
	}
}

func TestSwitchExactBeatsWildcard(t *testing.T) {
	sw := NewSwitch(16)
	rng := rand.New(rand.NewSource(7))
	k := randKey(rng)
	sw.Wildcard.Insert(Rule{Wild: WAll, Priority: 100,
		Action: Action{Type: ActionOutput, Port: 1}})
	sw.Exact.Insert(k, Action{Type: ActionOutput, Port: 2})
	a, ok := sw.Classify(&k)
	if !ok || a.Port != 2 {
		t.Errorf("exact did not take precedence: %+v", a)
	}
	other := randKey(rng)
	a, ok = sw.Classify(&other)
	if !ok || a.Port != 1 {
		t.Errorf("wildcard fallback failed: %+v", a)
	}
}

func TestSwitchMissGoesToController(t *testing.T) {
	sw := NewSwitch(4)
	rng := rand.New(rand.NewSource(8))
	k := randKey(rng)
	a, ok := sw.Classify(&k)
	if ok || a.Type != ActionController {
		t.Errorf("miss = %+v, %v", a, ok)
	}
	if sw.Misses != 1 {
		t.Errorf("misses = %d", sw.Misses)
	}
}

// Property: Classify is deterministic and exact-match always wins.
func TestClassifyDeterministicProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sw := NewSwitch(64)
		keys := make([]FlowKey, 32)
		for i := range keys {
			keys[i] = randKey(rng)
			sw.Exact.Insert(keys[i], Action{Type: ActionOutput, Port: uint16(i)})
		}
		sw.Wildcard.Insert(Rule{Wild: WAll, Priority: 0, Action: Action{Type: ActionDrop}})
		for i, k := range keys {
			a1, ok1 := sw.Classify(&k)
			a2, ok2 := sw.Classify(&k)
			if !ok1 || !ok2 || a1.Type != a2.Type || a1.Port != a2.Port || a1.Port != uint16(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestInsertStableForEqualPriority(t *testing.T) {
	tbl := NewWildcardTable()
	tbl.Insert(Rule{Wild: WAll, Priority: 5, Action: Action{Type: ActionOutput, Port: 1}})
	tbl.Insert(Rule{Wild: WAll, Priority: 5, Action: Action{Type: ActionOutput, Port: 2}})
	k := FlowKey{}
	a, _, _ := tbl.Lookup(&k)
	if a.Port != 1 {
		t.Errorf("first-inserted rule at equal priority should win, got port %d", a.Port)
	}
}
