package packet

import "packetshader/internal/sim"

// Buf is the unit of packet exchange inside the simulation: frame bytes
// plus receive metadata. It plays the role of the huge-packet-buffer cell
// plus its 8-byte compact metadata (§4.2); the simulation-only fields
// (timestamps) exist for measurement.
type Buf struct {
	// Data is the frame (FCS excluded, as in the paper's size metric).
	Data []byte
	// Port and Queue identify where the packet was received.
	Port  int
	Queue int
	// Hash is the RSS hash computed by the NIC.
	Hash uint32
	// GenAt is the generator's send timestamp (for round-trip latency).
	GenAt sim.Time
	// backing is the full-capacity array the Buf was allocated with.
	backing []byte
	pool    *BufPool
}

// Size returns the frame length in bytes.
func (b *Buf) Size() int { return len(b.Data) }

// Reset re-slices Data to n bytes of the backing array.
func (b *Buf) Reset(n int) {
	if n > cap(b.backing) {
		n = cap(b.backing)
	}
	b.Data = b.backing[:n]
}

// Release returns the Buf to its pool (no-op for pool-less Bufs).
func (b *Buf) Release() {
	if b.pool != nil {
		b.pool.put(b)
	}
}

// BufPool recycles Bufs with fixed-capacity backing storage, mirroring
// the huge packet buffer's fixed 2048-byte cells: the hot path performs
// no per-packet allocation once the pool is warm.
type BufPool struct {
	cell int
	free []*Buf
	// Allocs counts pool misses (new cell allocations), for tests.
	Allocs int
}

// NewBufPool creates a pool of cells of the given capacity.
func NewBufPool(cellBytes int) *BufPool {
	return &BufPool{cell: cellBytes}
}

// Get returns a Buf with Data sized to n bytes.
func (p *BufPool) Get(n int) *Buf {
	var b *Buf
	if len(p.free) > 0 {
		b = p.free[len(p.free)-1]
		p.free = p.free[:len(p.free)-1]
	} else {
		p.Allocs++
		b = &Buf{backing: make([]byte, p.cell), pool: p}
	}
	b.Port, b.Queue, b.Hash, b.GenAt = 0, 0, 0, 0
	b.Reset(n)
	return b
}

func (p *BufPool) put(b *Buf) {
	p.free = append(p.free, b)
}

// FreeCount returns the number of pooled cells (for tests).
func (p *BufPool) FreeCount() int { return len(p.free) }
