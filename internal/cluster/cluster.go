// Package cluster models the §7 "horizontal scaling" direction: several
// PacketShader boxes interconnected in a full mesh, scaled out with
// Valiant Load Balancing (VLB) or direct VLB as RouteBricks does. It
// answers the provisioning questions the paper defers: how aggregate
// external capacity grows with the node count, what internal link
// bandwidth each scheme needs, and how many forwarding operations each
// packet costs — under both benign and adversarial traffic matrices.
//
// The model is flow-level: a traffic matrix is routed by the chosen
// scheme, per-node processing and per-link loads are accumulated, and
// the admissible throughput is the largest uniform scaling of the
// matrix that keeps every resource within capacity.
package cluster

import (
	"errors"
	"fmt"
)

// Routing selects the packet-routing scheme across the mesh.
type Routing int

// Routing schemes.
const (
	// Direct sends i→j traffic on the direct link.
	Direct Routing = iota
	// VLB routes every packet through a uniformly random intermediate
	// (Valiant & Brebner): two internal hops, guaranteed throughput for
	// any admissible matrix at the cost of doubled internal traffic.
	VLB
	// DirectVLB (RouteBricks) sends traffic directly when the direct
	// link has room and load-balances only the excess.
	DirectVLB
)

func (r Routing) String() string {
	switch r {
	case Direct:
		return "direct"
	case VLB:
		return "vlb"
	case DirectVLB:
		return "direct-vlb"
	}
	return fmt.Sprintf("Routing(%d)", int(r))
}

// Config describes the cluster.
type Config struct {
	// Nodes is the number of PacketShader boxes (≥2 for a mesh).
	Nodes int
	// ExternalGbps is each node's external port capacity (ingress and
	// egress each), e.g. 40 for our 4×10GbE per node arrangement.
	ExternalGbps float64
	// NodeForwardingGbps is a box's packet-processing budget: every
	// forwarding operation (external→link, link→link, link→external)
	// consumes it. A single PacketShader box sustains ≈40 Gbps.
	NodeForwardingGbps float64
	// InternalLinkGbps is the capacity of each directed mesh link.
	InternalLinkGbps float64
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.Nodes < 2 {
		return errors.New("cluster: need at least 2 nodes")
	}
	if c.ExternalGbps <= 0 || c.NodeForwardingGbps <= 0 || c.InternalLinkGbps <= 0 {
		return errors.New("cluster: capacities must be positive")
	}
	return nil
}

// Matrix is a traffic matrix: M[i][j] is offered Gbps entering node i's
// external ports destined to node j's external ports. Diagonal entries
// (local switching) are allowed.
type Matrix [][]float64

// Uniform returns the all-to-all matrix with total aggregate offered
// load spread evenly (including local traffic).
func Uniform(n int, totalGbps float64) Matrix {
	m := make(Matrix, n)
	per := totalGbps / float64(n*n)
	for i := range m {
		m[i] = make([]float64, n)
		for j := range m[i] {
			m[i][j] = per
		}
	}
	return m
}

// Permutation returns the worst benign matrix: node i sends everything
// to node (i+1) mod n.
func Permutation(n int, perNodeGbps float64) Matrix {
	m := make(Matrix, n)
	for i := range m {
		m[i] = make([]float64, n)
		m[i][(i+1)%n] = perNodeGbps
	}
	return m
}

// Incast returns the adversarial matrix: every node sends to node 0.
func Incast(n int, perNodeGbps float64) Matrix {
	m := make(Matrix, n)
	for i := range m {
		m[i] = make([]float64, n)
		if i != 0 {
			m[i][0] = perNodeGbps
		}
	}
	return m
}

// Total sums the matrix.
func (m Matrix) Total() float64 {
	var t float64
	for i := range m {
		for j := range m[i] {
			t += m[i][j]
		}
	}
	return t
}

// Result reports the evaluation of a matrix under a scheme.
type Result struct {
	// Admissible is the largest uniform scale factor λ such that λ×M
	// fits every capacity (λ>1 means headroom; λ<1 means overload).
	Admissible float64
	// ThroughputGbps is λ×Total(M) capped at 1×: the traffic actually
	// carried when M is offered.
	ThroughputGbps float64
	// MeanHops is the average forwarding operations per packet.
	MeanHops float64
	// MaxLinkUtil, MaxNodeUtil, MaxExtUtil are the binding utilizations
	// at the offered (unscaled) load.
	MaxLinkUtil, MaxNodeUtil, MaxExtUtil float64
	// Bottleneck names the binding resource.
	Bottleneck string
}

// Evaluate routes m under the scheme and reports admissibility.
func Evaluate(cfg Config, scheme Routing, m Matrix) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	n := cfg.Nodes
	if len(m) != n {
		return Result{}, errors.New("cluster: matrix size mismatch")
	}
	link := make([][]float64, n) // directed link loads
	for i := range link {
		link[i] = make([]float64, n)
	}
	node := make([]float64, n)   // forwarding load per node
	extIn := make([]float64, n)  // external ingress per node
	extOut := make([]float64, n) // external egress per node

	var hopWeighted, total float64
	addFlow := func(src, dst int, gbps float64, via int) {
		// Forwarding operations: one at each node the packet visits.
		extIn[src] += gbps
		extOut[dst] += gbps
		if src == dst {
			node[src] += gbps // local switching: one forward, no detour
			hopWeighted += gbps
			return
		}
		if via == src || via == dst {
			// Direct (or degenerate intermediate): src and dst forward.
			node[src] += gbps
			node[dst] += gbps
			link[src][dst] += gbps
			hopWeighted += 2 * gbps
			return
		}
		node[src] += gbps
		node[via] += gbps
		node[dst] += gbps
		link[src][via] += gbps
		link[via][dst] += gbps
		hopWeighted += 3 * gbps
	}

	for src := range m {
		for dst, gbps := range m[src] {
			if gbps <= 0 {
				continue
			}
			total += gbps
			switch scheme {
			case Direct:
				addFlow(src, dst, gbps, src)
			case VLB:
				// Spread over all n intermediates (including src and
				// dst, which degenerate to the direct path).
				share := gbps / float64(n)
				for via := 0; via < n; via++ {
					addFlow(src, dst, share, via)
				}
			case DirectVLB:
				// Send directly up to the direct link's capacity; spill
				// the rest VLB-style over the other nodes. With fewer
				// than three nodes there is no detour path, so
				// everything goes direct.
				direct := gbps
				if src != dst && n > 2 {
					if room := cfg.InternalLinkGbps - link[src][dst]; direct > room {
						direct = max(room, 0)
					}
				}
				addFlow(src, dst, direct, src)
				if excess := gbps - direct; excess > 1e-12 {
					share := excess / float64(n-2)
					for via := 0; via < n; via++ {
						if via == src || via == dst {
							continue
						}
						addFlow(src, dst, share, via)
					}
				}
			}
		}
	}

	res := Result{}
	if total == 0 {
		res.Admissible = 1
		return res, nil
	}
	res.MeanHops = hopWeighted / total
	worst := 0.0
	consider := func(util float64, name string) {
		if util > worst {
			worst = util
			res.Bottleneck = name
		}
	}
	for i := 0; i < n; i++ {
		consider(node[i]/cfg.NodeForwardingGbps, fmt.Sprintf("node %d forwarding", i))
		consider(extIn[i]/cfg.ExternalGbps, fmt.Sprintf("node %d external ingress", i))
		consider(extOut[i]/cfg.ExternalGbps, fmt.Sprintf("node %d external egress", i))
		if node[i]/cfg.NodeForwardingGbps > res.MaxNodeUtil {
			res.MaxNodeUtil = node[i] / cfg.NodeForwardingGbps
		}
		u := extIn[i] / cfg.ExternalGbps
		if v := extOut[i] / cfg.ExternalGbps; v > u {
			u = v
		}
		if u > res.MaxExtUtil {
			res.MaxExtUtil = u
		}
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			lu := link[i][j] / cfg.InternalLinkGbps
			consider(lu, fmt.Sprintf("link %d->%d", i, j))
			if lu > res.MaxLinkUtil {
				res.MaxLinkUtil = lu
			}
		}
	}
	if worst == 0 {
		res.Admissible = 1
	} else {
		res.Admissible = 1 / worst
	}
	res.ThroughputGbps = total * min(res.Admissible, 1)
	return res, nil
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func min(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
