package sim

// Server is a FIFO single-server resource: a hardware unit (DMA engine,
// PCIe link, GPU copy engine) that handles one request at a time. Use
// charges the caller the service duration plus any queueing delay behind
// earlier requests. This serializing behaviour is what creates contention
// on shared links in the simulation.
type Server struct {
	env  *Env
	name string
	id   int // creation order within the env, for stable identity
	// freeAt is the virtual time at which the server finishes its
	// currently queued work.
	freeAt Time
	// busy accumulates total service time, for utilization accounting.
	busy Duration
}

// NewServer creates a named FIFO server.
func NewServer(env *Env, name string) *Server {
	env.serverSeq++
	return &Server{env: env, name: name, id: env.serverSeq}
}

// Name returns the name given at creation.
func (s *Server) Name() string { return s.name }

// ID returns the server's creation-order identity within its Env,
// starting at 1. Names may repeat (two IOHs both have an "up" engine);
// IDs never do.
func (s *Server) ID() int { return s.id }

// reserve extends the server's queue by d starting no earlier than
// notBefore, updates busy accounting, notifies the env hooks, and
// returns the completion time.
func (s *Server) reserve(notBefore Time, d Duration) Time {
	if s.freeAt < s.env.now {
		s.freeAt = s.env.now
	}
	if s.freeAt < notBefore {
		s.freeAt = notBefore
	}
	start := s.freeAt
	s.freeAt += Time(d)
	s.busy += d
	if s.env.hooks != nil && d > 0 {
		s.env.hooks.ServerBusy(s, start, s.freeAt)
	}
	return s.freeAt
}

// Use blocks p until the server has completed all earlier requests and
// then for d of service time. It returns the total time p waited
// (queueing + service).
func (s *Server) Use(p *Proc, d Duration) Duration {
	start := s.env.now
	p.SleepUntil(s.reserve(start, d))
	return Duration(s.env.now - start)
}

// Schedule reserves d of service time without blocking and returns the
// completion time. Useful for fire-and-forget DMA where the initiator
// does not wait (e.g. NIC TX descriptors).
func (s *Server) Schedule(d Duration) Time {
	return s.reserve(s.env.now, d)
}

// Now returns the server's environment time (convenience for callers
// computing express completions).
func (s *Server) Now() Time { return s.env.now }

// ScheduleAt reserves d of service time that may not begin before
// notBefore (used to express pipeline dependencies: "this copy starts
// only after that kernel finishes"). Returns the completion time.
func (s *Server) ScheduleAt(notBefore Time, d Duration) Time {
	return s.reserve(notBefore, d)
}

// Backlog returns how far in the future the server's queue currently
// extends.
func (s *Server) Backlog() Duration {
	if s.freeAt <= s.env.now {
		return 0
	}
	return Duration(s.freeAt - s.env.now)
}

// BusyTime returns the cumulative service time charged so far.
func (s *Server) BusyTime() Duration { return s.busy }

// Utilization returns busy time divided by elapsed time since t0.
func (s *Server) Utilization(t0 Time) float64 {
	elapsed := s.env.now - t0
	if elapsed <= 0 {
		return 0
	}
	return float64(s.busy) / float64(elapsed)
}

// Signal is a broadcast condition: processes Wait on it and a later Fire
// releases all current waiters at the same instant. Fires with no waiters
// are not remembered (it is a condition variable, not a latch).
type Signal struct {
	env     *Env
	waiters []*Proc
}

// NewSignal creates a signal in env.
func NewSignal(env *Env) *Signal { return &Signal{env: env} }

// Wait blocks p until the next Fire.
func (s *Signal) Wait(p *Proc) {
	s.waiters = append(s.waiters, p)
	p.yield()
}

// Fire wakes every process currently waiting, in FIFO order (typed
// wakeups: no closure per waiter).
func (s *Signal) Fire() {
	ws := s.waiters
	s.waiters = s.waiters[:0]
	for _, w := range ws {
		s.env.wake(w, s.env.now)
	}
}

// Waiters returns the number of processes currently blocked on the signal.
func (s *Signal) Waiters() int { return len(s.waiters) }
