// ipsecgw: an IPsec VPN gateway scenario — the §6.2.4 workload with the
// §5.4 "concurrent copy and execution" optimization, demonstrating that
// the ESP output of the simulated router is real, verifiable IPsec: a
// software peer decapsulates and authenticates captured packets.
package main

import (
	"fmt"
	"log"

	"packetshader"
	"packetshader/internal/ipsec"
	"packetshader/internal/packet"
)

func main() {
	// Demonstrate the crypto substrate first: tunnel a packet through
	// an SA pair and verify the round trip.
	enc := []byte("0123456789abcdef")
	auth := []byte("authentication-key")
	sender := ipsec.NewSA(0x1001, 0xdecafbad, enc, auth, 0x0A000001, 0x0A000002)
	receiver := ipsec.NewSA(0x1001, 0xdecafbad, enc, auth, 0x0A000001, 0x0A000002)

	var frameBuf [2048]byte
	frame := packet.BuildUDP4(frameBuf[:], 200,
		packet.MAC{2, 0, 0, 0, 0, 1}, packet.MAC{2, 0, 0, 0, 0, 2},
		0x0B000001, 0x0C000002, 4500, 4500)
	inner := frame[packet.EthHdrLen:]
	outer, err := sender.Encap(make([]byte, 2048), inner)
	if err != nil {
		log.Fatal(err)
	}
	got, err := receiver.Decap(outer)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ESP tunnel: %dB inner -> %dB outer -> decapsulated %dB, authenticated OK\n",
		len(inner), len(outer), len(got))

	// Tampering must be detected.
	outer2, _ := sender.Encap(make([]byte, 2048), inner)
	outer2[40] ^= 1
	if _, err := receiver.Decap(outer2); err == ipsec.ErrAuth {
		fmt.Println("tampered packet rejected (ICV mismatch)")
	}

	// Now the gateway at scale: Figure 11(d)'s size sweep.
	fmt.Println("\nIPsec gateway throughput, input Gbps (CPU-only vs CPU+GPU):")
	for _, size := range []int{64, 512, 1514} {
		row := fmt.Sprintf("  %4dB:", size)
		for _, mode := range []packetshader.Mode{packetshader.ModeCPUOnly, packetshader.ModeGPU} {
			inst := packetshader.Must(packetshader.IPsec(13,
				packetshader.WithMode(mode),
				packetshader.WithPacketSize(size),
				packetshader.WithStreams(4))) // §5.4: streams help IPsec
			inst.Run(20 * packetshader.Millisecond) // warmup (rings fill slowly)
			rep := inst.Run(8 * packetshader.Millisecond)
			row += fmt.Sprintf("  %5.1f", rep.InputGbps)
		}
		fmt.Println(row)
	}
	fmt.Println("paper: 2.9-5.7 CPU-only; 10.2 (64B) to 20.0 (1514B) CPU+GPU")
}
