// Package sim is a deterministic, process-oriented discrete-event
// simulation engine. It provides a virtual clock, cooperatively scheduled
// processes (one runnable at a time, SimPy-style), blocking FIFO queues,
// serializing servers for bandwidth links, and broadcast signals.
//
// All PacketShader hardware models (NICs, PCIe links, GPU, CPU cores) run
// as sim processes, so every throughput and latency number reported by the
// benchmark harness is measured in virtual hardware time and is therefore
// independent of the host machine's speed and of Go's garbage collector.
//
// The engine is built for an allocation-free steady state: events are
// typed values (a process wakeup carries the *Proc directly; closures
// exist only for true callbacks) stored in slab-like slices — a binary
// heap for future events and a FIFO ring for same-instant wakeups — so
// Sleep and queue hand-offs allocate nothing and same-instant wakeups
// skip the heap entirely. Control transfers directly from the yielding
// process to the next runnable one with a single channel operation; there
// is no separate scheduler goroutine to bounce through.
package sim

import (
	"fmt"
	"math"
	"runtime"
)

// Time is an absolute point on the virtual clock, in picoseconds. The
// picosecond granularity keeps sub-nanosecond events (one 64B frame lasts
// 6.7ns on a 10GbE link) exact while int64 still covers over 100 days of
// simulated time.
type Time int64

// Duration is a span of virtual time in picoseconds.
type Duration int64

// Common durations.
const (
	Picosecond  Duration = 1
	Nanosecond           = 1000 * Picosecond
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Seconds returns d as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Microseconds returns d as a floating-point number of microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

// DurationFromSeconds converts seconds to a Duration, rounding to the
// nearest picosecond with ties away from zero. (A naive `+0.5` then
// truncate rounds negative inputs toward +inf: -1.5ps would become
// -1ps instead of -2ps, and -0.7ps would become 0.)
func DurationFromSeconds(s float64) Duration {
	return Duration(math.Round(s * float64(Second)))
}

func (t Time) String() string {
	return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
}

// event is one scheduled occurrence, stored by value. p != nil is a
// typed process wakeup (Sleep, queue/signal hand-off): no closure is
// built and nothing is allocated. fn is reserved for true scheduler
// callbacks registered through At/After.
type event struct {
	at  Time
	seq uint64 // tie-breaker: FIFO among simultaneous events
	p   *Proc
	fn  func()
}

// eventHeap is a binary min-heap over (at, seq), implemented directly on
// the slice so events are moved by value within one reusable backing
// array. (container/heap would box every event into an interface value,
// one heap allocation per scheduled event.)
//
// The production event store is the hierarchical timer wheel in
// wheel.go; the heap is retained as the reference implementation the
// wheel's differential tests execute against (see wheel_test.go), so
// the exact (at, seq) contract stays pinned by executable code rather
// than prose.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(ev event) {
	s := append(*h, ev)
	*h = s
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{} // clear the vacated slot: drop fn/Proc references
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && s.less(l, min) {
			min = l
		}
		if r < n && s.less(r, min) {
			min = r
		}
		if min == i {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return top
}

// Hooks receives simulation-level trace callbacks. Implementations must
// not block or schedule events: hooks run synchronously inside resource
// operations, possibly in scheduler context, and exist purely to record.
// internal/obs provides the standard implementation.
type Hooks interface {
	// ServerBusy reports one reservation occupying server s over the
	// half-open virtual-time interval [start, end). FIFO servers never
	// idle mid-queue, so these intervals tile the server's busy time
	// exactly: their total duration equals Server.BusyTime.
	ServerBusy(s *Server, start, end Time)
}

// Env is a simulation environment: a virtual clock plus an event queue.
// The zero value is not usable; create one with NewEnv.
type Env struct {
	now Time
	// events holds future events in a hierarchical timer wheel; imm
	// holds events scheduled at the current instant, which run in FIFO
	// order without a wheel round-trip. The split preserves the global
	// (at, seq) execution order exactly: a wheel event at time T was
	// necessarily scheduled before the clock reached T (same-instant
	// schedules go to imm), so its seq is smaller than that of every
	// imm event, and next() runs it first.
	events  timerWheel
	imm     Ring[event]
	seq     uint64
	until   Time          // run horizon while running (0 = none)
	mainCh  chan struct{} // returns control to the Run caller at termination
	closeCh chan struct{} // terminated processes acknowledge Close here
	nProcs  int           // live (started, unfinished) processes
	procs   []*Proc       // every started process, in Go order (for Close)
	running bool
	closed  bool

	hooks     Hooks
	serverSeq int // server IDs in creation order (deterministic)
}

// NewEnv returns an empty environment with the clock at zero.
func NewEnv() *Env {
	return &Env{mainCh: make(chan struct{}), closeCh: make(chan struct{})}
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// SetHooks installs h as the environment's trace hooks (nil disables
// them). When no hooks are installed the per-reservation cost is a
// single nil check.
func (e *Env) SetHooks(h Hooks) { e.hooks = h }

// schedule enqueues a typed event at absolute time at (clamped to now).
func (e *Env) schedule(at Time, p *Proc, fn func()) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	ev := event{at: at, seq: e.seq, p: p, fn: fn}
	if at == e.now {
		e.imm.PushBack(ev)
		return
	}
	e.events.push(ev)
}

// wake schedules a typed wakeup for p at absolute time at. This is the
// allocation-free path used by Sleep, queues and signals.
func (e *Env) wake(p *Proc, at Time) { e.schedule(at, p, nil) }

// At schedules fn to run at absolute virtual time t (clamped to now).
// fn runs in scheduler context and must not block; to perform blocking
// work, have it wake a process instead.
func (e *Env) At(t Time, fn func()) { e.schedule(t, nil, fn) }

// After schedules fn to run d from now.
func (e *Env) After(d Duration, fn func()) { e.schedule(e.now+Time(d), nil, fn) }

// next pops the earliest pending event in exact (at, seq) order, or
// reports termination (false) when the queue is empty or the next event
// lies beyond the run horizon. imm events are always at the current
// instant (time cannot advance past them), so they never exceed the
// horizon; wheel events at the current instant carry smaller seqs than
// imm ones and run first.
func (e *Env) next() (event, bool) {
	at, ok := e.events.peekAt()
	if !(ok && at == e.now) && e.imm.Len() > 0 {
		return e.imm.PopFront(), true
	}
	if !ok {
		return event{}, false
	}
	if e.until > 0 && at > e.until {
		e.now = e.until
		return event{}, false
	}
	return e.events.popMin(), true
}

// NextEventAt returns the absolute time of the earliest pending event,
// or false if nothing is scheduled. The partition scheduler (World) uses
// it to size windows and skip idle stretches of virtual time; the peek
// never restructures the wheel, so it is safe between windows when
// still-earlier arrivals may yet be scheduled over links.
func (e *Env) NextEventAt() (Time, bool) {
	if e.imm.Len() > 0 {
		return e.now, true
	}
	return e.events.peekAt()
}

// Run executes events until the queue drains or the clock passes until
// (until <= 0 means run to completion). It returns the time of the last
// executed event. Processes still blocked on queues when the event queue
// drains are simply abandoned (their goroutines stay parked; a later Run
// that reaches their wakeups resumes them, and Close releases them).
func (e *Env) Run(until Time) Time {
	if e.closed {
		panic("sim: Env.Run on closed Env")
	}
	if e.running {
		panic("sim: Env.Run re-entered")
	}
	e.running = true
	defer func() { e.running = false }()
	e.until = until
	e.drive(nil, false)
	return e.now
}

// drive executes events in the calling goroutine until either the
// calling process's own wakeup is reached (self != nil) or the run
// terminates. It is the single scheduling primitive: the Run caller
// (self == nil), yielding processes, and ending processes (ending true)
// all drive the loop themselves, so control passes directly from one
// process to the next with exactly one channel operation per context
// switch — there is no scheduler goroutine to bounce through, and a
// process whose own wakeup comes next resumes with no channel operation
// at all.
func (e *Env) drive(self *Proc, ending bool) {
	for {
		ev, ok := e.next()
		if !ok {
			// The run is over. The Run caller returns; anyone else hands
			// the control token back to it first.
			if self == nil {
				return
			}
			e.mainCh <- struct{}{}
			if !ending {
				// Park until a later Run reaches our wakeup — or Close
				// terminates us.
				<-self.resume
				e.checkClosed(self)
			}
			return
		}
		e.now = ev.at
		if ev.p == nil {
			ev.fn() // scheduler-context callback
			continue
		}
		if ev.p == self && !ending {
			return // our own wakeup: resume user code directly
		}
		// Hand control to the woken process; then this goroutine parks
		// (yield), exits (ending), or awaits termination (Run caller).
		ev.p.resume <- struct{}{}
		if ending {
			return
		}
		if self == nil {
			<-e.mainCh
			return
		}
		<-self.resume
		e.checkClosed(self)
		return
	}
}

// checkClosed runs on a process's own goroutine immediately after it is
// resumed at a park point. If the environment has been closed, the resume
// came from Close: the process terminates here via runtime.Goexit, which
// runs its deferred functions (they must not re-enter the simulation) and
// then the wrapper in Go acknowledges on closeCh.
func (e *Env) checkClosed(p *Proc) {
	if !e.closed {
		return
	}
	p.killed = true
	p.done = true
	e.nProcs--
	runtime.Goexit()
}

// Close terminates every process still parked in the environment —
// processes abandoned mid-block when the event queue drained — releasing
// their goroutines. Without it, each Env leaks one goroutine per blocked
// process for the life of the host program, which adds up across
// thousands of sweep-point environments.
//
// Close must not be called while Run is in progress. It is idempotent;
// after the first call the environment is dead (Run and Go panic).
// Terminated processes unwind via runtime.Goexit, so their deferred
// functions run, but those functions must not re-enter the simulation.
// Processes are released in creation order, one at a time, so teardown is
// as deterministic as the run itself.
func (e *Env) Close() {
	if e.running {
		panic("sim: Env.Close during Run")
	}
	if e.closed {
		return
	}
	e.closed = true
	for _, p := range e.procs {
		if p.done {
			continue
		}
		p.resume <- struct{}{}
		<-e.closeCh
	}
	e.procs = nil
	e.events.reset()
	e.imm = Ring[event]{}
}
