package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"packetshader/internal/sim"
)

// serverStat accumulates one sim.Server's occupancy.
type serverStat struct {
	name  string
	id    int
	track TrackID
	busy  sim.Duration
	spans uint64
	last  sim.Time // end of the latest reservation
}

// ServerSampler implements sim.Hooks: every reservation on every
// sim.Server (PCIe links, IOH engines, GPU copy/exec engines, NIC wire
// serializers) becomes a span on a per-resource trace track plus busy
// accounting for the occupancy report. Because FIFO servers are never
// idle mid-queue, the emitted spans tile each server's busy time
// exactly — coverage of simulated busy time is 100% by construction.
//
// Install with env.SetHooks(obs.NewServerSampler(tracer)). The tracer
// may be nil: the sampler then only keeps the occupancy totals.
type ServerSampler struct {
	tr    *Tracer
	byID  map[int]*serverStat
	order []*serverStat // first-use order (deterministic)
}

// NewServerSampler creates a sampler recording spans into tr (nil for
// occupancy accounting only).
func NewServerSampler(tr *Tracer) *ServerSampler {
	return &ServerSampler{tr: tr, byID: map[int]*serverStat{}}
}

// ServerBusy implements sim.Hooks.
func (h *ServerSampler) ServerBusy(s *sim.Server, start, end sim.Time) {
	st := h.byID[s.ID()]
	if st == nil {
		st = &serverStat{
			name:  s.Name(),
			id:    s.ID(),
			track: h.tr.Track("resources", fmt.Sprintf("%s#%d", s.Name(), s.ID())),
		}
		h.byID[s.ID()] = st
		h.order = append(h.order, st)
	}
	st.busy += sim.Duration(end - start)
	st.spans++
	if end > st.last {
		st.last = end
	}
	h.tr.SpanUntil(st.track, s.Name(), start, end)
}

// BusyTime returns the accumulated busy time of the server with the
// given ID (0 if it never ran).
func (h *ServerSampler) BusyTime(id int) sim.Duration {
	if st := h.byID[id]; st != nil {
		return st.busy
	}
	return 0
}

// Resources returns how many distinct servers have been observed.
func (h *ServerSampler) Resources() int { return len(h.order) }

// BusyByName sums the busy time of every observed server whose name
// starts with prefix — e.g. "ioh" for both IOH engines, "gpu" for GPU
// links plus exec engines.
func (h *ServerSampler) BusyByName(prefix string) sim.Duration {
	var total sim.Duration
	for _, st := range h.order {
		if strings.HasPrefix(st.name, prefix) {
			total += st.busy
		}
	}
	return total
}

// WriteReport dumps per-resource occupancy accumulated since the
// sampler was installed, sorted by (name, id), one line per resource:
//
//	util <name>#<id> busy=<us> spans=<n> occ=<permille>
//
// Occupancy is busy/now in permille, integer arithmetic only (install
// the sampler at virtual time zero for meaningful fractions).
// Reservations extend into the future (Schedule), so occupancy can
// transiently exceed 1000.
func (h *ServerSampler) WriteReport(w io.Writer, now sim.Time) error {
	ew := &errWriter{w: w}
	stats := make([]*serverStat, len(h.order))
	copy(stats, h.order)
	sort.Slice(stats, func(i, j int) bool {
		if stats[i].name != stats[j].name {
			return stats[i].name < stats[j].name
		}
		return stats[i].id < stats[j].id
	})
	elapsed := int64(now)
	for _, st := range stats {
		occ := int64(0)
		if elapsed > 0 {
			occ = int64(st.busy) * 1000 / elapsed
		}
		fmt.Fprintf(ew, "util %s#%d busy=%sus spans=%d occ=%d\n",
			st.name, st.id, micros(int64(st.busy)), st.spans, occ)
	}
	return ew.err
}
