package ipv4

import (
	"math/rand"
	"testing"

	"packetshader/internal/packet"
	"packetshader/internal/route"
)

func TestDynamicInsertLookup(t *testing.T) {
	d, err := NewDynamic(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Insert(route.Entry{
		Prefix: route.Prefix{Addr: 0x0A000000, Len: 8}, NextHop: 3}); err != nil {
		t.Fatal(err)
	}
	if got := d.Lookup(0x0A123456); got != 3 {
		t.Errorf("lookup = %d, want 3", got)
	}
	if got := d.Lookup(0x0B000000); got != route.NoRoute {
		t.Errorf("outside = %d, want miss", got)
	}
}

func TestDynamicInsertLongerOverridesInRange(t *testing.T) {
	d, _ := NewDynamic([]route.Entry{
		{Prefix: route.Prefix{Addr: 0x0A000000, Len: 8}, NextHop: 1},
	})
	d.Insert(route.Entry{Prefix: route.Prefix{Addr: 0x0A010000, Len: 16}, NextHop: 2})
	if got := d.Lookup(0x0A010001); got != 2 {
		t.Errorf("/16 = %d", got)
	}
	if got := d.Lookup(0x0A020001); got != 1 {
		t.Errorf("outside /16 = %d", got)
	}
	// Inserting a SHORTER prefix must not override the longer one.
	d.Insert(route.Entry{Prefix: route.Prefix{Addr: 0x0A000000, Len: 10}, NextHop: 7})
	if got := d.Lookup(0x0A010001); got != 2 {
		t.Errorf("/16 clobbered by later /10: %d", got)
	}
	if got := d.Lookup(0x0A200001); got != 7 {
		t.Errorf("/10 not installed: %d", got)
	}
}

func TestDynamicRemoveRestoresCoveringPrefix(t *testing.T) {
	d, _ := NewDynamic([]route.Entry{
		{Prefix: route.Prefix{Addr: 0x0A000000, Len: 8}, NextHop: 1},
		{Prefix: route.Prefix{Addr: 0x0A010000, Len: 16}, NextHop: 2},
	})
	ok, err := d.Remove(route.Prefix{Addr: 0x0A010000, Len: 16})
	if !ok || err != nil {
		t.Fatalf("remove = %v, %v", ok, err)
	}
	if got := d.Lookup(0x0A010001); got != 1 {
		t.Errorf("after remove = %d, want the covering /8's 1", got)
	}
	// Removing again reports absence.
	if ok, _ := d.Remove(route.Prefix{Addr: 0x0A010000, Len: 16}); ok {
		t.Error("double remove reported success")
	}
}

func TestDynamicLongPrefixExpansion(t *testing.T) {
	d, _ := NewDynamic([]route.Entry{
		{Prefix: route.Prefix{Addr: 0xC0A80000, Len: 16}, NextHop: 5},
	})
	d.Insert(route.Entry{Prefix: route.Prefix{Addr: 0xC0A80180, Len: 25}, NextHop: 9})
	if got := d.Lookup(0xC0A801C0); got != 9 {
		t.Errorf("/25 = %d", got)
	}
	if got := d.Lookup(0xC0A80101); got != 5 {
		t.Errorf("same /24 outside /25 = %d, want the /16", got)
	}
	ok, _ := d.Remove(route.Prefix{Addr: 0xC0A80180, Len: 25})
	if !ok {
		t.Fatal("remove failed")
	}
	if got := d.Lookup(0xC0A801C0); got != 5 {
		t.Errorf("after removing /25 = %d, want the /16", got)
	}
}

func TestDynamicInsertIntoExpandedBlock(t *testing.T) {
	// A /16 inserted after a /26 expanded one of its blocks: the
	// expanded cells must take the /26 where covered and the /16
	// elsewhere.
	d, _ := NewDynamic(nil)
	d.Insert(route.Entry{Prefix: route.Prefix{Addr: 0xC0A80140, Len: 26}, NextHop: 9})
	d.Insert(route.Entry{Prefix: route.Prefix{Addr: 0xC0A80000, Len: 16}, NextHop: 5})
	if got := d.Lookup(0xC0A80150); got != 9 {
		t.Errorf("inside /26 = %d", got)
	}
	if got := d.Lookup(0xC0A80101); got != 5 {
		t.Errorf("same block outside /26 = %d, want 5", got)
	}
	if got := d.Lookup(0xC0A8FF01); got != 5 {
		t.Errorf("other block = %d, want 5", got)
	}
}

func TestDynamicNextHopRange(t *testing.T) {
	d, _ := NewDynamic(nil)
	err := d.Insert(route.Entry{Prefix: route.Prefix{Len: 8}, NextHop: MaxNextHop + 1})
	if err != ErrNextHopRange {
		t.Errorf("err = %v", err)
	}
}

// TestDynamicAgainstRebuildProperty is the central correctness check: a
// random churn of inserts and removes must leave the incrementally
// updated table identical (as a lookup function) to a from-scratch
// rebuild of the surviving route set.
func TestDynamicAgainstRebuildProperty(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		initial := route.GenerateBGPTable(800, 32, seed)
		d, err := NewDynamic(initial)
		if err != nil {
			t.Fatal(err)
		}
		live := map[route.Prefix]uint16{}
		for _, e := range initial {
			live[e.Prefix] = e.NextHop
		}
		extra := route.GenerateBGPTable(400, 32, seed+1000)
		for step := 0; step < 600; step++ {
			if rng.Intn(2) == 0 || len(live) == 0 {
				e := extra[rng.Intn(len(extra))]
				e.NextHop = uint16(rng.Intn(32))
				if err := d.Insert(e); err != nil {
					t.Fatal(err)
				}
				live[e.Prefix] = e.NextHop
			} else {
				// Remove a random live prefix.
				k := rng.Intn(len(live))
				for p := range live {
					if k == 0 {
						ok, err := d.Remove(p)
						if !ok || err != nil {
							t.Fatalf("remove %v: %v %v", p, ok, err)
						}
						delete(live, p)
						break
					}
					k--
				}
			}
		}
		var entries []route.Entry
		for p, h := range live {
			entries = append(entries, route.Entry{Prefix: p, NextHop: h})
		}
		rebuilt, err := Build(entries)
		if err != nil {
			t.Fatal(err)
		}
		// Compare on random addresses and on addresses inside live and
		// removed prefixes.
		for i := 0; i < 4000; i++ {
			addr := packet.IPv4Addr(rng.Uint32())
			if i%3 == 1 && len(entries) > 0 {
				e := entries[rng.Intn(len(entries))]
				addr = packet.IPv4Addr(uint32(e.Prefix.Addr) | (rng.Uint32() &^ e.Prefix.Mask()))
			} else if i%3 == 2 {
				e := extra[rng.Intn(len(extra))]
				addr = packet.IPv4Addr(uint32(e.Prefix.Addr) | (rng.Uint32() &^ e.Prefix.Mask()))
			}
			if got, want := d.Lookup(addr), rebuilt.Lookup(addr); got != want {
				t.Fatalf("seed %d: Lookup(%v) = %d, rebuild says %d", seed, addr, got, want)
			}
		}
	}
}

// TestDynamicUpdateTouchesOnlyAffectedRange: cells outside the updated
// prefix must be bit-identical before and after.
func TestDynamicUpdateTouchesOnlyAffectedRange(t *testing.T) {
	entries := route.GenerateBGPTable(2000, 16, 9)
	d, _ := NewDynamic(entries)
	before := make([]uint16, len(d.tbl24))
	copy(before, d.tbl24)
	p := route.Prefix{Addr: 0x55AA0000, Len: 16}
	d.Insert(route.Entry{Prefix: p, NextHop: 7})
	lo := uint32(p.Addr) >> 8
	hi := lo + 1<<8
	for i := range d.tbl24 {
		inside := uint32(i) >= lo && uint32(i) < hi
		if !inside && d.tbl24[i] != before[i] {
			t.Fatalf("cell %#x outside /16 changed", i)
		}
	}
}

func BenchmarkDynamicInsertSlash24(b *testing.B) {
	entries := route.GenerateBGPTable(100000, 64, 1)
	d, err := NewDynamic(entries)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := route.Prefix{Addr: packet.IPv4Addr(rng.Uint32() &^ 0xff), Len: 24}
		if err := d.Insert(route.Entry{Prefix: p, NextHop: uint16(i % 64)}); err != nil {
			b.Fatal(err)
		}
	}
}
