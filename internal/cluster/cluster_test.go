package cluster

import (
	"math"
	"testing"
	"testing/quick"
)

// ps is a 4-node cluster of PacketShader-class boxes: 40 Gbps external,
// 40 Gbps forwarding budget, 10 Gbps internal mesh links.
func ps(n int) Config {
	return Config{
		Nodes:              n,
		ExternalGbps:       40,
		NodeForwardingGbps: 40,
		InternalLinkGbps:   10,
	}
}

func TestValidate(t *testing.T) {
	c := ps(4)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := c
	bad.Nodes = 1
	if bad.Validate() == nil {
		t.Error("1-node cluster accepted")
	}
	bad = c
	bad.InternalLinkGbps = 0
	if bad.Validate() == nil {
		t.Error("zero link capacity accepted")
	}
}

func TestMatrixBuilders(t *testing.T) {
	u := Uniform(4, 80)
	if math.Abs(u.Total()-80) > 1e-9 {
		t.Errorf("uniform total = %v", u.Total())
	}
	p := Permutation(4, 10)
	if p.Total() != 40 || p[0][1] != 10 || p[3][0] != 10 || p[0][2] != 0 {
		t.Errorf("permutation wrong: %v", p)
	}
	in := Incast(4, 10)
	if in.Total() != 30 || in[0][0] != 0 {
		t.Errorf("incast wrong: %v", in)
	}
}

func TestDirectUniformScalesWithNodes(t *testing.T) {
	// Uniform all-to-all traffic is the benign case: direct routing
	// carries it until the external ports or node budget saturate.
	for _, n := range []int{2, 4, 8} {
		cfg := ps(n)
		res, err := Evaluate(cfg, Direct, Uniform(n, float64(n)*20))
		if err != nil {
			t.Fatal(err)
		}
		if res.Admissible < 1 {
			t.Errorf("n=%d: uniform 20G/node inadmissible (%.2f, %s)",
				n, res.Admissible, res.Bottleneck)
		}
	}
}

func TestDirectPermutationLimitedByOneLink(t *testing.T) {
	// A permutation matrix pushes each node's full load over a single
	// 10G link: direct routing caps at the link capacity.
	cfg := ps(4)
	res, err := Evaluate(cfg, Direct, Permutation(4, 40))
	if err != nil {
		t.Fatal(err)
	}
	// 40G offered per node over one 10G link → λ = 0.25.
	if math.Abs(res.Admissible-0.25) > 0.01 {
		t.Errorf("admissible = %v, want 0.25 (link-bound)", res.Admissible)
	}
	if res.MaxLinkUtil < 3.9 {
		t.Errorf("link util = %v, want ≈4", res.MaxLinkUtil)
	}
}

func TestVLBSpreadsPermutation(t *testing.T) {
	// VLB spreads the same permutation across all links: per-link load
	// drops ≈4× (from 4× over capacity to exactly 1×), and overall
	// admissibility improves — now bounded by the node forwarding
	// budget (each box also forwards transit traffic) rather than by a
	// single hot link.
	cfg := ps(8)
	direct, _ := Evaluate(cfg, Direct, Permutation(8, 40))
	vlb, _ := Evaluate(cfg, VLB, Permutation(8, 40))
	if vlb.Admissible <= direct.Admissible {
		t.Errorf("VLB %.2f not better than direct %.2f on a permutation", vlb.Admissible, direct.Admissible)
	}
	if direct.MaxLinkUtil < vlb.MaxLinkUtil*3.5 {
		t.Errorf("VLB link spreading weak: direct %.2f vs VLB %.2f", direct.MaxLinkUtil, vlb.MaxLinkUtil)
	}
	if vlb.MeanHops <= direct.MeanHops {
		t.Error("VLB should cost more hops")
	}
}

func TestVLBMeanHopsApproachesThree(t *testing.T) {
	// With many nodes, almost every VLB packet takes the 2-internal-hop
	// detour: 3 forwarding operations.
	cfg := ps(16)
	res, _ := Evaluate(cfg, VLB, Permutation(16, 10))
	if res.MeanHops < 2.8 || res.MeanHops > 3.0 {
		t.Errorf("VLB mean hops = %v, want ≈3", res.MeanHops)
	}
	direct, _ := Evaluate(cfg, Direct, Permutation(16, 10))
	if direct.MeanHops != 2 {
		t.Errorf("direct mean hops = %v, want 2", direct.MeanHops)
	}
}

func TestIncastBoundByReceiverPorts(t *testing.T) {
	// All-to-one traffic can never exceed the receiver's external
	// egress, whatever the routing.
	cfg := ps(8)
	for _, scheme := range []Routing{Direct, VLB, DirectVLB} {
		res, _ := Evaluate(cfg, scheme, Incast(8, 40))
		if res.ThroughputGbps > cfg.ExternalGbps+1e-9 {
			t.Errorf("%v: incast throughput %v exceeds receiver capacity", scheme, res.ThroughputGbps)
		}
	}
}

func TestDirectVLBNoWorseThanEitherOnPermutation(t *testing.T) {
	cfg := ps(8)
	// 20G per node: half fits the direct links, half must detour —
	// direct-VLB should send exactly the fitting half directly.
	m := Permutation(8, 20)
	direct, _ := Evaluate(cfg, Direct, m)
	vlb, _ := Evaluate(cfg, VLB, m)
	adaptive, _ := Evaluate(cfg, DirectVLB, m)
	if adaptive.Admissible < direct.Admissible-1e-9 {
		t.Errorf("direct-VLB %.3f worse than direct %.3f", adaptive.Admissible, direct.Admissible)
	}
	if adaptive.Admissible < vlb.Admissible-1e-9 {
		t.Errorf("direct-VLB %.3f worse than VLB %.3f", adaptive.Admissible, vlb.Admissible)
	}
	// And it saves hops versus pure VLB on the fraction sent directly.
	if adaptive.MeanHops >= vlb.MeanHops {
		t.Errorf("direct-VLB hops %v not below VLB %v", adaptive.MeanHops, vlb.MeanHops)
	}
}

func TestDirectVLBUniformStaysDirect(t *testing.T) {
	// Benign uniform traffic fits the direct links: no detours.
	cfg := ps(8)
	res, _ := Evaluate(cfg, DirectVLB, Uniform(8, 160))
	if res.MeanHops > 2.01 {
		t.Errorf("uniform traffic detoured: hops %v", res.MeanHops)
	}
}

func TestLocalTrafficOneHop(t *testing.T) {
	cfg := ps(4)
	m := make(Matrix, 4)
	for i := range m {
		m[i] = make([]float64, 4)
	}
	m[2][2] = 10 // local switching only
	res, _ := Evaluate(cfg, Direct, m)
	if res.MeanHops != 1 {
		t.Errorf("local traffic hops = %v, want 1", res.MeanHops)
	}
	if res.MaxLinkUtil != 0 {
		t.Errorf("local traffic used mesh links: %v", res.MaxLinkUtil)
	}
}

func TestEmptyMatrixAdmissible(t *testing.T) {
	cfg := ps(4)
	res, _ := Evaluate(cfg, VLB, Uniform(4, 0))
	if res.Admissible != 1 || res.ThroughputGbps != 0 {
		t.Errorf("empty matrix: %+v", res)
	}
}

func TestMatrixSizeMismatch(t *testing.T) {
	if _, err := Evaluate(ps(4), Direct, Uniform(3, 10)); err == nil {
		t.Error("size mismatch accepted")
	}
}

// Property: VLB throughput is invariant under source permutations of
// the matrix (load balancing erases who-sends-to-whom structure in the
// link layer, up to the external port constraints).
func TestVLBAdmissibilityPermutationInvariant(t *testing.T) {
	cfg := ps(4)
	f := func(loads [4]uint8) bool {
		m := make(Matrix, 4)
		for i := range m {
			m[i] = make([]float64, 4)
			m[i][(i+1)%4] = float64(loads[i]%40) + 1
		}
		base, err := Evaluate(cfg, VLB, m)
		if err != nil {
			return false
		}
		// Relabel nodes: rotate sources and destinations by 1.
		rot := make(Matrix, 4)
		for i := range rot {
			rot[i] = make([]float64, 4)
		}
		for i := range m {
			for j := range m[i] {
				rot[(i+1)%4][(j+1)%4] = m[i][j]
			}
		}
		rres, err := Evaluate(cfg, VLB, rot)
		if err != nil {
			return false
		}
		return math.Abs(base.Admissible-rres.Admissible) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: scaling the matrix by c scales admissibility by 1/c.
func TestAdmissibilityScalesInversely(t *testing.T) {
	cfg := ps(4)
	m := Permutation(4, 8)
	r1, _ := Evaluate(cfg, VLB, m)
	m2 := Permutation(4, 16)
	r2, _ := Evaluate(cfg, VLB, m2)
	if math.Abs(r1.Admissible/r2.Admissible-2) > 1e-6 {
		t.Errorf("admissibility not inverse-linear: %v vs %v", r1.Admissible, r2.Admissible)
	}
}
