package ipv6

import (
	"math/rand"
	"testing"
	"testing/quick"

	"packetshader/internal/route"
)

func TestEmptyTable(t *testing.T) {
	tbl := Build(nil)
	if got := tbl.Lookup(1, 2); got != route.NoRoute {
		t.Errorf("empty lookup = %d", got)
	}
	if tbl.MaxDepth() != 0 {
		t.Errorf("depth = %d", tbl.MaxDepth())
	}
}

func TestSinglePrefix(t *testing.T) {
	tbl := Build([]route.Entry6{
		{Prefix6: route.Prefix6{Hi: 0x20010db800000000, Len: 32}, NextHop: 4},
	})
	if got := tbl.Lookup(0x20010db8aabbccdd, 0x1122334455667788); got != 4 {
		t.Errorf("inside /32 = %d, want 4", got)
	}
	if got := tbl.Lookup(0x20010db900000000, 0); got != route.NoRoute {
		t.Errorf("outside /32 = %d, want miss", got)
	}
}

func TestNestedPrefixesLongestWins(t *testing.T) {
	tbl := Build([]route.Entry6{
		{Prefix6: route.Prefix6{Hi: 0x2001000000000000, Len: 16}, NextHop: 1},
		{Prefix6: route.Prefix6{Hi: 0x20010db800000000, Len: 32}, NextHop: 2},
		{Prefix6: route.Prefix6{Hi: 0x20010db800010000, Len: 48}, NextHop: 3},
		{Prefix6: route.Prefix6{Hi: 0x20010db800010002, Len: 64}, NextHop: 4},
	})
	cases := []struct {
		hi, lo uint64
		want   uint16
	}{
		{0x20010db800010002, 0xffff, 4},
		{0x20010db800010003, 0, 3},
		{0x20010db800020000, 0, 2},
		{0x2001aaaa00000000, 0, 1},
		{0x2002000000000000, 0, route.NoRoute},
	}
	for _, c := range cases {
		if got := tbl.Lookup(c.hi, c.lo); got != c.want {
			t.Errorf("Lookup(%#x,%#x) = %d, want %d", c.hi, c.lo, got, c.want)
		}
	}
}

func TestMarkerWithoutLongerMatchFallsBack(t *testing.T) {
	// Classic Waldvogel trap: a marker leads the search right, where
	// nothing matches; the marker's precomputed BMP must save the
	// result.
	tbl := Build([]route.Entry6{
		{Prefix6: route.Prefix6{Hi: 0x2001000000000000, Len: 16}, NextHop: 1},
		// This /64 plants markers at intermediate lengths for its own
		// bits.
		{Prefix6: route.Prefix6{Hi: 0x20010db800010002, Len: 64}, NextHop: 9},
	})
	// Shares the /16 and the marker path bits down to /32 or /48 but
	// diverges before /64: must return the /16's hop.
	if got := tbl.Lookup(0x20010db800010003, 0); got != 1 {
		t.Errorf("fallback = %d, want 1 (marker BMP)", got)
	}
}

func TestLowBitsPrefixes(t *testing.T) {
	// Prefixes longer than 64 exercise the Lo half.
	tbl := Build([]route.Entry6{
		{Prefix6: route.Prefix6{Hi: 0x20010db800000000, Lo: 0xaa00000000000000, Len: 72}, NextHop: 5},
		{Prefix6: route.Prefix6{Hi: 0x20010db800000000, Lo: 0xaabbccdd00000000, Len: 96}, NextHop: 6},
	})
	if got := tbl.Lookup(0x20010db800000000, 0xaabbccdd12345678); got != 6 {
		t.Errorf("/96 = %d, want 6", got)
	}
	if got := tbl.Lookup(0x20010db800000000, 0xaa11223344556677); got != 5 {
		t.Errorf("/72 = %d, want 5", got)
	}
	if got := tbl.Lookup(0x20010db800000000, 0xbb00000000000000); got != route.NoRoute {
		t.Errorf("miss = %d", got)
	}
}

func TestDefaultRouteLenZero(t *testing.T) {
	tbl := Build([]route.Entry6{
		{Prefix6: route.Prefix6{Len: 0}, NextHop: 2},
		{Prefix6: route.Prefix6{Hi: 0x20010db800000000, Len: 32}, NextHop: 3},
	})
	if got := tbl.Lookup(0xffffffffffffffff, 0xffffffffffffffff); got != 2 {
		t.Errorf("default = %d, want 2", got)
	}
	if got := tbl.Lookup(0x20010db800000001, 0); got != 3 {
		t.Errorf("specific = %d, want 3", got)
	}
}

func TestDepthIsLogOfDistinctLengths(t *testing.T) {
	// 7 distinct lengths → balanced tree depth 3.
	var entries []route.Entry6
	for i, l := range []uint8{16, 24, 32, 40, 48, 56, 64} {
		entries = append(entries, route.Entry6{
			Prefix6: route.Prefix6{Hi: uint64(0x2000+i) << 48, Len: l},
			NextHop: uint16(i),
		})
	}
	tbl := Build(entries)
	if tbl.MaxDepth() != 3 {
		t.Errorf("depth = %d, want 3 for 7 lengths", tbl.MaxDepth())
	}
	// With 127 distinct lengths (a full balanced tree) the depth is 7 —
	// the paper's "seven memory accesses" per lookup (§6.2.2).
	var full []route.Entry6
	for l := 1; l <= 127; l++ {
		full = append(full, route.Entry6{
			Prefix6: route.Prefix6{Hi: 1 << 61, Len: uint8(l)},
			NextHop: uint16(l),
		})
	}
	if d := Build(full).MaxDepth(); d != 7 {
		t.Errorf("depth for 127 lengths = %d, want 7 (§6.2.2)", d)
	}
}

func TestProbeCountBounded(t *testing.T) {
	entries := route.GenerateIPv6Table(2000, 16, 21)
	tbl := Build(entries)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		_, probes := tbl.LookupCounted(rng.Uint64(), rng.Uint64())
		if probes > tbl.MaxDepth() {
			t.Fatalf("probes = %d > max depth %d", probes, tbl.MaxDepth())
		}
	}
}

// TestAgainstLinearOracle: the central correctness property — agree with
// the reference linear LPM for random addresses and for addresses inside
// known prefixes.
func TestAgainstLinearOracle(t *testing.T) {
	entries := route.GenerateIPv6Table(3000, 32, 17)
	tbl := Build(entries)
	oracle := route.NewLinearLPM6(entries)
	f := func(hi, lo uint64) bool {
		return tbl.Lookup(hi, lo) == oracle.Lookup(hi, lo)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 3000; i++ {
		e := entries[rng.Intn(len(entries))]
		mh, ml := route.Mask6(e.Prefix6.Len)
		hi := e.Prefix6.Hi | (rng.Uint64() &^ mh)
		lo := e.Prefix6.Lo | (rng.Uint64() &^ ml)
		if got, want := tbl.Lookup(hi, lo), oracle.Lookup(hi, lo); got != want {
			t.Fatalf("Lookup(%#x,%#x) = %d, oracle %d (prefix %+v)",
				hi, lo, got, want, e.Prefix6)
		}
	}
}

func TestNestedRandomPrefixFamilies(t *testing.T) {
	// Build deliberately nested families: base /32s with /48 and /64
	// children, to stress marker/BMP interactions.
	rng := rand.New(rand.NewSource(123))
	var entries []route.Entry6
	for i := 0; i < 50; i++ {
		base := (rng.Uint64()&0x1fffffffffffffff | 1<<61) &^ 0xffffffff
		entries = append(entries, route.Entry6{
			Prefix6: route.Prefix6{Hi: base, Len: 32}, NextHop: uint16(i * 3)})
		for j := 0; j < 4; j++ {
			child := base | rng.Uint64()&0x0000ffff00000000&^0xffff
			mh, _ := route.Mask6(48)
			entries = append(entries, route.Entry6{
				Prefix6: route.Prefix6{Hi: child & mh, Len: 48}, NextHop: uint16(i*3 + 1)})
			entries = append(entries, route.Entry6{
				Prefix6: route.Prefix6{Hi: child&mh | rng.Uint64()&0xffff, Len: 64},
				NextHop: uint16(i*3 + 2)})
		}
	}
	tbl := Build(entries)
	oracle := route.NewLinearLPM6(entries)
	for i := 0; i < 2000; i++ {
		e := entries[rng.Intn(len(entries))]
		mh, ml := route.Mask6(e.Prefix6.Len)
		hi := e.Prefix6.Hi | (rng.Uint64() &^ mh)
		lo := e.Prefix6.Lo | (rng.Uint64() &^ ml)
		if got, want := tbl.Lookup(hi, lo), oracle.Lookup(hi, lo); got != want {
			t.Fatalf("disagreement at %#x,%#x: %d vs %d", hi, lo, got, want)
		}
	}
}

func TestLookupBatchMatchesScalar(t *testing.T) {
	entries := route.GenerateIPv6Table(1000, 8, 5)
	tbl := Build(entries)
	rng := rand.New(rand.NewSource(8))
	n := 256
	his, los := make([]uint64, n), make([]uint64, n)
	for i := range his {
		his[i], los[i] = rng.Uint64(), rng.Uint64()
	}
	hops := make([]uint16, n)
	tbl.LookupBatch(his, los, hops)
	for i := range his {
		if hops[i] != tbl.Lookup(his[i], los[i]) {
			t.Fatalf("batch[%d] mismatch", i)
		}
	}
}

func TestPaperScaleTable(t *testing.T) {
	if testing.Short() {
		t.Skip("200k-prefix build")
	}
	entries := route.GenerateIPv6Table(200000, 8, 1)
	tbl := Build(entries)
	if tbl.Entries() < 200000 {
		t.Errorf("entries = %d, want ≥ prefix count", tbl.Entries())
	}
	oracle := route.NewLinearLPM6(entries[:500])
	sub := Build(entries[:500])
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 300; i++ {
		hi, lo := rng.Uint64(), rng.Uint64()
		if got, want := sub.Lookup(hi, lo), oracle.Lookup(hi, lo); got != want {
			t.Fatalf("mismatch at %#x,%#x", hi, lo)
		}
	}
}

func BenchmarkLookupHostCPU(b *testing.B) {
	entries := route.GenerateIPv6Table(200000, 64, 1)
	tbl := Build(entries)
	rng := rand.New(rand.NewSource(1))
	his, los := make([]uint64, 4096), make([]uint64, 4096)
	for i := range his {
		his[i], los[i] = rng.Uint64(), rng.Uint64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tbl.Lookup(his[i&4095], los[i&4095])
	}
}
