package modular

import (
	"strings"
	"testing"

	"packetshader/internal/core"
	"packetshader/internal/model"
	"packetshader/internal/packet"
	"packetshader/internal/pktgen"
	"packetshader/internal/route"
	"packetshader/internal/sim"

	lookupv4 "packetshader/internal/lookup/ipv4"
)

const routerConfig = `
	// The standard IPv4 router, Click-style.
	check :: CheckIPHeader;
	ttl   :: DecTTL;
	rt    :: LookupIPv4($table);
	out   :: ToHop(8);
	bad   :: Discard;

	check -> cnt :: Counter -> ttl -> rt -> out;
	check[1] -> bad;
	ttl[1] -> bad;
	rt[1] -> bad;
`

func testTable(t *testing.T) *lookupv4.Table {
	t.Helper()
	tbl, err := lookupv4.Build([]route.Entry{
		{Prefix: route.Prefix{Addr: 0x0B000000, Len: 8}, NextHop: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func parseRouter(t *testing.T) *Pipeline {
	t.Helper()
	p, err := Parse(routerConfig, Bindings{"table": testTable(t)})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mkChunk(frames ...[]byte) *core.Chunk {
	pool := packet.NewBufPool(2048)
	c := &core.Chunk{}
	for _, f := range frames {
		b := pool.Get(len(f))
		copy(b.Data, f)
		c.Bufs = append(c.Bufs, b)
		c.OutPorts = append(c.OutPorts, 0)
	}
	return c
}

func udp4(dst packet.IPv4Addr) []byte {
	buf := make([]byte, 2048)
	return packet.BuildUDP4(buf, 64, packet.MAC{1}, packet.MAC{2}, 0x0A000001, dst, 7, 8)
}

func TestParseRouterConfig(t *testing.T) {
	p := parseRouter(t)
	if p.Entry() != "check" {
		t.Errorf("entry = %q", p.Entry())
	}
	if p.gpuName != "rt" {
		t.Errorf("gpu element = %q", p.gpuName)
	}
	if p.ElementByName("cnt") == nil {
		t.Error("inline-declared element missing")
	}
}

func TestPipelineForwardsThroughGPU(t *testing.T) {
	p := parseRouter(t)
	c := mkChunk(udp4(0x0B010101))
	pre := p.PreShade(c)
	if pre.Threads != 1 || pre.InBytes != 4 {
		t.Errorf("pre = %+v", pre)
	}
	p.RunKernel(c)
	p.PostShade(c)
	if c.OutPorts[0] != 3 {
		t.Errorf("port = %d, want 3", c.OutPorts[0])
	}
	// TTL decremented, checksum intact.
	hdr := c.Bufs[0].Data[packet.EthHdrLen:]
	if hdr[8] != 63 || !packet.VerifyIPv4Checksum(hdr) {
		t.Error("TTL/checksum wrong after pipeline")
	}
	cnt := p.ElementByName("cnt").(*Counter)
	if cnt.Packets != 1 {
		t.Errorf("counter = %d", cnt.Packets)
	}
}

func TestPipelineDropsByBranch(t *testing.T) {
	p := parseRouter(t)
	badCS := udp4(0x0B010101)
	badCS[packet.EthHdrLen+10] ^= 0xff // corrupt checksum → check[1]
	expired := udp4(0x0B010101)
	hdr := expired[packet.EthHdrLen:]
	hdr[8] = 1 // TTL 1 → ttl[1]
	// Re-checksum so CheckIPHeader passes.
	hdr[10], hdr[11] = 0, 0
	cs := packet.Checksum(hdr[:20])
	hdr[10], hdr[11] = byte(cs>>8), byte(cs)
	noRoute := udp4(0x7F000001) // 127/8: not in the table → rt[1]

	c := mkChunk(badCS, expired, noRoute)
	p.PreShade(c)
	p.RunKernel(c)
	p.PostShade(c)
	for i := range c.Bufs {
		if c.OutPorts[i] != -1 {
			t.Errorf("packet %d forwarded to %d, want dropped", i, c.OutPorts[i])
		}
	}
	drop := p.ElementByName("bad").(*Discard)
	if drop.Count != 3 {
		t.Errorf("discard count = %d, want 3", drop.Count)
	}
	if ch := p.ElementByName("check").(*CheckIPHeader); ch.Bad != 1 {
		t.Errorf("bad headers = %d", ch.Bad)
	}
	if ttl := p.ElementByName("ttl").(*DecTTL); ttl.Expired != 1 {
		t.Errorf("expired = %d", ttl.Expired)
	}
}

func TestPipelineCPUWorkMatchesKernel(t *testing.T) {
	p := parseRouter(t)
	c1 := mkChunk(udp4(0x0B010101), udp4(0x0B020202))
	p.PreShade(c1)
	p.RunKernel(c1)
	p.PostShade(c1)

	p2 := parseRouter(t)
	c2 := mkChunk(udp4(0x0B010101), udp4(0x0B020202))
	p2.PreShade(c2)
	if cyc := p2.CPUWork(c2); cyc <= 0 {
		t.Error("CPUWork free")
	}
	p2.PostShade(c2)
	for i := range c1.Bufs {
		if c1.OutPorts[i] != c2.OutPorts[i] {
			t.Fatalf("packet %d: GPU %d vs CPU %d", i, c1.OutPorts[i], c2.OutPorts[i])
		}
	}
}

func TestPipelineUnwiredOutputDrops(t *testing.T) {
	cfg := `
		check :: CheckIPHeader;
		check -> sink :: ToPort(0);
		// check[1] left unwired: invalid packets silently dropped
	`
	p, err := Parse(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	bad := udp4(0x0B010101)
	bad[packet.EthHdrLen] = 0x60 // IPv6 version in an IPv4 slot
	c := mkChunk(bad)
	p.PreShade(c)
	p.PostShade(c)
	if c.OutPorts[0] != -1 {
		t.Errorf("port = %d, want dropped via unwired output", c.OutPorts[0])
	}
}

func TestParseErrors(t *testing.T) {
	tbl := testTable(t)
	cases := []struct {
		name, cfg string
		errSub    string
	}{
		{"unknown class", `x :: Nope;`, "unknown element class"},
		{"unknown element", `a :: Discard; b -> a;`, "unknown element"},
		{"double declare", `a :: Discard; a :: Discard;`, "declared twice"},
		{"bad output", `a :: Counter; b :: Discard; a[7] -> b;`, "no output 7"},
		{"double connect", `a :: Counter; b :: Discard; c :: Discard; a -> b; a[0] -> c;`, "already connected"},
		{"two gpu elements", `a :: LookupIPv4($t); b :: LookupIPv4($t); a -> b;`, "more than one GPU element"},
		{"cycle", `a :: Counter; b :: Counter; entry :: Classifier; entry -> a -> b; b -> a;`, ""},
		{"unbound", `a :: LookupIPv4($missing);`, "unbound"},
		{"bad binding type", `a :: LookupIPv4($t2);`, "want *ipv4.Table"},
		{"missing arg", `a :: ToPort;`, "missing argument"},
		{"empty", ``, "empty configuration"},
		{"two entries", `a :: Counter; b :: Counter;`, "multiple entry"},
	}
	for _, c := range cases {
		_, err := Parse(c.cfg, Bindings{"t": tbl, "t2": 42})
		if err == nil {
			t.Errorf("%s: no error", c.name)
			continue
		}
		if c.errSub != "" && !strings.Contains(err.Error(), c.errSub) {
			t.Errorf("%s: err %q does not mention %q", c.name, err, c.errSub)
		}
	}
}

func TestClassifierBranching(t *testing.T) {
	cfg := `
		cls :: Classifier;
		v4 :: Counter; v6 :: Counter; other :: Counter;
		sink4 :: ToPort(1); sink6 :: ToPort(2); sinkO :: Discard;
		cls -> v4 -> sink4;
		cls[1] -> v6 -> sink6;
		cls[2] -> other -> sinkO;
	`
	p, err := Parse(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	v6buf := make([]byte, 2048)
	v6frame := packet.BuildUDP6(v6buf, 78, packet.MAC{1}, packet.MAC{2},
		packet.IPv6AddrFromParts(1<<61, 1), packet.IPv6AddrFromParts(1<<61, 2), 5, 6)
	arp := make([]byte, 64)
	arp[12], arp[13] = 0x08, 0x06
	c := mkChunk(udp4(1), v6frame, arp)
	p.PreShade(c)
	p.PostShade(c)
	if c.OutPorts[0] != 1 || c.OutPorts[1] != 2 || c.OutPorts[2] != -1 {
		t.Errorf("ports = %v", c.OutPorts)
	}
	for _, n := range []string{"v4", "v6", "other"} {
		if p.ElementByName(n).(*Counter).Packets != 1 {
			t.Errorf("%s count wrong", n)
		}
	}
}

// TestPipelineInRouter runs the modular router end to end through the
// framework, in both modes, and checks it matches a plain IPv4Fwd-like
// outcome (packets forwarded at a healthy rate).
func TestPipelineInRouter(t *testing.T) {
	entries := route.GenerateBGPTable(5000, 8, 3)
	tbl, err := lookupv4.Build(entries)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []core.Mode{core.ModeCPUOnly, core.ModeGPU} {
		p, err := Parse(routerConfig, Bindings{"table": tbl})
		if err != nil {
			t.Fatal(err)
		}
		env := sim.NewEnv()
		cfg := core.DefaultConfig()
		cfg.Mode = mode
		cfg.IO.Nodes, cfg.IO.Ports = 1, 2
		cfg.OfferedGbpsPerPort = 5
		r := core.New(env, cfg, p)
		r.SetSource(&pktgen.UDP4Source{Size: 64, Seed: 4, Table: entries})
		r.Start()
		env.Run(sim.Time(3 * sim.Millisecond))
		_, _, tx, _ := r.Engine.AggregateStats()
		if tx == 0 {
			t.Errorf("mode %v: nothing forwarded", mode)
		}
		if mode == core.ModeGPU && r.Stats.GPULaunches == 0 {
			t.Error("modular pipeline never reached the GPU")
		}
		cnt := p.ElementByName("cnt").(*Counter)
		if cnt.Packets == 0 {
			t.Error("counter element saw nothing")
		}
	}
	_ = model.NumPorts
}

func TestVLANElements(t *testing.T) {
	cfg := `
		enc :: VLANEncap(42);
		dec :: VLANDecap;
		sink :: ToPort(5);
		enc -> dec -> sink;
	`
	p, err := Parse(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	orig := udp4(0x0B010101)
	want := make([]byte, len(orig))
	copy(want, orig)
	c := mkChunk(orig)
	p.PreShade(c)
	p.PostShade(c)
	if c.OutPorts[0] != 5 {
		t.Fatalf("port = %d", c.OutPorts[0])
	}
	// Encap then decap: frame restored byte for byte.
	if string(c.Bufs[0].Data) != string(want) {
		t.Error("VLAN encap+decap did not round-trip the frame")
	}
}

func TestVLANEncapAlone(t *testing.T) {
	cfg := `enc :: VLANEncap(7); sink :: ToPort(0); enc -> sink;`
	p, err := Parse(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := mkChunk(udp4(0x0B010101))
	p.PreShade(c)
	p.PostShade(c)
	var d packet.Decoder
	if err := d.Decode(c.Bufs[0].Data); err != nil {
		t.Fatal(err)
	}
	if d.VLANID != 7 {
		t.Errorf("vid = %d", d.VLANID)
	}
}
