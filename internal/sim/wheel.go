package sim

import "math/bits"

// timerWheel is the environment's future-event store: a hierarchical
// timer wheel (calendar-queue style) that replaces the binary min-heap
// on the scheduling hot path while preserving the heap's exact
// (at, seq) execution order.
//
// Layout. Virtual time is an int64 of picoseconds; the wheel views it
// as eleven base-64 digits (6 bits per level, 11*6 = 66 >= 63 bits, so
// the top level is the far-future overflow level — any representable
// Time fits without a separate overflow list). An event is filed at
// the level of the most significant digit where its time differs from
// `base`, in the slot named by its own digit at that level. For two
// stored events, the one filed at the lower level is earlier (it
// diverges from base later), and within one level the lower slot is
// earlier — so the global minimum lives in the lowest occupied slot of
// the lowest occupied level, found with one trailing-zeros scan of the
// per-level occupancy bitmaps.
//
// Unlike the textbook wheel, base is not advanced tick-by-tick (with
// picosecond ticks and microsecond event spacing that would cascade
// every event through several near-empty levels). Instead popMin
// extracts the whole minimum slot, advances base to that slot's exact
// minimum time, stages the min-instant batch for serving, and re-files
// the remainder against the new base. Placements stay consistent
// because the new base shares every digit above the extracted level
// with the old one and the extracted slot's digit at it: no other
// slot's level-and-slot assignment changes, and each re-filed event
// lands at a strictly lower level (amortizing to at most one placement
// per level per event).
//
// Order proof obligation. The engine contract is exact (at, seq) order.
// Slot lists are seq-sorted per instant at all times: direct inserts
// append the largest seq issued so far; events sharing an instant
// always share a slot (slot and level are functions of the time and
// the current base, and a base advance re-files every event it would
// re-level — they sit in the extracted slot); and re-filing replays a
// list in order, so same-instant events keep their relative order.
// Extracting the minimum instant from the minimum slot in list order
// is therefore exactly the heap's (at, seq) order. The differential
// tests in wheel_test.go pin this against the retained reference heap
// over randomized schedules.
//
// base only advances inside popMin — at a moment when the engine is
// committed to executing the minimum event, so every later insert
// (clamped to the new e.now >= that minimum) still lands ahead of base
// and the digit invariant holds. peekAt never restructures: NextEventAt
// may be called between conservative windows, when earlier (but still
// future) events can yet arrive over links.
type timerWheel struct {
	base  Time // digit reference; <= every stored event's time
	count int  // stored events, staging ring included

	occ   [wheelLevels]uint64               // per-level slot occupancy bitmaps
	level [wheelLevels]*[wheelSlots][]event // lazily allocated slot lists

	// free recycles emptied slot backings. Base advance re-files events
	// into ever-new slot indices as virtual time progresses, so without
	// recycling every (level, slot) first-touch would allocate for the
	// whole life of the run; with it, allocations are bounded by the
	// peak number of concurrently occupied slots.
	free [][]event

	// cur stages the batch being served: every event in it shares
	// curAt. New same-instant work goes to the engine's imm ring
	// instead (schedule routes at == now there), so the staged batch
	// never interleaves with inserts.
	cur   Ring[event]
	curAt Time

	// minAt/minK/minS cache the earliest stored time and the slot that
	// holds it, so repeated peeks are O(1) (the window scheduler peeks
	// every partition every window) and the popMin that follows a peek
	// skips the scan entirely.
	minAt    Time
	minK     int
	minS     int
	minValid bool
}

const (
	wheelBits   = 6
	wheelSlots  = 1 << wheelBits
	wheelMask   = wheelSlots - 1
	wheelLevels = 11 // ceil(63 / wheelBits): level 10 is the overflow level
)

// place files ev at the level of its most significant digit differing
// from base, in the slot named by ev's own digit there, and returns
// that (level, slot). Callers guarantee ev.at > base (push clamps to
// the clock, which never trails base; re-filing handles only times
// above the extracted minimum).
func (w *timerWheel) place(ev event) (int, int) {
	d := uint64(ev.at ^ w.base)
	var k int
	if d != 0 {
		k = (63 - bits.LeadingZeros64(d)) / wheelBits
	}
	lv := w.level[k]
	if lv == nil {
		lv = new([wheelSlots][]event)
		w.level[k] = lv
	}
	s := int(ev.at>>(uint(k)*wheelBits)) & wheelMask
	lst := lv[s]
	if lst == nil {
		if n := len(w.free); n > 0 {
			lst, w.free = w.free[n-1], w.free[:n-1]
		} else {
			lst = make([]event, 0, 4)
		}
	}
	lv[s] = append(lst, ev)
	w.occ[k] |= 1 << uint(s)
	return k, s
}

// push inserts a future event (ev.at strictly greater than the
// engine's clock, which never trails base).
func (w *timerWheel) push(ev event) {
	k, s := w.place(ev)
	if w.minValid && ev.at < w.minAt {
		// A same-instant tie with the cached minimum would land in the
		// cached slot (slot is a function of time and base alone), so
		// only a strictly earlier event moves the cache.
		w.minAt, w.minK, w.minS = ev.at, k, s
	}
	w.count++
}

// locate fills the min cache: the earliest stored time and the slot
// holding it — the lowest occupied slot of the lowest occupied level,
// which provably holds the minimum. One bitmap walk plus one scan of
// that single slot's list.
func (w *timerWheel) locate() {
	if w.minValid {
		return
	}
	for k := 0; k < wheelLevels; k++ {
		if w.occ[k] == 0 {
			continue
		}
		s := bits.TrailingZeros64(w.occ[k])
		lst := w.level[k][s]
		min := lst[0].at
		for _, ev := range lst[1:] {
			if ev.at < min {
				min = ev.at
			}
		}
		w.minAt, w.minK, w.minS, w.minValid = min, k, s, true
		return
	}
	panic("sim: timerWheel count/occupancy mismatch")
}

// peekAt returns the earliest stored event time without restructuring
// the wheel (safe between conservative windows).
func (w *timerWheel) peekAt() (Time, bool) {
	if w.cur.Len() > 0 {
		return w.curAt, true
	}
	if w.count == 0 {
		return 0, false
	}
	w.locate()
	return w.minAt, true
}

// popMin removes and returns the earliest event in exact (at, seq)
// order. The caller is committed to executing it (the clock advances
// to its time), which is what makes advancing base safe.
func (w *timerWheel) popMin() event {
	if w.cur.Len() > 0 {
		w.count--
		return w.cur.PopFront()
	}
	w.locate()
	k, s, min := w.minK, w.minS, w.minAt
	lv := w.level[k]
	lst := lv[s]
	w.occ[k] &^= 1 << uint(s)
	w.base = min
	w.minValid = false
	w.count--
	if len(lst) == 1 {
		// Sparse fast path: the slot is the whole minimum batch.
		ev := lst[0]
		lst[0] = event{}
		w.free = append(w.free, lst[:0])
		lv[s] = nil
		return ev
	}
	// Single pass in list order: the first minimum-time event is the
	// return value, later ties stage into cur (preserving their seq
	// order), and the rest re-file at strictly lower levels against
	// the new base — never back into lst's slot.
	var ret event
	have := false
	for i := range lst {
		ev := lst[i]
		switch {
		case ev.at != min:
			w.place(ev)
		case !have:
			ret, have = ev, true
		default:
			w.cur.PushBack(ev)
		}
	}
	if w.cur.Len() > 0 {
		w.curAt = min
	}
	clear(lst)
	w.free = append(w.free, lst[:0])
	lv[s] = nil
	return ret
}

// len reports the number of stored events.
func (w *timerWheel) len() int { return w.count }

// reset drops every stored event and releases the slot storage (used
// by Env.Close so dead environments retain no Proc or closure refs).
func (w *timerWheel) reset() { *w = timerWheel{} }
