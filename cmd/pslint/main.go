// Command pslint is the repository's determinism linter: a multichecker
// that runs the internal/analysis suite over the given packages and
// fails if any analyzer reports an unwaived diagnostic.
//
// Usage:
//
//	go run ./cmd/pslint ./...
//	go run ./cmd/pslint -list
//	go run ./cmd/pslint -only walltime,mapiter ./internal/experiments
//	go run ./cmd/pslint -json -json-out pslint-report.json ./...
//	go run ./cmd/pslint -report-stale pslint-report.json
//
// The suite enforces the contract that makes every reproduced paper
// number trustworthy: virtual time only (walltime), seeded RNG only
// (seededrand), order-stable iteration in scheduling/output paths
// (mapiter), non-blocking scheduler callbacks (schedblock), explicit
// time units (picounits), no package-state writes from parallel
// experiment jobs (sharedfixture), and no unmediated state shared
// between sim proc/callback roots (procshare). Findings can be
// suppressed line-wise with `//pslint:ignore <analyzer> <reason>`, or
// waived centrally in pslint-baseline.json at the module root — every
// waiver carries a written reason, so the shared-state inventory is
// burned down, not ignored.
//
// Cross-package analyzers (Analyzer.UsesFacts, currently procshare) are
// driven over the full module-local dependency closure in `go list
// -deps` order with one fact store per analyzer, so facts exported
// while analyzing internal/sim or internal/hw are importable while
// analyzing internal/core; diagnostics are only reported for the
// packages the patterns matched.
//
// Output modes: plain file:line:col lines by default; -json emits a
// machine-readable report on stdout; -json-out FILE writes the same
// report to FILE alongside the plain lines; -github prints GitHub
// Actions ::error annotations instead of plain lines. -report-stale
// FILE is a separate mode that reads a previously written report and
// fails if any baseline waiver matched nothing — CI runs it as its own
// step so stale waivers surface distinctly from real findings.
//
// Only non-test sources are analyzed: _test.go files may use wall-clock
// deadlines and ad-hoc randomness for test orchestration.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"packetshader/internal/analysis"
	"packetshader/internal/analysis/load"
	"packetshader/internal/analysis/mapiter"
	"packetshader/internal/analysis/picounits"
	"packetshader/internal/analysis/procshare"
	"packetshader/internal/analysis/schedblock"
	"packetshader/internal/analysis/seededrand"
	"packetshader/internal/analysis/sharedfixture"
	"packetshader/internal/analysis/walltime"
)

var suite = []*analysis.Analyzer{
	walltime.Analyzer,
	seededrand.Analyzer,
	mapiter.Analyzer,
	schedblock.Analyzer,
	picounits.Analyzer,
	sharedfixture.Analyzer,
	procshare.Analyzer,
}

// baselineName is the waiver file auto-loaded from the module root.
const baselineName = "pslint-baseline.json"

// A Finding is one diagnostic in the JSON report. File is relative to
// the module root so reports are stable across checkouts.
type Finding struct {
	Analyzer     string `json:"analyzer"`
	File         string `json:"file"`
	Line         int    `json:"line"`
	Col          int    `json:"col"`
	Message      string `json:"message"`
	Waived       bool   `json:"waived,omitempty"`
	WaiverReason string `json:"waiver_reason,omitempty"`
}

// A Waiver is one baseline entry: findings from Analyzer whose
// module-relative file equals File (empty matches any file) and whose
// message contains Match are accepted, with Reason recording why that
// is sound. Hits counts the findings it absorbed in this run; a waiver
// with zero hits is stale and -report-stale fails on it.
type Waiver struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file,omitempty"`
	Match    string `json:"match"`
	Reason   string `json:"reason"`
	Hits     int    `json:"hits"`
}

// A Report is the -json / -json-out output.
type Report struct {
	Patterns []string  `json:"patterns"`
	Findings []Finding `json:"findings"`
	Waivers  []Waiver  `json:"waivers,omitempty"`
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	only := flag.String("only", "", "comma-separated subset of analyzers to run")
	jsonFlag := flag.Bool("json", false, "emit the report as JSON on stdout instead of plain lines")
	jsonOut := flag.String("json-out", "", "also write the JSON report to `file`")
	github := flag.Bool("github", false, "emit GitHub Actions ::error annotations instead of plain lines")
	baseline := flag.String("baseline", "auto", "waiver `file` (auto = "+baselineName+" at the module root if present; none = disabled)")
	reportStale := flag.String("report-stale", "", "read a previously written JSON `report` and fail on waivers with zero hits (no linting)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: pslint [flags] [packages]\n\n")
		fmt.Fprintf(os.Stderr, "Runs the packetshader determinism linters over the given package\npatterns (default ./...).\n\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range suite {
			scope := "all packages"
			if a.InternalOnly {
				scope = "internal/ only"
			}
			fmt.Printf("%-14s %-16s %s\n", a.Name, "("+scope+")", a.Doc)
		}
		return
	}
	if *reportStale != "" {
		os.Exit(runReportStale(*reportStale))
	}

	analyzers := suite
	if *only != "" {
		want := map[string]bool{}
		for _, n := range strings.Split(*only, ",") {
			want[strings.TrimSpace(n)] = true
		}
		analyzers = nil
		for _, a := range suite {
			if want[a.Name] {
				analyzers = append(analyzers, a)
				delete(want, a.Name)
			}
		}
		if len(want) > 0 {
			unknown := make([]string, 0, len(want))
			for n := range want {
				unknown = append(unknown, n)
			}
			sort.Strings(unknown)
			fmt.Fprintf(os.Stderr, "pslint: unknown analyzer(s) %s (see -list)\n", strings.Join(unknown, ", "))
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	moduleRoot, err := load.ModuleRoot(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "pslint: %v\n", err)
		os.Exit(2)
	}
	waivers, err := loadBaseline(*baseline, moduleRoot)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pslint: %v\n", err)
		os.Exit(2)
	}

	loader := load.NewLoader(".")
	module, err := loader.LoadModule(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pslint: %v\n", err)
		os.Exit(2)
	}

	var findings []Finding
	for _, a := range analyzers {
		pkgs := module
		if !a.UsesFacts {
			pkgs = nil
			for _, pkg := range module {
				if !pkg.DepOnly {
					pkgs = append(pkgs, pkg)
				}
			}
		}
		// One fact store per analyzer per load: facts exported while
		// analyzing a dependency are importable downstream.
		facts := analysis.NewFactStore()
		for _, pkg := range pkgs {
			internalOK := strings.Contains(pkg.PkgPath+"/", "/internal/")
			if a.InternalOnly && !internalOK && !a.UsesFacts {
				continue
			}
			pass := analysis.NewPass(a, loader.Fset, pkg.Syntax, pkg.Types, pkg.Info)
			pass.Facts = facts
			if err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "pslint: %s on %s: %v\n", a.Name, pkg.PkgPath, err)
				os.Exit(2)
			}
			if pkg.DepOnly || (a.InternalOnly && !internalOK) {
				continue // fact-only pass: diagnostics are not ours to report
			}
			for _, d := range pass.Diagnostics {
				pos := loader.Fset.Position(d.Pos)
				file := pos.Filename
				if rel, err := filepath.Rel(moduleRoot, file); err == nil && !strings.HasPrefix(rel, "..") {
					file = filepath.ToSlash(rel)
				}
				findings = append(findings, Finding{
					Analyzer: d.Analyzer,
					File:     file,
					Line:     pos.Line,
					Col:      pos.Column,
					Message:  d.Message,
				})
			}
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})

	unwaived := 0
	for i := range findings {
		f := &findings[i]
		for w := range waivers {
			if waivers[w].matches(f) {
				waivers[w].Hits++
				f.Waived = true
				f.WaiverReason = waivers[w].Reason
				break
			}
		}
		if !f.Waived {
			unwaived++
		}
	}

	report := Report{Patterns: patterns, Findings: findings, Waivers: waivers}
	if report.Findings == nil {
		report.Findings = []Finding{}
	}
	if *jsonOut != "" {
		if err := writeReport(*jsonOut, &report); err != nil {
			fmt.Fprintf(os.Stderr, "pslint: %v\n", err)
			os.Exit(2)
		}
	}
	switch {
	case *jsonFlag:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(&report)
	case *github:
		for _, f := range findings {
			if f.Waived {
				continue
			}
			// The annotation message must be single-line; findings are.
			fmt.Printf("::error file=%s,line=%d,col=%d::%s [%s]\n", f.File, f.Line, f.Col, f.Message, f.Analyzer)
		}
	default:
		for _, f := range findings {
			if f.Waived {
				continue
			}
			fmt.Printf("%s:%d:%d: %s [%s]\n", f.File, f.Line, f.Col, f.Message, f.Analyzer)
		}
	}

	waived := len(findings) - unwaived
	for _, w := range waivers {
		if w.Hits == 0 {
			fmt.Fprintf(os.Stderr, "pslint: warning: stale waiver (no findings matched): %s\n", w.describe())
		}
	}
	if unwaived > 0 {
		fmt.Fprintf(os.Stderr, "pslint: %d finding(s)", unwaived)
		if waived > 0 {
			fmt.Fprintf(os.Stderr, ", %d waived by baseline", waived)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(1)
	}
}

// matches reports whether finding f is absorbed by waiver w.
func (w *Waiver) matches(f *Finding) bool {
	if w.Analyzer != f.Analyzer {
		return false
	}
	if w.File != "" && w.File != f.File {
		return false
	}
	return strings.Contains(f.Message, w.Match)
}

func (w *Waiver) describe() string {
	file := w.File
	if file == "" {
		file = "*"
	}
	return fmt.Sprintf("{analyzer: %s, file: %s, match: %q}", w.Analyzer, file, w.Match)
}

// loadBaseline reads the waiver file per the -baseline flag: "none"
// disables waivers, "auto" loads the module-root baseline when present,
// anything else is an explicit path that must exist. Every waiver must
// carry a non-empty reason.
func loadBaseline(flagVal, moduleRoot string) ([]Waiver, error) {
	path := flagVal
	switch flagVal {
	case "none":
		return nil, nil
	case "auto":
		path = filepath.Join(moduleRoot, baselineName)
		if _, err := os.Stat(path); err != nil {
			return nil, nil
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("baseline: %v", err)
	}
	var b struct {
		Waivers []Waiver `json:"waivers"`
	}
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("baseline %s: %v", path, err)
	}
	for i, w := range b.Waivers {
		if w.Analyzer == "" || w.Match == "" {
			return nil, fmt.Errorf("baseline %s: waiver %d needs analyzer and match", path, i)
		}
		if strings.TrimSpace(w.Reason) == "" {
			return nil, fmt.Errorf("baseline %s: waiver %d (%s) has no reason; every waiver must say why it is sound", path, i, w.Match)
		}
		b.Waivers[i].Hits = 0
	}
	return b.Waivers, nil
}

func writeReport(path string, r *Report) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// runReportStale reads a report written with -json-out and fails if any
// waiver matched nothing: a stale baseline entry means the debt it
// documented is gone and the entry must be deleted, keeping the waiver
// inventory honest. Runs as its own CI step so staleness is reported
// distinctly from findings.
func runReportStale(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pslint: -report-stale: %v\n", err)
		return 2
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		fmt.Fprintf(os.Stderr, "pslint: -report-stale %s: %v\n", path, err)
		return 2
	}
	stale := 0
	for _, w := range r.Waivers {
		if w.Hits == 0 {
			stale++
			fmt.Printf("stale waiver (no findings matched; delete it from %s): %s\n", baselineName, w.describe())
		}
	}
	if stale > 0 {
		fmt.Fprintf(os.Stderr, "pslint: %d stale waiver(s)\n", stale)
		return 1
	}
	return 0
}
