package pcap

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
	"testing/quick"

	"packetshader/internal/packet"
	"packetshader/internal/sim"
)

func frame(n int, fill byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = fill
	}
	return b
}

func TestGlobalHeaderGolden(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 65535)
	if err := w.WritePacket(0, frame(60, 0)); err != nil {
		t.Fatal(err)
	}
	hdr := buf.Bytes()[:globalHeaderLen]
	if binary.LittleEndian.Uint32(hdr[0:4]) != MagicNanos {
		t.Errorf("magic = %#x", binary.LittleEndian.Uint32(hdr[0:4]))
	}
	if binary.LittleEndian.Uint16(hdr[4:6]) != 2 || binary.LittleEndian.Uint16(hdr[6:8]) != 4 {
		t.Error("version not 2.4")
	}
	if binary.LittleEndian.Uint32(hdr[16:20]) != 65535 {
		t.Error("snaplen wrong")
	}
	if binary.LittleEndian.Uint32(hdr[20:24]) != LinkTypeEthernet {
		t.Error("link type not Ethernet")
	}
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 0)
	times := []sim.Time{
		0,
		sim.Time(70 * sim.Nanosecond),
		sim.Time(1500 * sim.Millisecond), // > 1 second: sec field used
	}
	for i, at := range times {
		if err := w.WritePacket(at, frame(64+i*10, byte(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("records = %d", len(recs))
	}
	for i, rec := range recs {
		if rec.At != times[i] {
			t.Errorf("record %d at %v, want %v", i, rec.At, times[i])
		}
		if len(rec.Data) != 64+i*10 || rec.OrigLen != len(rec.Data) {
			t.Errorf("record %d len %d/%d", i, len(rec.Data), rec.OrigLen)
		}
		for _, b := range rec.Data {
			if b != byte(i+1) {
				t.Fatalf("record %d payload corrupted", i)
			}
		}
	}
}

func TestSnaplenTruncates(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 96)
	if err := w.WritePacket(0, frame(1514, 0xAB)); err != nil {
		t.Fatal(err)
	}
	r, _ := NewReader(bytes.NewReader(buf.Bytes()))
	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Data) != 96 || rec.OrigLen != 1514 {
		t.Errorf("truncation: incl %d orig %d", len(rec.Data), rec.OrigLen)
	}
}

func TestReaderRejectsBadMagic(t *testing.T) {
	junk := make([]byte, globalHeaderLen)
	if _, err := NewReader(bytes.NewReader(junk)); err != ErrBadMagic {
		t.Errorf("err = %v", err)
	}
}

func TestReaderEOFMidRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 0)
	w.WritePacket(0, frame(64, 1))
	// Chop the stream inside the record header.
	trunc := buf.Bytes()[:globalHeaderLen+8]
	r, _ := NewReader(bytes.NewReader(trunc))
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("err = %v, want EOF", err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(payloads [][]byte, nsOffsets []uint32) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf, 0)
		var want [][]byte
		for i, p := range payloads {
			if len(p) == 0 {
				continue
			}
			var at sim.Time
			if i < len(nsOffsets) {
				at = sim.Time(nsOffsets[i]) * sim.Time(sim.Nanosecond)
			}
			if err := w.WritePacket(at, p); err != nil {
				return false
			}
			want = append(want, p)
		}
		if len(want) == 0 {
			return true
		}
		r, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return false
		}
		recs, err := r.ReadAll()
		if err != nil || len(recs) != len(want) {
			return false
		}
		for i := range recs {
			if !bytes.Equal(recs[i].Data, want[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTapSamplingAndLimit(t *testing.T) {
	var buf bytes.Buffer
	tap := &Tap{W: NewWriter(&buf, 0), SampleEvery: 3, Limit: 2}
	pool := packet.NewBufPool(128)
	for i := 0; i < 12; i++ {
		b := pool.Get(64)
		b.Data[0] = byte(i)
		tap.Observe(b, sim.Time(i)*sim.Time(sim.Microsecond))
		b.Release()
	}
	if tap.Err != nil {
		t.Fatal(tap.Err)
	}
	r, _ := NewReader(bytes.NewReader(buf.Bytes()))
	recs, _ := r.ReadAll()
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2 (every 3rd, limit 2)", len(recs))
	}
	if recs[0].Data[0] != 0 || recs[1].Data[0] != 3 {
		t.Errorf("sampled packets %d,%d want 0,3", recs[0].Data[0], recs[1].Data[0])
	}
}

func TestTapDefaultsSampleEveryOne(t *testing.T) {
	var buf bytes.Buffer
	tap := &Tap{W: NewWriter(&buf, 0)}
	pool := packet.NewBufPool(128)
	for i := 0; i < 5; i++ {
		tap.Observe(pool.Get(64), 0)
	}
	if tap.W.Packets != 5 {
		t.Errorf("packets = %d", tap.W.Packets)
	}
}
