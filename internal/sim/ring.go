package sim

// Ring is a growable FIFO ring buffer (deque). PushBack and PopFront are
// amortized O(1) and reuse one backing array forever, unlike the
// shift-by-reslice idiom (`items = items[1:]`) it replaces, which walks
// the backing array forward so every refill reallocates. PopFront zeroes
// the vacated slot, so popped pointer elements become collectable
// immediately instead of staying reachable through the backing array.
//
// The zero value is an empty ring. Ring is not safe for concurrent use;
// simulation code needs no locking because exactly one process runs at a
// time.
type Ring[T any] struct {
	buf  []T
	head int
	n    int
}

// Len returns the number of buffered elements.
func (r *Ring[T]) Len() int { return r.n }

// Cap returns the current backing-array capacity (for tests asserting
// that drained rings do not grow without bound).
func (r *Ring[T]) Cap() int { return len(r.buf) }

// grow doubles the backing array (capacity is always a power of two, so
// index masking stays a single AND).
func (r *Ring[T]) grow() {
	c := len(r.buf) * 2
	if c < 8 {
		c = 8
	}
	buf := make([]T, c)
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf, r.head = buf, 0
}

// PushBack appends v at the tail.
func (r *Ring[T]) PushBack(v T) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = v
	r.n++
}

// PopFront removes and returns the head element, zeroing its slot.
// It panics on an empty ring.
func (r *Ring[T]) PopFront() T {
	if r.n == 0 {
		panic("sim: PopFront on empty Ring")
	}
	var zero T
	v := r.buf[r.head]
	r.buf[r.head] = zero
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return v
}

// Front returns the head element without removing it. It panics on an
// empty ring.
func (r *Ring[T]) Front() T {
	if r.n == 0 {
		panic("sim: Front on empty Ring")
	}
	return r.buf[r.head]
}

// At returns the i-th element from the head (0 = front) without removing
// it. It panics when i is out of range.
func (r *Ring[T]) At(i int) T {
	if i < 0 || i >= r.n {
		panic("sim: Ring.At out of range")
	}
	return r.buf[(r.head+i)&(len(r.buf)-1)]
}
