package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDurationConversions(t *testing.T) {
	if Second.Seconds() != 1.0 {
		t.Errorf("Second.Seconds() = %v, want 1", Second.Seconds())
	}
	if Microsecond.Microseconds() != 1.0 {
		t.Errorf("Microsecond.Microseconds() = %v, want 1", Microsecond.Microseconds())
	}
	if d := DurationFromSeconds(1.5); d != 1500*Millisecond {
		t.Errorf("DurationFromSeconds(1.5) = %v, want %v", d, 1500*Millisecond)
	}
	if d := DurationFromSeconds(0); d != 0 {
		t.Errorf("DurationFromSeconds(0) = %v, want 0", d)
	}
}

func TestEventOrdering(t *testing.T) {
	env := NewEnv()
	var order []int
	env.After(3*Microsecond, func() { order = append(order, 3) })
	env.After(1*Microsecond, func() { order = append(order, 1) })
	env.After(2*Microsecond, func() { order = append(order, 2) })
	env.Run(0)
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	env := NewEnv()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		env.After(5*Nanosecond, func() { order = append(order, i) })
	}
	env.Run(0)
	for i := 0; i < 10; i++ {
		if order[i] != i {
			t.Fatalf("simultaneous events not FIFO: %v", order)
		}
	}
}

func TestRunUntilStopsClock(t *testing.T) {
	env := NewEnv()
	fired := false
	env.After(10*Microsecond, func() { fired = true })
	end := env.Run(Time(5 * Microsecond))
	if fired {
		t.Error("event past the horizon fired")
	}
	if end != Time(5*Microsecond) {
		t.Errorf("Run returned %v, want 5us", end)
	}
}

func TestRunReentryPanics(t *testing.T) {
	env := NewEnv()
	env.After(0, func() {
		defer func() {
			if recover() == nil {
				t.Error("re-entrant Run did not panic")
			}
		}()
		env.Run(0)
	})
	env.Run(0)
}

func TestPastEventClampsToNow(t *testing.T) {
	env := NewEnv()
	var at Time
	env.After(10*Microsecond, func() {
		env.At(Time(3*Microsecond), func() { at = env.Now() })
	})
	env.Run(0)
	if at != Time(10*Microsecond) {
		t.Errorf("past event ran at %v, want clamped to 10us", at)
	}
}

func TestProcSleep(t *testing.T) {
	env := NewEnv()
	var wake Time
	env.Go("sleeper", func(p *Proc) {
		p.Sleep(7 * Microsecond)
		wake = p.Now()
	})
	env.Run(0)
	if wake != Time(7*Microsecond) {
		t.Errorf("woke at %v, want 7us", wake)
	}
}

func TestProcSleepSequence(t *testing.T) {
	env := NewEnv()
	var marks []Time
	env.Go("p", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(1 * Microsecond)
			marks = append(marks, p.Now())
		}
	})
	env.Run(0)
	for i, m := range marks {
		want := Time((i + 1)) * Time(Microsecond)
		if m != want {
			t.Errorf("mark %d at %v, want %v", i, m, want)
		}
	}
}

func TestSleepUntilPastIsNoop(t *testing.T) {
	env := NewEnv()
	env.Go("p", func(p *Proc) {
		p.Sleep(5 * Microsecond)
		p.SleepUntil(Time(1 * Microsecond)) // in the past
		if p.Now() != Time(5*Microsecond) {
			t.Errorf("SleepUntil past moved clock to %v", p.Now())
		}
	})
	env.Run(0)
}

func TestTwoProcsInterleave(t *testing.T) {
	env := NewEnv()
	var order []string
	env.Go("a", func(p *Proc) {
		p.Sleep(1 * Microsecond)
		order = append(order, "a1")
		p.Sleep(2 * Microsecond)
		order = append(order, "a3")
	})
	env.Go("b", func(p *Proc) {
		p.Sleep(2 * Microsecond)
		order = append(order, "b2")
	})
	env.Run(0)
	want := []string{"a1", "b2", "a3"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestQueueBlockingGet(t *testing.T) {
	env := NewEnv()
	q := NewQueue[int](env, 0)
	var got int
	var gotAt Time
	env.Go("consumer", func(p *Proc) {
		got = q.Get(p)
		gotAt = p.Now()
	})
	env.Go("producer", func(p *Proc) {
		p.Sleep(5 * Microsecond)
		q.Put(p, 42)
	})
	env.Run(0)
	if got != 42 {
		t.Errorf("got %d, want 42", got)
	}
	if gotAt != Time(5*Microsecond) {
		t.Errorf("consumer woke at %v, want 5us", gotAt)
	}
}

func TestQueueBoundedPutBlocks(t *testing.T) {
	env := NewEnv()
	q := NewQueue[int](env, 2)
	var putDone Time
	env.Go("producer", func(p *Proc) {
		q.Put(p, 1)
		q.Put(p, 2)
		q.Put(p, 3) // must block until the consumer drains one
		putDone = p.Now()
	})
	env.Go("consumer", func(p *Proc) {
		p.Sleep(10 * Microsecond)
		q.Get(p)
	})
	env.Run(0)
	if putDone != Time(10*Microsecond) {
		t.Errorf("third Put completed at %v, want 10us", putDone)
	}
	if q.Len() != 2 {
		t.Errorf("queue len = %d, want 2", q.Len())
	}
}

func TestQueueFIFOAcrossManyItems(t *testing.T) {
	env := NewEnv()
	q := NewQueue[int](env, 0)
	var got []int
	env.Go("producer", func(p *Proc) {
		for i := 0; i < 100; i++ {
			q.Put(p, i)
			if i%7 == 0 {
				p.Sleep(1 * Nanosecond)
			}
		}
	})
	env.Go("consumer", func(p *Proc) {
		for i := 0; i < 100; i++ {
			got = append(got, q.Get(p))
		}
	})
	env.Run(0)
	if len(got) != 100 {
		t.Fatalf("received %d items, want 100", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("item %d = %d, want %d (FIFO violated)", i, v, i)
		}
	}
}

func TestQueueTryGetTryPut(t *testing.T) {
	env := NewEnv()
	q := NewQueue[string](env, 1)
	if _, ok := q.TryGet(); ok {
		t.Error("TryGet on empty queue succeeded")
	}
	if !q.TryPut("x") {
		t.Error("TryPut on empty bounded queue failed")
	}
	if q.TryPut("y") {
		t.Error("TryPut on full queue succeeded")
	}
	v, ok := q.TryGet()
	if !ok || v != "x" {
		t.Errorf("TryGet = %q,%v want x,true", v, ok)
	}
}

func TestQueueDrainUpTo(t *testing.T) {
	env := NewEnv()
	q := NewQueue[int](env, 0)
	for i := 0; i < 5; i++ {
		q.TryPut(i)
	}
	out := q.DrainUpTo(3)
	if len(out) != 3 || out[0] != 0 || out[2] != 2 {
		t.Errorf("DrainUpTo(3) = %v", out)
	}
	if q.Len() != 2 {
		t.Errorf("len after drain = %d, want 2", q.Len())
	}
	out = q.DrainUpTo(10)
	if len(out) != 2 {
		t.Errorf("DrainUpTo(10) = %v, want remaining 2", out)
	}
	if out2 := q.DrainUpTo(4); out2 != nil {
		t.Errorf("DrainUpTo on empty = %v, want nil", out2)
	}
}

func TestQueueDrainWakesPutters(t *testing.T) {
	env := NewEnv()
	q := NewQueue[int](env, 1)
	var done Time
	env.Go("producer", func(p *Proc) {
		q.Put(p, 1)
		q.Put(p, 2) // blocks
		done = p.Now()
	})
	env.Go("drainer", func(p *Proc) {
		p.Sleep(3 * Microsecond)
		q.DrainUpTo(1)
	})
	env.Run(0)
	if done != Time(3*Microsecond) {
		t.Errorf("blocked putter resumed at %v, want 3us", done)
	}
}

func TestServerSerializes(t *testing.T) {
	env := NewEnv()
	srv := NewServer(env, "link")
	var aDone, bDone Time
	env.Go("a", func(p *Proc) {
		srv.Use(p, 10*Microsecond)
		aDone = p.Now()
	})
	env.Go("b", func(p *Proc) {
		p.Sleep(1 * Microsecond)
		srv.Use(p, 10*Microsecond)
		bDone = p.Now()
	})
	env.Run(0)
	if aDone != Time(10*Microsecond) {
		t.Errorf("a done at %v, want 10us", aDone)
	}
	if bDone != Time(20*Microsecond) {
		t.Errorf("b done at %v, want 20us (queued behind a)", bDone)
	}
}

func TestServerIdleGap(t *testing.T) {
	env := NewEnv()
	srv := NewServer(env, "link")
	var done Time
	env.Go("a", func(p *Proc) {
		srv.Use(p, 5*Microsecond)
		p.Sleep(100 * Microsecond) // server idles
		srv.Use(p, 5*Microsecond)
		done = p.Now()
	})
	env.Run(0)
	if done != Time(110*Microsecond) {
		t.Errorf("done at %v, want 110us (idle gap must not accumulate)", done)
	}
	if srv.BusyTime() != 10*Microsecond {
		t.Errorf("busy = %v, want 10us", srv.BusyTime())
	}
}

func TestServerSchedule(t *testing.T) {
	env := NewEnv()
	srv := NewServer(env, "dma")
	t1 := srv.Schedule(4 * Microsecond)
	t2 := srv.Schedule(4 * Microsecond)
	if t1 != Time(4*Microsecond) || t2 != Time(8*Microsecond) {
		t.Errorf("Schedule = %v,%v want 4us,8us", t1, t2)
	}
	if srv.Backlog() != 8*Microsecond {
		t.Errorf("backlog = %v, want 8us", srv.Backlog())
	}
}

func TestServerUtilization(t *testing.T) {
	env := NewEnv()
	srv := NewServer(env, "link")
	env.Go("a", func(p *Proc) {
		srv.Use(p, 25*Microsecond)
		p.Sleep(75 * Microsecond)
	})
	env.Run(0)
	if u := srv.Utilization(0); u < 0.24 || u > 0.26 {
		t.Errorf("utilization = %v, want 0.25", u)
	}
	if u := srv.Utilization(env.Now()); u != 0 {
		t.Errorf("utilization over zero window = %v, want 0", u)
	}
}

func TestSignalBroadcast(t *testing.T) {
	env := NewEnv()
	sig := NewSignal(env)
	woke := 0
	for i := 0; i < 3; i++ {
		env.Go("w", func(p *Proc) {
			sig.Wait(p)
			woke++
		})
	}
	env.Go("firer", func(p *Proc) {
		p.Sleep(2 * Microsecond)
		if sig.Waiters() != 3 {
			t.Errorf("waiters = %d, want 3", sig.Waiters())
		}
		sig.Fire()
	})
	env.Run(0)
	if woke != 3 {
		t.Errorf("woke = %d, want 3", woke)
	}
	if sig.Waiters() != 0 {
		t.Errorf("waiters after fire = %d", sig.Waiters())
	}
}

func TestSignalFireWithNoWaitersIsNotLatched(t *testing.T) {
	env := NewEnv()
	sig := NewSignal(env)
	sig.Fire() // nobody waiting; must not latch
	woke := false
	env.Go("w", func(p *Proc) {
		// Use a separate timeout proc to release the waiter so Run ends.
		sig.Wait(p)
		woke = true
	})
	env.Go("t", func(p *Proc) {
		p.Sleep(1 * Microsecond)
		sig.Fire()
	})
	env.Run(0)
	if !woke {
		t.Error("waiter never woke from second fire")
	}
}

// Property: for any set of event delays, events execute in nondecreasing
// time order and the clock never goes backwards.
func TestEventClockMonotonicProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		env := NewEnv()
		var times []Time
		for _, d := range delays {
			env.After(Duration(d)*Nanosecond, func() { times = append(times, env.Now()) })
		}
		env.Run(0)
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a bounded queue never exceeds its capacity and delivers items
// in insertion order, no matter the interleaving of sleeps.
func TestQueueFIFOProperty(t *testing.T) {
	f := func(seed int64, capacity uint8) bool {
		cap := int(capacity%8) + 1
		rng := rand.New(rand.NewSource(seed))
		env := NewEnv()
		q := NewQueue[int](env, cap)
		const n = 200
		var got []int
		overflow := false
		env.Go("producer", func(p *Proc) {
			for i := 0; i < n; i++ {
				q.Put(p, i)
				if q.Len() > cap {
					overflow = true
				}
				if rng.Intn(3) == 0 {
					p.Sleep(Duration(rng.Intn(100)) * Nanosecond)
				}
			}
		})
		env.Go("consumer", func(p *Proc) {
			for i := 0; i < n; i++ {
				got = append(got, q.Get(p))
				if rng.Intn(3) == 0 {
					p.Sleep(Duration(rng.Intn(100)) * Nanosecond)
				}
			}
		})
		env.Run(0)
		if overflow || len(got) != n {
			return false
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: a FIFO server's completions are spaced at least the service
// time apart.
func TestServerSpacingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		env := NewEnv()
		srv := NewServer(env, "s")
		var completions []Time
		for i := 0; i < 20; i++ {
			start := Duration(rng.Intn(1000)) * Nanosecond
			env.Go("u", func(p *Proc) {
				p.Sleep(start)
				srv.Use(p, 100*Nanosecond)
				completions = append(completions, p.Now())
			})
		}
		env.Run(0)
		for i := 1; i < len(completions); i++ {
			if completions[i]-completions[i-1] < Time(100*Nanosecond) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestManyProcsDeterminism(t *testing.T) {
	run := func() []int {
		env := NewEnv()
		q := NewQueue[int](env, 4)
		var got []int
		for i := 0; i < 8; i++ {
			i := i
			env.Go("producer", func(p *Proc) {
				for j := 0; j < 10; j++ {
					p.Sleep(Duration(i+1) * Microsecond)
					q.Put(p, i*100+j)
				}
			})
		}
		env.Go("consumer", func(p *Proc) {
			for k := 0; k < 80; k++ {
				got = append(got, q.Get(p))
			}
		})
		env.Run(0)
		return got
	}
	a, b := run(), run()
	if len(a) != 80 || len(b) != 80 {
		t.Fatalf("lens = %d,%d want 80", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestServerScheduleAt(t *testing.T) {
	env := NewEnv()
	srv := NewServer(env, "s")
	// notBefore in the future: service starts there.
	done := srv.ScheduleAt(Time(100*Microsecond), 10*Microsecond)
	if done != Time(110*Microsecond) {
		t.Errorf("done = %v, want 110us", done)
	}
	// Next reservation queues behind the first even though notBefore is
	// earlier.
	done2 := srv.ScheduleAt(Time(50*Microsecond), 5*Microsecond)
	if done2 != Time(115*Microsecond) {
		t.Errorf("done2 = %v, want 115us", done2)
	}
	// notBefore in the past behaves like Schedule.
	env.After(200*Microsecond, func() {
		if d := srv.ScheduleAt(Time(1*Microsecond), 5*Microsecond); d != Time(205*Microsecond) {
			t.Errorf("past notBefore: done = %v, want 205us", d)
		}
	})
	env.Run(0)
}

func TestServerScheduleAtCountsBusyOnly(t *testing.T) {
	env := NewEnv()
	srv := NewServer(env, "s")
	srv.ScheduleAt(Time(1*Millisecond), 10*Microsecond)
	// Busy time excludes the idle gap before notBefore.
	if srv.BusyTime() != 10*Microsecond {
		t.Errorf("busy = %v, want 10us", srv.BusyTime())
	}
	if srv.Backlog() != Duration(Time(1*Millisecond)+Time(10*Microsecond)) {
		t.Errorf("backlog = %v", srv.Backlog())
	}
}

func TestMultiplePuttersWakeInFIFOOrder(t *testing.T) {
	env := NewEnv()
	q := NewQueue[int](env, 1)
	var order []int
	q.TryPut(0) // fill the queue
	for i := 1; i <= 3; i++ {
		i := i
		env.Go("putter", func(p *Proc) {
			q.Put(p, i)
			order = append(order, i)
		})
	}
	env.Go("drainer", func(p *Proc) {
		p.Sleep(1 * Microsecond)
		for j := 0; j < 4; j++ {
			q.Get(p)
			p.Sleep(1 * Microsecond)
		}
	})
	env.Run(0)
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Fatalf("putters woke out of order: %v", order)
		}
	}
	if len(order) != 3 {
		t.Fatalf("only %d putters completed", len(order))
	}
}

func TestDurationFromSecondsRounding(t *testing.T) {
	ps := func(n float64) float64 { return n * 1e-12 }
	cases := []struct {
		s    float64
		want Duration
	}{
		// Round-to-nearest on both signs.
		{ps(1.4), 1}, {ps(1.6), 2},
		{ps(-1.4), -1}, {ps(-1.6), -2},
		// Ties round away from zero (the old +0.5 truncation gave
		// -1.5ps -> -1ps and -0.7ps -> 0).
		{ps(1.5), 2}, {ps(-1.5), -2},
		{ps(0.7), 1}, {ps(-0.7), -1},
		{ps(0.4), 0}, {ps(-0.4), 0},
		// Symmetry at larger magnitudes.
		{1.5, 1500 * Millisecond}, {-1.5, -1500 * Millisecond},
		{-1.0, -Second},
	}
	for _, c := range cases {
		if got := DurationFromSeconds(c.s); got != c.want {
			t.Errorf("DurationFromSeconds(%v) = %d, want %d", c.s, got, c.want)
		}
	}
	// Negation symmetry property: f(-s) == -f(s).
	for _, s := range []float64{ps(0.1), ps(1.5), ps(2.5), 1e-9, 3.25e-6, 1.75} {
		if DurationFromSeconds(-s) != -DurationFromSeconds(s) {
			t.Errorf("rounding not symmetric at %v: %d vs %d",
				s, DurationFromSeconds(-s), DurationFromSeconds(s))
		}
	}
}

// recordingHooks collects ServerBusy callbacks for inspection.
type recordingHooks struct {
	spans []struct {
		id         int
		start, end Time
	}
}

func (h *recordingHooks) ServerBusy(s *Server, start, end Time) {
	h.spans = append(h.spans, struct {
		id         int
		start, end Time
	}{s.ID(), start, end})
}

func TestServerBusyHooksTileBusyTime(t *testing.T) {
	env := NewEnv()
	h := &recordingHooks{}
	env.SetHooks(h)
	srv := NewServer(env, "link")
	if srv.ID() != 1 || srv.Name() != "link" {
		t.Errorf("identity = %d/%q, want 1/link", srv.ID(), srv.Name())
	}
	env.Go("a", func(p *Proc) {
		srv.Use(p, 10*Microsecond)
		p.Sleep(5 * Microsecond)
		srv.Schedule(3 * Microsecond)
		srv.ScheduleAt(Time(100*Microsecond), 2*Microsecond)
		srv.Schedule(0) // zero reservations emit no span
	})
	env.Run(0)
	if len(h.spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(h.spans))
	}
	var total Duration
	for i, sp := range h.spans {
		if sp.end <= sp.start {
			t.Errorf("span %d empty: [%v,%v)", i, sp.start, sp.end)
		}
		total += Duration(sp.end - sp.start)
	}
	if total != srv.BusyTime() {
		t.Errorf("span total %v != busy time %v", total, srv.BusyTime())
	}
	// Spans of one FIFO server never overlap.
	for i := 1; i < len(h.spans); i++ {
		if h.spans[i].start < h.spans[i-1].end {
			t.Errorf("spans overlap: %v then %v", h.spans[i-1], h.spans[i])
		}
	}
	// The ScheduleAt gap (idle until 100us) must not be inside any span.
	if h.spans[2].start != Time(100*Microsecond) {
		t.Errorf("deferred span starts at %v, want 100us", h.spans[2].start)
	}
}

func TestServerIDsUniquePerEnv(t *testing.T) {
	env := NewEnv()
	a := NewServer(env, "x")
	b := NewServer(env, "x")
	if a.ID() == b.ID() {
		t.Errorf("duplicate server IDs: %d", a.ID())
	}
	env2 := NewEnv()
	c := NewServer(env2, "y")
	if c.ID() != 1 {
		t.Errorf("fresh env first server ID = %d, want 1", c.ID())
	}
}
