#!/bin/sh
# bench.sh measures the simulator's host-side performance and records
# the trajectory in BENCH_PR10.json:
#
#   - BenchmarkFig5Batch:     the packet-I/O engine hot path (8 batch
#                             points x 20 simulated ms of single-core
#                             forwarding = 160e6 simulated ns per op)
#   - BenchmarkRouterIPv4GPU: the full CPU+GPU router framework
#                             (1 simulated ms per op = 1e6 sim ns)
#   - BenchmarkFabricWorkers: the conservative-parallel cluster fabric
#                             (16 nodes, VLB, 50 simulated ms) at 1, 2
#                             and 8 partition workers. Results are
#                             byte-identical at every worker count (CI
#                             enforces it); host_cores records how many
#                             cores the curve had to work with.
#   - BenchmarkLeafSpineScale: the leaf-spine fabric at 16/64/128
#                             leaves (5 simulated ms, Zipf flows) — the
#                             scale-frontier curve of the timer-wheel
#                             scheduler and the dirty-link barrier.
#   - psbench_all:            wall-clock seconds for `psbench all` at
#                             -j 1 and -j $(nproc); byte-identical
#   - psbench_fabric:         wall-clock seconds for the partitioned
#                             fabric + cluster + leafspine experiments
#                             at -p 1 and -p 8; byte-identical
#
# Go benchmarks other than FabricWorkers run pinned to one worker (see
# bench_test.go) so ns/op, B/op and allocs/op stay an apples-to-apples
# measure of the engine hot path across PRs. The "baseline" block is
# the PR 9 measurement (before the PR 10 scale pass: hierarchical timer
# wheel, dirty-link window barriers, batched link delivery, arithmetic
# wire serialization) and is fixed; "results" is refreshed on every
# run.
#
# Usage: scripts/bench.sh [benchtime]   (default 10x)
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${1:-10x}"
OUT="BENCH_PR10.json"
NPROC=$(nproc 2>/dev/null || echo 1)

echo "== go test -bench (benchtime=$BENCHTIME)"
RAW=$(go test -run '^$' -bench 'BenchmarkFig5Batch$|BenchmarkRouterIPv4GPU$|BenchmarkFabricWorkers|BenchmarkLeafSpineScale' \
	-benchmem -benchtime "$BENCHTIME" .)
printf '%s\n' "$RAW"

PSBENCH=$(mktemp /tmp/psbench.XXXXXX)
trap 'rm -f "$PSBENCH" /tmp/psbench-j1.$$ /tmp/psbench-jN.$$ /tmp/psbench-p1.$$ /tmp/psbench-p8.$$' EXIT
go build -o "$PSBENCH" ./cmd/psbench

wall() { # wall <outfile> <psbench args...>: prints elapsed seconds
	_out="$1"; shift
	_t0=$(date +%s%N)
	"$PSBENCH" "$@" >"$_out" 2>/dev/null
	_t1=$(date +%s%N)
	awk -v a="$_t0" -v b="$_t1" 'BEGIN { printf "%.1f", (b - a) / 1e9 }'
}

echo "== psbench all -j 1 (serial)"
J1=$(wall /tmp/psbench-j1.$$ all -j 1)
echo "   ${J1}s"
echo "== psbench all -j $NPROC (parallel harness)"
JN=$(wall /tmp/psbench-jN.$$ all -j "$NPROC")
echo "   ${JN}s"

if ! cmp -s /tmp/psbench-j1.$$ /tmp/psbench-jN.$$; then
	echo "FATAL: psbench all output differs between -j 1 and -j $NPROC" >&2
	exit 1
fi
echo "== psbench output byte-identical across -j 1 / -j $NPROC"

echo "== psbench fabric cluster leafspine -p 1 (serial world)"
P1=$(wall /tmp/psbench-p1.$$ fabric cluster leafspine -metrics -p 1)
echo "   ${P1}s"
echo "== psbench fabric cluster leafspine -p 8 (partitioned world)"
P8=$(wall /tmp/psbench-p8.$$ fabric cluster leafspine -metrics -p 8)
echo "   ${P8}s"

if ! cmp -s /tmp/psbench-p1.$$ /tmp/psbench-p8.$$; then
	echo "FATAL: psbench fabric output differs between -p 1 and -p 8" >&2
	exit 1
fi
echo "== psbench output byte-identical across -p 1 / -p 8"

printf '%s\n' "$RAW" | awk -v benchtime="$BENCHTIME" \
	-v j1="$J1" -v jn="$JN" -v p1="$P1" -v p8="$P8" -v nproc="$NPROC" '
/^Benchmark/ {
	# BenchmarkName[/sub]  N  ns/op  [B/op  allocs/op]
	name = $1
	sub(/-[0-9]+$/, "", name)   # strip -GOMAXPROCS suffix if present
	ns[name] = $3; bytes[name] = $5; allocs[name] = $7
	order[n++] = name
}
END {
	# Simulated virtual time advanced per benchmark iteration, in ns.
	sim["BenchmarkFig5Batch"]     = 160000000  # 8 batch points x 20 ms
	sim["BenchmarkRouterIPv4GPU"] = 1000000    # 1 ms per op
	fabricSim = 50000000                       # 50 sim ms per fabric op
	lsSim     = 5000000                        # 5 sim ms per leafspine op

	base["BenchmarkFig5Batch"]     = "{ \"ns_per_op\": 38039730, \"bytes_per_op\": 886339, \"allocs_per_op\": 1210, \"sim_ns_per_wall_ns\": 4.206 }"
	base["BenchmarkRouterIPv4GPU"] = "{ \"ns_per_op\": 14592800, \"bytes_per_op\": 1414972, \"allocs_per_op\": 2162, \"sim_ns_per_wall_ns\": 0.069 }"

	printf "{\n"
	printf "  \"description\": \"host-side simulator performance; baseline = PR 9 (before the PR 10 timer-wheel + dirty-link-barrier scale pass)\",\n"
	printf "  \"benchtime\": \"%s\",\n", benchtime
	printf "  \"host_cores\": %d,\n", nproc
	printf "  \"baseline\": {\n"
	printf "    \"BenchmarkFig5Batch\": %s,\n", base["BenchmarkFig5Batch"]
	printf "    \"BenchmarkRouterIPv4GPU\": %s,\n", base["BenchmarkRouterIPv4GPU"]
	printf "    \"fabric_workers\": { \"p1\": 297278155, \"p2\": 292934696, \"p8\": 286332978, \"sim_ns_per_wall_ns_p1\": 0.168, \"sim_ns_per_wall_ns_p8\": 0.175 },\n"
	printf "    \"psbench_all\": { \"wall_seconds_j1\": 58.4, \"wall_seconds_jN\": 61.8, \"jobs\": 1 }\n"
	printf "  },\n"
	printf "  \"results\": {\n"
	for (i = 0; i < n; i++) {
		name = order[i]
		if (name in sim) {
			printf "    \"%s\": { \"ns_per_op\": %d, \"bytes_per_op\": %d, \"allocs_per_op\": %d, \"sim_ns_per_op\": %d, \"sim_ns_per_wall_ns\": %.3f },\n", \
				name, ns[name], bytes[name], allocs[name], sim[name], \
				sim[name] / ns[name]
		}
	}
	printf "    \"fabric_workers\": {\n"
	printf "      \"_comment\": \"ns/op for the 16-node VLB fabric, 50 sim ms, vs partition workers; results byte-identical at every count\",\n"
	printf "      \"p1\": %d, \"p2\": %d, \"p8\": %d,\n", \
		ns["BenchmarkFabricWorkers/p1"], ns["BenchmarkFabricWorkers/p2"], \
		ns["BenchmarkFabricWorkers/p8"]
	printf "      \"sim_ns_per_op\": %d,\n", fabricSim
	printf "      \"sim_ns_per_wall_ns_p1\": %.3f, \"sim_ns_per_wall_ns_p8\": %.3f\n", \
		fabricSim / ns["BenchmarkFabricWorkers/p1"], \
		fabricSim / ns["BenchmarkFabricWorkers/p8"]
	printf "    },\n"
	printf "    \"leafspine_scale\": {\n"
	printf "      \"_comment\": \"ns/op for the leaf-spine fabric at 16/64/128 leaves (Uplinks 2, Zipf 1.1 flows, 5 sim ms, -p 1)\",\n"
	printf "      \"l16\": %d, \"l64\": %d, \"l128\": %d,\n", \
		ns["BenchmarkLeafSpineScale/l16"], ns["BenchmarkLeafSpineScale/l64"], \
		ns["BenchmarkLeafSpineScale/l128"]
	printf "      \"sim_ns_per_op\": %d,\n", lsSim
	printf "      \"sim_ns_per_wall_ns_l128\": %.3f\n", \
		lsSim / ns["BenchmarkLeafSpineScale/l128"]
	printf "    },\n"
	printf "    \"psbench_all\": { \"nproc\": %d, \"jobs_j1\": 1, \"jobs_jN\": %d, \"wall_seconds_j1\": %s, \"wall_seconds_jN\": %s, \"byte_identical\": true },\n", \
		nproc, nproc, j1, jn
	printf "    \"psbench_fabric\": { \"nproc\": %d, \"experiments\": \"fabric cluster leafspine\", \"wall_seconds_p1\": %s, \"wall_seconds_p8\": %s, \"byte_identical\": true }\n", \
		nproc, p1, p8
	printf "  }\n"
	printf "}\n"
}' >"$OUT"

echo "== wrote $OUT"
cat "$OUT"
