package faults

import (
	"reflect"
	"testing"

	"packetshader/internal/sim"
)

// recordingTarget logs every injection with its virtual timestamp.
type recordingTarget struct {
	env *sim.Env
	log []record
}

type record struct {
	at   sim.Time
	what string
	arg  int
}

func (t *recordingTarget) note(what string, arg int) {
	t.log = append(t.log, record{t.env.Now(), what, arg})
}

func (t *recordingTarget) SetCarrier(port int, up bool) {
	if up {
		t.note("carrier-up", port)
	} else {
		t.note("carrier-down", port)
	}
}
func (t *recordingTarget) RxDropBurst(port int, d sim.Duration) { t.note("burst", port) }
func (t *recordingTarget) FailGPU(node int)                     { t.note("fail", node) }
func (t *recordingTarget) RepairGPU(node int)                   { t.note("repair", node) }
func (t *recordingTarget) RetrainPCIe(node, div int)            { t.note("retrain", div) }

func TestPlanEventsSortedStable(t *testing.T) {
	pl := NewPlan().
		GPUOutage(0, 5*sim.Millisecond, 2*sim.Millisecond).
		LinkFlap(3, 1*sim.Millisecond, 1*sim.Millisecond).
		RxDropBurst(1, 5*sim.Millisecond, 100*sim.Microsecond)
	evs := pl.Events()
	if len(evs) != 5 {
		t.Fatalf("events = %d, want 5", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatalf("events not sorted: %v after %v", evs[i].At, evs[i-1].At)
		}
	}
	// Same-offset events keep insertion order: gpu-fail before burst.
	if evs[2].Kind != KindGPUFail || evs[3].Kind != KindRxDropBurst {
		t.Errorf("tie-break broken: got %v then %v", evs[2].Kind, evs[3].Kind)
	}
	// Events must not mutate the plan's own order.
	if pl.events[0].Kind != KindGPUFail {
		t.Error("Events() sorted the plan in place")
	}
}

func TestInjectorDeliversAtScheduledTimes(t *testing.T) {
	env := sim.NewEnv()
	tgt := &recordingTarget{env: env}
	pl := NewPlan().
		LinkFlap(2, 1*sim.Millisecond, 500*sim.Microsecond).
		GPUOutage(1, 2*sim.Millisecond, 1*sim.Millisecond)
	in := NewInjector(env, pl, tgt)
	// Arm after a warmup offset: events are relative to Arm time.
	env.At(sim.Time(10*sim.Millisecond), func() { in.Arm() })
	env.Run(0)

	want := []record{
		{sim.Time(11 * sim.Millisecond), "carrier-down", 2},
		{sim.Time(11*sim.Millisecond + 500*sim.Microsecond), "carrier-up", 2},
		{sim.Time(12 * sim.Millisecond), "fail", 1},
		{sim.Time(13 * sim.Millisecond), "repair", 1},
	}
	if !reflect.DeepEqual(tgt.log, want) {
		t.Errorf("log = %+v, want %+v", tgt.log, want)
	}
	if in.Injected(KindLinkDown) != 1 || in.Injected(KindGPURepair) != 1 {
		t.Errorf("injected counts wrong: down=%d repair=%d",
			in.Injected(KindLinkDown), in.Injected(KindGPURepair))
	}
}

func TestInjectorPCIeRetrainRestore(t *testing.T) {
	env := sim.NewEnv()
	tgt := &recordingTarget{env: env}
	in := NewInjector(env, NewPlan().PCIeRetrain(0, 0, sim.Duration(sim.Millisecond)), tgt)
	in.Arm()
	env.Run(0)
	want := []record{
		{0, "retrain", 2},
		{sim.Time(sim.Millisecond), "retrain", 1},
	}
	if !reflect.DeepEqual(tgt.log, want) {
		t.Errorf("log = %+v, want %+v", tgt.log, want)
	}
}

func TestRandomPlanDeterministic(t *testing.T) {
	a := Random(42, 20*sim.Millisecond, 8, 2, 6)
	b := Random(42, 20*sim.Millisecond, 8, 2, 6)
	if !reflect.DeepEqual(a.Events(), b.Events()) {
		t.Error("same seed produced different plans")
	}
	if a.Len() < 6 {
		t.Errorf("plan has %d events for 6 episodes", a.Len())
	}
	c := Random(43, 20*sim.Millisecond, 8, 2, 6)
	if reflect.DeepEqual(a.Events(), c.Events()) {
		t.Error("different seeds produced identical plans")
	}
	for _, ev := range a.Events() {
		if ev.At < 0 || ev.At > 20*sim.Millisecond+20*sim.Millisecond/16 {
			t.Errorf("event offset %v outside horizon", ev.At)
		}
		if ev.Port < 0 || ev.Port >= 8 || ev.Node < 0 || ev.Node >= 2 {
			t.Errorf("event target out of range: %+v", ev)
		}
	}
}

func TestNilAndEmptyPlans(t *testing.T) {
	var nilPlan *Plan
	if nilPlan.Len() != 0 || nilPlan.Events() != nil {
		t.Error("nil plan is not inert")
	}
	if NewPlan().Len() != 0 {
		t.Error("empty plan has events")
	}
}
