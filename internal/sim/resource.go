package sim

// Server is a FIFO single-server resource: a hardware unit (DMA engine,
// PCIe link, GPU copy engine) that handles one request at a time. Use
// charges the caller the service duration plus any queueing delay behind
// earlier requests. This serializing behaviour is what creates contention
// on shared links in the simulation.
type Server struct {
	env  *Env
	name string
	// freeAt is the virtual time at which the server finishes its
	// currently queued work.
	freeAt Time
	// busy accumulates total service time, for utilization accounting.
	busy Duration
}

// NewServer creates a named FIFO server.
func NewServer(env *Env, name string) *Server {
	return &Server{env: env, name: name}
}

// Use blocks p until the server has completed all earlier requests and
// then for d of service time. It returns the total time p waited
// (queueing + service).
func (s *Server) Use(p *Proc, d Duration) Duration {
	start := s.env.now
	if s.freeAt < start {
		s.freeAt = start
	}
	s.freeAt += Time(d)
	s.busy += d
	p.SleepUntil(s.freeAt)
	return Duration(s.env.now - start)
}

// Schedule reserves d of service time without blocking and returns the
// completion time. Useful for fire-and-forget DMA where the initiator
// does not wait (e.g. NIC TX descriptors).
func (s *Server) Schedule(d Duration) Time {
	now := s.env.now
	if s.freeAt < now {
		s.freeAt = now
	}
	s.freeAt += Time(d)
	s.busy += d
	return s.freeAt
}

// Now returns the server's environment time (convenience for callers
// computing express completions).
func (s *Server) Now() Time { return s.env.now }

// ScheduleAt reserves d of service time that may not begin before
// notBefore (used to express pipeline dependencies: "this copy starts
// only after that kernel finishes"). Returns the completion time.
func (s *Server) ScheduleAt(notBefore Time, d Duration) Time {
	now := s.env.now
	if s.freeAt < now {
		s.freeAt = now
	}
	if s.freeAt < notBefore {
		s.freeAt = notBefore
	}
	s.freeAt += Time(d)
	s.busy += d
	return s.freeAt
}

// Backlog returns how far in the future the server's queue currently
// extends.
func (s *Server) Backlog() Duration {
	if s.freeAt <= s.env.now {
		return 0
	}
	return Duration(s.freeAt - s.env.now)
}

// BusyTime returns the cumulative service time charged so far.
func (s *Server) BusyTime() Duration { return s.busy }

// Utilization returns busy time divided by elapsed time since t0.
func (s *Server) Utilization(t0 Time) float64 {
	elapsed := s.env.now - t0
	if elapsed <= 0 {
		return 0
	}
	return float64(s.busy) / float64(elapsed)
}

// Signal is a broadcast condition: processes Wait on it and a later Fire
// releases all current waiters at the same instant. Fires with no waiters
// are not remembered (it is a condition variable, not a latch).
type Signal struct {
	env     *Env
	waiters []*Proc
}

// NewSignal creates a signal in env.
func NewSignal(env *Env) *Signal { return &Signal{env: env} }

// Wait blocks p until the next Fire.
func (s *Signal) Wait(p *Proc) {
	s.waiters = append(s.waiters, p)
	p.yield()
}

// Fire wakes every process currently waiting, in FIFO order.
func (s *Signal) Fire() {
	ws := s.waiters
	s.waiters = nil
	for _, w := range ws {
		w := w
		s.env.At(s.env.now, func() { s.env.resumeProc(w) })
	}
}

// Waiters returns the number of processes currently blocked on the signal.
func (s *Signal) Waiters() int { return len(s.waiters) }
