package experiments

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sync"
)

// ---------------------------------------------------------------------------
// Parallel job runner.
//
// Every experiment — and every point inside a sweep — is an independent
// deterministic simulation with its own sim.Env, so the evaluation is
// the classic Multiple-Replications-In-Parallel structure: enumerate
// jobs, execute each on its own goroutine on a bounded worker pool, and
// merge the results in job order. Because each job builds its own world
// and only reads the shared fixtures (a contract enforced by the
// sharedfixture pslint analyzer), the merged output is byte-identical
// to a serial run no matter how the host scheduler interleaves jobs.
// ---------------------------------------------------------------------------

// A Runner executes experiments on a bounded worker pool. The pool is
// shared across every experiment the Runner drives, so `psbench all -j N`
// keeps exactly N simulation jobs in flight regardless of how uneven
// the per-experiment job counts are.
type Runner struct {
	sem chan struct{}
}

// NewRunner returns a Runner executing at most workers simulation jobs
// at once; workers < 1 selects GOMAXPROCS.
func NewRunner(workers int) *Runner {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{sem: make(chan struct{}, workers)}
}

// Workers returns the pool width.
func (r *Runner) Workers() int { return cap(r.sem) }

// Ctx is the execution context handed to one experiment invocation: the
// shared worker pool plus the experiment-scoped metrics buffer. Metrics
// are buffered per job and flushed in job order, so `-metrics` output is
// byte-identical between serial and parallel runs.
type Ctx struct {
	r       *Runner
	metrics bytes.Buffer
}

// Point is one job's private output context. Whatever a job writes
// through MetricsWriter surfaces after the experiment completes, in job
// order, never interleaved with other jobs.
type Point struct {
	on  bool
	buf bytes.Buffer
}

// MetricsWriter returns the job's metrics sink, or nil when metrics
// dumps are disabled (the default; see SetMetricsWriter).
func (p *Point) MetricsWriter() io.Writer {
	if p == nil || !p.on {
		return nil
	}
	return &p.buf
}

// MapPoints runs fn(i, pt) for every i in [0, n) as independent jobs on
// c's worker pool — each on its own goroutine, building its own world —
// and returns the results in index order. fn must be self-contained:
// beyond the read-only shared fixtures, everything it touches must be
// reachable only from its own stack (the sharedfixture pslint analyzer
// enforces the no-package-state rule). MapPoints is a barrier: it
// returns only after every job finished, with per-job metrics appended
// to the experiment's buffer in job order.
func MapPoints[T any](c *Ctx, n int, fn func(i int, pt *Point) T) []T {
	out := make([]T, n)
	pts := make([]*Point, n)
	panics := make([]any, n)
	stacks := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		pts[i] = &Point{on: metricsW != nil}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil {
					panics[i] = v
					stacks[i] = debug.Stack()
				}
			}()
			c.r.sem <- struct{}{}
			defer func() { <-c.r.sem }()
			out[i] = fn(i, pts[i])
		}(i)
	}
	wg.Wait()
	for i, v := range panics {
		if v != nil {
			// Re-panic on the caller's goroutine so a failing job surfaces
			// like a failing serial run (lowest job index wins, for a
			// deterministic failure).
			panic(fmt.Sprintf("experiments: job %d/%d panicked: %v\n%s", i, n, v, stacks[i]))
		}
	}
	for _, pt := range pts {
		c.metrics.Write(pt.buf.Bytes())
	}
	return out
}

// Run executes the experiments named by ids — Registry IDs or "all", in
// any mix — on r's worker pool, printing each result to w in the order
// the ids were given ("all" expands in Registry order). All ids are
// validated before anything runs. Experiments execute concurrently,
// their jobs sharing the pool, but results (and buffered metrics) are
// emitted strictly in id order, so the bytes written to w are identical
// for every pool width.
func (r *Runner) Run(w io.Writer, ids ...string) error {
	selected, err := resolve(ids)
	if err != nil {
		return err
	}
	r.prebuildFixtures(selected)
	type slot struct {
		ctx  *Ctx
		res  *Result
		done chan struct{}
	}
	slots := make([]*slot, len(selected))
	for i, e := range selected {
		s := &slot{ctx: &Ctx{r: r}, done: make(chan struct{})}
		slots[i] = s
		go func(e registryEntry) {
			defer close(s.done)
			s.res = e.Run(s.ctx)
		}(e)
	}
	for _, s := range slots {
		<-s.done
		flushMetrics(s.ctx)
		s.res.Print(w)
	}
	return nil
}

// resolve expands "all" and validates every id against the Registry,
// preserving the order ids were given.
func resolve(ids []string) ([]registryEntry, error) {
	var out []registryEntry
	for _, id := range ids {
		if id == "all" {
			out = append(out, Registry...)
			continue
		}
		found := false
		for _, e := range Registry {
			if e.ID == id {
				out = append(out, e)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown experiment %q (use one of: %s, or all)", id, allIDs())
		}
	}
	return out, nil
}

// prebuildFixtures constructs the shared read-only fixtures the
// selected experiments declare, as pool jobs, before any experiment
// job starts — so workers never pile up behind a sync.Once build
// mid-run. Correctness does not depend on this: the Once makes a
// mid-run build safe, just slower.
func (r *Runner) prebuildFixtures(selected []registryEntry) {
	var bgp, v6 bool
	for _, e := range selected {
		bgp = bgp || e.UsesBGP
		v6 = v6 || e.UsesV6
	}
	var wg sync.WaitGroup
	build := func(fn func()) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.sem <- struct{}{}
			defer func() { <-r.sem }()
			fn()
		}()
	}
	if bgp {
		build(func() { BGPFixture() })
	}
	if v6 {
		build(func() { IPv6Fixture() })
	}
	wg.Wait()
}

// flushMetrics forwards an experiment's buffered metrics dumps to the
// process-wide metrics writer, in the job order they were merged.
func flushMetrics(c *Ctx) {
	if metricsW != nil && c.metrics.Len() > 0 {
		metricsW.Write(c.metrics.Bytes()) //nolint:errcheck // best-effort, like the serial dumps were
	}
}

// runSolo backs the exported one-shot experiment functions (Table1,
// Fig5, ...): a private GOMAXPROCS-wide pool, with buffered metrics
// flushed when the experiment ends.
func runSolo(fn func(*Ctx) *Result) *Result {
	c := &Ctx{r: NewRunner(0)}
	res := fn(c)
	flushMetrics(c)
	return res
}
