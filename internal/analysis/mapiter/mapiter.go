// Package mapiter flags `range` over maps where the loop body is
// order-sensitive: it schedules simulation work or emits experiment /
// report output.
//
// Go randomises map iteration order per run, so a map-range that calls
// into internal/sim (scheduling events, putting packets on queues) or
// writes output (fmt.Fprintf, strings.Builder, Result.AddRow) makes the
// simulation schedule or the report bytes differ between otherwise
// identical runs. Order-insensitive map loops (counting, building
// another map, finding a max) are deliberately not flagged, and a
// provably-safe loop can be suppressed with
//
//	//pslint:ignore mapiter <reason>
//
// The fix is almost always to iterate a sorted key slice.
package mapiter

import (
	"go/ast"
	"go/types"

	"packetshader/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "mapiter",
	Doc:  "flag range-over-map loops that schedule sim events or emit output (iteration order is random per run)",
	Run:  run,
}

// emitFuncs are package-level fmt functions that produce output in call
// order. Sprint* is excluded: it builds a value whose eventual use may
// well be order-insensitive.
var emitFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// emitMethods are method names that append to an output stream or
// report, regardless of receiver type (io.Writer, strings.Builder,
// bufio.Writer, experiments.Result, ...).
var emitMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"AddRow": true, "Note": true, "Print": true,
}

func run(pass *analysis.Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok || pass.IsTestFile(rs.Pos()) {
			return true
		}
		t := pass.TypesInfo.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if why := orderSensitive(pass, rs.Body); why != "" {
			pass.Reportf(rs.For,
				"range over map %s but the loop body %s; map order is random per run — iterate a sorted key slice",
				types.TypeString(t, types.RelativeTo(pass.Pkg)), why)
		}
		return true
	})
	return nil
}

// orderSensitive walks body (including nested function literals, which
// inherit the iteration's visit order) and describes the first
// order-sensitive call it finds, or returns "".
func orderSensitive(pass *analysis.Pass, body *ast.BlockStmt) (why string) {
	ast.Inspect(body, func(n ast.Node) bool {
		if why != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[sel.Sel]
		fn, ok := obj.(*types.Func)
		if !ok {
			return true
		}
		switch {
		case analysis.IsSimFunc(fn):
			why = "schedules simulation work (sim." + fn.Name() + ")"
		case fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && emitFuncs[fn.Name()]:
			why = "emits output (fmt." + fn.Name() + ")"
		case hasReceiver(fn) && emitMethods[fn.Name()]:
			why = "emits output (" + recvString(pass, fn) + "." + fn.Name() + ")"
		}
		return why == ""
	})
	return why
}

func hasReceiver(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

func recvString(pass *analysis.Pass, fn *types.Func) string {
	sig := fn.Type().(*types.Signature)
	return types.TypeString(sig.Recv().Type(), types.RelativeTo(pass.Pkg))
}
