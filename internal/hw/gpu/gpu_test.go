package gpu

import (
	"testing"

	"packetshader/internal/hw/pcie"
	"packetshader/internal/model"
	"packetshader/internal/sim"
)

func newDevice(env *sim.Env) *Device {
	return New(env, pcie.NewIOH(env, 0), 0)
}

func TestLaunchRunsKernelFunction(t *testing.T) {
	env := sim.NewEnv()
	dev := newDevice(env)
	ran := false
	env.Go("master", func(p *sim.Proc) {
		dev.Launch(p, &KernelIPv4, 64, 256, 128, 0, func() { ran = true })
	})
	env.Run(0)
	if !ran {
		t.Error("kernel function not executed")
	}
	if dev.Launches != 1 || dev.ThreadsRun != 64 {
		t.Errorf("stats = %d launches, %d threads", dev.Launches, dev.ThreadsRun)
	}
}

func TestLaunchZeroThreadsFree(t *testing.T) {
	env := sim.NewEnv()
	dev := newDevice(env)
	var dur sim.Duration
	env.Go("master", func(p *sim.Proc) {
		dur = dev.Launch(p, &KernelIPv4, 0, 0, 0, 0, nil)
	})
	env.Run(0)
	if dur != 0 || dev.Launches != 0 {
		t.Errorf("empty launch cost %v", dur)
	}
}

// ipv6Rate measures end-to-end GPU IPv6 lookup throughput at one batch
// size, replicating the Figure 2 microbenchmark: copy 16B addresses in,
// run the kernel, copy 2B results out, synchronize.
func ipv6Rate(batch int) float64 {
	env := sim.NewEnv()
	dev := newDevice(env)
	const reps = 20
	var total sim.Duration
	env.Go("master", func(p *sim.Proc) {
		for i := 0; i < reps; i++ {
			total += dev.Launch(p, &KernelIPv6, batch, batch*16, batch*2, 0, nil)
		}
	})
	env.Run(0)
	return float64(batch*reps) / total.Seconds()
}

// cpuRateX5550 is the modelled one-socket CPU lookup rate (Figure 2's
// CPU line).
func cpuRateX5550() float64 {
	perLookup := float64(model.IPv6LookupProbes) *
		(model.MemAccessCycles() + model.IPv6LookupComputeCycles)
	return 4 * model.CPUFreqHz / perLookup
}

func TestFig2ThroughputGrowsWithBatch(t *testing.T) {
	prev := 0.0
	for _, b := range []int{32, 64, 128, 256, 512, 1024, 4096} {
		r := ipv6Rate(b)
		if r <= prev {
			t.Errorf("rate(%d) = %.1f M/s not greater than rate at previous batch %.1f", b, r/1e6, prev/1e6)
		}
		prev = r
	}
}

func TestFig2CrossoverOneCPU(t *testing.T) {
	// §2.3: the GPU passes one X5550 with more than ~320 packets per
	// batch. Allow 256-512 for the crossover point.
	cpu := cpuRateX5550()
	if r := ipv6Rate(192); r >= cpu {
		t.Errorf("GPU already beats CPU at batch 192: %.1f vs %.1f M/s", r/1e6, cpu/1e6)
	}
	if r := ipv6Rate(512); r <= cpu {
		t.Errorf("GPU still behind CPU at batch 512: %.1f vs %.1f M/s", r/1e6, cpu/1e6)
	}
}

func TestFig2CrossoverTwoCPUs(t *testing.T) {
	// §2.3: passes two X5550s with more than ~640 packets.
	twoCPUs := 2 * cpuRateX5550()
	if r := ipv6Rate(384); r >= twoCPUs {
		t.Errorf("GPU beats 2 CPUs at batch 384: %.1f vs %.1f M/s", r/1e6, twoCPUs/1e6)
	}
	if r := ipv6Rate(1536); r <= twoCPUs {
		t.Errorf("GPU behind 2 CPUs at batch 1536: %.1f vs %.1f M/s", r/1e6, twoCPUs/1e6)
	}
}

func TestFig2PeakAboutTenCPUs(t *testing.T) {
	// §2.3: "at the peak performance one GTX480 is comparable to about
	// ten X5550 processors."
	peak := ipv6Rate(65536)
	ratio := peak / cpuRateX5550()
	if ratio < 6.5 || ratio > 13 {
		t.Errorf("GPU peak = %.1f× one X5550, want ≈10×", ratio)
	}
}

func TestExecTimeLatencyFloorSmallBatches(t *testing.T) {
	// A tiny launch is bounded by the dependent-access chain, not
	// throughput terms.
	one := KernelIPv6.ExecTime(1, 0)
	floor := sim.Duration(7 * model.GPUDevMemLatencyNs * float64(sim.Nanosecond))
	if one < floor*9/10 {
		t.Errorf("exec(1) = %v below the latency floor %v", one, floor)
	}
	// 32 threads still ride the same floor (one warp).
	if KernelIPv6.ExecTime(32, 0) > one*11/10 {
		t.Error("one warp should cost about the same as one thread")
	}
}

func TestExecTimeScalesBeyondResidency(t *testing.T) {
	resident := model.GPUSMs * model.GPUMaxWarpsPerSM * model.GPUWarpSize
	small := KernelIPv6.ExecTime(resident, 0)
	big := KernelIPv6.ExecTime(resident*4, 0)
	if big < small*3 {
		t.Errorf("4× threads beyond residency: %v vs %v, want ≈4×", big, small)
	}
}

func TestLaunchLatencyAppearsInRoundTrip(t *testing.T) {
	env := sim.NewEnv()
	dev := newDevice(env)
	var dur sim.Duration
	env.Go("m", func(p *sim.Proc) {
		dur = dev.Launch(p, &KernelIPv4, 1, 4, 2, 0, nil)
	})
	env.Run(0)
	// Must include at least launch base + both PCIe α + sync.
	minimum := sim.Duration((model.GPULaunchBaseNs + model.PCIeH2DAlphaNs +
		model.PCIeD2HAlphaNs + model.GPUSyncOverheadNs) * float64(sim.Nanosecond))
	if dur < minimum {
		t.Errorf("round trip %v below fixed-cost floor %v", dur, minimum)
	}
}

func TestIPsecKernelStreamBound(t *testing.T) {
	// Large packets: the cipher byte rate dominates. 1000 packets of
	// 1560B ≈ 1.56MB at 2.2 GB/s ≈ 709 µs.
	d := KernelIPsec.ExecTime(1000, 1000*1560)
	want := sim.DurationFromSeconds(1000 * 1560 / model.GPUIPsecBytesPerSec)
	if d < want || d > want*12/10 {
		t.Errorf("ipsec exec = %v, want ≈%v (stream bound)", d, want)
	}
}

func TestIPsecKernelPerPacketBound(t *testing.T) {
	// Tiny packets: the per-packet serial component dominates.
	d := KernelIPsec.ExecTime(10000, 10000*64)
	perPkt := sim.DurationFromSeconds(10000 * model.GPUIPsecPerPacketNs * 1e-9)
	if d < perPkt {
		t.Errorf("ipsec exec = %v, want ≥ per-packet bound %v", d, perPkt)
	}
}

func TestScaledBy(t *testing.T) {
	k := KernelOpenFlowWildcard.ScaledBy(1000)
	if k.RandomAccesses != KernelOpenFlowWildcard.RandomAccesses*1000 {
		t.Error("ScaledBy did not scale accesses")
	}
	if k.ComputeCycles != KernelOpenFlowWildcard.ComputeCycles*1000 {
		t.Error("ScaledBy did not scale compute")
	}
	// Original untouched (value receiver).
	if KernelOpenFlowWildcard.RandomAccesses != 0.25 {
		t.Error("ScaledBy mutated the prototype")
	}
}

func TestStreamsOverlapHelpsHeavyKernel(t *testing.T) {
	// Concurrent copy & execution (§5.4): for a copy-heavy workload the
	// streamed launch must beat the serialized one.
	const threads = 8192
	const bytes = threads * 1600
	run := func(streams int) sim.Duration {
		env := sim.NewEnv()
		dev := newDevice(env)
		var dur sim.Duration
		env.Go("m", func(p *sim.Proc) {
			if streams <= 1 {
				dur = dev.Launch(p, &KernelIPsec, threads, bytes, bytes, bytes, nil)
			} else {
				dur = dev.LaunchStreams(p, &KernelIPsec, streams, threads, bytes, bytes, bytes, nil)
			}
		})
		env.Run(0)
		return dur
	}
	serial := run(1)
	overlapped := run(4)
	if overlapped >= serial {
		t.Errorf("4 streams (%v) not faster than serial (%v)", overlapped, serial)
	}
}

func TestStreamsHurtLightKernel(t *testing.T) {
	// §5.4: "using multiple streams significantly degrades the
	// performance of lightweight kernels, such as IPv4 table lookup" —
	// the per-stream overhead outweighs the overlap.
	const threads = 256
	run := func(streams int) sim.Duration {
		env := sim.NewEnv()
		dev := newDevice(env)
		var dur sim.Duration
		env.Go("m", func(p *sim.Proc) {
			dur = dev.LaunchStreams(p, &KernelIPv4, streams, threads, threads*4, threads*2, 0, nil)
		})
		env.Run(0)
		return dur
	}
	if one, four := run(1), run(4); four <= one {
		t.Errorf("4 streams (%v) unexpectedly beat 1 (%v) for a light kernel", four, one)
	}
}

func TestDivergencePenaltyOnComputeBoundKernel(t *testing.T) {
	// A compute-heavy kernel (e.g. differentiated packet processing
	// with per-packet cipher suites, §5.5) pays for warp divergence;
	// sorting packets into uniform warps (factor 1) removes it.
	base := KernelSpec{Name: "cipher", ComputeCycles: 5000}
	diverged := base
	diverged.DivergenceFactor = 2 // both sides of one branch
	uniform := base.ExecTime(10000, 0)
	split := diverged.ExecTime(10000, 0)
	if split < uniform*19/10 {
		t.Errorf("divergence x2: %v vs %v, want ≈2x on a compute-bound kernel", split, uniform)
	}
}

func TestDivergenceIrrelevantForMemoryBoundKernel(t *testing.T) {
	// The lookup kernels are memory-bound: divergence must not change
	// their cost (the SIMT masking overlaps with memory stalls).
	diverged := KernelIPv6
	diverged.DivergenceFactor = 4
	a := KernelIPv6.ExecTime(65536, 0)
	b := diverged.ExecTime(65536, 0)
	if b != a {
		t.Errorf("memory-bound kernel slowed by divergence: %v vs %v", b, a)
	}
}

func TestDivergenceZeroTreatedAsOne(t *testing.T) {
	k := KernelSpec{ComputeCycles: 1000}
	k2 := k
	k2.DivergenceFactor = 1
	if k.ExecTime(1000, 0) != k2.ExecTime(1000, 0) {
		t.Error("zero divergence factor differs from 1")
	}
}

func TestLaunchCheckedWatchdogAndRepair(t *testing.T) {
	env := sim.NewEnv()
	dev := newDevice(env)
	const watchdog = 500 * sim.Microsecond
	ran := 0
	var okFailed, okRepaired bool
	var stallDur sim.Duration
	env.Go("master", func(p *sim.Proc) {
		dev.Fail()
		if dev.Healthy() {
			t.Error("Healthy() true after Fail()")
		}
		start := p.Now()
		okFailed = dev.LaunchChecked(p, &KernelIPv4, watchdog, 1, 64, 256, 128, 0,
			func() { ran++ })
		stallDur = sim.Duration(p.Now() - start)
		dev.Repair()
		okRepaired = dev.LaunchChecked(p, &KernelIPv4, watchdog, 1, 64, 256, 128, 0,
			func() { ran++ })
	})
	env.Run(0)
	if okFailed {
		t.Error("launch on failed device reported success")
	}
	if stallDur != watchdog {
		t.Errorf("stall burned %v, want the %v watchdog", stallDur, watchdog)
	}
	if dev.Stalls != 1 {
		t.Errorf("stalls = %d, want 1", dev.Stalls)
	}
	if !okRepaired || ran != 1 {
		t.Errorf("after repair ok=%v kernel runs=%d, want true/1", okRepaired, ran)
	}
	if dev.Launches != 1 {
		t.Errorf("launches = %d; stalled attempts must not count", dev.Launches)
	}
}

func TestLaunchCheckedUsesStreams(t *testing.T) {
	env := sim.NewEnv()
	dev := newDevice(env)
	ran := false
	env.Go("master", func(p *sim.Proc) {
		if !dev.LaunchChecked(p, &KernelIPv4, 500*sim.Microsecond, 4, 256, 1024, 512, 0,
			func() { ran = true }) {
			t.Error("healthy streamed launch failed")
		}
	})
	env.Run(0)
	if !ran || dev.Launches != 1 {
		t.Errorf("ran=%v launches=%d", ran, dev.Launches)
	}
}
