package mem

import (
	"unsafe"

	"packetshader/internal/model"
)

// CellMeta is the compact per-packet metadata of the huge packet buffer
// (§4.2): the paper trims Linux's 208-byte skb down to 8 bytes because
// router packets never traverse the host network stack.
type CellMeta struct {
	Len   uint16 // frame length
	Port  uint8  // ingress port
	Queue uint8  // ingress RX queue
	Flags uint32 // classification bits (slow path, checksum, ...)
}

// CellMeta flag bits.
const (
	FlagSlowPath uint32 = 1 << iota // destined to local stack / malformed
	FlagBadCsum                     // NIC marked bad IP checksum
	FlagTTLExpired
)

// HugeBuffer is the huge packet buffer: one contiguous data area of
// fixed 2048-byte cells plus a metadata array, sized to the RX ring and
// recycled as the ring wraps (§4.2). There is no per-packet allocation
// and the whole region is DMA-mapped once.
type HugeBuffer struct {
	data  []byte
	meta  []CellMeta
	cells int
}

// NewHugeBuffer allocates a buffer of n cells.
func NewHugeBuffer(n int) *HugeBuffer {
	return &HugeBuffer{
		data:  make([]byte, n*model.HugeCellDataBytes),
		meta:  make([]CellMeta, n),
		cells: n,
	}
}

// Cells returns the cell count.
func (h *HugeBuffer) Cells() int { return h.cells }

// Cell returns the data cell for ring slot i (i taken modulo the ring,
// which is how the hardware reuses cells on wrap).
func (h *HugeBuffer) Cell(i int) []byte {
	i %= h.cells
	off := i * model.HugeCellDataBytes
	return h.data[off : off+model.HugeCellDataBytes : off+model.HugeCellDataBytes]
}

// Meta returns the metadata cell for ring slot i.
func (h *HugeBuffer) Meta(i int) *CellMeta {
	return &h.meta[i%h.cells]
}

// MetaBytes is the compile-time size of CellMeta; it must stay at the
// paper's 8 bytes.
const MetaBytes = int(unsafe.Sizeof(CellMeta{}))

// DMAMapOps returns how many DMA mapping operations the huge buffer
// needs in total: one, for the whole region (§4.2) — versus one per
// packet on the skb path.
func (h *HugeBuffer) DMAMapOps() int { return 1 }
