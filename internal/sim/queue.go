package sim

// Queue is a bounded FIFO channel between simulated processes. Get blocks
// the calling process while the queue is empty; Put blocks while it is
// full. Waiters are released in FIFO order, keeping simulations
// deterministic. A capacity of 0 means unbounded.
type Queue[T any] struct {
	env     *Env
	cap     int
	items   []T
	getters []*Proc
	putters []*Proc
}

// NewQueue creates a queue in env with the given capacity (0 = unbounded).
func NewQueue[T any](env *Env, capacity int) *Queue[T] {
	return &Queue[T]{env: env, cap: capacity}
}

// Len returns the number of buffered items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Cap returns the configured capacity (0 = unbounded).
func (q *Queue[T]) Cap() int { return q.cap }

func (q *Queue[T]) full() bool { return q.cap > 0 && len(q.items) >= q.cap }

// wake schedules proc to resume at the current instant.
func (q *Queue[T]) wake(p *Proc) {
	env := q.env
	env.At(env.now, func() { env.resumeProc(p) })
}

// Put appends v, blocking p while the queue is full.
func (q *Queue[T]) Put(p *Proc, v T) {
	for q.full() {
		q.putters = append(q.putters, p)
		p.yield()
	}
	q.items = append(q.items, v)
	if len(q.getters) > 0 {
		g := q.getters[0]
		q.getters = q.getters[1:]
		q.wake(g)
	}
}

// TryPut appends v if there is room and reports whether it did. It never
// blocks, so it is also safe to call from scheduler context.
func (q *Queue[T]) TryPut(v T) bool {
	if q.full() {
		return false
	}
	q.items = append(q.items, v)
	if len(q.getters) > 0 {
		g := q.getters[0]
		q.getters = q.getters[1:]
		q.wake(g)
	}
	return true
}

// Get removes and returns the head item, blocking p while the queue is
// empty.
func (q *Queue[T]) Get(p *Proc) T {
	for len(q.items) == 0 {
		q.getters = append(q.getters, p)
		p.yield()
	}
	v := q.items[0]
	q.items = q.items[1:]
	if len(q.putters) > 0 {
		w := q.putters[0]
		q.putters = q.putters[1:]
		q.wake(w)
	}
	return v
}

// TryGet removes and returns the head item without blocking. ok is false
// if the queue is empty.
func (q *Queue[T]) TryGet() (v T, ok bool) {
	if len(q.items) == 0 {
		return v, false
	}
	v = q.items[0]
	q.items = q.items[1:]
	if len(q.putters) > 0 {
		w := q.putters[0]
		q.putters = q.putters[1:]
		q.wake(w)
	}
	return v, true
}

// DrainUpTo removes and returns at most n items without blocking.
func (q *Queue[T]) DrainUpTo(n int) []T {
	if n > len(q.items) {
		n = len(q.items)
	}
	if n == 0 {
		return nil
	}
	out := make([]T, n)
	copy(out, q.items[:n])
	q.items = q.items[n:]
	for n > 0 && len(q.putters) > 0 {
		w := q.putters[0]
		q.putters = q.putters[1:]
		q.wake(w)
		n--
	}
	return out
}
