// Package experiments regenerates every table and figure of the paper's
// evaluation (plus the §2 microbenchmarks and the §4/§5 ablations) on
// the simulated testbed. Each experiment returns a Result whose rows
// mirror the series the paper reports, annotated with the paper's
// numbers where it states them, so EXPERIMENTS.md can record
// paper-vs-measured side by side.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"packetshader/internal/lookup/ipv4"
	"packetshader/internal/lookup/ipv6"
	"packetshader/internal/route"
)

// Result is one regenerated table or figure.
type Result struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (r *Result) AddRow(cells ...string) { r.Rows = append(r.Rows, cells) }

// Note appends a footnote (typically the paper's reference numbers).
func (r *Result) Note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Print renders the result as an aligned text table.
func (r *Result) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		var sb strings.Builder
		for i, c := range cells {
			if i < len(widths) {
				sb.WriteString(fmt.Sprintf("%-*s  ", widths[i], c))
			} else {
				sb.WriteString(c)
			}
		}
		fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	}
	line(r.Header)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// registryEntry describes one experiment: its driver plus which shared
// fixtures it reads, so a Runner can build those once up front before
// fanning jobs out.
type registryEntry struct {
	ID  string
	Run func(*Ctx) *Result

	// Jobs is the experiment's widest MapPoints fan-out — how many
	// simulation jobs it can keep in flight at once. It sizes the
	// default worker pool (see RunnableJobs); a stale value only makes
	// the default pool slightly wider or narrower than ideal.
	Jobs int

	// UsesBGP / UsesV6 mark experiments whose jobs read the shared
	// BGPFixture / IPv6Fixture.
	UsesBGP, UsesV6 bool
}

// Registry maps experiment IDs to their drivers, in paper order.
var Registry = []registryEntry{
	{ID: "table1", Run: table1, Jobs: 7},
	{ID: "launch", Run: launchLatency, Jobs: 1},
	{ID: "fig2", Run: fig2, Jobs: 12, UsesV6: true},
	{ID: "table3", Run: table3, Jobs: 1},
	{ID: "fig5", Run: fig5, Jobs: 8},
	{ID: "fig6", Run: fig6, Jobs: 24},
	{ID: "numa", Run: numa, Jobs: 2},
	{ID: "fig11a", Run: fig11a, Jobs: 12, UsesBGP: true},
	{ID: "fig11b", Run: fig11b, Jobs: 12, UsesV6: true},
	{ID: "fig11c", Run: fig11c, Jobs: 14},
	{ID: "fig11d", Run: fig11d, Jobs: 12},
	{ID: "fig12", Run: fig12, Jobs: 24, UsesV6: true},
	{ID: "ablation", Run: ablation, Jobs: 10, UsesV6: true},
	{ID: "cluster", Run: clusterScaling, Jobs: 12},
	{ID: "fabric", Run: fabricScaling, Jobs: 6},
	{ID: "leafspine", Run: leafSpineScaling, Jobs: 4},
	{ID: "fibupdate", Run: fibUpdate, Jobs: 2, UsesBGP: true},
	{ID: "faults", Run: faultScenario, Jobs: 2},
	{ID: "churn", Run: churn, Jobs: 3},
}

// RunnableJobs reports how many simulation jobs the given selection
// ("all" expands as in Run) can keep in flight at once — the sum of the
// selected experiments' fan-outs, since experiments run concurrently.
// psbench caps its default -j at min(GOMAXPROCS, RunnableJobs): a wider
// pool cannot be filled, and on small hosts oversubscription is a pure
// loss (BENCH_PR9.json measured -j nproc slower than -j 1 on one core).
func RunnableJobs(ids ...string) (int, error) {
	selected, err := resolve(ids)
	if err != nil {
		return 0, err
	}
	total := 0
	for _, e := range selected {
		if e.Jobs < 1 {
			total++
			continue
		}
		total += e.Jobs
	}
	if total < 1 {
		total = 1
	}
	return total, nil
}

// Run executes the experiment with the given ID (or all of them for
// "all") on a default GOMAXPROCS-wide worker pool, printing to w.
// Unknown IDs return an error. It is shorthand for NewRunner(0).Run.
func Run(w io.Writer, id string) error {
	return NewRunner(0).Run(w, id)
}

func allIDs() string {
	var s []string
	for _, e := range Registry {
		s = append(s, e.ID)
	}
	return strings.Join(s, ", ")
}

// ---------------------------------------------------------------------------
// Shared fixtures: the big routing tables are expensive to build, so
// they are constructed once (sync.Once) and shared across experiments.
// After the build they are strictly read-only — concurrent jobs on the
// worker pool look them up freely, and the sharedfixture pslint
// analyzer flags any job that writes package-level state. A Runner
// builds the fixtures its selected experiments declare up front, so
// jobs never queue behind the Once mid-run.
// ---------------------------------------------------------------------------

var (
	bgpOnce    sync.Once
	bgpEntries []route.Entry
	bgpTable   *ipv4.Table

	v6Once    sync.Once
	v6Entries []route.Entry6
	v6Table   *ipv6.Table
)

// BGPFixture returns the paper-scale IPv4 table (282,797 prefixes,
// §6.2.1) and its DIR-24-8 build.
func BGPFixture() ([]route.Entry, *ipv4.Table) {
	bgpOnce.Do(func() {
		bgpEntries = route.GenerateBGPTable(route.BGPTableSize, 64, 2009)
		var err error
		bgpTable, err = ipv4.Build(bgpEntries)
		if err != nil {
			panic(err)
		}
	})
	return bgpEntries, bgpTable
}

// IPv6Fixture returns the 200,000-prefix IPv6 table (§6.2.2).
func IPv6Fixture() ([]route.Entry6, *ipv6.Table) {
	v6Once.Do(func() {
		v6Entries = route.GenerateIPv6Table(200000, 64, 2010)
		v6Table = ipv6.Build(v6Entries)
	})
	return v6Entries, v6Table
}
