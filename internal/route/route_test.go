package route

import (
	"testing"
	"testing/quick"

	"packetshader/internal/packet"
)

func TestPrefixMask(t *testing.T) {
	cases := []struct {
		len  uint8
		mask uint32
	}{
		{0, 0x00000000},
		{8, 0xff000000},
		{24, 0xffffff00},
		{32, 0xffffffff},
		{13, 0xfff80000},
	}
	for _, c := range cases {
		if got := (Prefix{Len: c.len}).Mask(); got != c.mask {
			t.Errorf("Mask(%d) = %#08x, want %#08x", c.len, got, c.mask)
		}
	}
}

func TestPrefixContains(t *testing.T) {
	p := Prefix{Addr: packet.IPv4Addr(0xC0A80000), Len: 16} // 192.168/16
	if !p.Contains(packet.IPv4Addr(0xC0A80101)) {
		t.Error("192.168.1.1 not in 192.168/16")
	}
	if p.Contains(packet.IPv4Addr(0xC0A90101)) {
		t.Error("192.169.1.1 in 192.168/16")
	}
	all := Prefix{Len: 0}
	if !all.Contains(packet.IPv4Addr(0x12345678)) {
		t.Error("default route does not contain arbitrary address")
	}
}

func TestMask6(t *testing.T) {
	cases := []struct {
		len    uint8
		hi, lo uint64
	}{
		{0, 0, 0},
		{64, ^uint64(0), 0},
		{128, ^uint64(0), ^uint64(0)},
		{48, 0xffffffffffff0000, 0},
		{96, ^uint64(0), 0xffffffff00000000},
	}
	for _, c := range cases {
		hi, lo := Mask6(c.len)
		if hi != c.hi || lo != c.lo {
			t.Errorf("Mask6(%d) = %#x,%#x want %#x,%#x", c.len, hi, lo, c.hi, c.lo)
		}
	}
}

func TestPrefix6Contains(t *testing.T) {
	p := Prefix6{Hi: 0x20010db800000000, Len: 32}
	if !p.Contains(0x20010db812345678, 0xdeadbeef) {
		t.Error("address not in 2001:db8::/32")
	}
	if p.Contains(0x20010db900000000, 0) {
		t.Error("2001:db9:: in 2001:db8::/32")
	}
}

func TestGenerateBGPTableProperties(t *testing.T) {
	const n = 20000
	entries := GenerateBGPTable(n, 8, 42)
	if len(entries) != n {
		t.Fatalf("len = %d, want %d", len(entries), n)
	}
	// Uniqueness.
	seen := make(map[Prefix]bool, n)
	for _, e := range entries {
		if seen[e.Prefix] {
			t.Fatalf("duplicate prefix %v", e.Prefix)
		}
		seen[e.Prefix] = true
		// Host bits must be zero.
		if uint32(e.Prefix.Addr)&^e.Prefix.Mask() != 0 {
			t.Fatalf("prefix %v has host bits set", e.Prefix)
		}
		if e.NextHop >= 8 {
			t.Fatalf("next hop %d out of range", e.NextHop)
		}
	}
	// ~3% of prefixes longer than /24 (§6.2.1).
	frac := FractionLongerThan(entries, 24)
	if frac < 0.02 || frac > 0.045 {
		t.Errorf("fraction >/24 = %.3f, want ≈0.03", frac)
	}
	// /24 should dominate, as in real BGP tables.
	c24 := 0
	for _, e := range entries {
		if e.Prefix.Len == 24 {
			c24++
		}
	}
	if f := float64(c24) / n; f < 0.40 || f < frac {
		t.Errorf("/24 fraction = %.3f, want ≈0.46", f)
	}
}

func TestGenerateBGPTableDeterministic(t *testing.T) {
	a := GenerateBGPTable(1000, 8, 7)
	b := GenerateBGPTable(1000, 8, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("entry %d differs between runs with same seed", i)
		}
	}
	c := GenerateBGPTable(1000, 8, 8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical tables")
	}
}

func TestGenerateIPv6TableProperties(t *testing.T) {
	const n = 5000
	entries := GenerateIPv6Table(n, 8, 99)
	if len(entries) != n {
		t.Fatalf("len = %d", len(entries))
	}
	for _, e := range entries {
		mh, ml := Mask6(e.Prefix6.Len)
		if e.Prefix6.Hi&^mh != 0 || e.Prefix6.Lo&^ml != 0 {
			t.Fatalf("prefix %+v has host bits set", e.Prefix6)
		}
		// Global unicast 2000::/3.
		if e.Prefix6.Hi>>61 != 1 {
			t.Fatalf("prefix %+v outside 2000::/3", e.Prefix6)
		}
	}
}

func TestLinearLPMLongestWins(t *testing.T) {
	entries := []Entry{
		{Prefix{packet.IPv4Addr(0x0A000000), 8}, 1},  // 10/8
		{Prefix{packet.IPv4Addr(0x0A010000), 16}, 2}, // 10.1/16
		{Prefix{packet.IPv4Addr(0x0A010100), 24}, 3}, // 10.1.1/24
	}
	l := NewLinearLPM(entries)
	cases := []struct {
		addr packet.IPv4Addr
		want uint16
	}{
		{packet.IPv4Addr(0x0A010101), 3},
		{packet.IPv4Addr(0x0A010201), 2},
		{packet.IPv4Addr(0x0A020201), 1},
		{packet.IPv4Addr(0x0B000001), NoRoute},
	}
	for _, c := range cases {
		if got := l.Lookup(c.addr); got != c.want {
			t.Errorf("Lookup(%v) = %d, want %d", c.addr, got, c.want)
		}
	}
}

func TestLinearLPM6LongestWins(t *testing.T) {
	entries := []Entry6{
		{Prefix6{Hi: 0x2001000000000000, Len: 16}, 1},
		{Prefix6{Hi: 0x20010db800000000, Len: 32}, 2},
		{Prefix6{Hi: 0x20010db800010000, Len: 48}, 3},
	}
	l := NewLinearLPM6(entries)
	if got := l.Lookup(0x20010db800010001, 5); got != 3 {
		t.Errorf("lookup = %d, want 3", got)
	}
	if got := l.Lookup(0x20010db800020001, 5); got != 2 {
		t.Errorf("lookup = %d, want 2", got)
	}
	if got := l.Lookup(0x2001110000000000, 0); got != 1 {
		t.Errorf("lookup = %d, want 1", got)
	}
	if got := l.Lookup(0x3001000000000000, 0); got != NoRoute {
		t.Errorf("lookup = %d, want NoRoute", got)
	}
}

func TestRIBAddRemoveLookup(t *testing.T) {
	r := NewRIB()
	p := Prefix{packet.IPv4Addr(0xC0000200), 24}
	r.Add(p, 5)
	if r.Len() != 1 {
		t.Errorf("len = %d", r.Len())
	}
	if got := r.Lookup(packet.IPv4Addr(0xC0000201)); got != 5 {
		t.Errorf("lookup = %d, want 5", got)
	}
	r.Add(p, 6) // replace
	if r.Len() != 1 || r.Lookup(packet.IPv4Addr(0xC0000201)) != 6 {
		t.Error("replace failed")
	}
	if !r.Remove(p) {
		t.Error("Remove returned false for present prefix")
	}
	if r.Remove(p) {
		t.Error("Remove returned true for absent prefix")
	}
	if got := r.Lookup(packet.IPv4Addr(0xC0000201)); got != NoRoute {
		t.Errorf("lookup after remove = %d", got)
	}
}

func TestRIBEntriesSorted(t *testing.T) {
	r := NewRIB()
	r.Add(Prefix{packet.IPv4Addr(0xC0000000), 8}, 1)
	r.Add(Prefix{packet.IPv4Addr(0x0A000000), 8}, 2)
	r.Add(Prefix{packet.IPv4Addr(0x0A000000), 16}, 3)
	e := r.Entries()
	if len(e) != 3 {
		t.Fatalf("len = %d", len(e))
	}
	if e[0].Prefix.Addr != packet.IPv4Addr(0x0A000000) || e[0].Prefix.Len != 8 {
		t.Errorf("order: %v", e)
	}
	if e[1].Prefix.Len != 16 || e[2].Prefix.Addr != packet.IPv4Addr(0xC0000000) {
		t.Errorf("order: %v", e)
	}
}

func TestFIBDoubleBuffer(t *testing.T) {
	type table struct{ gen int }
	f := NewFIB(&table{gen: 1})
	if f.Active().gen != 1 {
		t.Fatalf("active gen = %d", f.Active().gen)
	}
	old := f.Publish(&table{gen: 2})
	if old.gen != 1 {
		t.Errorf("Publish returned gen %d, want 1", old.gen)
	}
	if f.Active().gen != 2 {
		t.Errorf("active gen = %d, want 2", f.Active().gen)
	}
	// Repeated publishes alternate buffers without losing the latest.
	for i := 3; i <= 10; i++ {
		prev := f.Publish(&table{gen: i})
		if prev.gen != i-1 {
			t.Errorf("publish %d returned gen %d", i, prev.gen)
		}
	}
	if f.Active().gen != 10 {
		t.Errorf("final gen = %d", f.Active().gen)
	}
}

// Property: RIB.Lookup agrees with LinearLPM over its own entries.
func TestRIBAgreesWithLinearLPM(t *testing.T) {
	entries := GenerateBGPTable(500, 8, 3)
	r := NewRIB()
	for _, e := range entries {
		r.Add(e.Prefix, e.NextHop)
	}
	l := NewLinearLPM(entries)
	f := func(addr uint32) bool {
		return r.Lookup(packet.IPv4Addr(addr)) == l.Lookup(packet.IPv4Addr(addr))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
