// Package analysistest runs pslint analyzers over fixture packages and
// checks their diagnostics against `// want "regexp"` comments, in the
// style of golang.org/x/tools/go/analysis/analysistest. Fixtures live
// under <analyzer>/testdata/src/<pkg>/ so the go tool never builds them,
// yet they are parsed and fully type-checked here — including imports of
// the real packetshader/internal/sim package, which the shared Loader
// resolves from the enclosing module.
//
// A fixture may import a sibling fixture directory as "fixture/<dir>";
// the dependency is type-checked and analyzed first, sharing one
// analysis.FactStore per Run call, so cross-package analyzers
// (Analyzer.UsesFacts) can be exercised end to end: facts exported
// while analyzing the dependency fixture are importable while analyzing
// the fixture under test. Dependency fixtures get their own `// want`
// comments checked too.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"packetshader/internal/analysis"
	"packetshader/internal/analysis/load"
)

// fixturePrefix is the import-path namespace fixture packages live in;
// an import of "fixture/<dir>" resolves to the sibling directory <dir>
// under the same testdata/src root.
const fixturePrefix = "fixture/"

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData() string {
	_, file, _, ok := runtime.Caller(1)
	if !ok {
		panic("analysistest: cannot locate caller")
	}
	return filepath.Join(filepath.Dir(file), "testdata")
}

// shared fixture-import loader: one per process, lazily grown. All
// fixture packages type-check against the same dependency universe.
var (
	loaderOnce sync.Once
	loaderErr  error
	loader     *load.Loader
	loaderMu   sync.Mutex
)

func sharedLoader() (*load.Loader, error) {
	loaderOnce.Do(func() {
		root, err := load.ModuleRoot(".")
		if err != nil {
			loaderErr = err
			return
		}
		loader = load.NewLoader(root)
	})
	return loader, loaderErr
}

// Run applies analyzer a to each fixture package (a directory name under
// testdata/src) and reports mismatches between the diagnostics produced
// and the `// want` expectations in the fixture sources. All fixture
// packages of one Run — including "fixture/..." dependencies pulled in
// by imports — share a single FactStore.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	l, err := sharedLoader()
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	loaderMu.Lock()
	defer loaderMu.Unlock()
	s := &session{
		t:        t,
		l:        l,
		testdata: testdata,
		a:        a,
		facts:    analysis.NewFactStore(),
		pkgs:     map[string]*fixturePkg{},
	}
	for _, pkg := range pkgs {
		s.ensure(pkg)
	}
}

// A session is the state of one Run call: the fixture packages checked
// so far and the fact store they share.
type session struct {
	t        *testing.T
	l        *load.Loader
	testdata string
	a        *analysis.Analyzer
	facts    *analysis.FactStore
	pkgs     map[string]*fixturePkg // keyed by "fixture/<dir>"
}

type fixturePkg struct {
	types *types.Package
	// checking marks an in-progress ensure, to fail fast on fixture
	// import cycles instead of recursing forever.
	checking bool
}

// ensure type-checks and analyzes the fixture package in
// testdata/src/<name>, after its "fixture/..." dependencies, and checks
// its // want expectations. Repeated calls are no-ops.
func (s *session) ensure(name string) *fixturePkg {
	s.t.Helper()
	pkgPath := fixturePrefix + name
	if fp := s.pkgs[pkgPath]; fp != nil {
		if fp.checking {
			s.t.Fatalf("analysistest: fixture import cycle through %q", pkgPath)
		}
		return fp
	}
	fp := &fixturePkg{checking: true}
	s.pkgs[pkgPath] = fp

	dir := filepath.Join(s.testdata, "src", name)
	entries, err := os.ReadDir(dir)
	if err != nil {
		s.t.Fatalf("analysistest: %v", err)
	}
	var files []*ast.File
	var filenames []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(s.l.Fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			s.t.Fatalf("analysistest: parse %s: %v", path, err)
		}
		files = append(files, f)
		filenames = append(filenames, path)
	}
	if len(files) == 0 {
		s.t.Fatalf("analysistest: no Go files in %s", dir)
	}

	// Load (or recursively ensure) every import the fixture mentions
	// before type-checking it.
	imports := map[string]bool{}
	for _, f := range files {
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err == nil && p != "unsafe" {
				imports[p] = true
			}
		}
	}
	var paths []string
	for p := range imports {
		if strings.HasPrefix(p, fixturePrefix) {
			s.ensure(strings.TrimPrefix(p, fixturePrefix))
			continue
		}
		paths = append(paths, p)
	}
	sort.Strings(paths)
	if len(paths) > 0 {
		if _, err := s.l.Load(paths...); err != nil {
			s.t.Fatalf("analysistest: loading fixture imports: %v", err)
		}
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: fixtureImporter{s}}
	tpkg, err := conf.Check(pkgPath, s.l.Fset, files, info)
	if err != nil {
		s.t.Fatalf("analysistest: typecheck %s: %v", dir, err)
	}
	fp.types = tpkg

	pass := analysis.NewPass(s.a, s.l.Fset, files, tpkg, info)
	pass.Facts = s.facts
	if err := s.a.Run(pass); err != nil {
		s.t.Fatalf("analysistest: %s: %v", s.a.Name, err)
	}
	check(s.t, s.l.Fset, files, filenames, pass.Diagnostics)
	fp.checking = false
	return fp
}

// fixtureImporter resolves fixture-sibling imports from the session and
// everything else from the shared module loader.
type fixtureImporter struct{ s *session }

func (fi fixtureImporter) Import(path string) (*types.Package, error) {
	if strings.HasPrefix(path, fixturePrefix) {
		if fp := fi.s.pkgs[path]; fp != nil && fp.types != nil {
			return fp.types, nil
		}
		return nil, fmt.Errorf("fixture import %q not checked (import cycle?)", path)
	}
	if p := fi.s.l.Lookup(path); p != nil && p.Types != nil {
		return p.Types, nil
	}
	return nil, fmt.Errorf("fixture import %q not loaded", path)
}

// expectation is one `// want "re"` clause.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	text string
	met  bool
}

// wantRE matches one clause of a want comment: a double-quoted Go
// string or a raw backquoted regexp.
var wantRE = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// check compares diagnostics against // want comments. A want comment
// applies to the line it appears on.
func check(t *testing.T, fset *token.FileSet, files []*ast.File, filenames []string, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(text[len("want "):], -1) {
					lit := m[2] // backquoted form, used verbatim
					if m[1] != "" || m[2] == "" {
						var err error
						lit, err = strconv.Unquote(`"` + m[1] + `"`)
						if err != nil {
							t.Errorf("%s:%d: bad want clause %q: %v", pos.Filename, pos.Line, m[0], err)
							continue
						}
					}
					re, err := regexp.Compile(lit)
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, lit, err)
						continue
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, text: lit})
				}
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.met && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.text)
		}
	}
}
