// fabric.go grows the analytic mesh model into a small discrete-event
// fabric of PacketShader boxes: one sim partition per node, connected by
// latency-carrying sim.Links, advanced conservatively in parallel by
// sim.World (ROADMAP item 1). Where Evaluate answers "what throughput is
// admissible", the fabric *runs* the mesh — batches traverse ingress,
// per-hop forwarding budgets, per-link serialization and propagation
// latency — and reports what was actually delivered, with end-to-end
// latency, under Direct or VLB routing. VLB intermediates come from a
// real Toeplitz flow hash (the paper's RSS hash), not a modulo counter.
package cluster

import (
	"fmt"

	"packetshader/internal/hw/nic"
	"packetshader/internal/sim"
)

// FabricConfig describes one fabric run.
type FabricConfig struct {
	// Cluster reuses the analytic capacities: Nodes, ExternalGbps,
	// NodeForwardingGbps, InternalLinkGbps.
	Cluster Config
	// Scheme is Direct or VLB. (DirectVLB's spill decision needs global
	// link-occupancy knowledge and is left to the analytic model.)
	Scheme Routing
	// Matrix is the offered load, Gbps entering node i destined to j.
	Matrix Matrix
	// LinkLatency is the propagation delay of every mesh link — the
	// world's lookahead. Must be positive.
	LinkLatency sim.Duration
	// BatchBytes is the traffic granularity: one event-level unit of
	// transfer (a chunk of packets), default 16 KiB.
	BatchBytes int
	// Horizon is the simulated duration.
	Horizon sim.Duration
	// Seed drives flow-key generation (and thus VLB intermediates).
	Seed uint64
	// Workers is the number of host goroutines advancing partitions
	// (the psbench -p value); any value yields byte-identical results.
	Workers int
}

// FabricResult is the merged outcome of a fabric run.
type FabricResult struct {
	OfferedGbps   float64
	DeliveredGbps float64
	// MeanHops counts forwarding operations per delivered batch
	// (ingress node included), comparable to Result.MeanHops.
	MeanHops float64
	// MeanLatency/MaxLatency are end-to-end batch latencies
	// (ingress emission to external egress).
	MeanLatency, MaxLatency sim.Duration
	Batches, Delivered      uint64
	Forwards                uint64
}

// batch is the unit of simulated traffic: a fixed-size burst of packets
// of one flow. Batches travel between nodes by value through sim.Links
// and queues, so ownership hands off at scheduler-visible boundaries.
type batch struct {
	src, dst, via int
	hops          uint32
	bits          uint64
	born          sim.Time
	flowSrc       uint32 // flow key material for the Toeplitz hash
	flowDst       uint32
}

// fabricNode is one PacketShader box, modeled as a pipeline of
// processes so its three budgets serialize independently (a single
// proc doing fwd+tx+ext back-to-back would collapse the node to the
// harmonic mean of the three rates):
//
//	inbox → forward (NodeForwardingGbps) → txQ[j] → transmit → link j
//	                                     ↘ extQ   → egress (ExternalGbps)
//
// Each counter field is written by exactly one of the node's procs and
// merged in node order after the run.
type fabricNode struct {
	id    int
	part  *sim.Partition
	inbox *sim.Queue[batch]
	txQ   []*sim.Queue[batch] // per-destination transmit stages
	extQ  *sim.Queue[batch]   // external egress stage
	out   []*sim.Link[batch]

	// generator-owned counters
	genBatches uint64
	genBits    uint64
	// forwarder-owned counters
	forwards uint64
	// egress-owned counters
	delivered     uint64
	deliveredBits uint64
	hopSum        uint64
	latSum        sim.Duration
	latMax        sim.Duration
}

// gbpsTime returns the serialization time of bits at rate gbps: one
// Gbps moves one bit per nanosecond.
func gbpsTime(bits uint64, gbps float64) sim.Duration {
	return sim.DurationFromSeconds(float64(bits) / (gbps * 1e9))
}

func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// RunFabric builds the mesh world and runs it to the horizon.
func RunFabric(cfg FabricConfig) (FabricResult, error) {
	c := cfg.Cluster
	if err := c.Validate(); err != nil {
		return FabricResult{}, err
	}
	if cfg.Scheme != Direct && cfg.Scheme != VLB {
		return FabricResult{}, fmt.Errorf("fabric: scheme %v not modeled (use the analytic Evaluate)", cfg.Scheme)
	}
	if len(cfg.Matrix) != c.Nodes {
		return FabricResult{}, fmt.Errorf("fabric: matrix size %d != nodes %d", len(cfg.Matrix), c.Nodes)
	}
	if cfg.LinkLatency <= 0 {
		return FabricResult{}, fmt.Errorf("fabric: LinkLatency must be positive (it is the lookahead)")
	}
	if cfg.Horizon <= 0 {
		return FabricResult{}, fmt.Errorf("fabric: Horizon must be positive")
	}
	if cfg.BatchBytes <= 0 {
		cfg.BatchBytes = 16 << 10
	}
	n := c.Nodes

	world := sim.NewWorld()
	defer world.Close()
	nodes := make([]*fabricNode, n)
	for i := 0; i < n; i++ {
		part := world.NewPartition(fmt.Sprintf("node%d", i))
		env := part.Env()
		nd := &fabricNode{
			id:    i,
			part:  part,
			inbox: sim.NewQueue[batch](env, 0),
			txQ:   make([]*sim.Queue[batch], n),
			extQ:  sim.NewQueue[batch](env, 0),
			out:   make([]*sim.Link[batch], n),
		}
		for j := 0; j < n; j++ {
			if j != i {
				nd.txQ[j] = sim.NewQueue[batch](env, 0)
			}
		}
		nodes[i] = nd
	}
	// Full mesh of links, in (src, dst) order so barrier delivery is
	// deterministic by construction.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j != i {
				nodes[i].out[j] = sim.NewLink(nodes[i].part, nodes[j].part,
					cfg.LinkLatency, nodes[j].inbox)
			}
		}
	}
	for i := 0; i < n; i++ {
		nd := nodes[i] // loop-local: each root touches its own node only
		env := nd.part.Env()
		env.Go("gen", func(p *sim.Proc) { nd.generate(p, &cfg) })
		env.Go("fwd", func(p *sim.Proc) { nd.forward(p, &cfg) })
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			j := j
			env.Go(fmt.Sprintf("tx%d", j), func(p *sim.Proc) { nd.transmit(p, j, &cfg) })
		}
		env.Go("egress", func(p *sim.Proc) { nd.egress(p, &cfg) })
	}
	world.Run(sim.Time(cfg.Horizon), cfg.Workers)

	// Merge per-node counters in node order: the result is independent
	// of how many workers advanced the partitions.
	res := FabricResult{OfferedGbps: cfg.Matrix.Total()}
	for _, nd := range nodes {
		res.Batches += nd.genBatches
		res.Forwards += nd.forwards
		res.Delivered += nd.delivered
		res.DeliveredGbps += float64(nd.deliveredBits)
		res.MeanHops += float64(nd.hopSum)
		res.MeanLatency += nd.latSum
		if nd.latMax > res.MaxLatency {
			res.MaxLatency = nd.latMax
		}
	}
	res.DeliveredGbps /= cfg.Horizon.Seconds() * 1e9
	if res.Delivered > 0 {
		res.MeanHops /= float64(res.Delivered)
		res.MeanLatency /= sim.Duration(res.Delivered)
	}
	return res, nil
}

// generate emits this node's external ingress: per destination, batches
// at the matrix rate, phase-offset by the seed so nodes do not emit in
// lockstep. Each batch carries fresh Toeplitz flow-key material, which
// picks the VLB intermediate the way RSS spreads flows over queues.
// Diagonal (self-destined) traffic is switched locally, as in Evaluate:
// it spends the forwarding budget and the external port but no link.
func (nd *fabricNode) generate(p *sim.Proc, cfg *FabricConfig) {
	n := cfg.Cluster.Nodes
	bits := uint64(cfg.BatchBytes) * 8
	// next[j] is the emission time of the next batch to j; interval[j]
	// the batch period at the offered rate.
	next := make([]sim.Time, n)
	interval := make([]sim.Duration, n)
	rng := cfg.Seed ^ (uint64(nd.id+1) * 0x9e3779b97f4a7c15)
	active := 0
	for j := 0; j < n; j++ {
		rate := cfg.Matrix[nd.id][j]
		if rate <= 0 {
			next[j] = -1
			continue
		}
		interval[j] = gbpsTime(bits, rate)
		next[j] = sim.Time(splitmix64(&rng) % uint64(interval[j]))
		active++
	}
	if active == 0 {
		return
	}
	for {
		// Earliest pending destination; ties go to the lower index.
		j := -1
		for k := 0; k < n; k++ {
			if next[k] >= 0 && (j < 0 || next[k] < next[j]) {
				j = k
			}
		}
		if sim.Duration(next[j]) > cfg.Horizon {
			return
		}
		p.SleepUntil(next[j])
		b := batch{
			src: nd.id, dst: j, via: nd.id, bits: bits, born: p.Now(),
			flowSrc: uint32(splitmix64(&rng)), flowDst: uint32(splitmix64(&rng)),
		}
		if cfg.Scheme == VLB {
			// Valiant: a uniform pseudo-random intermediate, chosen by
			// the flow's RSS hash; src/dst picks degenerate to direct.
			h := nic.RSSHashIPv4(nic.DefaultRSSKey[:], b.flowSrc, b.flowDst,
				uint16(b.flowSrc>>16), uint16(b.flowDst>>16))
			b.via = int(h % uint32(n))
		}
		nd.genBatches++
		nd.genBits += bits
		nd.inbox.TryPut(b) // unbounded: own ingress enters the local inbox
		next[j] += sim.Time(interval[j])
	}
}

// forward is the node's packet path: drain the inbox, spend the
// forwarding budget, and route each batch to its next stage — the
// external egress queue when this node is the destination, otherwise
// the per-destination transmit queue. Routing is src → via → dst with
// degenerate intermediates collapsing to the direct link, mirroring
// Evaluate's addFlow. The forwarding budget is a plain Sleep: this
// proc is the budget's only user, so a shared Server would add nothing.
func (nd *fabricNode) forward(p *sim.Proc, cfg *FabricConfig) {
	c := &cfg.Cluster
	for {
		b := nd.inbox.Get(p)
		p.Sleep(gbpsTime(b.bits, c.NodeForwardingGbps))
		nd.forwards++
		b.hops++
		if b.dst == nd.id {
			nd.extQ.TryPut(b)
			continue
		}
		hop := b.dst
		if nd.id == b.src && b.via != b.src && b.via != b.dst {
			hop = b.via
		}
		nd.txQ[hop].TryPut(b)
	}
}

// transmit serializes batches bound for node j onto the mesh link at
// the internal link rate, then hands them to the link, which delivers
// into j's inbox after the propagation latency.
func (nd *fabricNode) transmit(p *sim.Proc, j int, cfg *FabricConfig) {
	for {
		b := nd.txQ[j].Get(p)
		p.Sleep(gbpsTime(b.bits, cfg.Cluster.InternalLinkGbps))
		nd.out[j].Send(p, b)
	}
}

// egress drains delivered batches through the external port budget and
// records the node's delivery statistics.
func (nd *fabricNode) egress(p *sim.Proc, cfg *FabricConfig) {
	for {
		b := nd.extQ.Get(p)
		p.Sleep(gbpsTime(b.bits, cfg.Cluster.ExternalGbps))
		nd.delivered++
		nd.deliveredBits += b.bits
		nd.hopSum += uint64(b.hops)
		lat := sim.Duration(p.Now() - b.born)
		nd.latSum += lat
		if lat > nd.latMax {
			nd.latMax = lat
		}
	}
}
