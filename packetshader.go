// Package packetshader is a faithful Go reproduction of "PacketShader:
// a GPU-Accelerated Software Router" (Han, Jang, Park, Moon — SIGCOMM
// 2010), built over a calibrated virtual-time model of the paper's
// testbed (2× Xeon X5550, 2× GTX480, 8× 10GbE, dual-IOH board).
//
// This top-level package is the library facade: it assembles the four
// evaluated applications (IPv4/IPv6 forwarding, OpenFlow switching,
// IPsec tunneling) into ready-to-run router instances and reports the
// paper's metrics. The building blocks live under internal/: the
// discrete-event engine (internal/sim), hardware models
// (internal/hw/...), the packet I/O engine (internal/pktio), the
// framework (internal/core), the applications (internal/apps), and the
// table/figure reproductions (internal/experiments).
//
// Quick start:
//
//	inst, _ := packetshader.IPv4(100000, 42, packetshader.WithMode(packetshader.ModeGPU))
//	report := inst.Run(20 * packetshader.Millisecond)
//	fmt.Printf("%.1f Gbps\n", report.DeliveredGbps)
package packetshader

import (
	"fmt"
	"io"

	"packetshader/internal/apps"
	"packetshader/internal/core"
	"packetshader/internal/ctrl"
	"packetshader/internal/faults"
	"packetshader/internal/model"
	"packetshader/internal/obs"
	"packetshader/internal/openflow"
	"packetshader/internal/packet"
	"packetshader/internal/pktgen"
	"packetshader/internal/route"
	"packetshader/internal/sim"

	lookupv4 "packetshader/internal/lookup/ipv4"
	lookupv6 "packetshader/internal/lookup/ipv6"
)

// Re-exported virtual-time units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Duration is virtual time (picoseconds).
type Duration = sim.Duration

// Time is an instant on the virtual clock.
type Time = sim.Time

// Mode selects CPU-only or GPU-accelerated operation.
type Mode = core.Mode

// Operating modes (§6.1: CPU-only runs four workers per NUMA node;
// CPU+GPU runs three workers plus a GPU master).
const (
	ModeCPUOnly = core.ModeCPUOnly
	ModeGPU     = core.ModeGPU
)

// NumPorts is the testbed's port count (8 × 10GbE).
const NumPorts = model.NumPorts

// Source synthesizes the frames the RX queues receive. It is the
// facade's name for the NIC-layer frame source: Fill writes the seq-th
// frame of (port, queue) into b.Data (already sized to the configured
// packet size) and sets b.Hash. The built-in generators in
// internal/pktgen implement it; custom workloads implement it directly
// (see examples/openflowswitch).
type Source interface {
	Fill(b *packet.Buf, port, queue int, seq uint64)
}

// Option tweaks a router configuration.
type Option func(*core.Config)

// WithMode selects CPU-only or CPU+GPU operation.
func WithMode(m Mode) Option { return func(c *core.Config) { c.Mode = m } }

// WithPacketSize sets the generated packet size (64-1514 bytes).
func WithPacketSize(bytes int) Option {
	return func(c *core.Config) { c.PacketSize = bytes }
}

// WithOfferedGbps sets the offered load per port.
func WithOfferedGbps(g float64) Option {
	return func(c *core.Config) { c.OfferedGbpsPerPort = g }
}

// WithStreams enables concurrent copy and execution with n CUDA
// streams (§5.4; the paper uses it for IPsec).
func WithStreams(n int) Option { return func(c *core.Config) { c.Streams = n } }

// WithOpportunisticOffload keeps small chunks on the CPU for low
// latency under light load (§7).
func WithOpportunisticOffload() Option {
	return func(c *core.Config) { c.OpportunisticOffload = true }
}

// WithChunkCap caps the number of packets per chunk (§5.3).
func WithChunkCap(n int) Option { return func(c *core.Config) { c.ChunkCap = n } }

// WithoutPipelining disables chunk pipelining (§5.4 ablation).
func WithoutPipelining() Option { return func(c *core.Config) { c.Pipelining = false } }

// WithGatherMax bounds how many chunks one GPU launch gathers (§5.4).
func WithGatherMax(n int) Option { return func(c *core.Config) { c.GatherMax = n } }

// FIBUpdateMode selects the live route-update strategy (§7) for
// IPv4 instances: see WithFIBUpdate.
type FIBUpdateMode = core.FIBUpdateMode

// FIB update strategies.
const (
	// FIBStatic (the default) builds an immutable table; control-plane
	// route commands are rejected.
	FIBStatic = core.FIBStatic
	// FIBDynamic patches affected DIR-24-8 cells in place per update.
	FIBDynamic = core.FIBDynamic
	// FIBRebuild rebuilds the whole table per batch and swaps it in.
	FIBRebuild = core.FIBRebuild
)

// WithFIBUpdate selects how the IPv4 instance's forwarding table
// accepts live route updates from a control script (Instance.Control).
// Only IPv4 consumes it: the other applications have no route table
// (IPsec, OpenFlow) or no dynamic lookup structure yet (IPv6), so their
// instances reject route commands regardless of mode.
func WithFIBUpdate(m FIBUpdateMode) Option {
	return func(c *core.Config) { c.FIBUpdate = m }
}

// WithFaults merges a full fault plan (see internal/faults: link flaps,
// RX drop bursts, GPU outages, PCIe retrains, or a seeded Random mix)
// into the instance, armed relative to the router's start. Options
// compose: multiple WithFaults/WithGPUOutage/WithLinkFlap options merge
// into one plan.
func WithFaults(p *faults.Plan) Option {
	return func(c *core.Config) {
		if c.Faults == nil {
			c.Faults = faults.NewPlan()
		}
		c.Faults.Merge(p)
	}
}

// WithGPUOutage schedules a GPU failure on every node at offset at from
// the router's start, repaired after dur. The master watchdog degrades
// to the CPU path for the outage (see Report.DegradedTime).
func WithGPUOutage(at, dur Duration) Option {
	pl := faults.NewPlan()
	for n := 0; n < model.NumNodes; n++ {
		pl.GPUOutage(n, at, dur)
	}
	return WithFaults(pl)
}

// WithLinkFlap schedules carrier loss on one port at offset at from the
// router's start, restored after dur. Packets forwarded to the port
// during the flap are dropped and counted in Report.DroppedPackets.
func WithLinkFlap(port int, at, dur Duration) Option {
	return WithFaults(faults.NewPlan().LinkFlap(port, at, dur))
}

// Instance is an assembled router plus its workload generator and
// latency sink, ready to Run.
type Instance struct {
	Env    *sim.Env
	Router *core.Router
	Sink   *pktgen.LatencySink

	started bool
	fib     ctrl.FIBApplier // nil unless built with an updatable FIB
	reg     *obs.Registry   // set by EnableObs, snapshotted by metrics commands
	tap     func(b *packet.Buf, at sim.Time)
}

// Report summarizes one run.
type Report struct {
	// DeliveredGbps is forwarded throughput in the paper's wire metric
	// (24B Ethernet overhead included).
	DeliveredGbps float64
	// InputGbps is accepted input throughput (the IPsec metric, §6.2.4).
	InputGbps float64
	// Latency statistics in microseconds (zero if nothing completed).
	MeanLatencyUs float64
	P99LatencyUs  float64
	// DroppedPackets is the cumulative drop count from every cause: RX
	// ring overflow, TX ring overflow, carrier loss, and application
	// drop decisions.
	DroppedPackets uint64
	// DegradedTime is the cumulative virtual time any GPU was held out
	// by the master watchdog (zero in fault-free and CPU-only runs).
	DegradedTime Duration
	// Stats are the framework counters.
	Stats core.Stats
}

// build assembles an Instance: options are applied to the default
// config and validated *first*, then the application and the source are
// constructed from the resolved config — so the app sees the final FIB
// update mode, a generator always sees the final packet size, and there
// is no post-hoc rebinding. mkApp returns the application plus the
// FIBApplier a control script's route commands go through (nil when the
// table is static).
func build(mkApp func(cfg *core.Config) (core.App, ctrl.FIBApplier, error),
	mkSrc func(cfg *core.Config) Source, opts []Option) (*Instance, error) {
	env := sim.NewEnv()
	cfg := core.DefaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if err := validate(&cfg); err != nil {
		return nil, err
	}
	app, fib, err := mkApp(&cfg)
	if err != nil {
		return nil, err
	}
	r := core.New(env, cfg, app)
	sink := pktgen.NewLatencySink()
	inst := &Instance{Env: env, Router: r, Sink: sink, fib: fib}
	for _, p := range r.Engine.Ports {
		p.Tx.OnComplete = func(b *packet.Buf, at sim.Time) {
			sink.Observe(b, at)
			if inst.tap != nil {
				inst.tap(b, at)
			}
		}
	}
	r.SetSource(mkSrc(&cfg))
	return inst, nil
}

// validate rejects configurations the models are not calibrated for.
func validate(cfg *core.Config) error {
	switch {
	case cfg.PacketSize < 64 || cfg.PacketSize > 1514:
		return fmt.Errorf("packetshader: packet size %d outside 64..1514", cfg.PacketSize)
	case cfg.OfferedGbpsPerPort < 0:
		return fmt.Errorf("packetshader: negative offered load %g Gbps", cfg.OfferedGbpsPerPort)
	case cfg.Streams < 1:
		return fmt.Errorf("packetshader: streams %d < 1", cfg.Streams)
	case cfg.ChunkCap < 1:
		return fmt.Errorf("packetshader: chunk cap %d < 1", cfg.ChunkCap)
	case cfg.GatherMax < 1:
		return fmt.Errorf("packetshader: gather max %d < 1", cfg.GatherMax)
	case cfg.FIBUpdate < core.FIBStatic || cfg.FIBUpdate > core.FIBRebuild:
		return fmt.Errorf("packetshader: unknown FIB update mode %d", cfg.FIBUpdate)
	}
	for _, e := range cfg.Faults.Events() {
		switch e.Kind {
		case faults.KindLinkDown, faults.KindLinkUp, faults.KindRxDropBurst:
			if e.Port < 0 || e.Port >= model.NumPorts {
				return fmt.Errorf("packetshader: fault %v targets port %d outside 0..%d",
					e.Kind, e.Port, model.NumPorts-1)
			}
		case faults.KindGPUFail, faults.KindGPURepair,
			faults.KindPCIeRetrain, faults.KindPCIeRestore:
			if e.Node < 0 || e.Node >= model.NumNodes {
				return fmt.Errorf("packetshader: fault %v targets node %d outside 0..%d",
					e.Kind, e.Node, model.NumNodes-1)
			}
		}
	}
	return nil
}

// Must unwraps a constructor result, panicking on error — for examples
// and tests where a config error is a programming bug.
func Must(inst *Instance, err error) *Instance {
	if err != nil {
		panic(err)
	}
	return inst
}

// IPv4 assembles an IPv4 forwarder with a synthetic BGP table of the
// given size (§6.2.1 uses 282,797 prefixes — route.BGPTableSize). The
// table honors WithFIBUpdate: FIBDynamic and FIBRebuild instances
// accept live route commands through Instance.Control.
func IPv4(prefixes int, seed int64, opts ...Option) (*Instance, error) {
	entries := route.GenerateBGPTable(prefixes, 64, seed)
	return build(func(cfg *core.Config) (core.App, ctrl.FIBApplier, error) {
		app := &apps.IPv4Fwd{NumPorts: model.NumPorts}
		switch cfg.FIBUpdate {
		case core.FIBDynamic:
			dyn, err := lookupv4.NewDynamic(entries)
			if err != nil {
				return nil, nil, err
			}
			app.Table = &dyn.Table
			return app, &ctrl.DynamicFIB{T: dyn}, nil
		case core.FIBRebuild:
			fib, err := ctrl.NewRebuildFIB(entries, func(t *lookupv4.Table) { app.Table = t })
			if err != nil {
				return nil, nil, err
			}
			app.Table = fib.FIB.Active()
			return app, fib, nil
		default: // FIBStatic
			tbl, err := lookupv4.Build(entries)
			if err != nil {
				return nil, nil, err
			}
			app.Table = tbl
			return app, nil, nil
		}
	}, func(cfg *core.Config) Source {
		return &pktgen.UDP4Source{Size: cfg.PacketSize, Seed: uint64(seed), Table: entries}
	}, opts)
}

// IPv6 assembles an IPv6 forwarder with n random prefixes (§6.2.2 uses
// 200,000).
func IPv6(prefixes int, seed int64, opts ...Option) (*Instance, error) {
	entries := route.GenerateIPv6Table(prefixes, 64, seed)
	return build(func(*core.Config) (core.App, ctrl.FIBApplier, error) {
		return &apps.IPv6Fwd{Table: lookupv6.Build(entries), NumPorts: model.NumPorts}, nil, nil
	}, func(cfg *core.Config) Source {
		return &pktgen.UDP6Source{Size: cfg.PacketSize, Seed: uint64(seed), Table: entries}
	}, opts)
}

// IPsec assembles the ESP tunnel gateway (§6.2.4), one SA per port.
func IPsec(seed int64, opts ...Option) (*Instance, error) {
	return build(func(*core.Config) (core.App, ctrl.FIBApplier, error) {
		return apps.NewIPsecGW(model.NumPorts), nil, nil
	}, func(cfg *core.Config) Source {
		return &pktgen.UDP4Source{Size: cfg.PacketSize, Seed: uint64(seed)}
	}, opts)
}

// OpenFlowSwitch wraps a caller-configured switch data path (§6.2.3)
// fed by a caller-supplied frame source.
func OpenFlowSwitch(sw *openflow.Switch, src Source, opts ...Option) (*Instance, error) {
	return build(func(*core.Config) (core.App, ctrl.FIBApplier, error) {
		return apps.NewOFSwitch(sw, model.NumPorts), nil, nil
	}, func(*core.Config) Source { return src }, opts)
}

// EnableObs installs a tracer and/or metrics registry on the router
// (either may be nil). It must be called before the first Run; the
// registry also becomes the source for a control script's `metrics`
// command.
func (i *Instance) EnableObs(tr *obs.Tracer, reg *obs.Registry) {
	i.Router.EnableObs(tr, reg)
	i.reg = reg
}

// TapTx registers an extra observer called for every transmitted frame
// (after the latency sink) — the hook pcap capture uses.
func (i *Instance) TapTx(fn func(b *packet.Buf, at Time)) { i.tap = fn }

// Control attaches a management script to the instance: every command
// is scheduled on the virtual clock at its offset from now, so the
// following Run executes the script deterministically mid-traffic.
// Command responses stream to out (nil discards them); route commands
// require an instance built with WithFIBUpdate(FIBDynamic) or
// WithFIBUpdate(FIBRebuild). The returned controller reports what each
// command did once the run has advanced past it.
func (i *Instance) Control(script *ctrl.Script, out io.Writer) (*ctrl.Controller, error) {
	return ctrl.Attach(i.Env, i.Router, script, ctrl.Config{Out: out, FIB: i.fib, Reg: i.reg})
}

// Run starts the router (first call), advances virtual time by d, and
// reports. Repeated Run calls continue the same simulation; the
// measurement window restarts each call, so a warmup Run followed by a
// measurement Run excludes transients.
func (i *Instance) Run(d Duration) Report {
	if !i.started {
		i.Router.Start()
		i.started = true
	}
	i.Router.ResetMeasurement()
	i.Env.Run(i.Env.Now() + sim.Time(d))
	_, rxDropped, _, txDropped := i.Router.Engine.AggregateStats()
	return Report{
		DeliveredGbps:  i.Router.DeliveredGbps(),
		InputGbps:      i.Router.InputGbps(),
		MeanLatencyUs:  i.Sink.MeanMicros(),
		P99LatencyUs:   i.Sink.PercentileMicros(0.99),
		DroppedPackets: rxDropped + txDropped + i.Router.Stats.Drops,
		DegradedTime:   i.Router.DegradedTime(),
		Stats:          i.Router.Stats,
	}
}
