package ipsec

import "encoding/binary"

// SHA-1 (FIPS 180-4) from scratch. HMAC-SHA1 cannot be parallelized
// below packet granularity because each 64-byte block depends on the
// previous block's state (§6.2.4), so the GPU maps one packet per
// thread.
const (
	SHA1Size      = 20
	SHA1BlockSize = 64
)

// SHA1 is a streaming SHA-1 state. The zero value is NOT ready; use
// NewSHA1 or Reset.
type SHA1 struct {
	h     [5]uint32
	buf   [SHA1BlockSize]byte
	nbuf  int
	total uint64
}

// NewSHA1 returns an initialized hash.
func NewSHA1() *SHA1 {
	s := &SHA1{}
	s.Reset()
	return s
}

// Reset returns the state to the initial vector.
func (s *SHA1) Reset() {
	s.h = [5]uint32{0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0}
	s.nbuf = 0
	s.total = 0
}

// Write absorbs p (never fails).
func (s *SHA1) Write(p []byte) (int, error) {
	n := len(p)
	s.total += uint64(n)
	if s.nbuf > 0 {
		c := copy(s.buf[s.nbuf:], p)
		s.nbuf += c
		p = p[c:]
		if s.nbuf == SHA1BlockSize {
			s.block(s.buf[:])
			s.nbuf = 0
		}
	}
	for len(p) >= SHA1BlockSize {
		s.block(p[:SHA1BlockSize])
		p = p[SHA1BlockSize:]
	}
	if len(p) > 0 {
		s.nbuf = copy(s.buf[:], p)
	}
	return n, nil
}

// Sum appends the digest of everything written so far to in and returns
// the result. It does not consume the state (a copy is finalized).
func (s *SHA1) Sum(in []byte) []byte {
	d := *s // copy; padding must not disturb the stream state
	var pad [SHA1BlockSize + 8]byte
	pad[0] = 0x80
	msgBits := d.total * 8
	padLen := SHA1BlockSize - int(d.total%SHA1BlockSize) - 8
	if padLen <= 0 {
		padLen += SHA1BlockSize
	}
	binary.BigEndian.PutUint64(pad[padLen:], msgBits)
	d.Write(pad[:padLen+8])
	var out [SHA1Size]byte
	for i, v := range d.h {
		binary.BigEndian.PutUint32(out[4*i:], v)
	}
	return append(in, out[:]...)
}

func (s *SHA1) block(p []byte) {
	var w [80]uint32
	for i := 0; i < 16; i++ {
		w[i] = binary.BigEndian.Uint32(p[4*i:])
	}
	for i := 16; i < 80; i++ {
		t := w[i-3] ^ w[i-8] ^ w[i-14] ^ w[i-16]
		w[i] = t<<1 | t>>31
	}
	a, b, c, d, e := s.h[0], s.h[1], s.h[2], s.h[3], s.h[4]
	for i := 0; i < 80; i++ {
		var f, k uint32
		switch {
		case i < 20:
			f = (b & c) | (^b & d)
			k = 0x5A827999
		case i < 40:
			f = b ^ c ^ d
			k = 0x6ED9EBA1
		case i < 60:
			f = (b & c) | (b & d) | (c & d)
			k = 0x8F1BBCDC
		default:
			f = b ^ c ^ d
			k = 0xCA62C1D6
		}
		t := (a<<5 | a>>27) + f + e + k + w[i]
		e, d, c, b, a = d, c, (b<<30 | b>>2), a, t
	}
	s.h[0] += a
	s.h[1] += b
	s.h[2] += c
	s.h[3] += d
	s.h[4] += e
}

// SHA1Digest is a convenience one-shot hash.
func SHA1Digest(p []byte) [SHA1Size]byte {
	s := NewSHA1()
	s.Write(p)
	var out [SHA1Size]byte
	copy(out[:], s.Sum(nil))
	return out
}

// ---------------------------------------------------------------------------
// HMAC-SHA1 (RFC 2104) and the 96-bit truncation ESP uses (RFC 2404).
// ---------------------------------------------------------------------------

// HMACSHA1 is a reusable HMAC-SHA1 context for a fixed key.
type HMACSHA1 struct {
	ipad, opad [SHA1BlockSize]byte
	inner      SHA1
}

// NewHMACSHA1 builds a context for key (any length).
func NewHMACSHA1(key []byte) *HMACSHA1 {
	h := &HMACSHA1{}
	var k [SHA1BlockSize]byte
	if len(key) > SHA1BlockSize {
		d := SHA1Digest(key)
		copy(k[:], d[:])
	} else {
		copy(k[:], key)
	}
	for i := range k {
		h.ipad[i] = k[i] ^ 0x36
		h.opad[i] = k[i] ^ 0x5c
	}
	return h
}

// Sum computes HMAC-SHA1(key, msg).
func (h *HMACSHA1) Sum(msg []byte) [SHA1Size]byte {
	h.inner.Reset()
	h.inner.Write(h.ipad[:])
	h.inner.Write(msg)
	innerDigest := h.inner.Sum(nil)
	h.inner.Reset()
	h.inner.Write(h.opad[:])
	h.inner.Write(innerDigest)
	var out [SHA1Size]byte
	copy(out[:], h.inner.Sum(nil))
	return out
}

// ICVSize is the truncated authenticator length used by ESP (RFC 2404).
const ICVSize = 12

// ICV computes the 96-bit truncated HMAC-SHA1 authenticator.
func (h *HMACSHA1) ICV(msg []byte) [ICVSize]byte {
	full := h.Sum(msg)
	var out [ICVSize]byte
	copy(out[:], full[:ICVSize])
	return out
}
