// Command pktgen demonstrates the traffic generator: it synthesizes a
// batch of frames, verifies they parse, and reports the RSS queue
// distribution their Toeplitz hashes produce — the mechanism that
// spreads load across worker cores (§4.4).
package main

import (
	"flag"
	"fmt"

	"packetshader/internal/hw/nic"
	"packetshader/internal/packet"
	"packetshader/internal/pktgen"
	"packetshader/internal/route"
)

func main() {
	var (
		n      = flag.Int("n", 100000, "packets to generate")
		size   = flag.Int("size", 64, "packet size")
		queues = flag.Int("queues", 8, "RSS queues")
		seed   = flag.Int64("seed", 1, "seed")
		table  = flag.Int("prefixes", 10000, "BGP-table prefixes for destinations (0 = uniform)")
	)
	flag.Parse()

	src := &pktgen.UDP4Source{Size: *size, Seed: uint64(*seed)}
	if *table > 0 {
		src.Table = route.GenerateBGPTable(*table, 64, *seed)
	}
	pool := packet.NewBufPool(2048)
	counts := make([]int, *queues)
	var d packet.Decoder
	bad := 0
	flows := map[uint32]bool{}
	for i := 0; i < *n; i++ {
		b := pool.Get(*size)
		src.Fill(b, 0, 0, uint64(i))
		if err := d.Decode(b.Data); err != nil || !d.Has(packet.LayerUDP) {
			bad++
			b.Release()
			continue
		}
		h := nic.RSSHashIPv4(nic.DefaultRSSKey[:], uint32(d.IPv4.Src), uint32(d.IPv4.Dst),
			d.UDP.SrcPort, d.UDP.DstPort)
		counts[h%uint32(*queues)]++
		flows[h] = true
		b.Release()
	}
	fmt.Printf("generated %d %dB UDP frames (%d malformed, %d distinct flow hashes)\n",
		*n, *size, bad, len(flows))
	fmt.Println("RSS (Toeplitz) queue distribution:")
	for q, c := range counts {
		share := float64(c) / float64(*n) * 100
		fmt.Printf("  queue %d: %7d (%.2f%%)\n", q, c, share)
	}
}
