package ipv4

import (
	"math/rand"
	"testing"
	"testing/quick"

	"packetshader/internal/packet"
	"packetshader/internal/route"
)

func mustBuild(t *testing.T, entries []route.Entry) *Table {
	t.Helper()
	tbl, err := Build(entries)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestEmptyTableMisses(t *testing.T) {
	tbl := mustBuild(t, nil)
	if got := tbl.Lookup(packet.IPv4Addr(0x01020304)); got != route.NoRoute {
		t.Errorf("empty table returned %d", got)
	}
}

func TestSinglePrefix(t *testing.T) {
	tbl := mustBuild(t, []route.Entry{
		{Prefix: route.Prefix{Addr: 0x0A000000, Len: 8}, NextHop: 3},
	})
	if got := tbl.Lookup(0x0A123456); got != 3 {
		t.Errorf("lookup inside /8 = %d, want 3", got)
	}
	if got := tbl.Lookup(0x0B000000); got != route.NoRoute {
		t.Errorf("lookup outside /8 = %d, want miss", got)
	}
}

func TestLongestPrefixWins(t *testing.T) {
	tbl := mustBuild(t, []route.Entry{
		{Prefix: route.Prefix{Addr: 0x0A000000, Len: 8}, NextHop: 1},
		{Prefix: route.Prefix{Addr: 0x0A010000, Len: 16}, NextHop: 2},
		{Prefix: route.Prefix{Addr: 0x0A010100, Len: 24}, NextHop: 3},
		{Prefix: route.Prefix{Addr: 0x0A010180, Len: 25}, NextHop: 4},
	})
	cases := []struct {
		addr packet.IPv4Addr
		want uint16
	}{
		{0x0A0101FF, 4}, // /25 (upper half)
		{0x0A010101, 3}, // /24 (lower half)
		{0x0A010201, 2}, // /16
		{0x0A020000, 1}, // /8
		{0x0B000000, route.NoRoute},
	}
	for _, c := range cases {
		if got := tbl.Lookup(c.addr); got != c.want {
			t.Errorf("Lookup(%v) = %d, want %d", c.addr, got, c.want)
		}
	}
}

func TestInsertionOrderIrrelevant(t *testing.T) {
	entries := []route.Entry{
		{Prefix: route.Prefix{Addr: 0x0A010180, Len: 25}, NextHop: 4},
		{Prefix: route.Prefix{Addr: 0x0A000000, Len: 8}, NextHop: 1},
		{Prefix: route.Prefix{Addr: 0x0A010100, Len: 24}, NextHop: 3},
	}
	a := mustBuild(t, entries)
	rev := []route.Entry{entries[2], entries[1], entries[0]}
	b := mustBuild(t, rev)
	for _, addr := range []packet.IPv4Addr{0x0A0101C0, 0x0A010101, 0x0A330000} {
		if a.Lookup(addr) != b.Lookup(addr) {
			t.Errorf("order-dependent result at %v", addr)
		}
	}
}

func TestAccessCounts(t *testing.T) {
	tbl := mustBuild(t, []route.Entry{
		{Prefix: route.Prefix{Addr: 0x0A010100, Len: 24}, NextHop: 1},
		{Prefix: route.Prefix{Addr: 0xC0A80080, Len: 26}, NextHop: 2},
	})
	if _, n := tbl.LookupCounted(0x0A010105); n != 1 {
		t.Errorf("/24 hit took %d accesses, want 1", n)
	}
	if _, n := tbl.LookupCounted(0xC0A80081); n != 2 {
		t.Errorf(">24 hit took %d accesses, want 2", n)
	}
	// An address in the same /24 block as a long prefix also pays 2.
	if hop, n := tbl.LookupCounted(0xC0A80001); n != 2 || hop != route.NoRoute {
		t.Errorf("block-sharing miss = %d hop %d, want 2 accesses, miss", n, hop)
	}
	if _, n := tbl.LookupCounted(0x7F000001); n != 1 {
		t.Errorf("clean miss took %d accesses, want 1", n)
	}
}

func TestLongPrefixSeedsFromShorter(t *testing.T) {
	// A /26 inside a /16: the rest of its /24 block must still resolve
	// to the /16's hop.
	tbl := mustBuild(t, []route.Entry{
		{Prefix: route.Prefix{Addr: 0xC0A80000, Len: 16}, NextHop: 7},
		{Prefix: route.Prefix{Addr: 0xC0A80140, Len: 26}, NextHop: 9},
	})
	if got := tbl.Lookup(0xC0A80150); got != 9 {
		t.Errorf("inside /26 = %d, want 9", got)
	}
	if got := tbl.Lookup(0xC0A80101); got != 7 {
		t.Errorf("same /24, outside /26 = %d, want 7 (seeded from /16)", got)
	}
	if got := tbl.Lookup(0xC0A8FF01); got != 7 {
		t.Errorf("elsewhere in /16 = %d, want 7", got)
	}
}

func TestSlash32(t *testing.T) {
	tbl := mustBuild(t, []route.Entry{
		{Prefix: route.Prefix{Addr: 0x08080808, Len: 32}, NextHop: 5},
	})
	if got := tbl.Lookup(0x08080808); got != 5 {
		t.Errorf("/32 exact = %d, want 5", got)
	}
	if got := tbl.Lookup(0x08080809); got != route.NoRoute {
		t.Errorf("/32 neighbour = %d, want miss", got)
	}
}

func TestDefaultRoute(t *testing.T) {
	tbl := mustBuild(t, []route.Entry{
		{Prefix: route.Prefix{Addr: 0, Len: 0}, NextHop: 1},
		{Prefix: route.Prefix{Addr: 0x0A000000, Len: 8}, NextHop: 2},
	})
	if got := tbl.Lookup(0xDEADBEEF); got != 1 {
		t.Errorf("default route = %d, want 1", got)
	}
	if got := tbl.Lookup(0x0A000001); got != 2 {
		t.Errorf("/8 over default = %d, want 2", got)
	}
}

func TestNextHopRangeError(t *testing.T) {
	_, err := Build([]route.Entry{
		{Prefix: route.Prefix{Addr: 0, Len: 8}, NextHop: MaxNextHop + 1},
	})
	if err != ErrNextHopRange {
		t.Errorf("err = %v, want ErrNextHopRange", err)
	}
}

func TestSegmentsCount(t *testing.T) {
	tbl := mustBuild(t, []route.Entry{
		{Prefix: route.Prefix{Addr: 0x01010180, Len: 25}, NextHop: 1},
		{Prefix: route.Prefix{Addr: 0x010101C0, Len: 26}, NextHop: 2}, // same block
		{Prefix: route.Prefix{Addr: 0x02020280, Len: 25}, NextHop: 3}, // new block
	})
	if tbl.Segments() != 2 {
		t.Errorf("segments = %d, want 2", tbl.Segments())
	}
}

func TestMemBytes(t *testing.T) {
	tbl := mustBuild(t, nil)
	if tbl.MemBytes() != 32*1024*1024 {
		t.Errorf("base table = %d bytes, want 32MB", tbl.MemBytes())
	}
}

// TestAgainstLinearOracle is the main correctness property: DIR-24-8
// must agree with the reference linear LPM on a realistic BGP table for
// random addresses.
func TestAgainstLinearOracle(t *testing.T) {
	entries := route.GenerateBGPTable(5000, 64, 11)
	tbl := mustBuild(t, entries)
	oracle := route.NewLinearLPM(entries)
	f := func(addr uint32) bool {
		return tbl.Lookup(packet.IPv4Addr(addr)) == oracle.Lookup(packet.IPv4Addr(addr))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	// Also probe addresses *inside* known prefixes (random addresses
	// mostly miss).
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		e := entries[rng.Intn(len(entries))]
		addr := packet.IPv4Addr(uint32(e.Prefix.Addr) | (rng.Uint32() &^ e.Prefix.Mask()))
		if got, want := tbl.Lookup(addr), oracle.Lookup(addr); got != want {
			t.Fatalf("Lookup(%v) = %d, oracle %d", addr, got, want)
		}
	}
}

func TestLookupBatchMatchesScalar(t *testing.T) {
	entries := route.GenerateBGPTable(2000, 16, 3)
	tbl := mustBuild(t, entries)
	rng := rand.New(rand.NewSource(9))
	addrs := make([]packet.IPv4Addr, 512)
	for i := range addrs {
		addrs[i] = packet.IPv4Addr(rng.Uint32())
	}
	hops := make([]uint16, len(addrs))
	tbl.LookupBatch(addrs, hops)
	for i, a := range addrs {
		if hops[i] != tbl.Lookup(a) {
			t.Fatalf("batch[%d] = %d, scalar %d", i, hops[i], tbl.Lookup(a))
		}
	}
}

func TestFullBGPScaleBuild(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale table build")
	}
	entries := route.GenerateBGPTable(route.BGPTableSize, 8, 1)
	tbl := mustBuild(t, entries)
	// §6.2.1: only ~3% of prefixes are longer than /24, so TBLlong
	// segments should be a small fraction of the table.
	if tbl.Segments() > len(entries)/10 {
		t.Errorf("segments = %d, unexpectedly many", tbl.Segments())
	}
	oracle := route.NewLinearLPM(entries[:1000])
	sub, err := Build(entries[:1000])
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		addr := packet.IPv4Addr(rng.Uint32())
		if got, want := sub.Lookup(addr), oracle.Lookup(addr); got != want {
			t.Fatalf("subset table disagrees at %v: %d vs %d", addr, got, want)
		}
	}
}

func BenchmarkLookupHostCPU(b *testing.B) {
	entries := route.GenerateBGPTable(100000, 64, 1)
	tbl, err := Build(entries)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	addrs := make([]packet.IPv4Addr, 4096)
	for i := range addrs {
		addrs[i] = packet.IPv4Addr(rng.Uint32())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tbl.Lookup(addrs[i&4095])
	}
}
