package core

import (
	"packetshader/internal/faults"
	"packetshader/internal/sim"
)

// Router implements faults.Target: the injector manipulates the
// hardware models through these hooks. All of them are non-blocking
// (they run in scheduler context). Out-of-range nodes and nodes without
// a device (CPU-only mode) are ignored, so one plan can drive both
// modes.
var _ faults.Target = (*Router)(nil)

// SetCarrier raises or drops the carrier on both sides of a port: RX
// queues stop receiving and the TX side drops instead of blocking.
func (r *Router) SetCarrier(port int, up bool) {
	if port < 0 || port >= len(r.Engine.Ports) {
		return
	}
	p := r.Engine.Ports[port]
	p.Tx.SetCarrier(up)
	for _, q := range p.Rx {
		q.SetCarrier(up)
	}
}

// RxDropBurst discards a port's RX arrivals for d of virtual time.
func (r *Router) RxDropBurst(port int, d sim.Duration) {
	if port < 0 || port >= len(r.Engine.Ports) {
		return
	}
	for _, q := range r.Engine.Ports[port].Rx {
		q.DropBurst(d)
	}
}

// FailGPU stalls the node's device; the master watchdog will detect it
// on the next launch.
func (r *Router) FailGPU(node int) {
	if node >= 0 && node < len(r.Devices) {
		r.Devices[node].Fail()
	}
}

// RepairGPU restores the node's device; the next backoff probe
// succeeds and ends the degraded interval.
func (r *Router) RepairGPU(node int) {
	if node >= 0 && node < len(r.Devices) {
		r.Devices[node].Repair()
	}
}

// RetrainPCIe sets the β-divisor of the node's GPU link.
func (r *Router) RetrainPCIe(node, divisor int) {
	if node >= 0 && node < len(r.Devices) {
		r.Devices[node].Link.SetRetrain(divisor)
	}
}

// DegradedTime reports the cumulative virtual time any master has spent
// with its GPU held out (from watchdog detection to the successful
// recovery probe), including a still-open outage.
func (r *Router) DegradedTime() sim.Duration {
	var d sim.Duration
	now := r.Env.Now()
	for _, m := range r.masters {
		d += m.degraded
		if m.gpuOut {
			d += sim.Duration(now - m.outSince)
		}
	}
	return d
}

// CarrierDrops sums TX packets dropped because a port's carrier was
// down (the link-flap accounting, distinct from ring overflow).
func (r *Router) CarrierDrops() uint64 {
	var n uint64
	for _, p := range r.Engine.Ports {
		n += p.Tx.CarrierDrops
	}
	return n
}

// Injector returns the armed fault injector (nil when the config has no
// plan or the router has not started).
func (r *Router) Injector() *faults.Injector { return r.injector }
