// Package packet implements wire-format parsing and serialization for the
// protocols PacketShader processes: Ethernet (with 802.1Q), IPv4, IPv6,
// UDP, TCP, and ESP framing. Decoding fills caller-owned header structs
// (in the style of gopacket's DecodingLayerParser) so the router's fast
// path performs no per-packet allocation.
package packet

import (
	"encoding/binary"
	"fmt"
)

// MAC is a 48-bit Ethernet address.
type MAC [6]byte

func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IPv4Addr is an IPv4 address in host byte order (so that prefix
// arithmetic is plain integer arithmetic).
type IPv4Addr uint32

func (a IPv4Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// Bytes returns the network-byte-order representation.
func (a IPv4Addr) Bytes() [4]byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], uint32(a))
	return b
}

// IPv4AddrFrom parses 4 network-order bytes.
func IPv4AddrFrom(b []byte) IPv4Addr {
	return IPv4Addr(binary.BigEndian.Uint32(b))
}

// IPv6Addr is a 128-bit IPv6 address in network byte order.
type IPv6Addr [16]byte

func (a IPv6Addr) String() string {
	return fmt.Sprintf("%x:%x:%x:%x:%x:%x:%x:%x",
		binary.BigEndian.Uint16(a[0:]), binary.BigEndian.Uint16(a[2:]),
		binary.BigEndian.Uint16(a[4:]), binary.BigEndian.Uint16(a[6:]),
		binary.BigEndian.Uint16(a[8:]), binary.BigEndian.Uint16(a[10:]),
		binary.BigEndian.Uint16(a[12:]), binary.BigEndian.Uint16(a[14:]))
}

// Hi and Lo return the high/low 64 bits (host order) for prefix math.
func (a IPv6Addr) Hi() uint64 { return binary.BigEndian.Uint64(a[0:8]) }
func (a IPv6Addr) Lo() uint64 { return binary.BigEndian.Uint64(a[8:16]) }

// IPv6AddrFromParts builds an address from high/low 64-bit halves.
func IPv6AddrFromParts(hi, lo uint64) IPv6Addr {
	var a IPv6Addr
	binary.BigEndian.PutUint64(a[0:8], hi)
	binary.BigEndian.PutUint64(a[8:16], lo)
	return a
}

// EtherTypes.
const (
	EtherTypeIPv4 uint16 = 0x0800
	EtherTypeIPv6 uint16 = 0x86DD
	EtherTypeVLAN uint16 = 0x8100
	EtherTypeARP  uint16 = 0x0806
)

// IP protocol numbers.
const (
	ProtoICMP uint8 = 1
	ProtoTCP  uint8 = 6
	ProtoUDP  uint8 = 17
	ProtoESP  uint8 = 50
)

// Header sizes.
const (
	EthHdrLen  = 14
	VLANTagLen = 4
	IPv4HdrLen = 20 // without options
	IPv6HdrLen = 40
	UDPHdrLen  = 8
	TCPHdrLen  = 20 // without options
)
