// Package openflow implements the data path of an OpenFlow 0.8.9r2
// switch as PacketShader evaluates it (§6.2.3): exact-match lookup in a
// hash table over the 10-field flow key, and priority-ordered linear
// search over a wildcard table (as the OpenFlow reference implementation
// does in software, where hardware would use a TCAM).
package openflow

import (
	"encoding/binary"

	"packetshader/internal/packet"
)

// FlowKey is the 10-field OpenFlow 0.8.9 flow tuple.
type FlowKey struct {
	InPort  uint16
	DlSrc   packet.MAC
	DlDst   packet.MAC
	DlVLAN  uint16 // packet.VLANNone if untagged
	DlType  uint16
	NwSrc   packet.IPv4Addr
	NwDst   packet.IPv4Addr
	NwProto uint8
	TpSrc   uint16
	TpDst   uint16
}

// keyBytesLen is the serialized key length (padded to 32 for hashing).
const keyBytesLen = 32

// Bytes serializes the key into a fixed 32-byte array (zero padded).
func (k *FlowKey) Bytes() [keyBytesLen]byte {
	var b [keyBytesLen]byte
	binary.BigEndian.PutUint16(b[0:2], k.InPort)
	copy(b[2:8], k.DlSrc[:])
	copy(b[8:14], k.DlDst[:])
	binary.BigEndian.PutUint16(b[14:16], k.DlVLAN)
	binary.BigEndian.PutUint16(b[16:18], k.DlType)
	binary.BigEndian.PutUint32(b[18:22], uint32(k.NwSrc))
	binary.BigEndian.PutUint32(b[22:26], uint32(k.NwDst))
	b[26] = k.NwProto
	binary.BigEndian.PutUint16(b[27:29], k.TpSrc)
	binary.BigEndian.PutUint16(b[29:31], k.TpDst)
	return b
}

// Hash computes the flow key's hash — the computation PacketShader
// offloads to the GPU for large tables. FNV-1a over the serialized key.
func (k *FlowKey) Hash() uint32 {
	b := k.Bytes()
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for _, c := range b {
		h ^= uint32(c)
		h *= prime32
	}
	return h
}

// ExtractKey builds the flow key from a decoded packet, as the switch's
// pre-shading step does. Fields of absent layers are zero, per the spec.
func ExtractKey(d *packet.Decoder, inPort uint16) FlowKey {
	k := FlowKey{
		InPort: inPort,
		DlSrc:  d.Eth.Src,
		DlDst:  d.Eth.Dst,
		DlVLAN: d.VLANID,
		DlType: d.Eth.EtherType,
	}
	if d.VLANID != packet.VLANNone {
		// The type of interest is the encapsulated one.
		if d.Has(packet.LayerIPv4) {
			k.DlType = packet.EtherTypeIPv4
		}
	}
	if d.Has(packet.LayerIPv4) {
		k.NwSrc = d.IPv4.Src
		k.NwDst = d.IPv4.Dst
		k.NwProto = d.IPv4.Protocol
	}
	switch {
	case d.Has(packet.LayerUDP):
		k.TpSrc, k.TpDst = d.UDP.SrcPort, d.UDP.DstPort
	case d.Has(packet.LayerTCP):
		k.TpSrc, k.TpDst = d.TCP.SrcPort, d.TCP.DstPort
	}
	return k
}

// ActionType enumerates the data-path actions we implement.
type ActionType uint8

// Supported actions.
const (
	ActionOutput ActionType = iota // forward to Port
	ActionDrop
	ActionController // punt to the controller path
	ActionFlood      // send to all ports but the ingress
)

// Action is a flow's action list: optional header modifications applied
// in order, then the terminal disposition (output/drop/flood/punt).
type Action struct {
	Type ActionType
	Port uint16
	// Mods are the OpenFlow 0.8.9 header-modify actions executed before
	// the packet is emitted.
	Mods []Mod
}
