package experiments

import (
	"fmt"

	"packetshader/internal/cluster"
)

// Cluster evaluates the §7 horizontal-scaling direction: aggregate
// capacity of a full-mesh cluster of PacketShader boxes under direct
// routing, Valiant Load Balancing, and RouteBricks-style direct VLB,
// for benign (uniform), hot-pair (permutation), and adversarial
// (incast) traffic. Each box contributes 40 Gbps of external ports and
// the single-box ≈40 Gbps forwarding budget measured in Figure 6;
// internal mesh links are 10GbE.
func Cluster() *Result {
	r := &Result{
		ID:     "cluster",
		Title:  "Horizontal scaling with VLB (§7): admissible aggregate Gbps",
		Header: []string{"Nodes", "Matrix", "direct", "vlb", "direct-vlb", "hops(direct-vlb)"},
	}
	for _, n := range []int{2, 4, 8, 16} {
		cfg := cluster.Config{
			Nodes:              n,
			ExternalGbps:       40,
			NodeForwardingGbps: 40,
			InternalLinkGbps:   10,
		}
		type tc struct {
			name string
			m    cluster.Matrix
		}
		for _, c := range []tc{
			{"uniform", cluster.Uniform(n, float64(n)*40)},
			{"permutation", cluster.Permutation(n, 40)},
			{"incast", cluster.Incast(n, 40)},
		} {
			row := []string{fmt.Sprintf("%d", n), c.name}
			var hops float64
			for _, scheme := range []cluster.Routing{cluster.Direct, cluster.VLB, cluster.DirectVLB} {
				res, err := cluster.Evaluate(cfg, scheme, c.m)
				if err != nil {
					panic(err)
				}
				row = append(row, fmt.Sprintf("%.0f", res.ThroughputGbps))
				if scheme == cluster.DirectVLB {
					hops = res.MeanHops
				}
			}
			row = append(row, fmt.Sprintf("%.2f", hops))
			r.Rows = append(r.Rows, row)
		}
	}
	r.Note("one PacketShader box replaces RB4, RouteBricks' 4-machine cluster (§8)")
	r.Note("VLB trades forwarding budget (≈3 hops) for guaranteed worst-case throughput")
	return r
}
