// Package procsharedep is a dependency fixture for the procshare
// cross-package tests: it declares a proc root and exported shared
// state, whose facts the fixture/procshare_xpkg package imports. Its
// single root has no co-spawned peer inside this package, so it reports
// nothing here — the pairing happens in the importing package.
package procsharedep

import "packetshader/internal/sim"

// Total is deliberately unprotected shared state.
var Total int

// StartLogger spawns the logger proc; importers calling it co-spawn
// the logger with their own roots.
func StartLogger(env *sim.Env) {
	env.Go("logger", func(p *sim.Proc) {
		Total++
	})
}
