// Package ipsec implements the cryptographic data path of PacketShader's
// IPsec gateway (§6.2.4): AES-128 in CTR mode for the block cipher and
// HMAC-SHA1-96 for authentication, wrapped in ESP tunnel-mode
// encapsulation. The primitives are implemented from scratch (and
// verified against the Go standard library and FIPS/RFC vectors in the
// tests) because they are exactly the computation the paper offloads to
// the GPU: AES parallelized per 16-byte block, SHA1 per packet.
package ipsec

import "encoding/binary"

// AES-128 parameters.
const (
	AESBlockSize = 16
	AESKeySize   = 16
	aesRounds    = 10
)

// sbox is the AES S-box (FIPS-197 §5.1.1).
var sbox = [256]byte{
	0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
	0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
	0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
	0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
	0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
	0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
	0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
	0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
	0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
	0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
	0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
	0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
	0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
	0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
	0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
	0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
}

// rcon round constants for key expansion.
var rcon = [11]uint32{
	0x00000000, 0x01000000, 0x02000000, 0x04000000, 0x08000000,
	0x10000000, 0x20000000, 0x40000000, 0x80000000, 0x1b000000, 0x36000000,
}

// AES is an expanded AES-128 encryption key. CTR mode needs only the
// encryption direction.
type AES struct {
	rk [4 * (aesRounds + 1)]uint32
}

// NewAES expands a 16-byte key (panics on wrong length — keys come from
// the SA configuration, not the wire).
func NewAES(key []byte) *AES {
	if len(key) != AESKeySize {
		panic("ipsec: AES-128 key must be 16 bytes")
	}
	var a AES
	for i := 0; i < 4; i++ {
		a.rk[i] = binary.BigEndian.Uint32(key[4*i:])
	}
	for i := 4; i < len(a.rk); i++ {
		t := a.rk[i-1]
		if i%4 == 0 {
			t = subWord(rotWord(t)) ^ rcon[i/4]
		}
		a.rk[i] = a.rk[i-4] ^ t
	}
	return &a
}

func rotWord(w uint32) uint32 { return w<<8 | w>>24 }

func subWord(w uint32) uint32 {
	return uint32(sbox[w>>24])<<24 | uint32(sbox[w>>16&0xff])<<16 |
		uint32(sbox[w>>8&0xff])<<8 | uint32(sbox[w&0xff])
}

// xtime multiplies by x in GF(2^8) with the AES polynomial.
func xtime(b byte) byte {
	if b&0x80 != 0 {
		return b<<1 ^ 0x1b
	}
	return b << 1
}

// Encrypt encrypts one 16-byte block src into dst (may alias).
func (a *AES) Encrypt(dst, src []byte) {
	var s [16]byte
	copy(s[:], src[:16])
	addRoundKey(&s, a.rk[0:4])
	for r := 1; r < aesRounds; r++ {
		subBytes(&s)
		shiftRows(&s)
		mixColumns(&s)
		addRoundKey(&s, a.rk[4*r:4*r+4])
	}
	subBytes(&s)
	shiftRows(&s)
	addRoundKey(&s, a.rk[4*aesRounds:4*aesRounds+4])
	copy(dst[:16], s[:])
}

func addRoundKey(s *[16]byte, rk []uint32) {
	for c := 0; c < 4; c++ {
		w := rk[c]
		s[4*c+0] ^= byte(w >> 24)
		s[4*c+1] ^= byte(w >> 16)
		s[4*c+2] ^= byte(w >> 8)
		s[4*c+3] ^= byte(w)
	}
}

func subBytes(s *[16]byte) {
	for i := range s {
		s[i] = sbox[s[i]]
	}
}

// shiftRows operates on the column-major state layout (state[r + 4c]
// transposed: our s is byte i of column i/4, row i%4).
func shiftRows(s *[16]byte) {
	// Row 1: shift left by 1.
	s[1], s[5], s[9], s[13] = s[5], s[9], s[13], s[1]
	// Row 2: shift left by 2.
	s[2], s[6], s[10], s[14] = s[10], s[14], s[2], s[6]
	// Row 3: shift left by 3.
	s[3], s[7], s[11], s[15] = s[15], s[3], s[7], s[11]
}

func mixColumns(s *[16]byte) {
	for c := 0; c < 4; c++ {
		a0, a1, a2, a3 := s[4*c], s[4*c+1], s[4*c+2], s[4*c+3]
		s[4*c+0] = xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3
		s[4*c+1] = a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3
		s[4*c+2] = a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3)
		s[4*c+3] = (xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3)
	}
}

// CTR applies AES-CTR keystream to src into dst (encrypt == decrypt).
// The 16-byte counter block follows RFC 3686: nonce(4) | iv(8) |
// counter(4), with the counter starting at 1. blocks processed =
// ceil(len/16); the per-block keystream generation is the unit the GPU
// kernel parallelizes (§6.2.4: "we chop packets into AES blocks (16B)
// and map each block to one GPU thread").
func (a *AES) CTR(dst, src []byte, nonce uint32, iv uint64) {
	var ctrBlock, ks [16]byte
	binary.BigEndian.PutUint32(ctrBlock[0:4], nonce)
	binary.BigEndian.PutUint64(ctrBlock[4:12], iv)
	ctr := uint32(1)
	for off := 0; off < len(src); off += AESBlockSize {
		binary.BigEndian.PutUint32(ctrBlock[12:16], ctr)
		a.Encrypt(ks[:], ctrBlock[:])
		n := len(src) - off
		if n > AESBlockSize {
			n = AESBlockSize
		}
		for i := 0; i < n; i++ {
			dst[off+i] = src[off+i] ^ ks[i]
		}
		ctr++
	}
}
