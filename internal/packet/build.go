package packet

import "encoding/binary"

// BuildUDP4 assembles an Ethernet/IPv4/UDP frame of exactly size bytes
// (64 ≤ size ≤ 1514, FCS excluded, matching the paper's size metric) into
// dst, which must have capacity ≥ size. It returns the frame slice.
// The UDP payload is zero-filled.
func BuildUDP4(dst []byte, size int, srcMAC, dstMAC MAC, src, dstIP IPv4Addr, srcPort, dstPort uint16) []byte {
	if size < EthHdrLen+IPv4HdrLen+UDPHdrLen {
		size = EthHdrLen + IPv4HdrLen + UDPHdrLen
	}
	b := dst[:size]
	clear(b)
	eth := EthernetHdr{Dst: dstMAC, Src: srcMAC, EtherType: EtherTypeIPv4}
	eth.Encode(b)
	ipLen := size - EthHdrLen
	ip := IPv4Hdr{
		IHL: 5, TotalLen: uint16(ipLen), TTL: 64, Protocol: ProtoUDP,
		Src: src, Dst: dstIP,
	}
	ip.Encode(b[EthHdrLen:])
	udp := UDPHdr{
		SrcPort: srcPort, DstPort: dstPort,
		Length: uint16(ipLen - IPv4HdrLen),
	}
	udp.Encode(b[EthHdrLen+IPv4HdrLen:])
	return b
}

// BuildUDP6 assembles an Ethernet/IPv6/UDP frame of exactly size bytes.
func BuildUDP6(dst []byte, size int, srcMAC, dstMAC MAC, src, dstIP IPv6Addr, srcPort, dstPort uint16) []byte {
	if size < EthHdrLen+IPv6HdrLen+UDPHdrLen {
		size = EthHdrLen + IPv6HdrLen + UDPHdrLen
	}
	b := dst[:size]
	clear(b)
	eth := EthernetHdr{Dst: dstMAC, Src: srcMAC, EtherType: EtherTypeIPv6}
	eth.Encode(b)
	payload := size - EthHdrLen - IPv6HdrLen
	ip := IPv6Hdr{
		PayloadLen: uint16(payload), NextHeader: ProtoUDP, HopLimit: 64,
		Src: src, Dst: dstIP,
	}
	ip.Encode(b[EthHdrLen:])
	udp := UDPHdr{SrcPort: srcPort, DstPort: dstPort, Length: uint16(payload)}
	udp.Encode(b[EthHdrLen+IPv6HdrLen:])
	return b
}

// SetTimestamp stores a generator timestamp in the UDP payload of an
// IPv4 frame built with BuildUDP4, for round-trip latency measurement.
// It reports whether the frame had room.
func SetTimestamp(frame []byte, ts int64) bool {
	off := EthHdrLen + IPv4HdrLen + UDPHdrLen
	if len(frame) < off+8 {
		return false
	}
	binary.BigEndian.PutUint64(frame[off:], uint64(ts))
	return true
}

// Timestamp retrieves a timestamp stored by SetTimestamp.
func Timestamp(frame []byte) (int64, bool) {
	off := EthHdrLen + IPv4HdrLen + UDPHdrLen
	if len(frame) < off+8 {
		return 0, false
	}
	return int64(binary.BigEndian.Uint64(frame[off:])), true
}
