// Package modular implements the §7 "Click-like modular programming
// environment" the paper names as its next step: router functionality
// is composed from small elements wired into a graph with Click's
// configuration syntax, and the graph compiles into a core.App whose
// GPU-offloadable stage (at most one per pipeline, matching the paper's
// one-kernel-at-a-time framework) runs in the shading step.
//
// Example configuration:
//
//	check :: CheckIPHeader;
//	ttl   :: DecTTL;
//	rt    :: LookupIPv4($table);
//	out   :: ToHop(8);
//	check -> ttl -> rt -> out;
//	check[1] -> drop :: Discard;
//
// Elements receive the packet indices arriving at their input, process
// them (really — TTLs are decremented, lookups executed), and route
// each index to one of their outputs.
package modular

import (
	"packetshader/internal/core"
	"packetshader/internal/hw/gpu"
	"packetshader/internal/model"
	"packetshader/internal/openflow"
	"packetshader/internal/packet"

	lookupv4 "packetshader/internal/lookup/ipv4"
	"packetshader/internal/route"
)

// Ctx is the per-chunk processing context handed to elements. Annot
// carries per-packet 32-bit annotations between elements (Click's
// packet annotations): LookupIPv4 writes the next hop there, ToHop
// reads it.
type Ctx struct {
	Chunk *core.Chunk
	Annot []uint32
}

// NewCtx wraps a chunk.
func NewCtx(c *core.Chunk) *Ctx {
	return &Ctx{Chunk: c, Annot: make([]uint32, len(c.Bufs))}
}

// Element is one processing stage. Process consumes the chunk's packets
// at idxs and distributes them to its outputs (an index appearing in no
// output is dropped); it returns the CPU cycles consumed.
type Element interface {
	Class() string
	NumOutputs() int
	Process(ctx *Ctx, idxs []int) (outs [][]int, cycles float64)
}

// GPUElement is an element whose work can run in the shading step.
type GPUElement interface {
	Element
	Kernel() *gpu.KernelSpec
	// Gather reports the GPU transfer descriptors for the packets.
	Gather(ctx *Ctx, idxs []int) (threads, inBytes, outBytes, streamBytes int)
	// RunKernel performs the offloaded work (called on the master),
	// writing results into ctx.Annot.
	RunKernel(ctx *Ctx, idxs []int)
	// CPUCycles is the cost of doing the same work on the CPU.
	CPUCycles(ctx *Ctx, idxs []int) float64
}

// ---------------------------------------------------------------------------
// Built-in elements.
// ---------------------------------------------------------------------------

// CheckIPHeader validates IPv4 headers: valid packets exit output 0,
// invalid ones output 1 (or are dropped if output 1 is unwired).
type CheckIPHeader struct {
	Bad uint64
	dec packet.Decoder
}

// Class implements Element.
func (e *CheckIPHeader) Class() string { return "CheckIPHeader" }

// NumOutputs implements Element.
func (e *CheckIPHeader) NumOutputs() int { return 2 }

// Process implements Element.
func (e *CheckIPHeader) Process(ctx *Ctx, idxs []int) ([][]int, float64) {
	outs := make([][]int, 2)
	for _, i := range idxs {
		if err := e.dec.Decode(ctx.Chunk.Bufs[i].Data); err != nil ||
			!e.dec.Has(packet.LayerIPv4) ||
			!packet.VerifyIPv4Checksum(ctx.Chunk.Bufs[i].Data[packet.EthHdrLen:]) {
			e.Bad++
			outs[1] = append(outs[1], i)
			continue
		}
		outs[0] = append(outs[0], i)
	}
	return outs, float64(len(idxs)) * 60
}

// DecTTL decrements the IPv4 TTL with the RFC 1624 incremental checksum
// update; expired packets exit output 1.
type DecTTL struct {
	Expired uint64
}

// Class implements Element.
func (e *DecTTL) Class() string { return "DecTTL" }

// NumOutputs implements Element.
func (e *DecTTL) NumOutputs() int { return 2 }

// Process implements Element.
func (e *DecTTL) Process(ctx *Ctx, idxs []int) ([][]int, float64) {
	outs := make([][]int, 2)
	for _, i := range idxs {
		hdr := ctx.Chunk.Bufs[i].Data[packet.EthHdrLen:]
		if hdr[8] <= 1 {
			e.Expired++
			outs[1] = append(outs[1], i)
			continue
		}
		old16 := uint16(hdr[8])<<8 | uint16(hdr[9])
		hdr[8]--
		cs := uint16(hdr[10])<<8 | uint16(hdr[11])
		ncs := packet.ChecksumUpdateTTLDecrement(cs, old16)
		hdr[10], hdr[11] = byte(ncs>>8), byte(ncs)
		outs[0] = append(outs[0], i)
	}
	return outs, float64(len(idxs)) * 40
}

// LookupIPv4 performs DIR-24-8 longest prefix match; it is the
// pipeline's GPU-offloadable element. The hop is written to the packet
// annotation; hits exit output 0, misses output 1.
type LookupIPv4 struct {
	Table *lookupv4.Table
	dec   packet.Decoder
}

// annotNoRoute marks a miss in the annotation space.
const annotNoRoute = uint32(route.NoRoute)

// Class implements Element.
func (e *LookupIPv4) Class() string { return "LookupIPv4" }

// NumOutputs implements Element.
func (e *LookupIPv4) NumOutputs() int { return 2 }

// Process implements Element: route by the annotation the kernel wrote
// (used in the post-GPU phase).
func (e *LookupIPv4) Process(ctx *Ctx, idxs []int) ([][]int, float64) {
	outs := make([][]int, 2)
	for _, i := range idxs {
		if ctx.Annot[i] == annotNoRoute {
			outs[1] = append(outs[1], i)
			continue
		}
		outs[0] = append(outs[0], i)
	}
	return outs, float64(len(idxs)) * 10
}

// Kernel implements GPUElement.
func (e *LookupIPv4) Kernel() *gpu.KernelSpec { return &gpu.KernelIPv4 }

// Gather implements GPUElement.
func (e *LookupIPv4) Gather(ctx *Ctx, idxs []int) (int, int, int, int) {
	n := len(idxs)
	return n, n * 4, n * 2, 0
}

// RunKernel implements GPUElement.
func (e *LookupIPv4) RunKernel(ctx *Ctx, idxs []int) {
	for _, i := range idxs {
		if err := e.dec.Decode(ctx.Chunk.Bufs[i].Data); err == nil && e.dec.Has(packet.LayerIPv4) {
			ctx.Annot[i] = uint32(e.Table.Lookup(e.dec.IPv4.Dst))
		} else {
			ctx.Annot[i] = annotNoRoute
		}
	}
}

// CPUCycles implements GPUElement.
func (e *LookupIPv4) CPUCycles(ctx *Ctx, idxs []int) float64 {
	return float64(len(idxs)) *
		(1.05*model.MemAccessCycles()*model.MemContentionFactor + model.IPv4LookupComputeCycles)
}

// ToHop emits each packet to output port (annotation mod Ports).
type ToHop struct{ Ports int }

// Class implements Element.
func (e *ToHop) Class() string { return "ToHop" }

// NumOutputs implements Element.
func (e *ToHop) NumOutputs() int { return 0 }

// Process implements Element.
func (e *ToHop) Process(ctx *Ctx, idxs []int) ([][]int, float64) {
	for _, i := range idxs {
		ctx.Chunk.OutPorts[i] = int(ctx.Annot[i]) % e.Ports
	}
	return nil, float64(len(idxs)) * 15
}

// ToPort emits every packet to a fixed port.
type ToPort struct{ Port int }

// Class implements Element.
func (e *ToPort) Class() string { return "ToPort" }

// NumOutputs implements Element.
func (e *ToPort) NumOutputs() int { return 0 }

// Process implements Element.
func (e *ToPort) Process(ctx *Ctx, idxs []int) ([][]int, float64) {
	for _, i := range idxs {
		ctx.Chunk.OutPorts[i] = e.Port
	}
	return nil, float64(len(idxs)) * 10
}

// Discard drops everything it receives.
type Discard struct{ Count uint64 }

// Class implements Element.
func (e *Discard) Class() string { return "Discard" }

// NumOutputs implements Element.
func (e *Discard) NumOutputs() int { return 0 }

// Process implements Element.
func (e *Discard) Process(ctx *Ctx, idxs []int) ([][]int, float64) {
	for _, i := range idxs {
		ctx.Chunk.OutPorts[i] = -1
	}
	e.Count += uint64(len(idxs))
	return nil, float64(len(idxs)) * 2
}

// Counter passes packets through on output 0, counting them.
type Counter struct{ Packets, Bytes uint64 }

// Class implements Element.
func (e *Counter) Class() string { return "Counter" }

// NumOutputs implements Element.
func (e *Counter) NumOutputs() int { return 1 }

// Process implements Element.
func (e *Counter) Process(ctx *Ctx, idxs []int) ([][]int, float64) {
	for _, i := range idxs {
		e.Packets++
		e.Bytes += uint64(len(ctx.Chunk.Bufs[i].Data))
	}
	return [][]int{idxs}, float64(len(idxs)) * 4
}

// Classifier routes by EtherType: output 0 = IPv4, 1 = IPv6, 2 = other.
type Classifier struct {
	dec packet.Decoder
}

// Class implements Element.
func (e *Classifier) Class() string { return "Classifier" }

// NumOutputs implements Element.
func (e *Classifier) NumOutputs() int { return 3 }

// Process implements Element.
func (e *Classifier) Process(ctx *Ctx, idxs []int) ([][]int, float64) {
	outs := make([][]int, 3)
	for _, i := range idxs {
		out := 2
		if err := e.dec.Decode(ctx.Chunk.Bufs[i].Data); err == nil {
			switch {
			case e.dec.Has(packet.LayerIPv4):
				out = 0
			case e.dec.Has(packet.LayerIPv6):
				out = 1
			}
		}
		outs[out] = append(outs[out], i)
	}
	return outs, float64(len(idxs)) * 50
}

// VLANEncap pushes (or retags) an 802.1Q tag with the configured VID.
type VLANEncap struct{ VID uint16 }

// Class implements Element.
func (e *VLANEncap) Class() string { return "VLANEncap" }

// NumOutputs implements Element.
func (e *VLANEncap) NumOutputs() int { return 1 }

// Process implements Element.
func (e *VLANEncap) Process(ctx *Ctx, idxs []int) ([][]int, float64) {
	var pass []int
	for _, i := range idxs {
		b := ctx.Chunk.Bufs[i]
		out, err := openflow.ApplyMods(b.Data, []openflow.Mod{
			{Type: openflow.ModSetVLAN, VLAN: e.VID},
		})
		if err != nil {
			ctx.Chunk.OutPorts[i] = -1
			continue
		}
		b.Data = out
		pass = append(pass, i)
	}
	return [][]int{pass}, float64(len(idxs)) * 30
}

// VLANDecap strips the 802.1Q tag if present.
type VLANDecap struct{}

// Class implements Element.
func (e *VLANDecap) Class() string { return "VLANDecap" }

// NumOutputs implements Element.
func (e *VLANDecap) NumOutputs() int { return 1 }

// Process implements Element.
func (e *VLANDecap) Process(ctx *Ctx, idxs []int) ([][]int, float64) {
	for _, i := range idxs {
		b := ctx.Chunk.Bufs[i]
		if out, err := openflow.ApplyMods(b.Data, []openflow.Mod{
			{Type: openflow.ModStripVLAN},
		}); err == nil {
			b.Data = out
		}
	}
	return [][]int{idxs}, float64(len(idxs)) * 25
}
