package apps

import (
	"packetshader/internal/core"
	"packetshader/internal/hw/gpu"
	"packetshader/internal/packet"
)

// MultiApp implements the §7 "multi-functional" extension: several
// applications (e.g. IPv4 forwarding and IPsec tunneling) coexist on
// one router, with a classifier assigning each packet to an app. The
// paper notes its framework ran one kernel at a time per device and
// points at Fermi's concurrent-kernel support as the fix; here each
// sub-app's packets form a sub-chunk and the shading step executes the
// sub-kernels back to back within one launch window (their cost
// profiles compose additively, which is exact for serialized kernels
// and conservative for concurrent ones).
type MultiApp struct {
	Apps []core.App
	// Classify returns the index of the app that owns the packet (or
	// -1 to drop). It runs in pre-shading on the worker.
	Classify func(d *packet.Decoder, b *packet.Buf) int
	// ClassifyCycles is the per-packet CPU cost of classification.
	ClassifyCycles float64

	kernel gpu.KernelSpec
}

// NewMultiApp wires sub-apps behind a classifier.
func NewMultiApp(classify func(d *packet.Decoder, b *packet.Buf) int, classifyCycles float64, subApps ...core.App) *MultiApp {
	m := &MultiApp{Apps: subApps, Classify: classify, ClassifyCycles: classifyCycles}
	m.kernel = gpu.KernelSpec{Name: "multi"}
	return m
}

// multiState carries the per-app sub-chunks.
type multiState struct {
	// assignment[i] is the app index of packet i (-1 dropped).
	assignment []int
	// subChunks[a] collects app a's packets (views into the parent).
	subChunks []*core.Chunk
	// backRefs[a][j] is the parent index of sub-chunk a's packet j.
	backRefs [][]int
}

// Name implements core.App.
func (m *MultiApp) Name() string { return "multi-app" }

// Kernel returns the cost profile of the most recent pre-shaded mix;
// composing additively over sub-kernels weighted by their thread share.
func (m *MultiApp) Kernel() *gpu.KernelSpec { return &m.kernel }

// PreShade classifies packets, builds one sub-chunk per app, and runs
// each sub-app's pre-shading over its sub-chunk.
func (m *MultiApp) PreShade(c *core.Chunk) core.PreResult {
	st := &multiState{
		assignment: make([]int, len(c.Bufs)),
		subChunks:  make([]*core.Chunk, len(m.Apps)),
		backRefs:   make([][]int, len(m.Apps)),
	}
	c.State = st
	var d packet.Decoder
	for i, b := range c.Bufs {
		app := -1
		if err := d.DecodeFast(b.Data); err == nil {
			app = m.Classify(&d, b)
		}
		st.assignment[i] = app
		c.OutPorts[i] = -1
		if app < 0 || app >= len(m.Apps) {
			continue
		}
		if st.subChunks[app] == nil {
			st.subChunks[app] = &core.Chunk{Worker: c.Worker}
		}
		sc := st.subChunks[app]
		sc.Bufs = append(sc.Bufs, b)
		sc.OutPorts = append(sc.OutPorts, 0)
		st.backRefs[app] = append(st.backRefs[app], i)
	}
	total := core.PreResult{CPUCycles: float64(len(c.Bufs)) * m.ClassifyCycles}
	// Compose the launch profile from the sub-app mixes.
	var spec gpu.KernelSpec
	spec.Name = "multi"
	for a, sc := range st.subChunks {
		if sc == nil {
			continue
		}
		pre := m.Apps[a].PreShade(sc)
		sc.Threads, sc.InBytes, sc.OutBytes, sc.StreamBytes =
			pre.Threads, pre.InBytes, pre.OutBytes, pre.StreamBytes
		total.CPUCycles += pre.CPUCycles
		total.Threads += pre.Threads
		total.InBytes += pre.InBytes
		total.OutBytes += pre.OutBytes
		total.StreamBytes += pre.StreamBytes
		k := m.Apps[a].Kernel()
		w := 1.0
		if total.Threads > 0 {
			w = float64(pre.Threads) / float64(total.Threads)
		}
		spec.RandomAccesses += k.RandomAccesses * w
		spec.ComputeCycles += k.ComputeCycles * w
		if k.StreamBytesPerSec > 0 {
			spec.StreamBytesPerSec = k.StreamBytesPerSec
		}
		spec.PerThreadNs += k.PerThreadNs * w
	}
	m.kernel = spec
	return total
}

// RunKernel executes every sub-app's kernel over its sub-chunk.
func (m *MultiApp) RunKernel(c *core.Chunk) {
	st := c.State.(*multiState)
	for a, sc := range st.subChunks {
		if sc != nil {
			m.Apps[a].RunKernel(sc)
		}
	}
}

// PostShade finishes each sub-app and scatters the port decisions back
// into the parent chunk.
func (m *MultiApp) PostShade(c *core.Chunk) float64 {
	st := c.State.(*multiState)
	cycles := 0.0
	for a, sc := range st.subChunks {
		if sc == nil {
			continue
		}
		cycles += m.Apps[a].PostShade(sc)
		for j, parent := range st.backRefs[a] {
			c.OutPorts[parent] = sc.OutPorts[j]
		}
	}
	return cycles
}

// CPUWork runs every sub-app's CPU path.
func (m *MultiApp) CPUWork(c *core.Chunk) float64 {
	st := c.State.(*multiState)
	cycles := 0.0
	for a, sc := range st.subChunks {
		if sc != nil {
			cycles += m.Apps[a].CPUWork(sc)
		}
	}
	return cycles
}
