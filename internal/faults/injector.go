package faults

import (
	"packetshader/internal/obs"
	"packetshader/internal/sim"
)

// Target is what a fault plan acts on. internal/core.Router implements
// it; tests substitute fakes. Implementations must be non-blocking:
// injections run in scheduler context (sim.Env.At callbacks), not in a
// process.
type Target interface {
	// SetCarrier raises or drops the carrier of one port (RX and TX).
	SetCarrier(port int, up bool)
	// RxDropBurst discards port's RX arrivals for d of virtual time.
	RxDropBurst(port int, d sim.Duration)
	// FailGPU stalls node's GPU until RepairGPU.
	FailGPU(node int)
	// RepairGPU restores node's GPU.
	RepairGPU(node int)
	// RetrainPCIe sets node's GPU-link β-divisor (1 = full speed).
	RetrainPCIe(node int, divisor int)
}

// Injector arms a Plan against a Target on a simulation environment.
type Injector struct {
	env  *sim.Env
	plan *Plan
	tgt  Target

	tr    *obs.Tracer
	track obs.TrackID

	// Injected counts delivered events by kind (observability and
	// tests).
	Injected map[Kind]uint64
}

// NewInjector binds plan to tgt on env. Call Arm to schedule.
func NewInjector(env *sim.Env, plan *Plan, tgt Target) *Injector {
	return &Injector{env: env, plan: plan, tgt: tgt, Injected: map[Kind]uint64{}}
}

// SetTrace attaches a tracer track; each injected event is recorded as
// an instant on it. Call before Arm.
func (in *Injector) SetTrace(tr *obs.Tracer, track obs.TrackID) {
	in.tr = tr
	in.track = track
}

// Arm schedules every plan event at now+Event.At on the virtual clock.
// Events fire in scheduler context and apply the fault directly to the
// target, so injection timing is exact and independent of process
// scheduling.
func (in *Injector) Arm() {
	now := in.env.Now()
	for _, ev := range in.plan.Events() {
		ev := ev
		//pslint:ignore procshare plan events fire as scheduler callbacks at distinct armed timestamps, so deliveries never overlap; the Injected counter and trace appends are ordered by virtual time
		in.env.At(now+sim.Time(ev.At), func() { in.deliver(ev) })
	}
}

func (in *Injector) deliver(ev Event) {
	switch ev.Kind {
	case KindLinkDown:
		in.tgt.SetCarrier(ev.Port, false)
	case KindLinkUp:
		in.tgt.SetCarrier(ev.Port, true)
	case KindGPUFail:
		in.tgt.FailGPU(ev.Node)
	case KindGPURepair:
		in.tgt.RepairGPU(ev.Node)
	case KindPCIeRetrain:
		in.tgt.RetrainPCIe(ev.Node, ev.Div)
	case KindPCIeRestore:
		in.tgt.RetrainPCIe(ev.Node, 1)
	case KindRxDropBurst:
		in.tgt.RxDropBurst(ev.Port, ev.Dur)
	}
	in.Injected[ev.Kind]++
	in.tr.Instant(in.track, ev.Kind.String(), in.env.Now(),
		obs.Arg{Key: "port", Val: int64(ev.Port)},
		obs.Arg{Key: "node", Val: int64(ev.Node)})
}
