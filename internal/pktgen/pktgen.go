// Package pktgen is the traffic generator and sink of §6.1: it
// synthesizes UDP flows with random addresses and ports (so IP
// forwarding and OpenFlow look up a different entry for every packet),
// drives the NIC model's offered load, and measures round-trip latency
// from embedded timestamps, as the paper's generator does.
package pktgen

import (
	"math"
	"sync"

	"packetshader/internal/hw/nic"
	"packetshader/internal/packet"
	"packetshader/internal/route"
	"packetshader/internal/sim"
)

// splitmix64 is the per-packet deterministic PRNG: frame i of a queue is
// always the same frame, independent of fetch timing.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

var (
	genSrcMAC = packet.MAC{0x02, 0x00, 0x00, 0x00, 0x00, 0x01}
	genDstMAC = packet.MAC{0x02, 0x00, 0x00, 0x00, 0x00, 0x02}
)

// UDP4Source generates IPv4/UDP frames. If Table is non-empty,
// destination addresses are drawn by picking a table prefix and
// randomizing its host bits, so every packet hits the FIB ("looks up a
// different entry for every packet"); otherwise destinations are
// uniformly random 32-bit addresses.
type UDP4Source struct {
	Size  int
	Seed  uint64
	Table []route.Entry
	// Stamp embeds the generation timestamp in the payload when the
	// frame has room (latency experiments).
	Stamp bool

	// tmpl is the prebuilt frame template, constructed lazily under
	// once: sources are shared by every RX queue's fetch proc, and
	// sync.Once-built state stays read-only across procs.
	once sync.Once
	tmpl *packet.UDP4Template
}

// Fill implements nic.FrameSource.
func (s *UDP4Source) Fill(b *packet.Buf, port, queue int, seq uint64) {
	s.once.Do(func() { s.tmpl = packet.NewUDP4Template(s.Size, genSrcMAC, genDstMAC) })
	r := splitmix64(s.Seed ^ uint64(port)<<48 ^ uint64(queue)<<40 ^ seq)
	r2 := splitmix64(r)
	var dst packet.IPv4Addr
	if len(s.Table) > 0 {
		e := s.Table[int(r%uint64(len(s.Table)))]
		host := uint32(r2) &^ e.Prefix.Mask()
		dst = packet.IPv4Addr(uint32(e.Prefix.Addr) | host)
	} else {
		dst = packet.IPv4Addr(uint32(r))
	}
	src := packet.IPv4Addr(uint32(r2 >> 32))
	frame := s.tmpl.Render(b.Data[:cap(b.Data)], src, dst, uint16(r2>>16), uint16(r2))
	b.Data = frame
	b.Hash = nic.RSSHashIPv4(nic.DefaultRSSKey[:], uint32(src), uint32(dst),
		uint16(r2>>16), uint16(r2))
	if s.Stamp {
		packet.SetTimestamp(frame, int64(b.GenAt))
	}
}

// UDP6Source generates IPv6/UDP frames with destinations drawn from an
// IPv6 table (or uniformly random when Table is empty).
type UDP6Source struct {
	Size  int
	Seed  uint64
	Table []route.Entry6

	once sync.Once
	tmpl *packet.UDP6Template
}

// Fill implements nic.FrameSource.
func (s *UDP6Source) Fill(b *packet.Buf, port, queue int, seq uint64) {
	s.once.Do(func() { s.tmpl = packet.NewUDP6Template(s.Size, genSrcMAC, genDstMAC) })
	r := splitmix64(s.Seed ^ uint64(port)<<48 ^ uint64(queue)<<40 ^ seq)
	r2 := splitmix64(r)
	r3 := splitmix64(r2)
	var dst packet.IPv6Addr
	if len(s.Table) > 0 {
		e := s.Table[int(r%uint64(len(s.Table)))]
		mh, ml := route.Mask6(e.Prefix6.Len)
		dst = packet.IPv6AddrFromParts(e.Prefix6.Hi|(r2&^mh), e.Prefix6.Lo|(r3&^ml))
	} else {
		dst = packet.IPv6AddrFromParts(r2, r3)
	}
	src := packet.IPv6AddrFromParts(0x2001_0db8_0000_0000|r>>32, r)
	frame := s.tmpl.Render(b.Data[:cap(b.Data)], src, dst, uint16(r3>>16), uint16(r3))
	b.Data = frame
}

// ---------------------------------------------------------------------------
// Latency measurement.
// ---------------------------------------------------------------------------

// LatencySink accumulates round-trip latency from Buf.GenAt to TX
// completion. Attach Observe to nic.TxPort.OnComplete.
type LatencySink struct {
	Count uint64
	sum   float64
	min   sim.Duration
	max   sim.Duration
	// hist buckets latencies at 10µs granularity up to 10ms for
	// percentile estimation.
	hist [1000]uint64
}

// NewLatencySink returns an empty sink.
func NewLatencySink() *LatencySink {
	return &LatencySink{min: math.MaxInt64}
}

// Observe records one packet's completion.
func (l *LatencySink) Observe(b *packet.Buf, at sim.Time) {
	if b.GenAt == 0 {
		return
	}
	d := sim.Duration(at - b.GenAt)
	if d < 0 {
		return
	}
	l.Count++
	l.sum += d.Seconds()
	if d < l.min {
		l.min = d
	}
	if d > l.max {
		l.max = d
	}
	bucket := int(d / (10 * sim.Microsecond))
	if bucket >= len(l.hist) {
		bucket = len(l.hist) - 1
	}
	l.hist[bucket]++
}

// MeanMicros returns the average latency in microseconds.
func (l *LatencySink) MeanMicros() float64 {
	if l.Count == 0 {
		return 0
	}
	return l.sum / float64(l.Count) * 1e6
}

// MinMicros and MaxMicros return the extremes in microseconds.
func (l *LatencySink) MinMicros() float64 {
	if l.Count == 0 {
		return 0
	}
	return l.min.Microseconds()
}

// MaxMicros returns the maximum observed latency.
func (l *LatencySink) MaxMicros() float64 { return l.max.Microseconds() }

// PercentileMicros returns an upper bound of the q-quantile (0<q<1)
// from the 10µs histogram.
func (l *LatencySink) PercentileMicros(q float64) float64 {
	if l.Count == 0 {
		return 0
	}
	target := uint64(q * float64(l.Count))
	var cum uint64
	for i, c := range l.hist {
		cum += c
		if cum >= target {
			return float64(i+1) * 10
		}
	}
	return float64(len(l.hist)) * 10
}
