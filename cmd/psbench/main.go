// Command psbench regenerates the paper's tables and figures on the
// simulated testbed.
//
// Usage:
//
//	psbench [experiment ...]
//	psbench all
//	psbench -list
//
// Experiments: table1, launch, fig2, table3, fig5, fig6, numa,
// fig11a-fig11d, fig12, ablation, cluster, fibupdate, faults.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"packetshader/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list available experiments")
	metrics := flag.Bool("metrics", false, "dump per-run metrics (counters, latency histograms, occupancy)")
	flag.Parse()
	if *metrics {
		experiments.SetMetricsWriter(os.Stdout)
	}
	if *list {
		for _, e := range experiments.Registry {
			fmt.Println(e.ID)
		}
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		args = []string{"all"}
	}
	for _, id := range args {
		start := time.Now()
		if err := experiments.Run(os.Stdout, id); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", id, time.Since(start).Round(time.Millisecond))
	}
}
