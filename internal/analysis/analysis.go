// Package analysis is a self-contained miniature of the
// golang.org/x/tools/go/analysis framework, built only on the standard
// library so the repository carries no external dependencies. It defines
// the Analyzer/Pass/Diagnostic vocabulary used by the pslint suite
// (cmd/pslint), which enforces the simulator's determinism contract:
// virtual time only, seeded RNG only, and order-stable iteration in any
// path that schedules simulation events or emits experiment output.
//
// The API deliberately mirrors x/tools so analyzers can be ported to the
// upstream framework verbatim if the dependency ever becomes available.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name is the analyzer's identifier, used in diagnostics and in
	// //pslint:ignore directives. It must be a valid Go identifier.
	Name string

	// Doc is a one-paragraph description of what the analyzer checks
	// and why the invariant matters for the simulation.
	Doc string

	// InternalOnly restricts the analyzer to packages under internal/.
	// Wall-clock time and the global math/rand source are legitimate in
	// cmd/ front-ends (e.g. psbench prints host-time progress), but
	// never in the simulated stack.
	InternalOnly bool

	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Pass provides one analyzer with the parsed, type-checked syntax of a
// single package, and collects the diagnostics it reports.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report is called for each diagnostic. The default (set by
	// NewPass) appends to Diagnostics after applying //pslint:ignore
	// suppression.
	Report func(Diagnostic)

	// Diagnostics accumulates reported, non-suppressed diagnostics.
	Diagnostics []Diagnostic

	ignores map[string]map[int]bool // filename -> line -> ignored (per analyzer)
}

// A Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// NewPass assembles a Pass for one package and indexes the package's
// //pslint:ignore directives for the given analyzer.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) *Pass {
	p := &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		ignores:   make(map[string]map[int]bool),
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, ok := parseIgnore(c.Text)
				if !ok || (name != a.Name && name != "all") {
					continue
				}
				pos := fset.Position(c.Pos())
				m := p.ignores[pos.Filename]
				if m == nil {
					m = make(map[int]bool)
					p.ignores[pos.Filename] = m
				}
				// A directive suppresses findings on its own line and,
				// when it stands alone, on the line below it.
				m[pos.Line] = true
				m[pos.Line+1] = true
			}
		}
	}
	p.Report = func(d Diagnostic) {
		d.Analyzer = a.Name
		pos := fset.Position(d.Pos)
		if m := p.ignores[pos.Filename]; m != nil && m[pos.Line] {
			return
		}
		p.Diagnostics = append(p.Diagnostics, d)
	}
	return p
}

// parseIgnore recognises "//pslint:ignore <name> [reason]" directives.
func parseIgnore(text string) (analyzer string, ok bool) {
	const prefix = "//pslint:ignore"
	if !strings.HasPrefix(text, prefix) {
		return "", false
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, prefix))
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", false
	}
	return fields[0], true
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// IsTestFile reports whether the file containing pos is a _test.go file.
// The pslint loader only feeds analyzers non-test sources, but the check
// keeps analyzers correct if that ever changes (e.g. under analysistest).
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// SimPkgPath is the import path of the deterministic simulation engine
// whose contract the pslint suite enforces.
const SimPkgPath = "packetshader/internal/sim"

// IsSimFunc reports whether obj is a function or method declared in the
// sim package with one of the given names. An empty names list matches
// any sim function.
func IsSimFunc(obj types.Object, names ...string) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != SimPkgPath {
		return false
	}
	if len(names) == 0 {
		return true
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// IsSimNamed reports whether t (after unwrapping pointers and generic
// instantiation) is the named sim type with the given name.
func IsSimNamed(t types.Type, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == SimPkgPath && obj.Name() == name
}

// Inspect walks every file in the pass in source order, calling fn for
// each node; if fn returns false the node's children are skipped.
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}
