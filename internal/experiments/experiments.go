// Package experiments regenerates every table and figure of the paper's
// evaluation (plus the §2 microbenchmarks and the §4/§5 ablations) on
// the simulated testbed. Each experiment returns a Result whose rows
// mirror the series the paper reports, annotated with the paper's
// numbers where it states them, so EXPERIMENTS.md can record
// paper-vs-measured side by side.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"packetshader/internal/lookup/ipv4"
	"packetshader/internal/lookup/ipv6"
	"packetshader/internal/route"
)

// Result is one regenerated table or figure.
type Result struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (r *Result) AddRow(cells ...string) { r.Rows = append(r.Rows, cells) }

// Note appends a footnote (typically the paper's reference numbers).
func (r *Result) Note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Print renders the result as an aligned text table.
func (r *Result) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		var sb strings.Builder
		for i, c := range cells {
			if i < len(widths) {
				sb.WriteString(fmt.Sprintf("%-*s  ", widths[i], c))
			} else {
				sb.WriteString(c)
			}
		}
		fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	}
	line(r.Header)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Registry maps experiment IDs to their drivers, in paper order.
var Registry = []struct {
	ID  string
	Run func() *Result
}{
	{"table1", Table1},
	{"launch", LaunchLatency},
	{"fig2", Fig2},
	{"table3", Table3},
	{"fig5", Fig5},
	{"fig6", Fig6},
	{"numa", NUMA},
	{"fig11a", Fig11a},
	{"fig11b", Fig11b},
	{"fig11c", Fig11c},
	{"fig11d", Fig11d},
	{"fig12", Fig12},
	{"ablation", Ablation},
	{"cluster", Cluster},
	{"fibupdate", FIBUpdate},
	{"faults", FaultScenario},
}

// Run executes the experiment with the given ID (or all of them for
// "all"), printing to w. Unknown IDs return an error.
func Run(w io.Writer, id string) error {
	if id == "all" {
		for _, e := range Registry {
			e.Run().Print(w)
		}
		return nil
	}
	for _, e := range Registry {
		if e.ID == id {
			e.Run().Print(w)
			return nil
		}
	}
	return fmt.Errorf("unknown experiment %q (use one of: %s, or all)", id, ids())
}

func ids() string {
	var s []string
	for _, e := range Registry {
		s = append(s, e.ID)
	}
	return strings.Join(s, ", ")
}

// ---------------------------------------------------------------------------
// Shared fixtures: the big routing tables are expensive to build, so
// they are constructed once and shared across experiments.
// ---------------------------------------------------------------------------

var (
	bgpOnce    sync.Once
	bgpEntries []route.Entry
	bgpTable   *ipv4.Table

	v6Once    sync.Once
	v6Entries []route.Entry6
	v6Table   *ipv6.Table
)

// BGPFixture returns the paper-scale IPv4 table (282,797 prefixes,
// §6.2.1) and its DIR-24-8 build.
func BGPFixture() ([]route.Entry, *ipv4.Table) {
	bgpOnce.Do(func() {
		bgpEntries = route.GenerateBGPTable(route.BGPTableSize, 64, 2009)
		var err error
		bgpTable, err = ipv4.Build(bgpEntries)
		if err != nil {
			panic(err)
		}
	})
	return bgpEntries, bgpTable
}

// IPv6Fixture returns the 200,000-prefix IPv6 table (§6.2.2).
func IPv6Fixture() ([]route.Entry6, *ipv6.Table) {
	v6Once.Do(func() {
		v6Entries = route.GenerateIPv6Table(200000, 64, 2010)
		v6Table = ipv6.Build(v6Entries)
	})
	return v6Entries, v6Table
}
