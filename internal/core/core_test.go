package core

import (
	"testing"

	"packetshader/internal/faults"
	"packetshader/internal/hw/gpu"
	"packetshader/internal/model"
	"packetshader/internal/packet"
	"packetshader/internal/sim"
)

// echoApp forwards every packet to (ingress+1) mod ports with
// configurable CPU costs — a minimal App for framework tests.
type echoApp struct {
	kernel     gpu.KernelSpec
	cpuPerPkt  float64
	kernelRuns int
	ports      int
}

func newEchoApp(ports int) *echoApp {
	return &echoApp{kernel: gpu.KernelIPv4, ports: ports, cpuPerPkt: 100}
}

func (a *echoApp) Name() string            { return "echo" }
func (a *echoApp) Kernel() *gpu.KernelSpec { return &a.kernel }

func (a *echoApp) PreShade(c *Chunk) PreResult {
	for i := range c.OutPorts {
		c.OutPorts[i] = -2
	}
	n := len(c.Bufs)
	return PreResult{CPUCycles: float64(n) * 50, Threads: n, InBytes: 4 * n, OutBytes: 2 * n}
}

func (a *echoApp) RunKernel(c *Chunk) { a.kernelRuns++ }

func (a *echoApp) PostShade(c *Chunk) float64 {
	for i, b := range c.Bufs {
		if c.OutPorts[i] == -2 {
			c.OutPorts[i] = (b.Port + 1) % a.ports
		}
	}
	return float64(len(c.Bufs)) * 20
}

func (a *echoApp) CPUWork(c *Chunk) float64 {
	return float64(len(c.Bufs)) * a.cpuPerPkt
}

// smallConfig is a 1-node, 2-port topology for functional tests.
func smallConfig(mode Mode) Config {
	cfg := DefaultConfig()
	cfg.Mode = mode
	cfg.IO.Nodes = 1
	cfg.IO.Ports = 2
	cfg.PacketSize = 64
	cfg.OfferedGbpsPerPort = 5
	return cfg
}

type seqSource struct{}

func (seqSource) Fill(b *packet.Buf, port, queue int, seq uint64) {
	b.Data[0] = byte(seq)
	b.Hash = uint32(seq)
}

func runRouter(t *testing.T, cfg Config, app App, window sim.Duration) *Router {
	t.Helper()
	env := sim.NewEnv()
	r := New(env, cfg, app)
	r.SetSource(seqSource{})
	r.Start()
	env.Run(sim.Time(window))
	return r
}

func TestCPUOnlyModeForwards(t *testing.T) {
	app := newEchoApp(2)
	r := runRouter(t, smallConfig(ModeCPUOnly), app, 2*sim.Millisecond)
	if r.Stats.Packets == 0 {
		t.Fatal("no packets processed")
	}
	if r.Stats.ChunksGPU != 0 {
		t.Error("CPU-only mode used the GPU path")
	}
	if r.Stats.ChunksCPU == 0 {
		t.Error("no CPU chunks")
	}
	_, _, tx, _ := r.Engine.AggregateStats()
	if tx == 0 {
		t.Error("nothing transmitted")
	}
	if g := r.DeliveredGbps(); g < 1 {
		t.Errorf("delivered %.2f Gbps at 10 offered", g)
	}
}

func TestCPUOnlyHasFourWorkersPerNode(t *testing.T) {
	env := sim.NewEnv()
	r := New(env, smallConfig(ModeCPUOnly), newEchoApp(2))
	if len(r.workers) != model.CoresPerNode {
		t.Errorf("workers = %d, want %d", len(r.workers), model.CoresPerNode)
	}
	if len(r.masters) != 0 {
		t.Errorf("masters = %d, want 0", len(r.masters))
	}
}

func TestGPUModeHasThreeWorkersAndMaster(t *testing.T) {
	env := sim.NewEnv()
	r := New(env, smallConfig(ModeGPU), newEchoApp(2))
	if len(r.workers) != model.CoresPerNode-1 {
		t.Errorf("workers = %d, want %d", len(r.workers), model.CoresPerNode-1)
	}
	if len(r.masters) != 1 || len(r.Devices) != 1 {
		t.Errorf("masters = %d devices = %d, want 1/1", len(r.masters), len(r.Devices))
	}
}

func TestGPUModeShadesChunks(t *testing.T) {
	app := newEchoApp(2)
	r := runRouter(t, smallConfig(ModeGPU), app, 2*sim.Millisecond)
	if r.Stats.ChunksGPU == 0 || r.Stats.GPULaunches == 0 {
		t.Fatalf("GPU path unused: %+v", r.Stats)
	}
	if app.kernelRuns == 0 {
		t.Error("kernel function never ran")
	}
	if r.Devices[0].Launches == 0 {
		t.Error("device recorded no launches")
	}
	if g := r.DeliveredGbps(); g < 1 {
		t.Errorf("delivered %.2f Gbps", g)
	}
}

func TestGatherScatterBatchesChunks(t *testing.T) {
	cfg := smallConfig(ModeGPU)
	cfg.OfferedGbpsPerPort = 10 // saturate so the input queue fills
	app := newEchoApp(2)
	r := runRouter(t, cfg, app, 3*sim.Millisecond)
	if r.Stats.GPULaunches == 0 {
		t.Fatal("no launches")
	}
	chunksPerLaunch := float64(r.Stats.ChunksGPU) / float64(r.Stats.GPULaunches)
	if chunksPerLaunch < 1.5 {
		t.Errorf("chunks/launch = %.2f; gather/scatter should batch >1 under load", chunksPerLaunch)
	}
}

func TestNoGatherProcessesOneChunkPerLaunch(t *testing.T) {
	cfg := smallConfig(ModeGPU)
	cfg.GatherMax = 1
	r := runRouter(t, cfg, newEchoApp(2), 2*sim.Millisecond)
	if r.Stats.ChunksGPU != r.Stats.GPULaunches {
		t.Errorf("chunks %d != launches %d with gather disabled",
			r.Stats.ChunksGPU, r.Stats.GPULaunches)
	}
}

func TestOpportunisticOffloadLightLoad(t *testing.T) {
	cfg := smallConfig(ModeGPU)
	cfg.OpportunisticOffload = true
	cfg.OppThreshold = 64
	cfg.OfferedGbpsPerPort = 0.05 // very light: tiny chunks
	r := runRouter(t, cfg, newEchoApp(2), 5*sim.Millisecond)
	if r.Stats.ChunksCPU == 0 {
		t.Error("light load never processed on CPU")
	}
	if r.Stats.ChunksGPU > r.Stats.ChunksCPU/10 {
		t.Errorf("GPU chunks %d vs CPU %d under light load", r.Stats.ChunksGPU, r.Stats.ChunksCPU)
	}
}

func TestOpportunisticOffloadHeavyLoadUsesGPU(t *testing.T) {
	cfg := smallConfig(ModeGPU)
	cfg.OpportunisticOffload = true
	cfg.OppThreshold = 16
	cfg.OfferedGbpsPerPort = 10
	r := runRouter(t, cfg, newEchoApp(2), 3*sim.Millisecond)
	if r.Stats.ChunksGPU == 0 {
		t.Error("heavy load never reached the GPU")
	}
}

func TestDropsCounted(t *testing.T) {
	app := newEchoApp(2)
	cfg := smallConfig(ModeCPUOnly)
	dropApp := &droppingApp{echoApp: app}
	r := runRouter(t, cfg, dropApp, 2*sim.Millisecond)
	if r.Stats.Drops == 0 {
		t.Error("no drops recorded")
	}
	_, _, tx, _ := r.Engine.AggregateStats()
	if tx != 0 {
		t.Errorf("dropping app transmitted %d packets", tx)
	}
}

type droppingApp struct{ *echoApp }

func (a *droppingApp) PostShade(c *Chunk) float64 {
	for i := range c.OutPorts {
		c.OutPorts[i] = -1
	}
	return 0
}

func TestPerQueueOrderPreserved(t *testing.T) {
	for _, mode := range []Mode{ModeCPUOnly, ModeGPU} {
		env := sim.NewEnv()
		cfg := smallConfig(mode)
		r := New(env, cfg, newEchoApp(2))
		r.SetSource(seqSource{})
		type key struct{ port, queue int }
		last := map[key]sim.Time{}
		violations := 0
		for _, p := range r.Engine.Ports {
			p.Tx.OnComplete = func(b *packet.Buf, at sim.Time) {
				k := key{b.Port, b.Queue}
				if b.GenAt < last[k] {
					violations++
				}
				last[k] = b.GenAt
			}
		}
		r.Start()
		env.Run(sim.Time(3 * sim.Millisecond))
		if violations > 0 {
			t.Errorf("mode %v: %d per-queue order violations (§5.3 FIFO broken)", mode, violations)
		}
		if len(last) == 0 {
			t.Errorf("mode %v: no completions observed", mode)
		}
	}
}

func TestPipeliningImprovesThroughputWhenGPUSlow(t *testing.T) {
	// With a slow kernel and no pipelining, workers idle while the
	// master shades; pipelining overlaps the two (§5.4, Figure 10a).
	mk := func(pipeline bool) float64 {
		cfg := smallConfig(ModeGPU)
		cfg.Pipelining = pipeline
		cfg.OfferedGbpsPerPort = 10
		app := newEchoApp(2)
		app.kernel = gpu.KernelIPv6 // heavier kernel
		r := runRouter(t, cfg, app, 5*sim.Millisecond)
		return r.DeliveredGbps()
	}
	with, without := mk(true), mk(false)
	if with <= without {
		t.Errorf("pipelining %.2f Gbps ≤ no pipelining %.2f", with, without)
	}
}

func TestWorkersRetireWithoutLoad(t *testing.T) {
	env := sim.NewEnv()
	cfg := smallConfig(ModeCPUOnly)
	r := New(env, cfg, newEchoApp(2))
	// No SetSource: queues have no offered load.
	r.Start()
	end := env.Run(sim.Time(sim.Second))
	if end > sim.Time(10*sim.Microsecond) {
		t.Errorf("idle router kept the clock running until %v", end)
	}
}

func TestInputGbpsMetric(t *testing.T) {
	cfg := smallConfig(ModeCPUOnly)
	r := runRouter(t, cfg, newEchoApp(2), 2*sim.Millisecond)
	in := r.InputGbps()
	if in <= 0 || in > 2*cfg.OfferedGbpsPerPort*float64(cfg.IO.Ports) {
		t.Errorf("input metric %.2f Gbps implausible", in)
	}
}

// TestPacketConservation checks the pipeline never loses or duplicates
// packets: every fetched packet is transmitted, dropped by the app, or
// still in flight inside the bounded pipeline when the clock stops.
func TestPacketConservation(t *testing.T) {
	for _, mode := range []Mode{ModeCPUOnly, ModeGPU} {
		for _, offered := range []float64{0.5, 5, 10} {
			cfg := smallConfig(mode)
			cfg.OfferedGbpsPerPort = offered
			app := newEchoApp(2)
			r := runRouter(t, cfg, app, 3*sim.Millisecond)
			rx, _, tx, txDropped := r.Engine.AggregateStats()
			accounted := tx + txDropped + r.Stats.Drops
			if accounted > rx {
				t.Fatalf("mode %v offered %v: accounted %d > fetched %d (duplication)",
					mode, offered, accounted, rx)
			}
			// In-flight bound: chunks queued in the pipeline plus one
			// in-progress chunk per worker and per master.
			workers := len(r.workers)
			maxInflight := uint64((workers*(cfg.MaxInFlight+2) +
				len(r.masters)*cfg.GatherMax + len(r.masters)*model.InputQueueDepth) *
				cfg.ChunkCap)
			if rx-accounted > maxInflight {
				t.Errorf("mode %v offered %v: %d packets unaccounted (> pipeline bound %d)",
					mode, offered, rx-accounted, maxInflight)
			}
		}
	}
}

// TestBufPoolBoundedUnderLoad: the buffer pool must not grow without
// bound (the huge-packet-buffer property at the system level).
func TestBufPoolBoundedUnderLoad(t *testing.T) {
	cfg := smallConfig(ModeGPU)
	cfg.OfferedGbpsPerPort = 10
	r := runRouter(t, cfg, newEchoApp(2), 5*sim.Millisecond)
	// Bound: pipeline capacity (chunks in flight) × chunk size plus the
	// per-queue fetch working set.
	bound := (len(r.workers)*(cfg.MaxInFlight+2) + model.InputQueueDepth + model.OutputQueueDepth) * cfg.ChunkCap * 4
	if r.Engine.Pool.Allocs > bound {
		t.Errorf("pool allocated %d cells, bound %d: leak through the pipeline", r.Engine.Pool.Allocs, bound)
	}
}

func TestGPUOutageFallsBackAndRecovers(t *testing.T) {
	app := newEchoApp(2)
	cfg := smallConfig(ModeGPU)
	cfg.GPUWatchdog = 100 * sim.Microsecond
	cfg.GPUBackoff = 500 * sim.Microsecond
	cfg.GPUBackoffMax = 2 * sim.Millisecond
	cfg.Faults = faults.NewPlan().GPUOutage(0, 2*sim.Millisecond, 3*sim.Millisecond)
	r := runRouter(t, cfg, app, 10*sim.Millisecond)

	if r.Stats.GPUStalls == 0 {
		t.Fatal("watchdog never detected the stall")
	}
	if r.Stats.FallbackChunks == 0 {
		t.Error("master never re-dispatched stalled chunks on the CPU")
	}
	if r.Stats.ChunksCPU == 0 {
		t.Error("workers never degraded to the CPU path")
	}
	if r.masters[0].gpuOut {
		t.Error("master still holds the GPU out after repair")
	}
	deg := r.DegradedTime()
	// Outage spans from detection (~2ms + watchdog) until the first
	// successful probe after the 5ms repair; backoff can push that probe
	// past repair, but never beyond repair + backoff cap + a launch.
	if deg < 2*sim.Millisecond || deg > 7*sim.Millisecond {
		t.Errorf("degraded time = %v, want within (2ms, 7ms)", deg)
	}
	// The GPU path must be live again: launches strictly after recovery.
	if r.Stats.GPULaunches == 0 || r.Stats.ChunksGPU == 0 {
		t.Error("no GPU work at all despite recovery")
	}
	if r.Devices[0].Stalls != r.Stats.GPUStalls {
		t.Errorf("device stalls %d != router stalls %d",
			r.Devices[0].Stalls, r.Stats.GPUStalls)
	}
}

func TestGPUOutageThroughputStaysUp(t *testing.T) {
	// Delivered throughput during the outage must stay within the
	// CPU-only envelope, not collapse to zero — the graceful part.
	app := newEchoApp(2)
	base := smallConfig(ModeGPU)
	base.GPUWatchdog = 100 * sim.Microsecond
	base.GPUBackoff = 1 * sim.Millisecond

	cpuOnly := runRouter(t, smallConfig(ModeCPUOnly), app, 6*sim.Millisecond)
	envelope := cpuOnly.DeliveredGbps()

	cfg := base
	cfg.Faults = faults.NewPlan().GPUOutage(0, 1*sim.Millisecond, 20*sim.Millisecond)
	env := sim.NewEnv()
	r := New(env, cfg, newEchoApp(2))
	r.SetSource(seqSource{})
	r.Start()
	env.Run(sim.Time(3 * sim.Millisecond)) // fail at 1ms, detect, degrade
	r.ResetMeasurement()
	env.Run(sim.Time(6 * sim.Millisecond)) // pure outage window
	got := r.DeliveredGbps()
	if got <= 0 {
		t.Fatal("throughput collapsed to zero during GPU outage")
	}
	if got > envelope*1.10 {
		t.Errorf("outage throughput %.2f Gbps exceeds CPU-only envelope %.2f", got, envelope)
	}
}

func TestLinkFlapDropsThenResumes(t *testing.T) {
	app := newEchoApp(2)
	cfg := smallConfig(ModeCPUOnly)
	cfg.Faults = faults.NewPlan().LinkFlap(1, 1*sim.Millisecond, 1*sim.Millisecond)
	env := sim.NewEnv()
	r := New(env, cfg, app)
	r.SetSource(seqSource{})
	r.Start()
	env.Run(sim.Time(2 * sim.Millisecond)) // carrier down 1ms..2ms
	drops := r.CarrierDrops()
	tx1 := r.Engine.Ports[1].Tx.Stats.Packets
	if drops == 0 {
		t.Fatal("no carrier drops while port 1 was down")
	}
	env.Run(sim.Time(4 * sim.Millisecond))
	if got := r.CarrierDrops(); got != drops {
		t.Errorf("carrier drops kept growing after restore: %d -> %d", drops, got)
	}
	if r.Engine.Ports[1].Tx.Stats.Packets <= tx1 {
		t.Error("port 1 TX did not resume after carrier restore")
	}
}

func TestWorkersSurviveFullCarrierOutage(t *testing.T) {
	// With every port down, TimeToPacket must keep reporting alive so
	// workers poll instead of retiring permanently.
	app := newEchoApp(2)
	cfg := smallConfig(ModeCPUOnly)
	cfg.Faults = faults.NewPlan().
		LinkFlap(0, 1*sim.Millisecond, 1*sim.Millisecond).
		LinkFlap(1, 1*sim.Millisecond, 1*sim.Millisecond)
	env := sim.NewEnv()
	r := New(env, cfg, app)
	r.SetSource(seqSource{})
	r.Start()
	env.Run(sim.Time(2 * sim.Millisecond))
	fetched := r.Stats.Packets
	env.Run(sim.Time(4 * sim.Millisecond))
	if r.Stats.Packets <= fetched {
		t.Error("workers retired during the outage and never resumed")
	}
}

func TestRxDropBurstAccounted(t *testing.T) {
	app := newEchoApp(2)
	cfg := smallConfig(ModeCPUOnly)
	cfg.Faults = faults.NewPlan().RxDropBurst(0, 1*sim.Millisecond, 500*sim.Microsecond)
	r := runRouter(t, cfg, app, 3*sim.Millisecond)
	_, rxDropped, _, _ := r.Engine.AggregateStats()
	if rxDropped == 0 {
		t.Error("drop burst produced no RX drops")
	}
}

func TestFaultPlanIgnoredGracefullyInCPUMode(t *testing.T) {
	// GPU faults target devices that do not exist in CPU-only mode; the
	// plan must be a no-op, not a crash.
	app := newEchoApp(2)
	cfg := smallConfig(ModeCPUOnly)
	cfg.Faults = faults.NewPlan().
		GPUOutage(0, 1*sim.Millisecond, 1*sim.Millisecond).
		PCIeRetrain(1, 1*sim.Millisecond, 1*sim.Millisecond)
	r := runRouter(t, cfg, app, 3*sim.Millisecond)
	if r.Stats.GPUStalls != 0 || r.DegradedTime() != 0 {
		t.Error("CPU-only run recorded GPU fault effects")
	}
	if r.Stats.Packets == 0 {
		t.Error("router stopped forwarding")
	}
}

func TestFaultRunsDeterministic(t *testing.T) {
	run := func() (Stats, uint64, sim.Duration) {
		cfg := smallConfig(ModeGPU)
		cfg.GPUWatchdog = 100 * sim.Microsecond
		cfg.Faults = faults.NewPlan().
			GPUOutage(0, 1*sim.Millisecond, 2*sim.Millisecond).
			LinkFlap(1, 2*sim.Millisecond, 500*sim.Microsecond)
		r := runRouter(t, cfg, newEchoApp(2), 6*sim.Millisecond)
		return r.Stats, r.CarrierDrops(), r.DegradedTime()
	}
	s1, c1, d1 := run()
	s2, c2, d2 := run()
	if s1 != s2 || c1 != c2 || d1 != d2 {
		t.Errorf("identical fault runs diverged:\n%+v %d %v\n%+v %d %v",
			s1, c1, d1, s2, c2, d2)
	}
}

// TestRecycledChunksDontLeakStalePorts pins the OutPorts recycling
// contract: fetchChunk reuses chunk OutPorts arrays WITHOUT clearing
// them (every App's PreShade writes every slot). The free list is
// pre-poisoned with out-of-range port numbers; if a stale slot ever
// survived to transmission, Engine.Send would index a nonexistent port
// and panic, and the bogus ports would corrupt forwarding.
func TestRecycledChunksDontLeakStalePorts(t *testing.T) {
	env := sim.NewEnv()
	r := New(env, smallConfig(ModeCPUOnly), newEchoApp(2))
	for i := 0; i < 16; i++ {
		c := &Chunk{OutPorts: make([]int, model.MaxChunkSize)}
		for j := range c.OutPorts {
			c.OutPorts[j] = 0x7ead // far beyond any real port
		}
		r.putChunk(c)
	}
	r.SetSource(seqSource{})
	r.Start()
	env.Run(sim.Time(2 * sim.Millisecond))
	if r.Stats.ChunkReuses == 0 {
		t.Fatal("free list never used; test exercised nothing")
	}
	if _, _, tx, _ := r.Engine.AggregateStats(); tx == 0 {
		t.Error("nothing transmitted")
	}
}
