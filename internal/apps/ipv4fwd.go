// Package apps implements the four router applications the paper
// evaluates on PacketShader (§6.2): IPv4 and IPv6 forwarding, an
// OpenFlow switch, and an IPsec gateway. Each plugs into the framework
// via the core.App callbacks, performs its packet processing for real
// (lookups, matching, encryption), and reports calibrated CPU cycle
// costs for the virtual clock.
package apps

import (
	"encoding/binary"

	"packetshader/internal/core"
	"packetshader/internal/hw/gpu"
	"packetshader/internal/lookup/ipv4"
	"packetshader/internal/model"
	"packetshader/internal/packet"
	"packetshader/internal/route"
)

// IPv4Fwd is the §6.2.1 IPv4 forwarder: DIR-24-8 lookup over a BGP-scale
// table, with TTL decrement and incremental checksum update in
// pre-shading and slow-path classification for malformed packets.
type IPv4Fwd struct {
	Table *ipv4.Table
	// NumPorts maps next hops onto output ports.
	NumPorts int
	// SlowPath counts packets punted to the host stack (TTL expired,
	// malformed, bad checksum).
	SlowPath uint64
}

type ipv4State struct {
	addrs []packet.IPv4Addr
	hops  []uint16
}

// Name implements core.App.
func (a *IPv4Fwd) Name() string { return "ipv4-forwarding" }

// Kernel implements core.App.
func (a *IPv4Fwd) Kernel() *gpu.KernelSpec { return &gpu.KernelIPv4 }

// PreShade parses each packet, handles TTL/checksum, drops slow-path
// packets from the fast path, and gathers destination addresses for the
// GPU (§6.2.1).
func (a *IPv4Fwd) PreShade(c *core.Chunk) core.PreResult {
	// Recycled chunks keep their State scratch; reinitialize it fully
	// rather than allocating fresh slices per chunk.
	st, ok := c.State.(*ipv4State)
	if !ok {
		st = &ipv4State{}
		c.State = st
	}
	st.addrs = st.addrs[:0]
	st.hops = scratch(st.hops, len(c.Bufs))
	var d packet.Decoder
	for i, b := range c.Bufs {
		c.OutPorts[i] = -1
		if err := d.DecodeFast(b.Data); err != nil || !d.Has(packet.LayerIPv4) {
			a.SlowPath++
			st.addrs = append(st.addrs, 0) // keep slot alignment
			continue
		}
		hdr := b.Data[packet.EthHdrLen:]
		if d.IPv4.TTL <= 1 || !packet.VerifyIPv4Checksum(hdr) {
			a.SlowPath++
			st.addrs = append(st.addrs, 0)
			continue
		}
		// Decrement TTL with the RFC 1624 incremental checksum update —
		// the real data-plane mutation.
		old16 := binary.BigEndian.Uint16(hdr[8:10])
		hdr[8]--
		cs := binary.BigEndian.Uint16(hdr[10:12])
		binary.BigEndian.PutUint16(hdr[10:12], packet.ChecksumUpdateTTLDecrement(cs, old16))
		c.OutPorts[i] = -2 // mark fast-path; filled by PostShade
		st.addrs = append(st.addrs, d.IPv4.Dst)
	}
	n := len(c.Bufs)
	return core.PreResult{
		CPUCycles: float64(n) * model.AppIPv4PreCycles,
		Threads:   n,
		InBytes:   n * 4,
		OutBytes:  n * 2,
	}
}

// RunKernel implements the shading step: the DIR-24-8 lookup batch, the
// exact function a GPU thread-per-packet kernel computes.
func (a *IPv4Fwd) RunKernel(c *core.Chunk) {
	st := c.State.(*ipv4State)
	a.Table.LookupBatch(st.addrs, st.hops)
}

// PostShade turns next hops into output ports.
func (a *IPv4Fwd) PostShade(c *core.Chunk) float64 {
	st := c.State.(*ipv4State)
	for i := range c.Bufs {
		if c.OutPorts[i] != -2 {
			continue // slow path already dropped
		}
		hop := st.hops[i]
		if hop == route.NoRoute {
			c.OutPorts[i] = -1
			continue
		}
		c.OutPorts[i] = int(hop) % a.NumPorts
	}
	return float64(len(c.Bufs)) * model.AppIPv4PostCycles
}

// CPUWork performs the lookups on the CPU (CPU-only mode), charging
// the memory-access-dominated per-lookup cost.
func (a *IPv4Fwd) CPUWork(c *core.Chunk) float64 {
	st := c.State.(*ipv4State)
	cycles := 0.0
	for i, addr := range st.addrs {
		if c.OutPorts[i] != -2 {
			continue
		}
		hop, accesses := a.Table.LookupCounted(addr)
		st.hops[i] = hop
		cycles += float64(accesses)*model.MemAccessCycles()*model.MemContentionFactor +
			model.IPv4LookupComputeCycles
	}
	return cycles
}
