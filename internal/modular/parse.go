package modular

import (
	"fmt"
	"strconv"
	"strings"

	lookupv4 "packetshader/internal/lookup/ipv4"
)

// Bindings resolve $name arguments in the configuration to Go objects
// (routing tables, and so on).
type Bindings map[string]any

// node is a declared element instance.
type node struct {
	name string
	el   Element
	// out[k] is the element wired to output k ("" = unwired: dropped).
	out []string
}

// Parse reads a Click-style configuration and returns the pipeline.
//
// Grammar (a practical subset of Click's):
//
//	decl  := name "::" Class [ "(" args ")" ]
//	conn  := endpoint ( "->" endpoint )+
//	endpoint := name | name "[" out "]" | decl   (inline declaration)
//	stmt  := (decl | conn) ";"
//	args  := comma-separated tokens; "$x" resolves via bindings
//	"//" comments run to end of line
func Parse(config string, bind Bindings) (*Pipeline, error) {
	p := &parser{bind: bind, nodes: map[string]*node{}}
	if err := p.run(config); err != nil {
		return nil, err
	}
	return buildPipeline(p.nodes, p.declOrder)
}

type parser struct {
	bind      Bindings
	nodes     map[string]*node
	declOrder []string
	anon      int
}

func (p *parser) run(config string) error {
	// Strip comments.
	var sb strings.Builder
	for _, line := range strings.Split(config, "\n") {
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		sb.WriteString(line)
		sb.WriteString("\n")
	}
	for sn, stmt := range strings.Split(sb.String(), ";") {
		stmt = strings.TrimSpace(stmt)
		if stmt == "" {
			continue
		}
		if err := p.statement(stmt); err != nil {
			return fmt.Errorf("statement %d (%q): %w", sn+1, stmt, err)
		}
	}
	return nil
}

func (p *parser) statement(stmt string) error {
	parts := strings.Split(stmt, "->")
	if len(parts) == 1 {
		_, _, err := p.endpoint(parts[0])
		return err
	}
	prevName, prevOut, err := p.endpoint(parts[0])
	if err != nil {
		return err
	}
	for _, part := range parts[1:] {
		name, out, err := p.endpoint(part)
		if err != nil {
			return err
		}
		if err := p.connect(prevName, prevOut, name); err != nil {
			return err
		}
		prevName, prevOut = name, out
	}
	return nil
}

// endpoint parses "name", "name[2]", or an inline "name :: Class(...)",
// returning the element name and the selected output (default 0).
func (p *parser) endpoint(s string) (string, int, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return "", 0, fmt.Errorf("empty endpoint")
	}
	if strings.Contains(s, "::") {
		halves := strings.SplitN(s, "::", 2)
		name := strings.TrimSpace(halves[0])
		if name == "" {
			p.anon++
			name = fmt.Sprintf("_anon%d", p.anon)
		}
		if err := p.declare(name, strings.TrimSpace(halves[1])); err != nil {
			return "", 0, err
		}
		return name, 0, nil
	}
	out := 0
	if i := strings.Index(s, "["); i >= 0 {
		if !strings.HasSuffix(s, "]") {
			return "", 0, fmt.Errorf("malformed output selector %q", s)
		}
		v, err := strconv.Atoi(strings.TrimSpace(s[i+1 : len(s)-1]))
		if err != nil {
			return "", 0, fmt.Errorf("output selector %q: %w", s, err)
		}
		out = v
		s = strings.TrimSpace(s[:i])
	}
	if _, ok := p.nodes[s]; !ok {
		return "", 0, fmt.Errorf("unknown element %q", s)
	}
	return s, out, nil
}

// declare instantiates "Class(args)" under name.
func (p *parser) declare(name, classExpr string) error {
	if _, dup := p.nodes[name]; dup {
		return fmt.Errorf("element %q declared twice", name)
	}
	class := classExpr
	var args []string
	if i := strings.Index(classExpr, "("); i >= 0 {
		if !strings.HasSuffix(classExpr, ")") {
			return fmt.Errorf("malformed class expression %q", classExpr)
		}
		class = strings.TrimSpace(classExpr[:i])
		inner := strings.TrimSpace(classExpr[i+1 : len(classExpr)-1])
		if inner != "" {
			for _, a := range strings.Split(inner, ",") {
				args = append(args, strings.TrimSpace(a))
			}
		}
	}
	el, err := p.construct(class, args)
	if err != nil {
		return err
	}
	p.nodes[name] = &node{name: name, el: el, out: make([]string, el.NumOutputs())}
	p.declOrder = append(p.declOrder, name)
	return nil
}

// construct builds an element from its class name and arguments.
func (p *parser) construct(class string, args []string) (Element, error) {
	argN := func(i int) (int, error) {
		if i >= len(args) {
			return 0, fmt.Errorf("%s: missing argument %d", class, i)
		}
		return strconv.Atoi(args[i])
	}
	bound := func(i int) (any, error) {
		if i >= len(args) {
			return nil, fmt.Errorf("%s: missing argument %d", class, i)
		}
		if !strings.HasPrefix(args[i], "$") {
			return nil, fmt.Errorf("%s: argument %q must be a $binding", class, args[i])
		}
		v, ok := p.bind[args[i][1:]]
		if !ok {
			return nil, fmt.Errorf("%s: unbound %s", class, args[i])
		}
		return v, nil
	}
	switch class {
	case "CheckIPHeader":
		return &CheckIPHeader{}, nil
	case "DecTTL":
		return &DecTTL{}, nil
	case "Classifier":
		return &Classifier{}, nil
	case "Counter":
		return &Counter{}, nil
	case "Discard":
		return &Discard{}, nil
	case "VLANDecap":
		return &VLANDecap{}, nil
	case "VLANEncap":
		vid, err := argN(0)
		if err != nil {
			return nil, err
		}
		return &VLANEncap{VID: uint16(vid)}, nil
	case "ToPort":
		port, err := argN(0)
		if err != nil {
			return nil, err
		}
		return &ToPort{Port: port}, nil
	case "ToHop":
		ports, err := argN(0)
		if err != nil {
			return nil, err
		}
		if ports <= 0 {
			return nil, fmt.Errorf("ToHop: ports must be positive")
		}
		return &ToHop{Ports: ports}, nil
	case "LookupIPv4":
		v, err := bound(0)
		if err != nil {
			return nil, err
		}
		tbl, ok := v.(*lookupv4.Table)
		if !ok {
			return nil, fmt.Errorf("LookupIPv4: binding is %T, want *ipv4.Table", v)
		}
		return &LookupIPv4{Table: tbl}, nil
	default:
		return nil, fmt.Errorf("unknown element class %q", class)
	}
}

func (p *parser) connect(from string, out int, to string) error {
	n := p.nodes[from]
	if out < 0 || out >= len(n.out) {
		return fmt.Errorf("%s has no output %d (%d outputs)", from, out, len(n.out))
	}
	if n.out[out] != "" {
		return fmt.Errorf("%s[%d] already connected to %s", from, out, n.out[out])
	}
	if p.nodes[to] == nil {
		return fmt.Errorf("unknown element %q", to)
	}
	n.out[out] = to
	return nil
}
