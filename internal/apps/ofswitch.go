package apps

import (
	"packetshader/internal/core"
	"packetshader/internal/hw/gpu"
	"packetshader/internal/model"
	"packetshader/internal/openflow"
	"packetshader/internal/packet"
)

// OFSwitch is the §6.2.3 OpenFlow switch. In the GPU mode, hash
// computation and wildcard matching are offloaded; exact-table probing
// and actions stay on the CPU ("leaving others in CPU for load
// distribution"). In the CPU-only mode everything runs on the workers.
type OFSwitch struct {
	SW       *openflow.Switch
	NumPorts int
	// kernel is rebuilt when the wildcard table changes size (its scan
	// cost is proportional to the rule count).
	kernel gpu.KernelSpec
	rules  int
}

// NewOFSwitch wraps a configured switch.
func NewOFSwitch(sw *openflow.Switch, numPorts int) *OFSwitch {
	a := &OFSwitch{SW: sw, NumPorts: numPorts}
	a.refreshKernel()
	return a
}

func (a *OFSwitch) refreshKernel() {
	n := a.SW.Wildcard.Len()
	a.rules = n
	a.kernel = gpu.KernelOpenFlowHash
	wc := gpu.KernelOpenFlowWildcard.ScaledBy(float64(n))
	a.kernel.RandomAccesses += wc.RandomAccesses
	a.kernel.ComputeCycles += wc.ComputeCycles
	a.kernel.Name = "openflow-hash+wildcard"
}

type ofState struct {
	keys   []openflow.FlowKey
	hashes []uint32
	// Speculative wildcard verdicts from the GPU kernel.
	wcAct []openflow.Action
	wcOK  []bool
	// Fully resolved actions (CPU-only path).
	act      []openflow.Action
	actOK    []bool
	resolved []bool
}

// Name implements core.App.
func (a *OFSwitch) Name() string { return "openflow-switch" }

// Kernel implements core.App.
func (a *OFSwitch) Kernel() *gpu.KernelSpec {
	if a.SW.Wildcard.Len() != a.rules {
		a.refreshKernel()
	}
	return &a.kernel
}

// PreShade extracts the 10-field flow key from every packet.
func (a *OFSwitch) PreShade(c *core.Chunk) core.PreResult {
	n := len(c.Bufs)
	st := &ofState{
		keys:     make([]openflow.FlowKey, n),
		hashes:   make([]uint32, n),
		wcAct:    make([]openflow.Action, n),
		wcOK:     make([]bool, n),
		act:      make([]openflow.Action, n),
		actOK:    make([]bool, n),
		resolved: make([]bool, n),
	}
	c.State = st
	var d packet.Decoder
	for i, b := range c.Bufs {
		c.OutPorts[i] = -1
		if err := d.DecodeFast(b.Data); err != nil {
			continue
		}
		st.keys[i] = openflow.ExtractKey(&d, uint16(b.Port))
		c.OutPorts[i] = -2
	}
	return core.PreResult{
		CPUCycles: float64(n) * model.OFKeyExtractCycles,
		Threads:   n,
		InBytes:   n * 32, // serialized keys
		OutBytes:  n * 8,  // hash + wildcard verdict
	}
}

// RunKernel computes hashes and speculative wildcard matches for the
// whole chunk — the two GPU-offloaded operations.
func (a *OFSwitch) RunKernel(c *core.Chunk) {
	st := c.State.(*ofState)
	for i := range st.keys {
		if c.OutPorts[i] != -2 {
			continue
		}
		st.hashes[i] = st.keys[i].Hash()
		st.wcAct[i], _, st.wcOK[i] = a.SW.Wildcard.Lookup(&st.keys[i])
	}
}

// exactProbeCycles models the exact-table probe cost as a function of
// table size versus the CPU caches: small tables stay cache-resident,
// large ones miss to DRAM — the Figure 11(c) size dependence.
func (a *OFSwitch) exactProbeCycles() float64 {
	const entryBytes = 64 // key + action + stats ≈ one cache line
	tableBytes := float64(a.SW.Exact.Len() * entryBytes)
	cacheBytes := float64(model.NumNodes * model.L3CacheBytes)
	missFrac := 0.0
	if tableBytes > cacheBytes {
		missFrac = 1 - cacheBytes/tableBytes
	}
	return 30 + missFrac*model.MemAccessCycles()
}

// PostShade finishes classification: exact-match probe with the
// precomputed hash, falling back to the wildcard verdict (or, on the
// CPU-only path, just applies the already-resolved action).
func (a *OFSwitch) PostShade(c *core.Chunk) float64 {
	st := c.State.(*ofState)
	cycles := 0.0
	for i := range c.Bufs {
		if c.OutPorts[i] != -2 {
			continue
		}
		var act openflow.Action
		var ok bool
		if st.resolved[i] {
			act, ok = st.act[i], st.actOK[i]
		} else {
			act, _, ok = a.SW.Exact.LookupHashed(st.keys[i], st.hashes[i])
			cycles += a.exactProbeCycles()
			if !ok {
				act, ok = st.wcAct[i], st.wcOK[i]
			}
		}
		if !ok {
			a.SW.Misses++
			c.OutPorts[i] = -1
			continue
		}
		cycles += model.AppOFActionCycles
		if len(act.Mods) > 0 {
			out, err := openflow.ApplyMods(c.Bufs[i].Data, act.Mods)
			if err == nil {
				c.Bufs[i].Data = out
			}
			cycles += float64(len(act.Mods)) * model.AppOFActionCycles
		}
		c.OutPorts[i] = a.apply(act, int(st.keys[i].InPort))
	}
	return cycles
}

func (a *OFSwitch) apply(act openflow.Action, inPort int) int {
	switch act.Type {
	case openflow.ActionOutput:
		return int(act.Port) % a.NumPorts
	case openflow.ActionFlood:
		// The data-path simulation forwards to one representative port
		// (true flooding would duplicate the buffer).
		return (inPort + 1) % a.NumPorts
	default:
		return -1
	}
}

// CPUWork is the CPU-only path: hash, exact probe, and (on miss) the
// wildcard linear scan, all on the worker, fully resolving the action.
func (a *OFSwitch) CPUWork(c *core.Chunk) float64 {
	st := c.State.(*ofState)
	cycles := 0.0
	for i := range c.Bufs {
		if c.OutPorts[i] != -2 {
			continue
		}
		st.hashes[i] = st.keys[i].Hash()
		cycles += model.OFHashCycles
		act, _, ok := a.SW.Exact.LookupHashed(st.keys[i], st.hashes[i])
		cycles += a.exactProbeCycles()
		if !ok {
			var scanned int
			act, scanned, ok = a.SW.Wildcard.Lookup(&st.keys[i])
			cycles += float64(scanned) * model.OFWildcardEntryCycles
		}
		st.act[i], st.actOK[i], st.resolved[i] = act, ok, true
	}
	return cycles
}
