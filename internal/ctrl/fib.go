package ctrl

import (
	"fmt"

	"packetshader/internal/route"

	lookupv4 "packetshader/internal/lookup/ipv4"
)

// FIBApplier applies one batch of route updates to a live data path.
// ApplyRoutes runs in scheduler context (no worker executes
// mid-callback), so every mutation is atomic on the virtual clock; the
// returned cell count is the number of DIR-24-8 table cells the batch
// touched — the §7 cost metric separating the two update strategies.
type FIBApplier interface {
	ApplyRoutes(batch []RouteUpdate) (cells uint64, err error)
}

// DynamicFIB is the incremental strategy: patch only the cells covered
// by each changed prefix, leaving the rest of the table undisturbed
// (lookup/ipv4.DynamicTable). Cost is ~2^(24-len) cells per update;
// the data path keeps forwarding through every intermediate state.
type DynamicFIB struct {
	T *lookupv4.DynamicTable
}

// ApplyRoutes applies the batch update by update.
func (f *DynamicFIB) ApplyRoutes(batch []RouteUpdate) (uint64, error) {
	var cells uint64
	for _, u := range batch {
		switch u.Act {
		case ActAdd, ActReplace:
			if err := f.T.Insert(route.Entry{Prefix: u.Prefix, NextHop: u.NextHop}); err != nil {
				return cells, err
			}
		case ActDel:
			if _, err := f.T.Remove(u.Prefix); err != nil {
				return cells, err
			}
		default:
			return cells, fmt.Errorf("ctrl: unknown route action %v", u.Act)
		}
		cells += cellsTouched(u.Prefix)
	}
	return cells, nil
}

// cellsTouched is the DIR-24-8 patch footprint of one prefix update:
// 2^(24-len) TBL24 cells for short prefixes, up to 2^(32-len) TBLlong
// cells for long ones.
func cellsTouched(p route.Prefix) uint64 {
	if p.Len <= 24 {
		return 1 << (24 - p.Len)
	}
	return 1 << (32 - p.Len)
}

// RebuildFIB is the double-buffering strategy §7 discusses: updates
// accumulate in the RIB, and each batch triggers a full DIR-24-8
// rebuild off the data path, published atomically through the
// generation pair and installed by the Install hook (which swaps the
// application's table pointer). Cost is a full 2^24-cell rebuild per
// batch; the data path stays on the stale generation until the swap.
type RebuildFIB struct {
	RIB *route.RIB
	FIB *route.FIB[lookupv4.Table]
	// Install points the data path at the freshly published generation.
	Install func(*lookupv4.Table)
}

// NewRebuildFIB builds the double-buffered applier over an initial
// route set. install receives each published generation.
func NewRebuildFIB(entries []route.Entry, install func(*lookupv4.Table)) (*RebuildFIB, error) {
	rib := route.NewRIB()
	for _, e := range entries {
		rib.Add(e.Prefix, e.NextHop)
	}
	first, err := lookupv4.Build(entries)
	if err != nil {
		return nil, err
	}
	return &RebuildFIB{RIB: rib, FIB: route.NewFIB(first), Install: install}, nil
}

// ApplyRoutes folds the batch into the RIB, rebuilds once, and swaps.
func (f *RebuildFIB) ApplyRoutes(batch []RouteUpdate) (uint64, error) {
	for _, u := range batch {
		switch u.Act {
		case ActAdd, ActReplace:
			f.RIB.Add(u.Prefix, u.NextHop)
		case ActDel:
			f.RIB.Remove(u.Prefix)
		default:
			return 0, fmt.Errorf("ctrl: unknown route action %v", u.Act)
		}
	}
	next, err := lookupv4.Build(f.RIB.Entries())
	if err != nil {
		return 0, err
	}
	f.FIB.Publish(next)
	if f.Install != nil {
		f.Install(f.FIB.Active())
	}
	return 1 << 24, nil
}
