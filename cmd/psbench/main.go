// Command psbench regenerates the paper's tables and figures on the
// simulated testbed.
//
// Usage:
//
//	psbench [flags] [experiment ...]
//	psbench all
//	psbench all -j 8
//	psbench fig5 fig6 -j 4
//	psbench -list
//
// Experiments: table1, launch, fig2, table3, fig5, fig6, numa,
// fig11a-fig11d, fig12, ablation, cluster, fabric, leafspine,
// fibupdate, faults, churn.
//
// Each experiment point is an independent deterministic simulation, so
// points run in parallel across -j workers; results are merged in job
// order and the output is byte-identical to -j 1. Within the fabric
// experiment, -p additionally advances the world's per-node partitions
// on N goroutines under conservative link lookahead; output is
// byte-identical to -p 1.
package main

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"packetshader/internal/experiments"
)

const usage = `usage: psbench [flags] [experiment ...]

  -j N       run up to N simulation jobs in parallel
             (default: min(GOMAXPROCS, runnable jobs of the selection))
  -p N       advance partitioned worlds (fabric) on N goroutines (default: 1)
  -list      list available experiments
  -metrics   dump per-run metrics (counters, latency histograms, occupancy)

With no experiments given, runs all of them. Output is byte-identical
for any -j and any -p.`

// parseArgs handles flags and positionals in any order ("psbench all
// -j 8" must work; the stdlib flag package stops at the first
// positional argument). jobs == 0 means no explicit -j: the caller
// derives the default from the selection.
func parseArgs(argv []string) (ids []string, jobs, parts int, list, metrics bool, err error) {
	parts = 1
	fail := func(format string, args ...any) ([]string, int, int, bool, bool, error) {
		return nil, 0, 0, false, false, fmt.Errorf(format, args...)
	}
	for i := 0; i < len(argv); i++ {
		a := argv[i]
		switch {
		case a == "-h" || a == "--help" || a == "-help":
			fmt.Println(usage)
			os.Exit(0)
		case a == "-list" || a == "--list":
			list = true
		case a == "-metrics" || a == "--metrics":
			metrics = true
		case a == "-j" || a == "--j":
			i++
			if i >= len(argv) {
				return fail("-j requires an argument")
			}
			jobs, err = strconv.Atoi(argv[i])
			if err != nil || jobs < 1 {
				return fail("-j: invalid worker count %q", argv[i])
			}
		case strings.HasPrefix(a, "-j=") || strings.HasPrefix(a, "--j="):
			v := a[strings.Index(a, "=")+1:]
			jobs, err = strconv.Atoi(v)
			if err != nil || jobs < 1 {
				return fail("-j: invalid worker count %q", v)
			}
		case a == "-p" || a == "--p":
			i++
			if i >= len(argv) {
				return fail("-p requires an argument")
			}
			parts, err = strconv.Atoi(argv[i])
			if err != nil || parts < 1 {
				return fail("-p: invalid partition worker count %q", argv[i])
			}
		case strings.HasPrefix(a, "-p=") || strings.HasPrefix(a, "--p="):
			v := a[strings.Index(a, "=")+1:]
			parts, err = strconv.Atoi(v)
			if err != nil || parts < 1 {
				return fail("-p: invalid partition worker count %q", v)
			}
		case strings.HasPrefix(a, "-"):
			return fail("unknown flag %s", a)
		default:
			ids = append(ids, a)
		}
	}
	return ids, jobs, parts, list, metrics, nil
}

func main() {
	ids, jobs, parts, list, metrics, err := parseArgs(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		fmt.Fprintln(os.Stderr, usage)
		os.Exit(2)
	}
	if list {
		for _, e := range experiments.Registry {
			fmt.Println(e.ID)
		}
		return
	}
	if metrics {
		experiments.SetMetricsWriter(os.Stdout)
	}
	experiments.SetPartitionWorkers(parts)
	if len(ids) == 0 {
		ids = []string{"all"}
	}
	// Default -j: a pool wider than the selection's runnable jobs can
	// never fill, and a pool wider than GOMAXPROCS oversubscribes the
	// host (measurably slower on small machines), so cap at both. The
	// run header records the chosen value either way.
	jdesc := fmt.Sprintf("%d", jobs)
	if jobs == 0 {
		runnable, err := experiments.RunnableJobs(ids...)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		jobs = runtime.GOMAXPROCS(0)
		if runnable < jobs {
			jobs = runnable
		}
		jdesc = fmt.Sprintf("%d (auto: min of GOMAXPROCS %d, %d runnable jobs)",
			jobs, runtime.GOMAXPROCS(0), runnable)
	}
	start := time.Now()
	if err := experiments.NewRunner(jobs).Run(os.Stdout, ids...); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "[%s done in %v, -j %s -p %d]\n",
		strings.Join(ids, " "), time.Since(start).Round(time.Millisecond), jdesc, parts)
}
