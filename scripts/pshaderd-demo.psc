# pshaderd demo script: a live management session on the virtual clock.
# Offsets count from simulated time zero (warmup included). Run with:
#
#   pshader -app ipv4 -fib dynamic -ctrl scripts/pshaderd-demo.psc \
#           -warmup 2ms -duration 6ms
#
# Replaying the same script with the same seed is byte-identical.

@2500us stats                          # baseline mid-traffic snapshot

# A batch of route updates: consecutive route lines at one offset are
# applied as a single batch (one rebuild in -fib rebuild mode).
@3ms    route add 10.1.0.0/16 via 3
@3ms    route add 10.2.0.0/16 via 4
@3ms    route replace 10.3.0.0/24 via 5
@3ms    route del 10.2.0.0/16

# Live batching retune: tiny chunks + no gather, then restore.
@3500us set chunkcap 32
@3500us set gathermax 1
@4500us set chunkcap 256
@4500us set gathermax 8
@4500us set opportunistic on

# Port maintenance: drop one port's carrier, restore it later.
@5ms    port 2 down
@6ms    port 2 up

@6500us stats                          # post-maintenance snapshot
@7ms    metrics                        # full registry dump (needs -metrics)
