// Fixture for the schedblock analyzer: Env.At/Env.After callbacks run
// in scheduler context and must not call blocking sim operations.
package schedblock

import "packetshader/internal/sim"

func bad(env *sim.Env, p *sim.Proc, q *sim.Queue[int], srv *sim.Server, sig *sim.Signal) {
	env.At(0, func() {
		p.Sleep(3 * sim.Nanosecond) // want `sim\.Sleep blocks, but Env\.At callbacks run in scheduler context`
	})
	env.After(5*sim.Microsecond, func() {
		_ = q.Get(p)               // want `sim\.Get blocks, but Env\.After callbacks`
		q.Put(p, 1)                // want `sim\.Put blocks, but Env\.After callbacks`
		srv.Use(p, sim.Nanosecond) // want `sim\.Use blocks, but Env\.After callbacks`
		sig.Wait(p)                // want `sim\.Wait blocks, but Env\.After callbacks`
		p.SleepUntil(0)            // want `sim\.SleepUntil blocks, but Env\.After callbacks`
	})
	env.After(sim.Nanosecond, func() {
		env.Run(0) // want `sim\.Run blocks, but Env\.After callbacks`
	})
}

func good(env *sim.Env, q *sim.Queue[int], sig *sim.Signal) {
	env.After(sim.Microsecond, func() {
		_ = q.TryPut(7) // non-blocking variants are the sanctioned pattern
		_, _ = q.TryGet()
		sig.Fire()
		env.At(env.Now(), func() {}) // rescheduling is fine
		env.Go("worker", func(p *sim.Proc) {
			p.Sleep(sim.Nanosecond) // a spawned process may block
		})
	})
	// Blocking outside a callback is the normal process style.
	env.Go("proc", func(p *sim.Proc) {
		p.Sleep(sim.Microsecond)
		q.Put(p, 2)
	})
}
