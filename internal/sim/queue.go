package sim

// Queue is a bounded FIFO channel between simulated processes. Get blocks
// the calling process while the queue is empty; Put blocks while it is
// full. Waiters are released in FIFO order, keeping simulations
// deterministic. A capacity of 0 means unbounded.
//
// Items and waiter lists live in ring buffers: steady-state operation
// reuses one backing array per ring, and vacated slots are zeroed so a
// drained queue of pointer elements (e.g. *Chunk) retains nothing.
type Queue[T any] struct {
	env     *Env
	cap     int
	items   Ring[T]
	getters Ring[*Proc]
	putters Ring[*Proc]
}

// NewQueue creates a queue in env with the given capacity (0 = unbounded).
func NewQueue[T any](env *Env, capacity int) *Queue[T] {
	return &Queue[T]{env: env, cap: capacity}
}

// Len returns the number of buffered items.
func (q *Queue[T]) Len() int { return q.items.Len() }

// Cap returns the configured capacity (0 = unbounded).
func (q *Queue[T]) Cap() int { return q.cap }

func (q *Queue[T]) full() bool { return q.cap > 0 && q.items.Len() >= q.cap }

// wakeGetter releases the longest-waiting getter, if any, at the current
// instant (a typed wakeup: no allocation, no heap round-trip).
func (q *Queue[T]) wakeGetter() {
	if q.getters.Len() > 0 {
		q.env.wake(q.getters.PopFront(), q.env.now)
	}
}

// wakePutter releases the longest-waiting putter, if any.
func (q *Queue[T]) wakePutter() {
	if q.putters.Len() > 0 {
		q.env.wake(q.putters.PopFront(), q.env.now)
	}
}

// Put appends v, blocking p while the queue is full.
func (q *Queue[T]) Put(p *Proc, v T) {
	for q.full() {
		q.putters.PushBack(p)
		p.yield()
	}
	q.items.PushBack(v)
	q.wakeGetter()
}

// TryPut appends v if there is room and reports whether it did. It never
// blocks, so it is also safe to call from scheduler context.
func (q *Queue[T]) TryPut(v T) bool {
	if q.full() {
		return false
	}
	q.items.PushBack(v)
	q.wakeGetter()
	return true
}

// Get removes and returns the head item, blocking p while the queue is
// empty.
func (q *Queue[T]) Get(p *Proc) T {
	for q.items.Len() == 0 {
		q.getters.PushBack(p)
		p.yield()
	}
	v := q.items.PopFront()
	q.wakePutter()
	return v
}

// TryGet removes and returns the head item without blocking. ok is false
// if the queue is empty.
func (q *Queue[T]) TryGet() (v T, ok bool) {
	if q.items.Len() == 0 {
		return v, false
	}
	v = q.items.PopFront()
	q.wakePutter()
	return v, true
}

// DrainAppend removes at most n items, appends them to dst, and returns
// the extended slice, waking at most n blocked putters. Callers that
// drain repeatedly (the master's gather step) pass a reused buffer so
// the steady state allocates nothing.
func (q *Queue[T]) DrainAppend(dst []T, n int) []T {
	if n > q.items.Len() {
		n = q.items.Len()
	}
	for i := 0; i < n; i++ {
		dst = append(dst, q.items.PopFront())
		q.wakePutter()
	}
	return dst
}

// DrainUpTo removes and returns at most n items without blocking.
func (q *Queue[T]) DrainUpTo(n int) []T {
	if n > q.items.Len() {
		n = q.items.Len()
	}
	if n == 0 {
		return nil
	}
	return q.DrainAppend(make([]T, 0, n), n)
}
