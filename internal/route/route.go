// Package route provides routing-table substrates for the PacketShader
// applications: IPv4/IPv6 prefix types, a synthetic BGP-table generator
// with the RouteViews-like prefix-length distribution the paper's IPv4
// experiment uses (§6.2.1: 282,797 prefixes, 3% longer than /24), simple
// reference longest-prefix-match implementations used as test oracles,
// and a double-buffered FIB supporting the §7 update scheme.
package route

import (
	"fmt"
	"math/rand"
	"sort"

	"packetshader/internal/packet"
)

// Prefix is an IPv4 route prefix.
type Prefix struct {
	Addr packet.IPv4Addr // host order, low bits zero
	Len  uint8           // 0..32
}

// Mask returns the prefix netmask (host order).
func (p Prefix) Mask() uint32 {
	if p.Len == 0 {
		return 0
	}
	return ^uint32(0) << (32 - p.Len)
}

// Contains reports whether addr falls inside the prefix.
func (p Prefix) Contains(addr packet.IPv4Addr) bool {
	return uint32(addr)&p.Mask() == uint32(p.Addr)
}

func (p Prefix) String() string { return fmt.Sprintf("%v/%d", p.Addr, p.Len) }

// Entry is a FIB entry: a prefix and its next hop (an output-port /
// adjacency index; 0 is valid, NoRoute marks a miss).
type Entry struct {
	Prefix  Prefix
	NextHop uint16
}

// NoRoute is the next-hop value returned for lookup misses.
const NoRoute uint16 = 0xffff

// Prefix6 is an IPv6 route prefix, stored as two 64-bit halves in host
// order for cheap masked comparison.
type Prefix6 struct {
	Hi, Lo uint64
	Len    uint8 // 0..128
}

// Contains reports whether the address (hi,lo) falls inside the prefix.
func (p Prefix6) Contains(hi, lo uint64) bool {
	mh, ml := Mask6(p.Len)
	return hi&mh == p.Hi && lo&ml == p.Lo
}

// Mask6 returns the 128-bit netmask for a prefix length as two halves.
func Mask6(length uint8) (hi, lo uint64) {
	switch {
	case length == 0:
		return 0, 0
	case length <= 64:
		return ^uint64(0) << (64 - length), 0
	case length >= 128:
		return ^uint64(0), ^uint64(0)
	default:
		return ^uint64(0), ^uint64(0) << (128 - length)
	}
}

// Entry6 is an IPv6 FIB entry.
type Entry6 struct {
	Prefix6 Prefix6
	NextHop uint16
}

// ---------------------------------------------------------------------------
// Synthetic BGP table generation.
// ---------------------------------------------------------------------------

// BGPTableSize is the paper's RouteViews snapshot size (Sept 1, 2009).
const BGPTableSize = 282797

// lengthDistribution approximates the 2009 RouteViews prefix-length
// distribution: /24 dominates (~52%), /25-/32 make up the paper's quoted
// 3%, and the rest spreads across /8-/23.
var lengthDistribution = []struct {
	len    uint8
	weight float64
}{
	{8, 0.001}, {10, 0.001}, {11, 0.002}, {12, 0.003}, {13, 0.005},
	{14, 0.009}, {15, 0.012}, {16, 0.045}, {17, 0.025}, {18, 0.040},
	{19, 0.052}, {20, 0.062}, {21, 0.070}, {22, 0.090}, {23, 0.093},
	{24, 0.460},
	{25, 0.006}, {26, 0.007}, {27, 0.006}, {28, 0.004}, {29, 0.004},
	{30, 0.002}, {31, 0.0005}, {32, 0.0005},
}

// GenerateBGPTable produces n unique IPv4 prefixes with the
// RouteViews-like length distribution and random next hops in
// [0, numNextHops). Deterministic for a given seed.
func GenerateBGPTable(n, numNextHops int, seed int64) []Entry {
	rng := rand.New(rand.NewSource(seed))
	var cum []float64
	total := 0.0
	for _, d := range lengthDistribution {
		total += d.weight
		cum = append(cum, total)
	}
	seen := make(map[Prefix]bool, n)
	entries := make([]Entry, 0, n)
	for len(entries) < n {
		r := rng.Float64() * total
		idx := sort.SearchFloat64s(cum, r)
		if idx >= len(lengthDistribution) {
			idx = len(lengthDistribution) - 1
		}
		l := lengthDistribution[idx].len
		addr := packet.IPv4Addr(rng.Uint32() & (Prefix{Len: l}).Mask())
		// Keep out of reserved space so generated traffic can hit it.
		if b := uint32(addr) >> 24; b == 0 || b == 10 || b == 127 || b >= 224 {
			continue
		}
		p := Prefix{Addr: addr, Len: l}
		if seen[p] {
			continue
		}
		seen[p] = true
		entries = append(entries, Entry{Prefix: p, NextHop: uint16(rng.Intn(numNextHops))})
	}
	return entries
}

// FractionLongerThan returns the fraction of entries with Len > l.
func FractionLongerThan(entries []Entry, l uint8) float64 {
	if len(entries) == 0 {
		return 0
	}
	c := 0
	for _, e := range entries {
		if e.Prefix.Len > l {
			c++
		}
	}
	return float64(c) / float64(len(entries))
}

// GenerateIPv6Table produces n unique random IPv6 prefixes (§6.2.2: the
// paper randomly generates 200,000 prefixes because real IPv6 tables
// were tiny in 2010 and would unfairly fit the CPU cache). Lengths are
// drawn from {16,24,32,40,48,56,64} weighted toward /48 and /32 as in
// early IPv6 allocation policy.
func GenerateIPv6Table(n, numNextHops int, seed int64) []Entry6 {
	rng := rand.New(rand.NewSource(seed))
	lens := []uint8{16, 24, 32, 40, 48, 56, 64}
	weights := []float64{0.02, 0.05, 0.25, 0.13, 0.40, 0.05, 0.10}
	var cum []float64
	tot := 0.0
	for _, w := range weights {
		tot += w
		cum = append(cum, tot)
	}
	type key struct {
		hi, lo uint64
		l      uint8
	}
	seen := make(map[key]bool, n)
	out := make([]Entry6, 0, n)
	for len(out) < n {
		r := rng.Float64() * tot
		idx := sort.SearchFloat64s(cum, r)
		if idx >= len(lens) {
			idx = len(lens) - 1
		}
		l := lens[idx]
		mh, ml := Mask6(l)
		// 2000::/3 global unicast space.
		hi := (rng.Uint64() & mh &^ (uint64(7) << 61)) | (uint64(1) << 61)
		lo := rng.Uint64() & ml
		k := key{hi, lo, l}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, Entry6{
			Prefix6: Prefix6{Hi: hi, Lo: lo, Len: l},
			NextHop: uint16(rng.Intn(numNextHops)),
		})
	}
	return out
}
