// Package sharedfixture enforces the parallel harness's isolation
// contract: an experiment pool job (a function passed to
// experiments.MapPoints) must not write package-level state.
//
// Jobs from one experiment run concurrently with jobs from every other
// experiment on the shared worker pool, and the harness's byte-identical
// guarantee (`psbench all -j N` == `-j 1`) holds only because each job
// is a pure function of its index plus read-only shared fixtures. A
// write to a package-level variable from a job is a data race and an
// order-dependence at once.
//
// The analyzer takes the function literal (or named function) passed to
// a MapPoints call as a job root and walks the call graph reachable
// from it with the shared internal/analysis/callgraph walker, flagging
// assignments and ++/-- whose target resolves to a package-level
// variable. The walk is restricted to same-package callees: a job's
// writes through other packages' APIs are that package's own analyzers'
// business. Function literals passed to (*sync.Once).Do are exempt:
// that is exactly the sanctioned build-once pattern the shared fixtures
// use. Writes through closures bound to local variables are not
// followed (their bodies live outside the job literal); the -race CI
// job backstops that gap.
//
// Suppress a provably-safe write with
//
//	//pslint:ignore sharedfixture <reason>
package sharedfixture

import (
	"go/ast"
	"go/token"
	"go/types"

	"packetshader/internal/analysis"
	"packetshader/internal/analysis/callgraph"
)

var Analyzer = &analysis.Analyzer{
	Name: "sharedfixture",
	Doc:  "flag writes to package-level state from experiment pool jobs (fixtures are read-only after their sync.Once build)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	pkg := &callgraph.Package{Types: pass.Pkg, Info: pass.TypesInfo, Files: pass.Files}
	reported := map[token.Pos]bool{}

	w := &callgraph.Walker{
		Graph: callgraph.New(pkg),
		Visit: func(_ *callgraph.Package, _ *types.Func, n ast.Node) bool {
			switch node := n.(type) {
			case *ast.AssignStmt:
				if node.Tok == token.DEFINE {
					return true
				}
				for _, lhs := range node.Lhs {
					flagRoot(pass, reported, lhs)
				}
			case *ast.IncDecStmt:
				flagRoot(pass, reported, node.X)
			case *ast.CallExpr:
				if isOnceDo(pass, node) {
					// The sanctioned fixture pattern: sync.Once runs the
					// build exactly once, before any concurrent read.
					return false
				}
			}
			return true
		},
		Follow: func(_ *callgraph.Package, _ *types.Func, _ *ast.CallExpr, callee *types.Func) bool {
			return callee != nil && callee.Pkg() == pass.Pkg
		},
	}

	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || pass.IsTestFile(call.Pos()) || !isMapPoints(pass, call) || len(call.Args) == 0 {
			return true
		}
		switch job := call.Args[len(call.Args)-1].(type) {
		case *ast.FuncLit:
			w.Walk(pkg, nil, job.Body)
		case *ast.Ident:
			if fn, ok := pass.TypesInfo.Uses[job].(*types.Func); ok && fn.Pkg() == pass.Pkg {
				w.WalkFunc(fn)
			}
		}
		return true
	})
	return nil
}

// flagRoot reports e's base object if it resolves to a package-level
// variable. Index and field chains are peeled to their root
// (tbl[i] = x and cfg.Size = x both mutate the package var); writes
// through pointers or call results are unresolvable statically and
// skipped.
func flagRoot(pass *analysis.Pass, reported map[token.Pos]bool, e ast.Expr) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			// A qualified identifier (pkg.Var) is itself the root.
			if id, ok := x.X.(*ast.Ident); ok {
				if _, isPkg := pass.TypesInfo.Uses[id].(*types.PkgName); isPkg {
					report(pass, reported, x.Sel)
					return
				}
			}
			e = x.X
		case *ast.Ident:
			report(pass, reported, x)
			return
		default:
			return
		}
	}
}

func report(pass *analysis.Pass, reported map[token.Pos]bool, id *ast.Ident) {
	vr, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || vr.IsField() || vr.Pkg() == nil || vr.Parent() != vr.Pkg().Scope() {
		return
	}
	if reported[id.Pos()] {
		return
	}
	reported[id.Pos()] = true
	pass.Reportf(id.Pos(),
		"experiment job writes package-level state %s; jobs must be self-contained (fixtures are read-only after their sync.Once build)",
		vr.Name())
}

// isMapPoints reports whether call invokes a function named MapPoints
// (possibly generic-instantiated, possibly package-qualified).
func isMapPoints(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := callgraph.StaticCallee(pass.TypesInfo, call)
	return fn != nil && fn.Name() == "MapPoints"
}

// isOnceDo reports whether call is (*sync.Once).Do.
func isOnceDo(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok && fn.FullName() == "(*sync.Once).Do"
}
