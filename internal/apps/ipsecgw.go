package apps

import (
	"packetshader/internal/core"
	"packetshader/internal/hw/gpu"
	"packetshader/internal/ipsec"
	"packetshader/internal/model"
	"packetshader/internal/packet"
)

// IPsecGW is the §6.2.4 IPsec gateway: ESP tunnel-mode encapsulation
// with AES-128-CTR and HMAC-SHA1. The GPU offload carries AES (one
// thread per 16B block) and SHA1 (one thread per packet); ESP framing
// stays on the CPU. One SA per output port keeps per-flow ordering while
// spreading tunnels across the fabric.
type IPsecGW struct {
	SAs      []*ipsec.SA
	NumPorts int
	// Errors counts packets that failed encapsulation (oversized).
	Errors uint64
}

// NewIPsecGW creates a gateway with one outbound SA per port.
func NewIPsecGW(numPorts int) *IPsecGW {
	g := &IPsecGW{NumPorts: numPorts}
	for i := 0; i < numPorts; i++ {
		enc := make([]byte, 16)
		auth := make([]byte, 20)
		for j := range enc {
			enc[j] = byte(i*16 + j)
		}
		for j := range auth {
			auth[j] = byte(i*20 + j + 1)
		}
		g.SAs = append(g.SAs, ipsec.NewSA(uint32(0x1000+i), uint32(0xabcd0000+i),
			enc, auth,
			packet.IPv4Addr(0x0A000001+uint32(i)), packet.IPv4Addr(0x0AFF0001+uint32(i))))
	}
	return g
}

type ipsecState struct {
	sa      []int // SA (and output port) per packet
	espLens []int
}

// Name implements core.App.
func (a *IPsecGW) Name() string { return "ipsec-gateway" }

// Kernel implements core.App.
func (a *IPsecGW) Kernel() *gpu.KernelSpec { return &gpu.KernelIPsec }

// PreShade parses packets, selects the tunnel SA by flow hash, and
// computes transfer sizes: IPsec moves entire payloads across PCIe
// (§6.3: "entire packet payloads and other metadata ... are transmitted
// from/to GPU, weighing on the burden of IOHs").
func (a *IPsecGW) PreShade(c *core.Chunk) core.PreResult {
	n := len(c.Bufs)
	st := &ipsecState{sa: make([]int, n), espLens: make([]int, n)}
	c.State = st
	var d packet.Decoder
	inBytes, outBytes := 0, 0
	for i, b := range c.Bufs {
		c.OutPorts[i] = -1
		if err := d.DecodeFast(b.Data); err != nil || !d.Has(packet.LayerIPv4) {
			continue
		}
		c.OutPorts[i] = -2
		st.sa[i] = int(b.Hash) % len(a.SAs)
		innerLen := len(b.Data) - packet.EthHdrLen
		st.espLens[i] = innerLen + ipsec.EncapOverhead(innerLen)
		inBytes += innerLen + 32 // payload + key/IV metadata
		outBytes += st.espLens[i]
	}
	return core.PreResult{
		CPUCycles:   float64(n) * model.AppIPsecPreCycles,
		Threads:     n,
		InBytes:     inBytes,
		OutBytes:    outBytes,
		StreamBytes: outBytes,
	}
}

// RunKernel performs the real encapsulation (AES-CTR + HMAC-SHA1 over
// every packet) — the functional equivalent of the paper's two-level
// parallel GPU implementation.
func (a *IPsecGW) RunKernel(c *core.Chunk) {
	st := c.State.(*ipsecState)
	var scratch [2048]byte
	for i, b := range c.Bufs {
		if c.OutPorts[i] != -2 {
			continue
		}
		sa := a.SAs[st.sa[i]]
		inner := b.Data[packet.EthHdrLen:]
		outer, err := sa.Encap(scratch[:0:len(scratch)], inner)
		if err != nil {
			a.Errors++
			c.OutPorts[i] = -1
			continue
		}
		// Rebuild the frame in place: Ethernet header + outer packet.
		need := packet.EthHdrLen + len(outer)
		b.Reset(need)
		if len(b.Data) < need {
			a.Errors++
			c.OutPorts[i] = -1
			continue
		}
		copy(b.Data[packet.EthHdrLen:], outer)
	}
}

// PostShade routes each tunnel to its port.
func (a *IPsecGW) PostShade(c *core.Chunk) float64 {
	st := c.State.(*ipsecState)
	for i := range c.Bufs {
		if c.OutPorts[i] == -2 {
			c.OutPorts[i] = st.sa[i] % a.NumPorts
		}
	}
	return float64(len(c.Bufs)) * model.AppIPsecPostCycles
}

// CPUWork performs the encapsulation on the CPU, charging the software
// AES+SHA1 cost per ciphered byte.
func (a *IPsecGW) CPUWork(c *core.Chunk) float64 {
	st := c.State.(*ipsecState)
	cycles := 0.0
	for i := range c.Bufs {
		if c.OutPorts[i] == -2 {
			cycles += model.IPsecCPUPerPacketCycles +
				model.IPsecCPUPerByteCycles*float64(st.espLens[i])
		}
	}
	a.RunKernel(c) // same functional work, performed by the worker
	return cycles
}
