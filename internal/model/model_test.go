package model

import (
	"math"
	"testing"
	"testing/quick"

	"packetshader/internal/sim"
)

func TestCyclesRoundTrip(t *testing.T) {
	for _, c := range []float64{1, 100, 2257, 1e6} {
		d := Cycles(c)
		back := CyclesOf(d)
		if math.Abs(back-c)/c > 1e-3 {
			t.Errorf("Cycles(%v) round-trips to %v", c, back)
		}
	}
}

func TestMemAccessCycles(t *testing.T) {
	// 65ns at 2.66GHz ≈ 173 cycles.
	got := MemAccessCycles()
	if got < 170 || got > 176 {
		t.Errorf("MemAccessCycles = %v, want ≈173", got)
	}
}

func TestWireTime64B(t *testing.T) {
	// The paper: a thousand 64B packets arrive in ~70 µs on 10GbE (§2.3),
	// i.e. 70.4ns per packet with the 24B overhead.
	wt := WireTime(64)
	ns := float64(wt) / float64(sim.Nanosecond)
	if ns < 70 || ns > 71 {
		t.Errorf("WireTime(64) = %vns, want ≈70.4", ns)
	}
}

func TestPortPacketRate(t *testing.T) {
	// 10GbE at 64B: 14.2 Mpps with the paper's 24B overhead metric.
	pps := PortPacketRate(64)
	if pps < 14.1e6 || pps > 14.3e6 {
		t.Errorf("PortPacketRate(64) = %v, want ≈14.2M", pps)
	}
}

func TestGbpsFromPpsMatchesPaper(t *testing.T) {
	// §4.6: 41.1 Gbps == 58.4 Mpps at 64B.
	g := GbpsFromPps(58.4e6, 64)
	if math.Abs(g-41.1) > 0.2 {
		t.Errorf("58.4Mpps at 64B = %v Gbps, want ≈41.1", g)
	}
}

// TestTable1Reproduction verifies the fitted PCIe model reproduces every
// cell of the paper's Table 1 within 12%.
func TestTable1Reproduction(t *testing.T) {
	cases := []struct {
		size     int
		h2d, d2h float64 // MB/s from Table 1
	}{
		{256, 55, 63},
		{1024, 185, 211},
		{4096, 759, 786},
		{16384, 2069, 1743},
		{65536, 4046, 2848},
		{262144, 5142, 3242},
		{1048576, 5577, 3394},
	}
	for _, c := range cases {
		gotH2D := float64(c.size) / H2DTime(c.size).Seconds() / 1e6
		gotD2H := float64(c.size) / D2HTime(c.size).Seconds() / 1e6
		if rel := math.Abs(gotH2D-c.h2d) / c.h2d; rel > 0.12 {
			t.Errorf("h2d %dB: model %.0f MB/s vs paper %.0f (%.0f%% off)",
				c.size, gotH2D, c.h2d, rel*100)
		}
		if rel := math.Abs(gotD2H-c.d2h) / c.d2h; rel > 0.12 {
			t.Errorf("d2h %dB: model %.0f MB/s vs paper %.0f (%.0f%% off)",
				c.size, gotD2H, c.d2h, rel*100)
		}
	}
}

func TestGPULaunchLatencyAnchors(t *testing.T) {
	// §2.2: 3.8 µs for one thread, 4.1 µs for 4096.
	one := GPULaunchTime(1).Microseconds()
	big := GPULaunchTime(4096).Microseconds()
	if math.Abs(one-3.8) > 0.05 {
		t.Errorf("launch(1) = %vus, want 3.8", one)
	}
	if math.Abs(big-4.1) > 0.05 {
		t.Errorf("launch(4096) = %vus, want 4.1", big)
	}
}

func TestIOHForwardingCap(t *testing.T) {
	// The IOH model must yield ≈40 Gbps total for balanced RX+TX: each
	// IOH carries r up and r down; saturation when r/Up + r/Down = 1.
	// Balanced forwarding moves r up and r down per IOH; the up engine
	// binds: r(1+κ)/U = 1. With the 24B descriptor overhead equal to
	// the 24B wire overhead this is also the wire-Gbps cap.
	r := IOHUpBps * 8 / (1 + IOHKappa) // bits/s per IOH
	total := 2 * r / 1e9
	if total < 39 || total > 42.5 {
		t.Errorf("balanced forwarding cap = %v Gbps, want ≈41", total)
	}
}

func TestIOHRxTxCaps(t *testing.T) {
	rxOnly := 2 * IOHUpBps * 8 / 1e9
	txOnly := 2 * IOHDownBps * 8 / 1e9
	if rxOnly < 53 || rxOnly > 62 {
		t.Errorf("RX-only cap = %v Gbps, want 53-60 (Fig 6)", rxOnly)
	}
	if txOnly < 80 { // line rate (80) must bind before the IOH does
		t.Errorf("TX-only IOH cap = %v Gbps, must exceed 80 line rate", txOnly)
	}
}

func TestIOHCostAdditive(t *testing.T) {
	up := IOHCost(1500, 0)
	down := IOHCost(0, 1500)
	both := IOHCost(1500, 1500)
	if both != up+down {
		t.Errorf("IOHCost not additive: %v + %v != %v", up, down, both)
	}
	if up <= down {
		t.Error("device→host must be the scarcer direction (dual-IOH asymmetry)")
	}
}

func TestFig5CycleAnchors(t *testing.T) {
	// Batch size 1: ~0.78 Gbps on one core at 64B → 1.108 Mpps →
	// ≈2400 cycles per packet.
	perPkt1 := IOBatchCycles/1 + IOPerPacketCycles
	rate1 := CPUFreqHz / perPkt1
	gbps1 := GbpsFromPps(rate1, 64)
	if math.Abs(gbps1-0.78) > 0.08 {
		t.Errorf("batch=1 model %.2f Gbps, want ≈0.78 (Fig 5)", gbps1)
	}
	// Batch size 64: ~10.5 Gbps.
	perPkt64 := IOBatchCycles/64 + IOPerPacketCycles
	gbps64 := GbpsFromPps(CPUFreqHz/perPkt64, 64)
	if math.Abs(gbps64-10.5) > 0.6 {
		t.Errorf("batch=64 model %.2f Gbps, want ≈10.5 (Fig 5)", gbps64)
	}
	// Speedup ≈ 13.5×.
	if sp := gbps64 / gbps1; sp < 12 || sp > 15 {
		t.Errorf("batch speedup = %.1f, want ≈13.5", sp)
	}
}

func TestTable3BinsSumToTotal(t *testing.T) {
	sum := SkbInitCycles + SkbAllocWrapperCycles + 4*SlabOpCycles +
		SkbDriverCycles + SkbOtherCycles + CompulsoryMissCycles
	if math.Abs(sum-SkbRxTotalCycles) > 1 {
		t.Errorf("Table 3 bins sum to %v, want %v", sum, SkbRxTotalCycles)
	}
}

func TestIPv6CPULookupRate(t *testing.T) {
	// One X5550 (4 cores) should do ≈8 Mlookups/s so that the GPU's
	// 80 M/s peak is "about ten X5550 processors" (§2.3).
	perLookup := float64(IPv6LookupProbes) * (MemAccessCycles() + IPv6LookupComputeCycles)
	rate := 4 * CPUFreqHz / perLookup
	if rate < 7e6 || rate > 9.5e6 {
		t.Errorf("X5550 IPv6 lookup rate = %.1f M/s, want ≈8", rate/1e6)
	}
}

func TestGPUIPv6PeakTenCPUs(t *testing.T) {
	gpuPeak := GPURandomAccessPerSec / float64(IPv6LookupProbes)
	perLookup := float64(IPv6LookupProbes) * (MemAccessCycles() + IPv6LookupComputeCycles)
	cpuRate := 4 * CPUFreqHz / perLookup
	ratio := gpuPeak / cpuRate
	if ratio < 8 || ratio > 12 {
		t.Errorf("GPU/CPU IPv6 lookup ratio = %.1f, want ≈10 (§2.3)", ratio)
	}
}

// Property: wire time is strictly monotonic in packet size and h2d/d2h
// transfer times are monotonic in buffer size.
func TestMonotonicityProperties(t *testing.T) {
	f := func(a, b uint16) bool {
		sa, sb := int(a%1451)+64, int(b%1451)+64
		if sa == sb {
			return true
		}
		if sa > sb {
			sa, sb = sb, sa
		}
		return WireTime(sa) < WireTime(sb) &&
			H2DTime(sa) < H2DTime(sb) &&
			D2HTime(sa) < D2HTime(sb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIPsecCPURateAnchors(t *testing.T) {
	// §6.3: CPU-only IPsec ≈ 2.9-3.5 Gbps at 64B, ≈5.4-6 Gbps at 1514B
	// over 8 cores. ESP tunnel of a 64B frame ciphers ≈ 110B.
	cyc64 := IPsecCPUPerPacketCycles + IPsecCPUPerByteCycles*110
	g64 := GbpsFromPps(8*CPUFreqHz/cyc64, 64)
	if g64 < 2.5 || g64 > 4.0 {
		t.Errorf("CPU IPsec 64B = %.2f Gbps, want ≈3", g64)
	}
	cyc1514 := IPsecCPUPerPacketCycles + IPsecCPUPerByteCycles*1560
	g1514 := GbpsFromPps(8*CPUFreqHz/cyc1514, 1514)
	if g1514 < 4.5 || g1514 > 6.8 {
		t.Errorf("CPU IPsec 1514B = %.2f Gbps, want ≈5.4", g1514)
	}
}

func TestIPsecGPURateAnchors(t *testing.T) {
	// Two GPUs at 64B: ≈14.5 Mpps → ≈10.2 Gbps; without packet I/O the
	// pair scales to ≈33 Gbps at large sizes (§6.3).
	perPkt := GPUIPsecPerPacketNs*1e-9 + 110/GPUIPsecBytesPerSec
	total := GbpsFromPps(2/perPkt, 64)
	if total < 9 || total > 12 {
		t.Errorf("GPU IPsec 64B = %.2f Gbps, want ≈10.2", total)
	}
	perPkt1514 := GPUIPsecPerPacketNs*1e-9 + 1560/GPUIPsecBytesPerSec
	big := GbpsFromPps(2/perPkt1514, 1514)
	if big < 28 || big > 38 {
		t.Errorf("GPU IPsec crypto-only 1514B = %.2f Gbps, want ≈33", big)
	}
}
