package openflow

import (
	"encoding/binary"
	"errors"

	"packetshader/internal/packet"
)

// ModType enumerates the OpenFlow 0.8.9 header-modify actions.
type ModType uint8

// Modify-action types (OFPAT_* of the 0.8.9 spec).
const (
	ModSetDlSrc ModType = iota
	ModSetDlDst
	ModSetNwSrc
	ModSetNwDst
	ModSetTpSrc
	ModSetTpDst
	ModSetVLAN
	ModStripVLAN
)

// Mod is one header rewrite.
type Mod struct {
	Type ModType
	MAC  packet.MAC      // ModSetDl*
	IP   packet.IPv4Addr // ModSetNw*
	Port uint16          // ModSetTp*
	VLAN uint16          // ModSetVLAN (VID, 12 bits)
}

// ErrNotApplicable reports a mod that does not fit the frame (e.g. an
// IP rewrite on a non-IP packet).
var ErrNotApplicable = errors.New("openflow: action not applicable to packet")

// ApplyMods rewrites the frame in place (VLAN push/strip change the
// length; the returned slice is the new frame, re-sliced from the same
// backing storage, which must have room for a pushed tag). IPv4 header
// checksums are fixed up incrementally.
func ApplyMods(frame []byte, mods []Mod) ([]byte, error) {
	for _, m := range mods {
		var err error
		frame, err = applyMod(frame, m)
		if err != nil {
			return frame, err
		}
	}
	return frame, nil
}

func applyMod(frame []byte, m Mod) ([]byte, error) {
	if len(frame) < packet.EthHdrLen {
		return frame, ErrNotApplicable
	}
	switch m.Type {
	case ModSetDlSrc:
		copy(frame[6:12], m.MAC[:])
		return frame, nil
	case ModSetDlDst:
		copy(frame[0:6], m.MAC[:])
		return frame, nil
	case ModSetVLAN:
		return setVLAN(frame, m.VLAN&0x0fff)
	case ModStripVLAN:
		return stripVLAN(frame)
	}

	// IP/transport rewrites need the IPv4 header offset (after any tag).
	ipOff := packet.EthHdrLen
	et := binary.BigEndian.Uint16(frame[12:14])
	if et == packet.EtherTypeVLAN {
		if len(frame) < packet.EthHdrLen+packet.VLANTagLen {
			return frame, ErrNotApplicable
		}
		et = binary.BigEndian.Uint16(frame[16:18])
		ipOff += packet.VLANTagLen
	}
	if et != packet.EtherTypeIPv4 || len(frame) < ipOff+packet.IPv4HdrLen {
		return frame, ErrNotApplicable
	}
	hdr := frame[ipOff:]
	hdrLen := int(hdr[0]&0x0f) * 4
	if hdrLen < packet.IPv4HdrLen || len(hdr) < hdrLen {
		return frame, ErrNotApplicable
	}

	switch m.Type {
	case ModSetNwSrc, ModSetNwDst:
		off := 12
		if m.Type == ModSetNwDst {
			off = 16
		}
		old := binary.BigEndian.Uint32(hdr[off:])
		binary.BigEndian.PutUint32(hdr[off:], uint32(m.IP))
		cs := binary.BigEndian.Uint16(hdr[10:12])
		binary.BigEndian.PutUint16(hdr[10:12],
			packet.ChecksumUpdate32(cs, old, uint32(m.IP)))
		return frame, nil
	case ModSetTpSrc, ModSetTpDst:
		proto := hdr[9]
		if proto != packet.ProtoUDP && proto != packet.ProtoTCP {
			return frame, ErrNotApplicable
		}
		l4 := hdr[hdrLen:]
		if len(l4) < 4 {
			return frame, ErrNotApplicable
		}
		off := 0
		if m.Type == ModSetTpDst {
			off = 2
		}
		binary.BigEndian.PutUint16(l4[off:], m.Port)
		// UDP checksum 0 = unchecked (our generator's convention); TCP
		// checksums are not recomputed by the data path (the paper's
		// switch does not terminate TCP).
		return frame, nil
	}
	return frame, ErrNotApplicable
}

// setVLAN sets the VID of an existing tag or pushes a new 802.1Q tag.
func setVLAN(frame []byte, vid uint16) ([]byte, error) {
	if binary.BigEndian.Uint16(frame[12:14]) == packet.EtherTypeVLAN {
		old := binary.BigEndian.Uint16(frame[14:16])
		binary.BigEndian.PutUint16(frame[14:16], old&0xf000|vid)
		return frame, nil
	}
	if cap(frame) < len(frame)+packet.VLANTagLen {
		return frame, errors.New("openflow: no room to push VLAN tag")
	}
	out := frame[:len(frame)+packet.VLANTagLen]
	copy(out[packet.EthHdrLen+packet.VLANTagLen:], frame[packet.EthHdrLen:])
	inner := binary.BigEndian.Uint16(out[12:14])
	binary.BigEndian.PutUint16(out[12:14], packet.EtherTypeVLAN)
	binary.BigEndian.PutUint16(out[14:16], vid)
	binary.BigEndian.PutUint16(out[16:18], inner)
	return out, nil
}

// stripVLAN removes the 802.1Q tag if present (no-op otherwise, per the
// spec).
func stripVLAN(frame []byte) ([]byte, error) {
	if binary.BigEndian.Uint16(frame[12:14]) != packet.EtherTypeVLAN {
		return frame, nil
	}
	if len(frame) < packet.EthHdrLen+packet.VLANTagLen {
		return frame, ErrNotApplicable
	}
	inner := binary.BigEndian.Uint16(frame[16:18])
	copy(frame[packet.EthHdrLen:], frame[packet.EthHdrLen+packet.VLANTagLen:])
	binary.BigEndian.PutUint16(frame[12:14], inner)
	return frame[:len(frame)-packet.VLANTagLen], nil
}
