// Fixture for the mapiter analyzer: map-range loops whose bodies emit
// output or schedule simulation work are order-sensitive and flagged;
// order-insensitive loops (sums, key collection) are not.
package mapiter

import (
	"fmt"
	"os"
	"sort"
	"strings"

	"packetshader/internal/sim"
)

func emits(m map[string]int) string {
	for k, v := range m { // want `range over map map\[string\]int but the loop body emits output \(fmt\.Printf\)`
		fmt.Printf("%s=%d\n", k, v)
	}
	for k, v := range m { // want `emits output \(fmt\.Fprintf\)`
		fmt.Fprintf(os.Stderr, "%s=%d\n", k, v)
	}
	var sb strings.Builder
	for k := range m { // want `emits output \(\*strings\.Builder\.WriteString\)`
		sb.WriteString(k)
	}
	return sb.String()
}

func schedules(env *sim.Env, m map[string]sim.Duration) {
	for _, d := range m { // want `schedules simulation work \(sim\.After\)`
		env.After(d, func() {})
	}
}

// Order-sensitivity is detected even inside nested function literals,
// which inherit the iteration's visit order.
func nested(env *sim.Env, m map[string]sim.Duration) {
	for _, d := range m { // want `schedules simulation work \(sim\.Go\)`
		f := func() { env.Go("worker", func(p *sim.Proc) { p.Sleep(d) }) }
		f()
	}
}

func good(m map[string]int) int {
	total := 0
	for _, v := range m { // commutative accumulation: not flagged
		total += v
	}
	keys := make([]string, 0, len(m))
	for k := range m { // key collection: not flagged
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys { // slice range: out of scope
		fmt.Println(k, m[k])
	}
	return total
}

func suppressed(m map[string]int) {
	//pslint:ignore mapiter diagnostics dump, order irrelevant to tests
	for k := range m {
		fmt.Println(k)
	}
}
