package openflow

import "sort"

// FlowStats counts matched traffic per flow entry.
type FlowStats struct {
	Packets uint64
	Bytes   uint64
}

// exactEntry is one exact-match flow.
type exactEntry struct {
	key    FlowKey
	action Action
	stats  FlowStats
}

// ExactTable is an open-addressed (bucketed) hash table over full
// 10-field keys. It exposes its probe count so the cost model can charge
// the right number of memory accesses.
type ExactTable struct {
	buckets [][]exactEntry
	mask    uint32
	count   int
}

// NewExactTable creates a table sized for about n entries.
func NewExactTable(n int) *ExactTable {
	size := 1
	for size < n*2 {
		size <<= 1
	}
	if size < 16 {
		size = 16
	}
	return &ExactTable{buckets: make([][]exactEntry, size), mask: uint32(size - 1)}
}

// Len returns the number of installed flows.
func (t *ExactTable) Len() int { return t.count }

// Insert installs or replaces a flow.
func (t *ExactTable) Insert(key FlowKey, action Action) {
	idx := key.Hash() & t.mask
	b := t.buckets[idx]
	for i := range b {
		if b[i].key == key {
			b[i].action = action
			return
		}
	}
	t.buckets[idx] = append(b, exactEntry{key: key, action: action})
	t.count++
}

// Remove deletes a flow, reporting whether it existed.
func (t *ExactTable) Remove(key FlowKey) bool {
	idx := key.Hash() & t.mask
	b := t.buckets[idx]
	for i := range b {
		if b[i].key == key {
			t.buckets[idx] = append(b[:i], b[i+1:]...)
			t.count--
			return true
		}
	}
	return false
}

// Lookup finds the flow for key. probes is the number of entry
// comparisons performed (≥1 even on miss: the bucket read).
func (t *ExactTable) Lookup(key FlowKey) (action Action, probes int, ok bool) {
	return t.LookupHashed(key, key.Hash())
}

// LookupHashed is Lookup with a precomputed hash — the GPU-offloaded
// path computes hashes on the device and the post-shading CPU step
// finishes the probe.
func (t *ExactTable) LookupHashed(key FlowKey, hash uint32) (action Action, probes int, ok bool) {
	idx := hash & t.mask
	b := t.buckets[idx]
	probes = 1
	for i := range b {
		probes++
		if b[i].key == key {
			b[i].stats.Packets++
			return b[i].action, probes, true
		}
	}
	return Action{}, probes, false
}

// Stats returns a copy of the stats for key.
func (t *ExactTable) Stats(key FlowKey) (FlowStats, bool) {
	idx := key.Hash() & t.mask
	for i := range t.buckets[idx] {
		if t.buckets[idx][i].key == key {
			return t.buckets[idx][i].stats, true
		}
	}
	return FlowStats{}, false
}

// ---------------------------------------------------------------------------
// Wildcard table.
// ---------------------------------------------------------------------------

// Wildcards flags which fields of a rule are "don't care".
type Wildcards uint16

// Wildcard bits (IP addresses use prefix masks instead, below).
const (
	WInPort Wildcards = 1 << iota
	WDlSrc
	WDlDst
	WDlVLAN
	WDlType
	WNwProto
	WTpSrc
	WTpDst
)

// WAll wildcards every non-IP field.
const WAll = WInPort | WDlSrc | WDlDst | WDlVLAN | WDlType | WNwProto | WTpSrc | WTpDst

// Rule is one wildcard-match entry: a key template, wildcard flags, IP
// prefix masks (0 = fully wildcarded, 32 = exact), and a priority.
type Rule struct {
	Key       FlowKey
	Wild      Wildcards
	NwSrcBits uint8
	NwDstBits uint8
	Priority  int
	Action    Action
}

// Matches reports whether k satisfies the rule.
func (r *Rule) Matches(k *FlowKey) bool {
	if r.Wild&WInPort == 0 && r.Key.InPort != k.InPort {
		return false
	}
	if r.Wild&WDlSrc == 0 && r.Key.DlSrc != k.DlSrc {
		return false
	}
	if r.Wild&WDlDst == 0 && r.Key.DlDst != k.DlDst {
		return false
	}
	if r.Wild&WDlVLAN == 0 && r.Key.DlVLAN != k.DlVLAN {
		return false
	}
	if r.Wild&WDlType == 0 && r.Key.DlType != k.DlType {
		return false
	}
	if r.Wild&WNwProto == 0 && r.Key.NwProto != k.NwProto {
		return false
	}
	if r.Wild&WTpSrc == 0 && r.Key.TpSrc != k.TpSrc {
		return false
	}
	if r.Wild&WTpDst == 0 && r.Key.TpDst != k.TpDst {
		return false
	}
	if m := prefixMask(r.NwSrcBits); uint32(r.Key.NwSrc)&m != uint32(k.NwSrc)&m {
		return false
	}
	if m := prefixMask(r.NwDstBits); uint32(r.Key.NwDst)&m != uint32(k.NwDst)&m {
		return false
	}
	return true
}

func prefixMask(bits uint8) uint32 {
	if bits == 0 {
		return 0
	}
	if bits >= 32 {
		return ^uint32(0)
	}
	return ^uint32(0) << (32 - bits)
}

// WildcardTable is a priority-ordered rule list searched linearly, as
// the OpenFlow reference switch does (§6.2.3).
type WildcardTable struct {
	rules []Rule // sorted by descending priority
}

// NewWildcardTable creates an empty table.
func NewWildcardTable() *WildcardTable { return &WildcardTable{} }

// Len returns the rule count.
func (t *WildcardTable) Len() int { return len(t.rules) }

// Insert adds a rule, keeping descending-priority order (stable for
// equal priorities: earlier insertions win, per the spec's
// first-match-at-priority behaviour).
func (t *WildcardTable) Insert(r Rule) {
	i := sort.Search(len(t.rules), func(i int) bool {
		return t.rules[i].Priority < r.Priority
	})
	t.rules = append(t.rules, Rule{})
	copy(t.rules[i+1:], t.rules[i:])
	t.rules[i] = r
}

// Lookup linearly scans for the highest-priority matching rule.
// scanned is the number of rules examined (charged by the cost model).
func (t *WildcardTable) Lookup(k *FlowKey) (action Action, scanned int, ok bool) {
	for i := range t.rules {
		scanned++
		if t.rules[i].Matches(k) {
			return t.rules[i].Action, scanned, true
		}
	}
	return Action{}, scanned, false
}

// Rules exposes the rule list (read-only use) for the GPU wildcard
// kernel.
func (t *WildcardTable) Rules() []Rule { return t.rules }

// ---------------------------------------------------------------------------
// Switch: exact + wildcard with OpenFlow precedence.
// ---------------------------------------------------------------------------

// Switch is the combined OpenFlow data path table set.
type Switch struct {
	Exact    *ExactTable
	Wildcard *WildcardTable
	// Misses counts packets matching neither table (punted to the
	// controller and dropped by the data path).
	Misses uint64
}

// NewSwitch creates a switch sized for nExact exact entries.
func NewSwitch(nExact int) *Switch {
	return &Switch{Exact: NewExactTable(nExact), Wildcard: NewWildcardTable()}
}

// Classify implements the OpenFlow precedence: an exact match always
// wins over any wildcard entry; otherwise the highest-priority wildcard
// rule; otherwise a miss.
func (s *Switch) Classify(k *FlowKey) (Action, bool) {
	if a, _, ok := s.Exact.Lookup(*k); ok {
		return a, true
	}
	if a, _, ok := s.Wildcard.Lookup(k); ok {
		return a, true
	}
	s.Misses++
	return Action{Type: ActionController}, false
}
