package experiments

import (
	"fmt"
	"io"
	"sync"

	"packetshader/internal/apps"
	"packetshader/internal/core"
	"packetshader/internal/hw/nic"
	"packetshader/internal/model"
	"packetshader/internal/obs"
	"packetshader/internal/openflow"
	"packetshader/internal/packet"
	"packetshader/internal/pktgen"
	"packetshader/internal/sim"
)

// appWarmup and appWindow bound the Figure 11 runs: transients (ring
// fill, chunk-pipeline priming) are excluded from measurement.
const (
	appWarmup = 12 * sim.Millisecond
	appWindow = 8 * sim.Millisecond
)

// runApp drives one router configuration at full offered load and
// returns the router (after the window) for metric extraction. pt is
// the enclosing job's output context; metrics dumps (when enabled) go
// to its private buffer so parallel jobs never interleave.
func runApp(pt *Point, mode core.Mode, pktSize int, offeredPerPort float64,
	app core.App, src nic.FrameSource, tweak func(*core.Config)) *core.Router {
	return runAppW(pt, mode, pktSize, offeredPerPort, app, src, tweak, appWarmup, appWindow)
}

func runAppW(pt *Point, mode core.Mode, pktSize int, offeredPerPort float64,
	app core.App, src nic.FrameSource, tweak func(*core.Config),
	warmup, window sim.Duration) *core.Router {
	mw := pt.MetricsWriter()
	env := sim.NewEnv()
	defer env.Close()
	cfg := core.DefaultConfig()
	cfg.Mode = mode
	cfg.PacketSize = pktSize
	cfg.OfferedGbpsPerPort = offeredPerPort
	if tweak != nil {
		tweak(&cfg)
	}
	r := core.New(env, cfg, app)
	var reg *obs.Registry
	var sampler *obs.ServerSampler
	if mw != nil {
		reg = obs.NewRegistry()
		sampler = obs.NewServerSampler(nil)
		env.SetHooks(sampler)
		r.EnableObs(nil, reg)
	}
	r.SetSource(src)
	r.Start()
	env.After(warmup, r.ResetMeasurement)
	env.Run(sim.Time(warmup + window))
	if mw != nil {
		r.ObserveStats()
		mode := "cpu"
		if cfg.Mode == core.ModeGPU {
			mode = "gpu"
		}
		fmt.Fprintf(mw, "--- metrics %s mode=%s size=%d offered=%g ---\n",
			app.Name(), mode, pktSize, offeredPerPort)
		if err := reg.Dump(mw); err == nil {
			err = sampler.WriteReport(mw, env.Now())
		}
	}
	return r
}

// metricsW, when set via SetMetricsWriter, receives the per-run metrics
// dumps (registry + resource occupancy) from every application
// experiment driven through runAppW, in deterministic job order.
var metricsW io.Writer

// SetMetricsWriter enables per-experiment metrics dumps to w (nil
// disables them, the default). Call it before running experiments, from
// one goroutine: the jobs buffer their dumps privately and the runner
// flushes them here in job order.
func SetMetricsWriter(w io.Writer) { metricsW = w }

var fig11Sizes = []int{64, 128, 256, 512, 1024, 1514}

// fig11Mode maps the job-index parity to the (CPU-only, CPU+GPU) column
// pair every Figure 11 table shares.
func fig11Mode(k int) core.Mode {
	if k%2 == 1 {
		return core.ModeGPU
	}
	return core.ModeCPUOnly
}

// Fig11a regenerates Figure 11(a): IPv4 forwarding throughput versus
// packet size, CPU-only versus CPU+GPU, with the full BGP table.
func Fig11a() *Result { return runSolo(fig11a) }

func fig11a(c *Ctx) *Result {
	r := &Result{
		ID:     "fig11a",
		Title:  "IPv4 forwarding throughput (Gbps)",
		Header: []string{"Packet size", "CPU-only", "CPU+GPU"},
	}
	entries, tbl := BGPFixture()
	vals := MapPoints(c, 2*len(fig11Sizes), func(k int, pt *Point) float64 {
		size := fig11Sizes[k/2]
		src := &pktgen.UDP4Source{Size: size, Seed: 11, Table: entries}
		app := &apps.IPv4Fwd{Table: tbl, NumPorts: model.NumPorts}
		return runApp(pt, fig11Mode(k), size, 10, app, src, nil).DeliveredGbps()
	})
	for i, size := range fig11Sizes {
		r.AddRow(fmt.Sprintf("%d", size),
			fmt.Sprintf("%.1f", vals[2*i]),
			fmt.Sprintf("%.1f", vals[2*i+1]))
	}
	r.Note("paper: CPU+GPU ≈ 39 Gbps at 64B, ≈ 40 at larger sizes (I/O bound); CPU-only ≈ 28 at 64B")
	return r
}

// Fig11b regenerates Figure 11(b): IPv6 forwarding versus packet size.
func Fig11b() *Result { return runSolo(fig11b) }

func fig11b(c *Ctx) *Result {
	r := &Result{
		ID:     "fig11b",
		Title:  "IPv6 forwarding throughput (Gbps)",
		Header: []string{"Packet size", "CPU-only", "CPU+GPU"},
	}
	entries, tbl := IPv6Fixture()
	vals := MapPoints(c, 2*len(fig11Sizes), func(k int, pt *Point) float64 {
		size := fig11Sizes[k/2]
		src := &pktgen.UDP6Source{Size: size, Seed: 12, Table: entries}
		app := &apps.IPv6Fwd{Table: tbl, NumPorts: model.NumPorts}
		return runApp(pt, fig11Mode(k), size, 10, app, src, nil).DeliveredGbps()
	})
	for i, size := range fig11Sizes {
		r.AddRow(fmt.Sprintf("%d", size),
			fmt.Sprintf("%.1f", vals[2*i]),
			fmt.Sprintf("%.1f", vals[2*i+1]))
	}
	r.Note("paper: CPU+GPU 38.2 Gbps at 64B; CPU-only far lower at small sizes (7 memory accesses per lookup)")
	return r
}

// ofSource generates packets whose flow keys come from a bounded flow
// space, so the exact-match table can be pre-populated with exactly the
// keys the traffic will carry.
type ofSource struct {
	size         int
	flowsPerPort int
	seed         uint64
	// missEvery-th flow is NOT installed in the exact table, forcing a
	// wildcard lookup (0 disables misses).
	missEvery int

	once sync.Once
	tmpl *packet.UDP4Template
}

// flowTuple returns the deterministic 5-tuple of flow (port, idx).
func (s *ofSource) flowTuple(port, idx int) (src, dst packet.IPv4Addr, sp, dp uint16) {
	h := splitmix64ExpSeed(s.seed, uint64(port)<<32|uint64(idx))
	return packet.IPv4Addr(0x0A000000 | uint32(h&0xffffff)),
		packet.IPv4Addr(0x0B000000 | uint32((h>>24)&0xffffff)),
		uint16(h>>48) | 1024, uint16(idx) | 1024
}

func splitmix64ExpSeed(seed, x uint64) uint64 {
	x ^= seed
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Fill implements nic.FrameSource.
func (s *ofSource) Fill(b *packet.Buf, port, queue int, seq uint64) {
	h := splitmix64ExpSeed(s.seed^0xabcd, uint64(port)<<56|uint64(queue)<<48|seq)
	idx := int(h % uint64(s.flowsPerPort))
	src, dst, sp, dp := s.flowTuple(port, idx)
	s.once.Do(func() {
		s.tmpl = packet.NewUDP4Template(s.size,
			packet.MAC{2, 0, 0, 0, 0, 1}, packet.MAC{2, 0, 0, 0, 0, 2})
	})
	frame := s.tmpl.Render(b.Data[:cap(b.Data)], src, dst, sp, dp)
	b.Data = frame
	b.Hash = nic.RSSHashIPv4(nic.DefaultRSSKey[:], uint32(src), uint32(dst), sp, dp)
}

// buildOFSwitch installs the flow space into a switch: exact entries
// for installed flows and a small wildcard table catching the rest.
func buildOFSwitch(s *ofSource, nPorts, wildcards int) *openflow.Switch {
	sw := openflow.NewSwitch(nPorts * s.flowsPerPort)
	var d packet.Decoder
	buf := make([]byte, 2048)
	for port := 0; port < nPorts; port++ {
		for idx := 0; idx < s.flowsPerPort; idx++ {
			if s.missEvery > 0 && idx%s.missEvery == 0 {
				continue // left for the wildcard table
			}
			src, dst, sp, dp := s.flowTuple(port, idx)
			frame := packet.BuildUDP4(buf, s.size,
				packet.MAC{2, 0, 0, 0, 0, 1}, packet.MAC{2, 0, 0, 0, 0, 2}, src, dst, sp, dp)
			if err := d.Decode(frame); err != nil {
				panic(err)
			}
			key := openflow.ExtractKey(&d, uint16(port))
			sw.Exact.Insert(key, openflow.Action{
				Type: openflow.ActionOutput, Port: uint16(idx % nPorts)})
		}
	}
	for i := 0; i < wildcards-1; i++ {
		// Non-matching high-priority rules: every wildcard lookup scans
		// past them (the linear-search cost the GPU absorbs).
		sw.Wildcard.Insert(openflow.Rule{
			Wild:     openflow.WAll &^ openflow.WDlType,
			Key:      openflow.FlowKey{DlType: 0xFFFF},
			Priority: 1000 + i,
			Action:   openflow.Action{Type: openflow.ActionDrop},
		})
	}
	// Lowest priority: catch-all forwarding rule for exact misses.
	sw.Wildcard.Insert(openflow.Rule{
		Wild:     openflow.WAll,
		Priority: 1,
		Action:   openflow.Action{Type: openflow.ActionOutput, Port: 0},
	})
	return sw
}

// Fig11c regenerates Figure 11(c): OpenFlow switch throughput with 64B
// packets versus the number of exact-match flow entries (with 32
// wildcard rules, 10% of traffic exact-missing), CPU-only vs CPU+GPU.
func Fig11c() *Result { return runSolo(fig11c) }

func fig11c(c *Ctx) *Result {
	r := &Result{
		ID:     "fig11c",
		Title:  "OpenFlow switch throughput, 64B packets (Gbps)",
		Header: []string{"Exact entries", "Wildcard", "CPU-only", "CPU+GPU"},
	}
	type ofRow struct {
		flows, wildcards, missEvery int
		seed                        uint64
	}
	var specs []ofRow
	for _, flows := range []int{1 << 10, 32 << 10, 128 << 10, 512 << 10, 1 << 20} {
		specs = append(specs, ofRow{flows, 32, 10, 77})
	}
	// Wildcard-table sweep at 32K exact entries: the wildcard-offload
	// benefit grows with the rule count.
	for _, wc := range []int{64, 256} {
		specs = append(specs, ofRow{32 << 10, wc, 4, 78})
	}
	vals := MapPoints(c, 2*len(specs), func(k int, pt *Point) float64 {
		s := specs[k/2]
		src := &ofSource{size: 64, flowsPerPort: s.flows / model.NumPorts,
			seed: s.seed, missEvery: s.missEvery}
		sw := buildOFSwitch(src, model.NumPorts, s.wildcards)
		app := apps.NewOFSwitch(sw, model.NumPorts)
		return runApp(pt, fig11Mode(k), 64, 10, app, src, nil).DeliveredGbps()
	})
	for i, s := range specs {
		r.AddRow(fmt.Sprintf("%d", s.flows), fmt.Sprintf("%d", s.wildcards),
			fmt.Sprintf("%.1f", vals[2*i]),
			fmt.Sprintf("%.1f", vals[2*i+1]))
	}
	r.Note("paper: CPU+GPU wins for all configurations; 32 Gbps at the NetFPGA-comparable 32K+32 setup (8 NetFPGAs' worth)")
	return r
}

// Fig11d regenerates Figure 11(d): IPsec gateway throughput versus
// packet size (input throughput, since ESP grows packets).
func Fig11d() *Result { return runSolo(fig11d) }

func fig11d(c *Ctx) *Result {
	r := &Result{
		ID:     "fig11d",
		Title:  "IPsec gateway throughput, input Gbps",
		Header: []string{"Packet size", "CPU-only", "CPU+GPU"},
	}
	vals := MapPoints(c, 2*len(fig11Sizes), func(k int, pt *Point) float64 {
		size := fig11Sizes[k/2]
		src := &pktgen.UDP4Source{Size: size, Seed: 13}
		app := apps.NewIPsecGW(model.NumPorts)
		// §5.4: concurrent copy and execution is enabled selectively
		// for IPsec (payload-heavy transfers overlap the kernel).
		// ESP-grown packets take longer to fill the RX rings, so the
		// IPsec runs use a longer warmup before measuring.
		return runAppW(pt, fig11Mode(k), size, 10, app, src, func(c *core.Config) {
			c.Streams = 4
		}, 20*sim.Millisecond, 10*sim.Millisecond).InputGbps()
	})
	for i, size := range fig11Sizes {
		r.AddRow(fmt.Sprintf("%d", size),
			fmt.Sprintf("%.1f", vals[2*i]),
			fmt.Sprintf("%.1f", vals[2*i+1]))
	}
	r.Note("paper: CPU+GPU ≈ 3.5x CPU-only for all sizes; 10.2 Gbps at 64B, 20.0 at 1514B")
	r.Note("concurrent copy & execution enabled (4 streams), as §5.4 prescribes for IPsec")
	return r
}
