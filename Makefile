# Development entry points. `make check` is the expanded tier-1
# verification and mirrors CI (.github/workflows/ci.yml) exactly.

.PHONY: check build test lint race

check:
	./scripts/check.sh

build:
	go build ./...

test:
	go test ./...

lint:
	go vet ./...
	go run ./cmd/pslint ./...

race:
	go test -race ./internal/sim ./internal/core ./internal/cluster ./internal/pktio
