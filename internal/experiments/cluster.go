package experiments

import (
	"fmt"

	"packetshader/internal/cluster"
)

// Cluster evaluates the §7 horizontal-scaling direction: aggregate
// capacity of a full-mesh cluster of PacketShader boxes under direct
// routing, Valiant Load Balancing, and RouteBricks-style direct VLB,
// for benign (uniform), hot-pair (permutation), and adversarial
// (incast) traffic. Each box contributes 40 Gbps of external ports and
// the single-box ≈40 Gbps forwarding budget measured in Figure 6;
// internal mesh links are 10GbE.
func Cluster() *Result { return runSolo(clusterScaling) }

func clusterScaling(c *Ctx) *Result {
	r := &Result{
		ID:     "cluster",
		Title:  "Horizontal scaling with VLB (§7): admissible aggregate Gbps",
		Header: []string{"Nodes", "Matrix", "direct", "vlb", "direct-vlb", "hops(direct-vlb)"},
	}
	type spec struct {
		nodes  int
		matrix string
	}
	var specs []spec
	for _, n := range []int{2, 4, 8, 16} {
		for _, m := range []string{"uniform", "permutation", "incast"} {
			specs = append(specs, spec{n, m})
		}
	}
	rows := MapPoints(c, len(specs), func(i int, _ *Point) []string {
		s := specs[i]
		cfg := cluster.Config{
			Nodes:              s.nodes,
			ExternalGbps:       40,
			NodeForwardingGbps: 40,
			InternalLinkGbps:   10,
		}
		var m cluster.Matrix
		switch s.matrix {
		case "uniform":
			m = cluster.Uniform(s.nodes, float64(s.nodes)*40)
		case "permutation":
			m = cluster.Permutation(s.nodes, 40)
		default:
			m = cluster.Incast(s.nodes, 40)
		}
		row := []string{fmt.Sprintf("%d", s.nodes), s.matrix}
		var hops float64
		for _, scheme := range []cluster.Routing{cluster.Direct, cluster.VLB, cluster.DirectVLB} {
			res, err := cluster.Evaluate(cfg, scheme, m)
			if err != nil {
				panic(err)
			}
			row = append(row, fmt.Sprintf("%.0f", res.ThroughputGbps))
			if scheme == cluster.DirectVLB {
				hops = res.MeanHops
			}
		}
		return append(row, fmt.Sprintf("%.2f", hops))
	})
	r.Rows = append(r.Rows, rows...)
	r.Note("one PacketShader box replaces RB4, RouteBricks' 4-machine cluster (§8)")
	r.Note("VLB trades forwarding budget (≈3 hops) for guaranteed worst-case throughput")
	return r
}
