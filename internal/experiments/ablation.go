package experiments

import (
	"fmt"

	"packetshader/internal/apps"
	"packetshader/internal/core"
	"packetshader/internal/model"
	"packetshader/internal/packet"
	"packetshader/internal/pktgen"
	"packetshader/internal/pktio"
	"packetshader/internal/sim"
)

// Ablation quantifies the §4.3-§5.4 design choices one at a time on the
// IPv6 forwarding workload (64B, full load): the huge packet buffer vs
// the skb path, software prefetch, cache-line alignment + per-queue
// counters, chunk pipelining, gather/scatter, concurrent copy and
// execution, and opportunistic offloading (latency at light load).
func Ablation() *Result { return runSolo(ablation) }

func ablation(c *Ctx) *Result {
	r := &Result{
		ID:     "ablation",
		Title:  "Design-choice ablations (IPv6 forwarding, 64B)",
		Header: []string{"Configuration", "Gbps", "vs full"},
	}
	entries, tbl := IPv6Fixture()

	run := func(tweak func(*core.Config)) float64 {
		env := sim.NewEnv()
		defer env.Close()
		cfg := core.DefaultConfig()
		cfg.PacketSize = 64
		if tweak != nil {
			tweak(&cfg)
		}
		app := &apps.IPv6Fwd{Table: tbl, NumPorts: model.NumPorts}
		router := core.New(env, cfg, app)
		router.SetSource(&pktgen.UDP6Source{Size: 64, Seed: 31, Table: entries})
		router.Start()
		env.Run(sim.Time(4 * sim.Millisecond))
		return router.DeliveredGbps()
	}

	// Opportunistic offloading is a latency feature: measure mean RTT
	// at light load with and without it.
	lat := func(opp bool) float64 {
		env := sim.NewEnv()
		defer env.Close()
		cfg := core.DefaultConfig()
		cfg.PacketSize = 64
		cfg.OfferedGbpsPerPort = 0.25
		cfg.OpportunisticOffload = opp
		app := &apps.IPv6Fwd{Table: tbl, NumPorts: model.NumPorts}
		router := core.New(env, cfg, app)
		sink := pktgen.NewLatencySink()
		for _, p := range router.Engine.Ports {
			p.Tx.OnComplete = func(b *packet.Buf, at sim.Time) { sink.Observe(b, at) }
		}
		router.SetSource(&pktgen.UDP6Source{Size: 64, Seed: 31, Table: entries})
		router.Start()
		env.Run(sim.Time(6 * sim.Millisecond))
		return sink.MeanMicros()
	}

	configs := []struct {
		name  string
		tweak func(*core.Config)
	}{
		{"full PacketShader (CPU+GPU)", nil},
		{"- gather/scatter (1 chunk/launch)", func(c *core.Config) { c.GatherMax = 1 }},
		{"- chunk pipelining", func(c *core.Config) { c.Pipelining = false }},
		{"+ concurrent copy & execution (4 streams)", func(c *core.Config) { c.Streams = 4 }},
		{"- software prefetch", func(c *core.Config) { c.IO.Prefetch = false }},
		{"- queue alignment & per-queue counters", func(c *core.Config) {
			c.IO.AlignQueueData = false
			c.IO.PerQueueCounters = false
		}},
		{"skb buffers instead of huge buffers", func(c *core.Config) { c.IO.Mode = pktio.ModeSkb }},
		{"CPU-only", func(c *core.Config) { c.Mode = core.ModeCPUOnly }},
	}
	// Jobs 0..len(configs)-1 are the throughput ablations; the final two
	// are the opportunistic-offload latency runs (always-offload, then
	// opportunistic).
	vals := MapPoints(c, len(configs)+2, func(i int, _ *Point) float64 {
		if i < len(configs) {
			return run(configs[i].tweak)
		}
		return lat(i == len(configs)+1)
	})
	full := vals[0]
	for i, cfg := range configs {
		r.AddRow(cfg.name, fmt.Sprintf("%.1f", vals[i]),
			fmt.Sprintf("%+.0f%%", (vals[i]/full-1)*100))
	}
	r.Note("latency at 2 Gbps offered: GPU always-offload %.0f us vs opportunistic %.0f us (§7)",
		vals[len(configs)], vals[len(configs)+1])
	return r
}
