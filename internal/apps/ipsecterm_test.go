package apps

import (
	"testing"

	"packetshader/internal/ipsec"
	"packetshader/internal/lookup/ipv4"
	"packetshader/internal/packet"
	"packetshader/internal/route"
)

// termFixture builds a matched gateway/terminator pair: the gateway's
// outbound SA parameters are mirrored into the terminator's inbound SA.
func termFixture(t *testing.T) (*IPsecGW, *IPsecTerm) {
	t.Helper()
	gw := NewIPsecGW(8)
	var inbound []*ipsec.SA
	for i, tx := range gw.SAs {
		enc := make([]byte, 16)
		auth := make([]byte, 20)
		for j := range enc {
			enc[j] = byte(i*16 + j)
		}
		for j := range auth {
			auth[j] = byte(i*20 + j + 1)
		}
		inbound = append(inbound, ipsec.NewSA(tx.SPI, uint32(0xabcd0000+i),
			enc, auth, tx.LocalIP, tx.PeerIP))
	}
	tbl, err := ipv4.Build([]route.Entry{
		{Prefix: route.Prefix{Addr: 0x0C000000, Len: 8}, NextHop: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	return gw, NewIPsecTerm(inbound, tbl, 8)
}

// encapFrames runs frames through the gateway and returns the ESP
// frames it produced.
func encapFrames(t *testing.T, gw *IPsecGW, frames ...[]byte) [][]byte {
	t.Helper()
	c := mkChunk(frames...)
	gw.PreShade(c)
	gw.RunKernel(c)
	gw.PostShade(c)
	var out [][]byte
	for i, b := range c.Bufs {
		if c.OutPorts[i] < 0 {
			t.Fatalf("gateway dropped frame %d", i)
		}
		cp := make([]byte, len(b.Data))
		copy(cp, b.Data)
		out = append(out, cp)
	}
	return out
}

func TestIPsecTermDecapsAndRoutes(t *testing.T) {
	gw, term := termFixture(t)
	orig := udp4Frame(0x0C123456, 120)
	want := make([]byte, len(orig))
	copy(want, orig)
	esp := encapFrames(t, gw, orig)

	c := mkChunk(esp...)
	term.PreShade(c)
	term.RunKernel(c)
	term.PostShade(c)
	if c.OutPorts[0] != 6 {
		t.Fatalf("inner packet routed to %d, want 6 (12/8 route)", c.OutPorts[0])
	}
	// The frame now carries the original inner packet.
	got := c.Bufs[0].Data[packet.EthHdrLen:]
	if string(got) != string(want[packet.EthHdrLen:]) {
		t.Error("inner packet corrupted through encap/decap")
	}
	if term.AuthFail+term.BadSPI+term.Replayed+term.Malformed != 0 {
		t.Errorf("unexpected failures: %+v", term)
	}
}

func TestIPsecTermTamperCounted(t *testing.T) {
	gw, term := termFixture(t)
	esp := encapFrames(t, gw, udp4Frame(0x0C000001, 80))
	esp[0][packet.EthHdrLen+30] ^= 0xFF
	c := mkChunk(esp...)
	term.PreShade(c)
	term.RunKernel(c)
	term.PostShade(c)
	if c.OutPorts[0] != -1 || term.AuthFail != 1 {
		t.Errorf("tampered packet: port %d, authFail %d", c.OutPorts[0], term.AuthFail)
	}
}

func TestIPsecTermReplayCounted(t *testing.T) {
	gw, term := termFixture(t)
	esp := encapFrames(t, gw, udp4Frame(0x0C000001, 80))
	dup := make([]byte, len(esp[0]))
	copy(dup, esp[0])
	c := mkChunk(esp[0], dup)
	term.PreShade(c)
	term.RunKernel(c)
	term.PostShade(c)
	if c.OutPorts[0] < 0 {
		t.Error("first copy rejected")
	}
	if c.OutPorts[1] != -1 || term.Replayed != 1 {
		t.Errorf("replay: port %d, count %d", c.OutPorts[1], term.Replayed)
	}
}

func TestIPsecTermUnknownSPI(t *testing.T) {
	gw, _ := termFixture(t)
	// Terminator with NO SAs: every ESP packet is a bad SPI.
	tbl, _ := ipv4.Build(nil)
	empty := NewIPsecTerm(nil, tbl, 8)
	esp := encapFrames(t, gw, udp4Frame(0x0C000001, 80))
	c := mkChunk(esp...)
	empty.PreShade(c)
	empty.RunKernel(c)
	empty.PostShade(c)
	if c.OutPorts[0] != -1 || empty.BadSPI != 1 {
		t.Errorf("unknown SPI: port %d, count %d", c.OutPorts[0], empty.BadSPI)
	}
}

func TestIPsecTermNonESPMalformed(t *testing.T) {
	_, term := termFixture(t)
	c := mkChunk(udp4Frame(0x0C000001, 64)) // plain UDP, not ESP
	term.PreShade(c)
	term.RunKernel(c)
	term.PostShade(c)
	if c.OutPorts[0] != -1 || term.Malformed != 1 {
		t.Errorf("non-ESP: port %d, malformed %d", c.OutPorts[0], term.Malformed)
	}
}

func TestIPsecRoundTripThroughBothApps(t *testing.T) {
	// Gateway and terminator chained: many packets of many sizes.
	gw, term := termFixture(t)
	var frames [][]byte
	var originals [][]byte
	for i := 0; i < 32; i++ {
		f := udp4Frame(packet.IPv4Addr(0x0C000000+uint32(i)), 64+i*40)
		cp := make([]byte, len(f))
		copy(cp, f)
		originals = append(originals, cp)
		frames = append(frames, f)
	}
	esp := encapFrames(t, gw, frames...)
	c := mkChunk(esp...)
	term.PreShade(c)
	term.RunKernel(c)
	term.PostShade(c)
	for i := range originals {
		if c.OutPorts[i] != 6 {
			t.Fatalf("packet %d dropped/misrouted: %d", i, c.OutPorts[i])
		}
		if string(c.Bufs[i].Data[packet.EthHdrLen:]) != string(originals[i][packet.EthHdrLen:]) {
			t.Fatalf("packet %d corrupted", i)
		}
	}
}

func TestIPsecTermCPUPath(t *testing.T) {
	gw, term := termFixture(t)
	esp := encapFrames(t, gw, udp4Frame(0x0C000001, 100))
	c := mkChunk(esp...)
	term.PreShade(c)
	if cyc := term.CPUWork(c); cyc <= 0 {
		t.Error("no cycles charged")
	}
	term.PostShade(c)
	if c.OutPorts[0] != 6 {
		t.Errorf("CPU path routed to %d", c.OutPorts[0])
	}
}
