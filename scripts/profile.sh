#!/bin/sh
# profile.sh is the profiling harness behind `make profile`: it runs the
# key benchmarks — Fig5Batch (packet-I/O engine hot path),
# RouterIPv4GPU (full CPU+GPU router framework) and FabricWorkers at
# p1 and p8 (conservative-parallel cluster fabric, serial and
# partitioned advance) — with CPU and allocation profiling enabled,
# and drops pprof files plus a ready-to-read top-25 summary under
# profiles/.
#
# This is how the PR 9 per-packet optimizations were found (frame
# templates, LUT Toeplitz, fast decode, hoisted cycle accounting): look
# at profiles/*.top.txt, attack the biggest flat contributor that is
# per-packet work, and re-run.
#
# Usage: scripts/profile.sh [benchtime]   (default 5x)
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${1:-5x}"
OUTDIR="profiles"
mkdir -p "$OUTDIR"

profile_one() { # profile_one <label> <bench regex>
	label="$1"
	regex="$2"
	echo "== $label ($regex, benchtime=$BENCHTIME)"
	go test -run '^$' -bench "$regex" -benchtime "$BENCHTIME" \
		-cpuprofile "$OUTDIR/$label.cpu.pprof" \
		-memprofile "$OUTDIR/$label.mem.pprof" \
		-o "$OUTDIR/$label.test" .
	go tool pprof -top -nodecount=25 "$OUTDIR/$label.test" \
		"$OUTDIR/$label.cpu.pprof" >"$OUTDIR/$label.top.txt" 2>&1
	go tool pprof -top -nodecount=25 -sample_index=alloc_space \
		"$OUTDIR/$label.test" "$OUTDIR/$label.mem.pprof" \
		>"$OUTDIR/$label.alloc.txt" 2>&1
	rm -f "$OUTDIR/$label.test"
}

profile_one fig5batch 'BenchmarkFig5Batch$'
profile_one router-ipv4-gpu 'BenchmarkRouterIPv4GPU$'
profile_one fabric 'BenchmarkFabricWorkers/p1$'
profile_one fabric-p8 'BenchmarkFabricWorkers/p8$'

echo "== profiles written to $OUTDIR/"
ls -l "$OUTDIR"
echo "   (inspect interactively: go tool pprof $OUTDIR/<name>.cpu.pprof)"
