package packet

import "encoding/binary"

// Frame templates: the traffic generators synthesize millions of frames
// per simulated second that differ only in addresses and ports, so
// rebuilding every header (and summing the IPv4 checksum) per packet is
// pure per-packet overhead — the same overhead story the paper's §4
// batching removes from the real engine. A template prebuilds the whole
// frame once per (size, MAC pair); per packet the generator copies it
// and patches the four variable fields, fixing the IPv4 header checksum
// incrementally per RFC 1624. The result is byte-identical to a fresh
// BuildUDP4/BuildUDP6 (enforced by differential tests): the incremental
// update and the full sum compute the same ones-complement value, and
// both fold into the same canonical representative because neither sum
// is ever the all-zero word.

// Patch offsets within a UDP4 template frame (Ethernet at 0, IPv4 at
// EthHdrLen, UDP at EthHdrLen+IPv4HdrLen).
const (
	udp4CsumOff    = EthHdrLen + 10
	udp4SrcOff     = EthHdrLen + 12
	udp4DstOff     = EthHdrLen + 16
	udp4SrcPortOff = EthHdrLen + IPv4HdrLen
	udp4DstPortOff = EthHdrLen + IPv4HdrLen + 2
)

// UDP4Template is a prebuilt Ethernet/IPv4/UDP frame with zeroed
// addresses and ports, rendered per packet by copy + patch.
type UDP4Template struct {
	frame []byte
	// cs0 is the baseline IPv4 header checksum (addresses zero), the
	// starting point of the per-packet RFC 1624 fixup.
	cs0 uint16
}

// NewUDP4Template prebuilds the template for size-byte frames (size is
// clamped exactly as BuildUDP4 clamps it).
func NewUDP4Template(size int, srcMAC, dstMAC MAC) *UDP4Template {
	if size < EthHdrLen+IPv4HdrLen+UDPHdrLen {
		size = EthHdrLen + IPv4HdrLen + UDPHdrLen
	}
	f := BuildUDP4(make([]byte, size), size, srcMAC, dstMAC, 0, 0, 0, 0)
	return &UDP4Template{frame: f, cs0: binary.BigEndian.Uint16(f[udp4CsumOff:])}
}

// Size returns the rendered frame length.
func (t *UDP4Template) Size() int { return len(t.frame) }

// Render writes the template into dst (capacity must be ≥ Size) with
// the given addresses and ports patched in and the IPv4 checksum fixed
// up incrementally. It returns the frame slice, byte-identical to
// BuildUDP4(dst, size, ...) with the same parameters.
func (t *UDP4Template) Render(dst []byte, src, dstIP IPv4Addr, srcPort, dstPort uint16) []byte {
	b := dst[:len(t.frame)]
	copy(b, t.frame)
	binary.BigEndian.PutUint32(b[udp4SrcOff:], uint32(src))
	binary.BigEndian.PutUint32(b[udp4DstOff:], uint32(dstIP))
	binary.BigEndian.PutUint16(b[udp4SrcPortOff:], srcPort)
	binary.BigEndian.PutUint16(b[udp4DstPortOff:], dstPort)
	cs := ChecksumUpdate32(t.cs0, 0, uint32(src))
	cs = ChecksumUpdate32(cs, 0, uint32(dstIP))
	binary.BigEndian.PutUint16(b[udp4CsumOff:], cs)
	return b
}

// Patch offsets within a UDP6 template frame (IPv6 at EthHdrLen, UDP at
// EthHdrLen+IPv6HdrLen; no checksums to fix: BuildUDP6 leaves the UDP
// checksum zero and IPv6 has no header checksum).
const (
	udp6SrcOff     = EthHdrLen + 8
	udp6DstOff     = EthHdrLen + 24
	udp6SrcPortOff = EthHdrLen + IPv6HdrLen
	udp6DstPortOff = EthHdrLen + IPv6HdrLen + 2
)

// UDP6Template is the IPv6 counterpart of UDP4Template.
type UDP6Template struct {
	frame []byte
}

// NewUDP6Template prebuilds the template for size-byte frames.
func NewUDP6Template(size int, srcMAC, dstMAC MAC) *UDP6Template {
	if size < EthHdrLen+IPv6HdrLen+UDPHdrLen {
		size = EthHdrLen + IPv6HdrLen + UDPHdrLen
	}
	f := BuildUDP6(make([]byte, size), size, srcMAC, dstMAC, IPv6Addr{}, IPv6Addr{}, 0, 0)
	return &UDP6Template{frame: f}
}

// Size returns the rendered frame length.
func (t *UDP6Template) Size() int { return len(t.frame) }

// Render writes the template into dst with addresses and ports patched,
// byte-identical to BuildUDP6 with the same parameters.
func (t *UDP6Template) Render(dst []byte, src, dstIP IPv6Addr, srcPort, dstPort uint16) []byte {
	b := dst[:len(t.frame)]
	copy(b, t.frame)
	copy(b[udp6SrcOff:udp6SrcOff+16], src[:])
	copy(b[udp6DstOff:udp6DstOff+16], dstIP[:])
	binary.BigEndian.PutUint16(b[udp6SrcPortOff:], srcPort)
	binary.BigEndian.PutUint16(b[udp6DstPortOff:], dstPort)
	return b
}
