// Package sharedfixture enforces the parallel harness's isolation
// contract: an experiment pool job (a function passed to
// experiments.MapPoints) must not write package-level state.
//
// Jobs from one experiment run concurrently with jobs from every other
// experiment on the shared worker pool, and the harness's byte-identical
// guarantee (`psbench all -j N` == `-j 1`) holds only because each job
// is a pure function of its index plus read-only shared fixtures. A
// write to a package-level variable from a job is a data race and an
// order-dependence at once.
//
// The analyzer takes the function literal (or named function) passed to
// a MapPoints call as a job root, follows same-package calls reachable
// from it, and flags assignments and ++/-- whose target resolves to a
// package-level variable. Function literals passed to (*sync.Once).Do
// are exempt: that is exactly the sanctioned build-once pattern the
// shared fixtures use. Writes through closures bound to local variables
// are not followed (their bodies live outside the job literal); the
// -race CI job backstops that gap.
//
// Suppress a provably-safe write with
//
//	//pslint:ignore sharedfixture <reason>
package sharedfixture

import (
	"go/ast"
	"go/token"
	"go/types"

	"packetshader/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "sharedfixture",
	Doc:  "flag writes to package-level state from experiment pool jobs (fixtures are read-only after their sync.Once build)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	// Index same-package function and method declarations so job
	// reachability can follow direct calls.
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
	}

	v := &visitor{
		pass:     pass,
		decls:    decls,
		visited:  map[*types.Func]bool{},
		reported: map[token.Pos]bool{},
	}

	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || pass.IsTestFile(call.Pos()) || !isMapPoints(pass, call) || len(call.Args) == 0 {
			return true
		}
		switch job := call.Args[len(call.Args)-1].(type) {
		case *ast.FuncLit:
			v.checkBody(job.Body)
		case *ast.Ident:
			if fn, ok := pass.TypesInfo.Uses[job].(*types.Func); ok {
				v.checkFunc(fn)
			}
		}
		return true
	})
	return nil
}

type visitor struct {
	pass     *analysis.Pass
	decls    map[*types.Func]*ast.FuncDecl
	visited  map[*types.Func]bool
	reported map[token.Pos]bool
}

// checkBody walks one job-reachable body, flagging package-level writes
// and following same-package callees.
func (v *visitor) checkBody(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.AssignStmt:
			if node.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range node.Lhs {
				v.flagRoot(lhs)
			}
		case *ast.IncDecStmt:
			v.flagRoot(node.X)
		case *ast.CallExpr:
			if isOnceDo(v.pass, node) {
				// The sanctioned fixture pattern: sync.Once runs the
				// build exactly once, before any concurrent read.
				return false
			}
			if fn := callee(v.pass, node); fn != nil {
				v.checkFunc(fn)
			}
		}
		return true
	})
}

// checkFunc follows a call to a same-package function or method with a
// declaration in this package, once.
func (v *visitor) checkFunc(fn *types.Func) {
	if fn.Pkg() != v.pass.Pkg || v.visited[fn] {
		return
	}
	v.visited[fn] = true
	if decl := v.decls[fn]; decl != nil && decl.Body != nil {
		v.checkBody(decl.Body)
	}
}

// flagRoot reports e's base object if it resolves to a package-level
// variable. Index and field chains are peeled to their root
// (tbl[i] = x and cfg.Size = x both mutate the package var); writes
// through pointers or call results are unresolvable statically and
// skipped.
func (v *visitor) flagRoot(e ast.Expr) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			// A qualified identifier (pkg.Var) is itself the root.
			if id, ok := x.X.(*ast.Ident); ok {
				if _, isPkg := v.pass.TypesInfo.Uses[id].(*types.PkgName); isPkg {
					v.report(x.Sel)
					return
				}
			}
			e = x.X
		case *ast.Ident:
			v.report(x)
			return
		default:
			return
		}
	}
}

func (v *visitor) report(id *ast.Ident) {
	vr, ok := v.pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || vr.IsField() || vr.Pkg() == nil || vr.Parent() != vr.Pkg().Scope() {
		return
	}
	if v.reported[id.Pos()] {
		return
	}
	v.reported[id.Pos()] = true
	v.pass.Reportf(id.Pos(),
		"experiment job writes package-level state %s; jobs must be self-contained (fixtures are read-only after their sync.Once build)",
		vr.Name())
}

// isMapPoints reports whether call invokes a function named MapPoints
// (possibly generic-instantiated, possibly package-qualified).
func isMapPoints(pass *analysis.Pass, call *ast.CallExpr) bool {
	fun := call.Fun
	switch f := fun.(type) {
	case *ast.IndexExpr:
		fun = f.X
	case *ast.IndexListExpr:
		fun = f.X
	}
	var id *ast.Ident
	switch f := fun.(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return false
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	return ok && fn.Name() == "MapPoints"
}

// isOnceDo reports whether call is (*sync.Once).Do.
func isOnceDo(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok && fn.FullName() == "(*sync.Once).Do"
}

// callee resolves call's target to a *types.Func when it is a direct
// call of a named function or method; nil for closures bound to
// variables, interface methods, and built-ins.
func callee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	case *ast.IndexExpr:
		if base, ok := f.X.(*ast.Ident); ok {
			id = base
		}
	default:
		return nil
	}
	if id == nil {
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}
