package experiments

import (
	"fmt"

	"packetshader/internal/apps"
	"packetshader/internal/core"
	"packetshader/internal/ctrl"
	"packetshader/internal/model"
	"packetshader/internal/packet"
	"packetshader/internal/pktgen"
	"packetshader/internal/route"
	"packetshader/internal/sim"

	lookupv4 "packetshader/internal/lookup/ipv4"
)

// Churn storm shape: after warmup, a control script deletes a batch of
// installed prefixes every interval and re-adds the same batch on the
// next tick, alternating for the whole measurement window. Deleted
// prefixes blackhole their traffic until restored (unless a shorter
// covering prefix catches it), so the drop count is the honest
// data-path cost of each update strategy's convergence.
const (
	churnPrefixes = 10000
	churnSeed     = 77
	churnWarmup   = 2 * sim.Millisecond
	churnMeasure  = 8 * sim.Millisecond
	churnInterval = 100 * sim.Microsecond
	churnBatch    = 100 // route updates per batch
)

// churnBatches fills the measurement window, last tick excluded so the
// final batch lands inside the run.
const churnBatches = int(churnMeasure/churnInterval) - 1

// Churn measures the data-path disturbance of a live route-update storm
// driven through the control plane (internal/ctrl): packets dropped and
// lookup-latency disturbance per million route updates, incremental
// DIR-24-8 patching versus full rebuild-and-swap, against a quiet
// baseline.
func Churn() *Result { return runSolo(churn) }

const (
	churnQuiet = iota
	churnDynamic
	churnRebuild
)

func churn(c *Ctx) *Result {
	r := &Result{
		ID:     "churn",
		Title:  "Route-update storm disturbance (ctrl plane, IPv4, 64B, full load)",
		Header: []string{"Strategy", "Updates", "Cells/update", "App drops", "Drops/Mupdate", "p99 us", "Gbps"},
	}
	// The three scenarios are independent jobs; each generates its own
	// table (no shared fixture).
	rows := MapPoints(c, 3, func(i int, _ *Point) []string {
		return churnRun(i)
	})
	r.Rows = append(r.Rows, rows...)
	r.Note("storm: del/re-add batches of %d prefixes every %.0fus for %.0fms, driven as ctrl script events",
		churnBatch, churnInterval.Microseconds(), float64(churnMeasure)/float64(sim.Millisecond))
	r.Note("incremental patches only the covered cells; rebuild pays 2^24 cells per batch —")
	r.Note("both converge at the batch tick on the virtual clock, so the drop cost matches and")
	r.Note("the strategies separate on control-plane cells touched per update")
	return r
}

// churnRun runs one scenario and returns its table row.
func churnRun(strategy int) []string {
	entries := route.GenerateBGPTable(churnPrefixes, 64, churnSeed)
	env := sim.NewEnv()
	defer env.Close()
	cfg := core.DefaultConfig()
	cfg.PacketSize = 64
	app := &apps.IPv4Fwd{NumPorts: model.NumPorts}

	var applier ctrl.FIBApplier
	switch strategy {
	case churnDynamic:
		dyn, err := lookupv4.NewDynamic(entries)
		if err != nil {
			panic(err)
		}
		app.Table = &dyn.Table
		applier = &ctrl.DynamicFIB{T: dyn}
	case churnRebuild:
		fib, err := ctrl.NewRebuildFIB(entries, func(t *lookupv4.Table) { app.Table = t })
		if err != nil {
			panic(err)
		}
		app.Table = fib.FIB.Active()
		applier = fib
	default: // churnQuiet: static table, no storm
		tbl, err := lookupv4.Build(entries)
		if err != nil {
			panic(err)
		}
		app.Table = tbl
	}

	router := core.New(env, cfg, app)
	router.SetSource(&pktgen.UDP4Source{Size: 64, Seed: churnSeed, Table: entries})
	sink := pktgen.NewLatencySink()
	for _, p := range router.Engine.Ports {
		p.Tx.OnComplete = func(b *packet.Buf, at sim.Time) { sink.Observe(b, at) }
	}
	router.Start()
	env.Run(sim.Time(churnWarmup))
	router.ResetMeasurement()

	var ctl *ctrl.Controller
	name := "quiet baseline"
	if applier != nil {
		var err error
		ctl, err = ctrl.Attach(env, router, churnScript(entries), ctrl.Config{FIB: applier})
		if err != nil {
			panic(err)
		}
		if strategy == churnDynamic {
			name = "incremental"
		} else {
			name = "rebuild+swap"
		}
	}
	env.Run(sim.Time(churnWarmup + churnMeasure))

	var updates, cells uint64
	if ctl != nil {
		if errs := ctl.Errors(); len(errs) > 0 {
			panic(fmt.Sprintf("churn: %d ctrl errors, first: %s", len(errs), errs[0]))
		}
		updates = ctl.RoutesApplied()
		cells = ctl.CellsTouched()
	}
	perUpdate, dropsPerM := "-", "-"
	if updates > 0 {
		perUpdate = fmt.Sprintf("%.0f", float64(cells)/float64(updates))
		dropsPerM = fmt.Sprintf("%.0f", float64(router.Stats.Drops)/float64(updates)*1e6)
	}
	return []string{name, fmt.Sprintf("%d", updates), perUpdate,
		fmt.Sprintf("%d", router.Stats.Drops), dropsPerM,
		fmt.Sprintf("%.0f", sink.PercentileMicros(0.99)),
		fmt.Sprintf("%.1f", router.DeliveredGbps())}
}

// churnScript builds the storm: the same victim set (spread across the
// whole table, deduplicated by prefix) is deleted on odd ticks and
// re-added on even ones.
func churnScript(entries []route.Entry) *ctrl.Script {
	victims := make([]route.Entry, 0, churnBatch)
	seen := make(map[route.Prefix]bool, churnBatch)
	step := len(entries)/churnBatch + 1
	for i := 0; len(victims) < churnBatch && i < len(entries); i++ {
		e := entries[(i*step)%len(entries)]
		if seen[e.Prefix] {
			continue
		}
		seen[e.Prefix] = true
		victims = append(victims, e)
	}
	s := ctrl.NewScript()
	for b := 0; b < churnBatches; b++ {
		at := sim.Duration(b+1) * churnInterval
		ups := make([]ctrl.RouteUpdate, len(victims))
		for i, e := range victims {
			if b%2 == 0 {
				ups[i] = ctrl.RouteUpdate{Act: ctrl.ActDel, Prefix: e.Prefix}
			} else {
				ups[i] = ctrl.RouteUpdate{Act: ctrl.ActAdd, Prefix: e.Prefix, NextHop: e.NextHop}
			}
		}
		s.Add(ctrl.RouteBatch(at, ups))
	}
	return s
}
