package ipsec

import (
	"bytes"
	stdaes "crypto/aes"
	"crypto/cipher"
	stdhmac "crypto/hmac"
	stdsha1 "crypto/sha1"
	"encoding/binary"
	"encoding/hex"
	"testing"
	"testing/quick"

	"packetshader/internal/packet"
)

// ---------------------------------------------------------------------------
// AES
// ---------------------------------------------------------------------------

func TestAESFIPS197Vector(t *testing.T) {
	// FIPS-197 appendix C.1.
	key, _ := hex.DecodeString("000102030405060708090a0b0c0d0e0f")
	pt, _ := hex.DecodeString("00112233445566778899aabbccddeeff")
	want, _ := hex.DecodeString("69c4e0d86a7b0430d8cdb78070b4c55a")
	a := NewAES(key)
	got := make([]byte, 16)
	a.Encrypt(got, pt)
	if !bytes.Equal(got, want) {
		t.Errorf("AES = %x, want %x", got, want)
	}
}

func TestAESMatchesStdlib(t *testing.T) {
	f := func(key [16]byte, block [16]byte) bool {
		ours := NewAES(key[:])
		std, err := stdaes.NewCipher(key[:])
		if err != nil {
			return false
		}
		a, b := make([]byte, 16), make([]byte, 16)
		ours.Encrypt(a, block[:])
		std.Encrypt(b, block[:])
		return bytes.Equal(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAESInPlace(t *testing.T) {
	key := make([]byte, 16)
	a := NewAES(key)
	buf := make([]byte, 16)
	for i := range buf {
		buf[i] = byte(i)
	}
	want := make([]byte, 16)
	a.Encrypt(want, buf)
	a.Encrypt(buf, buf) // aliased
	if !bytes.Equal(buf, want) {
		t.Error("in-place encryption differs")
	}
}

func TestAESKeyLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewAES(15 bytes) did not panic")
		}
	}()
	NewAES(make([]byte, 15))
}

func TestCTRMatchesStdlib(t *testing.T) {
	f := func(key [16]byte, nonce uint32, iv uint64, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		ours := NewAES(key[:])
		got := make([]byte, len(data))
		ours.CTR(got, data, nonce, iv)

		std, _ := stdaes.NewCipher(key[:])
		var ctrBlock [16]byte
		binary.BigEndian.PutUint32(ctrBlock[0:4], nonce)
		binary.BigEndian.PutUint64(ctrBlock[4:12], iv)
		binary.BigEndian.PutUint32(ctrBlock[12:16], 1)
		want := make([]byte, len(data))
		cipher.NewCTR(std, ctrBlock[:]).XORKeyStream(want, data)
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCTRRoundTrip(t *testing.T) {
	f := func(key [16]byte, nonce uint32, iv uint64, data []byte) bool {
		a := NewAES(key[:])
		ct := make([]byte, len(data))
		a.CTR(ct, data, nonce, iv)
		pt := make([]byte, len(data))
		a.CTR(pt, ct, nonce, iv)
		return bytes.Equal(pt, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// ---------------------------------------------------------------------------
// SHA-1 / HMAC
// ---------------------------------------------------------------------------

func TestSHA1KnownVectors(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", "da39a3ee5e6b4b0d3255bfef95601890afd80709"},
		{"abc", "a9993e364706816aba3e25717850c26c9cd0d89d"},
		{"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
			"84983e441c3bd26ebaae4aa1f95129e5e54670f1"},
	}
	for _, c := range cases {
		got := SHA1Digest([]byte(c.in))
		if hex.EncodeToString(got[:]) != c.want {
			t.Errorf("SHA1(%q) = %x, want %s", c.in, got, c.want)
		}
	}
}

func TestSHA1MillionA(t *testing.T) {
	s := NewSHA1()
	chunk := bytes.Repeat([]byte{'a'}, 1000)
	for i := 0; i < 1000; i++ {
		s.Write(chunk)
	}
	got := hex.EncodeToString(s.Sum(nil))
	if got != "34aa973cd4c4daa4f61eeb2bdbad27316534016f" {
		t.Errorf("SHA1(1M 'a') = %s", got)
	}
}

func TestSHA1MatchesStdlibStreaming(t *testing.T) {
	f := func(chunks [][]byte) bool {
		ours := NewSHA1()
		std := stdsha1.New()
		for _, c := range chunks {
			ours.Write(c)
			std.Write(c)
		}
		return bytes.Equal(ours.Sum(nil), std.Sum(nil))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSHA1SumDoesNotConsumeState(t *testing.T) {
	s := NewSHA1()
	s.Write([]byte("hello "))
	first := s.Sum(nil)
	second := s.Sum(nil)
	if !bytes.Equal(first, second) {
		t.Error("repeated Sum differs")
	}
	s.Write([]byte("world"))
	want := SHA1Digest([]byte("hello world"))
	if !bytes.Equal(s.Sum(nil), want[:]) {
		t.Error("state corrupted by Sum")
	}
}

func TestHMACSHA1RFC2202Vectors(t *testing.T) {
	cases := []struct{ key, data, want string }{
		{"0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b", "4869205468657265",
			"b617318655057264e28bc0b6fb378c8ef146be00"},
		{"4a656665", "7768617420646f2079612077616e7420666f72206e6f7468696e673f",
			"effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"},
	}
	for i, c := range cases {
		key, _ := hex.DecodeString(c.key)
		data, _ := hex.DecodeString(c.data)
		h := NewHMACSHA1(key)
		got := h.Sum(data)
		if hex.EncodeToString(got[:]) != c.want {
			t.Errorf("vector %d: %x, want %s", i, got, c.want)
		}
	}
}

func TestHMACMatchesStdlib(t *testing.T) {
	f := func(key, data []byte) bool {
		ours := NewHMACSHA1(key)
		got := ours.Sum(data)
		std := stdhmac.New(stdsha1.New, key)
		std.Write(data)
		return bytes.Equal(got[:], std.Sum(nil))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHMACLongKey(t *testing.T) {
	key := bytes.Repeat([]byte{0xaa}, 80) // > block size, must be hashed
	ours := NewHMACSHA1(key)
	std := stdhmac.New(stdsha1.New, key)
	std.Write([]byte("msg"))
	got := ours.Sum([]byte("msg"))
	if !bytes.Equal(got[:], std.Sum(nil)) {
		t.Error("long-key HMAC differs from stdlib")
	}
}

func TestHMACContextReusable(t *testing.T) {
	h := NewHMACSHA1([]byte("key"))
	a1 := h.Sum([]byte("one"))
	_ = h.Sum([]byte("two"))
	a2 := h.Sum([]byte("one"))
	if a1 != a2 {
		t.Error("HMAC context not reusable")
	}
}

func TestICVTruncation(t *testing.T) {
	h := NewHMACSHA1([]byte("k"))
	full := h.Sum([]byte("m"))
	icv := h.ICV([]byte("m"))
	if !bytes.Equal(icv[:], full[:12]) {
		t.Error("ICV is not the 96-bit truncation")
	}
}

// ---------------------------------------------------------------------------
// ESP
// ---------------------------------------------------------------------------

func testSA() (*SA, *SA) {
	enc := []byte("0123456789abcdef")
	auth := []byte("authauthauthauthauth")
	out := NewSA(0x1001, 0xdeadbeef, enc, auth, 0x0A000001, 0x0A000002)
	in := NewSA(0x1001, 0xdeadbeef, enc, auth, 0x0A000001, 0x0A000002)
	return out, in
}

func innerPacket(size int) []byte {
	var buf [2048]byte
	frame := packet.BuildUDP4(buf[:], size+packet.EthHdrLen,
		packet.MAC{}, packet.MAC{}, 0x0B000001, 0x0C000001, 7, 9)
	inner := make([]byte, size)
	copy(inner, frame[packet.EthHdrLen:])
	return inner
}

func TestESPRoundTrip(t *testing.T) {
	sender, receiver := testSA()
	inner := innerPacket(100)
	dst := make([]byte, 2048)
	outer, err := sender.Encap(dst, inner)
	if err != nil {
		t.Fatal(err)
	}
	got, err := receiver.Decap(outer)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, inner) {
		t.Error("decapped inner differs")
	}
}

func TestESPOuterHeaderFields(t *testing.T) {
	sender, _ := testSA()
	outer, err := sender.Encap(make([]byte, 2048), innerPacket(64))
	if err != nil {
		t.Fatal(err)
	}
	var hdr packet.IPv4Hdr
	if _, err := hdr.Decode(outer); err != nil {
		t.Fatal(err)
	}
	if hdr.Protocol != packet.ProtoESP {
		t.Errorf("protocol = %d", hdr.Protocol)
	}
	if hdr.Src != sender.LocalIP || hdr.Dst != sender.PeerIP {
		t.Errorf("outer addresses %v→%v", hdr.Src, hdr.Dst)
	}
	if int(hdr.TotalLen) != len(outer) {
		t.Errorf("TotalLen = %d, len = %d", hdr.TotalLen, len(outer))
	}
	if !packet.VerifyIPv4Checksum(outer) {
		t.Error("outer checksum invalid")
	}
}

func TestESPOverheadMatches(t *testing.T) {
	sender, _ := testSA()
	for _, size := range []int{40, 41, 42, 43, 64, 100, 1400} {
		inner := innerPacket(size)
		outer, err := sender.Encap(make([]byte, 2048), inner)
		if err != nil {
			t.Fatal(err)
		}
		if len(outer) != size+EncapOverhead(size) {
			t.Errorf("size %d: outer %d, want %d", size, len(outer), size+EncapOverhead(size))
		}
		// Trailer alignment (RFC 3686: 4-byte).
		espPayload := len(outer) - packet.IPv4HdrLen - espHdrLen - espIVLen - ICVSize
		if espPayload%4 != 0 {
			t.Errorf("size %d: ESP plaintext %d not 4-byte aligned", size, espPayload)
		}
	}
}

func TestESPCiphertextDiffersFromPlaintext(t *testing.T) {
	sender, _ := testSA()
	inner := innerPacket(200)
	outer, _ := sender.Encap(make([]byte, 2048), inner)
	body := outer[packet.IPv4HdrLen+espHdrLen+espIVLen:]
	if bytes.Contains(body, inner[:40]) {
		t.Error("plaintext visible in ESP body")
	}
}

func TestESPUniqueSequenceAndIV(t *testing.T) {
	sender, _ := testSA()
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		outer, _ := sender.Encap(make([]byte, 2048), innerPacket(64))
		seq := binary.BigEndian.Uint32(outer[packet.IPv4HdrLen+4:])
		iv := binary.BigEndian.Uint64(outer[packet.IPv4HdrLen+8:])
		if seq != uint32(i+1) {
			t.Fatalf("seq = %d, want %d", seq, i+1)
		}
		if seen[iv] {
			t.Fatalf("IV reuse at packet %d", i)
		}
		seen[iv] = true
	}
}

func TestESPTamperDetected(t *testing.T) {
	sender, receiver := testSA()
	outer, _ := sender.Encap(make([]byte, 2048), innerPacket(80))
	// Flip one ciphertext bit.
	outer[packet.IPv4HdrLen+espHdrLen+espIVLen+5] ^= 0x01
	if _, err := receiver.Decap(outer); err != ErrAuth {
		t.Errorf("tampered packet: err = %v, want ErrAuth", err)
	}
}

func TestESPReplayRejected(t *testing.T) {
	sender, receiver := testSA()
	outer, _ := sender.Encap(make([]byte, 2048), innerPacket(80))
	cp := make([]byte, len(outer))
	copy(cp, outer)
	if _, err := receiver.Decap(outer); err != nil {
		t.Fatal(err)
	}
	if _, err := receiver.Decap(cp); err != ErrReplay {
		t.Errorf("replay: err = %v, want ErrReplay", err)
	}
}

func TestESPOutOfOrderWithinWindow(t *testing.T) {
	sender, receiver := testSA()
	var pkts [][]byte
	for i := 0; i < 10; i++ {
		outer, _ := sender.Encap(make([]byte, 2048), innerPacket(64))
		cp := make([]byte, len(outer))
		copy(cp, outer)
		pkts = append(pkts, cp)
	}
	// Deliver 9 first, then the rest out of order.
	order := []int{9, 3, 7, 0, 5, 1, 8, 2, 6, 4}
	for _, i := range order {
		if _, err := receiver.Decap(pkts[i]); err != nil {
			t.Fatalf("packet %d rejected: %v", i, err)
		}
	}
}

func TestESPStaleBeyondWindowRejected(t *testing.T) {
	sender, receiver := testSA()
	first, _ := sender.Encap(make([]byte, 2048), innerPacket(64))
	firstCp := make([]byte, len(first))
	copy(firstCp, first)
	// Advance far past the window.
	for i := 0; i < 100; i++ {
		outer, _ := sender.Encap(make([]byte, 2048), innerPacket(64))
		if _, err := receiver.Decap(outer); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := receiver.Decap(firstCp); err != ErrReplay {
		t.Errorf("stale packet: err = %v, want ErrReplay", err)
	}
}

func TestESPWrongSPI(t *testing.T) {
	sender, _ := testSA()
	other := NewSA(0x2002, 0xdeadbeef, []byte("0123456789abcdef"),
		[]byte("auth"), 1, 2)
	outer, _ := sender.Encap(make([]byte, 2048), innerPacket(64))
	if _, err := other.Decap(outer); err != ErrBadSPI {
		t.Errorf("err = %v, want ErrBadSPI", err)
	}
}

func TestESPMalformedTooShort(t *testing.T) {
	_, receiver := testSA()
	short := make([]byte, packet.IPv4HdrLen+10)
	hdr := packet.IPv4Hdr{IHL: 5, TotalLen: uint16(len(short)), TTL: 64,
		Protocol: packet.ProtoESP, Src: 1, Dst: 2}
	hdr.Encode(short)
	if _, err := receiver.Decap(short); err != ErrMalformed {
		t.Errorf("err = %v, want ErrMalformed", err)
	}
}

func TestESPNonESPProtocol(t *testing.T) {
	_, receiver := testSA()
	var buf [128]byte
	frame := packet.BuildUDP4(buf[:], 64, packet.MAC{}, packet.MAC{}, 1, 2, 3, 4)
	if _, err := receiver.Decap(frame[packet.EthHdrLen:]); err != ErrMalformed {
		t.Errorf("err = %v, want ErrMalformed", err)
	}
}

// Property: Encap→Decap is the identity for any payload size/content.
func TestESPRoundTripProperty(t *testing.T) {
	f := func(payload []byte, sizeSeed uint16) bool {
		sender, receiver := testSA()
		size := 28 + int(sizeSeed)%1400
		inner := innerPacket(size)
		if len(payload) > 0 {
			copy(inner[28:], payload)
		}
		outer, err := sender.Encap(make([]byte, 2048), inner)
		if err != nil {
			return false
		}
		got, err := receiver.Decap(outer)
		return err == nil && bytes.Equal(got, inner)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestReplayWindowUnit(t *testing.T) {
	var w replayWindow
	if w.check(0) {
		t.Error("seq 0 accepted")
	}
	if !w.check(1) {
		t.Error("seq 1 rejected on empty window")
	}
	w.advance(1)
	if w.check(1) {
		t.Error("seq 1 accepted twice")
	}
	w.advance(100)
	if w.check(100) || !w.check(99) || !w.check(37) {
		t.Error("window state wrong after jump to 100")
	}
	if w.check(36) {
		t.Error("seq 36 (100-64) inside 64-bit window accepted") // off=64 ≥ size
	}
	w.advance(99)
	if w.check(99) {
		t.Error("seq 99 accepted twice")
	}
}

func BenchmarkAESCTR1500B(b *testing.B) {
	a := NewAES(make([]byte, 16))
	buf := make([]byte, 1500)
	b.SetBytes(1500)
	for i := 0; i < b.N; i++ {
		a.CTR(buf, buf, 1, uint64(i))
	}
}

func BenchmarkHMACSHA1_1500B(b *testing.B) {
	h := NewHMACSHA1([]byte("key"))
	buf := make([]byte, 1500)
	b.SetBytes(1500)
	for i := 0; i < b.N; i++ {
		_ = h.ICV(buf)
	}
}

func BenchmarkESPEncap64B(b *testing.B) {
	sender, _ := testSA()
	inner := innerPacket(64)
	dst := make([]byte, 2048)
	for i := 0; i < b.N; i++ {
		if _, err := sender.Encap(dst, inner); err != nil {
			b.Fatal(err)
		}
	}
}

// TestDecapNeverPanicsOnGarbage: arbitrary bytes (including valid-ish
// IPv4/ESP prefixes) must be rejected with errors, never a panic.
func TestDecapNeverPanicsOnGarbage(t *testing.T) {
	_, receiver := testSA()
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Decap panicked: %v", r)
			}
		}()
		_, _ = receiver.Decap(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestDecapTruncatedESP: every truncation of a valid ESP packet fails
// cleanly.
func TestDecapTruncatedESP(t *testing.T) {
	sender, receiver := testSA()
	outer, _ := sender.Encap(make([]byte, 2048), innerPacket(120))
	for n := 0; n < len(outer); n++ {
		cp := make([]byte, n)
		copy(cp, outer[:n])
		if _, err := receiver.Decap(cp); err == nil {
			t.Fatalf("truncated ESP (%d of %d bytes) accepted", n, len(outer))
		}
	}
}

// TestDecapBitflipSweep: flipping any single byte of a valid ESP packet
// must be detected (header fields → malformed/bad SPI/replay; body/ICV
// → auth failure). No flip may yield a successful decap of wrong data.
func TestDecapBitflipSweep(t *testing.T) {
	inner := innerPacket(64)
	sender, _ := testSA()
	outer, _ := sender.Encap(make([]byte, 2048), inner)
	for pos := 0; pos < len(outer); pos++ {
		// Fresh receiver each time (replay window state).
		_, receiver := testSA()
		cp := make([]byte, len(outer))
		copy(cp, outer)
		cp[pos] ^= 0x01
		got, err := receiver.Decap(cp)
		if err == nil {
			// Flips inside the outer IP header don't break ESP underneath
			// (TOS etc.); the decapped inner must still be intact then.
			if string(got) != string(inner) {
				t.Fatalf("bit flip at %d yielded corrupted plaintext", pos)
			}
		}
	}
}
