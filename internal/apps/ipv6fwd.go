package apps

import (
	"packetshader/internal/core"
	"packetshader/internal/hw/gpu"
	"packetshader/internal/lookup/ipv6"
	"packetshader/internal/model"
	"packetshader/internal/packet"
	"packetshader/internal/route"
)

// IPv6Fwd is the §6.2.2 IPv6 forwarder: binary search on prefix lengths
// over a 200k-prefix table. Each lookup costs seven dependent memory
// accesses, making this the paper's memory-intensive showcase: the GPU's
// latency hiding gives its largest win here (Figure 11b).
type IPv6Fwd struct {
	Table    *ipv6.Table
	NumPorts int
	SlowPath uint64
}

type ipv6State struct {
	his, los []uint64
	hops     []uint16
}

// Name implements core.App.
func (a *IPv6Fwd) Name() string { return "ipv6-forwarding" }

// Kernel implements core.App.
func (a *IPv6Fwd) Kernel() *gpu.KernelSpec { return &gpu.KernelIPv6 }

// PreShade parses packets, decrements hop limits, and gathers the
// 128-bit destinations (four times the copy volume of IPv4, §6.2.2).
func (a *IPv6Fwd) PreShade(c *core.Chunk) core.PreResult {
	n := len(c.Bufs)
	st, ok := c.State.(*ipv6State)
	if !ok {
		st = &ipv6State{}
		c.State = st
	}
	st.his = scratch(st.his, n)
	st.los = scratch(st.los, n)
	st.hops = scratch(st.hops, n)
	var d packet.Decoder
	for i, b := range c.Bufs {
		c.OutPorts[i] = -1
		if err := d.DecodeFast(b.Data); err != nil || !d.Has(packet.LayerIPv6) {
			a.SlowPath++
			continue
		}
		if d.IPv6.HopLimit <= 1 {
			a.SlowPath++
			continue
		}
		b.Data[packet.EthHdrLen+7]-- // hop limit (no checksum in IPv6)
		c.OutPorts[i] = -2
		st.his[i] = d.IPv6.Dst.Hi()
		st.los[i] = d.IPv6.Dst.Lo()
	}
	return core.PreResult{
		CPUCycles: float64(n) * model.AppIPv6PreCycles,
		Threads:   n,
		InBytes:   n * 16,
		OutBytes:  n * 2,
	}
}

// RunKernel runs the batched binary-search-on-length lookup.
func (a *IPv6Fwd) RunKernel(c *core.Chunk) {
	st := c.State.(*ipv6State)
	a.Table.LookupBatch(st.his, st.los, st.hops)
}

// PostShade maps hops to ports.
func (a *IPv6Fwd) PostShade(c *core.Chunk) float64 {
	st := c.State.(*ipv6State)
	for i := range c.Bufs {
		if c.OutPorts[i] != -2 {
			continue
		}
		if st.hops[i] == route.NoRoute {
			c.OutPorts[i] = -1
			continue
		}
		c.OutPorts[i] = int(st.hops[i]) % a.NumPorts
	}
	return float64(len(c.Bufs)) * model.AppIPv6PostCycles
}

// CPUWork performs the seven-probe lookups on the CPU.
func (a *IPv6Fwd) CPUWork(c *core.Chunk) float64 {
	st := c.State.(*ipv6State)
	cycles := 0.0
	for i := range c.Bufs {
		if c.OutPorts[i] != -2 {
			continue
		}
		hop, probes := a.Table.LookupCounted(st.his[i], st.los[i])
		st.hops[i] = hop
		// Charge the paper's seven dependent accesses even when our
		// search tree is shallower (the functional table indexes only
		// the lengths present; the 2010 implementation probed the full
		// 1..128 hierarchy).
		if probes < model.IPv6LookupProbes {
			probes = model.IPv6LookupProbes
		}
		cycles += float64(probes) * (model.MemAccessCycles()*model.MemContentionFactor +
			model.IPv6LookupComputeCycles)
	}
	return cycles
}
