// Package pcie models the server's I/O fabric (Figure 3): per-node Intel
// 5520 I/O hubs with the dual-IOH throughput asymmetry of §3.2, and
// per-device PCIe links with the α+size/β transfer-time model fitted to
// Table 1. The IOH is the resource whose saturation produces the paper's
// ≈40 Gbps forwarding plateau (§4.6) and the 20 Gbps IPsec plateau
// (§6.3).
//
// Each hub has two directional engines: up (device→host: RX DMA, GPU
// device-to-host copies) at 30 Gbps and down (host→device: TX DMA, GPU
// host-to-device copies) at 60 Gbps. Down transfers additionally consume
// up capacity (completion/credit traffic on the congested return path —
// the dual-IOH erratum), with coupling factor model.IOHKappa. NIC DMA
// queues FIFO on the engines (it is the throttle point); GPU copies use
// "express" service — PCIe TLP arbitration interleaves their small
// transfers long before a bulk DMA train drains — which reserves the
// same capacity but does not wait behind the NIC backlog.
package pcie

import (
	"strconv"

	"packetshader/internal/model"
	"packetshader/internal/sim"
)

// IOH is one I/O hub.
type IOH struct {
	Node int
	up   *sim.Server
	down *sim.Server
}

// NewIOH creates the hub for a NUMA node. The engines carry the node
// number in their names so per-resource occupancy traces distinguish
// the hubs.
func NewIOH(env *sim.Env, node int) *IOH {
	n := strconv.Itoa(node)
	return &IOH{
		Node: node,
		up:   sim.NewServer(env, "ioh"+n+"-up"),
		down: sim.NewServer(env, "ioh"+n+"-down"),
	}
}

// Per-byte-count transfer-time tables: the NIC TX path schedules one
// down-transfer per packet, so the math.Round inside DurationFromSeconds
// dominated CPU profiles. The tables cover every per-packet byte count
// (frame + descriptor); larger (batched) transfers fall through to the
// reference expressions. Built once at init from those same expressions,
// so every memoized value is bit-identical; read-only afterwards.
const timeLUTBytes = 4096

var upTimeLUT, downTimeLUT, kappaUpTimeLUT = func() (up, down, kup []sim.Duration) {
	up = make([]sim.Duration, timeLUTBytes)
	down = make([]sim.Duration, timeLUTBytes)
	kup = make([]sim.Duration, timeLUTBytes)
	for b := range up {
		up[b] = upTimeSlow(b)
		down[b] = downTimeSlow(b)
		kup[b] = sim.Duration(model.IOHKappa * float64(up[b]))
	}
	return
}()

func upTimeSlow(bytes int) sim.Duration {
	return sim.DurationFromSeconds(float64(bytes) / model.IOHUpBps)
}

func downTimeSlow(bytes int) sim.Duration {
	return sim.DurationFromSeconds(float64(bytes) / model.IOHDownBps)
}

func upTime(bytes int) sim.Duration {
	if bytes >= 0 && bytes < timeLUTBytes {
		return upTimeLUT[bytes]
	}
	return upTimeSlow(bytes)
}

func downTime(bytes int) sim.Duration {
	if bytes >= 0 && bytes < timeLUTBytes {
		return downTimeLUT[bytes]
	}
	return downTimeSlow(bytes)
}

// kappaUpTime is the coupled return-path charge of a down transfer.
func kappaUpTime(bytes int) sim.Duration {
	if bytes >= 0 && bytes < timeLUTBytes {
		return kappaUpTimeLUT[bytes]
	}
	return sim.Duration(model.IOHKappa * float64(upTime(bytes)))
}

// ScheduleUp reserves FIFO fabric time for a device→host transfer and
// returns its completion time.
func (i *IOH) ScheduleUp(bytes int) sim.Time {
	return i.up.Schedule(upTime(bytes))
}

// ScheduleDown reserves FIFO fabric time for a host→device transfer.
// The coupled return-path cost is charged to the up engine.
func (i *IOH) ScheduleDown(bytes int) sim.Time {
	i.up.Schedule(kappaUpTime(bytes))
	return i.down.Schedule(downTime(bytes))
}

// ExpressUp reserves up capacity but completes after just the service
// time (interleaved arbitration: no waiting behind bulk NIC DMA).
func (i *IOH) ExpressUp(bytes int) sim.Time {
	t := upTime(bytes)
	i.up.Schedule(t)
	return i.up.Now() + sim.Time(t)
}

// ExpressDown is the host→device express path.
func (i *IOH) ExpressDown(bytes int) sim.Time {
	i.up.Schedule(kappaUpTime(bytes))
	t := downTime(bytes)
	i.down.Schedule(t)
	return i.down.Now() + sim.Time(t)
}

// UpUtilization and DownUtilization report engine utilization since t0
// (may exceed 1 transiently: reservations count when scheduled).
func (i *IOH) UpUtilization(t0 sim.Time) float64   { return i.up.Utilization(t0) }
func (i *IOH) DownUtilization(t0 sim.Time) float64 { return i.down.Utilization(t0) }

// UpBusy exposes cumulative up-engine work (tests).
func (i *IOH) UpBusy() sim.Duration { return i.up.BusyTime() }

// DownBusy exposes cumulative down-engine work (tests).
func (i *IOH) DownBusy() sim.Duration { return i.down.BusyTime() }

// Link is one PCIe device link (x16 for a GPU). PCIe is full duplex, so
// each direction is an independent serializing engine. GPU copies cross
// the IOH via the express path.
type Link struct {
	up, down *sim.Server
	ioh      *IOH

	// retrain is the β-divisor of the link's current training state: 1
	// (or 0) means fully trained; 2 models a retrain that renegotiated
	// half the lanes, doubling the per-byte term of the α+size/β model
	// while leaving the fixed α untouched. Set via SetRetrain by the
	// fault injector.
	retrain int
}

// NewLink attaches a device link to an IOH.
func NewLink(env *sim.Env, ioh *IOH, name string) *Link {
	return &Link{
		up:   sim.NewServer(env, name+"-up"),
		down: sim.NewServer(env, name+"-down"),
		ioh:  ioh,
	}
}

// CopyH2D blocks p for a host→device DMA of size bytes: the transfer
// occupies the link (Table 1 time) and consumes IOH capacity; it
// completes when the slower of the two is done.
func (l *Link) CopyH2D(p *sim.Proc, size int) {
	p.SleepUntil(l.ScheduleH2D(size))
}

// CopyD2H blocks p for a device→host DMA.
func (l *Link) CopyD2H(p *sim.Proc, size int) {
	p.SleepUntil(l.ScheduleD2H(size))
}

// SetRetrain sets the link's β-divisor: 1 restores full speed, 2 halves
// the effective byte rate (a degraded retrain after link errors).
// Divisors below 1 are clamped to 1. Transfers already scheduled keep
// their reserved times; only new reservations see the new rate.
func (l *Link) SetRetrain(divisor int) {
	if divisor < 1 {
		divisor = 1
	}
	l.retrain = divisor
}

// RetrainDivisor reports the current β-divisor (1 = healthy).
func (l *Link) RetrainDivisor() int {
	if l.retrain < 1 {
		return 1
	}
	return l.retrain
}

// h2dTime is the host→device transfer time under the current training
// state: the calibrated α+size/β time plus (divisor-1) extra copies of
// the size/β term.
func (l *Link) h2dTime(size int) sim.Duration {
	t := model.H2DTime(size)
	if l.retrain > 1 {
		t += sim.DurationFromSeconds(float64(l.retrain-1) * float64(size) / model.PCIeH2DBetaBps)
	}
	return t
}

func (l *Link) d2hTime(size int) sim.Duration {
	t := model.D2HTime(size)
	if l.retrain > 1 {
		t += sim.DurationFromSeconds(float64(l.retrain-1) * float64(size) / model.PCIeD2HBetaBps)
	}
	return t
}

// ScheduleH2D is the non-blocking variant (for pipelined streams):
// it reserves both resources and returns the completion time.
func (l *Link) ScheduleH2D(size int) sim.Time {
	return maxTime(l.down.Schedule(l.h2dTime(size)), l.ioh.ExpressDown(size))
}

// ScheduleD2H reserves a device→host transfer and returns completion.
func (l *Link) ScheduleD2H(size int) sim.Time {
	return maxTime(l.up.Schedule(l.d2hTime(size)), l.ioh.ExpressUp(size))
}

// UpBusy exposes cumulative device→host link work.
func (l *Link) UpBusy() sim.Duration { return l.up.BusyTime() }

// DownBusy exposes cumulative host→device link work.
func (l *Link) DownBusy() sim.Duration { return l.down.BusyTime() }

// ScheduleD2HAt reserves a device→host transfer that may not start
// before notBefore (pipelined copy-out after a kernel completes).
func (l *Link) ScheduleD2HAt(notBefore sim.Time, size int) sim.Time {
	done := l.up.ScheduleAt(notBefore, l.d2hTime(size))
	express := l.ioh.ExpressUp(size)
	if express < notBefore {
		express = notBefore
	}
	return maxTime(done, express)
}

func maxTime(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}
