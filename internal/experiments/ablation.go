package experiments

import (
	"fmt"

	"packetshader/internal/apps"
	"packetshader/internal/core"
	"packetshader/internal/model"
	"packetshader/internal/packet"
	"packetshader/internal/pktgen"
	"packetshader/internal/pktio"
	"packetshader/internal/sim"
)

// Ablation quantifies the §4.3-§5.4 design choices one at a time on the
// IPv6 forwarding workload (64B, full load): the huge packet buffer vs
// the skb path, software prefetch, cache-line alignment + per-queue
// counters, chunk pipelining, gather/scatter, concurrent copy and
// execution, and opportunistic offloading (latency at light load).
func Ablation() *Result {
	r := &Result{
		ID:     "ablation",
		Title:  "Design-choice ablations (IPv6 forwarding, 64B)",
		Header: []string{"Configuration", "Gbps", "vs full"},
	}
	entries, tbl := IPv6Fixture()
	src := &pktgen.UDP6Source{Size: 64, Seed: 31, Table: entries}

	run := func(tweak func(*core.Config)) float64 {
		env := sim.NewEnv()
		cfg := core.DefaultConfig()
		cfg.PacketSize = 64
		if tweak != nil {
			tweak(&cfg)
		}
		app := &apps.IPv6Fwd{Table: tbl, NumPorts: model.NumPorts}
		router := core.New(env, cfg, app)
		router.SetSource(src)
		router.Start()
		env.Run(sim.Time(4 * sim.Millisecond))
		return router.DeliveredGbps()
	}

	full := run(nil)
	add := func(name string, g float64) {
		r.AddRow(name, fmt.Sprintf("%.1f", g), fmt.Sprintf("%+.0f%%", (g/full-1)*100))
	}
	add("full PacketShader (CPU+GPU)", full)
	add("- gather/scatter (1 chunk/launch)", run(func(c *core.Config) { c.GatherMax = 1 }))
	add("- chunk pipelining", run(func(c *core.Config) { c.Pipelining = false }))
	add("+ concurrent copy & execution (4 streams)", run(func(c *core.Config) { c.Streams = 4 }))
	add("- software prefetch", run(func(c *core.Config) { c.IO.Prefetch = false }))
	add("- queue alignment & per-queue counters", run(func(c *core.Config) {
		c.IO.AlignQueueData = false
		c.IO.PerQueueCounters = false
	}))
	add("skb buffers instead of huge buffers", run(func(c *core.Config) { c.IO.Mode = pktio.ModeSkb }))
	add("CPU-only", run(func(c *core.Config) { c.Mode = core.ModeCPUOnly }))

	// Opportunistic offloading is a latency feature: measure mean RTT
	// at light load with and without it.
	lat := func(opp bool) float64 {
		env := sim.NewEnv()
		cfg := core.DefaultConfig()
		cfg.PacketSize = 64
		cfg.OfferedGbpsPerPort = 0.25
		cfg.OpportunisticOffload = opp
		app := &apps.IPv6Fwd{Table: tbl, NumPorts: model.NumPorts}
		router := core.New(env, cfg, app)
		sink := pktgen.NewLatencySink()
		for _, p := range router.Engine.Ports {
			p.Tx.OnComplete = func(b *packet.Buf, at sim.Time) { sink.Observe(b, at) }
		}
		router.SetSource(src)
		router.Start()
		env.Run(sim.Time(6 * sim.Millisecond))
		return sink.MeanMicros()
	}
	r.Note("latency at 2 Gbps offered: GPU always-offload %.0f us vs opportunistic %.0f us (§7)",
		lat(false), lat(true))
	return r
}
