// Package model holds every calibrated hardware constant used by the
// PacketShader simulation, in one place, with the derivation of each
// number from the paper (Han et al., SIGCOMM 2010) documented next to it.
//
// The constants fall into three groups:
//
//   - directly quoted by the paper (GPU clock, core counts, memory
//     bandwidths, Table 1 transfer rates, launch latencies);
//   - fitted to the paper's measurements (PCIe α/β from Table 1, packet
//     I/O cycle costs from Figure 5, IOH capacities from Figure 6);
//   - estimated from 2010-era hardware where the paper gives only the
//     resulting throughput (per-byte cipher costs, GPU random-access
//     rate), then cross-checked against the paper's end-to-end numbers.
package model

import "packetshader/internal/sim"

// ---------------------------------------------------------------------------
// CPU: 2 × Intel Xeon X5550 (Nehalem, 4 cores, 2.66 GHz), Table 2.
// ---------------------------------------------------------------------------

const (
	// CPUFreqHz is the X5550 clock (§3.1).
	CPUFreqHz = 2.66e9
	// NumNodes and CoresPerNode describe the dual-socket NUMA layout
	// (Figure 3).
	NumNodes     = 2
	CoresPerNode = 4
	// CacheLineBytes is the x86 cache line (§2.4, §4.4).
	CacheLineBytes = 64

	// LocalMemLatencyNs is DRAM access latency from the local node.
	// Nehalem + DDR3-1333 measured ~65 ns in contemporary reports.
	LocalMemLatencyNs = 65.0
	// RemoteMemFactor: §4.5 reports 40-50% higher latency for
	// node-crossing access; we use the midpoint.
	RemoteMemFactor = 1.45
	// RemoteBWFactor: §4.5 reports 20-30% lower bandwidth remote.
	RemoteBWFactor = 0.75

	// MLPOptimal and MLPSaturated: §2.4 microbenchmark — one X5550 core
	// sustains ~6 outstanding misses alone, ~4 when all four cores burst.
	MLPOptimal   = 6.0
	MLPSaturated = 4.0

	// HostMemBWBytes is the per-socket memory bandwidth (§2.4: 32 GB/s).
	HostMemBWBytes = 32e9
)

// Cycles converts a cycle count to virtual time at the CPU clock.
func Cycles(c float64) sim.Duration {
	return sim.Duration(c/CPUFreqHz*float64(sim.Second) + 0.5)
}

// CyclesOf converts a duration back to CPU cycles.
func CyclesOf(d sim.Duration) float64 {
	return d.Seconds() * CPUFreqHz
}

// MemAccessCycles is the CPU cycle cost of one cache-missing memory
// access with no memory-level parallelism (dependent chain), local node.
func MemAccessCycles() float64 { return LocalMemLatencyNs * 1e-9 * CPUFreqHz } // ≈173

// ---------------------------------------------------------------------------
// Ethernet / NIC: 4 × Intel X520-DA2 dual-port 10GbE (Table 2).
// ---------------------------------------------------------------------------

const (
	NumPorts     = 8
	PortRateBps  = 10e9
	PortsPerIOH  = 4 // two dual-port NICs per IOH (Figure 3)
	RxRingSize   = 2048
	TxRingSize   = 2048
	MaxFrameSize = 1514
	MinFrameSize = 60

	// EthOverheadBytes: the paper counts 24B of Ethernet overhead
	// (footnote 1): 8B preamble+SFD, 12B IFG, 4B FCS. A "64B packet"
	// therefore occupies 88B of wire time: 41.1 Gbps == 58.4 Mpps (§4.6).
	EthOverheadBytes = 24
)

// WireBytes returns bytes of wire time for a packet of the given size.
func WireBytes(pktSize int) int { return pktSize + EthOverheadBytes }

// wireTimeLUT memoizes WireTime for every buffer-sized packet: the TX
// path asks per packet, and the float conversion showed up in CPU
// profiles. Built once at init from the reference expression (so values
// are bit-identical), read-only afterwards.
var wireTimeLUT = func() []sim.Duration {
	t := make([]sim.Duration, HugeCellDataBytes+1)
	for size := range t {
		t[size] = wireTimeSlow(size)
	}
	return t
}()

func wireTimeSlow(pktSize int) sim.Duration {
	bits := float64(WireBytes(pktSize)) * 8
	return sim.Duration(bits / PortRateBps * float64(sim.Second))
}

// WireTime returns the serialization time of one packet on a 10GbE link.
func WireTime(pktSize int) sim.Duration {
	if pktSize >= 0 && pktSize < len(wireTimeLUT) {
		return wireTimeLUT[pktSize]
	}
	return wireTimeSlow(pktSize)
}

// PortPacketRate returns the line-rate packet rate of one port (pps).
func PortPacketRate(pktSize int) float64 {
	return PortRateBps / (float64(WireBytes(pktSize)) * 8)
}

// GbpsFromPps converts a packet rate to the paper's throughput metric
// (Gbps of wire time, including the 24B overhead).
func GbpsFromPps(pps float64, pktSize int) float64 {
	return pps * float64(WireBytes(pktSize)) * 8 / 1e9
}

// ---------------------------------------------------------------------------
// PCIe / DMA: fitted to Table 1 with t(size) = α + size/β.
//
// A least-squares fit over all seven rows gives
//   host→device: α = 4.90 µs, β = 5.80 GB/s
//   device→host: α = 4.20 µs, β = 3.44 GB/s
// which reproduces every Table 1 cell within 10% (verified by
// TestTable1Reproduction; the 1KB row is the worst because the table
// itself is not monotone in implied transfer time there). The d2h
// direction is slower because of the dual-IOH problem (§3.2).
// ---------------------------------------------------------------------------

const (
	PCIeH2DAlphaNs = 4900.0
	PCIeH2DBetaBps = 5.80e9
	PCIeD2HAlphaNs = 4200.0
	PCIeD2HBetaBps = 3.44e9
)

// H2DTime returns the host→device transfer time for size bytes.
func H2DTime(size int) sim.Duration {
	ns := PCIeH2DAlphaNs + float64(size)/PCIeH2DBetaBps*1e9
	return sim.Duration(ns * float64(sim.Nanosecond))
}

// D2HTime returns the device→host transfer time for size bytes.
func D2HTime(size int) sim.Duration {
	ns := PCIeD2HAlphaNs + float64(size)/PCIeD2HBetaBps*1e9
	return sim.Duration(ns * float64(sim.Nanosecond))
}

// ---------------------------------------------------------------------------
// IOH (Intel 5520) with the dual-IOH asymmetry (§3.2).
//
// Figure 6 anchors: TX-only reaches 79-80 Gbps (line rate), RX-only
// 53-60 Gbps, RX+TX forwarding ~41 Gbps for all packet sizes. Modeling
// each IOH as a linear bidirectional constraint
//
//	up/IOHUpBps + down/IOHDownBps <= 1
//
// with up = device→host (RX DMA, GPU d2h) capacity 30 Gbps/IOH and down =
// host→device capacity 60 Gbps/IOH reproduces all three anchors once
// per-packet descriptor traffic (24B: descriptor fetch + write-back +
// doorbell MMIO) is included: RX-only ≈ 60 Gbps of wire throughput,
// TX-only line-bound at 80, and forwarding ≈ 40 *independent of packet
// size* — because the per-packet fabric overhead (24B) equals the
// per-packet wire overhead (24B), exactly the property Figure 6 shows.
// The same constants independently predict the paper's 20 Gbps IPsec
// plateau (packet payloads cross the IOH twice more, §6.3).
// ---------------------------------------------------------------------------

const (
	IOHUpBps   = 30e9 / 8 // bytes/s of device→host capacity per IOH
	IOHDownBps = 60e9 / 8 // bytes/s of host→device capacity per IOH

	// IOHKappa is the fraction of a down transfer's byte cost charged
	// against the up engine (completion/credit traffic returning on the
	// congested device→host path — the dual-IOH erratum). 0.465 places
	// balanced forwarding at 2×30/(1+0.465) ≈ 41 Gbps, the paper's
	// plateau, while leaving TX-only line-bound.
	IOHKappa = 0.465

	// DMADescBytes approximates per-packet descriptor/doorbell traffic
	// accompanying each packet's DMA. 24B (descriptor fetch +
	// write-back + doorbell) equals the Ethernet wire overhead, making
	// the forwarding plateau size-independent as Figure 6 shows.
	DMADescBytes = 24

	// RxDMAPipelineNs bounds how far ahead of its in-flight RX DMA a
	// driver may run (descriptor prefetch depth): the CPU can process
	// packets while the next few microseconds of DMA stream in, but
	// cannot consume packets whose data is still behind a saturated
	// IOH.
	RxDMAPipelineNs = 10000.0
)

// IOHCost returns the total IOH capacity consumed by a transfer moving
// up bytes device→host and down bytes host→device, expressed as
// up-engine + down-engine occupancy (used by tests and back-of-envelope
// checks; the pcie package charges the two engines separately).
func IOHCost(up, down int) sim.Duration {
	s := (float64(up)+IOHKappa*float64(down))/IOHUpBps + float64(down)/IOHDownBps
	return sim.DurationFromSeconds(s)
}

// ---------------------------------------------------------------------------
// GPU: NVIDIA GTX480 (Fermi), §2.1-§2.2.
// ---------------------------------------------------------------------------

const (
	NumGPUs          = 2
	GPUSMs           = 15
	GPUSPsPerSM      = 32
	GPUCores         = GPUSMs * GPUSPsPerSM // 480
	GPUFreqHz        = 1.4e9
	GPUDevMemBytes   = 1536 * 1024 * 1024
	GPUDevBWBytes    = 177.4e9 // §2.4
	GPUWarpSize      = 32
	GPUMaxWarpsPerSM = 32 // scheduler holds up to 32 warps (§2.1)

	// Launch latency (§2.2): 3.8 µs for 1 thread, 4.1 µs for 4096.
	// Linear fit: base 3.8 µs + 73 ps/thread.
	GPULaunchBaseNs      = 3800.0
	GPULaunchPerThreadNs = 0.073

	// GPUSyncOverheadNs is the host-side CUDA driver round-trip cost of
	// a synchronous launch+copy sequence (stream setup, event poll,
	// completion notification). ~2010 CUDA measured 20-40 µs for the
	// full synchronous cycle; 23 µs places the Figure 2 crossover with
	// one X5550 at ≈320 packets as the paper reports.
	GPUSyncOverheadNs = 23000.0

	// GPURandomAccessPerSec is the device-memory random (uncoalesced)
	// access rate. GDDR5 at 177.4 GB/s moving ~128B transactions for
	// scattered 4-16B reads, with bank conflicts, sustains roughly
	// 630M accesses/s — calibrated so the IPv6 kernel (7 dependent
	// accesses) peaks at ≈90 Mlookups/s raw, ≈8-10× one X5550
	// end-to-end with copies included: the paper's "about ten X5550
	// processors" (§2.3).
	GPURandomAccessPerSec = 630e6

	// GPUDevMemLatencyNs is a single device-memory access latency
	// (~400-800 cycles on Fermi); dominates when too few warps are
	// resident to hide it (§2.1).
	GPUDevMemLatencyNs = 350.0
)

// GPULaunchTime returns the kernel launch latency for n threads.
func GPULaunchTime(threads int) sim.Duration {
	ns := GPULaunchBaseNs + GPULaunchPerThreadNs*float64(threads)
	return sim.Duration(ns * float64(sim.Nanosecond))
}

// ---------------------------------------------------------------------------
// Packet I/O engine cycle costs (§4).
//
// Figure 5 anchors (one 2.66 GHz core, two ports, 64B packets, huge
// buffer path): 0.78 Gbps at batch size 1 and 10.5 Gbps at batch 64,
// i.e. 1.108 Mpps → 2400 cycles/pkt and 14.91 Mpps → 178 cycles/pkt.
// With cycles(b) = Batch/b + PerPkt: Batch ≈ 2257, PerPkt ≈ 143.
// (The forwarding number includes both RX and TX of each packet.)
// ---------------------------------------------------------------------------

const (
	// IOBatchCycles is charged once per batch (syscall crossing,
	// interrupt handling, queue bookkeeping, doorbells).
	IOBatchCycles = 2257.0
	// IOPerPacketCycles is the huge-buffer per-packet RX+TX cost
	// (descriptor handling, copy to user chunk, prefetch-amortized).
	IOPerPacketCycles = 143.0
	// IORxShare/IOTxShare split the costs between the RX and TX halves;
	// RX is the more expensive half (buffer recycling, copies).
	IORxShare = 0.6
	IOTxShare = 0.4

	// CopyCyclesPerByte is the huge-buffer→user-chunk copy cost; §4.3
	// argues it stays under 20% of packet I/O cycles because the user
	// buffer is cache resident. 0.25 cycles/B ≈ 16B/cycle SSE copy from
	// cache: 64B → 16 cycles ≈ 11% of 143.
	CopyCyclesPerByte = 0.25
)

// ---------------------------------------------------------------------------
// Legacy skb path costs (Table 3). The paper's breakdown of RX-only CPU
// usage with the unmodified ixgbe driver:
//
//	skb initialization        4.9%
//	skb (de)allocation        8.0%
//	memory subsystem         50.2%
//	NIC device driver        13.3%
//	others                    9.8%
//	compulsory cache misses  13.8%
//
// RouteBricks-era Linux spent ~2500-3000 cycles receiving a 64B packet;
// we take 2800 cycles/packet total for the skb RX path and size each bin
// to the paper's shares. The simulation *recomputes* the shares from the
// slab-allocator operation counts (internal/mem) — these constants set
// the per-operation costs.
// ---------------------------------------------------------------------------

const (
	SkbRxTotalCycles = 2800.0

	// SkbInitCycles: zeroing + initializing the 208B skb metadata.
	SkbInitCycles = SkbRxTotalCycles * 0.049 // ≈137
	// SkbAllocWrapperCycles: alloc_skb/kfree_skb wrapper layers, per
	// packet (covering both the alloc and free halves).
	SkbAllocWrapperCycles = SkbRxTotalCycles * 0.080 // ≈224
	// SlabOpCycles: one slab-allocator op (alloc or free of one buffer).
	// Each packet performs 4 ops (alloc+free of skb and of the data
	// buffer): 4 × 351 ≈ 1406 ≈ 50.2%.
	SlabOpCycles = SkbRxTotalCycles * 0.502 / 4 // ≈351
	// SkbDriverCycles: ixgbe per-packet bookkeeping incl. per-packet DMA
	// mapping.
	SkbDriverCycles = SkbRxTotalCycles * 0.133 // ≈372
	// SkbOtherCycles: protocol demux, stats, softirq accounting.
	SkbOtherCycles = SkbRxTotalCycles * 0.098 // ≈274
	// CompulsoryMissCycles: DMA-invalidated first-touch misses on the
	// descriptor + packet data (two lines remote from cache): ≈ 2.2
	// misses × 173 cycles ≈ 386 ≈ 13.8%. The huge-buffer path removes
	// these with software prefetch (§4.3).
	CompulsoryMissCycles = SkbRxTotalCycles * 0.138 // ≈386

	// SkbMetadataBytes and HugeCellMetadataBytes (§4.2).
	SkbMetadataBytes      = 208
	HugeCellMetadataBytes = 8
	HugeCellDataBytes     = 2048
)

// ---------------------------------------------------------------------------
// Multi-core / NUMA effects (§4.4-4.5).
// ---------------------------------------------------------------------------

const (
	// FalseSharingPenaltyCycles per packet when per-queue data is not
	// cache-line aligned (coherence miss on a bouncing line). §4.4:
	// per-packet cycles rose 20% with 8 cores; 20% of ~178 ≈ 36; split
	// between the two §4.4 problems.
	FalseSharingPenaltyCycles = 18.0
	// SharedCounterPenaltyCycles per packet for per-NIC (vs per-queue)
	// statistics counters (coherent cache miss on a contended line).
	SharedCounterPenaltyCycles = 18.0
)

// ---------------------------------------------------------------------------
// Application costs on the CPU.
// ---------------------------------------------------------------------------

const (
	// IPv4LookupAccessCycles: DIR-24-8 does 1 dependent DRAM access
	// (2 for the 3% of prefixes longer than /24); the table never fits
	// in cache with 282k prefixes. Plus ~25 cycles of arithmetic.
	IPv4LookupComputeCycles = 25.0

	// IPv6LookupComputeCycles: per-probe hashing and comparison in the
	// binary-search-on-length algorithm, on top of 7 dependent memory
	// accesses. One lookup ≈ 7×(173+14) ≈ 1310 cycles → ≈2.03
	// Mlookups/s/core, 8.1 M/s per X5550 — matching the Figure 2 CPU
	// plateau that makes the GPU "ten X5550s" at its 80 M/s peak.
	IPv6LookupComputeCycles = 14.0 // per probe
	IPv6LookupProbes        = 7

	// OpenFlow (§6.2.3): per-packet flow-key extraction, hashing, and
	// exact-match probe. Hashing the assembled 10-field key dominated
	// the 2010 software switch (≈8 cycles/byte over the 32B key plus
	// field gathering) — which is why hash offload is the GPU's first
	// win in Figure 11(c). The probe is 1-2 memory accesses depending
	// on table size vs cache; a wildcard linear search costs ~20
	// cycles/entry (a few masked compares).
	OFKeyExtractCycles    = 90.0
	OFHashCycles          = 260.0
	OFWildcardEntryCycles = 20.0

	// L3CacheBytes per socket (X5550: 8 MB) — drives the
	// table-size-dependent probe cost in the OpenFlow experiment.
	L3CacheBytes = 8 << 20

	// Pre-/post-shading worker costs per packet. Pre-shading parses
	// headers, validates, classifies slow-path packets, and builds the
	// GPU input arrays (§5.3); post-shading applies results and splits
	// chunks per port.
	AppIPv4PreCycles   = 85.0
	AppIPv4PostCycles  = 25.0
	AppIPv6PreCycles   = 70.0
	AppIPv6PostCycles  = 25.0
	AppOFActionCycles  = 20.0
	AppIPsecPreCycles  = 300.0
	AppIPsecPostCycles = 100.0

	// MemContentionFactor inflates DRAM access latency when all eight
	// cores burst memory references simultaneously — §2.4's
	// microbenchmark shows per-core MLP dropping from 6 to 4 under
	// full-machine load, i.e. ~35-50% higher effective access cost.
	// Applied to the CPU-only mode's table lookups (the paper's
	// CPU-only runs keep every core on the memory-bound fast path).
	MemContentionFactor = 1.35

	// IPsec CPU costs (§6.2.4): SSE-optimized software AES-128-CTR +
	// SHA1-HMAC on Nehalem (no AES-NI) ≈ 30 cycles/byte combined, plus
	// per-packet ESP overhead (header build, IV, key setup, padding).
	// Yields 2.9/5.4 Gbps CPU-only at 64B/1514B as the paper measures.
	IPsecCPUPerPacketCycles = 1200.0
	IPsecCPUPerByteCycles   = 30.0
)

// ---------------------------------------------------------------------------
// Application costs on the GPU (per-kernel descriptors; consumed by
// internal/hw/gpu).
// ---------------------------------------------------------------------------

const (
	// GPUIPsecPerPacketNs is the GPU-wide effective per-packet cost of
	// the IPsec kernel pair (per-packet SHA1 finalization is serial in
	// one thread; IV/key fetch per packet): calibrated so two GPUs
	// sustain ≈14.5 Mpps at 64B (10.2 Gbps) and ≈33 Gbps without
	// packet I/O, matching §6.3.
	GPUIPsecPerPacketNs = 88.0
	// GPUIPsecBytesPerSec is the per-GPU streaming cipher rate
	// (AES-128-CTR + SHA1 over packet bytes, in-die memory optimized).
	GPUIPsecBytesPerSec = 2.2e9
)

// ---------------------------------------------------------------------------
// Chunk / framework parameters (§5.3).
// ---------------------------------------------------------------------------

const (
	// MaxChunkSize caps a chunk (batch of packets fetched at once); the
	// chunk size is adaptive below the cap.
	MaxChunkSize = 256
	// MaxGatherChunks bounds how many chunks a master gathers into one
	// GPU launch (§5.4 gather/scatter).
	MaxGatherChunks = 8
	// InputQueueDepth/OutputQueueDepth are the worker↔master queues.
	InputQueueDepth  = 64
	OutputQueueDepth = 64

	// InterruptModerationNs models the NIC's interrupt moderation timer
	// (§6.4: it raises latency at low offered load).
	InterruptModerationNs = 30000.0
)
