module packetshader

go 1.22
