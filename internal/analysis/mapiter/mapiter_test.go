package mapiter_test

import (
	"testing"

	"packetshader/internal/analysis/analysistest"
	"packetshader/internal/analysis/mapiter"
)

func TestMapIter(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), mapiter.Analyzer, "mapiter")
}
