#!/bin/sh
# bench.sh measures the simulator's host-side performance on the two key
# benchmarks and records the trajectory in BENCH_PR4.json:
#
#   - BenchmarkFig5Batch:     the packet-I/O engine hot path (8 batch
#                             points x 20 simulated ms of single-core
#                             forwarding = 160e6 simulated ns per op)
#   - BenchmarkRouterIPv4GPU: the full CPU+GPU router framework
#                             (1 simulated ms per op = 1e6 sim ns)
#
# Each entry reports ns/op, B/op, allocs/op and sim_ns_per_wall_ns (how
# many nanoseconds of virtual hardware time one nanosecond of host time
# buys — the simulator's figure of merit). The "baseline" block is the
# measurement recorded before the allocation-free engine rework and is
# fixed; "results" is refreshed on every run.
#
# Usage: scripts/bench.sh [benchtime]   (default 10x)
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${1:-10x}"
OUT="BENCH_PR4.json"

echo "== go test -bench (benchtime=$BENCHTIME)"
RAW=$(go test -run '^$' -bench 'BenchmarkFig5Batch$|BenchmarkRouterIPv4GPU$' \
	-benchmem -benchtime "$BENCHTIME" .)
printf '%s\n' "$RAW"

printf '%s\n' "$RAW" | awk -v benchtime="$BENCHTIME" '
/^Benchmark/ {
	# BenchmarkName  N  ns/op  B/op  allocs/op
	name = $1
	sub(/-[0-9]+$/, "", name)   # strip -GOMAXPROCS suffix if present
	ns[name] = $3; bytes[name] = $5; allocs[name] = $7
	order[n++] = name
}
END {
	# Simulated virtual time advanced per benchmark iteration, in ns.
	sim["BenchmarkFig5Batch"]     = 160000000  # 8 batch points x 20 ms
	sim["BenchmarkRouterIPv4GPU"] = 1000000    # 1 ms per op

	base["BenchmarkFig5Batch"]     = "{ \"ns_per_op\": 258897045, \"bytes_per_op\": 174840096, \"allocs_per_op\": 1175131 }"
	base["BenchmarkRouterIPv4GPU"] = "{ \"ns_per_op\": 92094180, \"bytes_per_op\": 9809644, \"allocs_per_op\": 29558 }"

	printf "{\n"
	printf "  \"description\": \"host-side simulator performance; baseline = before the allocation-free engine rework\",\n"
	printf "  \"benchtime\": \"%s\",\n", benchtime
	printf "  \"baseline\": {\n"
	printf "    \"BenchmarkFig5Batch\": %s,\n", base["BenchmarkFig5Batch"]
	printf "    \"BenchmarkRouterIPv4GPU\": %s\n", base["BenchmarkRouterIPv4GPU"]
	printf "  },\n"
	printf "  \"results\": {\n"
	for (i = 0; i < n; i++) {
		name = order[i]
		printf "    \"%s\": { \"ns_per_op\": %d, \"bytes_per_op\": %d, \"allocs_per_op\": %d, \"sim_ns_per_op\": %d, \"sim_ns_per_wall_ns\": %.3f }%s\n", \
			name, ns[name], bytes[name], allocs[name], sim[name], \
			sim[name] / ns[name], (i < n-1) ? "," : ""
	}
	printf "  }\n"
	printf "}\n"
}' >"$OUT"

echo "== wrote $OUT"
cat "$OUT"
