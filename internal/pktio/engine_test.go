package pktio

import (
	"math"
	"testing"

	"packetshader/internal/model"
	"packetshader/internal/packet"
	"packetshader/internal/sim"
)

// forwardOneCore runs the §4.6 minimal-forwarding loop (RX + TX, no
// lookup) on a single worker serving two ports at 64B line rate, with
// the given batch cap — the Figure 5 experiment.
func forwardOneCore(cfg Config, window sim.Duration) float64 {
	env := sim.NewEnv()
	cfg.Nodes = 1
	cfg.Ports = 2
	cfg.QueuesPerPort = 1
	e := New(env, cfg)
	rate := model.PortPacketRate(64)
	for _, p := range e.Ports {
		p.Rx[0].SetOffered(rate, 64, nil)
	}
	ifaces := []*Iface{e.OpenIface(0, 0, 0), e.OpenIface(1, 0, 0)}
	env.Go("worker", func(p *sim.Proc) {
		for p.Now() < sim.Time(window) {
			progress := false
			for i, f := range ifaces {
				chunk := f.FetchChunk(p, cfg.BatchCap, nil)
				if len(chunk) == 0 {
					continue
				}
				progress = true
				e.Send(p, 0, 1-i, chunk) // forward to the other port
			}
			if !progress {
				if !ifaces[0].Wait(p) {
					return
				}
			}
		}
	})
	env.Run(sim.Time(window))
	return e.DeliveredGbps(0)
}

func TestFig5BatchOneMatchesPaper(t *testing.T) {
	got := forwardOneCore(func() Config {
		c := DefaultConfig()
		c.BatchCap = 1
		return c
	}(), 20*sim.Millisecond)
	// Figure 5: packet-by-packet ≈ 0.78 Gbps.
	if math.Abs(got-0.78) > 0.12 {
		t.Errorf("batch=1 forwarding = %.2f Gbps, paper says 0.78", got)
	}
}

func TestFig5Batch64MatchesPaper(t *testing.T) {
	got := forwardOneCore(func() Config {
		c := DefaultConfig()
		c.BatchCap = 64
		return c
	}(), 20*sim.Millisecond)
	// Figure 5: batch 64 ≈ 10.5 Gbps, speedup 13.5.
	if math.Abs(got-10.5) > 1.0 {
		t.Errorf("batch=64 forwarding = %.2f Gbps, paper says 10.5", got)
	}
}

func TestFig5MonotoneAndSaturating(t *testing.T) {
	var prev float64
	rates := map[int]float64{}
	for _, b := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		cfg := DefaultConfig()
		cfg.BatchCap = b
		got := forwardOneCore(cfg, 10*sim.Millisecond)
		if got+0.05 < prev {
			t.Errorf("throughput fell from %.2f to %.2f at batch %d", prev, got, b)
		}
		prev = got
		rates[b] = got
	}
	// Figure 5's shape: almost all the gain comes before batch 32 (the
	// paper says gains stall there); 32→128 adds little compared to the
	// 1→32 improvement.
	if rates[32] < rates[1]*8 {
		t.Errorf("batch 32 (%.2f) less than 8× batch 1 (%.2f)", rates[32], rates[1])
	}
	if rates[128] > rates[32]*1.35 {
		t.Errorf("batch 128 (%.2f) still much faster than 32 (%.2f); paper says gains stall",
			rates[128], rates[32])
	}
}

func TestSkbPathMuchSlowerThanHuge(t *testing.T) {
	huge := DefaultConfig()
	huge.BatchCap = 64
	skb := huge
	skb.Mode = ModeSkb
	h := forwardOneCore(huge, 10*sim.Millisecond)
	s := forwardOneCore(skb, 10*sim.Millisecond)
	// skb adds ≈2800 RX cycles/packet on top: expect several-fold drop.
	if s >= h/2 {
		t.Errorf("skb path %.2f Gbps vs huge %.2f — expected a large gap", s, h)
	}
}

func TestTable3BreakdownShares(t *testing.T) {
	env := sim.NewEnv()
	cfg := DefaultConfig()
	cfg.Nodes, cfg.Ports, cfg.QueuesPerPort = 1, 1, 1
	cfg.Mode = ModeSkb
	e := New(env, cfg)
	e.Ports[0].Rx[0].SetOffered(model.PortPacketRate(64), 64, nil)
	iface := e.OpenIface(0, 0, 0)
	env.Go("rx-drop", func(p *sim.Proc) {
		for p.Now() < sim.Time(5*sim.Millisecond) {
			chunk := iface.FetchChunk(p, 64, nil)
			for _, b := range chunk {
				b.Release() // silently drop, as the Table 3 setup does
			}
			if len(chunk) == 0 && !iface.Wait(p) {
				return
			}
		}
	})
	env.Run(sim.Time(5 * sim.Millisecond))
	bd := e.RxBreakdown()
	total := bd.Total()
	if total == 0 {
		t.Fatal("no breakdown recorded")
	}
	check := func(name string, got, want float64) {
		if math.Abs(got/total-want) > 0.015 {
			t.Errorf("%s share = %.1f%%, paper says %.1f%%", name, got/total*100, want*100)
		}
	}
	check("skb init", bd.SkbInit, 0.049)
	check("skb alloc", bd.SkbAlloc, 0.080)
	check("memory subsystem", bd.MemSubsystem, 0.502)
	check("driver", bd.Driver, 0.133)
	check("others", bd.Others, 0.098)
	check("cache misses", bd.CacheMisses, 0.138)
}

func TestPrefetchRemovesCompulsoryMisses(t *testing.T) {
	with := DefaultConfig()
	with.BatchCap = 64
	without := with
	without.Prefetch = false
	w := forwardOneCore(with, 10*sim.Millisecond)
	wo := forwardOneCore(without, 10*sim.Millisecond)
	if wo >= w {
		t.Errorf("no-prefetch %.2f ≥ prefetch %.2f Gbps", wo, w)
	}
}

func TestFalseSharingAndSharedCountersCost(t *testing.T) {
	base := DefaultConfig()
	base.BatchCap = 64
	bad := base
	bad.AlignQueueData = false
	bad.PerQueueCounters = false
	g := forwardOneCore(base, 10*sim.Millisecond)
	b := forwardOneCore(bad, 10*sim.Millisecond)
	// §4.4: ~20% per-packet cycle increase from the two effects.
	if b >= g {
		t.Errorf("unaligned+shared counters %.2f ≥ tuned %.2f", b, g)
	}
	if b < g*0.6 {
		t.Errorf("penalty too large: %.2f vs %.2f (want ≈20%% cycles)", b, g)
	}
}

func TestNUMABlindRoutesDMAAcrossHubs(t *testing.T) {
	env := sim.NewEnv()
	cfg := DefaultConfig()
	e := New(env, cfg)
	// Worker on node 1 opening a queue on a node-0 port: both hubs in
	// the DMA path.
	iface := e.OpenIface(0, 0, 1)
	e.Ports[0].Rx[0].SetOffered(1e6, 64, nil)
	env.Go("w", func(p *sim.Proc) {
		p.Sleep(100 * sim.Microsecond)
		iface.FetchChunk(p, 64, nil)
	})
	env.Run(0)
	if e.IOHs[1].UpBusy() == 0 {
		t.Error("node-crossing RX DMA did not touch the remote hub")
	}
	if iface.remoteFactor() != model.RemoteMemFactor {
		t.Error("remote factor not applied to node-crossing worker")
	}
}

func TestAggregateStatsOnDemand(t *testing.T) {
	env := sim.NewEnv()
	cfg := DefaultConfig()
	cfg.Nodes, cfg.Ports, cfg.QueuesPerPort = 1, 2, 2
	e := New(env, cfg)
	for _, p := range e.Ports {
		for _, q := range p.Rx {
			q.SetOffered(1e6, 64, nil)
		}
	}
	ifaces := []*Iface{
		e.OpenIface(0, 0, 0), e.OpenIface(0, 1, 0),
		e.OpenIface(1, 0, 0), e.OpenIface(1, 1, 0),
	}
	env.Go("w", func(p *sim.Proc) {
		p.Sleep(100 * sim.Microsecond)
		for _, f := range ifaces {
			chunk := f.FetchChunk(p, 256, nil)
			e.Send(p, 0, 1, chunk)
		}
	})
	env.Run(0)
	rx, _, tx, _ := e.AggregateStats()
	if rx == 0 || tx == 0 {
		t.Errorf("aggregate stats rx=%d tx=%d", rx, tx)
	}
	if rx != tx {
		t.Errorf("forwarded everything but rx=%d tx=%d", rx, tx)
	}
}

func TestSendEmptyIsFree(t *testing.T) {
	env := sim.NewEnv()
	e := New(env, DefaultConfig())
	var elapsed sim.Time
	env.Go("w", func(p *sim.Proc) {
		e.Send(p, 0, 0, nil)
		elapsed = p.Now()
	})
	env.Run(0)
	if elapsed != 0 {
		t.Errorf("empty send took %v", elapsed)
	}
}

func TestFetchChunkRespectsBatchCap(t *testing.T) {
	env := sim.NewEnv()
	cfg := DefaultConfig()
	cfg.Nodes, cfg.Ports, cfg.QueuesPerPort = 1, 1, 1
	cfg.BatchCap = 16
	e := New(env, cfg)
	e.Ports[0].Rx[0].SetOffered(14e6, 64, nil)
	iface := e.OpenIface(0, 0, 0)
	env.Go("w", func(p *sim.Proc) {
		p.Sleep(1 * sim.Millisecond) // thousands queued
		chunk := iface.FetchChunk(p, 9999, nil)
		if len(chunk) != 16 {
			t.Errorf("chunk = %d, want capped at 16", len(chunk))
		}
	})
	env.Run(0)
}

func TestBufReuseThroughForwarding(t *testing.T) {
	// The pool must recycle buffers through the fetch→send cycle: no
	// unbounded growth (the huge-buffer property).
	env := sim.NewEnv()
	cfg := DefaultConfig()
	cfg.Nodes, cfg.Ports, cfg.QueuesPerPort = 1, 2, 1
	e := New(env, cfg)
	rate := model.PortPacketRate(64)
	for _, p := range e.Ports {
		p.Rx[0].SetOffered(rate, 64, nil)
	}
	ifaces := []*Iface{e.OpenIface(0, 0, 0), e.OpenIface(1, 0, 0)}
	env.Go("worker", func(p *sim.Proc) {
		for p.Now() < sim.Time(5*sim.Millisecond) {
			n := 0
			for i, f := range ifaces {
				chunk := f.FetchChunk(p, 64, nil)
				n += len(chunk)
				e.Send(p, 0, 1-i, chunk)
			}
			if n == 0 && !ifaces[0].Wait(p) {
				return
			}
		}
	})
	env.Run(sim.Time(5 * sim.Millisecond))
	if e.Pool.Allocs > 4096 {
		t.Errorf("pool allocated %d cells; recycling broken", e.Pool.Allocs)
	}
}

var _ = packet.Buf{} // keep the import if helpers change
