// Cross-package fixture for procshare: calling a dependency package's
// starter co-spawns its proc (known via FuncFact.Spawns) with a local
// one, and the dependency's RootsFact supplies the foreign root's
// accesses, so writing the dependency's package var from the local proc
// pairs against the foreign logger.
package procshare_xpkg

import (
	dep "fixture/procsharedep"

	"packetshader/internal/sim"
)

func startAll(env *sim.Env) {
	dep.StartLogger(env)
	env.Go("writer", func(p *sim.Proc) {
		dep.Total++ // want `var fixture/procsharedep\.Total is written by proc "writer" .* and written by proc "logger" \(fixture/procsharedep/dep\.go:\d+\)`
	})
}
