package packet

import "encoding/binary"

// Layer identifies a decoded protocol layer.
type Layer uint8

// Layers reported by Decoder.Decode.
const (
	LayerEthernet Layer = iota
	LayerVLAN
	LayerIPv4
	LayerIPv6
	LayerUDP
	LayerTCP
	LayerESP
	LayerPayload
)

// Decoder decodes a frame into preallocated header structs without
// allocating (the DecodingLayerParser pattern): construct one Decoder per
// worker thread and reuse it for every packet of a chunk.
type Decoder struct {
	Eth    EthernetHdr
	VLANID uint16 // 0xffff if untagged
	IPv4   IPv4Hdr
	IPv6   IPv6Hdr
	UDP    UDPHdr
	TCP    TCPHdr

	// Payload is the innermost undecoded payload.
	Payload []byte
	// Decoded lists the layers found, in order.
	Decoded []Layer

	scratch [8]Layer
}

// VLANNone is the VLANID value for untagged frames.
const VLANNone = 0xffff

// Decode parses frame starting at Ethernet. It stops (without error) at
// the first layer it does not understand, leaving it in Payload.
func (d *Decoder) Decode(frame []byte) error {
	d.Decoded = d.scratch[:0]
	d.VLANID = VLANNone
	b, err := d.Eth.Decode(frame)
	if err != nil {
		return err
	}
	d.Decoded = append(d.Decoded, LayerEthernet)
	et := d.Eth.EtherType
	if et == EtherTypeVLAN {
		if len(b) < VLANTagLen {
			return ErrTruncated
		}
		d.VLANID = binary.BigEndian.Uint16(b[0:2]) & 0x0fff
		et = binary.BigEndian.Uint16(b[2:4])
		b = b[VLANTagLen:]
		d.Decoded = append(d.Decoded, LayerVLAN)
	}
	var proto uint8
	switch et {
	case EtherTypeIPv4:
		if b, err = d.IPv4.Decode(b); err != nil {
			return err
		}
		d.Decoded = append(d.Decoded, LayerIPv4)
		proto = d.IPv4.Protocol
	case EtherTypeIPv6:
		if b, err = d.IPv6.Decode(b); err != nil {
			return err
		}
		d.Decoded = append(d.Decoded, LayerIPv6)
		proto = d.IPv6.NextHeader
	default:
		d.Payload = b
		d.Decoded = append(d.Decoded, LayerPayload)
		return nil
	}
	switch proto {
	case ProtoUDP:
		if b, err = d.UDP.Decode(b); err != nil {
			return err
		}
		d.Decoded = append(d.Decoded, LayerUDP)
	case ProtoTCP:
		if b, err = d.TCP.Decode(b); err != nil {
			return err
		}
		d.Decoded = append(d.Decoded, LayerTCP)
	case ProtoESP:
		d.Decoded = append(d.Decoded, LayerESP)
	}
	d.Payload = b
	return nil
}

// Has reports whether layer l was decoded by the last Decode.
func (d *Decoder) Has(l Layer) bool {
	for _, x := range d.Decoded {
		if x == l {
			return true
		}
	}
	return false
}
