package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

// fastIDs is a subset of the Registry cheap enough to run twice in a
// regression test yet wide enough to exercise multi-point sweeps,
// shared fixtures (fig2 reads IPv6Fixture), and pure-model experiments.
var fastIDs = []string{"table1", "launch", "fig2", "fig5", "cluster"}

// TestParallelOutputByteIdenticalToSerial is the tentpole's contract:
// a wide pool must emit exactly the bytes a serial run emits, metrics
// dumps included.
func TestParallelOutputByteIdenticalToSerial(t *testing.T) {
	var serial, parallel bytes.Buffer
	var serialMetrics, parallelMetrics bytes.Buffer

	SetMetricsWriter(&serialMetrics)
	if err := NewRunner(1).Run(&serial, fastIDs...); err != nil {
		t.Fatal(err)
	}
	SetMetricsWriter(&parallelMetrics)
	err := NewRunner(8).Run(&parallel, fastIDs...)
	SetMetricsWriter(nil)
	if err != nil {
		t.Fatal(err)
	}

	if serial.Len() == 0 {
		t.Fatal("serial run produced no output")
	}
	if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
		t.Errorf("-j 8 output differs from -j 1:\n-- serial --\n%s\n-- parallel --\n%s",
			serial.String(), parallel.String())
	}
	if !bytes.Equal(serialMetrics.Bytes(), parallelMetrics.Bytes()) {
		t.Errorf("-j 8 metrics differ from -j 1 (%d vs %d bytes)",
			serialMetrics.Len(), parallelMetrics.Len())
	}
}

// TestRunMultipleIDsMatchesConcatenation checks that one Run over many
// ids prints each result exactly as a standalone run would, in the
// order given.
func TestRunMultipleIDsMatchesConcatenation(t *testing.T) {
	ids := []string{"launch", "table1", "cluster"}
	var combined bytes.Buffer
	if err := NewRunner(4).Run(&combined, ids...); err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	for _, id := range ids {
		if err := NewRunner(1).Run(&want, id); err != nil {
			t.Fatal(err)
		}
	}
	if combined.String() != want.String() {
		t.Errorf("multi-id run differs from per-id concatenation:\n-- got --\n%s\n-- want --\n%s",
			combined.String(), want.String())
	}
}

// TestRunValidatesBeforeRunning: an unknown id anywhere in the list
// must fail the whole invocation before any experiment prints.
func TestRunValidatesBeforeRunning(t *testing.T) {
	var out bytes.Buffer
	err := NewRunner(2).Run(&out, "table1", "nonesuch")
	if err == nil {
		t.Fatal("expected error for unknown experiment id")
	}
	if !strings.Contains(err.Error(), `"nonesuch"`) {
		t.Errorf("error does not name the bad id: %v", err)
	}
	if out.Len() != 0 {
		t.Errorf("output written despite invalid id list:\n%s", out.String())
	}
}

// TestMapPointsOrderAndMetrics: results land in index order and per-job
// metrics are merged in index order, regardless of completion order.
func TestMapPointsOrderAndMetrics(t *testing.T) {
	var sink bytes.Buffer
	SetMetricsWriter(&sink)
	defer SetMetricsWriter(nil)

	c := &Ctx{r: NewRunner(4)}
	var running atomic.Int32
	vals := MapPoints(c, 16, func(i int, pt *Point) int {
		running.Add(1)
		defer running.Add(-1)
		fmt.Fprintf(pt.MetricsWriter(), "job %d\n", i)
		return i * i
	})
	flushMetrics(c)

	if n := running.Load(); n != 0 {
		t.Fatalf("MapPoints returned with %d jobs still running", n)
	}
	for i, v := range vals {
		if v != i*i {
			t.Fatalf("vals[%d] = %d, want %d", i, v, i*i)
		}
	}
	var want strings.Builder
	for i := 0; i < 16; i++ {
		fmt.Fprintf(&want, "job %d\n", i)
	}
	if sink.String() != want.String() {
		t.Errorf("metrics out of job order:\n%s", sink.String())
	}
}

// TestMapPointsMetricsDisabled: with no metrics writer installed, jobs
// see a nil writer and pay nothing.
func TestMapPointsMetricsDisabled(t *testing.T) {
	c := &Ctx{r: NewRunner(2)}
	MapPoints(c, 4, func(i int, pt *Point) struct{} {
		if pt.MetricsWriter() != nil {
			t.Errorf("job %d: MetricsWriter non-nil with metrics disabled", i)
		}
		return struct{}{}
	})
}

// TestMapPointsPanicPropagates: a panicking job must fail the caller
// (deterministically: the lowest panicking index), not hang the pool.
func TestMapPointsPanicPropagates(t *testing.T) {
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("panic did not propagate out of MapPoints")
		}
		if s, ok := v.(string); !ok || !strings.Contains(s, "job 3/8") {
			t.Errorf("panic does not name the lowest failing job: %v", v)
		}
	}()
	c := &Ctx{r: NewRunner(4)}
	MapPoints(c, 8, func(i int, _ *Point) int {
		if i >= 3 {
			panic("boom")
		}
		return i
	})
}

// TestRunnerWorkersDefault: workers < 1 selects GOMAXPROCS, and the
// pool width is what bounds concurrent jobs.
func TestRunnerBoundsConcurrency(t *testing.T) {
	c := &Ctx{r: NewRunner(2)}
	var inFlight, peak atomic.Int32
	MapPoints(c, 12, func(i int, _ *Point) struct{} {
		n := inFlight.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		defer inFlight.Add(-1)
		return struct{}{}
	})
	if p := peak.Load(); p > 2 {
		t.Errorf("pool of width 2 had %d jobs in flight", p)
	}
	if NewRunner(0).Workers() < 1 {
		t.Error("NewRunner(0) must select at least one worker")
	}
}
