package pktgen

import (
	"bytes"
	"fmt"
	"io"

	"packetshader/internal/packet"
	"packetshader/internal/pcap"
)

// ReplaySource is a nic.FrameSource that replays frames from a pcap
// capture, cycling when the trace ends — trace-driven workloads for the
// router (captures taken from the simulated wire itself, or anywhere
// else).
type ReplaySource struct {
	frames [][]byte
}

// NewReplaySource loads every record from a pcap stream.
func NewReplaySource(r io.Reader) (*ReplaySource, error) {
	pr, err := pcap.NewReader(r)
	if err != nil {
		return nil, err
	}
	recs, err := pr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("pktgen: empty capture")
	}
	s := &ReplaySource{}
	for _, rec := range recs {
		f := make([]byte, len(rec.Data))
		copy(f, rec.Data)
		s.frames = append(s.frames, f)
	}
	return s, nil
}

// NewReplaySourceFromBytes loads a capture held in memory.
func NewReplaySourceFromBytes(b []byte) (*ReplaySource, error) {
	return NewReplaySource(bytes.NewReader(b))
}

// Len returns the number of frames in the trace.
func (s *ReplaySource) Len() int { return len(s.frames) }

// Fill implements nic.FrameSource: packet seq of any queue replays
// trace frame seq mod len (per-queue offsets keep queues from emitting
// identical streams in lockstep).
func (s *ReplaySource) Fill(b *packet.Buf, port, queue int, seq uint64) {
	idx := (seq + uint64(port)*7919 + uint64(queue)*104729) % uint64(len(s.frames))
	f := s.frames[idx]
	n := len(f)
	if n > cap(b.Data) {
		n = cap(b.Data)
	}
	b.Data = b.Data[:n]
	copy(b.Data, f[:n])
}
