package packet

import "encoding/binary"

// DecodeFast is the common-case decode path for the data plane: an
// untagged Ethernet frame carrying an optionless IPv4 header with UDP
// or ESP inside (or an IPv6 fixed header with UDP), parsed in one
// bounds-checked pass. Anything unusual — VLAN tags, IP options, other
// protocols, short or malformed frames — delegates to the full Decode
// before any Decoder state is written, so the resulting state (headers,
// Decoded list, Payload, error) is identical to Decode on every input.
// The equivalence is enforced by a differential corpus test.
func (d *Decoder) DecodeFast(frame []byte) error {
	if len(frame) < EthHdrLen+IPv4HdrLen+UDPHdrLen {
		return d.Decode(frame)
	}
	et := binary.BigEndian.Uint16(frame[12:14])
	switch et {
	case EtherTypeIPv4:
		if frame[EthHdrLen] != 0x45 { // version 4, IHL 5: no options
			return d.Decode(frame)
		}
		ip := frame[EthHdrLen:]
		totalLen := int(binary.BigEndian.Uint16(ip[2:4]))
		if totalLen < IPv4HdrLen {
			return d.Decode(frame)
		}
		end := totalLen
		if end > len(ip) {
			end = len(ip)
		}
		l4 := ip[IPv4HdrLen:end]
		switch ip[9] {
		case ProtoUDP:
			if len(l4) < UDPHdrLen {
				return d.Decode(frame)
			}
			ulen := int(binary.BigEndian.Uint16(l4[4:6]))
			if ulen < UDPHdrLen {
				return d.Decode(frame)
			}
			uend := ulen
			if uend > len(l4) {
				uend = len(l4)
			}
			d.decodeEthIPv4(frame, ip)
			d.UDP.SrcPort = binary.BigEndian.Uint16(l4[0:2])
			d.UDP.DstPort = binary.BigEndian.Uint16(l4[2:4])
			d.UDP.Length = uint16(ulen)
			d.UDP.Checksum = binary.BigEndian.Uint16(l4[6:8])
			d.Decoded = append(d.Decoded, LayerUDP)
			d.Payload = l4[UDPHdrLen:uend]
			return nil
		case ProtoESP:
			d.decodeEthIPv4(frame, ip)
			d.Decoded = append(d.Decoded, LayerESP)
			d.Payload = l4
			return nil
		}
		return d.Decode(frame)
	case EtherTypeIPv6:
		if len(frame) < EthHdrLen+IPv6HdrLen+UDPHdrLen || frame[EthHdrLen]>>4 != 6 ||
			frame[EthHdrLen+6] != ProtoUDP {
			return d.Decode(frame)
		}
		ip := frame[EthHdrLen:]
		plen := int(binary.BigEndian.Uint16(ip[4:6]))
		end := IPv6HdrLen + plen
		if end > len(ip) {
			end = len(ip)
		}
		l4 := ip[IPv6HdrLen:end]
		if len(l4) < UDPHdrLen {
			return d.Decode(frame)
		}
		ulen := int(binary.BigEndian.Uint16(l4[4:6]))
		if ulen < UDPHdrLen {
			return d.Decode(frame)
		}
		uend := ulen
		if uend > len(l4) {
			uend = len(l4)
		}
		d.Decoded = d.scratch[:0]
		d.VLANID = VLANNone
		copy(d.Eth.Dst[:], frame[0:6])
		copy(d.Eth.Src[:], frame[6:12])
		d.Eth.EtherType = et
		vtf := binary.BigEndian.Uint32(ip[0:4])
		d.IPv6.TrafficClass = uint8(vtf >> 20)
		d.IPv6.FlowLabel = vtf & 0xfffff
		d.IPv6.PayloadLen = uint16(plen)
		d.IPv6.NextHeader = ip[6]
		d.IPv6.HopLimit = ip[7]
		copy(d.IPv6.Src[:], ip[8:24])
		copy(d.IPv6.Dst[:], ip[24:40])
		d.UDP.SrcPort = binary.BigEndian.Uint16(l4[0:2])
		d.UDP.DstPort = binary.BigEndian.Uint16(l4[2:4])
		d.UDP.Length = uint16(ulen)
		d.UDP.Checksum = binary.BigEndian.Uint16(l4[6:8])
		d.Decoded = append(d.scratch[:0], LayerEthernet, LayerIPv6, LayerUDP)
		d.Payload = l4[UDPHdrLen:uend]
		return nil
	}
	return d.Decode(frame)
}

// decodeEthIPv4 fills the Ethernet and optionless-IPv4 state for the
// fast path (callers have already validated the frame).
func (d *Decoder) decodeEthIPv4(frame, ip []byte) {
	d.Decoded = append(d.scratch[:0], LayerEthernet, LayerIPv4)
	d.VLANID = VLANNone
	copy(d.Eth.Dst[:], frame[0:6])
	copy(d.Eth.Src[:], frame[6:12])
	d.Eth.EtherType = EtherTypeIPv4
	d.IPv4.IHL = 5
	d.IPv4.TOS = ip[1]
	d.IPv4.TotalLen = binary.BigEndian.Uint16(ip[2:4])
	d.IPv4.ID = binary.BigEndian.Uint16(ip[4:6])
	ff := binary.BigEndian.Uint16(ip[6:8])
	d.IPv4.Flags = uint8(ff >> 13)
	d.IPv4.FragOff = ff & 0x1fff
	d.IPv4.TTL = ip[8]
	d.IPv4.Protocol = ip[9]
	d.IPv4.Checksum = binary.BigEndian.Uint16(ip[10:12])
	d.IPv4.Src = IPv4AddrFrom(ip[12:16])
	d.IPv4.Dst = IPv4AddrFrom(ip[16:20])
}
