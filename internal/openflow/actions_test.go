package openflow

import (
	"encoding/binary"
	"testing"

	"packetshader/internal/packet"
)

func buildFrame(t *testing.T) []byte {
	t.Helper()
	buf := make([]byte, 2048)
	return packet.BuildUDP4(buf, 100,
		packet.MAC{1, 1, 1, 1, 1, 1}, packet.MAC{2, 2, 2, 2, 2, 2},
		packet.IPv4Addr(0x0A000001), packet.IPv4Addr(0x0B000002), 1000, 2000)
}

func decode(t *testing.T, frame []byte) *packet.Decoder {
	t.Helper()
	var d packet.Decoder
	if err := d.Decode(frame); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return &d
}

func TestSetDlAddrs(t *testing.T) {
	frame := buildFrame(t)
	newSrc := packet.MAC{9, 9, 9, 9, 9, 1}
	newDst := packet.MAC{9, 9, 9, 9, 9, 2}
	out, err := ApplyMods(frame, []Mod{
		{Type: ModSetDlSrc, MAC: newSrc},
		{Type: ModSetDlDst, MAC: newDst},
	})
	if err != nil {
		t.Fatal(err)
	}
	d := decode(t, out)
	if d.Eth.Src != newSrc || d.Eth.Dst != newDst {
		t.Errorf("MACs = %v/%v", d.Eth.Src, d.Eth.Dst)
	}
}

func TestSetNwAddrsFixChecksum(t *testing.T) {
	frame := buildFrame(t)
	out, err := ApplyMods(frame, []Mod{
		{Type: ModSetNwSrc, IP: packet.IPv4Addr(0xC0A80001)},
		{Type: ModSetNwDst, IP: packet.IPv4Addr(0xC0A80002)},
	})
	if err != nil {
		t.Fatal(err)
	}
	d := decode(t, out)
	if d.IPv4.Src != 0xC0A80001 || d.IPv4.Dst != 0xC0A80002 {
		t.Errorf("IPs = %v/%v", d.IPv4.Src, d.IPv4.Dst)
	}
	if !packet.VerifyIPv4Checksum(out[packet.EthHdrLen:]) {
		t.Error("checksum not fixed after NW rewrite")
	}
}

func TestSetTpPorts(t *testing.T) {
	frame := buildFrame(t)
	out, err := ApplyMods(frame, []Mod{
		{Type: ModSetTpSrc, Port: 5555},
		{Type: ModSetTpDst, Port: 6666},
	})
	if err != nil {
		t.Fatal(err)
	}
	d := decode(t, out)
	if d.UDP.SrcPort != 5555 || d.UDP.DstPort != 6666 {
		t.Errorf("ports = %d/%d", d.UDP.SrcPort, d.UDP.DstPort)
	}
}

func TestVLANPushSetStrip(t *testing.T) {
	frame := buildFrame(t)
	origLen := len(frame)
	// Push.
	out, err := ApplyMods(frame, []Mod{{Type: ModSetVLAN, VLAN: 100}})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != origLen+packet.VLANTagLen {
		t.Fatalf("push: len = %d", len(out))
	}
	d := decode(t, out)
	if d.VLANID != 100 || !d.Has(packet.LayerIPv4) || !d.Has(packet.LayerUDP) {
		t.Fatalf("pushed frame: vlan=%d layers=%v", d.VLANID, d.Decoded)
	}
	// Set VID on the existing tag: length unchanged.
	out, err = ApplyMods(out, []Mod{{Type: ModSetVLAN, VLAN: 200}})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != origLen+packet.VLANTagLen {
		t.Fatal("re-tag changed length")
	}
	if d := decode(t, out); d.VLANID != 200 {
		t.Errorf("vid = %d", d.VLANID)
	}
	// Strip restores the original frame exactly.
	out, err = ApplyMods(out, []Mod{{Type: ModStripVLAN}})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != origLen {
		t.Fatalf("strip: len = %d want %d", len(out), origLen)
	}
	d2 := decode(t, out)
	if d2.VLANID != packet.VLANNone || d2.UDP.DstPort != 2000 {
		t.Error("stripped frame corrupted")
	}
}

func TestStripVLANNoTagIsNoop(t *testing.T) {
	frame := buildFrame(t)
	out, err := ApplyMods(frame, []Mod{{Type: ModStripVLAN}})
	if err != nil || len(out) != len(frame) {
		t.Errorf("strip on untagged: err=%v len=%d", err, len(out))
	}
}

func TestNwRewriteThroughVLANTag(t *testing.T) {
	frame := buildFrame(t)
	out, _ := ApplyMods(frame, []Mod{{Type: ModSetVLAN, VLAN: 7}})
	out, err := ApplyMods(out, []Mod{{Type: ModSetNwDst, IP: 0x01020304}})
	if err != nil {
		t.Fatal(err)
	}
	d := decode(t, out)
	if d.IPv4.Dst != 0x01020304 {
		t.Errorf("dst = %v", d.IPv4.Dst)
	}
	ipOff := packet.EthHdrLen + packet.VLANTagLen
	if !packet.VerifyIPv4Checksum(out[ipOff:]) {
		t.Error("checksum wrong after rewrite under VLAN")
	}
}

func TestModsNotApplicable(t *testing.T) {
	arp := make([]byte, 64)
	binary.BigEndian.PutUint16(arp[12:14], packet.EtherTypeARP)
	if _, err := ApplyMods(arp, []Mod{{Type: ModSetNwSrc, IP: 1}}); err != ErrNotApplicable {
		t.Errorf("NW rewrite of ARP: err = %v", err)
	}
	short := make([]byte, 8)
	if _, err := ApplyMods(short, []Mod{{Type: ModSetDlSrc}}); err != ErrNotApplicable {
		t.Errorf("mod on runt frame: err = %v", err)
	}
}

func TestChecksumUpdate32MatchesRecompute(t *testing.T) {
	frame := buildFrame(t)
	hdr := frame[packet.EthHdrLen : packet.EthHdrLen+packet.IPv4HdrLen]
	for _, newIP := range []uint32{0, 0xFFFFFFFF, 0x01020304, 0xC0A80101} {
		cp := make([]byte, len(hdr))
		copy(cp, hdr)
		old := binary.BigEndian.Uint32(cp[16:20])
		cs := binary.BigEndian.Uint16(cp[10:12])
		inc := packet.ChecksumUpdate32(cs, old, newIP)
		binary.BigEndian.PutUint32(cp[16:20], newIP)
		binary.BigEndian.PutUint16(cp[10:12], 0)
		full := packet.Checksum(cp)
		if inc != full {
			t.Errorf("newIP %#x: incremental %#04x vs full %#04x", newIP, inc, full)
		}
	}
}
