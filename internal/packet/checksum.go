package packet

import "encoding/binary"

// Checksum computes the RFC 1071 Internet checksum over b.
func Checksum(b []byte) uint16 {
	return finishChecksum(sumWords(b, 0))
}

// sumWords adds the 16-bit big-endian words of b to acc (odd trailing
// byte padded with zero, per RFC 1071).
func sumWords(b []byte, acc uint32) uint32 {
	for len(b) >= 2 {
		acc += uint32(binary.BigEndian.Uint16(b))
		b = b[2:]
	}
	if len(b) == 1 {
		acc += uint32(b[0]) << 8
	}
	return acc
}

func finishChecksum(sum uint32) uint16 {
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	return ^uint16(sum)
}

// ChecksumUpdateTTLDecrement incrementally updates an IPv4 header
// checksum for a TTL decrement, per RFC 1624 (eqn. 3): the router's fast
// path must not recompute the full header sum for every packet.
// old16 is the big-endian 16-bit word containing {TTL, protocol} before
// the decrement.
func ChecksumUpdateTTLDecrement(oldSum uint16, old16 uint16) uint16 {
	new16 := old16 - 0x0100 // TTL is the high byte of the word
	// HC' = ~(~HC + ~m + m')
	sum := uint32(^oldSum) + uint32(^old16&0xffff) + uint32(new16)
	return finishChecksum(sum) // finish already complements
}

// ChecksumUpdate16 incrementally updates a checksum for one 16-bit word
// changing from old16 to new16 (RFC 1624 eqn. 3).
func ChecksumUpdate16(oldSum, old16, new16 uint16) uint16 {
	sum := uint32(^oldSum) + uint32(^old16&0xffff) + uint32(new16)
	return finishChecksum(sum)
}

// ChecksumUpdate32 incrementally updates a checksum for a 32-bit field
// (e.g. an IPv4 address) changing from old32 to new32.
func ChecksumUpdate32(oldSum uint16, old32, new32 uint32) uint16 {
	s := ChecksumUpdate16(oldSum, uint16(old32>>16), uint16(new32>>16))
	return ChecksumUpdate16(s, uint16(old32), uint16(new32))
}

// PseudoHeaderChecksumIPv4 computes the checksum seed of the IPv4
// pseudo-header used by UDP and TCP.
func PseudoHeaderChecksumIPv4(src, dst IPv4Addr, proto uint8, length int) uint32 {
	var acc uint32
	acc += uint32(src >> 16)
	acc += uint32(src & 0xffff)
	acc += uint32(dst >> 16)
	acc += uint32(dst & 0xffff)
	acc += uint32(proto)
	acc += uint32(length)
	return acc
}

// TransportChecksumIPv4 computes the UDP/TCP checksum over segment
// (headers+payload) with the IPv4 pseudo-header.
func TransportChecksumIPv4(src, dst IPv4Addr, proto uint8, segment []byte) uint16 {
	acc := PseudoHeaderChecksumIPv4(src, dst, proto, len(segment))
	return finishChecksum(sumWords(segment, acc))
}
