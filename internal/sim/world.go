package sim

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
)

// World couples several independent environments (partitions) into one
// simulation that can advance them concurrently on host goroutines while
// producing output byte-identical to running them serially.
//
// The protocol is classic conservative (Chandy–Misra time-window)
// parallelism. Partitions interact only through Links, each carrying a
// strictly positive latency; the minimum link latency is the world's
// lookahead W. World.Run advances all partitions in windows of width W:
// an event executed at time t inside a window can influence another
// partition no earlier than t+W, which lies beyond the window's end, so
// within a window every partition's event loop is causally independent
// and may run on its own goroutine. At the window barrier, messages sent
// during the window are delivered serially — links in creation order,
// messages in send order — by scheduling arrival events into the
// destination environments. Each destination assigns those events its own
// (at, seq) order at that deterministic insertion point, so the next
// window executes them exactly as a serial run would: the worker count
// changes only which host goroutine drives a partition, never the event
// order within one.
type World struct {
	parts     []*Partition
	links     []flusher
	lookahead Duration // min link latency (0 until the first link exists)
	running   bool
	closed    bool

	busy  []*Partition // per-window scratch: partitions with runnable work
	dirty []int        // per-window scratch: creation indexes of dirty links

	// flushAll disables dirty-link tracking so every window barrier
	// flushes every link, as the pre-tracking implementation did. The
	// two schedules are byte-for-byte identical (the dirty list is
	// flushed in link creation order, and a clean link's flush is a
	// no-op); the flag exists so tests can assert exactly that.
	flushAll bool
}

// Partition is one member environment of a World. Its processes must
// touch only state owned by the partition; the only way to affect another
// partition is Link.Send. (The procshare analyzer plus the shrinking
// pslint baseline are the repository's static evidence that model code
// honors this — see DESIGN.md, "Conservative-parallel execution".)
type Partition struct {
	world *World
	index int
	name  string
	env   *Env

	// dirty lists this partition's outgoing links that have buffered
	// sends in the current window, in first-send order. Only processes
	// of this partition append (Link.Send runs in the source
	// partition), so the list needs no synchronization; the barrier
	// collects, sorts, and clears it.
	dirty []flusher
}

// flusher is the untyped view of Link[T] used by the window barrier.
type flusher interface {
	flush()
	order() int // creation index, the deterministic flush order
}

// NewWorld returns an empty world.
func NewWorld() *World { return &World{} }

// NewPartition adds a partition with a fresh environment (clock at zero).
func (w *World) NewPartition(name string) *Partition {
	if w.running {
		panic("sim: NewPartition during World.Run")
	}
	if w.closed {
		panic("sim: NewPartition on closed World")
	}
	pt := &Partition{world: w, index: len(w.parts), name: name, env: NewEnv()}
	w.parts = append(w.parts, pt)
	return pt
}

// Env returns the partition's environment.
func (pt *Partition) Env() *Env { return pt.env }

// Name returns the name given at NewPartition time.
func (pt *Partition) Name() string { return pt.name }

// Index returns the partition's position in creation order.
func (pt *Partition) Index() int { return pt.index }

// Partitions returns the world's partitions in creation order.
func (w *World) Partitions() []*Partition { return w.parts }

// Lookahead returns the minimum link latency, the window width used by
// Run (0 if the world has no links yet, in which case Run uses a single
// window: unlinked partitions never interact).
func (w *World) Lookahead() Duration { return w.lookahead }

// linkItem is one in-flight message: its arrival time and payload.
type linkItem[T any] struct {
	at Time
	v  T
}

// Link is a unidirectional cross-partition channel with latency. A
// message sent at time t becomes visible to the destination partition at
// t+latency, by TryPut into dst at that instant. The latency is the
// propagation delay of the modeled wire and, crucially, the lookahead
// that makes conservative parallelism sound — which is why zero-latency
// links are rejected at construction.
type Link[T any] struct {
	from, to *Partition
	latency  Duration
	dst      *Queue[T]
	idx      int // creation index across the world's links
	pending  []linkItem[T]

	// inflight holds flushed messages awaiting delivery, in arrival
	// order (send times are nondecreasing per link, so arrivals are
	// too). One reusable callback (deliver) walks it: each scheduled
	// event delivers every message due at that instant and re-arms at
	// the next arrival, so a window's burst costs one scheduled event
	// per distinct arrival instant instead of one closure per message.
	inflight Ring[linkItem[T]]
	armed    bool
	deliver  func()
	lastSend Time // latest accepted departure time (SendAt monotonicity)

	// Sent counts messages accepted by Send; Dropped counts arrivals
	// rejected because dst was full at delivery time. Both are
	// deterministic. Use an unbounded dst queue for lossless links.
	Sent    uint64
	Dropped uint64
}

// NewLink connects from → to with the given latency, delivering into
// dst, which must belong to to's environment. Latency must be strictly
// positive: a zero-latency link would give the world zero lookahead and
// no window in which partitions can safely run concurrently.
func NewLink[T any](from, to *Partition, latency Duration, dst *Queue[T]) *Link[T] {
	if from == nil || to == nil || from.world != to.world {
		panic("sim: NewLink endpoints must belong to the same World")
	}
	if from == to {
		panic("sim: NewLink endpoints must be distinct partitions")
	}
	if latency <= 0 {
		panic(fmt.Sprintf("sim: NewLink latency must be positive (got %d): zero-latency links leave no lookahead", latency))
	}
	if dst == nil || dst.env != to.env {
		panic("sim: NewLink dst queue must belong to the destination partition")
	}
	w := from.world
	if w.running {
		panic("sim: NewLink during World.Run")
	}
	l := &Link[T]{from: from, to: to, latency: latency, dst: dst, idx: len(w.links)}
	l.deliver = l.deliverDue
	w.links = append(w.links, l)
	if w.lookahead == 0 || latency < w.lookahead {
		w.lookahead = latency
	}
	return l
}

// Send transmits v from the calling process, to arrive at the
// destination partition after the link latency. It never blocks; wire
// serialization (bandwidth) should be modeled with a Server in the
// sending partition before calling Send — or computed arithmetically
// and expressed through SendAt.
func (l *Link[T]) Send(p *Proc, v T) { l.SendAt(p, p.Now(), v) }

// SendAt transmits v departing at the future instant depart (arrival is
// depart+latency). It lets a sender that models wire serialization
// arithmetically — "this message finishes serializing at T" — emit the
// message without sleeping until T. Departures on one link must be
// nondecreasing, which keeps the link FIFO and its in-flight buffer in
// arrival order; a send that would reorder the wire panics.
func (l *Link[T]) SendAt(p *Proc, depart Time, v T) {
	if p.env != l.from.env {
		panic("sim: Link.Send from a process outside the source partition")
	}
	if depart < p.Now() {
		panic("sim: Link.SendAt departure in the past")
	}
	if depart < l.lastSend {
		panic("sim: Link.SendAt departures must be nondecreasing (FIFO wire)")
	}
	l.lastSend = depart
	l.Sent++
	if len(l.pending) == 0 {
		pt := l.from
		pt.dirty = append(pt.dirty, l)
	}
	l.pending = append(l.pending, linkItem[T]{at: depart + Time(l.latency), v: v})
}

// order returns the link's creation index, the order the barrier
// flushes dirty links in.
func (l *Link[T]) order() int { return l.idx }

// flush runs at the window barrier, on the World.Run goroutine, after
// all partitions have joined. Every pending arrival lies strictly
// beyond the window that produced it (send at t ≥ window start, arrival
// t+latency ≥ start+lookahead > window end), so moving it in-flight and
// arming the delivery callback here — before the next window starts —
// delivers it exactly when a serial run would.
func (l *Link[T]) flush() {
	if len(l.pending) == 0 {
		return
	}
	for i := range l.pending {
		l.inflight.PushBack(l.pending[i])
		l.pending[i] = linkItem[T]{}
	}
	l.pending = l.pending[:0]
	if !l.armed {
		l.armed = true
		l.to.env.At(l.inflight.Front().at, l.deliver)
	}
}

// deliverDue runs in the destination environment at an arrival instant:
// it delivers every in-flight message due now (dst assigns them
// consecutive wakeups, preserving send order) and re-arms at the next
// arrival, if any.
func (l *Link[T]) deliverDue() {
	now := l.to.env.Now()
	for l.inflight.Len() > 0 && l.inflight.Front().at == now {
		it := l.inflight.PopFront()
		if !l.dst.TryPut(it.v) {
			l.Dropped++
		}
	}
	if l.inflight.Len() > 0 {
		l.to.env.At(l.inflight.Front().at, l.deliver)
	} else {
		l.armed = false
	}
}

// Run advances every partition to the absolute virtual time until
// (inclusive, like Env.Run), using up to workers host goroutines per
// window. workers == 1 is the serial reference schedule; any workers
// value produces byte-identical results. The horizon must be positive:
// conservative windows cannot detect global termination of an endless
// exchange, so an explicit horizon bounds the run.
func (w *World) Run(until Time, workers int) Time {
	if w.running {
		panic("sim: World.Run re-entered")
	}
	if w.closed {
		panic("sim: World.Run on closed World")
	}
	if until <= 0 {
		panic("sim: World.Run requires a positive horizon")
	}
	if workers < 1 {
		workers = 1
	}
	w.running = true
	defer func() { w.running = false }()
	for {
		// The next window starts at the earliest pending event anywhere,
		// so idle stretches of virtual time cost nothing.
		start, ok := w.nextEventAt()
		if !ok || start > until {
			break
		}
		end := until
		if w.lookahead > 0 {
			// Window [start, start+W) — Env.Run horizons are inclusive,
			// hence the -1. An event exactly at `end` still executes in
			// this window; its sends arrive at ≥ end+1, next window.
			if we := start + Time(w.lookahead) - 1; we < end {
				end = we
			}
		}
		w.advance(end, workers)
		w.barrier()
	}
	// Settle every clock at the horizon so Now() is uniform afterwards.
	for _, pt := range w.parts {
		pt.env.Run(until)
	}
	return until
}

// barrier flushes the window's sends. Only links that actually buffered
// messages are visited — O(active links), not O(links) — collected from
// the per-partition dirty lists and flushed in creation order, the same
// order a flush-all pass would visit them in (a clean link's flush is a
// no-op), so dirty tracking is schedule-invisible. The advance barrier
// (WaitGroup) has already ordered the workers' writes to the dirty
// lists and pending buffers before this read.
func (w *World) barrier() {
	if w.flushAll {
		for _, l := range w.links {
			l.flush()
		}
		for _, pt := range w.parts {
			pt.dirty = pt.dirty[:0]
		}
		return
	}
	w.dirty = w.dirty[:0]
	for _, pt := range w.parts {
		for _, l := range pt.dirty {
			w.dirty = append(w.dirty, l.order())
		}
		pt.dirty = pt.dirty[:0]
	}
	slices.Sort(w.dirty)
	for _, i := range w.dirty {
		w.links[i].flush()
	}
}

// nextEventAt returns the earliest pending event time across partitions.
func (w *World) nextEventAt() (Time, bool) {
	var best Time
	found := false
	for _, pt := range w.parts {
		if t, ok := pt.env.NextEventAt(); ok && (!found || t < best) {
			best, found = t, true
		}
	}
	return best, found
}

// advance runs every partition's event loop up to end. Partitions with
// no event due in this window only need their clock moved, which happens
// inline; the rest are fanned out over up to `workers` goroutines. The
// environments share no state and the barrier (WaitGroup) orders their
// memory effects before flush reads the links' pending buffers.
func (w *World) advance(end Time, workers int) {
	if workers <= 1 {
		for _, pt := range w.parts {
			pt.env.Run(end)
		}
		return
	}
	w.busy = w.busy[:0]
	for _, pt := range w.parts {
		if t, ok := pt.env.NextEventAt(); ok && t <= end {
			w.busy = append(w.busy, pt)
		} else {
			pt.env.Run(end)
		}
	}
	if len(w.busy) <= 1 {
		for _, pt := range w.busy {
			pt.env.Run(end)
		}
		return
	}
	if workers > len(w.busy) {
		workers = len(w.busy)
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			for {
				i := atomic.AddInt64(&next, 1) - 1
				if i >= int64(len(w.busy)) {
					return
				}
				w.busy[i].env.Run(end)
			}
		}()
	}
	wg.Wait()
}

// Close terminates all partitions' parked processes (Env.Close) in
// partition order, releasing their goroutines. Idempotent; the world is
// unusable afterwards.
func (w *World) Close() {
	if w.running {
		panic("sim: World.Close during Run")
	}
	if w.closed {
		return
	}
	w.closed = true
	for _, pt := range w.parts {
		pt.env.Close()
	}
}
