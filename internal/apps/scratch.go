package apps

// scratch resizes s to n elements, all zero, reusing the backing array
// when it is large enough. Chunks recycled by the core free list keep
// their State, so per-chunk app scratch reaches steady state with no
// allocation.
func scratch[T any](s []T, n int) []T {
	if n <= cap(s) {
		s = s[:n]
		var zero T
		for i := range s {
			s[i] = zero
		}
		return s
	}
	return make([]T, n)
}
