package ipsec

import (
	"crypto/subtle"
	"encoding/binary"
	"errors"

	"packetshader/internal/packet"
)

// ESP framing constants (RFC 4303, tunnel mode, AES-CTR per RFC 3686).
const (
	espHdrLen = 8 // SPI(4) + sequence(4)
	espIVLen  = 8 // explicit per-packet IV for AES-CTR
	// espAlign is the trailer alignment for AES-CTR payloads.
	espAlign = 4
)

// Decap errors.
var (
	ErrAuth      = errors.New("ipsec: ICV verification failed")
	ErrReplay    = errors.New("ipsec: replayed or stale sequence number")
	ErrMalformed = errors.New("ipsec: malformed ESP packet")
	ErrBadSPI    = errors.New("ipsec: unknown SPI")
)

// SA is a security association: one direction of an ESP tunnel.
type SA struct {
	SPI     uint32
	LocalIP packet.IPv4Addr // outer source on encap
	PeerIP  packet.IPv4Addr // outer destination on encap

	aes   *AES
	hmac  *HMACSHA1
	nonce uint32

	seq    uint32 // outbound sequence counter
	replay replayWindow
}

// NewSA creates an SA with a 16-byte AES key and an arbitrary-length
// HMAC key. nonce is the RFC 3686 per-SA salt.
func NewSA(spi, nonce uint32, encKey, authKey []byte, local, peer packet.IPv4Addr) *SA {
	return &SA{
		SPI:     spi,
		LocalIP: local,
		PeerIP:  peer,
		aes:     NewAES(encKey),
		hmac:    NewHMACSHA1(authKey),
		nonce:   nonce,
	}
}

// Seq returns the last sequence number issued.
func (sa *SA) Seq() uint32 { return sa.seq }

// EncapOverhead returns the total bytes Encap adds to an inner packet of
// the given length (outer IPv4 + ESP header + IV + pad + trailer + ICV).
func EncapOverhead(innerLen int) int {
	padded := padLen(innerLen)
	return packet.IPv4HdrLen + espHdrLen + espIVLen + (padded - innerLen) + 2 + ICVSize
}

// padLen returns innerLen padded so that payload+padlen+nexthdr is
// 4-byte aligned.
func padLen(innerLen int) int {
	rem := (innerLen + 2) % espAlign
	if rem == 0 {
		return innerLen
	}
	return innerLen + (espAlign - rem)
}

// Encap wraps inner (a complete inner IP packet) in tunnel-mode ESP and
// returns the outer IPv4 packet written into dst (which must have
// capacity for len(inner)+EncapOverhead). The sequence number and IV are
// taken from the SA's outbound counter.
func (sa *SA) Encap(dst, inner []byte) ([]byte, error) {
	sa.seq++
	seq := sa.seq
	iv := uint64(sa.SPI)<<32 | uint64(seq) // unique per (key, packet)

	padded := padLen(len(inner))
	pad := padded - len(inner)
	total := packet.IPv4HdrLen + espHdrLen + espIVLen + padded + 2 + ICVSize
	if cap(dst) < total {
		return nil, ErrMalformed
	}
	out := dst[:total]

	// Outer IPv4 header.
	outer := packet.IPv4Hdr{
		IHL: 5, TotalLen: uint16(total), TTL: 64,
		Protocol: packet.ProtoESP, Src: sa.LocalIP, Dst: sa.PeerIP,
	}
	outer.Encode(out)

	// ESP header + IV.
	esp := out[packet.IPv4HdrLen:]
	binary.BigEndian.PutUint32(esp[0:4], sa.SPI)
	binary.BigEndian.PutUint32(esp[4:8], seq)
	binary.BigEndian.PutUint64(esp[8:16], iv)

	// Plaintext: inner packet + monotonic pad bytes + padlen + next
	// header (4 = IPv4-in-IPsec).
	body := esp[espHdrLen+espIVLen:]
	pt := body[:padded+2]
	copy(pt, inner)
	for i := 0; i < pad; i++ {
		pt[len(inner)+i] = byte(i + 1) // RFC 4303 default pad pattern
	}
	pt[padded] = byte(pad)
	pt[padded+1] = 4

	// Encrypt in place.
	sa.aes.CTR(pt, pt, sa.nonce, iv)

	// ICV over ESP header through trailer.
	icv := sa.hmac.ICV(esp[:espHdrLen+espIVLen+padded+2])
	copy(body[padded+2:], icv[:])
	return out, nil
}

// Decap validates and unwraps an outer IPv4+ESP packet, returning the
// inner IP packet (aliasing the decrypted region of outer).
func (sa *SA) Decap(outer []byte) ([]byte, error) {
	var hdr packet.IPv4Hdr
	payload, err := hdr.Decode(outer)
	if err != nil || hdr.Protocol != packet.ProtoESP {
		return nil, ErrMalformed
	}
	if len(payload) < espHdrLen+espIVLen+2+ICVSize {
		return nil, ErrMalformed
	}
	spi := binary.BigEndian.Uint32(payload[0:4])
	if spi != sa.SPI {
		return nil, ErrBadSPI
	}
	seq := binary.BigEndian.Uint32(payload[4:8])
	if !sa.replay.check(seq) {
		return nil, ErrReplay
	}

	authed := payload[:len(payload)-ICVSize]
	wantICV := payload[len(payload)-ICVSize:]
	icv := sa.hmac.ICV(authed)
	if subtle.ConstantTimeCompare(icv[:], wantICV) != 1 {
		return nil, ErrAuth
	}
	// Only now advance the replay window (ICV verified).
	sa.replay.advance(seq)

	iv := binary.BigEndian.Uint64(payload[8:16])
	ct := authed[espHdrLen+espIVLen:]
	sa.aes.CTR(ct, ct, sa.nonce, iv)

	padB := int(ct[len(ct)-2])
	next := ct[len(ct)-1]
	if next != 4 || padB > len(ct)-2 {
		return nil, ErrMalformed
	}
	return ct[:len(ct)-2-padB], nil
}

// ---------------------------------------------------------------------------
// Anti-replay window (RFC 4303 §3.4.3), 64-bit sliding bitmap.
// ---------------------------------------------------------------------------

type replayWindow struct {
	top    uint32 // highest sequence accepted
	bitmap uint64 // bit i == seq (top - i) seen
}

const replayWindowSize = 64

// check reports whether seq would be acceptable (not replayed/stale).
func (w *replayWindow) check(seq uint32) bool {
	if seq == 0 {
		return false // ESP sequence numbers start at 1
	}
	if seq > w.top {
		return true
	}
	off := w.top - seq
	if off >= replayWindowSize {
		return false
	}
	return w.bitmap&(1<<off) == 0
}

// advance marks seq as seen (call only after authentication).
func (w *replayWindow) advance(seq uint32) {
	if seq > w.top {
		shift := seq - w.top
		if shift >= replayWindowSize {
			w.bitmap = 0
		} else {
			w.bitmap <<= shift
		}
		w.top = seq
		w.bitmap |= 1
		return
	}
	w.bitmap |= 1 << (w.top - seq)
}
