package experiments

import (
	"fmt"

	"packetshader/internal/cluster"
	"packetshader/internal/faults"
	"packetshader/internal/sim"
)

// Cluster evaluates the §7 horizontal-scaling direction: aggregate
// capacity of a full-mesh cluster of PacketShader boxes under direct
// routing, Valiant Load Balancing, and RouteBricks-style direct VLB,
// for benign (uniform), hot-pair (permutation), and adversarial
// (incast) traffic. Each box contributes 40 Gbps of external ports and
// the single-box ≈40 Gbps forwarding budget measured in Figure 6;
// internal mesh links are 10GbE.
func Cluster() *Result { return runSolo(clusterScaling) }

func clusterScaling(c *Ctx) *Result {
	r := &Result{
		ID:     "cluster",
		Title:  "Horizontal scaling with VLB (§7): admissible aggregate Gbps",
		Header: []string{"Nodes", "Matrix", "direct", "vlb", "direct-vlb", "hops(direct-vlb)"},
	}
	type spec struct {
		nodes  int
		matrix string
	}
	var specs []spec
	for _, n := range []int{2, 4, 8, 16} {
		for _, m := range []string{"uniform", "permutation", "incast"} {
			specs = append(specs, spec{n, m})
		}
	}
	rows := MapPoints(c, len(specs), func(i int, _ *Point) []string {
		s := specs[i]
		cfg := cluster.Config{
			Nodes:              s.nodes,
			ExternalGbps:       40,
			NodeForwardingGbps: 40,
			InternalLinkGbps:   10,
		}
		var m cluster.Matrix
		switch s.matrix {
		case "uniform":
			m = cluster.Uniform(s.nodes, float64(s.nodes)*40)
		case "permutation":
			m = cluster.Permutation(s.nodes, 40)
		default:
			m = cluster.Incast(s.nodes, 40)
		}
		row := []string{fmt.Sprintf("%d", s.nodes), s.matrix}
		var hops float64
		for _, scheme := range []cluster.Routing{cluster.Direct, cluster.VLB, cluster.DirectVLB} {
			res, err := cluster.Evaluate(cfg, scheme, m)
			if err != nil {
				panic(err)
			}
			row = append(row, fmt.Sprintf("%.0f", res.ThroughputGbps))
			if scheme == cluster.DirectVLB {
				hops = res.MeanHops
			}
		}
		return append(row, fmt.Sprintf("%.2f", hops))
	})
	r.Rows = append(r.Rows, rows...)
	r.Note("one PacketShader box replaces RB4, RouteBricks' 4-machine cluster (§8)")
	r.Note("VLB trades forwarding budget (≈3 hops) for guaranteed worst-case throughput")
	return r
}

// partitionWorkers is the number of host goroutines the DES fabric uses
// to advance its per-node partitions (the psbench -p value). Results
// are byte-identical for any value; only wall-clock time changes. Set
// before running experiments, from one goroutine — jobs only read it.
var partitionWorkers = 1

// SetPartitionWorkers sets the conservative-parallel worker count for
// fabric runs (values below 1 mean 1).
func SetPartitionWorkers(n int) {
	if n < 1 {
		n = 1
	}
	partitionWorkers = n
}

// Fabric runs the cluster DES fabric: where the cluster experiment
// asks the analytic model what is admissible, this one builds a world
// of per-node sim partitions connected by latency-carrying links,
// advances them conservatively in parallel, and reports what the mesh
// actually delivered.
func Fabric() *Result { return runSolo(fabricScaling) }

func fabricScaling(c *Ctx) *Result {
	r := &Result{
		ID:     "fabric",
		Title:  "Cluster DES fabric (§7): delivered Gbps on per-node partitions",
		Header: []string{"Nodes", "Scheme", "offered", "admissible", "delivered", "hops", "mean-lat(us)", "max-lat(us)"},
	}
	type spec struct {
		nodes  int
		scheme cluster.Routing
		name   string
	}
	var specs []spec
	for _, n := range []int{4, 8, 16} {
		specs = append(specs, spec{n, cluster.Direct, "direct"}, spec{n, cluster.VLB, "vlb"})
	}
	rows := MapPoints(c, len(specs), func(i int, _ *Point) []string {
		s := specs[i]
		cfg := cluster.Config{
			Nodes:              s.nodes,
			ExternalGbps:       40,
			NodeForwardingGbps: 40,
			InternalLinkGbps:   10,
		}
		// Probe the analytic model at full external load, then offer 90%
		// of what it admits: the fabric should deliver essentially all of
		// it, tying the DES run to the analytic table row above.
		full := cluster.Uniform(s.nodes, float64(s.nodes)*40)
		ev, err := cluster.Evaluate(cfg, s.scheme, full)
		if err != nil {
			panic(err)
		}
		offered := 0.9 * ev.ThroughputGbps
		res, err := cluster.RunFabric(cluster.FabricConfig{
			Cluster:     cfg,
			Scheme:      s.scheme,
			Matrix:      cluster.Uniform(s.nodes, offered),
			LinkLatency: 50 * sim.Microsecond,
			Horizon:     5 * sim.Millisecond,
			Seed:        2026,
			Workers:     partitionWorkers,
		})
		if err != nil {
			panic(err)
		}
		return []string{
			fmt.Sprintf("%d", s.nodes), s.name,
			fmt.Sprintf("%.0f", res.OfferedGbps),
			fmt.Sprintf("%.0f", ev.ThroughputGbps),
			fmt.Sprintf("%.1f", res.DeliveredGbps),
			fmt.Sprintf("%.2f", res.MeanHops),
			fmt.Sprintf("%.1f", res.MeanLatency.Seconds()*1e6),
			fmt.Sprintf("%.1f", res.MaxLatency.Seconds()*1e6),
		}
	})
	r.Rows = append(r.Rows, rows...)
	r.Note("one sim partition per node; links carry 50us lookahead; batches are 16 KiB")
	r.Note("identical output for any -p: conservative windows + ordered merge are provably serial-equivalent")
	return r
}

// LeafSpine runs the two-tier Clos fabric at datacenter scale: leaf
// counts from 16 to 128 with a proportional spine tier, Zipf-sized
// flows pinned to one ECMP path each, and a faulted 128-leaf variant
// (an uplink dark from the start plus a mid-run spine outage). This is
// the scale frontier of ROADMAP item 2: the 128-leaf row is a 144-
// partition world with 8,192 links.
func LeafSpine() *Result { return runSolo(leafSpineScaling) }

func leafSpineScaling(c *Ctx) *Result {
	r := &Result{
		ID:     "leafspine",
		Title:  "Leaf–spine DES fabric (§7 at scale): ECMP delivery up to 128 leaves",
		Header: []string{"Leaves", "Spines", "Links", "Variant", "offered", "delivered", "hops", "mean-lat(us)", "route-drop", "node-drop"},
	}
	type spec struct {
		leaves, spines int
		faulted        bool
	}
	specs := []spec{{16, 4, false}, {64, 8, false}, {128, 16, false}, {128, 16, true}}
	rows := MapPoints(c, len(specs), func(i int, _ *Point) []string {
		s := specs[i]
		topo := &cluster.LeafSpine{
			Leaves: s.leaves, Spines: s.spines, Uplinks: 2,
			EdgeGbps: 40, LeafGbps: 40, SpineGbps: 160, UplinkGbps: 10,
		}
		cfg := cluster.FabricConfig{
			Topo: topo,
			// 10 Gbps of uniform ingress per leaf: inside every budget,
			// so healthy rows should deliver essentially all of it.
			Matrix:      cluster.Uniform(s.leaves, float64(s.leaves)*10),
			LinkLatency: 50 * sim.Microsecond,
			Horizon:     5 * sim.Millisecond,
			Seed:        2026,
			Workers:     partitionWorkers,
			Flows:       cluster.FlowModel{ZipfS: 1.1},
		}
		variant := "healthy"
		if s.faulted {
			variant = "faulted"
			cfg.Faults = faults.NewPlan().
				// Leaf 0's uplink slot 0 never comes up; spine 1 dies for
				// the middle fifth of the run.
				Add(faults.Event{At: 0, Kind: faults.KindLinkDown, Node: 0, Port: 0}).
				GPUOutage(s.leaves+1, 2*sim.Millisecond, 1*sim.Millisecond)
		}
		res, err := cluster.RunFabric(cfg)
		if err != nil {
			panic(err)
		}
		return []string{
			fmt.Sprintf("%d", s.leaves),
			fmt.Sprintf("%d", s.spines),
			fmt.Sprintf("%d", len(topo.Links())),
			variant,
			fmt.Sprintf("%.0f", res.OfferedGbps),
			fmt.Sprintf("%.1f", res.DeliveredGbps),
			fmt.Sprintf("%.2f", res.MeanHops),
			fmt.Sprintf("%.1f", res.MeanLatency.Seconds()*1e6),
			fmt.Sprintf("%d", res.RouteDrops),
			fmt.Sprintf("%d", res.NodeDrops),
		}
	})
	r.Rows = append(r.Rows, rows...)
	r.Note("two procs per node regardless of degree: wire serialization is an arithmetic FIFO recurrence")
	r.Note("flows are Zipf(1.1)-sized and keep their RSS hash, so ECMP pins each flow to one spine path")
	r.Note("a dead spine blackholes its hash share (leaves cannot see spine state across partitions)")
	return r
}
