package experiments

import (
	"fmt"

	"packetshader/internal/apps"
	"packetshader/internal/core"
	"packetshader/internal/faults"
	"packetshader/internal/model"
	"packetshader/internal/pktgen"
	"packetshader/internal/route"
	"packetshader/internal/sim"

	lookupv4 "packetshader/internal/lookup/ipv4"
)

// Degradation-curve timeline (absolute virtual time; measurement starts
// after warmup). The GPU fails on both nodes at faultAt and is repaired
// at faultAt+outageLen; the curve is sampled in 1 ms windows.
const (
	faultWarmup    = 3 * sim.Millisecond
	faultAt        = 8 * sim.Millisecond
	faultOutageLen = 8 * sim.Millisecond
	faultEnd       = 22 * sim.Millisecond
	faultWindow    = 1 * sim.Millisecond
	faultPrefixes  = 20000
	faultSeed      = 2026
)

// faultIPv4Router builds the degradation-scenario router: paper-default
// CPU+GPU IPv4 forwarding at full load with a 20k-prefix table, plus an
// optional fault plan.
func faultIPv4Router(env *sim.Env, mode core.Mode, plan *faults.Plan) *core.Router {
	entries := route.GenerateBGPTable(faultPrefixes, 64, faultSeed)
	tbl, err := lookupv4.Build(entries)
	if err != nil {
		panic(err)
	}
	cfg := core.DefaultConfig()
	cfg.Mode = mode
	cfg.PacketSize = 64
	cfg.Faults = plan
	r := core.New(env, cfg, &apps.IPv4Fwd{Table: tbl, NumPorts: model.NumPorts})
	r.SetSource(&pktgen.UDP4Source{Size: 64, Seed: faultSeed, Table: entries})
	return r
}

// cpuOnlyEnvelope measures fault-free CPU-only throughput of the same
// workload — the floor the degraded system must stay within.
func cpuOnlyEnvelope() float64 {
	env := sim.NewEnv()
	defer env.Close()
	r := faultIPv4Router(env, core.ModeCPUOnly, nil)
	r.Start()
	env.Run(sim.Time(faultWarmup))
	r.ResetMeasurement()
	env.Run(sim.Time(faultWarmup + 5*sim.Millisecond))
	return r.DeliveredGbps()
}

// faultCurve runs the outage scenario and appends the degradation-curve
// rows and fault counters to res.
func faultCurve(res *Result) {
	env := sim.NewEnv()
	defer env.Close()
	plan := faults.NewPlan()
	for n := 0; n < model.NumNodes; n++ {
		plan.GPUOutage(n, faultAt, faultOutageLen)
	}
	r := faultIPv4Router(env, core.ModeGPU, plan)
	r.Start()
	env.Run(sim.Time(faultWarmup))
	r.ResetMeasurement()

	prevWire := r.Engine.DeliveredWire()
	for t := faultWarmup; t < faultEnd; t += faultWindow {
		env.Run(sim.Time(t + faultWindow))
		wire := r.Engine.DeliveredWire()
		gbps := (wire - prevWire) / faultWindow.Seconds() * model.PortRateBps / 1e9
		prevWire = wire
		phase := "baseline"
		switch {
		case t+faultWindow > faultAt+faultOutageLen:
			phase = "recovered"
		case t+faultWindow > faultAt:
			phase = "outage"
		}
		res.AddRow(fmt.Sprintf("%d", int(sim.Duration(t)/sim.Millisecond)),
			fmt.Sprintf("%.2f", gbps), phase)
	}

	res.Note("GPU fails on both nodes at t=%dms, repaired at t=%dms; watchdog %.0fus, backoff %.0fus..%.0fus",
		int(faultAt/sim.Millisecond), int((faultAt+faultOutageLen)/sim.Millisecond),
		r.Cfg.GPUWatchdog.Microseconds(), r.Cfg.GPUBackoff.Microseconds(),
		r.Cfg.GPUBackoffMax.Microseconds())
	res.Note("stalls=%d fallback_chunks=%d carrier_drops=%d degraded=%.0fus",
		r.Stats.GPUStalls, r.Stats.FallbackChunks, r.CarrierDrops(),
		r.DegradedTime().Microseconds())
}

// FaultScenario reproduces the graceful-degradation curve: full CPU+GPU
// throughput, GPU failure on both nodes at t₁, watchdog detection and
// CPU-only plateau, repair at t₂, then recovery — all on the virtual
// clock, byte-identical across runs.
func FaultScenario() *Result { return runSolo(faultScenario) }

func faultScenario(c *Ctx) *Result {
	res := &Result{
		ID:     "faults",
		Title:  "GPU outage degradation curve (IPv4, 64B, full load)",
		Header: []string{"t_ms", "Gbps", "phase"},
	}
	// Job 0 runs the outage curve (it owns res until the barrier); job 1
	// runs the independent fault-free CPU-only envelope.
	envelope := MapPoints(c, 2, func(i int, _ *Point) float64 {
		if i == 0 {
			faultCurve(res)
			return 0
		}
		return cpuOnlyEnvelope()
	})[1]
	res.Note("CPU-only envelope (fault-free, same workload): %.2f Gbps", envelope)
	return res
}
