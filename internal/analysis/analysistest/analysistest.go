// Package analysistest runs pslint analyzers over fixture packages and
// checks their diagnostics against `// want "regexp"` comments, in the
// style of golang.org/x/tools/go/analysis/analysistest. Fixtures live
// under <analyzer>/testdata/src/<pkg>/ so the go tool never builds them,
// yet they are parsed and fully type-checked here — including imports of
// the real packetshader/internal/sim package, which the shared Loader
// resolves from the enclosing module.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"packetshader/internal/analysis"
	"packetshader/internal/analysis/load"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData() string {
	_, file, _, ok := runtime.Caller(1)
	if !ok {
		panic("analysistest: cannot locate caller")
	}
	return filepath.Join(filepath.Dir(file), "testdata")
}

// shared fixture-import loader: one per process, lazily grown. All
// fixture packages type-check against the same dependency universe.
var (
	loaderOnce sync.Once
	loaderErr  error
	loader     *load.Loader
	loaderMu   sync.Mutex
)

func sharedLoader() (*load.Loader, error) {
	loaderOnce.Do(func() {
		root, err := load.ModuleRoot(".")
		if err != nil {
			loaderErr = err
			return
		}
		loader = load.NewLoader(root)
	})
	return loader, loaderErr
}

// Run applies analyzer a to each fixture package (a directory name under
// testdata/src) and reports mismatches between the diagnostics produced
// and the `// want` expectations in the fixture sources.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		runOne(t, filepath.Join(testdata, "src", pkg), a)
	}
}

func runOne(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	l, err := sharedLoader()
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	loaderMu.Lock()
	defer loaderMu.Unlock()

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	var files []*ast.File
	var filenames []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(l.Fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("analysistest: parse %s: %v", path, err)
		}
		files = append(files, f)
		filenames = append(filenames, path)
	}
	if len(files) == 0 {
		t.Fatalf("analysistest: no Go files in %s", dir)
	}

	// Load every import the fixture mentions before type-checking it.
	imports := map[string]bool{}
	for _, f := range files {
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err == nil && p != "unsafe" {
				imports[p] = true
			}
		}
	}
	var paths []string
	for p := range imports {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	if len(paths) > 0 {
		if _, err := l.Load(paths...); err != nil {
			t.Fatalf("analysistest: loading fixture imports: %v", err)
		}
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: fixtureImporter{l}}
	pkgPath := "fixture/" + filepath.Base(dir)
	tpkg, err := conf.Check(pkgPath, l.Fset, files, info)
	if err != nil {
		t.Fatalf("analysistest: typecheck %s: %v", dir, err)
	}

	pass := analysis.NewPass(a, l.Fset, files, tpkg, info)
	if err := a.Run(pass); err != nil {
		t.Fatalf("analysistest: %s: %v", a.Name, err)
	}
	check(t, l.Fset, files, filenames, pass.Diagnostics)
}

type fixtureImporter struct{ l *load.Loader }

func (fi fixtureImporter) Import(path string) (*types.Package, error) {
	if p := fi.l.Lookup(path); p != nil && p.Types != nil {
		return p.Types, nil
	}
	return nil, fmt.Errorf("fixture import %q not loaded", path)
}

// expectation is one `// want "re"` clause.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	text string
	met  bool
}

// wantRE matches one clause of a want comment: a double-quoted Go
// string or a raw backquoted regexp.
var wantRE = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// check compares diagnostics against // want comments. A want comment
// applies to the line it appears on.
func check(t *testing.T, fset *token.FileSet, files []*ast.File, filenames []string, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(text[len("want "):], -1) {
					lit := m[2] // backquoted form, used verbatim
					if m[1] != "" || m[2] == "" {
						var err error
						lit, err = strconv.Unquote(`"` + m[1] + `"`)
						if err != nil {
							t.Errorf("%s:%d: bad want clause %q: %v", pos.Filename, pos.Line, m[0], err)
							continue
						}
					}
					re, err := regexp.Compile(lit)
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, lit, err)
						continue
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, text: lit})
				}
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.met && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.text)
		}
	}
}
