package route

import (
	"sort"
	"sync/atomic"

	"packetshader/internal/packet"
)

// FIB is a forwarding information base with the double-buffered update
// scheme discussed in §7: the data path reads one generation while the
// control plane prepares the next, then an atomic swap publishes it.
// Readers never observe a partially updated table.
type FIB[T any] struct {
	gens   [2]atomic.Pointer[T]
	active atomic.Int32
}

// NewFIB creates a FIB whose active generation is initial.
func NewFIB[T any](initial *T) *FIB[T] {
	f := &FIB[T]{}
	f.gens[0].Store(initial)
	return f
}

// Active returns the generation the data path should use.
func (f *FIB[T]) Active() *T {
	return f.gens[f.active.Load()].Load()
}

// Publish installs next as the new active generation and returns the
// previous one (which the control plane may recycle once no reader can
// still hold it — in the simulation, after the current chunk drains).
func (f *FIB[T]) Publish(next *T) *T {
	cur := f.active.Load()
	other := 1 - cur
	f.gens[other].Store(next)
	f.active.Store(other)
	return f.gens[cur].Load()
}

// ---------------------------------------------------------------------------
// RIB: the control-plane side holding the full route set and producing
// generations for the FIB.
// ---------------------------------------------------------------------------

// RIB is a simple IPv4 routing information base keyed by prefix.
type RIB struct {
	routes map[Prefix]uint16
}

// NewRIB creates an empty RIB.
func NewRIB() *RIB { return &RIB{routes: make(map[Prefix]uint16)} }

// Add inserts or replaces a route.
func (r *RIB) Add(p Prefix, nextHop uint16) { r.routes[p] = nextHop }

// Remove deletes a route; it reports whether the prefix was present.
func (r *RIB) Remove(p Prefix) bool {
	_, ok := r.routes[p]
	delete(r.routes, p)
	return ok
}

// Len returns the number of routes.
func (r *RIB) Len() int { return len(r.routes) }

// Entries returns the route set sorted by (address, length) for
// deterministic table builds.
func (r *RIB) Entries() []Entry {
	out := make([]Entry, 0, len(r.routes))
	for p, h := range r.routes {
		out = append(out, Entry{Prefix: p, NextHop: h})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Prefix.Addr != out[j].Prefix.Addr {
			return out[i].Prefix.Addr < out[j].Prefix.Addr
		}
		return out[i].Prefix.Len < out[j].Prefix.Len
	})
	return out
}

// Lookup is a control-plane (slow, exact) LPM over the RIB.
func (r *RIB) Lookup(addr packet.IPv4Addr) uint16 {
	best := -1
	hop := NoRoute
	for p, h := range r.routes {
		if int(p.Len) > best && p.Contains(addr) {
			best = int(p.Len)
			hop = h
		}
	}
	return hop
}
