// Package packetshader is a faithful Go reproduction of "PacketShader:
// a GPU-Accelerated Software Router" (Han, Jang, Park, Moon — SIGCOMM
// 2010), built over a calibrated virtual-time model of the paper's
// testbed (2× Xeon X5550, 2× GTX480, 8× 10GbE, dual-IOH board).
//
// This top-level package is the library facade: it assembles the four
// evaluated applications (IPv4/IPv6 forwarding, OpenFlow switching,
// IPsec tunneling) into ready-to-run router instances and reports the
// paper's metrics. The building blocks live under internal/: the
// discrete-event engine (internal/sim), hardware models
// (internal/hw/...), the packet I/O engine (internal/pktio), the
// framework (internal/core), the applications (internal/apps), and the
// table/figure reproductions (internal/experiments).
//
// Quick start:
//
//	inst, _ := packetshader.IPv4(100000, 42, packetshader.WithMode(packetshader.ModeGPU))
//	report := inst.Run(20 * packetshader.Millisecond)
//	fmt.Printf("%.1f Gbps\n", report.DeliveredGbps)
package packetshader

import (
	"packetshader/internal/apps"
	"packetshader/internal/core"
	"packetshader/internal/model"
	"packetshader/internal/openflow"
	"packetshader/internal/packet"
	"packetshader/internal/pktgen"
	"packetshader/internal/route"
	"packetshader/internal/sim"

	lookupv4 "packetshader/internal/lookup/ipv4"
	lookupv6 "packetshader/internal/lookup/ipv6"
)

// Re-exported virtual-time units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Duration is virtual time (picoseconds).
type Duration = sim.Duration

// Mode selects CPU-only or GPU-accelerated operation.
type Mode = core.Mode

// Operating modes (§6.1: CPU-only runs four workers per NUMA node;
// CPU+GPU runs three workers plus a GPU master).
const (
	ModeCPUOnly = core.ModeCPUOnly
	ModeGPU     = core.ModeGPU
)

// NumPorts is the testbed's port count (8 × 10GbE).
const NumPorts = model.NumPorts

// Option tweaks a router configuration.
type Option func(*core.Config)

// WithMode selects CPU-only or CPU+GPU operation.
func WithMode(m Mode) Option { return func(c *core.Config) { c.Mode = m } }

// WithPacketSize sets the generated packet size (64-1514 bytes).
func WithPacketSize(bytes int) Option {
	return func(c *core.Config) { c.PacketSize = bytes }
}

// WithOfferedGbps sets the offered load per port.
func WithOfferedGbps(g float64) Option {
	return func(c *core.Config) { c.OfferedGbpsPerPort = g }
}

// WithStreams enables concurrent copy and execution with n CUDA
// streams (§5.4; the paper uses it for IPsec).
func WithStreams(n int) Option { return func(c *core.Config) { c.Streams = n } }

// WithOpportunisticOffload keeps small chunks on the CPU for low
// latency under light load (§7).
func WithOpportunisticOffload() Option {
	return func(c *core.Config) { c.OpportunisticOffload = true }
}

// WithChunkCap caps the number of packets per chunk (§5.3).
func WithChunkCap(n int) Option { return func(c *core.Config) { c.ChunkCap = n } }

// WithoutPipelining disables chunk pipelining (§5.4 ablation).
func WithoutPipelining() Option { return func(c *core.Config) { c.Pipelining = false } }

// WithGatherMax bounds how many chunks one GPU launch gathers (§5.4).
func WithGatherMax(n int) Option { return func(c *core.Config) { c.GatherMax = n } }

// Instance is an assembled router plus its workload generator and
// latency sink, ready to Run.
type Instance struct {
	Env    *sim.Env
	Router *core.Router
	Sink   *pktgen.LatencySink

	started bool
}

// Report summarizes one run.
type Report struct {
	// DeliveredGbps is forwarded throughput in the paper's wire metric
	// (24B Ethernet overhead included).
	DeliveredGbps float64
	// InputGbps is accepted input throughput (the IPsec metric, §6.2.4).
	InputGbps float64
	// Latency statistics in microseconds (zero if nothing completed).
	MeanLatencyUs float64
	P99LatencyUs  float64
	// Stats are the framework counters.
	Stats core.Stats
}

func build(app core.App, src interface {
	Fill(b *packet.Buf, port, queue int, seq uint64)
}, opts []Option) *Instance {
	env := sim.NewEnv()
	cfg := core.DefaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	r := core.New(env, cfg, app)
	sink := pktgen.NewLatencySink()
	for _, p := range r.Engine.Ports {
		p.Tx.OnComplete = func(b *packet.Buf, at sim.Time) { sink.Observe(b, at) }
	}
	r.SetSource(src)
	return &Instance{Env: env, Router: r, Sink: sink}
}

// IPv4 assembles an IPv4 forwarder with a synthetic BGP table of the
// given size (§6.2.1 uses 282,797 prefixes — route.BGPTableSize).
func IPv4(prefixes int, seed int64, opts ...Option) (*Instance, error) {
	entries := route.GenerateBGPTable(prefixes, 64, seed)
	tbl, err := lookupv4.Build(entries)
	if err != nil {
		return nil, err
	}
	app := &apps.IPv4Fwd{Table: tbl, NumPorts: model.NumPorts}
	inst := build(app, &pktgen.UDP4Source{Size: 64, Seed: uint64(seed), Table: entries}, opts)
	syncSourceSize(inst)
	return inst, nil
}

// IPv6 assembles an IPv6 forwarder with n random prefixes (§6.2.2 uses
// 200,000).
func IPv6(prefixes int, seed int64, opts ...Option) *Instance {
	entries := route.GenerateIPv6Table(prefixes, 64, seed)
	app := &apps.IPv6Fwd{Table: lookupv6.Build(entries), NumPorts: model.NumPorts}
	inst := build(app, &pktgen.UDP6Source{Size: 64, Seed: uint64(seed), Table: entries}, opts)
	syncSourceSize(inst)
	return inst
}

// IPsec assembles the ESP tunnel gateway (§6.2.4), one SA per port.
func IPsec(seed int64, opts ...Option) *Instance {
	app := apps.NewIPsecGW(model.NumPorts)
	inst := build(app, &pktgen.UDP4Source{Size: 64, Seed: uint64(seed)}, opts)
	syncSourceSize(inst)
	return inst
}

// OpenFlowSwitch wraps a caller-configured switch data path (§6.2.3).
func OpenFlowSwitch(sw *openflow.Switch, src interface {
	Fill(b *packet.Buf, port, queue int, seq uint64)
}, opts ...Option) *Instance {
	app := apps.NewOFSwitch(sw, model.NumPorts)
	return build(app, src, opts)
}

// syncSourceSize re-applies the source with the configured packet size
// (options may have changed it after build wired the default).
func syncSourceSize(inst *Instance) {
	// The generator's Size field must match cfg.PacketSize; SetSource
	// in build already used the final cfg rate, but the Fill size lives
	// in the source. Rebind here.
	cfg := inst.Router.Cfg
	switch s := sourceOf(inst).(type) {
	case *pktgen.UDP4Source:
		s.Size = cfg.PacketSize
	case *pktgen.UDP6Source:
		s.Size = cfg.PacketSize
	}
}

// sourceOf recovers the source bound to the first queue (all queues
// share one source object).
func sourceOf(inst *Instance) any {
	return inst.Router.Source()
}

// Run starts the router (first call), advances virtual time by d, and
// reports. Repeated Run calls continue the same simulation; the
// measurement window restarts each call, so a warmup Run followed by a
// measurement Run excludes transients.
func (i *Instance) Run(d Duration) Report {
	if !i.started {
		i.Router.Start()
		i.started = true
	}
	i.Router.ResetMeasurement()
	i.Env.Run(i.Env.Now() + sim.Time(d))
	return Report{
		DeliveredGbps: i.Router.DeliveredGbps(),
		InputGbps:     i.Router.InputGbps(),
		MeanLatencyUs: i.Sink.MeanMicros(),
		P99LatencyUs:  i.Sink.PercentileMicros(0.99),
		Stats:         i.Router.Stats,
	}
}
