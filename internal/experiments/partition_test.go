package experiments

import (
	"bytes"
	"testing"
)

// TestFabricByteIdenticalAcrossPartitionWorkers is the -p analogue of
// the -j8==-j1 harness gate: the fabric experiment's rendered output
// (table and metrics alike) must not depend on how many host goroutines
// advance the world's partitions. CI runs the same comparison end to
// end through psbench -p (see scripts/check.sh).
func TestFabricByteIdenticalAcrossPartitionWorkers(t *testing.T) {
	defer SetPartitionWorkers(1)
	outputs := make(map[int]string)
	for _, p := range []int{1, 2, 8} {
		SetPartitionWorkers(p)
		var metrics bytes.Buffer
		SetMetricsWriter(&metrics)
		out := render(Fabric())
		SetMetricsWriter(nil)
		outputs[p] = out + metrics.String()
	}
	for _, p := range []int{2, 8} {
		if outputs[p] != outputs[1] {
			t.Errorf("-p %d output differs from -p 1:\n%s\nvs\n%s",
				p, outputs[p], outputs[1])
		}
	}
}

// TestLeafSpineByteIdenticalAcrossPartitionWorkers extends the -p gate
// to the leaf–spine experiment: 144-partition worlds with Zipf flows
// and fault injection must render identically at any worker count.
func TestLeafSpineByteIdenticalAcrossPartitionWorkers(t *testing.T) {
	defer SetPartitionWorkers(1)
	outputs := make(map[int]string)
	for _, p := range []int{1, 2, 8} {
		SetPartitionWorkers(p)
		var metrics bytes.Buffer
		SetMetricsWriter(&metrics)
		out := render(LeafSpine())
		SetMetricsWriter(nil)
		outputs[p] = out + metrics.String()
	}
	for _, p := range []int{2, 8} {
		if outputs[p] != outputs[1] {
			t.Errorf("-p %d output differs from -p 1:\n%s\nvs\n%s",
				p, outputs[p], outputs[1])
		}
	}
}

// TestSetPartitionWorkersClamps pins the contract psbench relies on:
// non-positive values mean serial.
func TestSetPartitionWorkersClamps(t *testing.T) {
	defer SetPartitionWorkers(1)
	SetPartitionWorkers(-3)
	if partitionWorkers != 1 {
		t.Errorf("partitionWorkers = %d after SetPartitionWorkers(-3)", partitionWorkers)
	}
	SetPartitionWorkers(8)
	if partitionWorkers != 8 {
		t.Errorf("partitionWorkers = %d after SetPartitionWorkers(8)", partitionWorkers)
	}
}
