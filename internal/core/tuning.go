package core

import "packetshader/internal/sim"

// Live tuning: the control plane (internal/ctrl) retunes batch policy
// while traffic flows. Knob changes travel to the worker and master
// processes through per-process control queues — the same mediation
// pattern as the master's gpuStatus hold-out queue — so the hand-off is
// a scheduler-visible event on the virtual clock, not a shared-memory
// write racing the hot loops. Each process drains its queue at the top
// of its loop and keeps a private copy of every knob, which makes the
// whole mechanism partition-safe under the procshare contract.

// tuneKnob names one runtime-tunable batch-policy knob.
type tuneKnob uint8

const (
	tuneChunkCap tuneKnob = iota
	tuneGatherMax
	tuneOpportunistic
)

// tuneMsg is one knob change posted on a tuning queue.
type tuneMsg struct {
	knob tuneKnob
	n    int
	on   bool
}

// SetChunkCap changes the per-chunk packet cap (§5.3) on every worker,
// effective from each worker's next fetch. n < 1 is ignored. Safe to
// call from scheduler context (Env.At callbacks).
func (r *Router) SetChunkCap(n int) {
	if n < 1 {
		return
	}
	r.postTuning(tuneMsg{knob: tuneChunkCap, n: n})
}

// SetGatherMax changes how many chunks a master gathers into one GPU
// launch (§5.4), effective from each master's next launch. n < 1 is
// ignored.
func (r *Router) SetGatherMax(n int) {
	if n < 1 {
		return
	}
	r.postTuning(tuneMsg{knob: tuneGatherMax, n: n})
}

// SetOpportunistic enables or disables opportunistic offloading (§7) on
// every worker.
func (r *Router) SetOpportunistic(on bool) {
	r.postTuning(tuneMsg{knob: tuneOpportunistic, on: on})
}

// postTuning fans one knob change out to every worker and master tuning
// queue, in process-index order. The queues are unbounded, so TryPut
// cannot fail, and posting never blocks — it is legal in scheduler
// context.
func (r *Router) postTuning(m tuneMsg) {
	for _, w := range r.workers {
		w.tuneQ.TryPut(m)
	}
	for _, ms := range r.masters {
		ms.tuneQ.TryPut(m)
	}
}

// newTuneQueue builds the unbounded per-process tuning queue.
func newTuneQueue(env *sim.Env) *sim.Queue[tuneMsg] {
	return sim.NewQueue[tuneMsg](env, 0)
}

// drainTuning applies every queued knob change to the worker's private
// copies. Called at the top of the worker loop, so a change posted at
// virtual time t governs every chunk fetched at or after t.
func (w *worker) drainTuning() {
	for {
		m, ok := w.tuneQ.TryGet()
		if !ok {
			return
		}
		switch m.knob {
		case tuneChunkCap:
			w.chunkCap = m.n
		case tuneOpportunistic:
			w.opp = m.on
		}
	}
}

// drainTuning applies every queued knob change to the master's private
// copies. Called when a launch round begins.
func (m *master) drainTuning() {
	for {
		t, ok := m.tuneQ.TryGet()
		if !ok {
			return
		}
		if t.knob == tuneGatherMax {
			m.gatherMax = t.n
		}
	}
}
