package obs

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"packetshader/internal/sim"
)

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	id := tr.Track("p", "t")
	tr.Span(id, "x", 0, 5*sim.Nanosecond)
	tr.Instant(id, "y", 0)
	tr.Counter(id, "z", 0, 1)
	if tr.Events() != 0 {
		t.Error("nil tracer recorded events")
	}
	var b bytes.Buffer
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("nil-tracer export is not valid JSON: %v", err)
	}
}

func TestTracerExportIsValidChromeTrace(t *testing.T) {
	tr := NewTracer()
	w0 := tr.Track("workers", "worker0")
	gpu := tr.Track("devices", "gpu0")
	w1 := tr.Track("workers", "worker1")
	if w0 == gpu || w0 == w1 {
		t.Fatal("track IDs collide")
	}
	if again := tr.Track("workers", "worker0"); again != w0 {
		t.Errorf("re-registration returned %d, want %d", again, w0)
	}
	tr.Span(w0, "pre-shade", sim.Time(2*sim.Microsecond), 500*sim.Nanosecond,
		Arg{"packets", 32})
	tr.Instant(w1, "drop", sim.Time(3*sim.Microsecond))
	tr.Counter(gpu, "inflight", sim.Time(4*sim.Microsecond), 7)

	var b bytes.Buffer
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Ph   string          `json:"ph"`
			Pid  int             `json:"pid"`
			Tid  int             `json:"tid"`
			Ts   float64         `json:"ts"`
			Dur  float64         `json:"dur"`
			Name string          `json:"name"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, b.String())
	}
	// 2 process metadata + 3 thread metadata + 3 events.
	if len(doc.TraceEvents) != 8 {
		t.Fatalf("got %d events, want 8:\n%s", len(doc.TraceEvents), b.String())
	}
	var span, instant, counter int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			span++
			if ev.Ts != 2.0 || ev.Dur != 0.5 {
				t.Errorf("span ts/dur = %v/%v, want 2/0.5 us", ev.Ts, ev.Dur)
			}
			if !strings.Contains(string(ev.Args), `"packets":32`) {
				t.Errorf("span args = %s", ev.Args)
			}
		case "i":
			instant++
		case "C":
			counter++
		case "M":
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	if span != 1 || instant != 1 || counter != 1 {
		t.Errorf("span/instant/counter = %d/%d/%d, want 1/1/1", span, instant, counter)
	}
}

func TestMicrosExact(t *testing.T) {
	cases := []struct {
		ps   int64
		want string
	}{
		{0, "0.000000"},
		{1, "0.000001"},
		{999_999, "0.999999"},
		{1_000_000, "1.000000"},
		{1_234_567_890, "1234.567890"},
		{-1_500_000, "-1.500000"},
	}
	for _, c := range cases {
		if got := micros(c.ps); got != c.want {
			t.Errorf("micros(%d) = %q, want %q", c.ps, got, c.want)
		}
	}
}

func TestHistogramBucketsRoundTrip(t *testing.T) {
	// Every value must land in a bucket whose bounds contain it, and
	// bucket indexes must be monotone in the value.
	prev := -1
	for _, v := range []int64{0, 1, 2, 63, 64, 65, 127, 128, 129, 255, 256,
		1000, 4096, 10_000, 1_000_000, 123_456_789, int64(1) << 40} {
		b := bucketOf(v)
		if b < prev {
			t.Errorf("bucketOf(%d) = %d < previous %d (not monotone)", v, b, prev)
		}
		prev = b
		if up := bucketUpper(b); up < v {
			t.Errorf("bucketUpper(bucketOf(%d)) = %d < value", v, up)
		}
		if b > 0 {
			if lowUp := bucketUpper(b - 1); lowUp >= v {
				t.Errorf("value %d should be above bucket %d upper %d", v, b-1, lowUp)
			}
		}
	}
}

func TestHistogramQuantilesAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := (&Registry{}).Histogram("lat", UnitDuration)
	var samples []int64
	for i := 0; i < 5000; i++ {
		v := int64(rng.ExpFloat64() * 50_000) // ~50ns scale, long tail
		samples = append(samples, v)
		h.Observe(v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []int{500, 950, 990} {
		rank := (len(samples)*q + 999) / 1000
		exact := samples[rank-1]
		got := h.Quantile(q)
		// Log-linear with 64 sub-buckets: ≤ ~1.6% relative error upward.
		if got < exact {
			t.Errorf("p%d = %d below exact %d (quantiles must be conservative)", q, got, exact)
		}
		if float64(got) > float64(exact)*1.04+1 {
			t.Errorf("p%d = %d, exact %d: error too large", q, got, exact)
		}
	}
	if h.Max() != samples[len(samples)-1] {
		t.Errorf("max = %d, want %d", h.Max(), samples[len(samples)-1])
	}
	if h.Quantile(1000) != h.Max() {
		t.Errorf("p100 = %d, want max %d", h.Quantile(1000), h.Max())
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	var nilH *Histogram
	nilH.Observe(5) // must not panic
	if nilH.Quantile(500) != 0 || nilH.Count() != 0 {
		t.Error("nil histogram not inert")
	}
	h := NewRegistry().Histogram("h", UnitCount)
	if h.Quantile(500) != 0 {
		t.Error("empty histogram quantile != 0")
	}
	h.Observe(-5) // clamps to 0
	if h.Quantile(500) != 0 || h.Count() != 1 {
		t.Errorf("negative sample: q=%d count=%d", h.Quantile(500), h.Count())
	}
	h.Observe(42)
	if got := h.Quantile(1000); got != 42 {
		t.Errorf("p100 = %d, want 42", got)
	}
}

func TestRegistryDumpDeterministicAndSorted(t *testing.T) {
	dump := func() string {
		r := NewRegistry()
		r.Counter("zeta").Add(3)
		r.Counter("alpha").Add(1)
		h := r.Histogram("mid", UnitDuration)
		for i := int64(1); i <= 100; i++ {
			h.Observe(i * int64(sim.Nanosecond))
		}
		var b bytes.Buffer
		if err := r.Dump(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	a, b := dump(), dump()
	if a != b {
		t.Fatalf("dump not deterministic:\n%s\nvs\n%s", a, b)
	}
	lines := strings.Split(strings.TrimSpace(a), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines:\n%s", len(lines), a)
	}
	if !strings.HasPrefix(lines[0], "counter alpha 1") ||
		!strings.HasPrefix(lines[1], "counter zeta 3") ||
		!strings.HasPrefix(lines[2], "hist mid count=100") {
		t.Errorf("unexpected dump order/content:\n%s", a)
	}
	if !strings.Contains(lines[2], "us") {
		t.Errorf("duration histogram not rendered in us: %s", lines[2])
	}
}

func TestRegistryNilAndDedup(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc() // nil handle must be inert
	if c.Value() != 0 {
		t.Error("nil registry counter counted")
	}
	r2 := NewRegistry()
	if r2.Counter("a") != r2.Counter("a") {
		t.Error("counter not deduped by name")
	}
	if r2.Histogram("h", UnitCount) != r2.Histogram("h", UnitCount) {
		t.Error("histogram not deduped by name")
	}
	r2.Counter("snap").Set(99)
	if r2.Counter("snap").Value() != 99 {
		t.Error("Set did not stick")
	}
}

// TestServerSamplerTilesBusyTime checks the acceptance-criterion
// invariant at unit level: spans recorded by the sampler cover the
// server's busy time exactly (100% ≥ the required 95%).
func TestServerSamplerTilesBusyTime(t *testing.T) {
	env := sim.NewEnv()
	tr := NewTracer()
	sampler := NewServerSampler(tr)
	env.SetHooks(sampler)
	a := sim.NewServer(env, "pcie-up")
	b := sim.NewServer(env, "gpu-exec")
	env.Go("driver", func(p *sim.Proc) {
		a.Use(p, 3*sim.Microsecond)
		b.Schedule(5 * sim.Microsecond)
		p.Sleep(10 * sim.Microsecond)
		a.Use(p, 2*sim.Microsecond)
	})
	env.Run(0)
	if sampler.Resources() != 2 {
		t.Fatalf("observed %d resources, want 2", sampler.Resources())
	}
	if got := sampler.BusyTime(a.ID()); got != a.BusyTime() || got != 5*sim.Microsecond {
		t.Errorf("sampler busy %v, server busy %v, want 5us", got, a.BusyTime())
	}
	if got := sampler.BusyTime(b.ID()); got != b.BusyTime() {
		t.Errorf("sampler busy %v != server busy %v", got, b.BusyTime())
	}
	// One span per reservation, on per-resource tracks.
	if tr.Events() != 3 {
		t.Errorf("recorded %d spans, want 3", tr.Events())
	}
	var rep bytes.Buffer
	if err := sampler.WriteReport(&rep, env.Now()); err != nil {
		t.Fatal(err)
	}
	out := rep.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("report lines = %d, want 2:\n%s", len(lines), out)
	}
	// Sorted by name: gpu-exec before pcie-up.
	if !strings.HasPrefix(lines[0], "util gpu-exec#") || !strings.HasPrefix(lines[1], "util pcie-up#") {
		t.Errorf("report not name-sorted:\n%s", out)
	}
	if !strings.Contains(lines[1], "busy=5.000000us") || !strings.Contains(lines[1], "spans=2") {
		t.Errorf("pcie-up line wrong: %s", lines[1])
	}
}

// TestSamplerWithNilTracer: occupancy accounting must work without a
// tracer attached.
func TestSamplerWithNilTracer(t *testing.T) {
	env := sim.NewEnv()
	sampler := NewServerSampler(nil)
	env.SetHooks(sampler)
	s := sim.NewServer(env, "ioh-up")
	s.Schedule(7 * sim.Microsecond)
	if sampler.BusyTime(s.ID()) != 7*sim.Microsecond {
		t.Errorf("busy = %v, want 7us", sampler.BusyTime(s.ID()))
	}
}
