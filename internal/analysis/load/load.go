// Package load type-checks Go packages for the pslint analyzers using
// only the standard library: `go list -deps -json` supplies the file
// sets in dependency-first order, and go/types checks each package with
// an importer backed by the packages already checked. Standard-library
// dependencies are checked signatures-only (IgnoreFuncBodies) so
// loading the full closure stays fast; target packages — and every
// module-local dependency — keep full bodies and a complete types.Info,
// so cross-package analyzers (Analyzer.UsesFacts) can compute facts
// over internal/sim and internal/hw even when only internal/core was
// requested.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// A Package is one loaded, type-checked package.
type Package struct {
	PkgPath  string
	Name     string
	Dir      string
	GoFiles  []string
	DepOnly  bool // true if only ever reachable as a dependency of the patterns
	Standard bool // true for standard-library packages

	Syntax []*ast.File
	Types  *types.Package
	Info   *types.Info

	// full records whether bodies were type-checked (targets and
	// module-local dependencies; stdlib dependencies are checked
	// signatures-only).
	full bool
}

// A Loader incrementally loads packages into a shared file set and
// type-checker universe. It is not safe for concurrent use.
type Loader struct {
	Fset *token.FileSet
	// Dir is the directory `go list` runs in; it must be inside the
	// module. Empty means the current directory.
	Dir string

	pkgs map[string]*Package
}

// NewLoader returns a Loader rooted at dir.
func NewLoader(dir string) *Loader {
	return &Loader{Fset: token.NewFileSet(), Dir: dir, pkgs: make(map[string]*Package)}
}

// Lookup returns the loaded package with the given import path, or nil.
func (l *Loader) Lookup(path string) *Package { return l.pkgs[path] }

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load resolves patterns with `go list -deps`, type-checks every newly
// listed package in dependency order, and returns the packages that
// matched the patterns themselves (DepOnly == false), sorted as go list
// emits them. Packages matched directly get full bodies and types.Info;
// standard-library dependencies are checked signatures-only, while
// module-local dependencies keep full bodies too.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	targets, _, err := l.load(patterns)
	return targets, err
}

// LoadModule is Load plus the dependency closure inside the module: it
// returns every module-local (non-standard-library) package reached by
// the patterns, in `go list -deps` dependency-first order, all with
// full bodies and types.Info. Packages that matched the patterns
// directly have DepOnly == false; cross-package analyzers run their
// fact passes over the DepOnly packages and report diagnostics only for
// the rest.
func (l *Loader) LoadModule(patterns ...string) ([]*Package, error) {
	_, module, err := l.load(patterns)
	return module, err
}

func (l *Loader) load(patterns []string) (targets, module []*Package, err error) {
	listed, err := l.goList(patterns)
	if err != nil {
		return nil, nil, err
	}
	for _, lp := range listed {
		pkg, err := l.check(lp)
		if err != nil {
			return nil, nil, err
		}
		if !lp.Standard && lp.ImportPath != "unsafe" {
			module = append(module, pkg)
		}
		if !lp.DepOnly {
			targets = append(targets, pkg)
		}
	}
	return targets, module, nil
}

// goList shells out to `go list -deps -json`. Cgo is disabled so every
// listed file is pure Go and type-checkable from source.
func (l *Loader) goList(patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("go list: %v", err)
	}
	dec := json.NewDecoder(out)
	var listed []*listedPackage
	for {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			cmd.Wait()
			return nil, fmt.Errorf("go list -json decode: %v", err)
		}
		listed = append(listed, lp)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	for _, lp := range listed {
		if lp.Error != nil {
			return nil, fmt.Errorf("go list %s: %s", lp.ImportPath, lp.Error.Err)
		}
	}
	return listed, nil
}

// check parses and type-checks one listed package, reusing the cached
// result when present. A stdlib package first loaded signatures-only as
// a dependency is re-checked with full bodies if it later shows up as a
// target; module-local packages always carry full bodies, so a cache
// hit only needs its DepOnly flag refreshed.
func (l *Loader) check(lp *listedPackage) (*Package, error) {
	if cached, ok := l.pkgs[lp.ImportPath]; ok {
		if cached.full {
			if !lp.DepOnly {
				cached.DepOnly = false
			}
			return cached, nil
		}
		if lp.DepOnly {
			return cached, nil
		}
		// Cached signatures-only but now needed as a target: recheck.
	}
	if lp.ImportPath == "unsafe" {
		pkg := &Package{PkgPath: "unsafe", Name: "unsafe", DepOnly: true, Types: types.Unsafe}
		l.pkgs["unsafe"] = pkg
		return pkg, nil
	}

	var files []*ast.File
	var names []string
	for _, f := range lp.GoFiles {
		path := filepath.Join(lp.Dir, f)
		af, err := parser.ParseFile(l.Fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %v", path, err)
		}
		files = append(files, af)
		names = append(names, path)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	full := !lp.DepOnly || !lp.Standard
	conf := types.Config{
		Importer:         importerFunc(l.importPkg),
		Sizes:            types.SizesFor("gc", runtime.GOARCH),
		IgnoreFuncBodies: !full,
	}
	tpkg, err := conf.Check(lp.ImportPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", lp.ImportPath, err)
	}
	pkg := &Package{
		PkgPath:  lp.ImportPath,
		Name:     lp.Name,
		Dir:      lp.Dir,
		GoFiles:  names,
		DepOnly:  lp.DepOnly,
		Standard: lp.Standard,
		Syntax:   files,
		Types:    tpkg,
		Info:     info,
		full:     full,
	}
	l.pkgs[lp.ImportPath] = pkg
	return pkg, nil
}

// importPkg resolves an import path against the packages checked so
// far. The standard library vendors golang.org/x packages under
// "vendor/", so a miss retries with that prefix.
func (l *Loader) importPkg(path string) (*types.Package, error) {
	if p, ok := l.pkgs[path]; ok && p.Types != nil {
		return p.Types, nil
	}
	if p, ok := l.pkgs["vendor/"+path]; ok && p.Types != nil {
		return p.Types, nil
	}
	return nil, fmt.Errorf("package %q not loaded (go list -deps order violated?)", path)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// ModuleRoot locates the enclosing module's root directory (where
// go.mod lives) starting from dir, so tests can run `go list` with a
// stable working directory regardless of the test binary's cwd.
func ModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found above %s", abs)
		}
		d = parent
	}
}
