// Package analysis is a self-contained miniature of the
// golang.org/x/tools/go/analysis framework, built only on the standard
// library so the repository carries no external dependencies. It defines
// the Analyzer/Pass/Diagnostic vocabulary used by the pslint suite
// (cmd/pslint), which enforces the simulator's determinism contract:
// virtual time only, seeded RNG only, and order-stable iteration in any
// path that schedules simulation events or emits experiment output.
//
// The API deliberately mirrors x/tools so analyzers can be ported to the
// upstream framework verbatim if the dependency ever becomes available.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"sort"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name is the analyzer's identifier, used in diagnostics and in
	// //pslint:ignore directives. It must be a valid Go identifier.
	Name string

	// Doc is a one-paragraph description of what the analyzer checks
	// and why the invariant matters for the simulation.
	Doc string

	// InternalOnly restricts the analyzer to packages under internal/.
	// Wall-clock time and the global math/rand source are legitimate in
	// cmd/ front-ends (e.g. psbench prints host-time progress), but
	// never in the simulated stack.
	InternalOnly bool

	// UsesFacts marks a cross-package analyzer: the driver must run it
	// over every module-local package in dependency order — including
	// packages that are only dependencies of the requested patterns —
	// sharing one FactStore across all of its passes, so facts exported
	// while analyzing internal/sim or internal/hw are importable while
	// analyzing internal/core. Diagnostics from dependency-only passes
	// are discarded; only the requested packages report.
	UsesFacts bool

	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Pass provides one analyzer with the parsed, type-checked syntax of a
// single package, and collects the diagnostics it reports.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Facts is the cross-package fact store shared by every pass of one
	// analyzer over one load (see Analyzer.UsesFacts). Drivers install
	// it after NewPass; when left nil a store is created lazily on first
	// export, so single-package analyzers and tests work unchanged.
	Facts *FactStore

	// Report is called for each diagnostic. The default (set by
	// NewPass) appends to Diagnostics after applying //pslint:ignore
	// suppression.
	Report func(Diagnostic)

	// Diagnostics accumulates reported, non-suppressed diagnostics.
	Diagnostics []Diagnostic

	ignores map[string]map[int]bool // filename -> line -> ignored (per analyzer)
}

// A Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// NewPass assembles a Pass for one package and indexes the package's
// //pslint:ignore directives for the given analyzer.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) *Pass {
	p := &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		ignores:   make(map[string]map[int]bool),
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, ok := parseIgnore(c.Text)
				if !ok || (name != a.Name && name != "all") {
					continue
				}
				pos := fset.Position(c.Pos())
				m := p.ignores[pos.Filename]
				if m == nil {
					m = make(map[int]bool)
					p.ignores[pos.Filename] = m
				}
				// A directive suppresses findings on its own line and,
				// when it stands alone, on the line below it.
				m[pos.Line] = true
				m[pos.Line+1] = true
			}
		}
	}
	p.Report = func(d Diagnostic) {
		d.Analyzer = a.Name
		pos := fset.Position(d.Pos)
		if m := p.ignores[pos.Filename]; m != nil && m[pos.Line] {
			return
		}
		p.Diagnostics = append(p.Diagnostics, d)
	}
	return p
}

// parseIgnore recognises "//pslint:ignore <name> [reason]" directives.
func parseIgnore(text string) (analyzer string, ok bool) {
	const prefix = "//pslint:ignore"
	if !strings.HasPrefix(text, prefix) {
		return "", false
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, prefix))
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", false
	}
	return fields[0], true
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// IsTestFile reports whether the file containing pos is a _test.go file.
// The pslint loader only feeds analyzers non-test sources, but the check
// keeps analyzers correct if that ever changes (e.g. under analysistest).
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// SimPkgPath is the import path of the deterministic simulation engine
// whose contract the pslint suite enforces.
const SimPkgPath = "packetshader/internal/sim"

// IsSimFunc reports whether obj is a function or method declared in the
// sim package with one of the given names. An empty names list matches
// any sim function.
func IsSimFunc(obj types.Object, names ...string) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != SimPkgPath {
		return false
	}
	if len(names) == 0 {
		return true
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// IsSimNamed reports whether t (after unwrapping pointers and generic
// instantiation) is the named sim type with the given name.
func IsSimNamed(t types.Type, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == SimPkgPath && obj.Name() == name
}

// Inspect walks every file in the pass in source order, calling fn for
// each node; if fn returns false the node's children are skipped.
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

// A Fact is a datum one analyzer attaches to a types.Object or a
// package while analyzing the package that declares it, for import by
// later passes of the same analyzer over dependent packages. This is
// the in-process miniature of x/tools analysis facts: because every
// pslint pass runs in one process over one shared type-checker
// universe, facts are plain pointers keyed by object identity — no
// serialization is needed, and drivers guarantee dependency order by
// loading packages with `go list -deps`.
//
// A Fact must be a pointer type. Imported facts are shallow-copied into
// the caller's value, so mutating an imported fact never corrupts the
// store.
type Fact interface{ AFact() }

// A FactStore holds the facts exported by the passes of one analyzer
// over one load. It is keyed by object/package identity, which is
// stable because all passes share a single Loader universe.
type FactStore struct {
	obj map[types.Object]Fact
	pkg map[*types.Package]Fact
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{obj: make(map[types.Object]Fact), pkg: make(map[*types.Package]Fact)}
}

// A PackageFact pairs a package with the fact exported for it, for
// enumeration by AllPackageFacts.
type PackageFact struct {
	Pkg  *types.Package
	Fact Fact
}

func (p *Pass) facts() *FactStore {
	if p.Facts == nil {
		p.Facts = NewFactStore()
	}
	return p.Facts
}

// ExportObjectFact associates f with obj. One fact per object per
// analyzer: a second export overwrites the first.
func (p *Pass) ExportObjectFact(obj types.Object, f Fact) {
	if obj == nil || f == nil {
		panic("analysis: ExportObjectFact with nil object or fact")
	}
	p.facts().obj[obj] = f
}

// ImportObjectFact copies the fact previously exported for obj into f
// (which must be a pointer of the exported fact's type) and reports
// whether one existed.
func (p *Pass) ImportObjectFact(obj types.Object, f Fact) bool {
	if p.Facts == nil {
		return false
	}
	got, ok := p.Facts.obj[obj]
	if !ok {
		return false
	}
	copyFact(f, got)
	return true
}

// ExportPackageFact associates f with the pass's own package.
func (p *Pass) ExportPackageFact(f Fact) {
	if f == nil {
		panic("analysis: ExportPackageFact with nil fact")
	}
	p.facts().pkg[p.Pkg] = f
}

// ImportPackageFact copies the fact previously exported for pkg into f
// and reports whether one existed.
func (p *Pass) ImportPackageFact(pkg *types.Package, f Fact) bool {
	if p.Facts == nil {
		return false
	}
	got, ok := p.Facts.pkg[pkg]
	if !ok {
		return false
	}
	copyFact(f, got)
	return true
}

// AllPackageFacts returns every package fact exported so far, sorted by
// package path for deterministic iteration. The returned facts are the
// stored values; callers must not mutate them.
func (p *Pass) AllPackageFacts() []PackageFact {
	if p.Facts == nil {
		return nil
	}
	out := make([]PackageFact, 0, len(p.Facts.pkg))
	for pkg, f := range p.Facts.pkg {
		out = append(out, PackageFact{Pkg: pkg, Fact: f})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pkg.Path() < out[j].Pkg.Path() })
	return out
}

// copyFact shallow-copies src into dst; both must be pointers to the
// same concrete fact type.
func copyFact(dst, src Fact) {
	dv := reflect.ValueOf(dst)
	sv := reflect.ValueOf(src)
	if dv.Kind() != reflect.Pointer || sv.Kind() != reflect.Pointer || dv.Type() != sv.Type() {
		panic(fmt.Sprintf("analysis: fact type mismatch: have %T, want %T", src, dst))
	}
	dv.Elem().Set(sv.Elem())
}
