package packet

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

var (
	testSrcMAC = MAC{0x00, 0x1b, 0x21, 0x01, 0x02, 0x03}
	testDstMAC = MAC{0x00, 0x1b, 0x21, 0x0a, 0x0b, 0x0c}
)

func TestIPv4AddrString(t *testing.T) {
	a := IPv4Addr(0xC0A80101)
	if got := a.String(); got != "192.168.1.1" {
		t.Errorf("String = %q, want 192.168.1.1", got)
	}
}

func TestIPv4AddrBytesRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		a := IPv4Addr(v)
		b := a.Bytes()
		return IPv4AddrFrom(b[:]) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIPv6AddrPartsRoundTrip(t *testing.T) {
	f := func(hi, lo uint64) bool {
		a := IPv6AddrFromParts(hi, lo)
		return a.Hi() == hi && a.Lo() == lo
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChecksumRFC1071Example(t *testing.T) {
	// Canonical example from RFC 1071 §3.
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(b); got != ^uint16(0xddf2) {
		t.Errorf("Checksum = %#04x, want %#04x", got, ^uint16(0xddf2))
	}
}

func TestChecksumOddLength(t *testing.T) {
	// Odd trailing byte is padded with zero.
	even := Checksum([]byte{0xab, 0xcd, 0x12, 0x00})
	odd := Checksum([]byte{0xab, 0xcd, 0x12})
	if even != odd {
		t.Errorf("odd-length checksum %#04x != padded %#04x", odd, even)
	}
}

func TestChecksumVerifiesToZero(t *testing.T) {
	f := func(data []byte) bool {
		if len(data) < 2 {
			return true
		}
		if len(data)%2 == 1 {
			data = append(data, 0)
		}
		cs := Checksum(data)
		withCS := append(append([]byte{}, data...), byte(cs>>8), byte(cs))
		// A block including its own checksum sums to zero (0xffff
		// one's-complement), i.e. Checksum == 0.
		return Checksum(withCS) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIPv4HeaderChecksumValid(t *testing.T) {
	var buf [64]byte
	frame := BuildUDP4(buf[:], 64, testSrcMAC, testDstMAC,
		IPv4Addr(0x0A000001), IPv4Addr(0x08080808), 1234, 53)
	if !VerifyIPv4Checksum(frame[EthHdrLen:]) {
		t.Error("built frame has invalid IPv4 checksum")
	}
	// Corrupt a byte: checksum must fail.
	frame[EthHdrLen+16] ^= 0xff
	if VerifyIPv4Checksum(frame[EthHdrLen:]) {
		t.Error("corrupted header passed checksum")
	}
}

func TestTTLDecrementIncrementalChecksum(t *testing.T) {
	// Property (RFC 1624): incrementally updating the checksum for a TTL
	// decrement must equal a full recompute.
	f := func(src, dst uint32, ttl uint8) bool {
		if ttl == 0 {
			ttl = 1
		}
		var buf [64]byte
		frame := BuildUDP4(buf[:], 64, testSrcMAC, testDstMAC,
			IPv4Addr(src), IPv4Addr(dst), 9, 9)
		hdr := frame[EthHdrLen : EthHdrLen+IPv4HdrLen]
		hdr[8] = ttl
		binary.BigEndian.PutUint16(hdr[10:12], 0)
		full := Checksum(hdr)
		binary.BigEndian.PutUint16(hdr[10:12], full)

		old16 := binary.BigEndian.Uint16(hdr[8:10])
		inc := ChecksumUpdateTTLDecrement(full, old16)

		hdr[8] = ttl - 1
		binary.BigEndian.PutUint16(hdr[10:12], 0)
		recomputed := Checksum(hdr)
		return inc == recomputed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestTransportChecksumIPv4(t *testing.T) {
	// Known vector: UDP checksum over a tiny segment, verified by the
	// self-verification property (sum including checksum == 0).
	src, dst := IPv4Addr(0xc0a80001), IPv4Addr(0xc0a80002)
	seg := []byte{0x04, 0xd2, 0x00, 0x35, 0x00, 0x0a, 0x00, 0x00, 0xde, 0xad}
	cs := TransportChecksumIPv4(src, dst, ProtoUDP, seg)
	binary.BigEndian.PutUint16(seg[6:8], cs)
	acc := PseudoHeaderChecksumIPv4(src, dst, ProtoUDP, len(seg))
	if got := finishChecksum(sumWords(seg, acc)); got != 0 {
		t.Errorf("segment with checksum sums to %#04x, want 0", got)
	}
}

func TestEthernetRoundTrip(t *testing.T) {
	h := EthernetHdr{Dst: testDstMAC, Src: testSrcMAC, EtherType: EtherTypeIPv6}
	var b [EthHdrLen]byte
	h.Encode(b[:])
	var g EthernetHdr
	payload, err := g.Decode(b[:])
	if err != nil {
		t.Fatal(err)
	}
	if g != h {
		t.Errorf("round trip: %+v != %+v", g, h)
	}
	if len(payload) != 0 {
		t.Errorf("payload len = %d, want 0", len(payload))
	}
}

func TestEthernetTruncated(t *testing.T) {
	var g EthernetHdr
	if _, err := g.Decode(make([]byte, 13)); err != ErrTruncated {
		t.Errorf("err = %v, want ErrTruncated", err)
	}
}

func TestIPv4RoundTripProperty(t *testing.T) {
	f := func(tos uint8, id uint16, ttl uint8, src, dst uint32, plen uint8) bool {
		h := IPv4Hdr{
			IHL: 5, TOS: tos, TotalLen: uint16(IPv4HdrLen) + uint16(plen),
			ID: id, TTL: ttl, Protocol: ProtoUDP,
			Src: IPv4Addr(src), Dst: IPv4Addr(dst),
		}
		b := make([]byte, int(h.TotalLen))
		h.Encode(b)
		var g IPv4Hdr
		payload, err := g.Decode(b)
		if err != nil {
			return false
		}
		h.Checksum = g.Checksum // filled by Encode
		return g == h && len(payload) == int(plen) && VerifyIPv4Checksum(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestIPv4BadVersion(t *testing.T) {
	b := make([]byte, IPv4HdrLen)
	b[0] = 6<<4 | 5
	var g IPv4Hdr
	if _, err := g.Decode(b); err != ErrBadVersion {
		t.Errorf("err = %v, want ErrBadVersion", err)
	}
}

func TestIPv4BadIHL(t *testing.T) {
	b := make([]byte, IPv4HdrLen)
	b[0] = 4<<4 | 3 // IHL 3 < 5
	var g IPv4Hdr
	if _, err := g.Decode(b); err != ErrBadHdrLen {
		t.Errorf("err = %v, want ErrBadHdrLen", err)
	}
}

func TestIPv6RoundTripProperty(t *testing.T) {
	f := func(tc uint8, fl uint32, nh, hl uint8, hi1, lo1, hi2, lo2 uint64, plen uint8) bool {
		h := IPv6Hdr{
			TrafficClass: tc, FlowLabel: fl & 0xfffff,
			PayloadLen: uint16(plen), NextHeader: nh, HopLimit: hl,
			Src: IPv6AddrFromParts(hi1, lo1), Dst: IPv6AddrFromParts(hi2, lo2),
		}
		b := make([]byte, IPv6HdrLen+int(plen))
		h.Encode(b)
		var g IPv6Hdr
		payload, err := g.Decode(b)
		if err != nil {
			return false
		}
		return g == h && len(payload) == int(plen)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestUDPRoundTrip(t *testing.T) {
	h := UDPHdr{SrcPort: 1234, DstPort: 53, Length: 28, Checksum: 0xbeef}
	b := make([]byte, 28)
	h.Encode(b)
	var g UDPHdr
	payload, err := g.Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if g != h || len(payload) != 20 {
		t.Errorf("round trip %+v payload %d", g, len(payload))
	}
}

func TestTCPRoundTrip(t *testing.T) {
	h := TCPHdr{SrcPort: 80, DstPort: 49152, Seq: 1 << 30, Ack: 77,
		DataOff: 5, Flags: 0x18, Window: 65535, Checksum: 0x1234, Urgent: 0}
	b := make([]byte, TCPHdrLen+4)
	h.Encode(b)
	var g TCPHdr
	payload, err := g.Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if g != h {
		t.Errorf("round trip: %+v != %+v", g, h)
	}
	if len(payload) != 4 {
		t.Errorf("payload = %d, want 4", len(payload))
	}
}

func TestDecoderUDP4Frame(t *testing.T) {
	var buf [128]byte
	frame := BuildUDP4(buf[:], 100, testSrcMAC, testDstMAC,
		IPv4Addr(0x0A000001), IPv4Addr(0xC0A80063), 5000, 6000)
	var d Decoder
	if err := d.Decode(frame); err != nil {
		t.Fatal(err)
	}
	if !d.Has(LayerEthernet) || !d.Has(LayerIPv4) || !d.Has(LayerUDP) {
		t.Errorf("layers = %v", d.Decoded)
	}
	if d.IPv4.Dst != IPv4Addr(0xC0A80063) {
		t.Errorf("dst = %v", d.IPv4.Dst)
	}
	if d.UDP.DstPort != 6000 {
		t.Errorf("dstPort = %d", d.UDP.DstPort)
	}
	if d.VLANID != VLANNone {
		t.Errorf("VLANID = %d, want none", d.VLANID)
	}
	wantPayload := 100 - EthHdrLen - IPv4HdrLen - UDPHdrLen
	if len(d.Payload) != wantPayload {
		t.Errorf("payload = %d, want %d", len(d.Payload), wantPayload)
	}
}

func TestDecoderUDP6Frame(t *testing.T) {
	var buf [128]byte
	src := IPv6AddrFromParts(0x20010db800000000, 1)
	dst := IPv6AddrFromParts(0x20010db800000000, 2)
	frame := BuildUDP6(buf[:], 90, testSrcMAC, testDstMAC, src, dst, 7, 8)
	var d Decoder
	if err := d.Decode(frame); err != nil {
		t.Fatal(err)
	}
	if !d.Has(LayerIPv6) || !d.Has(LayerUDP) {
		t.Errorf("layers = %v", d.Decoded)
	}
	if d.IPv6.Dst != dst {
		t.Errorf("dst = %v", d.IPv6.Dst)
	}
}

func TestDecoderVLAN(t *testing.T) {
	var buf [128]byte
	frame := BuildUDP4(buf[:], 80, testSrcMAC, testDstMAC, 1, 2, 3, 4)
	// Insert an 802.1Q tag (VLAN 42) after the MACs.
	tagged := make([]byte, len(frame)+VLANTagLen)
	copy(tagged, frame[:12])
	binary.BigEndian.PutUint16(tagged[12:14], EtherTypeVLAN)
	binary.BigEndian.PutUint16(tagged[14:16], 42)
	binary.BigEndian.PutUint16(tagged[16:18], EtherTypeIPv4)
	copy(tagged[18:], frame[14:])
	var d Decoder
	if err := d.Decode(tagged); err != nil {
		t.Fatal(err)
	}
	if d.VLANID != 42 {
		t.Errorf("VLANID = %d, want 42", d.VLANID)
	}
	if !d.Has(LayerVLAN) || !d.Has(LayerIPv4) || !d.Has(LayerUDP) {
		t.Errorf("layers = %v", d.Decoded)
	}
}

func TestDecoderUnknownEtherType(t *testing.T) {
	b := make([]byte, 60)
	binary.BigEndian.PutUint16(b[12:14], EtherTypeARP)
	var d Decoder
	if err := d.Decode(b); err != nil {
		t.Fatal(err)
	}
	if !d.Has(LayerPayload) || d.Has(LayerIPv4) {
		t.Errorf("layers = %v", d.Decoded)
	}
}

func TestDecoderMalformedIPv4(t *testing.T) {
	b := make([]byte, 20) // Ethernet + 6 bytes only
	binary.BigEndian.PutUint16(b[12:14], EtherTypeIPv4)
	var d Decoder
	if err := d.Decode(b); err == nil {
		t.Error("truncated IPv4 decoded without error")
	}
}

func TestDecoderNoAllocSteadyState(t *testing.T) {
	var buf [128]byte
	frame := BuildUDP4(buf[:], 64, testSrcMAC, testDstMAC, 1, 2, 3, 4)
	var d Decoder
	allocs := testing.AllocsPerRun(200, func() {
		if err := d.Decode(frame); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Decode allocates %v/op in steady state, want 0", allocs)
	}
}

func TestBuildUDP4MinimumSizeClamped(t *testing.T) {
	var buf [64]byte
	frame := BuildUDP4(buf[:], 10, testSrcMAC, testDstMAC, 1, 2, 3, 4)
	if len(frame) != EthHdrLen+IPv4HdrLen+UDPHdrLen {
		t.Errorf("len = %d, want clamped to minimum", len(frame))
	}
}

func TestBuildDecodesConsistently(t *testing.T) {
	f := func(src, dst uint32, sp, dp uint16, sz uint16) bool {
		size := 64 + int(sz)%1451
		buf := make([]byte, 1514)
		frame := BuildUDP4(buf, size, testSrcMAC, testDstMAC,
			IPv4Addr(src), IPv4Addr(dst), sp, dp)
		if len(frame) != size {
			return false
		}
		var d Decoder
		if err := d.Decode(frame); err != nil {
			return false
		}
		return d.IPv4.Src == IPv4Addr(src) && d.IPv4.Dst == IPv4Addr(dst) &&
			d.UDP.SrcPort == sp && d.UDP.DstPort == dp &&
			int(d.IPv4.TotalLen) == size-EthHdrLen
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTimestampRoundTrip(t *testing.T) {
	var buf [128]byte
	frame := BuildUDP4(buf[:], 64, testSrcMAC, testDstMAC, 1, 2, 3, 4)
	if !SetTimestamp(frame, 123456789012) {
		t.Fatal("SetTimestamp failed on a 64B frame")
	}
	ts, ok := Timestamp(frame)
	if !ok || ts != 123456789012 {
		t.Errorf("Timestamp = %d,%v", ts, ok)
	}
}

func TestTimestampTooSmall(t *testing.T) {
	frame := make([]byte, EthHdrLen+IPv4HdrLen+UDPHdrLen+4)
	if SetTimestamp(frame, 1) {
		t.Error("SetTimestamp succeeded on a frame with no room")
	}
}

func TestBufPoolRecycles(t *testing.T) {
	p := NewBufPool(2048)
	a := p.Get(64)
	if a.Size() != 64 {
		t.Errorf("size = %d", a.Size())
	}
	a.Data[0] = 0xAA
	a.Release()
	if p.FreeCount() != 1 {
		t.Errorf("free = %d, want 1", p.FreeCount())
	}
	b := p.Get(128)
	if p.Allocs != 1 {
		t.Errorf("allocs = %d, want 1 (recycled)", p.Allocs)
	}
	if b.Size() != 128 {
		t.Errorf("size = %d, want 128", b.Size())
	}
	if b.Port != 0 || b.Hash != 0 || b.GenAt != 0 {
		t.Error("metadata not reset on reuse")
	}
}

func TestBufPoolClampsToCell(t *testing.T) {
	p := NewBufPool(256)
	b := p.Get(9999)
	if b.Size() != 256 {
		t.Errorf("size = %d, want clamped to 256", b.Size())
	}
}

func TestBufPoolSteadyStateNoAlloc(t *testing.T) {
	p := NewBufPool(2048)
	warm := make([]*Buf, 32)
	for i := range warm {
		warm[i] = p.Get(64)
	}
	for _, b := range warm {
		b.Release()
	}
	start := p.Allocs
	rng := rand.New(rand.NewSource(1))
	live := make([]*Buf, 0, 32)
	for i := 0; i < 1000; i++ {
		if len(live) < 32 && (len(live) == 0 || rng.Intn(2) == 0) {
			live = append(live, p.Get(64))
		} else {
			b := live[len(live)-1]
			live = live[:len(live)-1]
			b.Release()
		}
	}
	if p.Allocs != start {
		t.Errorf("steady state allocated %d new cells", p.Allocs-start)
	}
}

// TestDecoderNeverPanicsOnGarbage: the decoder must reject arbitrary
// byte salads with errors, never panics or out-of-range accesses.
func TestDecoderNeverPanicsOnGarbage(t *testing.T) {
	var d Decoder
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Decode panicked on %x: %v", data, r)
			}
		}()
		_ = d.Decode(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestDecoderNeverPanicsOnTruncatedValidFrames: every prefix of a valid
// frame must decode or fail cleanly.
func TestDecoderNeverPanicsOnTruncatedValidFrames(t *testing.T) {
	var buf [2048]byte
	frame := BuildUDP4(buf[:], 200, testSrcMAC, testDstMAC, 1, 2, 3, 4)
	var d Decoder
	for n := 0; n <= len(frame); n++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic at prefix %d: %v", n, r)
				}
			}()
			_ = d.Decode(frame[:n])
		}()
	}
}

// TestDecoderBogusLengthFields: length fields larger than the buffer
// must be clamped, never read past the end.
func TestDecoderBogusLengthFields(t *testing.T) {
	var buf [256]byte
	frame := BuildUDP4(buf[:], 100, testSrcMAC, testDstMAC, 1, 2, 3, 4)
	// Claim a giant IP total length and UDP length.
	binary.BigEndian.PutUint16(frame[EthHdrLen+2:], 0xFFFF)
	binary.BigEndian.PutUint16(frame[EthHdrLen+IPv4HdrLen+4:], 0xFFFF)
	var d Decoder
	if err := d.Decode(frame); err != nil {
		// Clean error is fine too.
		return
	}
	if len(d.Payload) > len(frame) {
		t.Errorf("payload %d longer than frame %d", len(d.Payload), len(frame))
	}
}

// TestUDP4TemplateByteIdentical is the differential contract of
// template-based frame synthesis: for every size class and a large
// random flow corpus (plus checksum-folding edge addresses), the
// rendered frame must equal a fresh BuildUDP4 byte for byte — including
// the bytes beyond the frame, which neither path may touch.
func TestUDP4TemplateByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	sizes := []int{0, 41, 42, 60, 64, 65, 128, 256, 511, 1024, 1514}
	for _, size := range sizes {
		tmpl := NewUDP4Template(size, testSrcMAC, testDstMAC)
		var got, want [2048]byte
		check := func(src, dst IPv4Addr, sp, dp uint16) {
			for i := range got {
				got[i], want[i] = 0xA5, 0xA5
			}
			g := tmpl.Render(got[:], src, dst, sp, dp)
			w := BuildUDP4(want[:], size, testSrcMAC, testDstMAC, src, dst, sp, dp)
			if len(g) != len(w) {
				t.Fatalf("size %d: len %d != %d", size, len(g), len(w))
			}
			if got != want {
				t.Fatalf("size %d src %v dst %v ports %d/%d: frames differ", size, src, dst, sp, dp)
			}
			if !VerifyIPv4Checksum(g[EthHdrLen:]) {
				t.Fatalf("size %d: rendered checksum invalid", size)
			}
		}
		for i := 0; i < 500; i++ {
			check(IPv4Addr(rng.Uint32()), IPv4Addr(rng.Uint32()),
				uint16(rng.Uint32()), uint16(rng.Uint32()))
		}
		// Folding edges: zero, all-ones, and half-word patterns that push
		// the ones-complement sum to its carry boundaries.
		edges := []uint32{0, 0xffffffff, 0xffff0000, 0x0000ffff, 0x00010000, 0xfffeffff}
		for _, s := range edges {
			for _, d := range edges {
				check(IPv4Addr(s), IPv4Addr(d), 0, 0)
				check(IPv4Addr(s), IPv4Addr(d), 0xffff, 0xffff)
			}
		}
	}
}

// TestUDP6TemplateByteIdentical is the IPv6 differential contract.
func TestUDP6TemplateByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	for _, size := range []int{0, 61, 62, 64, 128, 777, 1514} {
		tmpl := NewUDP6Template(size, testSrcMAC, testDstMAC)
		var got, want [2048]byte
		for i := 0; i < 300; i++ {
			src := IPv6AddrFromParts(rng.Uint64(), rng.Uint64())
			dst := IPv6AddrFromParts(rng.Uint64(), rng.Uint64())
			sp, dp := uint16(rng.Uint32()), uint16(rng.Uint32())
			for j := range got {
				got[j], want[j] = 0x5A, 0x5A
			}
			g := tmpl.Render(got[:], src, dst, sp, dp)
			w := BuildUDP6(want[:], size, testSrcMAC, testDstMAC, src, dst, sp, dp)
			if len(g) != len(w) || got != want {
				t.Fatalf("size %d iter %d: frames differ", size, i)
			}
		}
	}
}

// decodeBoth runs Decode and DecodeFast on fresh Decoders and fails if
// any resulting state (headers, Decoded, Payload, error) differs.
func decodeBoth(t *testing.T, frame []byte, label string) {
	t.Helper()
	var slow, fast Decoder
	errS := slow.Decode(frame)
	errF := fast.DecodeFast(frame)
	if (errS == nil) != (errF == nil) || (errS != nil && errS.Error() != errF.Error()) {
		t.Fatalf("%s: error %v != %v", label, errS, errF)
	}
	// Zero the scratch arrays: they are backing storage, not state, and
	// may hold different residue beyond len(Decoded).
	slow.scratch, fast.scratch = [8]Layer{}, [8]Layer{}
	if !reflect.DeepEqual(slow, fast) {
		t.Fatalf("%s: decoder state differs\n slow: %+v\n fast: %+v", label, slow, fast)
	}
}

// TestDecodeFastMatchesDecode is the differential contract of the fast
// path: identical observable state on a corpus of well-formed frames,
// every truncation of them, and systematically malformed variants.
func TestDecodeFastMatchesDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	var buf [2048]byte
	var corpus [][]byte
	add := func(f []byte) {
		cp := make([]byte, len(f))
		copy(cp, f)
		corpus = append(corpus, cp)
	}
	// Well-formed UDP over IPv4 and IPv6 at assorted sizes.
	for _, size := range []int{42, 60, 64, 65, 128, 1514} {
		add(BuildUDP4(buf[:], size, testSrcMAC, testDstMAC,
			IPv4Addr(rng.Uint32()), IPv4Addr(rng.Uint32()),
			uint16(rng.Uint32()), uint16(rng.Uint32())))
	}
	for _, size := range []int{62, 78, 128, 1514} {
		add(BuildUDP6(buf[:], size, testSrcMAC, testDstMAC,
			IPv6AddrFromParts(rng.Uint64(), rng.Uint64()),
			IPv6AddrFromParts(rng.Uint64(), rng.Uint64()),
			uint16(rng.Uint32()), uint16(rng.Uint32())))
	}
	base := BuildUDP4(buf[:], 100, testSrcMAC, testDstMAC, 1, 2, 3, 4)
	// Malformed / uncommon variants of the base frame.
	mutate := func(f func(m []byte)) {
		m := make([]byte, len(base))
		copy(m, base)
		f(m)
		corpus = append(corpus, m)
	}
	mutate(func(m []byte) { m[14] = 0x46 })                                  // IHL 6: options
	mutate(func(m []byte) { m[14] = 0x4f })                                  // IHL 15 > frame
	mutate(func(m []byte) { m[14] = 0x55 })                                  // version 5
	mutate(func(m []byte) { m[14] = 0x65 })                                  // version 6 in IPv4 ethertype
	mutate(func(m []byte) { m[23] = ProtoTCP })                              // TCP (stale checksum: fine, not verified)
	mutate(func(m []byte) { m[23] = ProtoESP })                              // ESP
	mutate(func(m []byte) { m[23] = 0x2f })                                  // GRE: unknown L4
	mutate(func(m []byte) { m[12], m[13] = 0x81, 0x00 })                     // VLAN tag where IPv4 was
	mutate(func(m []byte) { m[12], m[13] = 0x08, 0x06 })                     // ARP ethertype
	mutate(func(m []byte) { binary.BigEndian.PutUint16(m[16:18], 0xffff) })  // IPv4 TotalLen giant
	mutate(func(m []byte) { binary.BigEndian.PutUint16(m[16:18], 10) })      // TotalLen < header
	mutate(func(m []byte) { binary.BigEndian.PutUint16(m[16:18], 21) })      // TotalLen 21: 1-byte L4
	mutate(func(m []byte) { binary.BigEndian.PutUint16(m[16:18], 28) })      // TotalLen == hdrs only
	mutate(func(m []byte) { binary.BigEndian.PutUint16(m[38:40], 0xffff) })  // UDP length giant
	mutate(func(m []byte) { binary.BigEndian.PutUint16(m[38:40], 3) })       // UDP length < 8
	mutate(func(m []byte) { binary.BigEndian.PutUint16(m[38:40], 8) })       // UDP empty payload
	// IPv6 variants.
	base6 := BuildUDP6(buf[:], 100, testSrcMAC, testDstMAC,
		IPv6AddrFromParts(1, 2), IPv6AddrFromParts(3, 4), 5, 6)
	mutate6 := func(f func(m []byte)) {
		m := make([]byte, len(base6))
		copy(m, base6)
		f(m)
		corpus = append(corpus, m)
	}
	mutate6(func(m []byte) { m[14] = 0x45 })                                 // version 4 in IPv6 ethertype
	mutate6(func(m []byte) { m[20] = ProtoTCP })                             // TCP next header
	mutate6(func(m []byte) { m[20] = 0x3b })                                 // no next header
	mutate6(func(m []byte) { binary.BigEndian.PutUint16(m[18:20], 0xffff) }) // PayloadLen giant
	mutate6(func(m []byte) { binary.BigEndian.PutUint16(m[18:20], 0) })      // PayloadLen zero
	mutate6(func(m []byte) { binary.BigEndian.PutUint16(m[54:56], 0xffff) }) // UDP length giant
	mutate6(func(m []byte) { binary.BigEndian.PutUint16(m[54:56], 2) })      // UDP length < 8
	// Random garbage.
	for i := 0; i < 64; i++ {
		g := make([]byte, rng.Intn(200))
		rng.Read(g)
		corpus = append(corpus, g)
	}
	for ci, f := range corpus {
		decodeBoth(t, f, fmt.Sprintf("corpus[%d]", ci))
		// Every truncation of every corpus entry.
		for n := 0; n <= len(f); n++ {
			decodeBoth(t, f[:n], fmt.Sprintf("corpus[%d][:%d]", ci, n))
		}
	}
}
