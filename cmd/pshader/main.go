// Command pshader runs the PacketShader router simulation with one of
// the paper's four applications and prints throughput, latency, and
// framework statistics. With -ctrl it runs as pshaderd: a live router
// under deterministic script control — the script's route updates, knob
// retunes, port admin, and stats/metrics snapshots execute on the
// virtual clock, so replaying the same script with the same seed
// produces byte-identical output.
//
// Examples:
//
//	pshader -app ipv4 -mode gpu -size 64 -duration 20ms
//	pshader -app ipsec -mode cpu -size 1514 -offered 5
//	pshader -app openflow -flows 32768 -wildcards 32
//	pshader -app ipv6 -mode gpu -opportunistic -offered 1
//	pshader -app ipv4 -mode gpu -trace trace.json -metrics
//	pshader -app ipv4 -fib dynamic -ctrl scripts/pshaderd-demo.psc
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"packetshader"
	"packetshader/internal/ctrl"
	"packetshader/internal/model"
	"packetshader/internal/obs"
	"packetshader/internal/openflow"
	"packetshader/internal/packet"
	"packetshader/internal/pcap"
	"packetshader/internal/pktgen"
	"packetshader/internal/sim"
)

func main() {
	var (
		appName  = flag.String("app", "ipv4", "application: ipv4, ipv6, openflow, ipsec")
		mode     = flag.String("mode", "gpu", "cpu (CPU-only) or gpu (CPU+GPU)")
		size     = flag.Int("size", 64, "packet size in bytes (64-1514)")
		offered  = flag.Float64("offered", 10, "offered load per port (Gbps)")
		duration = flag.Duration("duration", 20*time.Millisecond, "simulated duration")
		warmup   = flag.Duration("warmup", 10*time.Millisecond, "warmup excluded from measurement")
		prefixes = flag.Int("prefixes", 100000, "routing-table prefixes (ipv4/ipv6)")
		flows    = flag.Int("flows", 32768, "exact-match flows (openflow)")
		wild     = flag.Int("wildcards", 32, "wildcard rules (openflow)")
		streams  = flag.Int("streams", 1, "CUDA streams (concurrent copy & execution)")
		opp      = flag.Bool("opportunistic", false, "opportunistic offloading (§7)")
		seed     = flag.Int64("seed", 42, "workload seed")
		fibMode  = flag.String("fib", "static", "IPv4 route-update strategy: static, dynamic, rebuild")
		ctrlPath = flag.String("ctrl", "", "run as pshaderd: execute this .psc control script on the virtual clock")
		pcapOut  = flag.String("pcap", "", "capture transmitted packets to this pcap file")
		pcapN    = flag.Uint64("pcap-limit", 1000, "max packets to capture")
		traceOut = flag.String("trace", "", "write a Chrome trace-event JSON file (open in Perfetto)")
		metrics  = flag.Bool("metrics", false, "dump counters, latency histograms, and resource occupancy")
	)
	flag.Parse()

	opts := []packetshader.Option{
		packetshader.WithPacketSize(*size),
		packetshader.WithOfferedGbps(*offered),
		packetshader.WithStreams(*streams),
	}
	switch *mode {
	case "cpu":
		opts = append(opts, packetshader.WithMode(packetshader.ModeCPUOnly))
	case "gpu":
		opts = append(opts, packetshader.WithMode(packetshader.ModeGPU))
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}
	if *opp {
		opts = append(opts, packetshader.WithOpportunisticOffload())
	}
	switch *fibMode {
	case "static":
	case "dynamic":
		opts = append(opts, packetshader.WithFIBUpdate(packetshader.FIBDynamic))
	case "rebuild":
		opts = append(opts, packetshader.WithFIBUpdate(packetshader.FIBRebuild))
	default:
		fmt.Fprintf(os.Stderr, "unknown fib mode %q\n", *fibMode)
		os.Exit(2)
	}

	var script *ctrl.Script
	if *ctrlPath != "" {
		f, err := os.Open(*ctrlPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		script, err = ctrl.ParseScript(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", *ctrlPath, err)
			os.Exit(1)
		}
	}

	fmt.Fprintf(os.Stderr, "building %s tables...\n", *appName)
	var (
		inst *packetshader.Instance
		err  error
	)
	switch *appName {
	case "ipv4":
		inst, err = packetshader.IPv4(*prefixes, *seed, opts...)
	case "ipv6":
		inst, err = packetshader.IPv6(*prefixes, *seed, opts...)
	case "openflow":
		sw := openflow.NewSwitch(*flows)
		// A default-forward rule set catches everything; exact entries
		// would be installed by a controller.
		for i := 0; i < *wild; i++ {
			sw.Wildcard.Insert(openflow.Rule{
				Wild:     openflow.WAll,
				Priority: i,
				Action:   openflow.Action{Type: openflow.ActionOutput, Port: uint16(i % model.NumPorts)},
			})
		}
		src := &pktgen.UDP4Source{Size: *size, Seed: uint64(*seed)}
		inst, err = packetshader.OpenFlowSwitch(sw, src, opts...)
	case "ipsec":
		inst, err = packetshader.IPsec(*seed, opts...)
	default:
		fmt.Fprintf(os.Stderr, "unknown app %q\n", *appName)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var (
		tracer  *obs.Tracer
		sampler *obs.ServerSampler
		reg     *obs.Registry
	)
	if *traceOut != "" {
		tracer = obs.NewTracer()
	}
	if *metrics {
		reg = obs.NewRegistry()
	}
	if tracer != nil || reg != nil {
		// The sampler turns every sim.Server reservation (PCIe engines,
		// GPU copy/exec, NIC serializers) into occupancy spans/totals.
		sampler = obs.NewServerSampler(tracer)
		inst.Env.SetHooks(sampler)
		inst.EnableObs(tracer, reg)
	}
	var tap *pcap.Tap
	if *pcapOut != "" {
		f, err := os.Create(*pcapOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		tap = &pcap.Tap{W: pcap.NewWriter(f, 0), Limit: *pcapN}
		inst.TapTx(func(b *packet.Buf, at sim.Time) { tap.Observe(b, at) })
	}
	var ctl *ctrl.Controller
	if script != nil {
		// Attach before the run starts: script offsets count from
		// simulated time zero, warmup included.
		ctl, err = inst.Control(script, os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	start := time.Now()
	inst.Run(sim.DurationFromSeconds(warmup.Seconds()))
	report := inst.Run(sim.DurationFromSeconds(duration.Seconds()))
	wall := time.Since(start)
	// Wall time goes to stderr: stdout stays a pure function of the
	// configuration, so replaying a run diffs byte-identically.
	fmt.Fprintf(os.Stderr, "simulated %v (+%v warmup) in %v wall time\n",
		duration, warmup, wall.Round(time.Millisecond))

	router := inst.Router
	sink := inst.Sink
	rx, rxDropped, tx, txDropped := router.Engine.AggregateStats()
	fmt.Printf("PacketShader %s / %s mode, %dB packets, %.1f Gbps/port offered\n",
		router.App.Name(), *mode, *size, *offered)
	fmt.Printf("  simulated       %v (+%v warmup)\n", duration, warmup)
	fmt.Printf("  throughput      %.2f Gbps delivered (%.2f Gbps input)\n",
		report.DeliveredGbps, report.InputGbps)
	fmt.Printf("  packets         rx=%d rx_dropped=%d tx=%d tx_dropped=%d app_drops=%d\n",
		rx, rxDropped, tx, txDropped, router.Stats.Drops)
	fmt.Printf("  chunks          cpu=%d gpu=%d launches=%d\n",
		router.Stats.ChunksCPU, router.Stats.ChunksGPU, router.Stats.GPULaunches)
	if sink.Count > 0 {
		fmt.Printf("  latency (us)    mean=%.0f min=%.0f p50=%.0f p99=%.0f max=%.0f\n",
			sink.MeanMicros(), sink.MinMicros(),
			sink.PercentileMicros(0.5), sink.PercentileMicros(0.99), sink.MaxMicros())
	}
	for i, dev := range router.Devices {
		fmt.Printf("  gpu%d            launches=%d threads=%d\n", i, dev.Launches, dev.ThreadsRun)
	}
	if ctl != nil {
		fmt.Printf("  ctrl            commands=%d route_updates=%d cells_touched=%d errors=%d\n",
			ctl.Fired(), ctl.RoutesApplied(), ctl.CellsTouched(), len(ctl.Errors()))
		for _, e := range ctl.Errors() {
			fmt.Fprintf(os.Stderr, "ctrl error: %s\n", e)
		}
	}
	if tap != nil {
		fmt.Printf("  pcap            %d packets\n", tap.W.Packets)
		fmt.Fprintf(os.Stderr, "pcap written to %s\n", *pcapOut)
		if tap.Err != nil {
			fmt.Fprintf(os.Stderr, "pcap error: %v\n", tap.Err)
		}
	}
	if tracer != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := tracer.WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		// The event count is simulation output; the destination path is
		// host detail and goes to stderr so stdout replays byte-identically
		// regardless of where the trace file lands.
		fmt.Printf("  trace           %d events\n", tracer.Events())
		fmt.Fprintf(os.Stderr, "trace written to %s (open at https://ui.perfetto.dev)\n", *traceOut)
	}
	if reg != nil {
		router.ObserveStats()
		fmt.Printf("metrics:\n")
		if err := reg.Dump(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := sampler.WriteReport(os.Stdout, inst.Env.Now()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
