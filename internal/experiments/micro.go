package experiments

import (
	"fmt"

	"packetshader/internal/hw/gpu"
	"packetshader/internal/hw/pcie"
	"packetshader/internal/model"
	"packetshader/internal/sim"
)

// Table1 regenerates the paper's Table 1: PCIe data transfer rate
// between host and device memory over buffer sizes from 256B to 1MB.
func Table1() *Result { return runSolo(table1) }

func table1(c *Ctx) *Result {
	r := &Result{
		ID:     "table1",
		Title:  "Data transfer rate between host and device (MB/s)",
		Header: []string{"Buffer size", "Host-to-device", "Device-to-host", "paper h2d", "paper d2h"},
	}
	paper := map[int][2]float64{
		256: {55, 63}, 1024: {185, 211}, 4096: {759, 786},
		16384: {2069, 1743}, 65536: {4046, 2848},
		262144: {5142, 3242}, 1048576: {5577, 3394},
	}
	sizes := []int{256, 1024, 4096, 16384, 65536, 262144, 1048576}
	type rates struct{ h2d, d2h float64 }
	pts := MapPoints(c, len(sizes), func(i int, _ *Point) rates {
		size := sizes[i]
		env := sim.NewEnv()
		defer env.Close()
		link := pcie.NewLink(env, pcie.NewIOH(env, 0), "gpu")
		const reps = 100
		var h2d, d2h sim.Duration
		env.Go("copier", func(p *sim.Proc) {
			t0 := p.Now()
			for i := 0; i < reps; i++ {
				link.CopyH2D(p, size)
			}
			h2d = sim.Duration(p.Now() - t0)
			t0 = p.Now()
			for i := 0; i < reps; i++ {
				link.CopyD2H(p, size)
			}
			d2h = sim.Duration(p.Now() - t0)
		})
		env.Run(0)
		rate := func(d sim.Duration) float64 {
			return float64(size*reps) / d.Seconds() / 1e6
		}
		return rates{rate(h2d), rate(d2h)}
	})
	for i, size := range sizes {
		r.AddRow(sizeLabel(size),
			fmt.Sprintf("%.0f", pts[i].h2d), fmt.Sprintf("%.0f", pts[i].d2h),
			fmt.Sprintf("%.0f", paper[size][0]), fmt.Sprintf("%.0f", paper[size][1]))
	}
	r.Note("paper peaks: 5.6 GB/s h2d, 3.4 GB/s d2h; d2h is slower (dual-IOH, §3.2)")
	return r
}

func sizeLabel(size int) string {
	switch {
	case size >= 1<<20:
		return fmt.Sprintf("%dM", size>>20)
	case size >= 1<<10:
		return fmt.Sprintf("%dK", size>>10)
	default:
		return fmt.Sprintf("%d", size)
	}
}

// LaunchLatency regenerates the §2.2 kernel-launch microbenchmark:
// 3.8 µs for one thread, 4.1 µs for 4096 (only a 10% increase).
func LaunchLatency() *Result { return runSolo(launchLatency) }

// launchLatency is pure closed-form model evaluation — no simulation —
// so it runs inline rather than occupying a pool worker.
func launchLatency(*Ctx) *Result {
	r := &Result{
		ID:     "launch",
		Title:  "GPU kernel launch latency (§2.2)",
		Header: []string{"Threads", "Latency (us)", "per-thread (ns)"},
	}
	for _, threads := range []int{1, 32, 256, 1024, 4096} {
		// Launch-only: no copies, no sync accounting beyond the launch
		// itself (the paper measures the bare launch).
		dur := model.GPULaunchTime(threads)
		r.AddRow(fmt.Sprintf("%d", threads),
			fmt.Sprintf("%.2f", dur.Microseconds()),
			fmt.Sprintf("%.1f", dur.Microseconds()*1000/float64(threads)))
	}
	r.Note("paper: 3.8 us for 1 thread, 4.1 us for 4096 — amortized cost becomes negligible")
	return r
}

// Fig2 regenerates Figure 2: IPv6 lookup throughput (no packet I/O) of
// one X5550, two X5550s, and one GTX480 versus the number of packets
// processed in a batch.
func Fig2() *Result { return runSolo(fig2) }

func fig2(c *Ctx) *Result {
	r := &Result{
		ID:     "fig2",
		Title:  "IPv6 lookup throughput of X5550 and GTX480 (Mlookups/s)",
		Header: []string{"Batch", "1x X5550", "2x X5550", "GTX480"},
	}
	_, tbl := IPv6Fixture()

	perLookup := float64(model.IPv6LookupProbes) *
		(model.MemAccessCycles() + model.IPv6LookupComputeCycles)
	cpu1 := 4 * model.CPUFreqHz / perLookup
	cpu2 := 2 * cpu1

	batches := []int{32, 64, 128, 256, 320, 512, 640, 1024, 2048, 4096, 16384, 65536}
	gpuRates := MapPoints(c, len(batches), func(i int, _ *Point) float64 {
		batch := batches[i]
		env := sim.NewEnv()
		defer env.Close()
		dev := gpu.New(env, pcie.NewIOH(env, 0), 0)
		reps := 8
		his := make([]uint64, batch)
		los := make([]uint64, batch)
		hops := make([]uint16, batch)
		for i := range his {
			his[i] = uint64(0x2001)<<48 | uint64(i)*2654435761
			los[i] = uint64(i) * 0x9e3779b97f4a7c15
		}
		var total sim.Duration
		env.Go("m", func(p *sim.Proc) {
			for i := 0; i < reps; i++ {
				total += dev.Launch(p, &gpu.KernelIPv6, batch, batch*16, batch*2, 0,
					func() { tbl.LookupBatch(his, los, hops) })
			}
		})
		env.Run(0)
		return float64(batch*reps) / total.Seconds()
	})
	for i, batch := range batches {
		r.AddRow(fmt.Sprintf("%d", batch),
			fmt.Sprintf("%.1f", cpu1/1e6), fmt.Sprintf("%.1f", cpu2/1e6),
			fmt.Sprintf("%.1f", gpuRates[i]/1e6))
	}
	r.Note("paper: GPU passes one X5550 beyond ~320 packets, two beyond ~640; peak ≈ ten X5550s")
	return r
}
