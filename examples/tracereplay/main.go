// tracereplay: trace-driven workloads — capture the router's forwarded
// traffic to a pcap file with a Tap, then replay that capture as the
// offered load of a second run. The capture is standard nanosecond
// pcap, readable by tcpdump/Wireshark.
package main

import (
	"bytes"
	"fmt"
	"log"

	"packetshader/internal/apps"
	"packetshader/internal/core"
	lookupv4 "packetshader/internal/lookup/ipv4"
	"packetshader/internal/model"
	"packetshader/internal/packet"
	"packetshader/internal/pcap"
	"packetshader/internal/pktgen"
	"packetshader/internal/route"
	"packetshader/internal/sim"
)

func main() {
	entries := route.GenerateBGPTable(20000, 64, 99)
	tbl, err := lookupv4.Build(entries)
	if err != nil {
		log.Fatal(err)
	}

	// Run 1: synthetic traffic, capturing 50k forwarded packets.
	var capture bytes.Buffer
	tap := &pcap.Tap{W: pcap.NewWriter(&capture, 0), Limit: 50000}
	run := func(src interface {
		Fill(b *packet.Buf, port, queue int, seq uint64)
	}, observe bool) float64 {
		env := sim.NewEnv()
		cfg := core.DefaultConfig()
		app := &apps.IPv4Fwd{Table: tbl, NumPorts: model.NumPorts}
		r := core.New(env, cfg, app)
		if observe {
			for _, p := range r.Engine.Ports {
				p.Tx.OnComplete = tap.Observe
			}
		}
		r.SetSource(src)
		r.Start()
		env.After(6*sim.Millisecond, r.ResetMeasurement)
		env.Run(sim.Time(10 * sim.Millisecond))
		return r.DeliveredGbps()
	}

	g1 := run(&pktgen.UDP4Source{Size: 64, Seed: 99, Table: entries}, true)
	fmt.Printf("run 1 (synthetic): %.1f Gbps, captured %d packets (%d pcap bytes)\n",
		g1, tap.W.Packets, capture.Len())

	// Run 2: replay the capture as the workload.
	replay, err := pktgen.NewReplaySourceFromBytes(capture.Bytes())
	if err != nil {
		log.Fatal(err)
	}
	g2 := run(replay, false)
	fmt.Printf("run 2 (trace-driven replay of %d frames): %.1f Gbps\n",
		replay.Len(), g2)
}
