package packet

import (
	"encoding/binary"
	"errors"
)

// Decoding errors.
var (
	ErrTruncated   = errors.New("packet: truncated")
	ErrBadVersion  = errors.New("packet: bad IP version")
	ErrBadHdrLen   = errors.New("packet: bad header length")
	ErrBadChecksum = errors.New("packet: bad checksum")
)

// EthernetHdr is a decoded Ethernet header (VLAN tag, if any, is
// reported via the Decoder).
type EthernetHdr struct {
	Dst, Src  MAC
	EtherType uint16
}

// Decode parses an Ethernet header from b and returns the payload.
func (h *EthernetHdr) Decode(b []byte) ([]byte, error) {
	if len(b) < EthHdrLen {
		return nil, ErrTruncated
	}
	copy(h.Dst[:], b[0:6])
	copy(h.Src[:], b[6:12])
	h.EtherType = binary.BigEndian.Uint16(b[12:14])
	return b[EthHdrLen:], nil
}

// Encode writes the header into b (must be ≥ EthHdrLen).
func (h *EthernetHdr) Encode(b []byte) {
	copy(b[0:6], h.Dst[:])
	copy(b[6:12], h.Src[:])
	binary.BigEndian.PutUint16(b[12:14], h.EtherType)
}

// IPv4Hdr is a decoded IPv4 header (options preserved by length only).
type IPv4Hdr struct {
	IHL      uint8 // header length in 32-bit words
	TOS      uint8
	TotalLen uint16
	ID       uint16
	Flags    uint8 // 3 bits
	FragOff  uint16
	TTL      uint8
	Protocol uint8
	Checksum uint16
	Src, Dst IPv4Addr
}

// Decode parses an IPv4 header and returns the L4 payload.
func (h *IPv4Hdr) Decode(b []byte) ([]byte, error) {
	if len(b) < IPv4HdrLen {
		return nil, ErrTruncated
	}
	if b[0]>>4 != 4 {
		return nil, ErrBadVersion
	}
	h.IHL = b[0] & 0x0f
	hdrLen := int(h.IHL) * 4
	if hdrLen < IPv4HdrLen || len(b) < hdrLen {
		return nil, ErrBadHdrLen
	}
	h.TOS = b[1]
	h.TotalLen = binary.BigEndian.Uint16(b[2:4])
	h.ID = binary.BigEndian.Uint16(b[4:6])
	ff := binary.BigEndian.Uint16(b[6:8])
	h.Flags = uint8(ff >> 13)
	h.FragOff = ff & 0x1fff
	h.TTL = b[8]
	h.Protocol = b[9]
	h.Checksum = binary.BigEndian.Uint16(b[10:12])
	h.Src = IPv4AddrFrom(b[12:16])
	h.Dst = IPv4AddrFrom(b[16:20])
	if int(h.TotalLen) < hdrLen {
		return nil, ErrBadHdrLen
	}
	end := int(h.TotalLen)
	if end > len(b) {
		end = len(b)
	}
	return b[hdrLen:end], nil
}

// VerifyChecksum reports whether the header checksum in b (an IPv4
// header of hdrLen bytes) is valid.
func VerifyIPv4Checksum(b []byte) bool {
	if len(b) < IPv4HdrLen {
		return false
	}
	hdrLen := int(b[0]&0x0f) * 4
	if hdrLen < IPv4HdrLen || hdrLen > len(b) {
		return false
	}
	return Checksum(b[:hdrLen]) == 0
}

// Encode writes a 20-byte (optionless) header into b and fills the
// checksum field.
func (h *IPv4Hdr) Encode(b []byte) {
	b[0] = 4<<4 | 5
	b[1] = h.TOS
	binary.BigEndian.PutUint16(b[2:4], h.TotalLen)
	binary.BigEndian.PutUint16(b[4:6], h.ID)
	binary.BigEndian.PutUint16(b[6:8], uint16(h.Flags)<<13|h.FragOff)
	b[8] = h.TTL
	b[9] = h.Protocol
	b[10], b[11] = 0, 0
	copy(b[12:16], b4(h.Src))
	copy(b[16:20], b4(h.Dst))
	cs := Checksum(b[:IPv4HdrLen])
	binary.BigEndian.PutUint16(b[10:12], cs)
}

func b4(a IPv4Addr) []byte {
	v := a.Bytes()
	return v[:]
}

// IPv6Hdr is a decoded IPv6 fixed header.
type IPv6Hdr struct {
	TrafficClass uint8
	FlowLabel    uint32
	PayloadLen   uint16
	NextHeader   uint8
	HopLimit     uint8
	Src, Dst     IPv6Addr
}

// Decode parses an IPv6 header and returns the payload.
func (h *IPv6Hdr) Decode(b []byte) ([]byte, error) {
	if len(b) < IPv6HdrLen {
		return nil, ErrTruncated
	}
	if b[0]>>4 != 6 {
		return nil, ErrBadVersion
	}
	vtf := binary.BigEndian.Uint32(b[0:4])
	h.TrafficClass = uint8(vtf >> 20)
	h.FlowLabel = vtf & 0xfffff
	h.PayloadLen = binary.BigEndian.Uint16(b[4:6])
	h.NextHeader = b[6]
	h.HopLimit = b[7]
	copy(h.Src[:], b[8:24])
	copy(h.Dst[:], b[24:40])
	end := IPv6HdrLen + int(h.PayloadLen)
	if end > len(b) {
		end = len(b)
	}
	return b[IPv6HdrLen:end], nil
}

// Encode writes the 40-byte fixed header into b.
func (h *IPv6Hdr) Encode(b []byte) {
	vtf := uint32(6)<<28 | uint32(h.TrafficClass)<<20 | h.FlowLabel&0xfffff
	binary.BigEndian.PutUint32(b[0:4], vtf)
	binary.BigEndian.PutUint16(b[4:6], h.PayloadLen)
	b[6] = h.NextHeader
	b[7] = h.HopLimit
	copy(b[8:24], h.Src[:])
	copy(b[24:40], h.Dst[:])
}

// UDPHdr is a decoded UDP header.
type UDPHdr struct {
	SrcPort, DstPort uint16
	Length           uint16
	Checksum         uint16
}

// Decode parses a UDP header and returns the payload.
func (h *UDPHdr) Decode(b []byte) ([]byte, error) {
	if len(b) < UDPHdrLen {
		return nil, ErrTruncated
	}
	h.SrcPort = binary.BigEndian.Uint16(b[0:2])
	h.DstPort = binary.BigEndian.Uint16(b[2:4])
	h.Length = binary.BigEndian.Uint16(b[4:6])
	h.Checksum = binary.BigEndian.Uint16(b[6:8])
	if int(h.Length) < UDPHdrLen {
		return nil, ErrBadHdrLen
	}
	end := int(h.Length)
	if end > len(b) {
		end = len(b)
	}
	return b[UDPHdrLen:end], nil
}

// Encode writes the header into b (checksum left as set in h; 0 means
// "no checksum" which is legal for UDP over IPv4).
func (h *UDPHdr) Encode(b []byte) {
	binary.BigEndian.PutUint16(b[0:2], h.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], h.DstPort)
	binary.BigEndian.PutUint16(b[4:6], h.Length)
	binary.BigEndian.PutUint16(b[6:8], h.Checksum)
}

// TCPHdr is a decoded TCP header (flags and ports only; the router never
// terminates TCP).
type TCPHdr struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	DataOff          uint8 // words
	Flags            uint8
	Window           uint16
	Checksum         uint16
	Urgent           uint16
}

// Decode parses a TCP header and returns the payload.
func (h *TCPHdr) Decode(b []byte) ([]byte, error) {
	if len(b) < TCPHdrLen {
		return nil, ErrTruncated
	}
	h.SrcPort = binary.BigEndian.Uint16(b[0:2])
	h.DstPort = binary.BigEndian.Uint16(b[2:4])
	h.Seq = binary.BigEndian.Uint32(b[4:8])
	h.Ack = binary.BigEndian.Uint32(b[8:12])
	h.DataOff = b[12] >> 4
	hdrLen := int(h.DataOff) * 4
	if hdrLen < TCPHdrLen || hdrLen > len(b) {
		return nil, ErrBadHdrLen
	}
	h.Flags = b[13]
	h.Window = binary.BigEndian.Uint16(b[14:16])
	h.Checksum = binary.BigEndian.Uint16(b[16:18])
	h.Urgent = binary.BigEndian.Uint16(b[18:20])
	return b[hdrLen:], nil
}

// Encode writes a 20-byte (optionless) TCP header into b.
func (h *TCPHdr) Encode(b []byte) {
	binary.BigEndian.PutUint16(b[0:2], h.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], h.DstPort)
	binary.BigEndian.PutUint32(b[4:8], h.Seq)
	binary.BigEndian.PutUint32(b[8:12], h.Ack)
	b[12] = 5 << 4
	b[13] = h.Flags
	binary.BigEndian.PutUint16(b[14:16], h.Window)
	binary.BigEndian.PutUint16(b[16:18], h.Checksum)
	binary.BigEndian.PutUint16(b[18:20], h.Urgent)
}
