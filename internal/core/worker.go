package core

import (
	"packetshader/internal/obs"
	"packetshader/internal/packet"
	"packetshader/internal/pktio"
	"packetshader/internal/sim"
)

// worker is one hard-affinitized worker thread (§5.1): it owns a set of
// virtual interfaces (its RX queues), performs pre- and post-shading,
// and exchanges chunks with its node's master.
type worker struct {
	router *Router
	id     int
	node   int
	ifaces []*pktio.Iface
	rr     int // round-robin cursor over ifaces (§5.2: fairness)

	master *master
	outQ   *sim.Queue[*Chunk]    // results returned by the master
	ctrlQ  *sim.Queue[gpuStatus] // hold-out updates posted by the master
	tuneQ  *sim.Queue[tuneMsg]   // live knob changes posted by the control plane

	// chunkCap and opp are the worker's private copies of the two
	// runtime-tunable knobs it consults per chunk, seeded from the Config
	// and updated solely by draining tuneQ (see tuning.go).
	chunkCap int
	opp      bool

	// gpuOut/gpuRetryAt mirror the master's hold-out state, fed solely by
	// draining ctrlQ. Under the cooperative scheduler every transition
	// ordered before a drain has already been posted, so the mirror
	// equals the master's state at each offload decision — which is what
	// makes this mediation behavior-preserving.
	gpuOut     bool
	gpuRetryAt sim.Time

	inflight int

	// txBufs/txOrder are the reusable per-port grouping scratch for the
	// scatter in finish (a per-chunk map would allocate on every chunk).
	// txBufs is indexed by output port; txOrder lists the ports touched
	// by the current chunk in first-appearance order.
	txBufs  [][]*packet.Buf
	txOrder []int
}

func (w *worker) maxInflight() int {
	if !w.router.Cfg.Pipelining {
		return 1
	}
	if w.router.Cfg.MaxInFlight > 0 {
		return w.router.Cfg.MaxInFlight
	}
	return 4
}

func (w *worker) run(p *sim.Proc) {
	gpuMode := w.router.Cfg.Mode == ModeGPU && w.master != nil
	for {
		w.drainTuning()
		// 1. Finish any chunks the master has returned.
		for {
			c, ok := w.outQ.TryGet()
			if !ok {
				break
			}
			w.inflight--
			w.finish(p, c)
		}
		// 2. Fetch and process a new chunk if the pipeline has room.
		if !gpuMode || w.inflight < w.maxInflight() {
			fetchStart := p.Now()
			if c := w.fetchChunk(p); c != nil {
				o := w.router.obs
				track := o.workerTracks[w.id]
				o.tr.SpanUntil(track, "rx-fetch", fetchStart, c.fetchedAt,
					obs.Arg{Key: "packets", Val: int64(len(c.Bufs))})
				o.chunkSize.Observe(int64(len(c.Bufs)))
				pre := w.router.App.PreShade(c)
				c.Threads = pre.Threads
				c.InBytes = pre.InBytes
				c.OutBytes = pre.OutBytes
				c.StreamBytes = pre.StreamBytes
				p.Sleep(cycles(pre.CPUCycles))
				o.tr.SpanUntil(track, "pre-shade", c.fetchedAt, p.Now())
				offload := gpuMode && pre.Threads > 0
				if offload && w.opp &&
					len(c.Bufs) <= w.router.Cfg.OppThreshold {
					// §7: light load — keep the work on the CPU for
					// latency.
					offload = false
				}
				if offload && w.gpuHeldOut(p.Now()) {
					// The watchdog has the GPU held out: degrade to the
					// CPU path. The first offload after the backoff
					// expires is the recovery probe.
					offload = false
				}
				if offload {
					c.enqueued = p.Now()
					w.inflight++
					w.master.inQ.Put(p, c) // blocks when full: backpressure
				} else {
					cpuStart := p.Now()
					p.Sleep(cycles(w.router.App.CPUWork(c)))
					o.tr.SpanUntil(track, "cpu-work", cpuStart, p.Now())
					w.router.Stats.ChunksCPU++
					w.finish(p, c)
				}
				continue
			}
		}
		// 3. Nothing fetched: wait for results or for packets.
		if w.inflight > 0 {
			c := w.outQ.Get(p)
			w.inflight--
			w.finish(p, c)
			continue
		}
		if !w.waitAny(p) {
			return // no offered load anywhere: worker retires
		}
	}
}

// gpuHeldOut drains any hold-out updates the master has posted to the
// control queue, then reports whether the GPU should be bypassed right
// now.
func (w *worker) gpuHeldOut(now sim.Time) bool {
	for {
		st, ok := w.ctrlQ.TryGet()
		if !ok {
			break
		}
		w.gpuOut = st.out
		w.gpuRetryAt = st.retryAt
	}
	return w.gpuOut && now < w.gpuRetryAt
}

// fetchChunk builds one chunk by polling the worker's interfaces
// round-robin, starting after the last one served (§5.2 fairness). The
// chunk takes whatever the first non-empty queue has, up to the cap —
// "we do not intentionally wait for the fixed number of packets" (§5.3).
func (w *worker) fetchChunk(p *sim.Proc) *Chunk {
	max := w.chunkCap
	c := w.router.getChunk()
	for i := 0; i < len(w.ifaces); i++ {
		f := w.ifaces[w.rr]
		w.rr = (w.rr + 1) % len(w.ifaces)
		bufs := f.FetchChunk(p, max, c.Bufs[:0])
		if len(bufs) == 0 {
			continue
		}
		c.Bufs = bufs
		// OutPorts is NOT cleared: every App's PreShade writes every slot
		// (part of the App contract, pinned by tests), so recycled chunks
		// cannot leak stale forwarding decisions.
		if n := len(bufs); n <= cap(c.OutPorts) {
			c.OutPorts = c.OutPorts[:n]
		} else {
			c.OutPorts = make([]int, n)
		}
		c.Worker = w.id
		c.fetchedAt = p.Now()
		w.router.Stats.Packets += uint64(len(bufs))
		return c
	}
	w.router.putChunk(c)
	return nil
}

// finish runs post-shading and transmits the chunk, splitting packets
// by destination port (§5.3).
func (w *worker) finish(p *sim.Proc, c *Chunk) {
	o := w.router.obs
	track := o.workerTracks[w.id]
	postStart := p.Now()
	p.Sleep(cycles(w.router.App.PostShade(c)))
	o.tr.SpanUntil(track, "post-shade", postStart, p.Now(),
		obs.Arg{Key: "packets", Val: int64(len(c.Bufs))})
	// Group by output port, preserving FIFO order within the chunk. The
	// grouping scratch (txBufs indexed by port, txOrder listing touched
	// ports) lives on the worker and is reused chunk after chunk.
	order := w.txOrder[:0]
	for i, b := range c.Bufs {
		port := c.OutPorts[i]
		if port < 0 || port >= len(w.router.Engine.Ports) {
			w.router.Stats.Drops++
			b.Release()
			continue
		}
		if len(w.txBufs[port]) == 0 {
			order = append(order, port)
		}
		w.txBufs[port] = append(w.txBufs[port], b)
	}
	txStart := p.Now()
	for _, port := range order {
		bufs := w.txBufs[port]
		if tx := w.router.Engine.Ports[port].Tx; !tx.CarrierUp() {
			// Carrier down: pause TX to this port — the NIC drops and
			// accounts the packets; the worker spends no send cycles on
			// a dead link.
			tx.Transmit(bufs)
		} else {
			w.router.Engine.Send(p, w.node, port, bufs)
		}
		// Clear the per-port bucket for reuse: drop the *Buf references
		// so recycled packets aren't retained by the scratch.
		for i := range bufs {
			bufs[i] = nil
		}
		w.txBufs[port] = bufs[:0]
	}
	if len(order) > 0 {
		o.tr.SpanUntil(track, "tx", txStart, p.Now())
	}
	w.txOrder = order
	o.chunkLatency.ObserveDuration(sim.Duration(p.Now() - c.fetchedAt))
	w.router.putChunk(c)
}

// waitAny blocks until any of the worker's queues can produce a packet,
// re-enabling interrupts as §5.2 describes. Returns false if no queue
// has offered load.
func (w *worker) waitAny(p *sim.Proc) bool {
	best, ok := sim.Duration(0), false
	for _, f := range w.ifaces {
		if d, alive := f.Queue.TimeToPacket(); alive {
			if !ok || d < best {
				best = d
				ok = true
			}
		}
	}
	if !ok {
		return false
	}
	p.Sleep(best + w.ifaces[0].Queue.Moderation)
	return true
}

func cycles(c float64) sim.Duration {
	if c <= 0 {
		return 0
	}
	return simCycles(c)
}
