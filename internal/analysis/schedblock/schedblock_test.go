package schedblock_test

import (
	"testing"

	"packetshader/internal/analysis/analysistest"
	"packetshader/internal/analysis/schedblock"
)

func TestSchedBlock(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), schedblock.Analyzer, "schedblock")
}
