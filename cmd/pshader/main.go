// Command pshader runs the PacketShader router simulation with one of
// the paper's four applications and prints throughput, latency, and
// framework statistics.
//
// Examples:
//
//	pshader -app ipv4 -mode gpu -size 64 -duration 20ms
//	pshader -app ipsec -mode cpu -size 1514 -offered 5
//	pshader -app openflow -flows 32768 -wildcards 32
//	pshader -app ipv6 -mode gpu -opportunistic -offered 1
//	pshader -app ipv4 -mode gpu -trace trace.json -metrics
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"packetshader/internal/apps"
	"packetshader/internal/core"
	"packetshader/internal/model"
	"packetshader/internal/obs"
	"packetshader/internal/openflow"
	"packetshader/internal/packet"
	"packetshader/internal/pcap"
	"packetshader/internal/pktgen"
	"packetshader/internal/route"
	"packetshader/internal/sim"

	lookupv4 "packetshader/internal/lookup/ipv4"
	lookupv6 "packetshader/internal/lookup/ipv6"
)

func main() {
	var (
		appName  = flag.String("app", "ipv4", "application: ipv4, ipv6, openflow, ipsec")
		mode     = flag.String("mode", "gpu", "cpu (CPU-only) or gpu (CPU+GPU)")
		size     = flag.Int("size", 64, "packet size in bytes (64-1514)")
		offered  = flag.Float64("offered", 10, "offered load per port (Gbps)")
		duration = flag.Duration("duration", 20*time.Millisecond, "simulated duration")
		warmup   = flag.Duration("warmup", 10*time.Millisecond, "warmup excluded from measurement")
		prefixes = flag.Int("prefixes", 100000, "routing-table prefixes (ipv4/ipv6)")
		flows    = flag.Int("flows", 32768, "exact-match flows (openflow)")
		wild     = flag.Int("wildcards", 32, "wildcard rules (openflow)")
		streams  = flag.Int("streams", 1, "CUDA streams (concurrent copy & execution)")
		opp      = flag.Bool("opportunistic", false, "opportunistic offloading (§7)")
		seed     = flag.Int64("seed", 42, "workload seed")
		pcapOut  = flag.String("pcap", "", "capture transmitted packets to this pcap file")
		pcapN    = flag.Uint64("pcap-limit", 1000, "max packets to capture")
		traceOut = flag.String("trace", "", "write a Chrome trace-event JSON file (open in Perfetto)")
		metrics  = flag.Bool("metrics", false, "dump counters, latency histograms, and resource occupancy")
	)
	flag.Parse()

	env := sim.NewEnv()
	cfg := core.DefaultConfig()
	cfg.PacketSize = *size
	cfg.OfferedGbpsPerPort = *offered
	cfg.Streams = *streams
	cfg.OpportunisticOffload = *opp
	switch *mode {
	case "cpu":
		cfg.Mode = core.ModeCPUOnly
	case "gpu":
		cfg.Mode = core.ModeGPU
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}

	var app core.App
	var src interface {
		Fill(b *packet.Buf, port, queue int, seq uint64)
	}
	fmt.Fprintf(os.Stderr, "building %s tables...\n", *appName)
	switch *appName {
	case "ipv4":
		entries := route.GenerateBGPTable(*prefixes, 64, *seed)
		tbl, err := lookupv4.Build(entries)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		app = &apps.IPv4Fwd{Table: tbl, NumPorts: model.NumPorts}
		src = &pktgen.UDP4Source{Size: *size, Seed: uint64(*seed), Table: entries}
	case "ipv6":
		entries := route.GenerateIPv6Table(*prefixes, 64, *seed)
		app = &apps.IPv6Fwd{Table: lookupv6.Build(entries), NumPorts: model.NumPorts}
		src = &pktgen.UDP6Source{Size: *size, Seed: uint64(*seed), Table: entries}
	case "openflow":
		sw := openflow.NewSwitch(*flows)
		// A default-forward rule catches everything; exact entries are
		// installed for the generated flows by the demo loop below.
		for i := 0; i < *wild; i++ {
			sw.Wildcard.Insert(openflow.Rule{
				Wild:     openflow.WAll,
				Priority: i,
				Action:   openflow.Action{Type: openflow.ActionOutput, Port: uint16(i % model.NumPorts)},
			})
		}
		app = apps.NewOFSwitch(sw, model.NumPorts)
		src = &pktgen.UDP4Source{Size: *size, Seed: uint64(*seed)}
	case "ipsec":
		app = apps.NewIPsecGW(model.NumPorts)
		src = &pktgen.UDP4Source{Size: *size, Seed: uint64(*seed)}
	default:
		fmt.Fprintf(os.Stderr, "unknown app %q\n", *appName)
		os.Exit(2)
	}

	router := core.New(env, cfg, app)
	var (
		tracer  *obs.Tracer
		sampler *obs.ServerSampler
		reg     *obs.Registry
	)
	if *traceOut != "" {
		tracer = obs.NewTracer()
	}
	if *metrics {
		reg = obs.NewRegistry()
	}
	if tracer != nil || reg != nil {
		// The sampler turns every sim.Server reservation (PCIe engines,
		// GPU copy/exec, NIC serializers) into occupancy spans/totals.
		sampler = obs.NewServerSampler(tracer)
		env.SetHooks(sampler)
		router.EnableObs(tracer, reg)
	}
	sink := pktgen.NewLatencySink()
	var tap *pcap.Tap
	if *pcapOut != "" {
		f, err := os.Create(*pcapOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		tap = &pcap.Tap{W: pcap.NewWriter(f, 0), Limit: *pcapN}
	}
	for _, p := range router.Engine.Ports {
		p.Tx.OnComplete = func(b *packet.Buf, at sim.Time) {
			sink.Observe(b, at)
			if tap != nil {
				tap.Observe(b, at)
			}
		}
	}
	router.SetSource(src)
	router.Start()

	wu := sim.DurationFromSeconds(warmup.Seconds())
	total := wu + sim.DurationFromSeconds(duration.Seconds())
	env.After(wu, router.ResetMeasurement)
	start := time.Now()
	env.Run(sim.Time(total))
	wall := time.Since(start)

	rx, rxDropped, tx, txDropped := router.Engine.AggregateStats()
	fmt.Printf("PacketShader %s / %s mode, %dB packets, %.1f Gbps/port offered\n",
		app.Name(), *mode, *size, *offered)
	fmt.Printf("  simulated %v (+%v warmup) in %v wall time\n", duration, warmup, wall.Round(time.Millisecond))
	fmt.Printf("  throughput      %.2f Gbps delivered (%.2f Gbps input)\n",
		router.DeliveredGbps(), router.InputGbps())
	fmt.Printf("  packets         rx=%d rx_dropped=%d tx=%d tx_dropped=%d app_drops=%d\n",
		rx, rxDropped, tx, txDropped, router.Stats.Drops)
	fmt.Printf("  chunks          cpu=%d gpu=%d launches=%d\n",
		router.Stats.ChunksCPU, router.Stats.ChunksGPU, router.Stats.GPULaunches)
	if sink.Count > 0 {
		fmt.Printf("  latency (us)    mean=%.0f min=%.0f p50=%.0f p99=%.0f max=%.0f\n",
			sink.MeanMicros(), sink.MinMicros(),
			sink.PercentileMicros(0.5), sink.PercentileMicros(0.99), sink.MaxMicros())
	}
	for i, dev := range router.Devices {
		fmt.Printf("  gpu%d            launches=%d threads=%d\n", i, dev.Launches, dev.ThreadsRun)
	}
	if tap != nil {
		fmt.Printf("  pcap            %d packets -> %s\n", tap.W.Packets, *pcapOut)
		if tap.Err != nil {
			fmt.Fprintf(os.Stderr, "pcap error: %v\n", tap.Err)
		}
	}
	if tracer != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := tracer.WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("  trace           %d events -> %s (open at https://ui.perfetto.dev)\n",
			tracer.Events(), *traceOut)
	}
	if reg != nil {
		router.ObserveStats()
		fmt.Printf("metrics:\n")
		if err := reg.Dump(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := sampler.WriteReport(os.Stdout, env.Now()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
