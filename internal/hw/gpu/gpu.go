// Package gpu models an NVIDIA GTX480 as PacketShader uses it: a device
// that executes *real Go kernel functions* over batches of work items
// while charging virtual time from an analytic cost model calibrated to
// the paper's §2 microbenchmarks. The model reproduces the properties
// the paper's design exploits:
//
//   - per-launch fixed costs (launch latency, driver sync, PCIe α) that
//     amortize with batch size — the Figure 2 curve;
//   - memory-latency hiding: throughput rises with thread count until
//     the device's random-access rate saturates at ≈10× one X5550;
//   - copy engines independent of the execution engine, enabling
//     "concurrent copy and execution" (§5.4) with streams.
package gpu

import (
	"strconv"

	"packetshader/internal/hw/pcie"
	"packetshader/internal/model"
	"packetshader/internal/obs"
	"packetshader/internal/sim"
)

// KernelSpec declares a kernel's per-thread cost profile for the timing
// model. The functional work is a plain Go function run by Launch.
type KernelSpec struct {
	Name string
	// RandomAccesses is the number of dependent device-memory accesses
	// each thread performs (e.g. 7 for the IPv6 lookup, 1-2 for IPv4).
	RandomAccesses float64
	// ComputeCycles is the arithmetic work per thread.
	ComputeCycles float64
	// StreamBytesPerSec, if nonzero, caps streaming workloads (the
	// IPsec cipher path) at an effective byte rate per device.
	StreamBytesPerSec float64
	// PerThreadNs is GPU-wide serialized per-thread overhead (per-packet
	// state setup in IPsec); zero for pure lookup kernels.
	PerThreadNs float64
	// DivergenceFactor models warp code-path divergence (§5.5): when
	// the 32 threads of a warp take both sides of a data-dependent
	// branch, the SIMT hardware executes both paths with masking,
	// multiplying the compute time. 1 (or 0) means no divergence; the
	// paper's kernels keep it there by sorting packets into uniform
	// warps.
	DivergenceFactor float64
}

// ExecTime returns the kernel execution time for a launch of threads
// work items touching streamBytes of payload.
func (k *KernelSpec) ExecTime(threads, streamBytes int) sim.Duration {
	if threads <= 0 {
		return 0
	}
	t := float64(threads)
	// Throughput terms (saturated device).
	div := k.DivergenceFactor
	if div < 1 {
		div = 1
	}
	compute := t * k.ComputeCycles * div / (model.GPUCores * model.GPUFreqHz)
	mem := t * k.RandomAccesses / model.GPURandomAccessPerSec
	var stream, perThread float64
	if k.StreamBytesPerSec > 0 {
		stream = float64(streamBytes) / k.StreamBytesPerSec
	}
	perThread = t * k.PerThreadNs * 1e-9
	// Latency floor: a thread's dependent accesses cannot be hidden
	// below one serial chain; with more threads than the device can
	// keep resident, the chain repeats per "round".
	maxResident := float64(model.GPUSMs * model.GPUMaxWarpsPerSM * model.GPUWarpSize)
	rounds := 1.0
	if t > maxResident {
		rounds = t / maxResident
	}
	floor := k.RandomAccesses * model.GPUDevMemLatencyNs * 1e-9 * rounds

	exec := compute
	for _, v := range []float64{mem, stream, perThread, floor} {
		if v > exec {
			exec = v
		}
	}
	return sim.DurationFromSeconds(exec)
}

// Device is one GTX480 attached to an IOH via a PCIe x16 link.
type Device struct {
	Node int
	Link *pcie.Link
	// exec serializes kernel executions: the paper's framework runs one
	// kernel at a time per device (§7).
	exec *sim.Server

	// Launches and ThreadsRun accumulate usage statistics.
	Launches   uint64
	ThreadsRun uint64

	// failed marks the device as stalled/failed (fault injection): a
	// failed device never completes a launch — LaunchChecked times out
	// its watchdog instead. Failure takes effect at launch boundaries;
	// a launch already in flight completes normally.
	failed bool
	// Stalls counts launches that hit the watchdog on a failed device.
	Stalls uint64

	// trace, when enabled via EnableTrace, receives per-launch stage
	// spans (h2d / kernel / d2h / sync) on the device's track. The
	// copy/exec engine occupancy itself is traced at the sim.Server
	// level via Env hooks; these spans add the launch-lifecycle view.
	trace *obs.Tracer
	track obs.TrackID
}

// New creates a device on the given NUMA node. Its PCIe link and exec
// engine carry the node number in their names ("gpu0-up", "gpu0-exec")
// for per-resource occupancy traces.
func New(env *sim.Env, ioh *pcie.IOH, node int) *Device {
	n := strconv.Itoa(node)
	return &Device{
		Node: node,
		Link: pcie.NewLink(env, ioh, "gpu"+n),
		exec: sim.NewServer(env, "gpu"+n+"-exec"),
	}
}

// ExecBusy exposes cumulative execution-engine work.
func (d *Device) ExecBusy() sim.Duration { return d.exec.BusyTime() }

// Fail marks the device as stalled: subsequent LaunchChecked calls burn
// their watchdog timeout and report failure until Repair.
func (d *Device) Fail() { d.failed = true }

// Repair restores the device; the next probe launch succeeds.
func (d *Device) Repair() { d.failed = false }

// Healthy reports whether the device currently completes launches.
func (d *Device) Healthy() bool { return !d.failed }

// LaunchChecked is Launch/LaunchStreams guarded by a host-side watchdog
// (the master's recovery path): on a healthy device it behaves exactly
// like Launch (or LaunchStreams when nStreams > 1) and returns true; on
// a failed device the caller blocks for the watchdog timeout — the time
// a real driver waits before declaring the launch hung — runs no
// functional work, and gets false so it can fall back to the CPU path.
func (d *Device) LaunchChecked(p *sim.Proc, spec *KernelSpec, watchdog sim.Duration, nStreams, threads, inBytes, outBytes, streamBytes int, fn func()) bool {
	if threads <= 0 {
		return true
	}
	if d.failed {
		d.Stalls++
		start := p.Now()
		p.Sleep(watchdog)
		d.trace.SpanUntil(d.track, "stall", start, p.Now(),
			obs.Arg{Key: "threads", Val: int64(threads)})
		return false
	}
	if nStreams > 1 {
		d.LaunchStreams(p, spec, nStreams, threads, inBytes, outBytes, streamBytes, fn)
	} else {
		d.Launch(p, spec, threads, inBytes, outBytes, streamBytes, fn)
	}
	return true
}

// EnableTrace attaches tr to the device, recording launch stage spans
// on a per-device track. A nil tr disables tracing.
func (d *Device) EnableTrace(tr *obs.Tracer) {
	d.trace = tr
	d.track = tr.Track("devices", "gpu"+strconv.Itoa(d.Node))
}

// Launch runs one synchronous GPU round trip from the calling (master)
// process: host→device copy of inBytes, kernel execution of threads work
// items, device→host copy of outBytes, plus launch latency and the
// host-side driver sync overhead. fn is the kernel's functional work,
// executed once (it should process the whole batch). The call blocks p
// for the full round trip and returns its duration.
func (d *Device) Launch(p *sim.Proc, spec *KernelSpec, threads, inBytes, outBytes, streamBytes int, fn func()) sim.Duration {
	start := p.Now()
	if threads <= 0 {
		return 0
	}
	d.Launches++
	d.ThreadsRun += uint64(threads)

	if inBytes > 0 {
		d.Link.CopyH2D(p, inBytes)
	}
	h2dDone := p.Now()
	d.trace.SpanUntil(d.track, "h2d", start, h2dDone,
		obs.Arg{Key: "bytes", Val: int64(inBytes)})
	p.Sleep(model.GPULaunchTime(threads))
	d.exec.Use(p, spec.ExecTime(threads, streamBytes))
	// The kernel span includes launch latency and exec-engine queueing:
	// it is the launch's wall view, while the exec server's own busy
	// span (via sim hooks) isolates pure execution.
	d.trace.SpanUntil(d.track, "kernel:"+spec.Name, h2dDone, p.Now(),
		obs.Arg{Key: "threads", Val: int64(threads)})
	if fn != nil {
		fn()
	}
	d2hStart := p.Now()
	if outBytes > 0 {
		d.Link.CopyD2H(p, outBytes)
		d.trace.SpanUntil(d.track, "d2h", d2hStart, p.Now(),
			obs.Arg{Key: "bytes", Val: int64(outBytes)})
	}
	syncStart := p.Now()
	// Host-side driver round-trip overhead (synchronization, completion
	// notification) — the dominant fixed cost for small batches.
	p.Sleep(sim.Duration(model.GPUSyncOverheadNs * float64(sim.Nanosecond)))
	d.trace.SpanUntil(d.track, "sync", syncStart, p.Now())
	return sim.Duration(p.Now() - start)
}

// LaunchStreams is the "concurrent copy and execution" variant (§5.4,
// Figure 10(c)): the batch is split into nStreams slices whose copies
// and kernel executions overlap. Per-call CUDA overhead grows with
// stream count (the paper notes multiple streams hurt lightweight
// kernels), modelled as one extra launch latency per stream.
func (d *Device) LaunchStreams(p *sim.Proc, spec *KernelSpec, nStreams, threads, inBytes, outBytes, streamBytes int, fn func()) sim.Duration {
	if nStreams <= 1 {
		return d.Launch(p, spec, threads, inBytes, outBytes, streamBytes, fn)
	}
	start := p.Now()
	d.Launches++
	d.ThreadsRun += uint64(threads)

	per := func(total int) int { return (total + nStreams - 1) / nStreams }
	var lastD2H sim.Time
	for s := 0; s < nStreams; s++ {
		// Copy-in of slice s occupies the link; the kernel for slice s
		// starts when both its copy and the previous slice's kernel
		// finish; its copy-out starts when the kernel is done.
		h2dDone := d.Link.ScheduleH2D(per(inBytes))
		lt := model.GPULaunchTime(per(threads))
		execDur := spec.ExecTime(per(threads), per(streamBytes))
		kernelDone := d.exec.ScheduleAt(h2dDone, lt+execDur)
		lastD2H = d.Link.ScheduleD2HAt(kernelDone, per(outBytes))
	}
	if fn != nil {
		fn()
	}
	p.SleepUntil(lastD2H)
	p.Sleep(sim.Duration(model.GPUSyncOverheadNs * float64(sim.Nanosecond)))
	// Streamed copies/kernels are interleaved; the per-engine busy spans
	// (sim hooks) carry the detail, so the launch view is one span.
	d.trace.SpanUntil(d.track, "launch-streams:"+spec.Name, start, p.Now(),
		obs.Arg{Key: "threads", Val: int64(threads)},
		obs.Arg{Key: "streams", Val: int64(nStreams)})
	return sim.Duration(p.Now() - start)
}

// ---------------------------------------------------------------------------
// Kernel cost profiles for the paper's four applications.
// ---------------------------------------------------------------------------

// KernelIPv4 is the DIR-24-8 lookup: mostly one random access.
var KernelIPv4 = KernelSpec{
	Name:           "ipv4-lookup",
	RandomAccesses: 1.05, // 2 accesses for the few >/24 prefixes
	ComputeCycles:  20,
}

// KernelIPv6 is the binary-search-on-length lookup: 7 dependent hash
// probes (§6.2.2).
var KernelIPv6 = KernelSpec{
	Name:           "ipv6-lookup",
	RandomAccesses: 7,
	ComputeCycles:  120,
}

// KernelOpenFlowHash computes flow-key hashes (the exact-match offload).
var KernelOpenFlowHash = KernelSpec{
	Name:           "openflow-hash",
	RandomAccesses: 1, // key fetch
	ComputeCycles:  180,
}

// KernelOpenFlowWildcard linearly scans rules; RandomAccesses is set per
// launch via ScaledBy since it grows with the table.
var KernelOpenFlowWildcard = KernelSpec{
	Name:           "openflow-wildcard",
	RandomAccesses: 0.25, // per rule scanned: rules pack 4/cache line sequentially
	ComputeCycles:  8,    // per rule
}

// ScaledBy returns a copy of k with the per-thread costs multiplied by
// n — used for kernels whose work grows with a table dimension.
func (k KernelSpec) ScaledBy(n float64) KernelSpec {
	k.RandomAccesses *= n
	k.ComputeCycles *= n
	return k
}

// KernelIPsec is the AES-128-CTR + HMAC-SHA1 pair (§6.2.4): streaming
// cipher rate with a per-packet serial component.
var KernelIPsec = KernelSpec{
	Name:              "ipsec-crypto",
	ComputeCycles:     200,
	StreamBytesPerSec: model.GPUIPsecBytesPerSec,
	PerThreadNs:       model.GPUIPsecPerPacketNs,
}
