package walltime_test

import (
	"testing"

	"packetshader/internal/analysis/analysistest"
	"packetshader/internal/analysis/walltime"
)

func TestWalltime(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), walltime.Analyzer, "walltime")
}
