package seededrand_test

import (
	"testing"

	"packetshader/internal/analysis/analysistest"
	"packetshader/internal/analysis/seededrand"
)

func TestSeededRand(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), seededrand.Analyzer, "seededrand")
}
