// Package core implements the PacketShader framework of §5: a
// multi-threaded router runtime where worker threads perform packet I/O
// and the pre-/post-shading steps, and one master thread per NUMA node
// owns the node's GPU and runs the shading step. Chunks (batches of
// received packets) flow worker → master input queue → GPU → per-worker
// output queue → worker, with the §5.4 optimizations: chunk pipelining,
// gather/scatter, and concurrent copy & execution, plus the §7
// opportunistic-offloading extension.
package core

import (
	"packetshader/internal/faults"
	"packetshader/internal/hw/gpu"
	"packetshader/internal/hw/nic"
	"packetshader/internal/model"
	"packetshader/internal/packet"
	"packetshader/internal/pktio"
	"packetshader/internal/sim"
)

// Mode selects CPU-only or GPU-accelerated operation (§6.1: CPU-only
// runs four workers per node; CPU+GPU runs three workers plus a master).
type Mode int

// Operating modes.
const (
	ModeCPUOnly Mode = iota
	ModeGPU
)

// FIBUpdateMode selects how an IPv4 forwarding table accepts live
// route updates (§7). The framework itself never reads it — it is
// consumed by the assembly layer (the packetshader facade and
// cmd/pshader) when the application is built.
type FIBUpdateMode int

// FIB update strategies.
const (
	// FIBStatic builds an immutable table; control-plane route commands
	// are rejected at attach time.
	FIBStatic FIBUpdateMode = iota
	// FIBDynamic patches only the DIR-24-8 cells each update covers,
	// in place (incremental update, §7).
	FIBDynamic
	// FIBRebuild rebuilds the whole table per update batch off the data
	// path and swaps it in atomically (double buffering, §7).
	FIBRebuild
)

// Chunk is a batch of packets fetched together (§5.3): the unit of
// worker↔master exchange and of GPU parallelism.
type Chunk struct {
	Bufs []*packet.Buf
	// OutPorts holds the per-packet forwarding decision filled by
	// post-shading (or pre-shading for CPU-only paths); -1 drops.
	OutPorts []int
	// Worker identifies the owning worker (for the scatter step).
	Worker int
	// State carries app-specific batch arrays between the steps. Chunks
	// are recycled through the router's free list with State intact, so
	// an App may reuse the arrays it finds there — but must reinitialize
	// them completely in PreShade (stale values belong to an unrelated
	// earlier chunk).
	State any

	// GPU transfer/work descriptors, filled by PreShade.
	Threads     int
	InBytes     int
	OutBytes    int
	StreamBytes int

	enqueued  sim.Time // when the chunk entered the master input queue
	fetchedAt sim.Time // when the chunk was assembled from the RX rings
}

// PreResult is what an application's pre-shading step reports.
type PreResult struct {
	// CPUCycles consumed on the worker.
	CPUCycles float64
	// Threads, InBytes, OutBytes, StreamBytes describe the GPU work
	// this chunk contributes to a launch.
	Threads     int
	InBytes     int
	OutBytes    int
	StreamBytes int
}

// App is a packet-processing application plugged into the framework via
// the three §5.1 callbacks plus a CPU-only fallback implementation.
// Functional work must really happen (lookups, crypto); the returned
// cycle counts drive the virtual clock.
type App interface {
	Name() string
	// Kernel returns the GPU cost profile for the shading step.
	Kernel() *gpu.KernelSpec
	// PreShade classifies the chunk and builds the GPU input arrays.
	PreShade(c *Chunk) PreResult
	// RunKernel performs the chunk's functional GPU work (called on
	// the master inside a launch).
	RunKernel(c *Chunk)
	// PostShade applies kernel results to packets and fills OutPorts,
	// returning worker cycles consumed.
	PostShade(c *Chunk) float64
	// CPUWork performs the kernel-equivalent work on the CPU (CPU-only
	// mode and opportunistic offload), returning cycles consumed.
	// PostShade still runs afterwards.
	CPUWork(c *Chunk) float64
}

// Config configures a Router.
type Config struct {
	IO   pktio.Config
	Mode Mode

	// ChunkCap caps packets per chunk (§5.3: "the chunk size is not
	// fixed but only capped").
	ChunkCap int
	// GatherMax bounds chunks gathered into one GPU launch (§5.4).
	GatherMax int
	// Pipelining enables chunk pipelining (§5.4); off, a worker waits
	// for each chunk's results before fetching the next.
	Pipelining bool
	// MaxInFlight is the pipelining depth per worker.
	MaxInFlight int
	// Streams > 1 enables concurrent copy and execution (§5.4).
	Streams int
	// OpportunisticOffload processes small chunks on the CPU for low
	// latency under light load (§7).
	OpportunisticOffload bool
	// OppThreshold is the chunk size at or below which opportunistic
	// offload keeps work on the CPU.
	OppThreshold int

	// PacketSize and OfferedGbpsPerPort configure the generator-driven
	// workload applied to every port.
	PacketSize         int
	OfferedGbpsPerPort float64

	// FIBUpdate selects the live route-update strategy for table-driven
	// applications (see FIBUpdateMode; read by the assembly layer, not
	// the framework).
	FIBUpdate FIBUpdateMode

	// Faults, when non-nil, is a fault plan armed (relative to start
	// time) when the router starts.
	Faults *faults.Plan
	// GPUWatchdog is how long a master waits on a launch before
	// declaring the device stalled and falling back to the CPU path.
	// Zero selects the default.
	GPUWatchdog sim.Duration
	// GPUBackoff is the initial hold-out after a detected stall; each
	// further failed probe doubles it up to GPUBackoffMax. Zero selects
	// the defaults.
	GPUBackoff    sim.Duration
	GPUBackoffMax sim.Duration
}

// Recovery-policy defaults (used when the Config fields are zero).
const (
	defaultGPUWatchdog   = 500 * sim.Microsecond
	defaultGPUBackoff    = 1 * sim.Millisecond
	defaultGPUBackoffMax = 8 * sim.Millisecond
)

// DefaultConfig returns the paper's CPU+GPU configuration at full load.
func DefaultConfig() Config {
	return Config{
		IO:                   pktio.DefaultConfig(),
		Mode:                 ModeGPU,
		ChunkCap:             model.MaxChunkSize,
		GatherMax:            model.MaxGatherChunks,
		Pipelining:           true,
		MaxInFlight:          4,
		Streams:              1,
		OpportunisticOffload: false,
		OppThreshold:         32,
		PacketSize:           64,
		OfferedGbpsPerPort:   10,
		GPUWatchdog:          defaultGPUWatchdog,
		GPUBackoff:           defaultGPUBackoff,
		GPUBackoffMax:        defaultGPUBackoffMax,
	}
}

// Stats aggregates framework counters.
type Stats struct {
	ChunksCPU   uint64 // chunks processed on the CPU path
	ChunksGPU   uint64 // chunks through the shading step
	Packets     uint64
	Drops       uint64 // dropped by application decision
	GPULaunches uint64
	// GPUStalls counts launches that hit the master watchdog;
	// FallbackChunks counts chunks the master re-dispatched through the
	// CPU path after a stall (a subset of ChunksCPU).
	GPUStalls      uint64
	FallbackChunks uint64
	// ChunkReuses counts chunks served from the free list rather than
	// allocated — the pooled hot path's effectiveness, and a determinism
	// probe: identical runs must recycle identically.
	ChunkReuses uint64
}

// Router wires the engine, devices, workers and masters together.
type Router struct {
	Env     *sim.Env
	Cfg     Config
	Engine  *pktio.Engine
	App     App
	Devices []*gpu.Device

	workers  []*worker
	masters  []*master
	Stats    Stats
	obs      *routerObs
	injector *faults.Injector

	// chunkFree is the router's Chunk free list (deterministic LIFO —
	// sync.Pool would introduce scheduling-dependent reuse): the hot
	// path recycles Chunk headers together with their Bufs/OutPorts
	// backing arrays and the app's State scratch, so steady-state
	// forwarding allocates nothing per chunk. Safe without locking:
	// exactly one sim process runs at a time.
	chunkFree []*Chunk

	start sim.Time
	// measurement baselines (set by ResetMeasurement to exclude warmup
	// transients from throughput figures).
	baseWire float64
	baseRx   uint64
	src      any
}

// New builds the router topology: per node, CoresPerNode-1 workers and
// one master in GPU mode, CoresPerNode workers in CPU-only mode. RX
// queues of each node's ports are spread across that node's workers
// (NUMA-aware; §4.5) unless the IO config says otherwise.
func New(env *sim.Env, cfg Config, app App) *Router {
	workersPerNode := model.CoresPerNode
	if cfg.Mode == ModeGPU {
		workersPerNode = model.CoresPerNode - 1
	}
	// Hand-built Configs may leave the recovery knobs zero; normalize so
	// the watchdog path is always well-defined.
	if cfg.GPUWatchdog <= 0 {
		cfg.GPUWatchdog = defaultGPUWatchdog
	}
	if cfg.GPUBackoff <= 0 {
		cfg.GPUBackoff = defaultGPUBackoff
	}
	if cfg.GPUBackoffMax < cfg.GPUBackoff {
		cfg.GPUBackoffMax = defaultGPUBackoffMax
		if cfg.GPUBackoffMax < cfg.GPUBackoff {
			cfg.GPUBackoffMax = cfg.GPUBackoff
		}
	}
	cfg.IO.QueuesPerPort = workersPerNode
	if !cfg.IO.NUMAAware {
		// NUMA-blind: queues are served by workers of both nodes.
		cfg.IO.QueuesPerPort = workersPerNode * cfg.IO.Nodes
	}
	r := &Router{Env: env, Cfg: cfg, App: app, Engine: pktio.New(env, cfg.IO)}

	for n := 0; n < cfg.IO.Nodes; n++ {
		var m *master
		if cfg.Mode == ModeGPU {
			dev := gpu.New(env, r.Engine.IOHs[n], n)
			r.Devices = append(r.Devices, dev)
			m = &master{
				router: r, node: n, dev: dev,
				inQ:       sim.NewQueue[*Chunk](env, model.InputQueueDepth),
				tuneQ:     newTuneQueue(env),
				gatherMax: cfg.GatherMax,
			}
			r.masters = append(r.masters, m)
		}
		for wi := 0; wi < workersPerNode; wi++ {
			w := &worker{
				router:   r,
				id:       n*workersPerNode + wi,
				node:     n,
				master:   m,
				outQ:     sim.NewQueue[*Chunk](env, model.OutputQueueDepth),
				ctrlQ:    sim.NewQueue[gpuStatus](env, 0),
				tuneQ:    newTuneQueue(env),
				txBufs:   make([][]*packet.Buf, len(r.Engine.Ports)),
				chunkCap: cfg.ChunkCap,
				opp:      cfg.OpportunisticOffload,
			}
			r.workers = append(r.workers, w)
		}
	}
	r.bindQueues(workersPerNode)
	r.obs = newRouterObs(len(r.workers), cfg.IO.Nodes)
	return r
}

// bindQueues assigns each (port, queue) pair to exactly one worker
// (Figure 8b: virtual interfaces are not shared across cores).
func (r *Router) bindQueues(workersPerNode int) {
	for _, port := range r.Engine.Ports {
		for qi := range port.Rx {
			var w *worker
			if r.Cfg.IO.NUMAAware {
				// Queue qi of a node-N port goes to node-N worker qi.
				w = r.workerAt(port.Node, qi%workersPerNode)
			} else {
				// Blind: round-robin across all workers regardless of
				// node.
				w = r.workers[qi%len(r.workers)]
			}
			iface := r.Engine.OpenIface(port.ID, qi, w.node)
			w.ifaces = append(w.ifaces, iface)
		}
	}
}

func (r *Router) workerAt(node, idx int) *worker {
	perNode := len(r.workers) / r.Cfg.IO.Nodes
	return r.workers[node*perNode+idx]
}

// SetSource configures the offered load on every RX queue: each port's
// line share is split evenly across its RSS queues.
func (r *Router) SetSource(src nic.FrameSource) {
	r.src = src
	pps := r.Cfg.OfferedGbpsPerPort * 1e9 /
		(float64(model.WireBytes(r.Cfg.PacketSize)) * 8)
	for _, port := range r.Engine.Ports {
		perQueue := pps / float64(len(port.Rx))
		for _, q := range port.Rx {
			q.SetOffered(perQueue, r.Cfg.PacketSize, src)
		}
	}
}

// Source returns the frame source installed by SetSource (nil before).
func (r *Router) Source() any { return r.src }

// Start launches all worker and master processes and arms the fault
// plan, if the config carries one, relative to the current time.
func (r *Router) Start() {
	r.start = r.Env.Now()
	if r.Cfg.Faults.Len() > 0 {
		r.injector = faults.NewInjector(r.Env, r.Cfg.Faults, r)
		r.injector.SetTrace(r.obs.tr, r.obs.faultTrack)
		r.injector.Arm()
	}
	for _, m := range r.masters {
		m := m
		r.Env.Go("master", func(p *sim.Proc) { m.run(p) })
	}
	for _, w := range r.workers {
		w := w
		r.Env.Go("worker", func(p *sim.Proc) { w.run(p) })
	}
}

// ResetMeasurement restarts the measurement window at the current
// virtual time, discarding warmup transients (ring fill, pipeline
// priming) from the reported throughput.
func (r *Router) ResetMeasurement() {
	r.start = r.Env.Now()
	r.baseWire = r.Engine.DeliveredWire()
	rx, _, _, _ := r.Engine.AggregateStats()
	r.baseRx = rx
}

// DeliveredGbps reports aggregate forwarded throughput over the current
// measurement window.
func (r *Router) DeliveredGbps() float64 {
	elapsed := sim.Duration(r.Env.Now() - r.start).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return (r.Engine.DeliveredWire() - r.baseWire) / elapsed * 10e9 / 1e9
}

// getChunk returns a recycled Chunk (empty Bufs/OutPorts, previous
// app State kept as scratch for the app to reuse) or a fresh one.
func (r *Router) getChunk() *Chunk {
	if n := len(r.chunkFree); n > 0 {
		c := r.chunkFree[n-1]
		r.chunkFree[n-1] = nil
		r.chunkFree = r.chunkFree[:n-1]
		r.Stats.ChunkReuses++
		return c
	}
	return &Chunk{}
}

// putChunk recycles c after its packets have been transmitted or
// dropped. Bufs and OutPorts are truncated (their backing arrays are the
// point of the recycling); State is deliberately kept so the app can
// reuse its per-chunk scratch arrays — every App must fully reinitialize
// State in PreShade.
func (r *Router) putChunk(c *Chunk) {
	c.Bufs = c.Bufs[:0]
	c.OutPorts = c.OutPorts[:0]
	c.Worker = 0
	c.Threads, c.InBytes, c.OutBytes, c.StreamBytes = 0, 0, 0, 0
	c.enqueued, c.fetchedAt = 0, 0
	r.chunkFree = append(r.chunkFree, c)
}

// InputGbps reports the throughput metric the IPsec experiment uses
// (§6.2.4: input bytes, since ESP grows packets): received wire Gbps of
// packets that were *not* dropped at the RX ring.
func (r *Router) InputGbps() float64 {
	elapsed := sim.Duration(r.Env.Now() - r.start).Seconds()
	if elapsed <= 0 {
		return 0
	}
	rx, _, _, _ := r.Engine.AggregateStats()
	return float64(rx-r.baseRx) * float64(model.WireBytes(r.Cfg.PacketSize)) * 8 / elapsed / 1e9
}
