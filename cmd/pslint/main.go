// Command pslint is the repository's determinism linter: a multichecker
// that runs the internal/analysis suite over the given packages and
// fails if any analyzer reports a diagnostic.
//
// Usage:
//
//	go run ./cmd/pslint ./...
//	go run ./cmd/pslint -list
//	go run ./cmd/pslint -only walltime,mapiter ./internal/experiments
//
// The suite enforces the contract that makes every reproduced paper
// number trustworthy: virtual time only (walltime), seeded RNG only
// (seededrand), order-stable iteration in scheduling/output paths
// (mapiter), non-blocking scheduler callbacks (schedblock), explicit
// time units (picounits), and no package-state writes from parallel
// experiment jobs (sharedfixture). Findings can be suppressed line-wise
// with `//pslint:ignore <analyzer> <reason>`.
//
// Only non-test sources are analyzed: _test.go files may use wall-clock
// deadlines and ad-hoc randomness for test orchestration.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"packetshader/internal/analysis"
	"packetshader/internal/analysis/load"
	"packetshader/internal/analysis/mapiter"
	"packetshader/internal/analysis/picounits"
	"packetshader/internal/analysis/schedblock"
	"packetshader/internal/analysis/seededrand"
	"packetshader/internal/analysis/sharedfixture"
	"packetshader/internal/analysis/walltime"
)

var suite = []*analysis.Analyzer{
	walltime.Analyzer,
	seededrand.Analyzer,
	mapiter.Analyzer,
	schedblock.Analyzer,
	picounits.Analyzer,
	sharedfixture.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	only := flag.String("only", "", "comma-separated subset of analyzers to run")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: pslint [flags] [packages]\n\n")
		fmt.Fprintf(os.Stderr, "Runs the packetshader determinism linters over the given package\npatterns (default ./...).\n\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range suite {
			scope := "all packages"
			if a.InternalOnly {
				scope = "internal/ only"
			}
			fmt.Printf("%-12s %-16s %s\n", a.Name, "("+scope+")", a.Doc)
		}
		return
	}

	analyzers := suite
	if *only != "" {
		want := map[string]bool{}
		for _, n := range strings.Split(*only, ",") {
			want[strings.TrimSpace(n)] = true
		}
		analyzers = nil
		for _, a := range suite {
			if want[a.Name] {
				analyzers = append(analyzers, a)
				delete(want, a.Name)
			}
		}
		if len(want) > 0 {
			unknown := make([]string, 0, len(want))
			for n := range want {
				unknown = append(unknown, n)
			}
			sort.Strings(unknown)
			fmt.Fprintf(os.Stderr, "pslint: unknown analyzer(s) %s (see -list)\n", strings.Join(unknown, ", "))
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader := load.NewLoader(".")
	targets, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pslint: %v\n", err)
		os.Exit(2)
	}

	var diags []diagAt
	for _, pkg := range targets {
		for _, a := range analyzers {
			if a.InternalOnly && !strings.Contains(pkg.PkgPath+"/", "/internal/") {
				continue
			}
			pass := analysis.NewPass(a, loader.Fset, pkg.Syntax, pkg.Types, pkg.Info)
			if err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "pslint: %s on %s: %v\n", a.Name, pkg.PkgPath, err)
				os.Exit(2)
			}
			for _, d := range pass.Diagnostics {
				pos := loader.Fset.Position(d.Pos)
				diags = append(diags, diagAt{pos.Filename, pos.Line, pos.Column, d})
			}
		}
	}

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.file != b.file {
			return a.file < b.file
		}
		if a.line != b.line {
			return a.line < b.line
		}
		if a.col != b.col {
			return a.col < b.col
		}
		return a.d.Analyzer < b.d.Analyzer
	})
	for _, d := range diags {
		fmt.Printf("%s:%d:%d: %s [%s]\n", d.file, d.line, d.col, d.d.Message, d.d.Analyzer)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "pslint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

type diagAt struct {
	file      string
	line, col int
	d         analysis.Diagnostic
}
