package core

import (
	"packetshader/internal/hw/gpu"
	"packetshader/internal/model"
	"packetshader/internal/obs"
	"packetshader/internal/sim"
)

// master is the per-node GPU proxy thread (§5.1): workers never touch
// the device; the master gathers their chunks, drives the GPU, and
// scatters results back. The master deliberately does not read the
// chunk payloads (§5.3: avoiding cache migration) — it only initiates
// DMA, which the gpu.Device models.
//
// The master is also the recovery point for GPU faults: a launch that
// hits the watchdog marks the device held-out, the stalled chunks are
// re-dispatched through the application's CPU path, and workers stop
// offloading until an exponential backoff expires. The first offload
// after that is the probe; it either succeeds (ending the outage) or
// stalls again and doubles the backoff.
type master struct {
	router *Router
	node   int
	dev    *gpu.Device
	inQ    *sim.Queue[*Chunk]
	tuneQ  *sim.Queue[tuneMsg] // live knob changes posted by the control plane

	// gatherMax is the master's private copy of the one runtime-tunable
	// knob it consults per launch, seeded from the Config and updated
	// solely by draining tuneQ (see tuning.go).
	gatherMax int

	// gpuOut marks the device held out after a watchdog stall; retryAt
	// is when the next probe may be offloaded; backoff is the current
	// hold-out length (doubling per failed probe up to the cap).
	gpuOut  bool
	retryAt sim.Time
	backoff sim.Duration
	// outSince is when the current outage was detected; degraded
	// accumulates closed outage intervals.
	outSince sim.Time
	degraded sim.Duration

	// gather is the reusable §5.4 gather buffer: the set of chunks in
	// the current launch. Reset (not reallocated) every round.
	gather []*Chunk
}

// gpuStatus is the hold-out state the master posts to its workers'
// control queues on every transition (stall and recovery). Workers keep
// their own copy, so the master↔worker hand-off flows through an
// explicit sim.Queue — a scheduler-visible lookahead boundary — instead
// of workers reading the master's fields directly.
type gpuStatus struct {
	out     bool
	retryAt sim.Time
}

// heldOut reports whether the master itself should bypass the GPU right
// now (the workers decide from their queue-fed copy; see
// worker.gpuHeldOut).
func (m *master) heldOut(now sim.Time) bool { return m.gpuOut && now < m.retryAt }

// publishStatus posts the current hold-out state to every worker on this
// master's node, in worker-index order. The control queues are unbounded
// so TryPut cannot fail.
func (m *master) publishStatus() {
	st := gpuStatus{out: m.gpuOut, retryAt: m.retryAt}
	for _, w := range m.router.workers {
		if w.node == m.node {
			w.ctrlQ.TryPut(st)
		}
	}
}

func (m *master) run(p *sim.Proc) {
	r := m.router
	o := r.obs
	track := o.masterTracks[m.node]
	// fn is hoisted out of the loop (one closure for the master's
	// lifetime, not one per launch); it runs the kernels over the
	// current gather set.
	fn := func() {
		for _, c := range m.gather {
			r.App.RunKernel(c)
		}
	}
	for {
		first := m.inQ.Get(p)
		m.drainTuning()
		m.gather = append(m.gather[:0], first)
		if m.gatherMax > 1 {
			// Gather (§5.4): take whatever else is already queued.
			m.gather = m.inQ.DrainAppend(m.gather, m.gatherMax-1)
		}
		chunks := m.gather
		gathered := p.Now()
		var threads, inB, outB, strB int
		for _, c := range chunks {
			o.gpuWait.ObserveDuration(sim.Duration(gathered - c.enqueued))
			threads += c.Threads
			inB += c.InBytes
			outB += c.OutBytes
			strB += c.StreamBytes
		}
		o.launchThreads.Observe(int64(threads))
		spec := r.App.Kernel()
		if m.heldOut(p.Now()) {
			// Chunks offloaded just before the stall was detected (or
			// raced past the workers' held-out check): re-dispatch them
			// on the CPU directly — burning a watchdog per backlog
			// batch would double the backoff without probing anything.
			m.fallback(p, track, chunks)
		} else if m.dev.LaunchChecked(p, spec, r.Cfg.GPUWatchdog, r.Cfg.Streams,
			threads, inB, outB, strB, fn) {
			o.tr.SpanUntil(track, "gpu-launch", gathered, p.Now(),
				obs.Arg{Key: "threads", Val: int64(threads)},
				obs.Arg{Key: "chunks", Val: int64(len(chunks))})
			r.Stats.GPULaunches++
			r.Stats.ChunksGPU += uint64(len(chunks))
			if m.gpuOut {
				m.recoverGPU(p, track)
			}
		} else {
			m.stall(p, track)
			m.fallback(p, track, chunks)
		}
		// Scatter (§5.4): results go to each chunk's own worker output
		// queue, avoiding 1-to-N sharing.
		for _, c := range chunks {
			m.router.workers[c.Worker].outQ.Put(p, c)
		}
	}
}

// stall records a watchdog-detected launch failure and schedules the
// next probe with exponential backoff on the virtual clock.
func (m *master) stall(p *sim.Proc, track obs.TrackID) {
	r := m.router
	r.Stats.GPUStalls++
	r.obs.tr.Instant(track, "gpu-stall", p.Now(),
		obs.Arg{Key: "node", Val: int64(m.node)})
	if !m.gpuOut {
		m.gpuOut = true
		m.outSince = p.Now()
		m.backoff = r.Cfg.GPUBackoff
	} else if m.backoff < r.Cfg.GPUBackoffMax {
		m.backoff *= 2
		if m.backoff > r.Cfg.GPUBackoffMax {
			m.backoff = r.Cfg.GPUBackoffMax
		}
	}
	m.retryAt = p.Now() + sim.Time(m.backoff)
	m.publishStatus()
}

// recoverGPU closes the outage after a successful probe launch.
func (m *master) recoverGPU(p *sim.Proc, track obs.TrackID) {
	now := p.Now()
	m.router.obs.tr.SpanUntil(track, "gpu-heldout", m.outSince, now,
		obs.Arg{Key: "node", Val: int64(m.node)})
	m.degraded += sim.Duration(now - m.outSince)
	m.gpuOut = false
	m.retryAt = 0
	m.backoff = 0
	m.publishStatus()
}

// fallback re-dispatches stalled chunks through the application's CPU
// path on the master's own core — the in-flight work must not be lost,
// and the workers' cores are already busy with the bypass traffic.
// PostShade still runs on the owning worker after the scatter.
func (m *master) fallback(p *sim.Proc, track obs.TrackID, chunks []*Chunk) {
	r := m.router
	o := r.obs
	for _, c := range chunks {
		start := p.Now()
		p.Sleep(simCycles(r.App.CPUWork(c)))
		o.tr.SpanUntil(track, "cpu-fallback", start, p.Now(),
			obs.Arg{Key: "packets", Val: int64(len(c.Bufs))})
		o.fallbackChunk.Observe(int64(len(c.Bufs)))
		r.Stats.FallbackChunks++
		r.Stats.ChunksCPU++
	}
}

func simCycles(c float64) sim.Duration { return model.Cycles(c) }
