package nic

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"packetshader/internal/hw/pcie"
	"packetshader/internal/model"
	"packetshader/internal/packet"
	"packetshader/internal/sim"
)

// TestToeplitzRSSSpecVectors checks the hash against the verification
// suite published with Microsoft's RSS specification.
func TestToeplitzRSSSpecVectors(t *testing.T) {
	key := DefaultRSSKey[:]
	ip := func(a, b, c, d byte) uint32 {
		return uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d)
	}
	cases := []struct {
		srcIP, dstIP     uint32
		srcPort, dstPort uint16
		want             uint32
	}{
		{ip(66, 9, 149, 187), ip(161, 142, 100, 80), 2794, 1766, 0x51ccc178},
		{ip(199, 92, 111, 2), ip(65, 69, 140, 83), 14230, 4739, 0xc626b0ea},
		{ip(24, 19, 198, 95), ip(12, 22, 207, 184), 12898, 38024, 0x5c2b394a},
		{ip(38, 27, 205, 30), ip(209, 142, 163, 6), 48228, 2217, 0xafc7327f},
		{ip(153, 39, 163, 191), ip(202, 188, 127, 2), 44251, 1303, 0x10e828a2},
	}
	for i, c := range cases {
		got := RSSHashIPv4(key, c.srcIP, c.dstIP, c.srcPort, c.dstPort)
		if got != c.want {
			t.Errorf("vector %d: hash = %#08x, want %#08x", i, got, c.want)
		}
	}
}

func TestToeplitzDistribution(t *testing.T) {
	key := DefaultRSSKey[:]
	const queues = 8
	var counts [queues]int
	const n = 8192
	for i := 0; i < n; i++ {
		h := RSSHashIPv4(key, uint32(i)*2654435761, uint32(i)^0xdeadbeef,
			uint16(i*7), uint16(i*13))
		counts[h%queues]++
	}
	for q, c := range counts {
		if c < n/queues/2 || c > n/queues*2 {
			t.Errorf("queue %d got %d of %d (poor spread)", q, c, n)
		}
	}
}

// TestToeplitzLUTMatchesBitSerial is the differential contract of the
// table-driven hash: for random keys, input lengths and tuples, the LUT
// path must equal the bit-serial reference bit for bit.
func TestToeplitzLUTMatchesBitSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 64; trial++ {
		key := make([]byte, 40)
		rng.Read(key)
		for _, n := range []int{1, 4, 12, 16, 36} {
			lut := NewToeplitzLUT(key, n)
			in := make([]byte, n)
			for round := 0; round < 32; round++ {
				rng.Read(in)
				if got, want := lut.Hash(in), ToeplitzHash(key, in); got != want {
					t.Fatalf("key %x input %x: LUT %#08x, bit-serial %#08x",
						key, in, got, want)
				}
			}
		}
	}
}

// TestRSSHashIPv4LUTMatchesBitSerial pins the per-packet fast path:
// RSSHashIPv4 with the default key (LUT) against the bit-serial
// reference over random tuples, plus a non-default key exercising the
// fallback.
func TestRSSHashIPv4LUTMatchesBitSerial(t *testing.T) {
	ref := func(key []byte, srcIP, dstIP uint32, sp, dp uint16) uint32 {
		var in [12]byte
		binary.BigEndian.PutUint32(in[0:4], srcIP)
		binary.BigEndian.PutUint32(in[4:8], dstIP)
		binary.BigEndian.PutUint16(in[8:10], sp)
		binary.BigEndian.PutUint16(in[10:12], dp)
		return ToeplitzHash(key, in[:])
	}
	rng := rand.New(rand.NewSource(7))
	altKey := make([]byte, 40)
	rng.Read(altKey)
	for i := 0; i < 4096; i++ {
		srcIP, dstIP := rng.Uint32(), rng.Uint32()
		sp, dp := uint16(rng.Uint32()), uint16(rng.Uint32())
		if got, want := RSSHashIPv4(DefaultRSSKey[:], srcIP, dstIP, sp, dp),
			ref(DefaultRSSKey[:], srcIP, dstIP, sp, dp); got != want {
			t.Fatalf("default key tuple %d: got %#08x, want %#08x", i, got, want)
		}
		if got, want := RSSHashIPv4(altKey, srcIP, dstIP, sp, dp),
			ref(altKey, srcIP, dstIP, sp, dp); got != want {
			t.Fatalf("alt key tuple %d: got %#08x, want %#08x", i, got, want)
		}
	}
	// Edge tuples: all-zero and all-ones inputs.
	for _, v := range []uint32{0, 0xffffffff} {
		p := uint16(v)
		if got, want := RSSHashIPv4(DefaultRSSKey[:], v, v, p, p),
			ref(DefaultRSSKey[:], v, v, p, p); got != want {
			t.Fatalf("edge tuple %#x: got %#08x, want %#08x", v, got, want)
		}
	}
}

func newQueue(env *sim.Env) (*RxQueue, *pcie.IOH) {
	ioh := pcie.NewIOH(env, 0)
	pool := packet.NewBufPool(2048)
	q := NewRxQueue(env, 0, 0, model.RxRingSize, pool, []*pcie.IOH{ioh})
	return q, ioh
}

type countingSource struct{ fills int }

func (s *countingSource) Fill(b *packet.Buf, port, queue int, seq uint64) {
	s.fills++
	b.Hash = uint32(seq)
	b.Data[0] = byte(seq)
}

func TestRxQueueFluidArrival(t *testing.T) {
	env := sim.NewEnv()
	q, _ := newQueue(env)
	src := &countingSource{}
	q.SetOffered(1e6, 64, src) // 1 Mpps
	var got []*packet.Buf
	env.Go("reader", func(p *sim.Proc) {
		p.Sleep(100 * sim.Microsecond) // 100 packets accumulate
		got = q.Fetch(p, 1000, nil)
	})
	env.Run(0)
	if len(got) < 98 || len(got) > 102 {
		t.Fatalf("fetched %d packets after 100us at 1Mpps, want ≈100", len(got))
	}
	if src.fills != len(got) {
		t.Errorf("source filled %d, fetched %d", src.fills, len(got))
	}
	// Sequence numbers must be consecutive and metadata set.
	for i, b := range got {
		if b.Hash != uint32(i) {
			t.Fatalf("packet %d has seq %d", i, b.Hash)
		}
		if b.Size() != 64 || b.Port != 0 {
			t.Fatalf("bad buf metadata: %+v", b)
		}
	}
	// Timestamps nondecreasing, all ≤ fetch time.
	for i := 1; i < len(got); i++ {
		if got[i].GenAt < got[i-1].GenAt {
			t.Fatal("arrival timestamps not monotonic")
		}
	}
}

func TestRxQueueRingOverflowDrops(t *testing.T) {
	env := sim.NewEnv()
	q, _ := newQueue(env)
	q.SetOffered(10e6, 64, nil)
	env.Go("idle", func(p *sim.Proc) {
		p.Sleep(1 * sim.Millisecond) // 10k arrivals into a 2048 ring
		if q.Available() != model.RxRingSize {
			t.Errorf("available = %d, want full ring", q.Available())
		}
	})
	env.Run(0)
	if q.Stats.Dropped < 7000 {
		t.Errorf("dropped = %d, want ≈8k", q.Stats.Dropped)
	}
}

func TestRxFetchChargesIOH(t *testing.T) {
	env := sim.NewEnv()
	q, ioh := newQueue(env)
	q.SetOffered(14.2e6, 64, nil)
	env.Go("reader", func(p *sim.Proc) {
		p.Sleep(50 * sim.Microsecond)
		q.Fetch(p, 512, nil)
	})
	env.Run(0)
	if ioh.UpBusy() == 0 {
		t.Error("RX DMA did not occupy the IOH")
	}
}

func TestRxFetchEmptyReturnsNil(t *testing.T) {
	env := sim.NewEnv()
	q, _ := newQueue(env)
	env.Go("reader", func(p *sim.Proc) {
		if got := q.Fetch(p, 64, nil); got != nil {
			t.Errorf("fetched %d from idle queue", len(got))
		}
	})
	env.Run(0)
}

func TestWaitForPacketsInterruptModeration(t *testing.T) {
	env := sim.NewEnv()
	q, _ := newQueue(env)
	q.SetOffered(1e5, 64, nil) // 10us between packets
	var woke sim.Time
	env.Go("reader", func(p *sim.Proc) {
		if !q.WaitForPackets(p) {
			t.Error("WaitForPackets returned false with offered load")
		}
		woke = p.Now()
	})
	env.Run(0)
	// Next arrival at 10us + 30us moderation.
	want := sim.Time(10*sim.Microsecond) + sim.Time(q.Moderation)
	if woke < want*9/10 || woke > want*11/10 {
		t.Errorf("woke at %v, want ≈%v (arrival + moderation)", woke, want)
	}
	if q.Available() < 1 {
		t.Error("woke with no packet available")
	}
}

func TestWaitForPacketsNoLoad(t *testing.T) {
	env := sim.NewEnv()
	q, _ := newQueue(env)
	env.Go("reader", func(p *sim.Proc) {
		if q.WaitForPackets(p) {
			t.Error("WaitForPackets returned true on a dead queue")
		}
	})
	env.Run(0)
}

func TestTxPortLineRate(t *testing.T) {
	env := sim.NewEnv()
	ioh := pcie.NewIOH(env, 0)
	tx := NewTxPort(env, 0, model.TxRingSize, []*pcie.IOH{ioh})
	pool := packet.NewBufPool(2048)
	// Saturate: offer 2 Mpps of 1514B (≈24.6 Gbps offered at wire) and
	// count completions over 10ms — must clamp near 10 Gbps.
	env.Go("sender", func(p *sim.Proc) {
		for p.Now() < sim.Time(10*sim.Millisecond) {
			var bufs []*packet.Buf
			for i := 0; i < 64; i++ {
				bufs = append(bufs, pool.Get(1514))
			}
			tx.Transmit(bufs)
			p.Sleep(32 * sim.Microsecond) // 2 Mpps offered
		}
	})
	env.Run(sim.Time(10 * sim.Millisecond))
	gbps := tx.Delivered().Seconds() / 10e-3 * 10 // delivered line fraction × 10G
	if gbps < 9.5 || gbps > 10.1 {
		t.Errorf("TX throughput = %.2f Gbps, want ≈10 (line rate)", gbps)
	}
	if tx.Stats.Dropped == 0 {
		t.Error("overloaded TX ring never dropped")
	}
}

func TestTxOnCompleteObservesPackets(t *testing.T) {
	env := sim.NewEnv()
	ioh := pcie.NewIOH(env, 0)
	tx := NewTxPort(env, 0, model.TxRingSize, []*pcie.IOH{ioh})
	pool := packet.NewBufPool(2048)
	var seen []sim.Time
	tx.OnComplete = func(b *packet.Buf, at sim.Time) { seen = append(seen, at) }
	env.Go("sender", func(p *sim.Proc) {
		tx.Transmit([]*packet.Buf{pool.Get(64), pool.Get(64)})
	})
	env.Run(0)
	if len(seen) != 2 {
		t.Fatalf("observed %d completions", len(seen))
	}
	// Completions spaced by at least one wire time.
	if sim.Duration(seen[1]-seen[0]) < model.WireTime(64) {
		t.Error("completions not serialized at wire rate")
	}
	if pool.FreeCount() != 2 {
		t.Errorf("bufs not released: free = %d", pool.FreeCount())
	}
}

func TestNodeCrossingDMAChargesBothIOHs(t *testing.T) {
	env := sim.NewEnv()
	ioh0 := pcie.NewIOH(env, 0)
	ioh1 := pcie.NewIOH(env, 1)
	pool := packet.NewBufPool(2048)
	q := NewRxQueue(env, 0, 0, model.RxRingSize, pool, []*pcie.IOH{ioh0, ioh1})
	q.SetOffered(1e6, 64, nil)
	env.Go("reader", func(p *sim.Proc) {
		p.Sleep(100 * sim.Microsecond)
		q.Fetch(p, 128, nil)
	})
	env.Run(0)
	if ioh0.UpBusy() == 0 || ioh1.UpBusy() == 0 {
		t.Error("node-crossing DMA must occupy both IOHs (§4.5)")
	}
	if math.Abs(float64(ioh0.UpBusy()-ioh1.UpBusy())) > float64(sim.Nanosecond) {
		t.Error("both hubs should carry the same crossing traffic")
	}
}

// TestRateChangeMidRun: the fluid queue must account arrivals correctly
// across SetOffered transitions (failure injection: bursty sources).
func TestRateChangeMidRun(t *testing.T) {
	env := sim.NewEnv()
	q, _ := newQueue(env)
	q.SetOffered(1e6, 64, nil) // 1 Mpps
	var first, second []*packet.Buf
	env.Go("driver", func(p *sim.Proc) {
		p.Sleep(100 * sim.Microsecond) // 100 packets at 1 Mpps
		first = q.Fetch(p, 1000, nil)
		q.SetOffered(10e6, 64, nil)    // burst to 10 Mpps
		p.Sleep(100 * sim.Microsecond) // 1000 packets
		second = q.Fetch(p, 2000, nil)
		q.SetOffered(0, 64, nil) // source pauses
		p.Sleep(1 * sim.Millisecond)
		if got := q.Fetch(p, 100, nil); len(got) > 1 {
			t.Errorf("paused source produced %d packets", len(got))
		}
	})
	env.Run(0)
	if len(first) < 98 || len(first) > 102 {
		t.Errorf("first window fetched %d, want ≈100", len(first))
	}
	if len(second) < 990 || len(second) > 1010 {
		t.Errorf("second window fetched %d, want ≈1000", len(second))
	}
}

// TestFluidConservationProperty: arrivals = fetched + dropped + waiting
// for any rate/fetch interleaving.
func TestFluidConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		env := sim.NewEnv()
		q, _ := newQueue(env)
		var fetched uint64
		env.Go("driver", func(p *sim.Proc) {
			for step := 0; step < 30; step++ {
				q.SetOffered(float64(rng.Intn(20))*1e6, 64, nil)
				p.Sleep(sim.Duration(rng.Intn(200)) * sim.Microsecond)
				got := q.Fetch(p, rng.Intn(512), nil)
				fetched += uint64(len(got))
				for _, b := range got {
					b.Release()
				}
			}
		})
		env.Run(0)
		waiting := uint64(q.Available())
		// The fluid model accumulates fractional packets; allow one
		// packet of rounding slop per rate change.
		total := fetched + q.Stats.Dropped + waiting
		arrivedLow := q.Stats.Packets + q.Stats.Dropped // fetched stats == fetched
		_ = arrivedLow
		return total >= fetched && q.Stats.Packets == fetched
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestRxQueueFractionalDropAccounting is the regression test for the
// drop-accounting bug: when update() runs so often that each step
// overflows the ring by less than one packet, truncating the overflow
// undercounts drops (to zero, in the limit). The fractional remainder
// must accumulate so that a long overloaded run matches the closed-form
// expectation drops = offered - capacity.
func TestRxQueueFractionalDropAccounting(t *testing.T) {
	env := sim.NewEnv()
	q, _ := newQueue(env)
	const rate = 1.5e6 // 1.5 Mpps into a full ring
	q.SetOffered(rate, 64, nil)
	const step = 100 * sim.Nanosecond // 0.00015 packets per step
	const window = 20 * sim.Millisecond
	env.Go("poller", func(p *sim.Proc) {
		for p.Now() < sim.Time(window) {
			q.Available() // forces update() at every step
			p.Sleep(step)
		}
	})
	env.Run(0)
	offered := rate * sim.Duration(window).Seconds() // 30000 packets
	want := uint64(offered) - uint64(model.RxRingSize)
	// Allow one packet of slop for the fractional in-ring remainder.
	if q.Stats.Dropped < want-1 || q.Stats.Dropped > want+1 {
		t.Errorf("dropped = %d, want %d (offered %0.f - ring %d)",
			q.Stats.Dropped, want, offered, model.RxRingSize)
	}
}

// TestRxQueueDropConservationUnderFetch drives an overloaded queue with
// a consumer that fetches less than the offered rate and checks exact
// conservation: offered = fetched + dropped + waiting (±1 fractional).
func TestRxQueueDropConservationUnderFetch(t *testing.T) {
	env := sim.NewEnv()
	q, _ := newQueue(env)
	const rate = 3.7e6
	q.SetOffered(rate, 64, nil)
	var fetched uint64
	env.Go("reader", func(p *sim.Proc) {
		for p.Now() < sim.Time(10*sim.Millisecond) {
			got := q.Fetch(p, 37, nil) // ~2.3 Mpps consumed: overload
			fetched += uint64(len(got))
			for _, b := range got {
				b.Release()
			}
			p.Sleep(16 * sim.Microsecond)
		}
	})
	end := env.Run(0)
	q.Available() // final update at the end of the run
	offered := rate * sim.Duration(end).Seconds()
	got := float64(fetched + q.Stats.Dropped + uint64(q.Available()))
	if diff := offered - got; diff < 0 || diff > 2 {
		t.Errorf("conservation violated: offered %.2f, accounted %.0f (fetched %d dropped %d waiting %d)",
			offered, got, fetched, q.Stats.Dropped, q.Available())
	}
	if q.Stats.Dropped == 0 {
		t.Error("overloaded queue recorded no drops")
	}
}

func TestRxQueueCarrierDownStopsArrivals(t *testing.T) {
	env := sim.NewEnv()
	q, _ := newQueue(env)
	q.SetOffered(1e6, 64, nil) // 1 Mpps
	env.At(sim.Time(100*sim.Microsecond), func() { q.SetCarrier(false) })
	env.At(sim.Time(300*sim.Microsecond), func() { q.SetCarrier(true) })
	var avail int
	env.Go("reader", func(p *sim.Proc) {
		p.Sleep(400 * sim.Microsecond)
		avail = q.Available()
	})
	env.Run(0)
	// 100us up (≈100 pkts) + 200us down (0) + 100us up (≈100 pkts).
	if avail < 198 || avail > 202 {
		t.Errorf("available = %d after carrier gap, want ≈200", avail)
	}
	if q.Stats.Dropped != 0 {
		t.Errorf("carrier-down counted %d drops; the peer stops sending", q.Stats.Dropped)
	}
}

func TestRxQueueCarrierDownKeepsReaderAlive(t *testing.T) {
	env := sim.NewEnv()
	q, _ := newQueue(env)
	q.SetOffered(1e6, 64, nil)
	q.SetCarrier(false)
	d, ok := q.TimeToPacket()
	if !ok {
		t.Fatal("TimeToPacket reported dead queue during carrier-down; readers would retire")
	}
	if d != q.Moderation {
		t.Errorf("poll hint = %v, want moderation %v", d, q.Moderation)
	}
	var woke bool
	env.Go("reader", func(p *sim.Proc) {
		woke = q.WaitForPackets(p)
	})
	env.Run(0)
	if !woke {
		t.Error("WaitForPackets returned false during carrier-down")
	}
}

func TestRxQueueDropBurstCountsDrops(t *testing.T) {
	env := sim.NewEnv()
	q, _ := newQueue(env)
	q.SetOffered(1e6, 64, nil)
	q.DropBurst(200 * sim.Microsecond)
	var avail int
	env.Go("reader", func(p *sim.Proc) {
		p.Sleep(300 * sim.Microsecond)
		avail = q.Available()
	})
	env.Run(0)
	// 200us of arrivals dropped, the next 100us accumulates.
	if q.Stats.Dropped < 198 || q.Stats.Dropped > 202 {
		t.Errorf("dropped = %d in a 200us burst at 1Mpps, want ≈200", q.Stats.Dropped)
	}
	if avail < 98 || avail > 102 {
		t.Errorf("available = %d after burst, want ≈100", avail)
	}
}

func TestTxPortCarrierDownDropsWithoutBlocking(t *testing.T) {
	env := sim.NewEnv()
	ioh := pcie.NewIOH(env, 0)
	tx := NewTxPort(env, 0, 16, []*pcie.IOH{ioh})
	pool := packet.NewBufPool(2048)
	mkBufs := func(n int) []*packet.Buf {
		var bufs []*packet.Buf
		for i := 0; i < n; i++ {
			bufs = append(bufs, pool.Get(64))
		}
		return bufs
	}
	tx.SetCarrier(false)
	var blockedFor sim.Duration
	env.Go("sender", func(p *sim.Proc) {
		start := p.Now()
		// Far more than the 16-slot ring: must drop, not block.
		tx.TransmitBlocking(p, mkBufs(64))
		blockedFor = sim.Duration(p.Now() - start)
	})
	env.Run(0)
	if blockedFor != 0 {
		t.Errorf("TransmitBlocking blocked %v on a carrier-down port", blockedFor)
	}
	if tx.Stats.Dropped != 64 || tx.CarrierDrops != 64 {
		t.Errorf("drops = %d carrier = %d, want 64/64", tx.Stats.Dropped, tx.CarrierDrops)
	}
	if tx.Stats.Packets != 0 {
		t.Errorf("transmitted %d packets with no carrier", tx.Stats.Packets)
	}
	tx.SetCarrier(true)
	env.Go("sender2", func(p *sim.Proc) { tx.TransmitBlocking(p, mkBufs(8)) })
	env.Run(0)
	if tx.Stats.Packets != 8 {
		t.Errorf("after carrier-up transmitted %d, want 8", tx.Stats.Packets)
	}
	if tx.CarrierDrops != 64 {
		t.Errorf("carrier drops moved to %d after restore", tx.CarrierDrops)
	}
}
