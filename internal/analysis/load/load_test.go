package load

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSmokeLoadAll(t *testing.T) {
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l := NewLoader(root)
	targets, err := l.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("targets: %d", len(targets))
	for _, p := range targets {
		if p.Info == nil || p.Types == nil {
			t.Errorf("%s missing types", p.PkgPath)
		}
	}
}

// TestLoadMultiplePatterns loads two separate patterns in one call and
// checks both resolve to full target packages.
func TestLoadMultiplePatterns(t *testing.T) {
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l := NewLoader(root)
	targets, err := l.Load("./internal/sim", "./internal/obs")
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]*Package{}
	for _, p := range targets {
		got[p.PkgPath] = p
		if p.DepOnly {
			t.Errorf("%s: target marked DepOnly", p.PkgPath)
		}
		if !p.full {
			t.Errorf("%s: target loaded without bodies", p.PkgPath)
		}
		if len(p.Syntax) == 0 || p.Info == nil {
			t.Errorf("%s: missing syntax or type info", p.PkgPath)
		}
	}
	for _, want := range []string{"packetshader/internal/sim", "packetshader/internal/obs"} {
		if got[want] == nil {
			t.Errorf("pattern result missing %s (have %d targets)", want, len(targets))
		}
	}
}

// TestLoadModuleClosure checks the LoadModule contract cross-package
// analyzers depend on: every module-local dependency is present with
// full bodies, the listing is dependency-first (a package's module
// imports always precede it), and only pattern matches are non-DepOnly.
func TestLoadModuleClosure(t *testing.T) {
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l := NewLoader(root)
	module, err := l.LoadModule("./internal/core")
	if err != nil {
		t.Fatal(err)
	}

	index := map[string]int{}
	for i, p := range module {
		index[p.PkgPath] = i
	}
	// core imports sim (the scheduler) and hw/nic at least; the module
	// closure must carry both even though only core was requested.
	for _, dep := range []string{"packetshader/internal/sim", "packetshader/internal/hw/nic"} {
		i, ok := index[dep]
		if !ok {
			t.Fatalf("module closure of ./internal/core missing %s", dep)
		}
		p := module[i]
		if !p.DepOnly {
			t.Errorf("%s: dependency not marked DepOnly", dep)
		}
		if !p.full || len(p.Syntax) == 0 {
			t.Errorf("%s: module-local dependency loaded without full bodies", dep)
		}
	}
	if i, ok := index["packetshader/internal/core"]; !ok {
		t.Fatal("module closure missing the target itself")
	} else if module[i].DepOnly {
		t.Error("packetshader/internal/core: target marked DepOnly")
	}

	// Dependency-first order: each package's module-local imports must
	// appear earlier in the slice than the package itself.
	for i, p := range module {
		for _, imp := range p.Types.Imports() {
			if j, ok := index[imp.Path()]; ok && j >= i {
				t.Errorf("order violation: %s (index %d) imports %s (index %d)",
					p.PkgPath, i, imp.Path(), j)
			}
		}
	}

	// Standard-library dependencies stay signatures-only and out of the
	// module slice.
	if fmtPkg := l.Lookup("fmt"); fmtPkg == nil {
		t.Error("fmt not loaded as a dependency")
	} else {
		if fmtPkg.full {
			t.Error("fmt: stdlib dependency loaded with full bodies")
		}
		if idx, ok := index["fmt"]; ok {
			t.Errorf("fmt appears in module closure at index %d", idx)
		}
	}
}

// TestLoadCacheAndTargetPromotion loads a package first as a dependency,
// then directly, and checks the cache is reused with DepOnly refreshed.
func TestLoadCacheAndTargetPromotion(t *testing.T) {
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l := NewLoader(root)
	if _, err := l.Load("./internal/core"); err != nil {
		t.Fatal(err)
	}
	dep := l.Lookup("packetshader/internal/sim")
	if dep == nil {
		t.Fatal("sim not loaded as a dependency of core")
	}
	if !dep.DepOnly {
		t.Fatal("sim should be DepOnly after loading only core")
	}
	targets, err := l.Load("./internal/sim")
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) != 1 {
		t.Fatalf("got %d targets, want 1", len(targets))
	}
	if targets[0] != dep {
		t.Error("second Load did not reuse the cached package")
	}
	if dep.DepOnly {
		t.Error("DepOnly not cleared when the package became a target")
	}
}

// TestTypeErrorPropagation builds a throwaway module whose single file
// fails type-checking and verifies Load surfaces the error instead of
// returning a half-checked package.
func TestTypeErrorPropagation(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module badmod\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "bad.go"),
		"package badmod\n\nfunc f() int { return undefinedIdent }\n")

	l := NewLoader(dir)
	_, err := l.Load("./...")
	if err == nil {
		t.Fatal("Load succeeded on a module with a type error")
	}
	if !strings.Contains(err.Error(), "typecheck badmod") ||
		!strings.Contains(err.Error(), "undefinedIdent") {
		t.Errorf("error does not name the failing package and identifier: %v", err)
	}
	if p := l.Lookup("badmod"); p != nil {
		t.Error("failed package was cached")
	}
}

// TestParseErrorPropagation does the same for a file that does not even
// parse.
func TestParseErrorPropagation(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module badmod\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "bad.go"), "package badmod\n\nfunc f( {\n")

	l := NewLoader(dir)
	if _, err := l.Load("./..."); err == nil {
		t.Fatal("Load succeeded on a module with a syntax error")
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
