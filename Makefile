# Development entry points. `make check` is the expanded tier-1
# verification and mirrors CI (.github/workflows/ci.yml) exactly.

.PHONY: check build test lint race bench profile trace-demo

check:
	./scripts/check.sh

# profile runs the three key benchmarks (Fig5Batch, RouterIPv4GPU,
# FabricWorkers/p1) with CPU+alloc profiling and writes pprof files plus
# top-25 summaries under profiles/. Pass BENCHTIME for longer runs.
profile:
	./scripts/profile.sh $(BENCHTIME)

# bench refreshes BENCH_PR9.json: the two key benchmarks with -benchmem,
# the simulated-ns-per-wall-ns figure of merit, the fabric core-scaling
# curve at -p 1/2/8, and `psbench all` wall time at -j 1 vs -j $(nproc).
# Pass BENCHTIME to trade precision for speed (default 10x).
bench:
	./scripts/bench.sh $(BENCHTIME)

build:
	go build ./...

test:
	go test ./...

lint:
	go vet ./...
	go run ./cmd/pslint ./...

race:
	go test -race ./internal/sim ./internal/core ./internal/cluster ./internal/pktio ./internal/obs ./internal/faults
	go test -race -short ./internal/experiments

# trace-demo produces a sample Perfetto trace plus a metrics dump from
# the Figure 11a operating point (IPv4 CPU+GPU, 64B packets, full BGP
# table at 10 Gbps/port). Open trace-demo.json at https://ui.perfetto.dev.
trace-demo:
	go run ./cmd/pshader -app ipv4 -mode gpu -size 64 -offered 10 \
		-duration 5ms -warmup 5ms -prefixes 282797 \
		-trace trace-demo.json -metrics
