// fabric.go grows the analytic mesh model into a discrete-event fabric
// of PacketShader boxes: one sim partition per node, connected by
// latency-carrying sim.Links, advanced conservatively in parallel by
// sim.World (ROADMAP items 1 and 2). Where Evaluate answers "what
// throughput is admissible", the fabric *runs* the interconnect —
// batches traverse ingress, per-hop forwarding budgets, per-link
// serialization and propagation latency — and reports what was actually
// delivered, with end-to-end latency, under the topology's routing
// (mesh Direct/VLB, or leaf-spine ECMP). Wire and port serialization
// are arithmetic recurrences (end = max(now, free) + bits/rate), not
// dedicated processes: a node is two procs (generator and forwarder)
// regardless of its degree, which is what lets a 128-leaf fabric run
// inside the bench budget.
package cluster

import (
	"fmt"
	"math"
	"sort"

	"packetshader/internal/faults"
	"packetshader/internal/hw/nic"
	"packetshader/internal/sim"
)

// FlowModel shapes the traffic generators' flow structure. The zero
// value is the legacy model: every batch is its own flow (fresh RSS key
// material per batch).
type FlowModel struct {
	// ZipfS > 0 enables heavy-tailed flow sizes: a flow persists for
	// k batches with probability ∝ k^-ZipfS, k = 1..MaxBatches, and
	// all its batches share RSS key material — so ECMP pins the whole
	// flow to one path, the way real 5-tuple hashing does.
	ZipfS float64
	// MaxBatches bounds the flow-size support (default 256).
	MaxBatches int
}

// FabricConfig describes one fabric run.
type FabricConfig struct {
	// Cluster supplies the full-mesh capacities: Nodes, ExternalGbps,
	// NodeForwardingGbps, InternalLinkGbps. Ignored when Topo is set.
	Cluster Config
	// Scheme is Direct or VLB for the full mesh. (DirectVLB's spill
	// decision needs global link-occupancy knowledge and is left to
	// the analytic model.) Ignored when Topo is set.
	Scheme Routing
	// Topo overrides the interconnect; nil means the full mesh built
	// from Cluster and Scheme.
	Topo Topology
	// Matrix is the offered load, Gbps entering external node i
	// destined to external node j.
	Matrix Matrix
	// LinkLatency is the propagation delay of every fabric link — the
	// world's lookahead. Must be positive.
	LinkLatency sim.Duration
	// BatchBytes is the traffic granularity: one event-level unit of
	// transfer (a chunk of packets), default 16 KiB.
	BatchBytes int
	// Horizon is the simulated duration.
	Horizon sim.Duration
	// Seed drives flow-key generation (and thus VLB intermediates and
	// ECMP path choices).
	Seed uint64
	// Workers is the number of host goroutines advancing partitions
	// (the psbench -p value); any value yields byte-identical results.
	Workers int
	// Flows shapes flow sizes; the zero value is one flow per batch.
	Flows FlowModel
	// Faults schedules deterministic link and node failures: link
	// events (KindLinkDown/Up) target egress slot Port of node Node;
	// GPU events (KindGPUFail/Repair) take the whole node down — a
	// dead node blackholes everything it would forward. Other fault
	// kinds model single-box hardware and are ignored here.
	Faults *faults.Plan
}

// FabricResult is the merged outcome of a fabric run.
type FabricResult struct {
	OfferedGbps   float64
	DeliveredGbps float64
	// MeanHops counts forwarding operations per delivered batch
	// (ingress node included), comparable to Result.MeanHops.
	MeanHops float64
	// MeanLatency/MaxLatency are end-to-end batch latencies
	// (ingress emission to external egress).
	MeanLatency, MaxLatency sim.Duration
	Batches, Delivered      uint64
	Forwards                uint64
	// RouteDrops counts batches blackholed because every candidate
	// egress link was down; NodeDrops, batches consumed by a dead
	// node.
	RouteDrops, NodeDrops uint64
}

// batch is the unit of simulated traffic: a fixed-size burst of packets
// of one flow. Batches travel between nodes by value through sim.Links
// and queues, so ownership hands off at scheduler-visible boundaries.
type batch struct {
	src, dst int
	hops     uint32
	hash     uint32 // RSS flow hash: VLB intermediate / ECMP path choice
	bits     uint64
	born     sim.Time
	flowSrc  uint32 // flow key material behind hash
	flowDst  uint32
}

// fabricNode is one fabric box: a generator proc emitting external
// ingress and a forwarder proc draining the inbox. The forwarding
// budget is the forwarder's Sleep; link and external-port serialization
// are arithmetic FIFO recurrences (txFree/extFree) proven equivalent to
// the dedicated server procs they replaced — max(now, free) + bits/rate
// is exactly a single-server FIFO queue's completion time. Each counter
// field is written by exactly one of the node's procs; fault events
// reach the forwarder through the faultq hand-off (the At callback only
// enqueues, the forwarder drains before consulting liveness), so
// alive/up stay forwarder-owned. Everything merges in node order after
// the run.
type fabricNode struct {
	id     int
	part   *sim.Partition
	inbox  *sim.Queue[batch]
	faultq *sim.Queue[faults.Event] // scheduler→forwarder fault hand-off
	out    []*sim.Link[batch]
	gbps   []float64 // per-slot link rate
	alive  []bool    // per-slot link carrier, fault-toggled
	up     bool      // node liveness, fault-toggled

	txFree  []sim.Time // per-slot wire-free time (FIFO serialization)
	extFree sim.Time   // external port free time

	// generator-owned counters
	genBatches uint64
	genBits    uint64
	// forwarder-owned counters
	forwards      uint64
	delivered     uint64
	deliveredBits uint64
	hopSum        uint64
	latSum        sim.Duration
	latMax        sim.Duration
	routeDrops    uint64
	nodeDrops     uint64
}

// gbpsTime returns the serialization time of bits at rate gbps: one
// Gbps moves one bit per nanosecond.
func gbpsTime(bits uint64, gbps float64) sim.Duration {
	return sim.DurationFromSeconds(float64(bits) / (gbps * 1e9))
}

func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// zipfTable precomputes the cumulative weights of k^-s over
// k = 1..max for inverse-CDF sampling.
func zipfTable(s float64, max int) []float64 {
	cum := make([]float64, max)
	var total float64
	for k := 1; k <= max; k++ {
		total += math.Pow(float64(k), -s)
		cum[k-1] = total
	}
	return cum
}

// zipfDraw samples a flow size from the table.
func zipfDraw(cum []float64, rng *uint64) int {
	u := float64(splitmix64(rng)>>11) / float64(uint64(1)<<53)
	return sort.SearchFloat64s(cum, u*cum[len(cum)-1]) + 1
}

// RunFabric builds the fabric world and runs it to the horizon.
func RunFabric(cfg FabricConfig) (FabricResult, error) {
	topo := cfg.Topo
	if topo == nil {
		topo = &FullMesh{Cluster: cfg.Cluster, Scheme: cfg.Scheme}
	}
	if err := topo.Validate(); err != nil {
		return FabricResult{}, err
	}
	ext := topo.Externals()
	if len(cfg.Matrix) != ext {
		return FabricResult{}, fmt.Errorf("fabric: matrix size %d != external nodes %d", len(cfg.Matrix), ext)
	}
	if cfg.LinkLatency <= 0 {
		return FabricResult{}, fmt.Errorf("fabric: LinkLatency must be positive (it is the lookahead)")
	}
	if cfg.Horizon <= 0 {
		return FabricResult{}, fmt.Errorf("fabric: Horizon must be positive")
	}
	if cfg.BatchBytes <= 0 {
		cfg.BatchBytes = 16 << 10
	}
	if cfg.Flows.ZipfS > 0 && cfg.Flows.MaxBatches <= 0 {
		cfg.Flows.MaxBatches = 256
	}
	n := topo.Nodes()

	world := sim.NewWorld()
	defer world.Close()
	nodes := make([]*fabricNode, n)
	for i := 0; i < n; i++ {
		part := world.NewPartition(fmt.Sprintf("node%d", i))
		nodes[i] = &fabricNode{
			id:     i,
			part:   part,
			inbox:  sim.NewQueue[batch](part.Env(), 0),
			faultq: sim.NewQueue[faults.Event](part.Env(), 0),
			up:     true,
		}
	}
	for _, tl := range topo.Links() {
		nd := nodes[tl.From]
		nd.out = append(nd.out, sim.NewLink(nd.part, nodes[tl.To].part,
			cfg.LinkLatency, nodes[tl.To].inbox))
		nd.gbps = append(nd.gbps, tl.Gbps)
		nd.alive = append(nd.alive, true)
		nd.txFree = append(nd.txFree, 0)
	}
	if cfg.Faults != nil {
		if err := armFaults(cfg.Faults, nodes); err != nil {
			return FabricResult{}, err
		}
	}
	var zipf []float64
	if cfg.Flows.ZipfS > 0 {
		zipf = zipfTable(cfg.Flows.ZipfS, cfg.Flows.MaxBatches)
	}
	for i := 0; i < n; i++ {
		nd := nodes[i] // loop-local: each root touches its own node only
		env := nd.part.Env()
		if i < ext {
			env.Go("gen", func(p *sim.Proc) { nd.generate(p, &cfg, zipf) })
		}
		env.Go("fwd", func(p *sim.Proc) { nd.forward(p, &cfg, topo) })
	}
	world.Run(sim.Time(cfg.Horizon), cfg.Workers)

	// Merge per-node counters in node order: the result is independent
	// of how many workers advanced the partitions.
	res := FabricResult{OfferedGbps: cfg.Matrix.Total()}
	for _, nd := range nodes {
		res.Batches += nd.genBatches
		res.Forwards += nd.forwards
		res.Delivered += nd.delivered
		res.DeliveredGbps += float64(nd.deliveredBits)
		res.MeanHops += float64(nd.hopSum)
		res.MeanLatency += nd.latSum
		res.RouteDrops += nd.routeDrops
		res.NodeDrops += nd.nodeDrops
		if nd.latMax > res.MaxLatency {
			res.MaxLatency = nd.latMax
		}
	}
	res.DeliveredGbps /= cfg.Horizon.Seconds() * 1e9
	if res.Delivered > 0 {
		res.MeanHops /= float64(res.Delivered)
		res.MeanLatency /= sim.Duration(res.Delivered)
	}
	return res, nil
}

// armFaults schedules the plan's link and node events on each affected
// node's own environment, so a fault only ever touches partition-local
// state (a leaf never reads a spine's liveness — a dead node simply
// consumes and drops what reaches it). The callback only enqueues the
// event on the node's faultq; the forwarder drains the queue before
// consulting alive/up, so the toggles themselves stay forwarder-owned
// (the same scheduler→proc hand-off as the core gpuStatus queue).
// Liveness is only ever *read* when a batch is processed, and at any
// instant the callback's setup-time seq sorts before a batch wakeup,
// so drain-before-use observes exactly the state the direct write
// would have.
func armFaults(plan *faults.Plan, nodes []*fabricNode) error {
	for _, ev := range plan.Events() {
		if ev.Node < 0 || ev.Node >= len(nodes) {
			return fmt.Errorf("fabric: fault event targets node %d of %d", ev.Node, len(nodes))
		}
		nd := nodes[ev.Node]
		switch ev.Kind {
		case faults.KindLinkDown, faults.KindLinkUp:
			if ev.Port < 0 || ev.Port >= len(nd.alive) {
				return fmt.Errorf("fabric: fault event targets slot %d of node %d (degree %d)", ev.Port, ev.Node, len(nd.alive))
			}
		case faults.KindGPUFail, faults.KindGPURepair:
		default:
			// Single-box hardware kinds (PCIe retrain, RX drop bursts)
			// have no fabric-level meaning.
			continue
		}
		ev := ev
		nd.part.Env().At(sim.Time(ev.At), func() { nd.faultq.TryPut(ev) })
	}
	return nil
}

// applyFault folds one queued fault event into the forwarder's view.
func (nd *fabricNode) applyFault(ev faults.Event) {
	switch ev.Kind {
	case faults.KindLinkDown, faults.KindLinkUp:
		nd.alive[ev.Port] = ev.Kind == faults.KindLinkUp
	case faults.KindGPUFail, faults.KindGPURepair:
		nd.up = ev.Kind == faults.KindGPURepair
	}
}

// generate emits this node's external ingress: per destination, batches
// at the matrix rate, phase-offset by the seed so nodes do not emit in
// lockstep. Flow key material feeds the Toeplitz hash that picks VLB
// intermediates and ECMP paths; with a FlowModel, keys persist for a
// Zipf-sized run of batches so a flow holds its path. Diagonal
// (self-destined) traffic is switched locally, as in Evaluate: it
// spends the forwarding budget and the external port but no link.
func (nd *fabricNode) generate(p *sim.Proc, cfg *FabricConfig, zipf []float64) {
	ext := len(cfg.Matrix)
	bits := uint64(cfg.BatchBytes) * 8
	// next[j] is the emission time of the next batch to j; interval[j]
	// the batch period at the offered rate.
	next := make([]sim.Time, ext)
	interval := make([]sim.Duration, ext)
	rng := cfg.Seed ^ (uint64(nd.id+1) * 0x9e3779b97f4a7c15)
	active := 0
	for j := 0; j < ext; j++ {
		rate := cfg.Matrix[nd.id][j]
		if rate <= 0 {
			next[j] = -1
			continue
		}
		interval[j] = gbpsTime(bits, rate)
		next[j] = sim.Time(splitmix64(&rng) % uint64(interval[j]))
		active++
	}
	if active == 0 {
		return
	}
	var flowLeft []int
	var flowKey []batch // per-destination persistent key material
	if zipf != nil {
		flowLeft = make([]int, ext)
		flowKey = make([]batch, ext)
	}
	for {
		// Earliest pending destination; ties go to the lower index.
		j := -1
		for k := 0; k < ext; k++ {
			if next[k] >= 0 && (j < 0 || next[k] < next[j]) {
				j = k
			}
		}
		if sim.Duration(next[j]) > cfg.Horizon {
			return
		}
		p.SleepUntil(next[j])
		b := batch{src: nd.id, dst: j, bits: bits, born: p.Now()}
		if zipf == nil {
			b.flowSrc = uint32(splitmix64(&rng))
			b.flowDst = uint32(splitmix64(&rng))
			b.hash = rssHash(b.flowSrc, b.flowDst)
		} else {
			if flowLeft[j] == 0 {
				flowLeft[j] = zipfDraw(zipf, &rng)
				fk := &flowKey[j]
				fk.flowSrc = uint32(splitmix64(&rng))
				fk.flowDst = uint32(splitmix64(&rng))
				fk.hash = rssHash(fk.flowSrc, fk.flowDst)
			}
			flowLeft[j]--
			b.flowSrc = flowKey[j].flowSrc
			b.flowDst = flowKey[j].flowDst
			b.hash = flowKey[j].hash
		}
		nd.genBatches++
		nd.genBits += bits
		nd.inbox.TryPut(b) // unbounded: own ingress enters the local inbox
		next[j] += sim.Time(interval[j])
	}
}

// rssHash is the fabric's flow hash: the paper's Toeplitz RSS over the
// batch's key material, LUT-accelerated for the default key.
func rssHash(flowSrc, flowDst uint32) uint32 {
	return nic.RSSHashIPv4(nic.DefaultRSSKey[:], flowSrc, flowDst,
		uint16(flowSrc>>16), uint16(flowDst>>16))
}

// forward is the node's packet path: drain the inbox, spend the
// forwarding budget, and route each batch onward. Local deliveries pass
// through the external-port recurrence and count only if the port
// finishes them by the horizon — exactly when the dedicated egress proc
// this replaces would have executed its completion event. Transit
// batches pick an egress slot via the topology, serialize on the
// per-slot wire recurrence, and depart through SendAt. The forwarding
// budget is a plain Sleep: this proc is the budget's only user, so a
// shared Server would add nothing.
func (nd *fabricNode) forward(p *sim.Proc, cfg *FabricConfig, topo Topology) {
	fwdGbps := topo.ForwardGbps(nd.id)
	extGbps := topo.ExternalGbps(nd.id)
	horizon := sim.Time(cfg.Horizon)
	for {
		b := nd.inbox.Get(p)
		for {
			ev, ok := nd.faultq.TryGet()
			if !ok {
				break
			}
			nd.applyFault(ev)
		}
		if !nd.up {
			nd.nodeDrops++
			continue
		}
		p.Sleep(gbpsTime(b.bits, fwdGbps))
		nd.forwards++
		b.hops++
		if b.dst == nd.id {
			end := p.Now()
			if nd.extFree > end {
				end = nd.extFree
			}
			end += sim.Time(gbpsTime(b.bits, extGbps))
			nd.extFree = end
			if end <= horizon {
				nd.delivered++
				nd.deliveredBits += b.bits
				nd.hopSum += uint64(b.hops)
				lat := sim.Duration(end - b.born)
				nd.latSum += lat
				if lat > nd.latMax {
					nd.latMax = lat
				}
			}
			continue
		}
		slot, ok := topo.NextHop(nd.id, &b, nd.alive)
		if !ok {
			nd.routeDrops++
			continue
		}
		dep := p.Now()
		if nd.txFree[slot] > dep {
			dep = nd.txFree[slot]
		}
		dep += sim.Time(gbpsTime(b.bits, nd.gbps[slot]))
		nd.txFree[slot] = dep
		nd.out[slot].SendAt(p, dep, b)
	}
}
