// Fixture for the procshare analyzer: concurrency roots (Env.Go procs,
// Env.At/After callbacks) sharing package vars, captured variables and
// struct fields, plus the sanctioned exemptions (sim.Queue mediation,
// sync.Once read-only-after-construction, per-instance loop captures,
// //pslint:ignore directives).
package procshare

import (
	"sync"

	"packetshader/internal/sim"
)

// ---- package-level variable shared by two procs ----

var hits int

func startVarPair(env *sim.Env) {
	env.Go("a", func(p *sim.Proc) {
		hits++ // want `var fixture/procshare\.hits is written by proc "a" .* and read by proc "b"`
	})
	env.Go("b", func(p *sim.Proc) {
		_ = hits
	})
}

// ---- captured closure variable shared by two procs ----

func startCapturePair(env *sim.Env) {
	n := 0
	env.Go("inc", func(p *sim.Proc) {
		n++ // want `capture n \(fixture\.go:\d+\) is written by proc "inc" .* and written by proc "dec"`
	})
	env.Go("dec", func(p *sim.Proc) {
		n--
	})
}

// ---- proc paired with a scheduler callback ----

func startCallback(env *sim.Env) {
	var late int
	env.Go("w", func(p *sim.Proc) {
		late = 1 // want `capture late \(fixture\.go:\d+\) is written by proc "w" .* and read by callback "At"`
	})
	env.At(5, func() {
		_ = late
	})
}

// ---- loop-spawned proc: instances share outer capture, not loop-local ----

func startWorkers(env *sim.Env) {
	total := 0
	for i := 0; i < 4; i++ {
		i := i // per-instance: declared inside the loop, no self-report
		env.Go("worker", func(p *sim.Proc) {
			total += i // want `proc "worker" .* runs as multiple instances that all write capture total`
		})
	}
}

// ---- field of one object captured by two procs ----

type counter struct{ n int }

func startField(env *sim.Env) {
	c := &counter{}
	env.Go("fa", func(p *sim.Proc) {
		c.n++ // want `field \(fixture/procshare\.counter\)\.n is written by proc "fa" .* and read by proc "fb"`
	})
	env.Go("fb", func(p *sim.Proc) {
		_ = c.n
	})
}

// ---- shared state reached transitively through a helper ----

var logLines []string

func appendLog(s string) { logLines = append(logLines, s) }

func startLog(env *sim.Env) {
	env.Go("logger1", func(p *sim.Proc) {
		appendLog("x") // want `var fixture/procshare\.logLines is written by proc "logger1" .* and written by proc "logger2"`
	})
	env.Go("logger2", func(p *sim.Proc) {
		appendLog("y")
	})
}

// ---- method-value callback root ----

type gauge struct{ v int }

func (g *gauge) bump() { g.v++ }

func startMethod(env *sim.Env) {
	g := &gauge{}
	env.After(3, g.bump) // want `field \(fixture/procshare\.gauge\)\.v is written by callback "After" .* and read by proc "reader"`
	env.Go("reader", func(p *sim.Proc) {
		_ = g.v
	})
}

// ---- mediated by sim.Queue: the sanctioned channel, no findings ----

func startQueue(env *sim.Env) {
	q := sim.NewQueue[int](env, 8)
	env.Go("prod", func(p *sim.Proc) {
		q.Put(p, 1)
	})
	env.Go("cons", func(p *sim.Proc) {
		_ = q.Get(p)
	})
}

// ---- queue element type: hand-off fields are queue-mediated ----

// job travels between procs through a sim.Queue, so its fields are
// hand-off state: ownership transfers at Put/Get, which are lookahead
// boundaries. No findings, even though producer and consumer both write
// the same field of the same instance.
type job struct{ step int }

func startHandOff(env *sim.Env) {
	jobs := sim.NewQueue[*job](env, 4)
	env.Go("maker", func(p *sim.Proc) {
		j := &job{}
		j.step = 1
		jobs.Put(p, j)
	})
	env.Go("taker", func(p *sim.Proc) {
		j := jobs.Get(p)
		j.step = 2
	})
}

// result is NOT a queue element anywhere in this package, so the same
// shape still reports: the exemption is keyed to the element type.
type result struct{ step int }

func startNoHandOff(env *sim.Env) {
	r := &result{}
	env.Go("ra", func(p *sim.Proc) {
		r.step = 1 // want `field \(fixture/procshare\.result\)\.step is written by proc "ra" .* and written by proc "rb"`
	})
	env.Go("rb", func(p *sim.Proc) {
		r.step = 2
	})
}

// ---- read-only after a sync.Once build: no findings ----

var (
	table     map[int]int
	tableOnce sync.Once
)

func getTable() map[int]int {
	tableOnce.Do(func() { table = map[int]int{1: 1} })
	return table
}

func startOnce(env *sim.Env) {
	env.Go("oa", func(p *sim.Proc) {
		_ = getTable()
	})
	env.Go("ob", func(p *sim.Proc) {
		_ = getTable()
	})
}

// ---- waived line-wise with a reason: no findings ----

var debugCount int

func startIgnored(env *sim.Env) {
	env.Go("da", func(p *sim.Proc) {
		debugCount++ //pslint:ignore procshare debug-only counter, torn updates acceptable
	})
	env.Go("db", func(p *sim.Proc) {
		_ = debugCount
	})
}

// ---- named-function roots: accesses anchor at the spawn site ----

var ticks int

func tick(p *sim.Proc) { ticks++ }
func tock(p *sim.Proc) { _ = ticks }

func startNamed(env *sim.Env) {
	env.Go("tick", tick) // want `var fixture/procshare\.ticks is written by proc "tick" .* and read by proc "tock"`
	env.Go("tock", tock)
}
