// Fixture for the seededrand analyzer: the global math/rand source is
// forbidden; explicit seeded generators are the sanctioned pattern.
package seededrand

import "math/rand"

func bad() int {
	rand.Seed(42)                      // want `rand\.Seed uses the global math/rand source`
	_ = rand.Float64()                 // want `rand\.Float64 uses the global math/rand source`
	_ = rand.Perm(10)                  // want `rand\.Perm uses the global math/rand source`
	rand.Shuffle(3, func(i, j int) {}) // want `rand\.Shuffle uses the global math/rand source`
	return rand.Intn(10)               // want `rand\.Intn uses the global math/rand source`
}

func good(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed)) // explicit seeded source: ok
	_ = rng.Intn(10)
	z := rand.NewZipf(rng, 1.2, 1, 1000) // constructor taking a *Rand: ok
	_ = z.Uint64()
	return rng.Float64()
}
