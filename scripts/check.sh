#!/bin/sh
# check.sh mirrors .github/workflows/ci.yml locally: build, vet, the
# pslint determinism linters, the full test suite, and race tests on the
# concurrency-bearing packages. This is the repository's expanded tier-1
# verification (see ROADMAP.md); `make check` runs it.
set -eu

cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

# One invocation covers every package (./... includes internal/obs and
# internal/faults); the JSON report then feeds the baseline staleness
# check, which fails if pslint-baseline.json carries waivers that no
# longer match anything.
echo "== pslint (determinism contract, all packages)"
PSLINT_REPORT="$(mktemp)"
trap 'rm -f "$PSLINT_REPORT"' EXIT
go run ./cmd/pslint -json-out "$PSLINT_REPORT" ./...

echo "== pslint baseline staleness"
go run ./cmd/pslint -report-stale "$PSLINT_REPORT"

echo "== go test ./..."
go test ./...

echo "== trace/metrics determinism (byte-identical across runs)"
go test -count=1 -run 'TestObsOutputByteIdenticalAcrossRuns|TestObsSpansCoverGPUAndPCIeBusyTime' ./internal/experiments

echo "== fault-scenario determinism (byte-identical across runs)"
go test -count=1 -run 'TestFaultScenarioDeterministicAndShaped|TestFaultRunsDeterministic' ./internal/experiments ./internal/core

echo "== parallel harness: -j 8 byte-identical to -j 1"
go test -count=1 -run 'TestParallelOutputByteIdenticalToSerial|TestRunMultipleIDsMatchesConcatenation' ./internal/experiments

echo "== partitioned world: -p 8 byte-identical to -p 1"
go test -count=1 -run 'TestFabricByteIdenticalAcrossPartitionWorkers|TestLeafSpineByteIdenticalAcrossPartitionWorkers|TestWorldByteIdenticalAcrossWorkers' ./internal/experiments ./internal/sim
PSBENCH_BIN="$(mktemp)"
go build -o "$PSBENCH_BIN" ./cmd/psbench
"$PSBENCH_BIN" fabric cluster leafspine -metrics -p 1 >/tmp/psbench-p1.$$ 2>/dev/null
"$PSBENCH_BIN" fabric cluster leafspine -metrics -p 8 >/tmp/psbench-p8.$$ 2>/dev/null
cmp /tmp/psbench-p1.$$ /tmp/psbench-p8.$$
rm -f "$PSBENCH_BIN" /tmp/psbench-p1.$$ /tmp/psbench-p8.$$

echo "== pshaderd replay: control script byte-identical across runs"
PSHADER_BIN="$(mktemp)"
go build -o "$PSHADER_BIN" ./cmd/pshader
for i in 1 2; do
  "$PSHADER_BIN" -app ipv4 -prefixes 5000 -fib dynamic \
    -ctrl scripts/pshaderd-demo.psc -warmup 2ms -duration 6ms \
    -metrics -trace /tmp/pshaderd-trace$i.$$ >/tmp/pshaderd-run$i.$$ 2>/dev/null
done
cmp /tmp/pshaderd-run1.$$ /tmp/pshaderd-run2.$$
cmp /tmp/pshaderd-trace1.$$ /tmp/pshaderd-trace2.$$
rm -f "$PSHADER_BIN" /tmp/pshaderd-run[12].$$ /tmp/pshaderd-trace[12].$$

echo "== churn experiment: run-twice byte-identical"
PSBENCH_BIN="$(mktemp)"
go build -o "$PSBENCH_BIN" ./cmd/psbench
"$PSBENCH_BIN" churn >/tmp/psbench-churn1.$$ 2>/dev/null
"$PSBENCH_BIN" churn >/tmp/psbench-churn2.$$ 2>/dev/null
cmp /tmp/psbench-churn1.$$ /tmp/psbench-churn2.$$
rm -f "$PSBENCH_BIN" /tmp/psbench-churn[12].$$

echo "== go test -race (sim, core, ctrl, cluster, pktio, faults)"
go test -race ./internal/sim ./internal/core ./internal/ctrl ./internal/cluster ./internal/pktio ./internal/obs ./internal/faults

echo "== go test -race -short (parallel experiment harness)"
go test -race -short ./internal/experiments

echo "== bench smoke (one iteration of the key benchmarks, pprof to profiles/)"
mkdir -p profiles
go test -run '^$' -bench 'BenchmarkFig5Batch$|BenchmarkRouterIPv4GPU$|BenchmarkLeafSpineScale/l128$' -benchtime 1x \
	-cpuprofile profiles/bench-smoke.cpu.pprof \
	-memprofile profiles/bench-smoke.mem.pprof .

echo "== all checks passed"
