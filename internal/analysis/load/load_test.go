package load

import "testing"

func TestSmokeLoadAll(t *testing.T) {
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l := NewLoader(root)
	targets, err := l.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("targets: %d", len(targets))
	for _, p := range targets {
		if p.Info == nil || p.Types == nil {
			t.Errorf("%s missing types", p.PkgPath)
		}
	}
}
