package sim

import (
	"fmt"
	"runtime"
	"testing"
	"time"
)

// splitmix64 is the test-local deterministic PRNG (same generator the
// model packages use for seeded randomness).
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// buildTrafficWorld constructs a small all-to-all message-bouncing world:
// n partitions, each with an inbox, full mesh of links with varied
// latencies, a seeded generator process per partition, and a forwarder
// that bounces each message until its hop count drains. Every receipt is
// logged partition-locally; the returned render function merges the logs
// in partition order into one byte string.
func buildTrafficWorld(n int, seed uint64) (w *World, render func() string) {
	w = NewWorld()
	type msg struct {
		val  int
		hops int
	}
	parts := make([]*Partition, n)
	inboxes := make([]*Queue[msg], n)
	logs := make([][]string, n)
	for i := 0; i < n; i++ {
		parts[i] = w.NewPartition(fmt.Sprintf("node%d", i))
		inboxes[i] = NewQueue[msg](parts[i].Env(), 0)
	}
	links := make([][]*Link[msg], n)
	for i := 0; i < n; i++ {
		links[i] = make([]*Link[msg], n)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			// Varied latencies: lookahead is the minimum (here 30ns).
			lat := Duration(30+10*((i+j)%4)) * Nanosecond
			links[i][j] = NewLink(parts[i], parts[j], lat, inboxes[j])
		}
	}
	for i := 0; i < n; i++ {
		i := i
		env := parts[i].Env()
		rng := seed + uint64(i)*0x1234567
		env.Go("gen", func(p *Proc) {
			state := rng
			for k := 0; k < 40; k++ {
				p.Sleep(Duration(splitmix64(&state)%500) * Nanosecond)
				dst := int(splitmix64(&state) % uint64(n))
				if dst == i {
					dst = (dst + 1) % n
				}
				links[i][dst].Send(p, msg{val: i*1000 + k, hops: 3})
			}
		})
		env.Go("fwd", func(p *Proc) {
			state := rng ^ 0xabcdef
			for {
				m := inboxes[i].Get(p)
				logs[i] = append(logs[i], fmt.Sprintf("n%d t=%d v=%d h=%d", i, p.Now(), m.val, m.hops))
				if m.hops == 0 {
					continue
				}
				p.Sleep(Duration(splitmix64(&state)%50) * Nanosecond) // forwarding work
				dst := int(splitmix64(&state) % uint64(n))
				if dst == i {
					dst = (dst + 1) % n
				}
				links[i][dst].Send(p, msg{val: m.val, hops: m.hops - 1})
			}
		})
	}
	render = func() string {
		out := ""
		for i := 0; i < n; i++ {
			for _, line := range logs[i] {
				out += line + "\n"
			}
		}
		return out
	}
	return w, render
}

// TestWorldByteIdenticalAcrossWorkers is the partition analogue of the
// harness's -j8==-j1 guarantee: the same seeded world produces
// byte-identical merged logs no matter how many host goroutines drive
// its partitions.
func TestWorldByteIdenticalAcrossWorkers(t *testing.T) {
	const horizon = Time(40 * Microsecond)
	var ref string
	for _, workers := range []int{1, 2, 8} {
		w, render := buildTrafficWorld(5, 42)
		end := w.Run(horizon, workers)
		if end != horizon {
			t.Fatalf("workers=%d: Run returned %v, want %v", workers, end, horizon)
		}
		got := render()
		w.Close()
		if got == "" {
			t.Fatalf("workers=%d: empty log — model did not run", workers)
		}
		if workers == 1 {
			ref = got
			continue
		}
		if got != ref {
			t.Fatalf("workers=%d output differs from serial reference", workers)
		}
	}
}

// TestWorldHorizonExactEvent covers the torn-window edge case: a send
// executed exactly at a window's final instant still arrives exactly
// latency later, identically at every worker count. With lookahead W,
// the first window is [0, W-1]; the sender below transmits at W-1 (the
// window's last executable instant) and at W (the first instant of the
// next window).
func TestWorldHorizonExactEvent(t *testing.T) {
	const W = Duration(100 * Nanosecond)
	type arrival struct{ at Time }
	run := func(workers int) []Time {
		w := NewWorld()
		defer w.Close()
		a := w.NewPartition("a")
		b := w.NewPartition("b")
		inbox := NewQueue[int](b.Env(), 0)
		l := NewLink(a, b, W, inbox)
		a.Env().Go("send", func(p *Proc) {
			p.SleepUntil(Time(W) - 1) // last instant of window [0, W-1]
			l.Send(p, 1)
			p.Sleep(1) // first instant of the next window
			l.Send(p, 2)
		})
		var got []Time
		b.Env().Go("recv", func(p *Proc) {
			for {
				inbox.Get(p)
				got = append(got, p.Now())
			}
		})
		w.Run(Time(4*W), workers)
		return got
	}
	want := []Time{Time(W) - 1 + Time(W), Time(W) + Time(W)}
	for _, workers := range []int{1, 2} {
		got := run(workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d arrivals %v, want %v", workers, len(got), got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: arrivals %v, want %v", workers, got, want)
			}
		}
	}
}

// TestWorldNoLinksSingleWindow: a world with no links has no lookahead
// bound, so unlinked partitions advance to the horizon in one window.
func TestWorldNoLinksSingleWindow(t *testing.T) {
	w := NewWorld()
	defer w.Close()
	var ticks [2]int
	for i := 0; i < 2; i++ {
		i := i
		pt := w.NewPartition(fmt.Sprintf("p%d", i))
		pt.Env().Go("tick", func(p *Proc) {
			for {
				p.Sleep(Microsecond)
				ticks[i]++
			}
		})
	}
	w.Run(Time(10*Microsecond), 2)
	for i, n := range ticks {
		if n != 10 {
			t.Fatalf("partition %d ticked %d times, want 10", i, n)
		}
	}
	for _, pt := range w.Partitions() {
		if pt.Env().Now() != Time(10*Microsecond) {
			t.Fatalf("partition %s clock %v, want horizon", pt.Name(), pt.Env().Now())
		}
	}
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	fn()
}

// TestWorldConstructionValidation: zero/negative-latency links, links
// across worlds or within one partition, foreign destination queues, and
// non-positive horizons are all rejected loudly.
func TestWorldConstructionValidation(t *testing.T) {
	w := NewWorld()
	defer w.Close()
	a := w.NewPartition("a")
	b := w.NewPartition("b")
	inboxB := NewQueue[int](b.Env(), 0)
	inboxA := NewQueue[int](a.Env(), 0)
	mustPanic(t, "zero-latency link", func() { NewLink(a, b, 0, inboxB) })
	mustPanic(t, "negative-latency link", func() { NewLink(a, b, -Nanosecond, inboxB) })
	mustPanic(t, "self-link", func() { NewLink(a, a, Nanosecond, inboxA) })
	mustPanic(t, "foreign dst queue", func() { NewLink(a, b, Nanosecond, inboxA) })
	w2 := NewWorld()
	defer w2.Close()
	c := w2.NewPartition("c")
	mustPanic(t, "cross-world link", func() { NewLink(a, c, Nanosecond, NewQueue[int](c.Env(), 0)) })
	mustPanic(t, "zero horizon", func() { w.Run(0, 1) })
	mustPanic(t, "negative horizon", func() { w.Run(-1, 1) })
}

// TestWorldLookahead: the lookahead is the minimum link latency.
func TestWorldLookahead(t *testing.T) {
	w := NewWorld()
	defer w.Close()
	a := w.NewPartition("a")
	b := w.NewPartition("b")
	if w.Lookahead() != 0 {
		t.Fatalf("lookahead %v before links, want 0", w.Lookahead())
	}
	NewLink(a, b, 5*Microsecond, NewQueue[int](b.Env(), 0))
	NewLink(b, a, 2*Microsecond, NewQueue[int](a.Env(), 0))
	if w.Lookahead() != 2*Microsecond {
		t.Fatalf("lookahead %v, want 2us (min link latency)", w.Lookahead())
	}
}

// waitGoroutines polls until the goroutine count drops back to at most
// `want` (other tests' stragglers can only inflate the baseline, so a
// one-sided bound keeps this robust).
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine count stuck at %d, want <= %d (leak)", n, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestEnvCloseReleasesBlockedProcs is the goroutine-leak regression test
// for the Env.Run abandonment bug: processes still blocked on queues
// when the event heap drains used to park forever, leaking one goroutine
// each per Env. Close must unwind them (running their defers) and return
// the process count to the baseline.
func TestEnvCloseReleasesBlockedProcs(t *testing.T) {
	base := runtime.NumGoroutine()
	const blocked = 50
	env := NewEnv()
	q := NewQueue[int](env, 0)
	unwound := 0
	for i := 0; i < blocked; i++ {
		env.Go("getter", func(p *Proc) {
			defer func() { unwound++ }()
			q.Get(p) // blocks forever: nothing ever Puts
		})
	}
	env.Go("done", func(p *Proc) { p.Sleep(Microsecond) })
	env.Run(0)
	// The getters are abandoned: their goroutines are still parked.
	if n := runtime.NumGoroutine(); n < base+blocked {
		t.Fatalf("expected >= %d parked goroutines before Close, have %d (base %d)", blocked, n-base, n)
	}
	env.Close()
	env.Close() // idempotent
	if unwound != blocked {
		t.Fatalf("Close unwound %d blocked procs (ran defers), want %d", unwound, blocked)
	}
	waitGoroutines(t, base)
	mustPanic(t, "Run after Close", func() { env.Run(0) })
	mustPanic(t, "Go after Close", func() { env.Go("late", func(p *Proc) {}) })
}

// TestEnvCloseBeforeFirstRun: processes that were spawned but never
// scheduled (Run never called) are parked at their initial resume; Close
// must release them too.
func TestEnvCloseBeforeFirstRun(t *testing.T) {
	base := runtime.NumGoroutine()
	env := NewEnv()
	ran := false
	for i := 0; i < 10; i++ {
		env.Go("unstarted", func(p *Proc) { ran = true })
	}
	env.Close()
	if ran {
		t.Fatal("Close must not run never-scheduled process bodies")
	}
	waitGoroutines(t, base)
}

// TestWorldCloseReleasesAllPartitions: World.Close drains every
// partition's parked processes.
func TestWorldCloseReleasesAllPartitions(t *testing.T) {
	base := runtime.NumGoroutine()
	w, _ := buildTrafficWorld(4, 7)
	w.Run(Time(5*Microsecond), 4)
	w.Close()
	w.Close() // idempotent
	waitGoroutines(t, base)
}

// buildSparseWorld is a full mesh of links where almost all of them stay
// idle: of n partitions only 0↔(n-1) ping-pong and 1 fires a single
// burst at 2. A dirty-tracking bug that skips or reorders flushes shows
// up here where a dense workload would mask it.
func buildSparseWorld(n int) (w *World, render func() string) {
	w = NewWorld()
	parts := make([]*Partition, n)
	inboxes := make([]*Queue[int], n)
	logs := make([][]string, n)
	for i := 0; i < n; i++ {
		parts[i] = w.NewPartition(fmt.Sprintf("node%d", i))
		inboxes[i] = NewQueue[int](parts[i].Env(), 0)
	}
	links := make([][]*Link[int], n)
	for i := 0; i < n; i++ {
		links[i] = make([]*Link[int], n)
		for j := 0; j < n; j++ {
			if i != j {
				links[i][j] = NewLink(parts[i], parts[j], Duration(40+7*((i+j)%3))*Nanosecond, inboxes[j])
			}
		}
	}
	for i := 0; i < n; i++ {
		i := i
		env := parts[i].Env()
		env.Go("echo", func(p *Proc) {
			for {
				v := inboxes[i].Get(p)
				logs[i] = append(logs[i], fmt.Sprintf("n%d t=%d v=%d", i, p.Now(), v))
				if i == n-1 && v > 0 {
					p.Sleep(15 * Nanosecond)
					links[i][0].Send(p, v-1) // pong back
				}
			}
		})
	}
	parts[0].Env().Go("ping", func(p *Proc) {
		for k := 12; k > 0; k -= 2 {
			links[0][n-1].Send(p, k)
			v := inboxes[0].Get(p)
			logs[0] = append(logs[0], fmt.Sprintf("n0 got t=%d v=%d", p.Now(), v))
		}
	})
	parts[1].Env().Go("burst", func(p *Proc) {
		p.SleepUntil(Time(3 * Microsecond))
		for k := 0; k < 5; k++ {
			links[1][2].Send(p, 100+k)
		}
	})
	render = func() string {
		out := ""
		for i := 0; i < n; i++ {
			for _, line := range logs[i] {
				out += line + "\n"
			}
		}
		return out
	}
	return w, render
}

// TestWorldDirtyFlushMatchesFlushAll: the dirty-link barrier (flush only
// links that buffered sends this window, in creation order) must produce
// a schedule byte-for-byte identical to flushing every link every window,
// on a traffic matrix where most links never carry a message.
func TestWorldDirtyFlushMatchesFlushAll(t *testing.T) {
	const horizon = Time(20 * Microsecond)
	run := func(flushAll bool) string {
		w, render := buildSparseWorld(8)
		defer w.Close()
		w.flushAll = flushAll
		w.Run(horizon, 2)
		return render()
	}
	dirty, all := run(false), run(true)
	if dirty == "" {
		t.Fatal("empty log — sparse world did not run")
	}
	if dirty != all {
		t.Fatalf("dirty-link schedule differs from flush-all:\n--- dirty ---\n%s--- flush-all ---\n%s", dirty, all)
	}
}

// TestLinkSendAt: SendAt decouples the send call from the modeled
// departure instant — arrivals land at depart+latency in send order,
// equal departures share one delivery instant, and the FIFO-wire
// contract (no past or decreasing departures, source-partition calls
// only) is enforced by panic.
func TestLinkSendAt(t *testing.T) {
	const lat = 100 * Nanosecond
	w := NewWorld()
	defer w.Close()
	a := w.NewPartition("a")
	b := w.NewPartition("b")
	inbox := NewQueue[int](b.Env(), 0)
	l := NewLink(a, b, lat, inbox)
	type arrival struct {
		at Time
		v  int
	}
	var got []arrival
	b.Env().Go("recv", func(p *Proc) {
		for {
			v := inbox.Get(p)
			got = append(got, arrival{p.Now(), v})
		}
	})
	expectPanic := func(what string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", what)
			}
		}()
		fn()
	}
	a.Env().Go("send", func(p *Proc) {
		// Arithmetic serialization: three messages finish the wire at
		// 500/700/700ns while the process itself stays at t=0.
		l.SendAt(p, Time(500*Nanosecond), 1)
		l.SendAt(p, Time(700*Nanosecond), 2)
		l.SendAt(p, Time(700*Nanosecond), 3) // equal departures keep send order
		expectPanic("decreasing departure", func() { l.SendAt(p, Time(600*Nanosecond), 9) })
		p.Sleep(Microsecond)
		expectPanic("past departure", func() { l.SendAt(p, p.Now()-1, 9) })
		l.Send(p, 4) // Send == SendAt(now)
	})
	b.Env().Go("foreign", func(p *Proc) {
		expectPanic("send from outside the source partition", func() { l.SendAt(p, p.Now(), 9) })
	})
	w.Run(Time(2*Microsecond), 2)
	want := []arrival{
		{Time(500*Nanosecond + lat), 1},
		{Time(700*Nanosecond + lat), 2},
		{Time(700*Nanosecond + lat), 3},
		{Time(Microsecond + lat), 4},
	}
	if len(got) != len(want) {
		t.Fatalf("arrivals %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("arrival %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if l.Sent != 4 || l.Dropped != 0 {
		t.Fatalf("Sent=%d Dropped=%d, want 4/0", l.Sent, l.Dropped)
	}
}

// TestWorldSparseIdleSkip: with events microseconds apart and lookahead
// of 100ns, Run must skip the idle windows (start each window at the
// next pending event) and still deliver at exact instants at any worker
// count.
func TestWorldSparseIdleSkip(t *testing.T) {
	const lat = 100 * Nanosecond
	run := func(workers int) []Time {
		w := NewWorld()
		defer w.Close()
		a := w.NewPartition("a")
		b := w.NewPartition("b")
		inbox := NewQueue[int](b.Env(), 0)
		l := NewLink(a, b, lat, inbox)
		a.Env().Go("send", func(p *Proc) {
			for k := 0; k < 5; k++ {
				p.Sleep(Duration(1+k) * Millisecond) // huge inter-event gaps
				l.Send(p, k)
			}
		})
		var got []Time
		b.Env().Go("recv", func(p *Proc) {
			for {
				inbox.Get(p)
				got = append(got, p.Now())
			}
		})
		w.Run(Time(20*Millisecond), workers)
		return got
	}
	var want []Time
	at := Time(0)
	for k := 0; k < 5; k++ {
		at += Time(Duration(1+k) * Millisecond)
		want = append(want, at+Time(lat))
	}
	for _, workers := range []int{1, 2} {
		got := run(workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: arrivals %v, want %v", workers, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: arrival %d at %v, want %v", workers, i, got[i], want[i])
			}
		}
	}
}
