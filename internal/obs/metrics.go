package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"

	"packetshader/internal/sim"
)

// Unit tells the registry dump how to render a metric's values.
type Unit uint8

// Units.
const (
	// UnitCount renders values as plain integers.
	UnitCount Unit = iota
	// UnitDuration renders picosecond values as microseconds
	// ("12.345678us"), exactly, without floating point.
	UnitDuration
)

// Counter is a monotonically increasing named counter. A nil Counter is
// inert.
type Counter struct {
	name string
	v    uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Set overwrites the counter value (for snapshot-style exports of
// counters maintained elsewhere, e.g. per-queue NIC statistics).
func (c *Counter) Set(v uint64) {
	if c != nil {
		c.v = v
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Histogram bucket layout: log-linear in the HdrHistogram style. Values
// in [0, 2^histSubBits) get exact unit buckets; above that, each
// power-of-two octave is split into 2^histSubBits linear sub-buckets,
// bounding relative quantile error at 2^-histSubBits (≈1.6%) while the
// whole record/quantile path stays in integer arithmetic.
const (
	histSubBits = 6
	histSub     = 1 << histSubBits
)

// bucketOf maps a non-negative value to its bucket index. Values below
// 2^histSubBits index exactly; above, octave o = bitlen - histSubBits
// contributes histSub buckets selected by the value's top histSubBits+1
// bits.
func bucketOf(v int64) int {
	u := uint64(v)
	n := bits.Len64(u)
	if n <= histSubBits {
		return int(u) // exact small values
	}
	shift := uint(n - histSubBits - 1)
	return (n-histSubBits)*histSub + int(u>>shift) - histSub
}

// bucketUpper returns the largest value mapping to bucket i (the
// representative reported for quantiles, making quantiles conservative:
// never below the true value's bucket).
func bucketUpper(i int) int64 {
	if i < histSub {
		return int64(i)
	}
	o := uint(i / histSub)   // octave, >= 1
	r := uint64(i % histSub) // linear sub-bucket within the octave
	hi := (r + histSub + 1) << (o - 1)
	if hi == 0 || hi-1 > math.MaxInt64 { // top-octave shift overflow
		return math.MaxInt64
	}
	return int64(hi - 1)
}

// Histogram is a fixed-shape log-linear histogram over non-negative
// int64 samples (negative samples clamp to 0). A nil Histogram is
// inert.
type Histogram struct {
	name    string
	unit    Unit
	count   uint64
	sum     int64
	max     int64
	buckets map[int]uint64 // sparse; exported via sorted keys only
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	h.buckets[bucketOf(v)]++
}

// ObserveDuration records a virtual-time sample.
func (h *Histogram) ObserveDuration(d sim.Duration) { h.Observe(int64(d)) }

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Quantile returns an upper bound for the q-permille quantile (q in
// [0, 1000]): the upper edge of the bucket containing the sample of
// rank ceil(q/1000 * count). Returns 0 on an empty histogram.
func (h *Histogram) Quantile(permille int) int64 {
	if h == nil || h.count == 0 {
		return 0
	}
	if permille < 0 {
		permille = 0
	}
	if permille > 1000 {
		permille = 1000
	}
	// rank = ceil(count * permille / 1000), at least 1.
	rank := (h.count*uint64(permille) + 999) / 1000
	if rank == 0 {
		rank = 1
	}
	keys := make([]int, 0, len(h.buckets))
	for k := range h.buckets {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var acc uint64
	for _, k := range keys {
		acc += h.buckets[k]
		if acc >= rank {
			v := bucketUpper(k)
			if v > h.max {
				v = h.max // never report beyond the observed maximum
			}
			return v
		}
	}
	return h.max
}

// Max returns the largest recorded sample.
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max
}

// Sum returns the sum of all samples.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Registry holds named metrics. Metric handles are created up front
// (Counter/Histogram are cheap lookups but not hot-path free); the dump
// iterates name-sorted slices so output order is deterministic. A nil
// Registry hands out nil (inert) handles.
type Registry struct {
	counters []*Counter
	hists    []*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter returns the counter with the given name, creating it on first
// use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	for _, c := range r.counters {
		if c.name == name {
			return c
		}
	}
	c := &Counter{name: name}
	r.counters = append(r.counters, c)
	return c
}

// Histogram returns the histogram with the given name, creating it on
// first use.
func (r *Registry) Histogram(name string, unit Unit) *Histogram {
	if r == nil {
		return nil
	}
	for _, h := range r.hists {
		if h.name == name {
			return h
		}
	}
	h := &Histogram{name: name, unit: unit, buckets: map[int]uint64{}}
	r.hists = append(r.hists, h)
	return h
}

// render formats v according to unit.
func render(v int64, unit Unit) string {
	if unit == UnitDuration {
		return micros(v) + "us"
	}
	return fmt.Sprintf("%d", v)
}

// Dump writes every metric, one per line, sorted by kind then name:
//
//	counter <name> <value>
//	hist <name> count=<n> p50=<v> p95=<v> p99=<v> max=<v> mean=<v>
//
// Duration-valued histograms render in microseconds with picosecond
// precision. Output is byte-identical across identical runs.
func (r *Registry) Dump(w io.Writer) error {
	ew := &errWriter{w: w}
	if r == nil {
		return nil
	}
	cs := make([]*Counter, len(r.counters))
	copy(cs, r.counters)
	sort.Slice(cs, func(i, j int) bool { return cs[i].name < cs[j].name })
	for _, c := range cs {
		fmt.Fprintf(ew, "counter %s %d\n", c.name, c.v)
	}
	hs := make([]*Histogram, len(r.hists))
	copy(hs, r.hists)
	sort.Slice(hs, func(i, j int) bool { return hs[i].name < hs[j].name })
	for _, h := range hs {
		mean := int64(0)
		if h.count > 0 {
			mean = h.sum / int64(h.count)
		}
		fmt.Fprintf(ew, "hist %s count=%d p50=%s p95=%s p99=%s max=%s mean=%s\n",
			h.name, h.count,
			render(h.Quantile(500), h.unit),
			render(h.Quantile(950), h.unit),
			render(h.Quantile(990), h.unit),
			render(h.max, h.unit),
			render(mean, h.unit))
	}
	return ew.err
}
