// Package schedblock flags blocking simulation calls inside Env.At /
// Env.After callbacks.
//
// The sim package documents that callbacks passed to Env.At and
// Env.After "run in scheduler context and must not block"
// (internal/sim/env.go): the scheduler is single-threaded, and a
// callback that parks on Proc.Sleep, Queue.Get/Put, Server.Use or
// Signal.Wait deadlocks the whole simulation (those operations yield to
// a scheduler that is the caller itself). Nothing enforced this until
// now. Blocking work belongs in a process: have the callback wake a
// Proc (Signal.Fire, Queue.TryPut, Env.Go) instead.
//
// Function literals nested inside the callback are not walked: a
// literal handed to Env.Go runs as its own process, where blocking is
// the whole point.
package schedblock

import (
	"go/ast"
	"go/types"

	"packetshader/internal/analysis"
)

// blocking maps sim method names that park the calling goroutine.
// (Env.Run is included: re-entering the scheduler from a callback
// panics.) Try* variants are non-blocking and legal.
var blocking = map[string]bool{
	"Sleep":      true, // (*Proc)
	"SleepUntil": true, // (*Proc)
	"Get":        true, // (*Queue[T])
	"Put":        true, // (*Queue[T])
	"Use":        true, // (*Server)
	"Wait":       true, // (*Signal)
	"Run":        true, // (*Env): re-entry panics
}

var Analyzer = &analysis.Analyzer{
	Name: "schedblock",
	Doc:  "flag blocking sim operations (Proc.Sleep, Queue.Get/Put, Server.Use, Signal.Wait) inside Env.At/Env.After callbacks",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || pass.IsTestFile(call.Pos()) {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[sel.Sel]
		if !analysis.IsSimFunc(obj, "At", "After") || len(call.Args) == 0 {
			return true
		}
		// Env.At(t, fn) / Env.After(d, fn): the callback is the last arg.
		lit, ok := call.Args[len(call.Args)-1].(*ast.FuncLit)
		if !ok {
			return true
		}
		checkCallback(pass, sel.Sel.Name, lit)
		return true
	})
	return nil
}

// checkCallback reports blocking sim calls made directly by the
// callback body (nested function literals excluded — they run in some
// other context, typically as Env.Go processes).
func checkCallback(pass *analysis.Pass, sched string, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.FuncLit); ok && inner != lit {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[sel.Sel]
		if !analysis.IsSimFunc(obj) || !blocking[sel.Sel.Name] {
			return true
		}
		if !hasRecv(pass, sel) {
			return true
		}
		pass.Reportf(call.Pos(),
			"sim.%s blocks, but Env.%s callbacks run in scheduler context and must not block (sim/env.go); wake a process instead (Signal.Fire, Queue.TryPut, Env.Go)",
			sel.Sel.Name, sched)
		return true
	})
}

func hasRecv(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	s, ok := pass.TypesInfo.Selections[sel]
	return ok && s.Kind() == types.MethodVal
}
