package sim

import (
	"fmt"
	"testing"
)

// TestWheelMatchesHeapRandomOps is the structural differential test
// pinning the timer wheel to the reference heap: random interleavings of
// pushes (quantized offsets to force same-instant ties, plus far-future
// times that land on the overflow levels) and pops must yield the exact
// same (at, seq) sequence from both stores, with peekAt agreeing before
// every pop.
func TestWheelMatchesHeapRandomOps(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		var w timerWheel
		var h eventHeap
		rng := uint64(trial)*0x5851f42d4c957f2d + 1
		now := Time(0)
		var seq uint64
		live := 0
		step := func(what string) {
			t.Helper()
			wa, wok := w.peekAt()
			if !wok || wa != h[0].at {
				t.Fatalf("trial %d %s: peekAt = (%d, %v), heap min %d", trial, what, wa, wok, h[0].at)
			}
			we, he := w.popMin(), h.pop()
			if we.at != he.at || we.seq != he.seq {
				t.Fatalf("trial %d %s: wheel popped (at=%d seq=%d), heap (at=%d seq=%d)",
					trial, what, we.at, we.seq, he.at, he.seq)
			}
			now = we.at
			live--
		}
		for op := 0; op < 4000; op++ {
			if live == 0 || splitmix64(&rng)%3 != 0 {
				n := 1 + int(splitmix64(&rng)%4)
				for i := 0; i < n; i++ {
					// Engine contract: the wheel only ever receives strictly
					// future events (same-instant schedules go to imm).
					var off Time
					switch splitmix64(&rng) % 8 {
					case 0, 1, 2, 3:
						// Quantized near offsets: collisions at one instant
						// are common, exercising tie staging.
						off = Time(1+splitmix64(&rng)%8) * 1000
					case 4, 5:
						off = Time(1 + splitmix64(&rng)%1_000_000)
					case 6:
						off = Time(1<<40) + Time(splitmix64(&rng)%4)*1000
					default:
						// Overflow level: beyond 2^60 picoseconds.
						off = Time(1<<61) + Time(splitmix64(&rng)%2)
					}
					seq++
					ev := event{at: now + off, seq: seq}
					w.push(ev)
					h.push(ev)
					live++
				}
			} else {
				step("interleaved")
			}
		}
		for live > 0 {
			step("drain")
		}
		if w.len() != 0 {
			t.Fatalf("trial %d: wheel reports %d events after drain", trial, w.len())
		}
		if _, ok := w.peekAt(); ok {
			t.Fatalf("trial %d: peekAt ok on drained wheel", trial)
		}
	}
}

// refSched mirrors Env's event loop semantics on the reference heap:
// same clamp-to-now rule, same imm ring for same-instant schedules, same
// wheel-before-imm rule at one instant, same horizon behavior. The
// program-level differential test runs identical callback programs
// through a real Env (wheel-backed) and through this, and compares
// execution logs.
type refSched struct {
	now  Time
	seq  uint64
	heap eventHeap
	imm  Ring[event]
}

func (r *refSched) schedule(at Time, fn func()) {
	if at < r.now {
		at = r.now
	}
	r.seq++
	ev := event{at: at, seq: r.seq, fn: fn}
	if at == r.now {
		r.imm.PushBack(ev)
		return
	}
	r.heap.push(ev)
}

func (r *refSched) run(until Time) {
	for {
		var ev event
		switch {
		case len(r.heap) > 0 && r.heap[0].at == r.now:
			ev = r.heap.pop()
		case r.imm.Len() > 0:
			ev = r.imm.PopFront()
		case len(r.heap) > 0:
			if until > 0 && r.heap[0].at > until {
				r.now = until
				return
			}
			ev = r.heap.pop()
		default:
			return
		}
		r.now = ev.at
		ev.fn()
	}
}

// wheelProgram is a deterministic self-scheduling callback workload: each
// executed callback logs (now, id) and schedules 0–2 children at offsets
// drawn from its id-seeded generator — zero offsets (imm path), near
// offsets (tie-heavy), and far-future offsets (overflow levels). Because
// a callback's behavior depends only on its id, identical execution
// orders produce identical logs, and any ordering divergence between the
// two schedulers cascades into a log difference.
type wheelProgram struct {
	log    []string
	issued int
	limit  int
	seed   uint64
	sched  func(at Time, fn func())
	nowFn  func() Time
}

func (pr *wheelProgram) spawn(id int) func() {
	return func() {
		now := pr.nowFn()
		pr.log = append(pr.log, fmt.Sprintf("t=%d id=%d", now, id))
		rng := pr.seed ^ (uint64(id)+1)*0x9e3779b97f4a7c15
		kids := int(splitmix64(&rng) % 3)
		for k := 0; k < kids && pr.issued < pr.limit; k++ {
			var off Time
			switch splitmix64(&rng) % 6 {
			case 0:
				off = 0 // same instant: imm ring
			case 1, 2:
				off = Time(splitmix64(&rng)%5) * 700 // near, tie-prone (may be 0)
			case 3:
				off = Time(1 + splitmix64(&rng)%1_000_000)
			case 4:
				off = Time(1<<41) + Time(splitmix64(&rng)%3)*500
			default:
				off = Time(1<<61) + Time(splitmix64(&rng)%2) // overflow level
			}
			id2 := pr.issued
			pr.issued++
			pr.sched(now+off, pr.spawn(id2))
		}
	}
}

func (pr *wheelProgram) seedRoots(roots int) {
	rng := pr.seed
	for i := 0; i < roots; i++ {
		at := Time(splitmix64(&rng) % 3000)
		id := pr.issued
		pr.issued++
		pr.sched(at, pr.spawn(id))
	}
}

// TestEnvWheelDifferentialPrograms runs randomized self-scheduling
// programs through a wheel-backed Env and the heap-backed reference
// scheduler and requires byte-identical execution logs — including
// same-instant imm interleavings, horizon-bounded runs that strand
// far-future events in the wheel, and Close on the still-populated wheel
// afterwards.
func TestEnvWheelDifferentialPrograms(t *testing.T) {
	for trial := 0; trial < 12; trial++ {
		seed := uint64(trial)*0x9e3779b97f4a7c15 + 7
		// Odd trials stop at a mid-run horizon, leaving the far-future
		// events stranded; even trials run to completion.
		var horizon Time
		if trial%2 == 1 {
			horizon = Time(1 << 42)
		}

		env := NewEnv()
		pe := &wheelProgram{limit: 300, seed: seed, sched: env.At, nowFn: env.Now}
		pe.seedRoots(8)
		env.Run(horizon)
		envNow := env.Now()
		envNext, envPending := env.NextEventAt()
		env.Close() // wheel may still hold far-future events: reset path
		env.Close() // idempotent

		ref := &refSched{}
		pr := &wheelProgram{limit: 300, seed: seed, sched: ref.schedule, nowFn: func() Time { return ref.now }}
		pr.seedRoots(8)
		ref.run(horizon)

		if len(pe.log) != len(pr.log) {
			t.Fatalf("trial %d: env executed %d callbacks, reference %d", trial, len(pe.log), len(pr.log))
		}
		for i := range pe.log {
			if pe.log[i] != pr.log[i] {
				t.Fatalf("trial %d: execution logs diverge at step %d: env %q, reference %q",
					trial, i, pe.log[i], pr.log[i])
			}
		}
		if envNow != ref.now {
			t.Fatalf("trial %d: env clock %d, reference %d", trial, envNow, ref.now)
		}
		refPending := len(ref.heap) > 0
		if envPending != refPending {
			t.Fatalf("trial %d: env pending=%v, reference pending=%v", trial, envPending, refPending)
		}
		if envPending && envNext != ref.heap[0].at {
			t.Fatalf("trial %d: env NextEventAt %d, reference min %d", trial, envNext, ref.heap[0].at)
		}
	}
}

// TestEnvNextEventAtEdgeCases covers the peek path the window scheduler
// depends on: empty environment, overflow-level far-future events,
// repeated (cached) peeks, cache invalidation by an earlier push, the
// imm fast path, and a horizon run that leaves the far event pending.
func TestEnvNextEventAtEdgeCases(t *testing.T) {
	env := NewEnv()
	defer env.Close()
	if at, ok := env.NextEventAt(); ok {
		t.Fatalf("empty env: NextEventAt = (%d, true), want none", at)
	}
	far := Time(1<<61) + 12345 // overflow level of the wheel
	env.At(far, func() {})
	for i := 0; i < 3; i++ { // repeated peeks must not restructure or drift
		if at, ok := env.NextEventAt(); !ok || at != far {
			t.Fatalf("peek %d: NextEventAt = (%d, %v), want (%d, true)", i, at, ok, far)
		}
	}
	near := Time(1000)
	env.At(near, func() {}) // strictly earlier: must displace the cached min
	if at, ok := env.NextEventAt(); !ok || at != near {
		t.Fatalf("after near push: NextEventAt = (%d, %v), want (%d, true)", at, ok, near)
	}
	env.At(0, func() {}) // at == now: imm ring, reported at the current instant
	if at, ok := env.NextEventAt(); !ok || at != 0 {
		t.Fatalf("with imm pending: NextEventAt = (%d, %v), want (0, true)", at, ok)
	}
	if end := env.Run(Time(2000)); end != Time(2000) {
		t.Fatalf("Run(2000) returned %d", end)
	}
	if at, ok := env.NextEventAt(); !ok || at != far {
		t.Fatalf("after horizon run: NextEventAt = (%d, %v), want (%d, true)", at, ok, far)
	}
	if end := env.Run(0); end != far {
		t.Fatalf("run to completion ended at %d, want %d", end, far)
	}
	if at, ok := env.NextEventAt(); ok {
		t.Fatalf("drained env: NextEventAt = (%d, true), want none", at)
	}
}

// TestWheelReset: reset drops all events and storage; the wheel is
// immediately reusable from a zero base.
func TestWheelReset(t *testing.T) {
	var w timerWheel
	for i := 0; i < 100; i++ {
		w.push(event{at: Time(i+1) * 1000, seq: uint64(i + 1)})
	}
	w.popMin() // advance base, stage nothing, exercise freelist
	w.reset()
	if w.len() != 0 {
		t.Fatalf("len %d after reset", w.len())
	}
	if _, ok := w.peekAt(); ok {
		t.Fatal("peekAt ok after reset")
	}
	w.push(event{at: 5, seq: 1})
	if at, ok := w.peekAt(); !ok || at != 5 {
		t.Fatalf("reused wheel peek = (%d, %v), want (5, true)", at, ok)
	}
}
