package pcie

import (
	"math"
	"testing"

	"packetshader/internal/model"
	"packetshader/internal/sim"
)

// TestLinkReproducesTable1 drives sequential copies through an otherwise
// idle link and checks the achieved MB/s against the paper's Table 1.
func TestLinkReproducesTable1(t *testing.T) {
	cases := []struct {
		size     int
		h2d, d2h float64
	}{
		{256, 55, 63},
		{4096, 759, 786},
		{65536, 4046, 2848},
		{1048576, 5577, 3394},
	}
	for _, c := range cases {
		env := sim.NewEnv()
		ioh := NewIOH(env, 0)
		link := NewLink(env, ioh, "gpu0")
		const reps = 50
		var h2dDur, d2hDur sim.Duration
		env.Go("copier", func(p *sim.Proc) {
			start := p.Now()
			for i := 0; i < reps; i++ {
				link.CopyH2D(p, c.size)
			}
			h2dDur = sim.Duration(p.Now() - start)
			start = p.Now()
			for i := 0; i < reps; i++ {
				link.CopyD2H(p, c.size)
			}
			d2hDur = sim.Duration(p.Now() - start)
		})
		env.Run(0)
		gotH2D := float64(c.size*reps) / h2dDur.Seconds() / 1e6
		gotD2H := float64(c.size*reps) / d2hDur.Seconds() / 1e6
		if rel := math.Abs(gotH2D-c.h2d) / c.h2d; rel > 0.15 {
			t.Errorf("%dB h2d = %.0f MB/s, Table 1 says %.0f", c.size, gotH2D, c.h2d)
		}
		if rel := math.Abs(gotD2H-c.d2h) / c.d2h; rel > 0.15 {
			t.Errorf("%dB d2h = %.0f MB/s, Table 1 says %.0f", c.size, gotD2H, c.d2h)
		}
	}
}

// TestIOHUpCapacity saturates one IOH with device→host DMA and verifies
// it sustains ≈30 Gbps (the per-hub RX ceiling behind Figure 6).
func TestIOHUpCapacity(t *testing.T) {
	env := sim.NewEnv()
	ioh := NewIOH(env, 0)
	const chunk = 64 * 1024
	var moved int
	env.Go("dma", func(p *sim.Proc) {
		for p.Now() < sim.Time(10*sim.Millisecond) {
			done := ioh.ScheduleUp(chunk)
			moved += chunk
			p.SleepUntil(done)
		}
	})
	env.Run(sim.Time(10 * sim.Millisecond))
	gbps := float64(moved) * 8 / 10e-3 / 1e9
	want := model.IOHUpBps * 8 / 1e9
	if gbps < want*0.95 || gbps > want*1.05 {
		t.Errorf("IOH up throughput = %.1f Gbps, want ≈%.0f", gbps, want)
	}
}

// TestIOHBalancedForwarding models forwarding: every byte that comes up
// (RX DMA) goes back down (TX DMA). The coupled streams must settle at
// ≈20.5 Gbps each per hub — 41 Gbps of forwarding across two hubs, the
// paper's plateau.
func TestIOHBalancedForwarding(t *testing.T) {
	env := sim.NewEnv()
	ioh := NewIOH(env, 0)
	const chunk = 16 * 1024
	var moved int
	env.Go("fwd-dma", func(p *sim.Proc) {
		for p.Now() < sim.Time(10*sim.Millisecond) {
			upDone := ioh.ScheduleUp(chunk)
			downDone := ioh.ScheduleDown(chunk)
			if downDone < upDone {
				downDone = upDone
			}
			p.SleepUntil(downDone)
			moved += chunk
		}
	})
	env.Run(sim.Time(10 * sim.Millisecond))
	gbps := float64(moved) * 8 / 10e-3 / 1e9
	// The up engine binds: r(1+κ)/U = 1 → r = 30/1.465 ≈ 20.5 Gbps.
	want := model.IOHUpBps * 8 / (1 + model.IOHKappa) / 1e9
	if math.Abs(gbps-want) > 2 {
		t.Errorf("balanced forwarding = %.1f Gbps each way, want ≈%.1f", gbps, want)
	}
}

// TestIOHDownAloneExceedsLineRate: TX-only must not be IOH-limited
// (Figure 6 TX reaches the 80 Gbps line rate; each hub carries 40).
func TestIOHDownAloneExceedsLineRate(t *testing.T) {
	env := sim.NewEnv()
	ioh := NewIOH(env, 0)
	const chunk = 64 * 1024
	var moved int
	env.Go("dma", func(p *sim.Proc) {
		for p.Now() < sim.Time(10*sim.Millisecond) {
			p.SleepUntil(ioh.ScheduleDown(chunk))
			moved += chunk
		}
	})
	env.Run(sim.Time(10 * sim.Millisecond))
	gbps := float64(moved) * 8 / 10e-3 / 1e9
	if gbps < 40 {
		t.Errorf("IOH down throughput = %.1f Gbps, must exceed the 40 Gbps/hub line rate", gbps)
	}
}

// TestLinkContention: two processes sharing one link direction halve
// their individual throughput.
func TestLinkContention(t *testing.T) {
	env := sim.NewEnv()
	ioh := NewIOH(env, 0)
	link := NewLink(env, ioh, "gpu0")
	var aDone, bDone sim.Time
	env.Go("a", func(p *sim.Proc) {
		link.CopyH2D(p, 1<<20)
		aDone = p.Now()
	})
	env.Go("b", func(p *sim.Proc) {
		link.CopyH2D(p, 1<<20)
		bDone = p.Now()
	})
	env.Run(0)
	one := model.H2DTime(1 << 20)
	if aDone < sim.Time(one) || bDone < sim.Time(2*one)*9/10 {
		t.Errorf("contention not serialized: a=%v b=%v one=%v", aDone, bDone, one)
	}
}

// TestUpDownIndependentOnLink: PCIe is full duplex — opposite directions
// on one link do not queue behind each other (only the IOH couples
// them, mildly).
func TestUpDownIndependentOnLink(t *testing.T) {
	env := sim.NewEnv()
	ioh := NewIOH(env, 0)
	link := NewLink(env, ioh, "gpu0")
	var h2dDone, d2hDone sim.Time
	env.Go("h2d", func(p *sim.Proc) {
		link.CopyH2D(p, 1<<20)
		h2dDone = p.Now()
	})
	env.Go("d2h", func(p *sim.Proc) {
		link.CopyD2H(p, 1<<20)
		d2hDone = p.Now()
	})
	env.Run(0)
	soloH2D := model.H2DTime(1 << 20)
	soloD2H := model.D2HTime(1 << 20)
	// Each must finish well before the sum of both solo times (which is
	// what a half-duplex model would give). The IOH adds only
	// size/capacity ≈ 130-270µs... actually IOH fabric is shared: allow
	// the max of (link, ioh-queued) but not full serialization of link
	// times.
	sum := sim.Time(soloH2D + soloD2H)
	if h2dDone >= sum && d2hDone >= sum {
		t.Errorf("directions fully serialized: h2d=%v d2h=%v sum=%v", h2dDone, d2hDone, sum)
	}
}

func TestLinkRetrainHalvesBeta(t *testing.T) {
	const size = 1 << 20
	copyTime := func(l *Link, env *sim.Env) (h2d, d2h sim.Duration) {
		env.Go("copier", func(p *sim.Proc) {
			start := p.Now()
			l.CopyH2D(p, size)
			h2d = sim.Duration(p.Now() - start)
			start = p.Now()
			l.CopyD2H(p, size)
			d2h = sim.Duration(p.Now() - start)
		})
		env.Run(0)
		return
	}
	env := sim.NewEnv()
	link := NewLink(env, NewIOH(env, 0), "gpu0")
	if link.RetrainDivisor() != 1 {
		t.Fatalf("fresh link divisor = %d", link.RetrainDivisor())
	}
	h2dFull, d2hFull := copyTime(link, env)

	link.SetRetrain(2)
	h2dHalf, d2hHalf := copyTime(link, env)
	// Halving β doubles only the size/β term; α is unchanged.
	wantH2D := h2dFull + sim.DurationFromSeconds(size/model.PCIeH2DBetaBps)
	wantD2H := d2hFull + sim.DurationFromSeconds(size/model.PCIeD2HBetaBps)
	tol := func(got, want sim.Duration) bool {
		diff := float64(got - want)
		return math.Abs(diff) < 0.01*float64(want)
	}
	if !tol(h2dHalf, wantH2D) {
		t.Errorf("retrained H2D = %v, want ≈%v (full %v)", h2dHalf, wantH2D, h2dFull)
	}
	if !tol(d2hHalf, wantD2H) {
		t.Errorf("retrained D2H = %v, want ≈%v (full %v)", d2hHalf, wantD2H, d2hFull)
	}

	link.SetRetrain(1)
	h2dBack, _ := copyTime(link, env)
	if h2dBack != h2dFull {
		t.Errorf("restored H2D = %v, want %v", h2dBack, h2dFull)
	}
	link.SetRetrain(0) // clamps to 1
	if link.RetrainDivisor() != 1 {
		t.Errorf("divisor after SetRetrain(0) = %d, want 1", link.RetrainDivisor())
	}
}
