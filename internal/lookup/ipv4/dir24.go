// Package ipv4 implements the DIR-24-8-BASIC longest-prefix-match scheme
// of Gupta, Lin and McKeown (INFOCOM 1998), the algorithm PacketShader
// uses for IPv4 forwarding (§6.2.1): a 2^24-entry first-level table
// resolves most lookups in one memory access; prefixes longer than /24
// indirect into 256-entry second-level segments, costing one more access.
package ipv4

import (
	"errors"

	"packetshader/internal/packet"
	"packetshader/internal/route"
)

const (
	tbl24Size = 1 << 24
	// longFlag marks a TBL24 entry as a pointer into TBLlong.
	longFlag = 0x8000
	// missEntry is the in-table miss sentinel. Next hops are stored
	// biased by one so the sentinel is the ZERO value: a fresh table is
	// all-miss straight out of make(), sparing Build a 16M-cell fill
	// that dominated table-construction CPU profiles.
	missEntry = 0
	// MaxNextHop is the largest next-hop index the 15-bit biased
	// encoding can store (hop+1 must stay below longFlag).
	MaxNextHop = 0x7ffe
)

// ErrNextHopRange reports a next hop too large for the 15-bit encoding.
var ErrNextHopRange = errors.New("ipv4: next hop exceeds MaxNextHop")

// ErrTooManySegments reports more than 2^15 distinct /24 blocks with
// long prefixes (cannot be encoded in a TBL24 pointer).
var ErrTooManySegments = errors.New("ipv4: too many TBLlong segments")

// Table is a built DIR-24-8 lookup structure. It is immutable after
// Build; the FIB double-buffering in internal/route swaps whole Tables.
type Table struct {
	tbl24   []uint16
	tblLong []uint16
	// nLong counts how many /24 blocks required a second-level segment.
	nLong int
}

// Build constructs a Table from a route set. Entries may arrive in any
// order; longer prefixes take precedence, as LPM requires.
func Build(entries []route.Entry) (*Table, error) {
	// Insert shortest first so longer prefixes overwrite. A counting
	// sort over the 33 possible lengths is stable (order within a length
	// is preserved), so the insertion order — and the built table — is
	// exactly what sort.SliceStable produced, without the reflection
	// overhead that showed in Build profiles.
	var byLen [33]int
	for _, e := range entries {
		byLen[e.Prefix.Len]++
	}
	offs := 0
	for l := range byLen {
		offs, byLen[l] = offs+byLen[l], offs
	}
	sorted := make([]route.Entry, len(entries))
	for _, e := range entries {
		sorted[byLen[e.Prefix.Len]] = e
		byLen[e.Prefix.Len]++
	}
	t := &Table{tbl24: make([]uint16, tbl24Size)}
	for _, e := range sorted {
		if e.NextHop > MaxNextHop {
			return nil, ErrNextHopRange
		}
		if e.Prefix.Len <= 24 {
			t.insertShort(e)
			continue
		}
		if err := t.insertLong(e); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func (t *Table) insertShort(e route.Entry) {
	base := uint32(e.Prefix.Addr) >> 8
	count := uint32(1) << (24 - e.Prefix.Len)
	for i := uint32(0); i < count; i++ {
		idx := base + i
		cur := t.tbl24[idx]
		if cur&longFlag != 0 {
			// A longer-than-/24 prefix already expanded this block;
			// fill only the second-level cells still pointing at the
			// previous shorter prefix. Because we insert in increasing
			// length order, every cell not equal to a longer prefix's
			// hop belongs to the shorter route being replaced — but we
			// cannot distinguish hops by value alone, so DIR-24-8
			// builds avoid the case by inserting short before long.
			// This branch is unreachable under sorted insertion; keep
			// it correct anyway by overwriting only miss cells.
			seg := int(cur&^uint16(longFlag)) << 8
			for j := 0; j < 256; j++ {
				if t.tblLong[seg+j] == missEntry {
					t.tblLong[seg+j] = e.NextHop + 1
				}
			}
			continue
		}
		t.tbl24[idx] = e.NextHop + 1
	}
}

func (t *Table) insertLong(e route.Entry) error {
	block := uint32(e.Prefix.Addr) >> 8
	cur := t.tbl24[block]
	var seg int
	if cur&longFlag != 0 {
		seg = int(cur&^uint16(longFlag)) << 8
	} else {
		// Allocate a fresh 256-entry segment seeded with the shorter
		// route (or miss) that covered the block.
		if t.nLong >= 1<<15 {
			return ErrTooManySegments
		}
		seg = t.nLong << 8
		t.nLong++
		for j := 0; j < 256; j++ {
			t.tblLong = append(t.tblLong, cur)
		}
		t.tbl24[block] = uint16(seg>>8) | longFlag
	}
	low := uint32(e.Prefix.Addr) & 0xff
	count := uint32(1) << (32 - e.Prefix.Len)
	for j := uint32(0); j < count; j++ {
		t.tblLong[seg+int(low+j)] = e.NextHop + 1
	}
	return nil
}

// Lookup returns the next hop for addr, or route.NoRoute.
func (t *Table) Lookup(addr packet.IPv4Addr) uint16 {
	hop, _ := t.LookupCounted(addr)
	return hop
}

// LookupCounted additionally reports the number of (modelled) memory
// accesses the lookup performed: 1 for a TBL24 hit, 2 through TBLlong.
func (t *Table) LookupCounted(addr packet.IPv4Addr) (uint16, int) {
	e := t.tbl24[uint32(addr)>>8]
	if e&longFlag == 0 {
		if e == missEntry {
			return route.NoRoute, 1
		}
		return e - 1, 1
	}
	v := t.tblLong[int(e&^uint16(longFlag))<<8|int(addr&0xff)]
	if v == missEntry {
		return route.NoRoute, 2
	}
	return v - 1, 2
}

// LookupBatch resolves a batch of destination addresses into hops. This
// is the exact function the GPU kernel runs, one thread per address.
func (t *Table) LookupBatch(addrs []packet.IPv4Addr, hops []uint16) {
	for i, a := range addrs {
		hops[i] = t.Lookup(a)
	}
}

// Segments returns the number of allocated TBLlong segments.
func (t *Table) Segments() int { return t.nLong }

// MemBytes returns the memory footprint of the lookup structure —
// relevant because it never fits a CPU cache (§6.2.1), which is what
// makes the workload memory-intensive.
func (t *Table) MemBytes() int {
	return 2 * (len(t.tbl24) + len(t.tblLong))
}
