package experiments

import "testing"

// TestChurnDeterministicAcrossRuns extends the determinism contract to
// the control-plane path: the churn experiment replays a scripted
// route-update storm, so two in-process runs must render byte-identical
// tables. (The CI run-twice gate checks the same property across
// processes.)
func TestChurnDeterministicAcrossRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("churn runs a multi-second storm; skipped with -short")
	}
	first := render(Churn())
	second := render(Churn())
	if first != second {
		t.Fatalf("churn output diverged:\n--- first ---\n%s--- second ---\n%s", first, second)
	}
	if len(first) == 0 {
		t.Fatal("churn rendered nothing")
	}
}
