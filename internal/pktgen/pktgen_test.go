package pktgen

import (
	"bytes"
	"testing"

	"packetshader/internal/lookup/ipv4"
	"packetshader/internal/lookup/ipv6"
	"packetshader/internal/packet"
	"packetshader/internal/pcap"
	"packetshader/internal/route"
	"packetshader/internal/sim"
)

func mkBuf(n int) *packet.Buf {
	pool := packet.NewBufPool(2048)
	return pool.Get(n)
}

func TestUDP4SourceDeterministic(t *testing.T) {
	s := &UDP4Source{Size: 64, Seed: 1}
	a, b := mkBuf(64), mkBuf(64)
	s.Fill(a, 2, 1, 77)
	s.Fill(b, 2, 1, 77)
	if string(a.Data) != string(b.Data) {
		t.Error("same (port,queue,seq) produced different frames")
	}
	s.Fill(b, 2, 1, 78)
	if string(a.Data) == string(b.Data) {
		t.Error("different seq produced identical frames")
	}
}

func TestUDP4SourceParsesAndVaries(t *testing.T) {
	s := &UDP4Source{Size: 64, Seed: 42}
	var d packet.Decoder
	dsts := map[packet.IPv4Addr]bool{}
	for i := 0; i < 1000; i++ {
		b := mkBuf(64)
		s.Fill(b, 0, 0, uint64(i))
		if len(b.Data) != 64 {
			t.Fatalf("frame size = %d", len(b.Data))
		}
		if err := d.Decode(b.Data); err != nil {
			t.Fatalf("frame %d does not parse: %v", i, err)
		}
		if !d.Has(packet.LayerUDP) {
			t.Fatalf("frame %d is not UDP", i)
		}
		if !packet.VerifyIPv4Checksum(b.Data[packet.EthHdrLen:]) {
			t.Fatalf("frame %d bad checksum", i)
		}
		dsts[d.IPv4.Dst] = true
	}
	if len(dsts) < 990 {
		t.Errorf("only %d distinct destinations in 1000 frames", len(dsts))
	}
}

func TestUDP4SourceHitsTable(t *testing.T) {
	entries := route.GenerateBGPTable(5000, 8, 3)
	tbl, err := ipv4.Build(entries)
	if err != nil {
		t.Fatal(err)
	}
	s := &UDP4Source{Size: 64, Seed: 9, Table: entries}
	var d packet.Decoder
	for i := 0; i < 2000; i++ {
		b := mkBuf(64)
		s.Fill(b, 1, 0, uint64(i))
		if err := d.Decode(b.Data); err != nil {
			t.Fatal(err)
		}
		if tbl.Lookup(d.IPv4.Dst) == route.NoRoute {
			t.Fatalf("generated destination %v misses the FIB", d.IPv4.Dst)
		}
	}
}

func TestUDP6SourceHitsTable(t *testing.T) {
	entries := route.GenerateIPv6Table(2000, 8, 4)
	tbl := ipv6.Build(entries)
	s := &UDP6Source{Size: 78, Seed: 10, Table: entries}
	var d packet.Decoder
	for i := 0; i < 1000; i++ {
		b := mkBuf(78)
		s.Fill(b, 0, 1, uint64(i))
		if err := d.Decode(b.Data); err != nil {
			t.Fatal(err)
		}
		if !d.Has(packet.LayerIPv6) {
			t.Fatal("not IPv6")
		}
		if tbl.Lookup(d.IPv6.Dst.Hi(), d.IPv6.Dst.Lo()) == route.NoRoute {
			t.Fatalf("generated IPv6 destination misses the FIB")
		}
	}
}

func TestUDP4SourceStamping(t *testing.T) {
	s := &UDP4Source{Size: 64, Seed: 5, Stamp: true}
	b := mkBuf(64)
	b.GenAt = sim.Time(123 * sim.Microsecond)
	s.Fill(b, 0, 0, 0)
	ts, ok := packet.Timestamp(b.Data)
	if !ok || ts != int64(b.GenAt) {
		t.Errorf("timestamp = %d,%v want %d", ts, ok, int64(b.GenAt))
	}
}

func TestLatencySinkStats(t *testing.T) {
	l := NewLatencySink()
	pool := packet.NewBufPool(128)
	for i := 1; i <= 10; i++ {
		b := pool.Get(64)
		b.GenAt = sim.Time(1) // 1 ps: nonzero (zero means unstamped)
		l.Observe(b, sim.Time(i)*sim.Time(10*sim.Microsecond))
	}
	if l.Count != 10 {
		t.Fatalf("count = %d", l.Count)
	}
	if m := l.MeanMicros(); m < 54 || m > 56 {
		t.Errorf("mean = %v µs, want 55", m)
	}
	if m := l.MinMicros(); m < 9.9 || m > 10.1 {
		t.Errorf("min = %v, want ≈10", m)
	}
	if m := l.MaxMicros(); m < 99.9 || m > 100.1 {
		t.Errorf("max = %v, want ≈100", m)
	}
	if p := l.PercentileMicros(0.5); p < 40 || p > 60 {
		t.Errorf("p50 = %v", p)
	}
	if p := l.PercentileMicros(0.99); p < 90 || p > 110 {
		t.Errorf("p99 = %v", p)
	}
}

func TestLatencySinkIgnoresUnstamped(t *testing.T) {
	l := NewLatencySink()
	pool := packet.NewBufPool(128)
	b := pool.Get(64) // GenAt zero
	l.Observe(b, sim.Time(100))
	if l.Count != 0 {
		t.Error("unstamped packet counted")
	}
}

func TestSplitmixSpreads(t *testing.T) {
	seen := map[uint64]bool{}
	for i := uint64(0); i < 10000; i++ {
		seen[splitmix64(i)] = true
	}
	if len(seen) != 10000 {
		t.Errorf("splitmix64 collisions: %d unique of 10000", len(seen))
	}
}

func TestReplaySourceRoundTrip(t *testing.T) {
	// Build a small capture, then replay it as a workload.
	var buf bytes.Buffer
	w := pcap.NewWriter(&buf, 0)
	var want [][]byte
	for i := 0; i < 5; i++ {
		b := mkBuf(64 + i*10)
		(&UDP4Source{Size: 64 + i*10, Seed: 3}).Fill(b, 0, 0, uint64(i))
		cp := make([]byte, len(b.Data))
		copy(cp, b.Data)
		want = append(want, cp)
		if err := w.WritePacket(sim.Time(i)*sim.Time(sim.Microsecond), b.Data); err != nil {
			t.Fatal(err)
		}
	}
	src, err := NewReplaySourceFromBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if src.Len() != 5 {
		t.Fatalf("len = %d", src.Len())
	}
	// seq 0..4 on port 0 queue 0 replays in order; seq 5 wraps.
	for i := 0; i < 6; i++ {
		b := mkBuf(2048)
		src.Fill(b, 0, 0, uint64(i))
		if string(b.Data) != string(want[i%5]) {
			t.Fatalf("frame %d differs from trace", i)
		}
	}
}

func TestReplaySourceEmptyCapture(t *testing.T) {
	var buf bytes.Buffer
	pcap.NewWriter(&buf, 0) // header never written without packets
	if _, err := NewReplaySourceFromBytes(buf.Bytes()); err == nil {
		t.Error("empty capture accepted")
	}
}

func TestReplaySourceFramesParse(t *testing.T) {
	// Frames written by the generator and replayed must still decode.
	var buf bytes.Buffer
	w := pcap.NewWriter(&buf, 0)
	gen := &UDP4Source{Size: 100, Seed: 8}
	for i := 0; i < 20; i++ {
		b := mkBuf(100)
		gen.Fill(b, 1, 2, uint64(i))
		w.WritePacket(0, b.Data)
	}
	src, err := NewReplaySourceFromBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	var d packet.Decoder
	for i := 0; i < 40; i++ {
		b := mkBuf(2048)
		src.Fill(b, 3, 1, uint64(i))
		if err := d.Decode(b.Data); err != nil {
			t.Fatalf("replayed frame %d does not parse: %v", i, err)
		}
	}
}

// TestSourcesMatchDirectBuild is the generator-level differential
// contract: the templated Fill path must emit exactly the bytes the
// direct BuildUDP4/BuildUDP6 construction emits for the same
// (port, queue, seq), across sizes, table/tableless flows, and both
// source kinds.
func TestSourcesMatchDirectBuild(t *testing.T) {
	entries4 := route.GenerateBGPTable(500, 8, 3)
	entries6 := route.GenerateIPv6Table(300, 8, 4)
	buf := make([]byte, 2048)
	for _, size := range []int{0, 60, 64, 65, 100, 1514} {
		for _, tbl := range []bool{false, true} {
			s4 := &UDP4Source{Size: size, Seed: 7}
			s6 := &UDP6Source{Size: size, Seed: 7}
			if tbl {
				s4.Table = entries4
				s6.Table = entries6
			}
			for i := 0; i < 200; i++ {
				port, queue, seq := i%4, i%2, uint64(i)
				b := mkBuf(2048)
				s4.Fill(b, port, queue, seq)
				r := splitmix64(s4.Seed ^ uint64(port)<<48 ^ uint64(queue)<<40 ^ seq)
				r2 := splitmix64(r)
				var dst packet.IPv4Addr
				if tbl {
					e := s4.Table[int(r%uint64(len(s4.Table)))]
					dst = packet.IPv4Addr(uint32(e.Prefix.Addr) | uint32(r2)&^e.Prefix.Mask())
				} else {
					dst = packet.IPv4Addr(uint32(r))
				}
				want := packet.BuildUDP4(buf, size, genSrcMAC, genDstMAC,
					packet.IPv4Addr(uint32(r2>>32)), dst, uint16(r2>>16), uint16(r2))
				if !bytes.Equal(b.Data, want) {
					t.Fatalf("UDP4 size %d tbl %v seq %d: templated frame differs from BuildUDP4", size, tbl, seq)
				}

				b6 := mkBuf(2048)
				s6.Fill(b6, port, queue, seq)
				r3 := splitmix64(r2)
				var dst6 packet.IPv6Addr
				if tbl {
					e := s6.Table[int(r%uint64(len(s6.Table)))]
					mh, ml := route.Mask6(e.Prefix6.Len)
					dst6 = packet.IPv6AddrFromParts(e.Prefix6.Hi|(r2&^mh), e.Prefix6.Lo|(r3&^ml))
				} else {
					dst6 = packet.IPv6AddrFromParts(r2, r3)
				}
				want6 := packet.BuildUDP6(buf, size, genSrcMAC, genDstMAC,
					packet.IPv6AddrFromParts(0x2001_0db8_0000_0000|r>>32, r), dst6,
					uint16(r3>>16), uint16(r3))
				if !bytes.Equal(b6.Data, want6) {
					t.Fatalf("UDP6 size %d tbl %v seq %d: templated frame differs from BuildUDP6", size, tbl, seq)
				}
			}
		}
	}
}
