package experiments

import (
	"fmt"

	"packetshader/internal/model"
	"packetshader/internal/packet"
	"packetshader/internal/pktio"
	"packetshader/internal/sim"
)

// ioWorkload selects what the packet-I/O harness measures (§4.6).
type ioWorkload int

const (
	wlRxOnly ioWorkload = iota
	wlTxOnly
	wlForward
	wlForwardCrossing
)

// ioHarness runs the §4.6 packet I/O benchmark: per node, CoresPerNode
// workers move packets with no application processing. It returns the
// measured throughput in wire Gbps (TX-delivered for TX/forwarding
// workloads, RX-fetched for RX-only).
func ioHarness(cfg pktio.Config, wl ioWorkload, pktSize int, window sim.Duration) float64 {
	env := sim.NewEnv()
	defer env.Close()
	e := pktio.New(env, cfg)
	rate := model.PortPacketRate(pktSize) / float64(cfg.QueuesPerPort)
	if wl != wlTxOnly {
		for _, p := range e.Ports {
			for _, q := range p.Rx {
				q.SetOffered(rate, pktSize, nil)
			}
		}
	}

	workersPerNode := model.CoresPerNode
	portsPerNode := cfg.Ports / cfg.Nodes
	var fetched uint64
	for n := 0; n < cfg.Nodes; n++ {
		for w := 0; w < workersPerNode; w++ {
			n, w := n, w
			// Each worker serves queue w of every port on its node.
			var ifaces []*pktio.Iface
			for pi := 0; pi < portsPerNode; pi++ {
				port := n*portsPerNode + pi
				if w < cfg.QueuesPerPort {
					ifaces = append(ifaces, e.OpenIface(port, w, n))
				}
			}
			env.Go("worker", func(p *sim.Proc) {
				ioWorkerLoop(p, e, cfg, wl, n, w, ifaces, pktSize, window, &fetched)
			})
		}
	}
	env.Run(sim.Time(window))
	if wl == wlRxOnly {
		var completed uint64
		for _, p := range e.Ports {
			for _, q := range p.Rx {
				completed += q.CompletedDMA()
			}
		}
		return float64(completed) * float64(model.WireBytes(pktSize)) * 8 /
			window.Seconds() / 1e9
	}
	return e.DeliveredGbps(0)
}

func ioWorkerLoop(p *sim.Proc, e *pktio.Engine, cfg pktio.Config, wl ioWorkload,
	node, wi int, ifaces []*pktio.Iface, pktSize int, window sim.Duration, fetched *uint64) {
	portsPerNode := cfg.Ports / cfg.Nodes
	outBase := node * portsPerNode
	if wl == wlForwardCrossing {
		outBase = ((node + 1) % cfg.Nodes) * portsPerNode
	}
	rr := 0
	// Reusable batch buffers: Send/Transmit consume their argument
	// synchronously, so one slice per worker serves every iteration.
	bufs := make([]*packet.Buf, cfg.BatchCap)
	var chunk []*packet.Buf
	for p.Now() < sim.Time(window) {
		switch wl {
		case wlTxOnly:
			// Synthesize and transmit; pace against ring backlog so the
			// simulation does not spin generating drops.
			port := e.Ports[outBase+rr%portsPerNode]
			rr++
			if port.Tx.Pending() > model.TxRingSize/2 {
				p.Sleep(20 * sim.Microsecond)
				continue
			}
			for i := range bufs {
				bufs[i] = e.Pool.Get(pktSize)
			}
			e.Send(p, node, port.ID, bufs)
		default:
			progress := false
			for range ifaces {
				f := ifaces[rr%len(ifaces)]
				rr++
				chunk = f.FetchChunk(p, cfg.BatchCap, chunk[:0])
				if len(chunk) == 0 {
					continue
				}
				progress = true
				*fetched += uint64(len(chunk))
				if wl == wlRxOnly {
					for _, b := range chunk {
						b.Release()
					}
					continue
				}
				out := outBase + (rr % portsPerNode)
				e.Send(p, node, out, chunk)
			}
			if !progress {
				if !ifaces[0].Wait(p) {
					return
				}
			}
		}
	}
}

// Table3 regenerates the paper's Table 3: the CPU cycle breakdown of
// receiving (and silently dropping) 64B packets through the unmodified
// skb-based driver path.
func Table3() *Result { return runSolo(table3) }

func table3(c *Ctx) *Result {
	r := &Result{
		ID:     "table3",
		Title:  "CPU cycle breakdown in packet RX (skb path, 64B)",
		Header: []string{"Functional bins", "Cycles", "Share", "paper"},
	}
	type out struct {
		bd pktio.Breakdown
		rx uint64
	}
	pt := MapPoints(c, 1, func(int, *Point) out {
		env := sim.NewEnv()
		defer env.Close()
		cfg := pktio.DefaultConfig()
		cfg.Nodes, cfg.Ports, cfg.QueuesPerPort = 1, 1, 1
		cfg.Mode = pktio.ModeSkb
		e := pktio.New(env, cfg)
		e.Ports[0].Rx[0].SetOffered(model.PortPacketRate(64), 64, nil)
		iface := e.OpenIface(0, 0, 0)
		env.Go("rx-drop", func(p *sim.Proc) {
			var chunk []*packet.Buf
			for p.Now() < sim.Time(10*sim.Millisecond) {
				chunk = iface.FetchChunk(p, 64, chunk[:0])
				for _, b := range chunk {
					b.Release()
				}
				if len(chunk) == 0 && !iface.Wait(p) {
					return
				}
			}
		})
		env.Run(sim.Time(10 * sim.Millisecond))
		rx, _, _, _ := e.AggregateStats()
		return out{e.RxBreakdown(), rx}
	})[0]
	bd, rx := pt.bd, pt.rx
	total := bd.Total()
	row := func(name string, cycles float64, paper string) {
		r.AddRow(name, fmt.Sprintf("%.0f", cycles/float64(rx)),
			fmt.Sprintf("%.1f%%", cycles/total*100), paper)
	}
	row("skb initialization", bd.SkbInit, "4.9%")
	row("skb (de)allocation", bd.SkbAlloc, "8.0%")
	row("memory subsystem", bd.MemSubsystem, "50.2%")
	row("NIC device driver", bd.Driver, "13.3%")
	row("others", bd.Others, "9.8%")
	row("compulsory cache misses", bd.CacheMisses, "13.8%")
	r.AddRow("total", fmt.Sprintf("%.0f", total/float64(rx)), "100.0%", "100.0%")
	r.Note("huge packet buffer + batching + prefetch eliminate the first five bins (§4.2-4.3)")
	return r
}

// Fig5 regenerates Figure 5: single-core RX+TX forwarding throughput of
// 64B packets over two 10GbE ports versus the batch size.
func Fig5() *Result { return runSolo(fig5) }

func fig5(c *Ctx) *Result {
	r := &Result{
		ID:     "fig5",
		Title:  "Effect of batch processing (1 core, 2 ports, 64B)",
		Header: []string{"Batch size", "Forwarding Gbps", "speedup"},
	}
	batches := []int{1, 2, 4, 8, 16, 32, 64, 128}
	gbps := MapPoints(c, len(batches), func(i int, _ *Point) float64 {
		cfg := pktio.DefaultConfig()
		cfg.Nodes, cfg.Ports, cfg.QueuesPerPort = 1, 2, 1
		cfg.BatchCap = batches[i]
		return fig5OneCore(cfg, 20*sim.Millisecond)
	})
	base := gbps[0] // batch size 1
	for i, batch := range batches {
		r.AddRow(fmt.Sprintf("%d", batch), fmt.Sprintf("%.2f", gbps[i]),
			fmt.Sprintf("%.1fx", gbps[i]/base))
	}
	r.Note("paper: 0.78 Gbps at batch 1, 10.5 at 64 (13.5x); gains stall past 32")
	return r
}

func fig5OneCore(cfg pktio.Config, window sim.Duration) float64 {
	env := sim.NewEnv()
	defer env.Close()
	e := pktio.New(env, cfg)
	rate := model.PortPacketRate(64)
	for _, p := range e.Ports {
		p.Rx[0].SetOffered(rate, 64, nil)
	}
	ifaces := []*pktio.Iface{e.OpenIface(0, 0, 0), e.OpenIface(1, 0, 0)}
	env.Go("worker", func(p *sim.Proc) {
		var chunk []*packet.Buf // reused: Send consumes it synchronously
		for p.Now() < sim.Time(window) {
			progress := false
			for i, f := range ifaces {
				chunk = f.FetchChunk(p, cfg.BatchCap, chunk[:0])
				if len(chunk) == 0 {
					continue
				}
				progress = true
				e.Send(p, 0, 1-i, chunk)
			}
			if !progress && !ifaces[0].Wait(p) {
				return
			}
		}
	})
	env.Run(sim.Time(window))
	return e.DeliveredGbps(0)
}

// Fig6 regenerates Figure 6: the packet I/O engine's RX-only, TX-only,
// forwarding, and node-crossing forwarding throughput versus packet
// size, on the full 8-core, 8-port machine.
func Fig6() *Result { return runSolo(fig6) }

func fig6(c *Ctx) *Result {
	r := &Result{
		ID:     "fig6",
		Title:  "Performance of the packet I/O engine (Gbps)",
		Header: []string{"Packet size", "RX", "TX", "Forward", "Node-crossing"},
	}
	window := 30 * sim.Millisecond
	sizes := []int{64, 128, 256, 512, 1024, 1514}
	workloads := []ioWorkload{wlRxOnly, wlTxOnly, wlForward, wlForwardCrossing}
	// One job per (packet size, workload) cell: each full-machine run is
	// independent, so the whole table fans out.
	vals := MapPoints(c, len(sizes)*len(workloads), func(k int, _ *Point) float64 {
		cfg := pktio.DefaultConfig()
		cfg.QueuesPerPort = model.CoresPerNode // 4 workers per node in §4.6
		return ioHarness(cfg, workloads[k%len(workloads)], sizes[k/len(workloads)], window)
	})
	for i, size := range sizes {
		row := vals[i*len(workloads) : (i+1)*len(workloads)]
		r.AddRow(fmt.Sprintf("%d", size),
			fmt.Sprintf("%.1f", row[0]), fmt.Sprintf("%.1f", row[1]),
			fmt.Sprintf("%.1f", row[2]), fmt.Sprintf("%.1f", row[3]))
	}
	r.Note("paper: TX 79.3-80.0, RX 53.1-59.9, forwarding > 40 for all sizes (41.1 at 64B)")
	r.Note("node-crossing forwarding also stays above 40 Gbps")
	return r
}

// NUMA regenerates the §4.5 comparison: NUMA-aware versus NUMA-blind
// packet I/O for 64B forwarding.
func NUMA() *Result { return runSolo(numa) }

func numa(c *Ctx) *Result {
	r := &Result{
		ID:     "numa",
		Title:  "NUMA-aware vs NUMA-blind packet I/O (64B forwarding)",
		Header: []string{"Placement", "Gbps"},
	}
	vals := MapPoints(c, 2, func(i int, _ *Point) float64 {
		cfg := pktio.DefaultConfig()
		cfg.QueuesPerPort = model.CoresPerNode
		if i == 0 {
			return ioHarness(cfg, wlForward, 64, 10*sim.Millisecond)
		}
		blind := cfg
		blind.NUMAAware = false
		// Blind placement: every worker serves a queue on every port, so
		// each port needs one RSS queue per worker machine-wide.
		blind.QueuesPerPort = model.CoresPerNode * cfg.Nodes
		return numaBlindForward(blind, 10*sim.Millisecond)
	})
	r.AddRow("NUMA-aware", fmt.Sprintf("%.1f", vals[0]))
	r.AddRow("NUMA-blind", fmt.Sprintf("%.1f", vals[1]))
	r.Note("paper: ~40 Gbps aware vs below 25 Gbps blind (≈60%% improvement)")
	return r
}

// numaBlindForward runs forwarding with workers serving remote-node
// queues: half the packets suffer remote-memory costs and their DMA
// crosses both hubs.
func numaBlindForward(cfg pktio.Config, window sim.Duration) float64 {
	env := sim.NewEnv()
	defer env.Close()
	e := pktio.New(env, cfg)
	rate := model.PortPacketRate(64) / float64(cfg.QueuesPerPort)
	for _, p := range e.Ports {
		for _, q := range p.Rx {
			q.SetOffered(rate, 64, nil)
		}
	}
	workersPerNode := model.CoresPerNode
	portsPerNode := cfg.Ports / cfg.Nodes
	for n := 0; n < cfg.Nodes; n++ {
		for w := 0; w < workersPerNode; w++ {
			n, w := n, w
			// Blind placement: each worker serves its own queue (by
			// machine-wide index) of EVERY port, local and remote.
			g := n*workersPerNode + w
			var ifaces []*pktio.Iface
			for port := 0; port < cfg.Ports; port++ {
				ifaces = append(ifaces, e.OpenIface(port, g, n))
			}
			env.Go("worker", func(p *sim.Proc) {
				rr := 0
				var chunk []*packet.Buf // reused: Send consumes it synchronously
				for p.Now() < sim.Time(window) {
					progress := false
					for range ifaces {
						f := ifaces[rr%len(ifaces)]
						rr++
						chunk = f.FetchChunk(p, cfg.BatchCap, chunk[:0])
						if len(chunk) == 0 {
							continue
						}
						progress = true
						out := n*portsPerNode + rr%portsPerNode
						e.Send(p, n, out, chunk)
					}
					if !progress && !ifaces[0].Wait(p) {
						return
					}
				}
			})
		}
	}
	env.Run(sim.Time(window))
	return e.DeliveredGbps(0)
}
