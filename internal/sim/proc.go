package sim

// Proc is a simulated process: a goroutine that advances virtual time by
// sleeping and by blocking on queues, servers, and signals. Exactly one
// process (or the scheduler loop in Env.drive) runs at any instant, so
// simulations are deterministic and need no locking.
type Proc struct {
	env    *Env
	name   string
	resume chan struct{}
	done   bool
	killed bool // terminated by Env.Close (written only on p's goroutine)
}

// Env returns the environment the process belongs to.
func (p *Proc) Env() *Env { return p.env }

// Name returns the name given at Go time (for debugging).
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.env.now }

// Go starts fn as a new process, scheduled to begin at the current virtual
// time (after already-queued events at the same instant).
func (e *Env) Go(name string, fn func(p *Proc)) *Proc {
	if e.closed {
		panic("sim: Env.Go on closed Env")
	}
	p := &Proc{env: e, name: name, resume: make(chan struct{})}
	e.nProcs++
	e.procs = append(e.procs, p)
	go func() {
		// p.killed is written only on this goroutine (here or in
		// checkClosed), so the deferred read below never races with the
		// rest of the simulation — unlike e.closed, which a dying
		// goroutine must not read after handing off the control token.
		defer func() {
			if p.killed {
				e.closeCh <- struct{}{}
			}
		}()
		<-p.resume // wait for first scheduling (or Close)
		if e.closed {
			p.killed = true
			p.done = true
			e.nProcs--
			return
		}
		fn(p)
		p.done = true
		e.nProcs--
		// This goroutine still holds the control token: keep driving the
		// event loop until control is handed to the next runnable process
		// (or the run terminates), then exit.
		e.drive(p, true)
	}()
	e.wake(p, e.now)
	return p
}

// yield returns control to the event loop and blocks until this
// process's next wakeup. If that wakeup is the next event, the process
// continues immediately — same goroutine, no channel operation.
func (p *Proc) yield() { p.env.drive(p, false) }

// Sleep advances the process by d of virtual time. Negative or zero
// durations still yield (allowing same-instant events to interleave
// deterministically in FIFO order).
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	env := p.env
	env.wake(p, env.now+Time(d))
	p.yield()
}

// SleepUntil sleeps until absolute time t (no-op if t is in the past,
// but still yields).
func (p *Proc) SleepUntil(t Time) {
	d := Duration(t - p.env.now)
	p.Sleep(d)
}
