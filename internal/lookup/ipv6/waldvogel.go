// Package ipv6 implements longest-prefix matching by binary search on
// prefix lengths (Waldvogel, Varghese, Turner, Plattner — SIGCOMM 1997),
// the algorithm PacketShader uses for IPv6 forwarding (§6.2.2). A lookup
// probes O(log L) per-length hash tables; marker entries seeded with
// their best-matching prefix steer the search toward longer lengths
// without backtracking. For 128-bit addresses this is the paper's
// "seven memory accesses" per lookup.
package ipv6

import (
	"sort"

	"packetshader/internal/route"
)

// key is a masked 128-bit address (the hash-table key at one length).
type key struct{ hi, lo uint64 }

// ent is a hash-table slot: it can simultaneously be a real prefix and a
// marker for longer prefixes sharing the same masked bits.
type ent struct {
	prefixHop uint16 // route.NoRoute if the slot is marker-only
	markerBmp uint16 // best-matching prefix at shorter lengths
	isMarker  bool
}

// node is one level of the balanced binary search tree over the distinct
// prefix lengths present in the table.
type node struct {
	length          uint8
	shorter, longer *node
}

// Table is a built IPv6 lookup structure, immutable after Build.
type Table struct {
	root    *node
	tables  map[uint8]map[key]ent
	lengths []uint8
	// maxDepth is the deepest search path (number of hash probes).
	maxDepth int
}

// Build constructs the search tree, inserts prefixes, plants markers
// along each prefix's search path, and precomputes marker BMPs.
func Build(entries []route.Entry6) *Table {
	t := &Table{tables: make(map[uint8]map[key]ent)}
	lengthSet := make(map[uint8]bool)
	for _, e := range entries {
		lengthSet[e.Prefix6.Len] = true
	}
	for l := range lengthSet {
		t.lengths = append(t.lengths, l)
		t.tables[l] = make(map[key]ent)
	}
	sort.Slice(t.lengths, func(i, j int) bool { return t.lengths[i] < t.lengths[j] })
	t.root = buildTree(t.lengths, &t.maxDepth, 1)

	// Insert prefixes and markers.
	for _, e := range entries {
		t.insert(e)
	}
	// Precompute each marker's best-matching prefix among strictly
	// shorter lengths: probe every shorter length's table.
	for l, tbl := range t.tables {
		for k, slot := range tbl {
			if !slot.isMarker {
				continue
			}
			slot.markerBmp = t.shorterBMP(k, l)
			tbl[k] = slot
		}
	}
	return t
}

func buildTree(lengths []uint8, maxDepth *int, depth int) *node {
	if len(lengths) == 0 {
		return nil
	}
	if depth > *maxDepth {
		*maxDepth = depth
	}
	mid := len(lengths) / 2
	return &node{
		length:  lengths[mid],
		shorter: buildTree(lengths[:mid], maxDepth, depth+1),
		longer:  buildTree(lengths[mid+1:], maxDepth, depth+1),
	}
}

func maskKey(hi, lo uint64, length uint8) key {
	mh, ml := route.Mask6(length)
	return key{hi & mh, lo & ml}
}

func (t *Table) insert(e route.Entry6) {
	n := t.root
	for n != nil {
		k := maskKey(e.Prefix6.Hi, e.Prefix6.Lo, n.length)
		switch {
		case n.length == e.Prefix6.Len:
			slot, ok := t.tables[n.length][k]
			if !ok {
				slot.markerBmp = route.NoRoute
			}
			slot.prefixHop = e.NextHop
			t.tables[n.length][k] = slot
			return
		case n.length < e.Prefix6.Len:
			// The search for this prefix's addresses passes through
			// this node going longer: plant a marker.
			slot, ok := t.tables[n.length][k]
			if !ok {
				slot.prefixHop = route.NoRoute
			}
			slot.isMarker = true
			t.tables[n.length][k] = slot
			n = n.longer
		default:
			n = n.shorter
		}
	}
}

// shorterBMP returns the hop of the longest prefix strictly shorter than
// length matching k.
func (t *Table) shorterBMP(k key, length uint8) uint16 {
	best := route.NoRoute
	for _, l := range t.lengths {
		if l >= length {
			break
		}
		kk := maskKey(k.hi, k.lo, l)
		if slot, ok := t.tables[l][kk]; ok && slot.prefixHop != route.NoRoute {
			best = slot.prefixHop
		}
	}
	return best
}

// Lookup returns the next hop for the address (hi, lo), or route.NoRoute.
func (t *Table) Lookup(hi, lo uint64) uint16 {
	hop, _ := t.LookupCounted(hi, lo)
	return hop
}

// LookupCounted additionally reports how many hash probes the search
// performed (the memory-access count charged by the cost model).
func (t *Table) LookupCounted(hi, lo uint64) (uint16, int) {
	best := route.NoRoute
	probes := 0
	n := t.root
	for n != nil {
		probes++
		k := maskKey(hi, lo, n.length)
		slot, ok := t.tables[n.length][k]
		if !ok {
			n = n.shorter
			continue
		}
		if slot.prefixHop != route.NoRoute {
			best = slot.prefixHop
		} else if slot.isMarker && slot.markerBmp != route.NoRoute {
			best = slot.markerBmp
		}
		if !slot.isMarker {
			break // a pure prefix slot: nothing longer exists this way
		}
		n = n.longer
	}
	return best, probes
}

// LookupBatch resolves a batch of addresses; this is the function the
// GPU kernel runs, one thread per address (§2.3, Figure 2).
func (t *Table) LookupBatch(his, los []uint64, hops []uint16) {
	for i := range his {
		hops[i] = t.Lookup(his[i], los[i])
	}
}

// MaxDepth returns the search-tree depth (worst-case probes).
func (t *Table) MaxDepth() int { return t.maxDepth }

// Lengths returns the distinct prefix lengths in the table.
func (t *Table) Lengths() []uint8 { return t.lengths }

// Entries returns the number of stored slots (prefixes + markers).
func (t *Table) Entries() int {
	n := 0
	for _, tbl := range t.tables {
		n += len(tbl)
	}
	return n
}
