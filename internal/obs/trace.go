// Package obs is the deterministic observability layer of the simulated
// router: a span tracer producing Chrome trace-event JSON (loadable in
// Perfetto / chrome://tracing), a metrics registry with counters and
// log-linear latency histograms, and a sampler that turns sim.Server
// busy accounting into per-resource occupancy timelines.
//
// Everything in this package obeys the repository's determinism
// contract: all timestamps are virtual (sim.Time picoseconds), events
// are recorded and exported in call order, registries iterate sorted
// slices (never maps), and the histogram bucket path is pure integer
// arithmetic. Two identical-seed runs therefore produce byte-identical
// trace and metrics output.
//
// A nil *Tracer (and nil metric handles) is valid and inert: every
// method nil-checks its receiver, so instrumented hot paths pay one
// predictable branch when observability is disabled.
package obs

import (
	"fmt"
	"io"
	"strings"

	"packetshader/internal/sim"
)

// TrackID identifies one timeline (a Perfetto "thread") registered with
// a Tracer. The zero value is the null track: events recorded against
// it on a nil Tracer are discarded.
type TrackID int32

// Arg is one integer key/value annotation attached to a trace event.
// Only integers are allowed: float formatting is a determinism hazard
// and every quantity in the simulation (counts, bytes, picoseconds) is
// integral.
type Arg struct {
	Key string
	Val int64
}

// eventKind discriminates trace event records.
type eventKind uint8

const (
	kindSpan    eventKind = iota // Chrome "X" complete event
	kindInstant                  // Chrome "i" instant event
	kindCounter                  // Chrome "C" counter event
)

type traceEvent struct {
	kind  eventKind
	track TrackID
	name  string
	at    sim.Time
	dur   sim.Duration
	args  []Arg
}

type track struct {
	process string // groups tracks into Perfetto processes
	name    string
	pid     int32
	tid     int32
}

// Tracer records virtual-time lifecycle events and exports them as
// Chrome trace-event JSON. Create one with NewTracer; a nil Tracer
// discards everything at the cost of a nil check.
type Tracer struct {
	tracks []track
	// pids maps process name -> pid in first-registration order. Small
	// linear slice: a handful of processes exist (workers, masters,
	// devices, resources).
	pids   []string
	events []traceEvent
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

// Enabled reports whether events are being recorded.
func (t *Tracer) Enabled() bool { return t != nil }

// Track registers (or finds) the timeline named name under the given
// process group and returns its ID. Tracks are identified by the
// (process, name) pair; registration order determines pid/tid
// assignment, so identical call sequences yield identical exports.
func (t *Tracer) Track(process, name string) TrackID {
	if t == nil {
		return 0
	}
	for i := range t.tracks {
		if t.tracks[i].process == process && t.tracks[i].name == name {
			return TrackID(i + 1)
		}
	}
	pid := int32(-1)
	for i, p := range t.pids {
		if p == process {
			pid = int32(i + 1)
			break
		}
	}
	if pid < 0 {
		t.pids = append(t.pids, process)
		pid = int32(len(t.pids))
	}
	tid := int32(1)
	for i := range t.tracks {
		if t.tracks[i].pid == pid {
			tid++
		}
	}
	t.tracks = append(t.tracks, track{process: process, name: name, pid: pid, tid: tid})
	return TrackID(len(t.tracks))
}

// Span records a complete event of duration d starting at start.
func (t *Tracer) Span(tr TrackID, name string, start sim.Time, d sim.Duration, args ...Arg) {
	if t == nil || tr == 0 {
		return
	}
	if d < 0 {
		d = 0
	}
	t.events = append(t.events, traceEvent{kind: kindSpan, track: tr, name: name, at: start, dur: d, args: args})
}

// SpanUntil records a complete event covering [start, end).
func (t *Tracer) SpanUntil(tr TrackID, name string, start, end sim.Time, args ...Arg) {
	t.Span(tr, name, start, sim.Duration(end-start), args...)
}

// Instant records a zero-duration marker at time at.
func (t *Tracer) Instant(tr TrackID, name string, at sim.Time, args ...Arg) {
	if t == nil || tr == 0 {
		return
	}
	t.events = append(t.events, traceEvent{kind: kindInstant, track: tr, name: name, at: at, args: args})
}

// Counter records a counter sample (rendered by Perfetto as a stepped
// area chart). val is carried as the single arg.
func (t *Tracer) Counter(tr TrackID, name string, at sim.Time, val int64) {
	if t == nil || tr == 0 {
		return
	}
	t.events = append(t.events, traceEvent{
		kind: kindCounter, track: tr, name: name, at: at,
		args: []Arg{{Key: "value", Val: val}},
	})
}

// Events returns the number of recorded events.
func (t *Tracer) Events() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// micros renders a picosecond quantity as a decimal microsecond string
// with six fractional digits — exact, no floating point. The Chrome
// trace "ts"/"dur" fields are microseconds.
func micros(ps int64) string {
	neg := ""
	if ps < 0 {
		neg, ps = "-", -ps
	}
	return fmt.Sprintf("%s%d.%06d", neg, ps/1_000_000, ps%1_000_000)
}

// quote escapes s as a JSON string literal. Trace names are plain ASCII
// identifiers in practice; this keeps arbitrary input valid anyway.
func quote(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b.WriteByte('\\')
			b.WriteByte(c)
		case c < 0x20:
			fmt.Fprintf(&b, "\\u%04x", c)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
	return b.String()
}

func writeArgs(w io.Writer, args []Arg) {
	io.WriteString(w, `,"args":{`)
	for i, a := range args {
		if i > 0 {
			io.WriteString(w, ",")
		}
		fmt.Fprintf(w, "%s:%d", quote(a.Key), a.Val)
	}
	io.WriteString(w, "}")
}

// WriteJSON exports the trace in Chrome trace-event JSON ("JSON object
// format"): process/thread name metadata first, then all events in
// record order. Open the file at https://ui.perfetto.dev or
// chrome://tracing.
func (t *Tracer) WriteJSON(w io.Writer) error {
	bw := &errWriter{w: w}
	io.WriteString(bw, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n")
	first := true
	sep := func() {
		if !first {
			io.WriteString(bw, ",\n")
		}
		first = false
	}
	if t != nil {
		// Metadata: one process_name per pid, one thread_name per track.
		for i, p := range t.pids {
			sep()
			fmt.Fprintf(bw, `{"ph":"M","pid":%d,"name":"process_name","args":{"name":%s}}`,
				i+1, quote(p))
		}
		for _, tr := range t.tracks {
			sep()
			fmt.Fprintf(bw, `{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":%s}}`,
				tr.pid, tr.tid, quote(tr.name))
		}
		for _, ev := range t.events {
			tr := t.tracks[ev.track-1]
			sep()
			switch ev.kind {
			case kindSpan:
				fmt.Fprintf(bw, `{"ph":"X","pid":%d,"tid":%d,"ts":%s,"dur":%s,"name":%s,"cat":"sim"`,
					tr.pid, tr.tid, micros(int64(ev.at)), micros(int64(ev.dur)), quote(ev.name))
			case kindInstant:
				fmt.Fprintf(bw, `{"ph":"i","pid":%d,"tid":%d,"ts":%s,"s":"t","name":%s,"cat":"sim"`,
					tr.pid, tr.tid, micros(int64(ev.at)), quote(ev.name))
			case kindCounter:
				fmt.Fprintf(bw, `{"ph":"C","pid":%d,"tid":%d,"ts":%s,"name":%s`,
					tr.pid, tr.tid, micros(int64(ev.at)), quote(ev.name))
			}
			if len(ev.args) > 0 {
				writeArgs(bw, ev.args)
			}
			io.WriteString(bw, "}")
		}
	}
	io.WriteString(bw, "\n]}\n")
	return bw.err
}

// errWriter latches the first write error so the export loop stays
// branch-free.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return len(p), nil
	}
	n, err := e.w.Write(p)
	if err != nil {
		e.err = err
	}
	return n, nil
}
