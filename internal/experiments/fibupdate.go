package experiments

import (
	"fmt"

	"packetshader/internal/apps"
	"packetshader/internal/core"
	"packetshader/internal/model"
	"packetshader/internal/pktgen"
	"packetshader/internal/route"
	"packetshader/internal/sim"

	lookupv4 "packetshader/internal/lookup/ipv4"
)

// FIBUpdate compares the two §7 FIB-update strategies under a BGP-like
// update churn while the data path forwards at full load: double
// buffering (rebuild the whole DIR-24-8 table off to the side, swap)
// versus incremental update (patch only the affected cells). The table
// reports the control-plane cost per update and the data-path
// throughput sustained during churn.
func FIBUpdate() *Result { return runSolo(fibUpdate) }

func fibUpdate(c *Ctx) *Result {
	r := &Result{
		ID:     "fibupdate",
		Title:  "FIB update strategies under churn (§7)",
		Header: []string{"Strategy", "Updates applied", "Cells touched/update", "Forwarding Gbps"},
	}
	entries, _ := BGPFixture()
	// The two strategies run as independent jobs; both only read the
	// shared fixture (base table + churn set are subslices, and each job
	// builds its own lookup structures from them).
	rows := MapPoints(c, 2, func(i int, _ *Point) []string {
		base := entries[:100000] // churn set drawn from the rest
		churn := entries[100000:101000]
		if i == 0 {
			return fibIncremental(base, churn)
		}
		return fibDoubleBuffer(base, churn)
	})
	r.Rows = append(r.Rows, rows...)
	r.Note("both keep the data path consistent; incremental touches ~2^(24-len) cells per update,")
	r.Note("double buffering pays a full 16M-cell rebuild per batch but never patches live cells")
	return r
}

// fibIncremental patches cells in place while traffic flows.
func fibIncremental(base, churn []route.Entry) []string {
	dyn, err := lookupv4.NewDynamic(base)
	if err != nil {
		panic(err)
	}
	env := sim.NewEnv()
	defer env.Close()
	cfg := core.DefaultConfig()
	cfg.PacketSize = 64
	app := &apps.IPv4Fwd{Table: &dyn.Table, NumPorts: model.NumPorts}
	router := core.New(env, cfg, app)
	router.SetSource(&pktgen.UDP4Source{Size: 64, Seed: 41, Table: base})
	router.Start()
	applied := 0
	var cells uint64
	env.Go("control-plane", func(p *sim.Proc) {
		for i := 0; ; i = (i + 1) % len(churn) {
			p.Sleep(20 * sim.Microsecond) // ≈50k updates/s of churn
			e := churn[i]
			if i%2 == 0 {
				if err := dyn.Insert(e); err != nil {
					return
				}
			} else {
				if _, err := dyn.Remove(e.Prefix); err != nil {
					return
				}
			}
			cells += uint64(1) << (24 - min(int(e.Prefix.Len), 24))
			applied++
		}
	})
	env.After(4*sim.Millisecond, router.ResetMeasurement)
	env.Run(sim.Time(8 * sim.Millisecond))
	return []string{"incremental", fmt.Sprintf("%d", applied),
		fmt.Sprintf("%.0f", float64(cells)/float64(applied)),
		fmt.Sprintf("%.1f", router.DeliveredGbps())}
}

// fibDoubleBuffer has the data path read one generation; each update
// batch triggers a full rebuild published atomically. (Batch size 100:
// rebuilding 100k prefixes per single update would be absurd, which is
// exactly the strategy's trade-off.)
func fibDoubleBuffer(base, churn []route.Entry) []string {
	rib := route.NewRIB()
	for _, e := range base {
		rib.Add(e.Prefix, e.NextHop)
	}
	first, err := lookupv4.Build(base)
	if err != nil {
		panic(err)
	}
	fib := route.NewFIB(first)
	env := sim.NewEnv()
	defer env.Close()
	cfg := core.DefaultConfig()
	cfg.PacketSize = 64
	app := &apps.IPv4Fwd{Table: fib.Active(), NumPorts: model.NumPorts}
	router := core.New(env, cfg, app)
	router.SetSource(&pktgen.UDP4Source{Size: 64, Seed: 41, Table: base})
	router.Start()
	applied := 0
	env.Go("control-plane", func(p *sim.Proc) {
		for i := 0; applied < 200; i = (i + 1) % len(churn) {
			p.Sleep(20 * sim.Microsecond)
			e := churn[i]
			if i%2 == 0 {
				rib.Add(e.Prefix, e.NextHop)
			} else {
				rib.Remove(e.Prefix)
			}
			applied++
			if applied%100 == 0 {
				// Rebuild off the data path and swap. The rebuild
				// cost lands on the control plane, not the workers.
				next, err := lookupv4.Build(rib.Entries())
				if err != nil {
					return
				}
				fib.Publish(next)
				app.Table = fib.Active()
			}
		}
	})
	env.After(4*sim.Millisecond, router.ResetMeasurement)
	env.Run(sim.Time(8 * sim.Millisecond))
	return []string{"double-buffer (batch 100)", fmt.Sprintf("%d", applied),
		fmt.Sprintf("%d", 1<<24), // full rebuild touches every cell
		fmt.Sprintf("%.1f", router.DeliveredGbps())}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
