package core

import (
	"strconv"

	"packetshader/internal/obs"
)

// routerObs holds the router's observability handles. A Router always
// carries one; until EnableObs installs a tracer/registry the handles
// are nil and therefore inert (the obs package's nil fast path), so the
// worker/master hot loops instrument unconditionally with no branches.
type routerObs struct {
	tr  *obs.Tracer
	reg *obs.Registry

	// workerTracks is indexed by worker id, masterTracks by NUMA node.
	// Zero (the null track) until EnableObs runs.
	workerTracks []obs.TrackID
	masterTracks []obs.TrackID

	// faultTrack carries the injector's event instants plus nothing
	// else, so fault timelines read separately from the pipeline.
	faultTrack obs.TrackID

	// chunkLatency measures fetch-complete → TX-handoff per chunk;
	// gpuWait measures time spent in the master input queue (§5.4
	// pipelining visibility); chunkSize and launchThreads record batch
	// sizes, the paper's central latency/throughput dial (Figure 2).
	// fallbackChunk records the sizes of chunks re-dispatched through
	// the CPU path after a GPU stall.
	chunkLatency  *obs.Histogram
	gpuWait       *obs.Histogram
	chunkSize     *obs.Histogram
	launchThreads *obs.Histogram
	fallbackChunk *obs.Histogram
}

func newRouterObs(workers, nodes int) *routerObs {
	return &routerObs{
		workerTracks: make([]obs.TrackID, workers),
		masterTracks: make([]obs.TrackID, nodes),
	}
}

// MetricsReporter is implemented by applications that export their own
// counters (e.g. the IPv4 slow-path count) into a metrics registry at
// dump time.
type MetricsReporter interface {
	ReportMetrics(reg *obs.Registry)
}

// EnableObs attaches a span tracer and/or metrics registry to the
// router. Either may be nil. Must be called before Start so that the
// per-thread tracks exist when the first span is recorded; track
// registration order (workers, then masters, then devices) is fixed,
// keeping trace output byte-identical across runs.
func (r *Router) EnableObs(tr *obs.Tracer, reg *obs.Registry) {
	o := r.obs
	o.tr = tr
	o.reg = reg
	for i := range r.workers {
		o.workerTracks[i] = tr.Track("workers", "worker"+strconv.Itoa(i))
	}
	for _, m := range r.masters {
		o.masterTracks[m.node] = tr.Track("masters", "master"+strconv.Itoa(m.node))
	}
	for _, dev := range r.Devices {
		dev.EnableTrace(tr)
	}
	o.faultTrack = tr.Track("faults", "injector")
	o.chunkLatency = reg.Histogram("core.chunk_latency", obs.UnitDuration)
	o.gpuWait = reg.Histogram("core.gpu_queue_wait", obs.UnitDuration)
	o.chunkSize = reg.Histogram("core.chunk_packets", obs.UnitCount)
	o.launchThreads = reg.Histogram("core.launch_threads", obs.UnitCount)
	o.fallbackChunk = reg.Histogram("core.fallback_chunk_packets", obs.UnitCount)
}

// ObserveStats snapshots the router's cumulative counters (framework,
// GPU devices, packet I/O engine, and the application's own, if it
// reports any) into the registry installed by EnableObs. Call at the
// end of a run, before dumping the registry.
func (r *Router) ObserveStats() {
	reg := r.obs.reg
	if reg == nil {
		return
	}
	reg.Counter("core.packets").Set(r.Stats.Packets)
	reg.Counter("core.chunks_cpu").Set(r.Stats.ChunksCPU)
	reg.Counter("core.chunks_gpu").Set(r.Stats.ChunksGPU)
	reg.Counter("core.gpu_launches").Set(r.Stats.GPULaunches)
	reg.Counter("core.app_drops").Set(r.Stats.Drops)
	reg.Counter("core.gpu_stalls").Set(r.Stats.GPUStalls)
	reg.Counter("core.fallback_chunks").Set(r.Stats.FallbackChunks)
	reg.Counter("core.degraded_time_ps").Set(uint64(r.DegradedTime()))
	for _, d := range r.Devices {
		n := strconv.Itoa(d.Node)
		reg.Counter("gpu" + n + ".launches").Set(d.Launches)
		reg.Counter("gpu" + n + ".threads_run").Set(d.ThreadsRun)
		reg.Counter("gpu" + n + ".stalls").Set(d.Stalls)
	}
	r.Engine.ObserveStats(reg)
	if mr, ok := r.App.(MetricsReporter); ok {
		mr.ReportMetrics(reg)
	}
}
