package cluster

import (
	"reflect"
	"testing"

	"packetshader/internal/faults"
	"packetshader/internal/sim"
)

// lsCfg is an 8-leaf-class leaf–spine fabric config with per-leaf uplink
// capacity Spines×Uplinks×10 Gbps.
func lsCfg(leaves, spines, uplinks int, m Matrix, workers int) FabricConfig {
	return FabricConfig{
		Topo: &LeafSpine{
			Leaves: leaves, Spines: spines, Uplinks: uplinks,
			EdgeGbps: 40, LeafGbps: 40, SpineGbps: 160, UplinkGbps: 10,
		},
		Matrix:      m,
		LinkLatency: 50 * sim.Microsecond,
		Horizon:     5 * sim.Millisecond,
		Seed:        42,
		Workers:     workers,
	}
}

// TestLeafSpineByteIdenticalAcrossWorkers extends the -p1==-pN
// determinism guarantee to the two-tier fabric, with Zipf flows and a
// fault plan in play — the full feature set of this topology.
func TestLeafSpineByteIdenticalAcrossWorkers(t *testing.T) {
	build := func(workers int) FabricConfig {
		cfg := lsCfg(8, 4, 2, Uniform(8, 80), workers)
		cfg.Flows = FlowModel{ZipfS: 1.2}
		cfg.Faults = faults.NewPlan().
			LinkFlap(0, 1*sim.Millisecond, 1*sim.Millisecond). // leaf 0, uplink slot 0
			GPUOutage(8, 2*sim.Millisecond, 1*sim.Millisecond) // spine 0 (node Leaves+0)
		return cfg
	}
	base, err := RunFabric(build(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 8} {
		got, err := RunFabric(build(w))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, base) {
			t.Errorf("workers=%d diverged:\n got %+v\nwant %+v", w, got, base)
		}
	}
}

// TestLeafSpineDeliversAdmissibleLoad: a uniform load well inside every
// budget (10 Gbps/leaf against 80 Gbps of uplinks) arrives nearly
// entirely, and a permutation batch crosses exactly three forwarders:
// ingress leaf, spine, egress leaf.
func TestLeafSpineDeliversAdmissibleLoad(t *testing.T) {
	res, err := RunFabric(lsCfg(8, 4, 2, Uniform(8, 80), 4))
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveredGbps < 0.9*res.OfferedGbps {
		t.Errorf("delivered %.1f of %.1f Gbps offered", res.DeliveredGbps, res.OfferedGbps)
	}
	if res.RouteDrops != 0 || res.NodeDrops != 0 {
		t.Errorf("healthy fabric dropped: route=%d node=%d", res.RouteDrops, res.NodeDrops)
	}
	perm, err := RunFabric(lsCfg(8, 4, 2, Permutation(8, 10), 4))
	if err != nil {
		t.Fatal(err)
	}
	if perm.MeanHops != 3 {
		t.Errorf("leaf-spine mean hops = %v, want exactly 3 (leaf→spine→leaf)", perm.MeanHops)
	}
	if perm.MeanLatency < sim.Duration(100*sim.Microsecond) {
		t.Errorf("mean latency %v below two link propagations", perm.MeanLatency)
	}
}

// TestLeafSpineECMPScalesWithSpines: under a permutation load that
// saturates one spine's worth of uplinks, adding spines must raise
// delivered throughput — the observable effect of ECMP actually
// spreading flows across the tier rather than pinning them to one path.
func TestLeafSpineECMPScalesWithSpines(t *testing.T) {
	run := func(spines int) float64 {
		cfg := lsCfg(8, spines, 1, Permutation(8, 30), 2)
		// Oversized forwarding budgets: the uplinks must be the only
		// bottleneck for the comparison to isolate ECMP.
		cfg.Topo.(*LeafSpine).LeafGbps = 160
		res, err := RunFabric(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.DeliveredGbps
	}
	one, four := run(1), run(4)
	if one <= 0 {
		t.Fatal("single-spine fabric delivered nothing")
	}
	if four < 2*one {
		t.Errorf("4 spines delivered %.1f Gbps vs %.1f with 1 — ECMP is not spreading", four, one)
	}
}

// TestLeafSpineUplinkFaultReroutes: with one of leaf 0's two uplinks
// down for the whole run, ECMP remaps its hash buckets onto the
// surviving link and nothing becomes unroutable.
func TestLeafSpineUplinkFaultReroutes(t *testing.T) {
	cfg := lsCfg(4, 2, 1, Uniform(4, 20), 2)
	cfg.Faults = faults.NewPlan().
		Add(faults.Event{At: 0, Kind: faults.KindLinkDown, Node: 0, Port: 0})
	res, err := RunFabric(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.RouteDrops != 0 {
		t.Errorf("RouteDrops = %d with a live alternate uplink", res.RouteDrops)
	}
	if res.DeliveredGbps < 0.9*res.OfferedGbps {
		t.Errorf("delivered %.1f of %.1f Gbps with one uplink down", res.DeliveredGbps, res.OfferedGbps)
	}
}

// TestLeafSpineAllUplinksDownBlackholes: with every uplink of leaf 0
// dead, its transit traffic is unroutable and counted in RouteDrops;
// traffic between the other leaves still flows.
func TestLeafSpineAllUplinksDownBlackholes(t *testing.T) {
	cfg := lsCfg(4, 2, 1, Uniform(4, 20), 2)
	plan := faults.NewPlan()
	for slot := 0; slot < 2; slot++ { // leaf 0's Spines×Uplinks slots
		plan.Add(faults.Event{At: 0, Kind: faults.KindLinkDown, Node: 0, Port: slot})
	}
	cfg.Faults = plan
	res, err := RunFabric(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.RouteDrops == 0 {
		t.Error("RouteDrops = 0 with every uplink of leaf 0 down")
	}
	if res.DeliveredGbps <= 0 || res.DeliveredGbps >= res.OfferedGbps {
		t.Errorf("delivered %.1f of %.1f Gbps: expected partial delivery", res.DeliveredGbps, res.OfferedGbps)
	}
}

// TestLeafSpineSpineOutageDrops: a dead spine cannot signal the leaves
// (partition isolation), so the flows hashed onto it blackhole at the
// spine and are counted as NodeDrops; flows on the surviving spine
// still arrive.
func TestLeafSpineSpineOutageDrops(t *testing.T) {
	cfg := lsCfg(4, 2, 1, Permutation(4, 10), 2)
	cfg.Faults = faults.NewPlan().
		Add(faults.Event{At: 0, Kind: faults.KindGPUFail, Node: 4}) // spine 0
	res, err := RunFabric(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.NodeDrops == 0 {
		t.Error("NodeDrops = 0 with spine 0 dead for the whole run")
	}
	if res.Delivered == 0 {
		t.Error("nothing delivered: surviving spine should carry its hash share")
	}
}

// TestFullMeshLinkFaultDrops: the same fault machinery works on the
// mesh — severing 0→1 makes node 0's direct traffic to 1 unroutable.
func TestFullMeshLinkFaultDrops(t *testing.T) {
	cfg := fabCfg(4, Direct, Uniform(4, 40), 2)
	cfg.Faults = faults.NewPlan().
		Add(faults.Event{At: 0, Kind: faults.KindLinkDown, Node: 0, Port: 0}) // slot 0 of node 0 = link to node 1
	res, err := RunFabric(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.RouteDrops == 0 {
		t.Error("RouteDrops = 0 with the 0→1 mesh link down")
	}
}

// TestFabricZipfFlows: the heavy-tailed flow model changes path choices
// (flows persist on one ECMP path) but not the offered load; it must
// deliver comparably to the per-batch-flow model and differ from it in
// detail.
func TestFabricZipfFlows(t *testing.T) {
	plain, err := RunFabric(lsCfg(8, 4, 2, Uniform(8, 80), 2))
	if err != nil {
		t.Fatal(err)
	}
	cfg := lsCfg(8, 4, 2, Uniform(8, 80), 2)
	cfg.Flows = FlowModel{ZipfS: 1.2}
	zipf, err := RunFabric(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if zipf.Batches != plain.Batches {
		t.Errorf("flow model changed emission: %d batches vs %d", zipf.Batches, plain.Batches)
	}
	if zipf.DeliveredGbps < 0.85*zipf.OfferedGbps {
		t.Errorf("zipf flows delivered %.1f of %.1f Gbps", zipf.DeliveredGbps, zipf.OfferedGbps)
	}
	if reflect.DeepEqual(zipf, plain) {
		t.Error("zipf flow model produced byte-identical results to per-batch flows")
	}
}

// TestLeafSpineValidation: malformed topologies, mis-sized matrices
// (leaf-spine matrices are indexed by leaf, not by node), and
// out-of-range fault targets are rejected with errors, not panics.
func TestLeafSpineValidation(t *testing.T) {
	good := lsCfg(4, 2, 1, Uniform(4, 20), 1)
	if _, err := RunFabric(good); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mut  func(*FabricConfig)
	}{
		{"one leaf", func(c *FabricConfig) { c.Topo.(*LeafSpine).Leaves = 1 }},
		{"no spines", func(c *FabricConfig) { c.Topo.(*LeafSpine).Spines = 0 }},
		{"no uplinks", func(c *FabricConfig) { c.Topo.(*LeafSpine).Uplinks = 0 }},
		{"zero uplink rate", func(c *FabricConfig) { c.Topo.(*LeafSpine).UplinkGbps = 0 }},
		{"zero edge rate", func(c *FabricConfig) { c.Topo.(*LeafSpine).EdgeGbps = 0 }},
		{"matrix sized to nodes", func(c *FabricConfig) { c.Matrix = Uniform(6, 20) }},
		{"fault node out of range", func(c *FabricConfig) {
			c.Faults = faults.NewPlan().Add(faults.Event{Kind: faults.KindLinkDown, Node: 6, Port: 0})
		}},
		{"fault slot out of range", func(c *FabricConfig) {
			c.Faults = faults.NewPlan().Add(faults.Event{Kind: faults.KindLinkDown, Node: 0, Port: 2})
		}},
	}
	for _, tc := range cases {
		cfg := lsCfg(4, 2, 1, Uniform(4, 20), 1)
		tc.mut(&cfg)
		if _, err := RunFabric(cfg); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestFullMeshTopologyMatchesLegacyConfig: a FabricConfig that sets Topo
// to the equivalent FullMesh must reproduce the Cluster/Scheme path
// byte-for-byte — the Topology abstraction cost nothing in fidelity.
func TestFullMeshTopologyMatchesLegacyConfig(t *testing.T) {
	legacy, err := RunFabric(fabCfg(8, VLB, Uniform(8, 160), 2))
	if err != nil {
		t.Fatal(err)
	}
	cfg := fabCfg(8, VLB, Uniform(8, 160), 2)
	cfg.Topo = &FullMesh{Cluster: cfg.Cluster, Scheme: cfg.Scheme}
	cfg.Cluster = Config{} // must be ignored when Topo is set
	cfg.Scheme = Direct
	viaTopo, err := RunFabric(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(viaTopo, legacy) {
		t.Errorf("explicit FullMesh differs from legacy config:\n got %+v\nwant %+v", viaTopo, legacy)
	}
}
