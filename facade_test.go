package packetshader_test

import (
	"testing"

	"packetshader"
)

func TestFacadeIPv4BothModes(t *testing.T) {
	for _, mode := range []packetshader.Mode{packetshader.ModeCPUOnly, packetshader.ModeGPU} {
		inst, err := packetshader.IPv4(5000, 3, packetshader.WithMode(mode))
		if err != nil {
			t.Fatal(err)
		}
		inst.Run(2 * packetshader.Millisecond)
		rep := inst.Run(3 * packetshader.Millisecond)
		if rep.DeliveredGbps < 1 {
			t.Errorf("mode %v: %.2f Gbps", mode, rep.DeliveredGbps)
		}
		if mode == packetshader.ModeGPU && rep.Stats.GPULaunches == 0 {
			t.Error("GPU mode never launched")
		}
		if mode == packetshader.ModeCPUOnly && rep.Stats.GPULaunches != 0 {
			t.Error("CPU mode launched kernels")
		}
	}
}

func TestFacadeIPv6PacketSizeOption(t *testing.T) {
	inst := packetshader.Must(packetshader.IPv6(2000, 5,
		packetshader.WithPacketSize(256),
		packetshader.WithOfferedGbps(5)))
	rep := inst.Run(3 * packetshader.Millisecond)
	if rep.DeliveredGbps <= 0 {
		t.Errorf("delivered %.2f", rep.DeliveredGbps)
	}
	if rep.MeanLatencyUs <= 0 {
		t.Error("no latency recorded")
	}
}

func TestFacadeIPsecStreams(t *testing.T) {
	inst := packetshader.Must(packetshader.IPsec(7,
		packetshader.WithPacketSize(512),
		packetshader.WithStreams(4)))
	inst.Run(3 * packetshader.Millisecond)
	rep := inst.Run(3 * packetshader.Millisecond)
	if rep.InputGbps <= 0 {
		t.Errorf("input %.2f", rep.InputGbps)
	}
}

func TestFacadeRepeatedRunsContinue(t *testing.T) {
	inst, err := packetshader.IPv4(2000, 9)
	if err != nil {
		t.Fatal(err)
	}
	r1 := inst.Run(2 * packetshader.Millisecond)
	r2 := inst.Run(2 * packetshader.Millisecond)
	// Second window should be at least as fast (post-warmup) and the
	// cumulative packet count must grow.
	if r2.Stats.Packets <= r1.Stats.Packets {
		t.Error("second run did not advance the simulation")
	}
}

func TestFacadeOpportunisticOffload(t *testing.T) {
	inst := packetshader.Must(packetshader.IPv6(2000, 11,
		packetshader.WithOpportunisticOffload(),
		packetshader.WithOfferedGbps(0.1)))
	rep := inst.Run(5 * packetshader.Millisecond)
	if rep.Stats.ChunksCPU == 0 {
		t.Error("opportunistic offload never used the CPU path at light load")
	}
}
