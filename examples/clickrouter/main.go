// clickrouter: the §7 "Click-like modular programming environment" —
// an IPv4 router is declared in Click's configuration language, the
// element graph compiles into a PacketShader application, and the
// LookupIPv4 element's work runs in the GPU shading step.
package main

import (
	"fmt"
	"log"

	"packetshader/internal/core"
	lookupv4 "packetshader/internal/lookup/ipv4"
	"packetshader/internal/modular"
	"packetshader/internal/pktgen"
	"packetshader/internal/route"
	"packetshader/internal/sim"
)

const config = `
	// A standard IPv4 router, composed from elements.
	check :: CheckIPHeader;           // validate headers (bad -> [1])
	cnt   :: Counter;                 // fast-path packet counter
	ttl   :: DecTTL;                  // TTL decrement (expired -> [1])
	rt    :: LookupIPv4($table);      // DIR-24-8 LPM  **GPU offloaded**
	out   :: ToHop(8);                // emit to the next hop's port
	bad   :: Discard;

	check -> cnt -> ttl -> rt -> out;
	check[1] -> bad;
	ttl[1]   -> bad;
	rt[1]    -> bad;
`

func main() {
	entries := route.GenerateBGPTable(50000, 64, 17)
	tbl, err := lookupv4.Build(entries)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("compiling pipeline:\n", config, "\n")
	if _, err := modular.Parse(config, modular.Bindings{"table": tbl}); err != nil {
		log.Fatal(err)
	}

	for _, mode := range []struct {
		name string
		m    core.Mode
	}{{"CPU-only", core.ModeCPUOnly}, {"CPU+GPU ", core.ModeGPU}} {
		// Each run gets a fresh pipeline so counters start at zero.
		p, _ := modular.Parse(config, modular.Bindings{"table": tbl})
		env := sim.NewEnv()
		cfg := core.DefaultConfig()
		cfg.Mode = mode.m
		r := core.New(env, cfg, p)
		r.SetSource(&pktgen.UDP4Source{Size: 64, Seed: 17, Table: entries})
		r.Start()
		env.After(8*sim.Millisecond, r.ResetMeasurement)
		env.Run(sim.Time(14 * sim.Millisecond))
		cnt := p.ElementByName("cnt").(*modular.Counter)
		drop := p.ElementByName("bad").(*modular.Discard)
		fmt.Printf("%s  %5.1f Gbps   (counter saw %d packets, %d dropped, %d GPU launches)\n",
			mode.name, r.DeliveredGbps(), cnt.Packets, drop.Count, r.Stats.GPULaunches)
	}
}
