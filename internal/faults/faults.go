// Package faults is the deterministic fault-injection subsystem: a
// seeded Plan schedules typed hardware fault events on the virtual
// clock, and an Injector arms them against a Target (the router) when a
// run starts. Everything is driven by the simulator's event heap, so a
// fault plan is part of a run's deterministic input — two runs of the
// same plan at the same seed produce byte-identical output.
//
// The fault classes map onto the calibrated hardware models:
//
//   - NIC link flap: carrier loss on one port (RX stops arriving, TX
//     drops) followed by carrier restore;
//   - RX drop burst: a ring-level discard window on one port (driver
//     pause / ring corruption) without carrier loss;
//   - GPU failure + repair: the device stalls every launch until
//     repaired — the master's watchdog detects this and degrades to the
//     CPU path (internal/core);
//   - PCIe retrain + restore: the device link renegotiates at half β,
//     doubling the per-byte transfer cost until restored.
package faults

import (
	"sort"
	"strconv"

	"packetshader/internal/sim"
)

// Kind is a fault event type.
type Kind uint8

// Fault event kinds. Paired kinds (down/up, fail/repair, retrain/
// restore) are emitted together by the Plan builders.
const (
	KindLinkDown Kind = iota
	KindLinkUp
	KindGPUFail
	KindGPURepair
	KindPCIeRetrain
	KindPCIeRestore
	KindRxDropBurst
)

// String names the kind for traces and logs.
func (k Kind) String() string {
	switch k {
	case KindLinkDown:
		return "link-down"
	case KindLinkUp:
		return "link-up"
	case KindGPUFail:
		return "gpu-fail"
	case KindGPURepair:
		return "gpu-repair"
	case KindPCIeRetrain:
		return "pcie-retrain"
	case KindPCIeRestore:
		return "pcie-restore"
	case KindRxDropBurst:
		return "rx-drop-burst"
	default:
		return "fault-" + strconv.Itoa(int(k))
	}
}

// Event is one scheduled fault. At is an offset from the instant the
// plan is armed (Injector.Arm), so a plan is position-independent and
// reusable across warmup phases.
type Event struct {
	At   sim.Duration
	Kind Kind
	// Port targets link events; Node targets GPU/PCIe events.
	Port int
	Node int
	// Dur is the burst length for KindRxDropBurst (unused otherwise —
	// paired kinds carry their own restore event).
	Dur sim.Duration
	// Div is the β-divisor for KindPCIeRetrain (2 = half speed).
	Div int
}

// Plan is an ordered schedule of fault events. Builders append paired
// events (fault + recovery); Add appends a raw one. All builders return
// the plan for chaining.
type Plan struct {
	events []Event
}

// NewPlan returns an empty plan.
func NewPlan() *Plan { return &Plan{} }

// Add appends a raw event.
func (pl *Plan) Add(e Event) *Plan {
	pl.events = append(pl.events, e)
	return pl
}

// LinkFlap schedules carrier loss on port at offset at, restored after
// dur.
func (pl *Plan) LinkFlap(port int, at, dur sim.Duration) *Plan {
	pl.Add(Event{At: at, Kind: KindLinkDown, Port: port})
	return pl.Add(Event{At: at + dur, Kind: KindLinkUp, Port: port})
}

// GPUOutage schedules a GPU failure on node at offset at, repaired
// after dur.
func (pl *Plan) GPUOutage(node int, at, dur sim.Duration) *Plan {
	pl.Add(Event{At: at, Kind: KindGPUFail, Node: node})
	return pl.Add(Event{At: at + dur, Kind: KindGPURepair, Node: node})
}

// PCIeRetrain schedules a half-β link retrain on node's GPU link at
// offset at, restored to full speed after dur.
func (pl *Plan) PCIeRetrain(node int, at, dur sim.Duration) *Plan {
	pl.Add(Event{At: at, Kind: KindPCIeRetrain, Node: node, Div: 2})
	return pl.Add(Event{At: at + dur, Kind: KindPCIeRestore, Node: node, Div: 1})
}

// RxDropBurst schedules a dur-long RX discard window on port at offset
// at.
func (pl *Plan) RxDropBurst(port int, at, dur sim.Duration) *Plan {
	return pl.Add(Event{At: at, Kind: KindRxDropBurst, Port: port, Dur: dur})
}

// Merge appends every event of other (nil-safe) and returns the plan
// for chaining — the composition hook for option-style builders that
// accumulate independently constructed plans.
func (pl *Plan) Merge(other *Plan) *Plan {
	if other != nil {
		pl.events = append(pl.events, other.events...)
	}
	return pl
}

// Len reports the number of scheduled events.
func (pl *Plan) Len() int {
	if pl == nil {
		return 0
	}
	return len(pl.events)
}

// Events returns a copy of the schedule sorted by offset (stable, so
// same-instant events keep insertion order — the deterministic
// tie-break).
func (pl *Plan) Events() []Event {
	if pl == nil {
		return nil
	}
	out := make([]Event, len(pl.events))
	copy(out, pl.events)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// splitmix64 is the plan generator's PRNG — the same deterministic
// mixer the packet generators use.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Random generates a seeded plan of n fault episodes spread over
// horizon, drawing kinds and targets pseudo-randomly across ports
// 0..ports-1 and nodes 0..nodes-1. Episode durations are 1/16 of the
// horizon. Identical arguments always produce the identical plan.
func Random(seed uint64, horizon sim.Duration, ports, nodes, n int) *Plan {
	pl := NewPlan()
	if horizon <= 0 || n <= 0 {
		return pl
	}
	dur := horizon / 16
	if dur <= 0 {
		dur = 1
	}
	for i := 0; i < n; i++ {
		r := splitmix64(seed ^ uint64(i)<<32)
		at := sim.Duration(r % uint64(horizon-dur+1))
		kind := splitmix64(r) % 4
		port := int(splitmix64(r^1) % uint64(maxInt(ports, 1)))
		node := int(splitmix64(r^2) % uint64(maxInt(nodes, 1)))
		switch kind {
		case 0:
			pl.LinkFlap(port, at, dur)
		case 1:
			pl.GPUOutage(node, at, dur)
		case 2:
			pl.PCIeRetrain(node, at, dur)
		default:
			pl.RxDropBurst(port, at, dur)
		}
	}
	return pl
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
