#!/bin/sh
# check.sh mirrors .github/workflows/ci.yml locally: build, vet, the
# pslint determinism linters, the full test suite, and race tests on the
# concurrency-bearing packages. This is the repository's expanded tier-1
# verification (see ROADMAP.md); `make check` runs it.
set -eu

cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== pslint (determinism contract)"
go run ./cmd/pslint ./...

echo "== pslint (observability layer)"
go run ./cmd/pslint ./internal/obs

echo "== go test ./..."
go test ./...

echo "== trace/metrics determinism (byte-identical across runs)"
go test -count=1 -run 'TestObsOutputByteIdenticalAcrossRuns|TestObsSpansCoverGPUAndPCIeBusyTime' ./internal/experiments

echo "== go test -race (sim, core, cluster, pktio)"
go test -race ./internal/sim ./internal/core ./internal/cluster ./internal/pktio ./internal/obs

echo "== all checks passed"
