// Package nic models the Intel 82599 10GbE ports of the testbed: RX
// descriptor rings fed by a fluid arrival process (so multi-10G rates
// simulate cheaply), Receive-Side Scaling with a real Toeplitz hash,
// interrupt/poll switching with moderation, and TX serialization at line
// rate including the 24B Ethernet overhead.
package nic

import (
	"bytes"
	"encoding/binary"
)

// DefaultRSSKey is the 40-byte Toeplitz key from Microsoft's RSS
// specification (the key the ixgbe driver programs by default).
var DefaultRSSKey = [40]byte{
	0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2,
	0x41, 0x67, 0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0,
	0xd0, 0xca, 0x2b, 0xcb, 0xae, 0x7b, 0x30, 0xb4,
	0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30, 0xf2, 0x0c,
	0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa,
}

// ToeplitzHash computes the RSS hash of input under key (input is the
// concatenated 5-tuple fields in network order, per the RSS spec). For
// each set bit i of the input (MSB first), the 32-bit key window
// starting at bit i is XORed into the result.
//
// This is the bit-serial reference implementation; the per-packet path
// goes through the precomputed lookup tables of ToeplitzLUT (identical
// hashes, enforced by a differential test).
func ToeplitzHash(key []byte, input []byte) uint32 {
	keyBit := func(i int) uint64 {
		if i >= len(key)*8 {
			return 0
		}
		return uint64(key[i/8]>>(7-i%8)) & 1
	}
	// window holds key bits [k, k+64) while consuming input bit k.
	var window uint64
	for i := 0; i < 64; i++ {
		window = window<<1 | keyBit(i)
	}
	var result uint32
	k := 0
	for _, b := range input {
		for bit := 7; bit >= 0; bit-- {
			if b&(1<<bit) != 0 {
				result ^= uint32(window >> 32)
			}
			window = window<<1 | keyBit(k+64)
			k++
		}
	}
	return result
}

// ToeplitzLUT is a table-driven Toeplitz hasher for a fixed key and
// input length: the hash is GF(2)-linear in the input bits, so the
// contribution of byte position p holding value v can be precomputed
// once into lut[p][v], turning the per-packet bit-serial loop into one
// table lookup and XOR per input byte.
type ToeplitzLUT struct {
	lut [][256]uint32
}

// NewToeplitzLUT precomputes the per-byte-position tables for hashing
// inputLen-byte inputs under key.
func NewToeplitzLUT(key []byte, inputLen int) *ToeplitzLUT {
	keyBit := func(i int) uint32 {
		if i >= len(key)*8 {
			return 0
		}
		return uint32(key[i/8]>>(7-i%8)) & 1
	}
	// window(k) = key bits [k, k+32), the value XORed in when input bit
	// k (MSB-first across the whole input) is set.
	window := func(k int) uint32 {
		var w uint32
		for i := 0; i < 32; i++ {
			w = w<<1 | keyBit(k+i)
		}
		return w
	}
	t := &ToeplitzLUT{lut: make([][256]uint32, inputLen)}
	for p := 0; p < inputLen; p++ {
		var bitContrib [8]uint32
		for bit := 0; bit < 8; bit++ {
			bitContrib[bit] = window(p*8 + bit)
		}
		for v := 0; v < 256; v++ {
			var h uint32
			for bit := 0; bit < 8; bit++ {
				if v&(0x80>>bit) != 0 {
					h ^= bitContrib[bit]
				}
			}
			t.lut[p][v] = h
		}
	}
	return t
}

// Hash computes the Toeplitz hash of input (len(input) must not exceed
// the table's input length).
func (t *ToeplitzLUT) Hash(input []byte) uint32 {
	var h uint32
	for p, b := range input {
		h ^= t.lut[p][b]
	}
	return h
}

// defaultRSSLUT serves RSSHashIPv4 for the default key: built once at
// init, read-only afterwards. 12 positions x 256 entries x 4B = 12 KiB,
// comfortably cache-resident.
var defaultRSSLUT = NewToeplitzLUT(DefaultRSSKey[:], 12)

// RSSHashIPv4 computes the RSS hash over the IPv4/UDP-or-TCP 5-tuple
// (12-byte input: src IP, dst IP, src port, dst port). The default key
// takes the precomputed-table path; other keys fall back to the
// bit-serial reference.
func RSSHashIPv4(key []byte, srcIP, dstIP uint32, srcPort, dstPort uint16) uint32 {
	if bytes.Equal(key, DefaultRSSKey[:]) {
		l := defaultRSSLUT.lut
		return l[0][byte(srcIP>>24)] ^ l[1][byte(srcIP>>16)] ^
			l[2][byte(srcIP>>8)] ^ l[3][byte(srcIP)] ^
			l[4][byte(dstIP>>24)] ^ l[5][byte(dstIP>>16)] ^
			l[6][byte(dstIP>>8)] ^ l[7][byte(dstIP)] ^
			l[8][byte(srcPort>>8)] ^ l[9][byte(srcPort)] ^
			l[10][byte(dstPort>>8)] ^ l[11][byte(dstPort)]
	}
	var in [12]byte
	binary.BigEndian.PutUint32(in[0:4], srcIP)
	binary.BigEndian.PutUint32(in[4:8], dstIP)
	binary.BigEndian.PutUint16(in[8:10], srcPort)
	binary.BigEndian.PutUint16(in[10:12], dstPort)
	return ToeplitzHash(key, in[:])
}
