package ipv4

import (
	"packetshader/internal/packet"
	"packetshader/internal/route"
)

// DynamicTable is a DIR-24-8 table supporting incremental route updates
// — the alternative to double buffering that §7 raises for the FIB
// update problem. A shadow binary trie over the installed prefixes
// answers "who owns this cell now" queries, so an insert or remove
// touches only the table cells inside the changed prefix's range
// (2^(24-len) TBL24 cells, or up to 2^(32-len) TBLlong cells), leaving
// the data path's reads undisturbed: every intermediate state of the
// table is a consistent routing function.
type DynamicTable struct {
	Table
	trie shadowTrie
}

// NewDynamic builds a dynamic table from an initial route set.
func NewDynamic(entries []route.Entry) (*DynamicTable, error) {
	base, err := Build(entries)
	if err != nil {
		return nil, err
	}
	d := &DynamicTable{Table: *base}
	d.trie.init()
	for _, e := range entries {
		d.trie.insert(e.Prefix, e.NextHop)
	}
	return d, nil
}

// Insert adds or replaces a route and patches the affected cells.
func (d *DynamicTable) Insert(e route.Entry) error {
	if e.NextHop > MaxNextHop {
		return ErrNextHopRange
	}
	d.trie.insert(e.Prefix, e.NextHop)
	return d.refresh(e.Prefix)
}

// Remove deletes a route (if present) and patches the affected cells.
func (d *DynamicTable) Remove(p route.Prefix) (bool, error) {
	if !d.trie.remove(p) {
		return false, nil
	}
	return true, d.refresh(p)
}

// refresh recomputes every table cell covered by p from the trie.
func (d *DynamicTable) refresh(p route.Prefix) error {
	if p.Len <= 24 {
		base := uint32(p.Addr) >> 8
		count := uint32(1) << (24 - p.Len)
		for i := uint32(0); i < count; i++ {
			block := base + i
			cur := d.tbl24[block]
			if cur&longFlag != 0 {
				// Expanded block: recompute all 256 host cells.
				d.refreshSegment(block)
				continue
			}
			hop, ok := d.trie.lpmUpTo(packet.IPv4Addr(block<<8), 24)
			if !ok {
				d.tbl24[block] = missEntry
			} else {
				d.tbl24[block] = hop + 1
			}
		}
		return nil
	}
	// Long prefix: ensure the block is expanded, then recompute the
	// covered host cells.
	block := uint32(p.Addr) >> 8
	cur := d.tbl24[block]
	if cur&longFlag == 0 {
		if d.nLong >= 1<<15 {
			return ErrTooManySegments
		}
		seg := d.nLong << 8
		d.nLong++
		for j := 0; j < 256; j++ {
			d.tblLong = append(d.tblLong, cur)
		}
		d.tbl24[block] = uint16(seg>>8) | longFlag
	}
	d.refreshRange(block, uint32(p.Addr)&0xff, uint32(1)<<(32-p.Len))
	return nil
}

// refreshSegment recomputes all 256 cells of an expanded block.
func (d *DynamicTable) refreshSegment(block uint32) {
	d.refreshRange(block, 0, 256)
}

func (d *DynamicTable) refreshRange(block, low, count uint32) {
	seg := int(d.tbl24[block]&^uint16(longFlag)) << 8
	for j := uint32(0); j < count; j++ {
		addr := packet.IPv4Addr(block<<8 | (low + j))
		hop, ok := d.trie.lpmUpTo(addr, 32)
		if !ok {
			d.tblLong[seg+int(low+j)] = missEntry
		} else {
			d.tblLong[seg+int(low+j)] = hop + 1
		}
	}
}

// ---------------------------------------------------------------------------
// Shadow trie: a plain binary trie over installed prefixes, supporting
// longest-prefix-match queries bounded by a maximum length.
// ---------------------------------------------------------------------------

type trieNode struct {
	child  [2]int32
	hop    uint16
	prefix bool
}

type shadowTrie struct {
	nodes []trieNode
}

func (t *shadowTrie) init() {
	t.nodes = t.nodes[:0]
	t.nodes = append(t.nodes, trieNode{child: [2]int32{-1, -1}})
}

func (t *shadowTrie) insert(p route.Prefix, hop uint16) {
	cur := int32(0)
	for depth := 0; depth < int(p.Len); depth++ {
		bit := (uint32(p.Addr) >> (31 - depth)) & 1
		next := t.nodes[cur].child[bit]
		if next < 0 {
			t.nodes = append(t.nodes, trieNode{child: [2]int32{-1, -1}})
			next = int32(len(t.nodes) - 1)
			t.nodes[cur].child[bit] = next
		}
		cur = next
	}
	t.nodes[cur].hop = hop
	t.nodes[cur].prefix = true
}

// remove clears the prefix flag (nodes are not reclaimed; update churn
// in routing tables revisits the same paths constantly, so the slack is
// reused).
func (t *shadowTrie) remove(p route.Prefix) bool {
	cur := int32(0)
	for depth := 0; depth < int(p.Len); depth++ {
		bit := (uint32(p.Addr) >> (31 - depth)) & 1
		cur = t.nodes[cur].child[bit]
		if cur < 0 {
			return false
		}
	}
	had := t.nodes[cur].prefix
	t.nodes[cur].prefix = false
	return had
}

// lpmUpTo returns the hop of the longest installed prefix covering addr
// with length ≤ maxLen.
func (t *shadowTrie) lpmUpTo(addr packet.IPv4Addr, maxLen int) (uint16, bool) {
	var best uint16
	found := false
	cur := int32(0)
	for depth := 0; ; depth++ {
		n := &t.nodes[cur]
		if n.prefix && depth <= maxLen {
			best = n.hop
			found = true
		}
		if depth >= maxLen || depth >= 32 {
			break
		}
		bit := (uint32(addr) >> (31 - depth)) & 1
		cur = n.child[bit]
		if cur < 0 {
			break
		}
	}
	return best, found
}
