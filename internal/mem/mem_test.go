package mem

import (
	"math/rand"
	"testing"
	"testing/quick"

	"packetshader/internal/model"
)

func TestArenaAllocFree(t *testing.T) {
	a := NewArena(4)
	if a.FreePages() != 4 || a.TotalPages() != 4 {
		t.Fatalf("pages = %d/%d", a.FreePages(), a.TotalPages())
	}
	var idxs []int32
	for i := 0; i < 4; i++ {
		page, idx, err := a.AllocPage()
		if err != nil {
			t.Fatal(err)
		}
		if len(page) != PageSize {
			t.Fatalf("page len = %d", len(page))
		}
		idxs = append(idxs, idx)
	}
	if _, _, err := a.AllocPage(); err != ErrOutOfMemory {
		t.Errorf("err = %v, want ErrOutOfMemory", err)
	}
	for _, i := range idxs {
		a.FreePage(i)
	}
	if a.FreePages() != 4 {
		t.Errorf("free = %d after returning all", a.FreePages())
	}
}

func TestArenaPagesDisjoint(t *testing.T) {
	a := NewArena(8)
	seen := map[int32]bool{}
	for i := 0; i < 8; i++ {
		page, idx, err := a.AllocPage()
		if err != nil {
			t.Fatal(err)
		}
		if seen[idx] {
			t.Fatalf("page %d handed out twice", idx)
		}
		seen[idx] = true
		page[0] = byte(idx) // must not fault or alias
	}
}

func TestSlabAllocFreeReuse(t *testing.T) {
	a := NewArena(16)
	c := NewSlabCache(a, 208)
	o1, err := c.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if len(o1.Data) != 208 {
		t.Fatalf("obj len = %d", len(o1.Data))
	}
	if c.Live() != 1 {
		t.Errorf("live = %d", c.Live())
	}
	c.Free(o1)
	if c.Live() != 0 {
		t.Errorf("live = %d after free", c.Live())
	}
	if c.Allocs != 1 || c.Frees != 1 {
		t.Errorf("ops = %d/%d", c.Allocs, c.Frees)
	}
}

func TestSlabObjectsDisjointWithinSlab(t *testing.T) {
	a := NewArena(4)
	c := NewSlabCache(a, 256)
	objs := make([]Obj, c.ObjectsPerSlab())
	for i := range objs {
		o, err := c.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		objs[i] = o
		for j := range o.Data {
			o.Data[j] = byte(i)
		}
	}
	for i, o := range objs {
		for _, b := range o.Data {
			if b != byte(i) {
				t.Fatalf("object %d data overwritten", i)
			}
		}
	}
}

func TestSlabPageRecycling(t *testing.T) {
	a := NewArena(1)
	c := NewSlabCache(a, 2048) // 2 objects per page
	o1, _ := c.Alloc()
	o2, _ := c.Alloc()
	if a.FreePages() != 0 {
		t.Fatalf("arena free = %d", a.FreePages())
	}
	// A third allocation must fail: arena exhausted.
	if _, err := c.Alloc(); err != ErrOutOfMemory {
		t.Errorf("err = %v", err)
	}
	c.Free(o1)
	c.Free(o2)
	if a.FreePages() != 1 {
		t.Errorf("empty slab did not return its page")
	}
	// And allocation works again.
	if _, err := c.Alloc(); err != nil {
		t.Errorf("realloc after recycle: %v", err)
	}
}

func TestSlabRefillCounting(t *testing.T) {
	a := NewArena(8)
	c := NewSlabCache(a, 1024) // 4 per page
	for i := 0; i < 9; i++ {
		if _, err := c.Alloc(); err != nil {
			t.Fatal(err)
		}
	}
	if c.Refills != 3 {
		t.Errorf("refills = %d, want 3 (9 objs, 4/page)", c.Refills)
	}
}

func TestSlabInvalidSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for oversized object")
		}
	}()
	NewSlabCache(NewArena(1), PageSize+1)
}

// Property: any interleaving of allocs and frees keeps live counts
// consistent and never hands out overlapping objects.
func TestSlabRandomizedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := NewArena(32)
		c := NewSlabCache(a, 208)
		type tagged struct {
			o   Obj
			tag byte
		}
		var live []tagged
		for step := 0; step < 2000; step++ {
			if len(live) == 0 || (rng.Intn(2) == 0 && len(live) < 400) {
				o, err := c.Alloc()
				if err != nil {
					return false
				}
				tag := byte(rng.Intn(256))
				for j := range o.Data {
					o.Data[j] = tag
				}
				live = append(live, tagged{o, tag})
			} else {
				i := rng.Intn(len(live))
				for _, b := range live[i].o.Data {
					if b != live[i].tag {
						return false // overlap corrupted data
					}
				}
				c.Free(live[i].o)
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			}
			if c.Live() != len(live) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestSkbAllocatorPerPacketOps(t *testing.T) {
	a := NewSkbAllocator(NewArena(64))
	const n = 100
	var skbs []*Skb
	for i := 0; i < n; i++ {
		s, err := a.Alloc(64)
		if err != nil {
			t.Fatal(err)
		}
		skbs = append(skbs, s)
	}
	for _, s := range skbs {
		a.Free(s)
	}
	slabOps, pageOps := a.SlabOps()
	// 4 slab ops per packet: alloc+free × (meta, data).
	if slabOps != 4*n {
		t.Errorf("slab ops = %d, want %d", slabOps, 4*n)
	}
	if a.InitOps != n {
		t.Errorf("init ops = %d, want %d", a.InitOps, n)
	}
	if pageOps == 0 {
		t.Error("no page refills recorded")
	}
	if a.Live() != 0 {
		t.Errorf("live = %d", a.Live())
	}
}

func TestSkbAllocatorMetaZeroed(t *testing.T) {
	arena := NewArena(16)
	a := NewSkbAllocator(arena)
	s, _ := a.Alloc(64)
	for i := range s.Meta.Data {
		s.Meta.Data[i] = 0xFF
	}
	a.Free(s)
	s2, _ := a.Alloc(64)
	for _, b := range s2.Meta.Data {
		if b != 0 {
			t.Fatal("recycled skb metadata not re-initialized")
		}
	}
}

func TestSkbAllocExhaustionRollsBack(t *testing.T) {
	// Arena sized so the data-buffer alloc fails after the meta alloc
	// succeeded; the meta must be rolled back.
	arena := NewArena(1)
	a := NewSkbAllocator(arena)
	var skbs []*Skb
	for {
		s, err := a.Alloc(64)
		if err != nil {
			break
		}
		skbs = append(skbs, s)
	}
	live := a.Live()
	if live != len(skbs) {
		t.Errorf("live = %d, want %d (leaked meta on failed alloc)", live, len(skbs))
	}
}

func TestCellMetaIsEightBytes(t *testing.T) {
	if MetaBytes != model.HugeCellMetadataBytes {
		t.Errorf("CellMeta = %dB, paper's compact metadata is %dB",
			MetaBytes, model.HugeCellMetadataBytes)
	}
}

func TestHugeBufferCells(t *testing.T) {
	h := NewHugeBuffer(8)
	if h.Cells() != 8 {
		t.Fatalf("cells = %d", h.Cells())
	}
	for i := 0; i < 8; i++ {
		c := h.Cell(i)
		if len(c) != model.HugeCellDataBytes {
			t.Fatalf("cell len = %d", len(c))
		}
		c[0] = byte(i)
	}
	for i := 0; i < 8; i++ {
		if h.Cell(i)[0] != byte(i) {
			t.Fatalf("cell %d aliases another", i)
		}
	}
}

func TestHugeBufferWraps(t *testing.T) {
	h := NewHugeBuffer(4)
	h.Cell(1)[0] = 0xAB
	if h.Cell(5)[0] != 0xAB { // 5 % 4 == 1: same cell on wrap
		t.Error("ring wrap does not reuse cells")
	}
	h.Meta(2).Len = 99
	if h.Meta(6).Len != 99 {
		t.Error("metadata ring wrap broken")
	}
}

func TestHugeBufferVsSkbOpCount(t *testing.T) {
	// The core §4.2 claim: per-packet allocator operations drop from 4
	// slab ops + init to zero.
	arena := NewArena(64)
	skb := NewSkbAllocator(arena)
	for i := 0; i < 50; i++ {
		s, err := skb.Alloc(64)
		if err != nil {
			t.Fatal(err)
		}
		skb.Free(s)
	}
	slabOps, _ := skb.SlabOps()
	if slabOps != 200 {
		t.Fatalf("skb path: %d ops for 50 packets", slabOps)
	}
	// Huge buffer: receiving 50 packets is just indexing.
	h := NewHugeBuffer(16)
	for i := 0; i < 50; i++ {
		h.Meta(i).Len = 64
		h.Cell(i)[0] = 1
	}
	if h.DMAMapOps() != 1 {
		t.Errorf("huge buffer DMA maps = %d, want 1", h.DMAMapOps())
	}
}
