package experiments

import (
	"bytes"
	"testing"
)

// render prints a result to a buffer, exactly as `pshader experiments`
// would emit it.
func render(r *Result) string {
	var b bytes.Buffer
	r.Print(&b)
	return b.String()
}

// TestExperimentsDeterministicAcrossRuns is the end-to-end counterpart
// of the pslint determinism linters (cmd/pslint): the static analyzers
// forbid wall-clock time, unseeded randomness and order-sensitive map
// iteration, and this test checks the invariant they guard — running
// the same experiment twice in one process yields byte-identical
// output. It covers the §2 microbenchmarks including the Fig 2
// latency-hiding sweep, which exercises the full sim stack (virtual
// clock, GPU model, PCIe IOH, batched IPv6 lookups).
func TestExperimentsDeterministicAcrossRuns(t *testing.T) {
	cases := []struct {
		name string
		run  func() *Result
	}{
		{"table1", Table1},
		{"launch", LaunchLatency},
		{"fig2", Fig2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			first := render(c.run())
			second := render(c.run())
			if first == second {
				return
			}
			// Pinpoint the first differing line for a usable failure.
			fl, sl := bytes.Split([]byte(first), []byte("\n")), bytes.Split([]byte(second), []byte("\n"))
			for i := 0; i < len(fl) && i < len(sl); i++ {
				if !bytes.Equal(fl[i], sl[i]) {
					t.Fatalf("run-to-run output diverged at line %d:\n  first:  %s\n  second: %s",
						i+1, fl[i], sl[i])
				}
			}
			t.Fatalf("run-to-run output diverged in length: %d vs %d bytes", len(first), len(second))
		})
	}
}
