// Fixture for the walltime analyzer: host wall-clock entry points are
// forbidden; conversions and constants of package time are fine.
package walltime

import "time"

func bad() {
	start := time.Now()          // want `time\.Now reads the host wall clock`
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the host wall clock`
	_ = time.Since(start)        // want `time\.Since reads the host wall clock`
	_ = time.Until(start)        // want `time\.Until reads the host wall clock`
	<-time.Tick(time.Second)     // want `time\.Tick reads the host wall clock`
	<-time.After(time.Second)    // want `time\.After reads the host wall clock`
	_ = time.NewTimer(1)         // want `time\.NewTimer reads the host wall clock`
}

// Referencing (not calling) a forbidden function is still a leak.
var clock func() time.Time = time.Now // want `time\.Now reads the host wall clock`

func good() {
	_ = 5 * time.Millisecond // unit constants carry no host clock
	d, _ := time.ParseDuration("3ms")
	_ = time.Duration(42) * d
	_ = time.Unix(0, 0) // pure constructor from explicit numbers
}

func suppressed() {
	_ = time.Now() //pslint:ignore walltime boot banner only, never measured
}
