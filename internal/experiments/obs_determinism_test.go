package experiments

import (
	"bytes"
	"encoding/json"
	"testing"

	"packetshader/internal/apps"
	"packetshader/internal/core"
	"packetshader/internal/model"
	"packetshader/internal/obs"
	"packetshader/internal/pktgen"
	"packetshader/internal/route"
	"packetshader/internal/sim"

	lookupv4 "packetshader/internal/lookup/ipv4"
)

// obsRun drives a short IPv4 CPU+GPU run with full observability
// enabled and returns the three byte streams the obs layer can emit:
// the Chrome trace JSON, the metrics-registry dump, and the resource
// occupancy report.
func obsRun(t *testing.T) (trace, metrics, util string) {
	t.Helper()
	entries := route.GenerateBGPTable(2000, 64, 7)
	tbl, err := lookupv4.Build(entries)
	if err != nil {
		t.Fatal(err)
	}

	env := sim.NewEnv()
	cfg := core.DefaultConfig()
	cfg.PacketSize = 64
	r := core.New(env, cfg, &apps.IPv4Fwd{Table: tbl, NumPorts: model.NumPorts})
	tr := obs.NewTracer()
	reg := obs.NewRegistry()
	sampler := obs.NewServerSampler(tr)
	env.SetHooks(sampler)
	r.EnableObs(tr, reg)
	r.SetSource(&pktgen.UDP4Source{Size: 64, Seed: 7, Table: entries})
	r.Start()
	env.Run(sim.Time(2 * sim.Millisecond))
	r.ObserveStats()

	var tb, mb, ub bytes.Buffer
	if err := tr.WriteJSON(&tb); err != nil {
		t.Fatal(err)
	}
	if err := reg.Dump(&mb); err != nil {
		t.Fatal(err)
	}
	if err := sampler.WriteReport(&ub, env.Now()); err != nil {
		t.Fatal(err)
	}
	return tb.String(), mb.String(), ub.String()
}

// TestObsOutputByteIdenticalAcrossRuns is the observability layer's
// instance of the determinism contract: two identical-seed runs must
// produce byte-identical trace, metrics, and occupancy output. It runs
// alongside TestExperimentsDeterministicAcrossRuns, which covers the
// experiment tables.
func TestObsOutputByteIdenticalAcrossRuns(t *testing.T) {
	t1, m1, u1 := obsRun(t)
	t2, m2, u2 := obsRun(t)
	for _, c := range []struct{ name, a, b string }{
		{"trace", t1, t2},
		{"metrics", m1, m2},
		{"util", u1, u2},
	} {
		if c.a != c.b {
			t.Errorf("%s output diverged across identical runs (%d vs %d bytes)",
				c.name, len(c.a), len(c.b))
		}
	}
	if len(t1) == 0 || len(m1) == 0 || len(u1) == 0 {
		t.Fatal("an obs output stream is empty")
	}

	// The trace must be well-formed Chrome trace JSON with spans from
	// every pipeline stage the tentpole names.
	var doc struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(t1), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	want := map[string]bool{
		"rx-fetch": false, "pre-shade": false, "post-shade": false,
		"tx": false, "gpu-launch": false, "h2d": false,
		"kernel:ipv4-lookup": false, "d2h": false, "sync": false,
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			if _, ok := want[ev.Name]; ok {
				want[ev.Name] = true
			}
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("trace has no %q span", name)
		}
	}
}

// TestObsSpansCoverGPUAndPCIeBusyTime checks the acceptance criterion
// that occupancy spans cover at least 95% of GPU and PCIe busy time —
// by construction they tile it exactly, since every sim.Server
// reservation emits one span through the Env hook.
func TestObsSpansCoverGPUAndPCIeBusyTime(t *testing.T) {
	entries := route.GenerateBGPTable(2000, 64, 7)
	tbl, err := lookupv4.Build(entries)
	if err != nil {
		t.Fatal(err)
	}
	env := sim.NewEnv()
	cfg := core.DefaultConfig()
	cfg.PacketSize = 64
	r := core.New(env, cfg, &apps.IPv4Fwd{Table: tbl, NumPorts: model.NumPorts})
	sampler := obs.NewServerSampler(obs.NewTracer())
	env.SetHooks(sampler)
	r.SetSource(&pktgen.UDP4Source{Size: 64, Seed: 7, Table: entries})
	r.Start()
	env.Run(sim.Time(2 * sim.Millisecond))

	var iohBusy, gpuBusy sim.Duration
	for _, ioh := range r.Engine.IOHs {
		iohBusy += ioh.UpBusy() + ioh.DownBusy()
	}
	for _, d := range r.Devices {
		gpuBusy += d.Link.UpBusy() + d.Link.DownBusy() + d.ExecBusy()
	}
	if iohBusy == 0 || gpuBusy == 0 {
		t.Fatalf("no PCIe/GPU work done (ioh=%v gpu=%v); load generator broken", iohBusy, gpuBusy)
	}
	// 100% ≥ the acceptance criterion's 95%.
	if got := sampler.BusyByName("ioh"); got != iohBusy {
		t.Errorf("sampled IOH busy %v != actual %v", got, iohBusy)
	}
	if got := sampler.BusyByName("gpu"); got != gpuBusy {
		t.Errorf("sampled GPU busy %v != actual %v", got, gpuBusy)
	}
}
