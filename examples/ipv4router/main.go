// ipv4router: a fuller IPv4 forwarding scenario exercising the control
// plane as well as the data path — routes are withdrawn and re-announced
// while traffic flows, using the double-buffered FIB update scheme the
// paper sketches in §7, and the packet-size sweep of Figure 11(a) runs
// on the updated table.
package main

import (
	"fmt"
	"log"

	"packetshader/internal/apps"
	"packetshader/internal/core"
	lookupv4 "packetshader/internal/lookup/ipv4"
	"packetshader/internal/model"
	"packetshader/internal/pktgen"
	"packetshader/internal/route"
	"packetshader/internal/sim"
)

func main() {
	// Control plane: a RIB seeded with a BGP-scale table.
	rib := route.NewRIB()
	for _, e := range route.GenerateBGPTable(50000, 64, 7) {
		rib.Add(e.Prefix, e.NextHop)
	}
	build := func() *lookupv4.Table {
		t, err := lookupv4.Build(rib.Entries())
		if err != nil {
			log.Fatal(err)
		}
		return t
	}
	fib := route.NewFIB(build())

	// Simulate a flap: withdraw a thousand routes, publish a new
	// generation, re-announce, publish again — the data path always
	// reads a complete table.
	entries := rib.Entries()
	for i := 0; i < 1000; i++ {
		rib.Remove(entries[i].Prefix)
	}
	old := fib.Publish(build())
	fmt.Printf("withdrew 1000 routes; FIB generations swapped (old had %d MB)\n",
		old.MemBytes()>>20)
	for i := 0; i < 1000; i++ {
		rib.Add(entries[i].Prefix, entries[i].NextHop)
	}
	fib.Publish(build())
	fmt.Printf("re-announced; RIB holds %d routes\n\n", rib.Len())

	// Data plane: Figure 11(a)'s size sweep on the final table.
	fmt.Println("IPv4 forwarding, CPU+GPU (Gbps):")
	for _, size := range []int{64, 256, 1024, 1514} {
		env := sim.NewEnv()
		cfg := core.DefaultConfig()
		cfg.PacketSize = size
		app := &apps.IPv4Fwd{Table: fib.Active(), NumPorts: model.NumPorts}
		r := core.New(env, cfg, app)
		r.SetSource(&pktgen.UDP4Source{Size: size, Seed: 7, Table: rib.Entries()})
		r.Start()
		env.After(8*sim.Millisecond, r.ResetMeasurement)
		env.Run(sim.Time(14 * sim.Millisecond))
		fmt.Printf("  %4dB: %5.1f  (slow-path punts: %d)\n",
			size, r.DeliveredGbps(), app.SlowPath)
	}
}
