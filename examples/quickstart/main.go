// Quickstart: run the paper's headline experiment — IPv4 forwarding of
// 64-byte packets at full load, CPU-only versus CPU+GPU — in a few
// lines of the public API.
package main

import (
	"fmt"
	"log"

	"packetshader"
)

func main() {
	for _, mode := range []struct {
		name string
		m    packetshader.Mode
	}{
		{"CPU-only", packetshader.ModeCPUOnly},
		{"CPU+GPU ", packetshader.ModeGPU},
	} {
		// 100k-prefix synthetic BGP table (the paper uses 282,797; a
		// smaller table keeps the quickstart fast and does not change
		// DIR-24-8 lookup cost).
		inst, err := packetshader.IPv4(100000, 42,
			packetshader.WithMode(mode.m),
			packetshader.WithPacketSize(64),
			packetshader.WithOfferedGbps(10))
		if err != nil {
			log.Fatal(err)
		}
		inst.Run(5 * packetshader.Millisecond) // warmup
		report := inst.Run(10 * packetshader.Millisecond)
		fmt.Printf("%s  %5.1f Gbps   (mean latency %.0f us, %d GPU launches)\n",
			mode.name, report.DeliveredGbps, report.MeanLatencyUs,
			report.Stats.GPULaunches)
	}
	fmt.Println("\npaper (Figure 11a, 64B): CPU-only ≈ 28 Gbps, CPU+GPU ≈ 39 Gbps")
}
