package apps

import "packetshader/internal/obs"

// The applications export their slow-path / error counters into a
// metrics registry via core.MetricsReporter; the router snapshots them
// at dump time (Router.ObserveStats), so the hot paths keep their plain
// uint64 counters.

// ReportMetrics implements core.MetricsReporter.
func (a *IPv4Fwd) ReportMetrics(reg *obs.Registry) {
	reg.Counter("app.ipv4.slow_path").Set(a.SlowPath)
}

// ReportMetrics implements core.MetricsReporter.
func (a *IPv6Fwd) ReportMetrics(reg *obs.Registry) {
	reg.Counter("app.ipv6.slow_path").Set(a.SlowPath)
}

// ReportMetrics implements core.MetricsReporter.
func (g *IPsecGW) ReportMetrics(reg *obs.Registry) {
	reg.Counter("app.ipsec.errors").Set(g.Errors)
}

// ReportMetrics implements core.MetricsReporter.
func (t *IPsecTerm) ReportMetrics(reg *obs.Registry) {
	reg.Counter("app.ipsecterm.bad_spi").Set(t.BadSPI)
	reg.Counter("app.ipsecterm.auth_fail").Set(t.AuthFail)
	reg.Counter("app.ipsecterm.replayed").Set(t.Replayed)
	reg.Counter("app.ipsecterm.malformed").Set(t.Malformed)
}
