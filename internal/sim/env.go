// Package sim is a deterministic, process-oriented discrete-event
// simulation engine. It provides a virtual clock, cooperatively scheduled
// processes (one runnable at a time, SimPy-style), blocking FIFO queues,
// serializing servers for bandwidth links, and broadcast signals.
//
// All PacketShader hardware models (NICs, PCIe links, GPU, CPU cores) run
// as sim processes, so every throughput and latency number reported by the
// benchmark harness is measured in virtual hardware time and is therefore
// independent of the host machine's speed and of Go's garbage collector.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is an absolute point on the virtual clock, in picoseconds. The
// picosecond granularity keeps sub-nanosecond events (one 64B frame lasts
// 6.7ns on a 10GbE link) exact while int64 still covers over 100 days of
// simulated time.
type Time int64

// Duration is a span of virtual time in picoseconds.
type Duration int64

// Common durations.
const (
	Picosecond  Duration = 1
	Nanosecond           = 1000 * Picosecond
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Seconds returns d as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Microseconds returns d as a floating-point number of microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

// DurationFromSeconds converts seconds to a Duration, rounding to the
// nearest picosecond with ties away from zero. (A naive `+0.5` then
// truncate rounds negative inputs toward +inf: -1.5ps would become
// -1ps instead of -2ps, and -0.7ps would become 0.)
func DurationFromSeconds(s float64) Duration {
	return Duration(math.Round(s * float64(Second)))
}

func (t Time) String() string {
	return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
}

type event struct {
	at  Time
	seq uint64 // tie-breaker: FIFO among simultaneous events
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peek() event        { return h[0] }
func (h *eventHeap) popEvent() event   { return heap.Pop(h).(event) }
func (h *eventHeap) pushEvent(e event) { heap.Push(h, e) }

// Hooks receives simulation-level trace callbacks. Implementations must
// not block or schedule events: hooks run synchronously inside resource
// operations, possibly in scheduler context, and exist purely to record.
// internal/obs provides the standard implementation.
type Hooks interface {
	// ServerBusy reports one reservation occupying server s over the
	// half-open virtual-time interval [start, end). FIFO servers never
	// idle mid-queue, so these intervals tile the server's busy time
	// exactly: their total duration equals Server.BusyTime.
	ServerBusy(s *Server, start, end Time)
}

// Env is a simulation environment: a virtual clock plus an event queue.
// The zero value is not usable; create one with NewEnv.
type Env struct {
	now     Time
	events  eventHeap
	seq     uint64
	yieldCh chan struct{} // a running proc signals here when it blocks or ends
	nProcs  int           // live (started, unfinished) processes
	running bool

	hooks     Hooks
	serverSeq int // server IDs in creation order (deterministic)
}

// NewEnv returns an empty environment with the clock at zero.
func NewEnv() *Env {
	return &Env{yieldCh: make(chan struct{})}
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// SetHooks installs h as the environment's trace hooks (nil disables
// them). When no hooks are installed the per-reservation cost is a
// single nil check.
func (e *Env) SetHooks(h Hooks) { e.hooks = h }

// At schedules fn to run at absolute virtual time t (clamped to now).
// fn runs in scheduler context and must not block; to perform blocking
// work, have it wake a process instead.
func (e *Env) At(t Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	e.events.pushEvent(event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d from now.
func (e *Env) After(d Duration, fn func()) { e.At(e.now+Time(d), fn) }

// Run executes events until the queue drains or the clock passes until
// (until <= 0 means run to completion). It returns the time of the last
// executed event. Processes still blocked on queues when the event queue
// drains are simply abandoned (their goroutines are released).
func (e *Env) Run(until Time) Time {
	if e.running {
		panic("sim: Env.Run re-entered")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.events) > 0 {
		if until > 0 && e.events.peek().at > until {
			e.now = until
			break
		}
		ev := e.events.popEvent()
		e.now = ev.at
		ev.fn()
	}
	return e.now
}

// resumeProc hands control to p and waits until p blocks again or ends.
// Must only be called from scheduler context (inside an event fn).
func (e *Env) resumeProc(p *Proc) {
	p.resume <- struct{}{}
	<-e.yieldCh
}
