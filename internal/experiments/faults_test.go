package experiments

import (
	"strconv"
	"testing"

	"packetshader/internal/sim"
)

// TestFaultScenarioDeterministicAndShaped runs the degradation-curve
// scenario twice and checks both halves of its contract: the rendered
// output is byte-identical across runs (the fault injector lives on the
// virtual clock, so it falls under the same determinism invariant as
// every other experiment), and the curve has the advertised shape —
// full throughput, a CPU-only plateau within the envelope during the
// outage, and recovery back to baseline after the repair.
func TestFaultScenarioDeterministicAndShaped(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run fault scenario in -short mode")
	}
	first := FaultScenario()
	if a, b := render(first), render(FaultScenario()); a != b {
		t.Fatalf("fault scenario diverged across runs:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}

	envelope := cpuOnlyEnvelope()
	repairMs := int((faultAt + faultOutageLen) / sim.Millisecond)
	var baselineSum float64
	var baselineN int
	for _, row := range first.Rows {
		tMs, err := strconv.Atoi(row[0])
		if err != nil {
			t.Fatalf("bad t_ms cell %q: %v", row[0], err)
		}
		gbps, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatalf("bad Gbps cell %q: %v", row[1], err)
		}
		switch row[2] {
		case "baseline":
			baselineSum += gbps
			baselineN++
		case "outage":
			if gbps <= 0 {
				t.Errorf("t=%dms: throughput collapsed to %.2f during outage", tMs, gbps)
			}
			if gbps > envelope*1.10 {
				t.Errorf("t=%dms: outage throughput %.2f exceeds CPU-only envelope %.2f",
					tMs, gbps, envelope)
			}
		}
	}
	baseline := baselineSum / float64(baselineN)
	if baseline <= envelope {
		t.Fatalf("baseline %.2f not above CPU-only envelope %.2f — GPU mode added nothing", baseline, envelope)
	}
	// Recovery: the first full window after the repair must be back near
	// baseline (the probe fires within one backoff of the repair).
	for _, row := range first.Rows {
		if tMs, _ := strconv.Atoi(row[0]); tMs == repairMs+1 {
			gbps, _ := strconv.ParseFloat(row[1], 64)
			if gbps < 0.8*baseline {
				t.Errorf("t=%dms (first window after repair): %.2f Gbps, want >= 80%% of baseline %.2f",
					tMs, gbps, baseline)
			}
			return
		}
	}
	t.Fatalf("no row for t=%dms, one window after repair", repairMs+1)
}
