// Package packetshader is a faithful Go reproduction of "PacketShader:
// a GPU-Accelerated Software Router" (Han, Jang, Park, Moon — SIGCOMM
// 2010), built over a calibrated virtual-time model of the paper's
// testbed (2× Xeon X5550, 2× GTX480, 8× 10GbE, dual-IOH board).
//
// This top-level package is the library facade: it assembles the four
// evaluated applications (IPv4/IPv6 forwarding, OpenFlow switching,
// IPsec tunneling) into ready-to-run router instances and reports the
// paper's metrics. The building blocks live under internal/: the
// discrete-event engine (internal/sim), hardware models
// (internal/hw/...), the packet I/O engine (internal/pktio), the
// framework (internal/core), the applications (internal/apps), and the
// table/figure reproductions (internal/experiments).
//
// Quick start:
//
//	inst, _ := packetshader.IPv4(100000, 42, packetshader.WithMode(packetshader.ModeGPU))
//	report := inst.Run(20 * packetshader.Millisecond)
//	fmt.Printf("%.1f Gbps\n", report.DeliveredGbps)
package packetshader

import (
	"fmt"

	"packetshader/internal/apps"
	"packetshader/internal/core"
	"packetshader/internal/faults"
	"packetshader/internal/model"
	"packetshader/internal/openflow"
	"packetshader/internal/packet"
	"packetshader/internal/pktgen"
	"packetshader/internal/route"
	"packetshader/internal/sim"

	lookupv4 "packetshader/internal/lookup/ipv4"
	lookupv6 "packetshader/internal/lookup/ipv6"
)

// Re-exported virtual-time units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Duration is virtual time (picoseconds).
type Duration = sim.Duration

// Mode selects CPU-only or GPU-accelerated operation.
type Mode = core.Mode

// Operating modes (§6.1: CPU-only runs four workers per NUMA node;
// CPU+GPU runs three workers plus a GPU master).
const (
	ModeCPUOnly = core.ModeCPUOnly
	ModeGPU     = core.ModeGPU
)

// NumPorts is the testbed's port count (8 × 10GbE).
const NumPorts = model.NumPorts

// Source synthesizes the frames the RX queues receive. It is the
// facade's name for the NIC-layer frame source: Fill writes the seq-th
// frame of (port, queue) into b.Data (already sized to the configured
// packet size) and sets b.Hash. The built-in generators in
// internal/pktgen implement it; custom workloads implement it directly
// (see examples/openflowswitch).
type Source interface {
	Fill(b *packet.Buf, port, queue int, seq uint64)
}

// Option tweaks a router configuration.
type Option func(*core.Config)

// WithMode selects CPU-only or CPU+GPU operation.
func WithMode(m Mode) Option { return func(c *core.Config) { c.Mode = m } }

// WithPacketSize sets the generated packet size (64-1514 bytes).
func WithPacketSize(bytes int) Option {
	return func(c *core.Config) { c.PacketSize = bytes }
}

// WithOfferedGbps sets the offered load per port.
func WithOfferedGbps(g float64) Option {
	return func(c *core.Config) { c.OfferedGbpsPerPort = g }
}

// WithStreams enables concurrent copy and execution with n CUDA
// streams (§5.4; the paper uses it for IPsec).
func WithStreams(n int) Option { return func(c *core.Config) { c.Streams = n } }

// WithOpportunisticOffload keeps small chunks on the CPU for low
// latency under light load (§7).
func WithOpportunisticOffload() Option {
	return func(c *core.Config) { c.OpportunisticOffload = true }
}

// WithChunkCap caps the number of packets per chunk (§5.3).
func WithChunkCap(n int) Option { return func(c *core.Config) { c.ChunkCap = n } }

// WithoutPipelining disables chunk pipelining (§5.4 ablation).
func WithoutPipelining() Option { return func(c *core.Config) { c.Pipelining = false } }

// WithGatherMax bounds how many chunks one GPU launch gathers (§5.4).
func WithGatherMax(n int) Option { return func(c *core.Config) { c.GatherMax = n } }

// WithGPUOutage schedules a GPU failure on every node at offset at from
// the router's start, repaired after dur. The master watchdog degrades
// to the CPU path for the outage (see Report.DegradedTime).
func WithGPUOutage(at, dur Duration) Option {
	return func(c *core.Config) {
		if c.Faults == nil {
			c.Faults = faults.NewPlan()
		}
		for n := 0; n < model.NumNodes; n++ {
			c.Faults.GPUOutage(n, at, dur)
		}
	}
}

// WithLinkFlap schedules carrier loss on one port at offset at from the
// router's start, restored after dur. Packets forwarded to the port
// during the flap are dropped and counted in Report.DroppedPackets.
func WithLinkFlap(port int, at, dur Duration) Option {
	return func(c *core.Config) {
		if c.Faults == nil {
			c.Faults = faults.NewPlan()
		}
		c.Faults.LinkFlap(port, at, dur)
	}
}

// Instance is an assembled router plus its workload generator and
// latency sink, ready to Run.
type Instance struct {
	Env    *sim.Env
	Router *core.Router
	Sink   *pktgen.LatencySink

	started bool
}

// Report summarizes one run.
type Report struct {
	// DeliveredGbps is forwarded throughput in the paper's wire metric
	// (24B Ethernet overhead included).
	DeliveredGbps float64
	// InputGbps is accepted input throughput (the IPsec metric, §6.2.4).
	InputGbps float64
	// Latency statistics in microseconds (zero if nothing completed).
	MeanLatencyUs float64
	P99LatencyUs  float64
	// DroppedPackets is the cumulative drop count from every cause: RX
	// ring overflow, TX ring overflow, carrier loss, and application
	// drop decisions.
	DroppedPackets uint64
	// DegradedTime is the cumulative virtual time any GPU was held out
	// by the master watchdog (zero in fault-free and CPU-only runs).
	DegradedTime Duration
	// Stats are the framework counters.
	Stats core.Stats
}

// build assembles an Instance: options are applied to the default
// config and validated *first*, then the source is constructed from the
// resolved config — so a generator always sees the final packet size
// and there is no post-hoc rebinding.
func build(app core.App, mkSrc func(cfg *core.Config) Source, opts []Option) (*Instance, error) {
	env := sim.NewEnv()
	cfg := core.DefaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if err := validate(&cfg); err != nil {
		return nil, err
	}
	r := core.New(env, cfg, app)
	sink := pktgen.NewLatencySink()
	for _, p := range r.Engine.Ports {
		p.Tx.OnComplete = func(b *packet.Buf, at sim.Time) { sink.Observe(b, at) }
	}
	r.SetSource(mkSrc(&cfg))
	return &Instance{Env: env, Router: r, Sink: sink}, nil
}

// validate rejects configurations the models are not calibrated for.
func validate(cfg *core.Config) error {
	switch {
	case cfg.PacketSize < 64 || cfg.PacketSize > 1514:
		return fmt.Errorf("packetshader: packet size %d outside 64..1514", cfg.PacketSize)
	case cfg.OfferedGbpsPerPort < 0:
		return fmt.Errorf("packetshader: negative offered load %g Gbps", cfg.OfferedGbpsPerPort)
	case cfg.Streams < 1:
		return fmt.Errorf("packetshader: streams %d < 1", cfg.Streams)
	case cfg.ChunkCap < 1:
		return fmt.Errorf("packetshader: chunk cap %d < 1", cfg.ChunkCap)
	case cfg.GatherMax < 1:
		return fmt.Errorf("packetshader: gather max %d < 1", cfg.GatherMax)
	}
	return nil
}

// Must unwraps a constructor result, panicking on error — for examples
// and tests where a config error is a programming bug.
func Must(inst *Instance, err error) *Instance {
	if err != nil {
		panic(err)
	}
	return inst
}

// IPv4 assembles an IPv4 forwarder with a synthetic BGP table of the
// given size (§6.2.1 uses 282,797 prefixes — route.BGPTableSize).
func IPv4(prefixes int, seed int64, opts ...Option) (*Instance, error) {
	entries := route.GenerateBGPTable(prefixes, 64, seed)
	tbl, err := lookupv4.Build(entries)
	if err != nil {
		return nil, err
	}
	app := &apps.IPv4Fwd{Table: tbl, NumPorts: model.NumPorts}
	return build(app, func(cfg *core.Config) Source {
		return &pktgen.UDP4Source{Size: cfg.PacketSize, Seed: uint64(seed), Table: entries}
	}, opts)
}

// IPv6 assembles an IPv6 forwarder with n random prefixes (§6.2.2 uses
// 200,000).
func IPv6(prefixes int, seed int64, opts ...Option) (*Instance, error) {
	entries := route.GenerateIPv6Table(prefixes, 64, seed)
	app := &apps.IPv6Fwd{Table: lookupv6.Build(entries), NumPorts: model.NumPorts}
	return build(app, func(cfg *core.Config) Source {
		return &pktgen.UDP6Source{Size: cfg.PacketSize, Seed: uint64(seed), Table: entries}
	}, opts)
}

// IPsec assembles the ESP tunnel gateway (§6.2.4), one SA per port.
func IPsec(seed int64, opts ...Option) (*Instance, error) {
	app := apps.NewIPsecGW(model.NumPorts)
	return build(app, func(cfg *core.Config) Source {
		return &pktgen.UDP4Source{Size: cfg.PacketSize, Seed: uint64(seed)}
	}, opts)
}

// OpenFlowSwitch wraps a caller-configured switch data path (§6.2.3)
// fed by a caller-supplied frame source.
func OpenFlowSwitch(sw *openflow.Switch, src Source, opts ...Option) (*Instance, error) {
	app := apps.NewOFSwitch(sw, model.NumPorts)
	return build(app, func(*core.Config) Source { return src }, opts)
}

// Run starts the router (first call), advances virtual time by d, and
// reports. Repeated Run calls continue the same simulation; the
// measurement window restarts each call, so a warmup Run followed by a
// measurement Run excludes transients.
func (i *Instance) Run(d Duration) Report {
	if !i.started {
		i.Router.Start()
		i.started = true
	}
	i.Router.ResetMeasurement()
	i.Env.Run(i.Env.Now() + sim.Time(d))
	_, rxDropped, _, txDropped := i.Router.Engine.AggregateStats()
	return Report{
		DeliveredGbps:  i.Router.DeliveredGbps(),
		InputGbps:      i.Router.InputGbps(),
		MeanLatencyUs:  i.Sink.MeanMicros(),
		P99LatencyUs:   i.Sink.PercentileMicros(0.99),
		DroppedPackets: rxDropped + txDropped + i.Router.Stats.Drops,
		DegradedTime:   i.Router.DegradedTime(),
		Stats:          i.Router.Stats,
	}
}
