package apps

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"packetshader/internal/core"
	"packetshader/internal/ipsec"
	"packetshader/internal/lookup/ipv4"
	"packetshader/internal/lookup/ipv6"
	"packetshader/internal/openflow"
	"packetshader/internal/packet"
	"packetshader/internal/route"
	"packetshader/internal/sim"
)

var (
	srcMAC = packet.MAC{2, 0, 0, 0, 0, 1}
	dstMAC = packet.MAC{2, 0, 0, 0, 0, 2}
)

func mkChunk(frames ...[]byte) *core.Chunk {
	pool := packet.NewBufPool(2048)
	c := &core.Chunk{}
	for i, f := range frames {
		b := pool.Get(len(f))
		copy(b.Data, f)
		b.Port = i % 8
		b.Hash = uint32(i * 2654435761)
		c.Bufs = append(c.Bufs, b)
		c.OutPorts = append(c.OutPorts, 0)
	}
	return c
}

func udp4Frame(dst packet.IPv4Addr, size int) []byte {
	buf := make([]byte, 2048)
	return packet.BuildUDP4(buf, size, srcMAC, dstMAC, 0x0B000001, dst, 1111, 2222)
}

// ---------------------------------------------------------------------------
// IPv4 forwarding
// ---------------------------------------------------------------------------

func buildIPv4App(t *testing.T, entries []route.Entry) *IPv4Fwd {
	t.Helper()
	tbl, err := ipv4.Build(entries)
	if err != nil {
		t.Fatal(err)
	}
	return &IPv4Fwd{Table: tbl, NumPorts: 8}
}

func TestIPv4FwdFastPath(t *testing.T) {
	entries := []route.Entry{
		{Prefix: route.Prefix{Addr: 0x0A000000, Len: 8}, NextHop: 3},
	}
	app := buildIPv4App(t, entries)
	c := mkChunk(udp4Frame(0x0A010101, 64))
	pre := app.PreShade(c)
	if pre.Threads != 1 || pre.InBytes != 4 || pre.OutBytes != 2 {
		t.Errorf("pre = %+v", pre)
	}
	app.RunKernel(c)
	app.PostShade(c)
	if c.OutPorts[0] != 3 {
		t.Errorf("out port = %d, want 3", c.OutPorts[0])
	}
	// TTL decremented and checksum still valid.
	hdr := c.Bufs[0].Data[packet.EthHdrLen:]
	if hdr[8] != 63 {
		t.Errorf("TTL = %d, want 63", hdr[8])
	}
	if !packet.VerifyIPv4Checksum(hdr) {
		t.Error("checksum invalid after TTL decrement")
	}
}

func TestIPv4FwdNoRouteDrops(t *testing.T) {
	app := buildIPv4App(t, nil)
	c := mkChunk(udp4Frame(0x0A010101, 64))
	app.PreShade(c)
	app.RunKernel(c)
	app.PostShade(c)
	if c.OutPorts[0] != -1 {
		t.Errorf("unroutable packet got port %d", c.OutPorts[0])
	}
}

func TestIPv4FwdSlowPathTTLExpired(t *testing.T) {
	app := buildIPv4App(t, []route.Entry{
		{Prefix: route.Prefix{Addr: 0, Len: 0}, NextHop: 1},
	})
	frame := udp4Frame(0x0A010101, 64)
	hdr := frame[packet.EthHdrLen:]
	hdr[8] = 1 // TTL 1: would expire
	binary.BigEndian.PutUint16(hdr[10:12], 0)
	cs := packet.Checksum(hdr[:20])
	binary.BigEndian.PutUint16(hdr[10:12], cs)
	c := mkChunk(frame)
	app.PreShade(c)
	app.RunKernel(c)
	app.PostShade(c)
	if c.OutPorts[0] != -1 {
		t.Error("TTL-expired packet forwarded")
	}
	if app.SlowPath != 1 {
		t.Errorf("slow path = %d", app.SlowPath)
	}
}

func TestIPv4FwdBadChecksumSlowPath(t *testing.T) {
	app := buildIPv4App(t, []route.Entry{
		{Prefix: route.Prefix{Addr: 0, Len: 0}, NextHop: 1},
	})
	frame := udp4Frame(0x0A010101, 64)
	frame[packet.EthHdrLen+10] ^= 0xff // corrupt checksum
	c := mkChunk(frame)
	app.PreShade(c)
	app.RunKernel(c)
	app.PostShade(c)
	if c.OutPorts[0] != -1 || app.SlowPath != 1 {
		t.Error("bad-checksum packet not punted")
	}
}

func TestIPv4CPUWorkMatchesKernel(t *testing.T) {
	entries := route.GenerateBGPTable(2000, 8, 5)
	app := buildIPv4App(t, entries)
	rng := rand.New(rand.NewSource(1))
	var frames [][]byte
	for i := 0; i < 64; i++ {
		e := entries[rng.Intn(len(entries))]
		frames = append(frames, udp4Frame(e.Prefix.Addr, 64))
	}
	gpuChunk := mkChunk(frames...)
	app.PreShade(gpuChunk)
	app.RunKernel(gpuChunk)
	app.PostShade(gpuChunk)

	cpuChunk := mkChunk(frames...)
	app.PreShade(cpuChunk)
	if cyc := app.CPUWork(cpuChunk); cyc <= 0 {
		t.Error("CPUWork charged no cycles")
	}
	app.PostShade(cpuChunk)
	for i := range frames {
		if gpuChunk.OutPorts[i] != cpuChunk.OutPorts[i] {
			t.Fatalf("packet %d: GPU port %d, CPU port %d", i,
				gpuChunk.OutPorts[i], cpuChunk.OutPorts[i])
		}
	}
}

// ---------------------------------------------------------------------------
// IPv6 forwarding
// ---------------------------------------------------------------------------

func udp6Frame(dst packet.IPv6Addr, size int) []byte {
	buf := make([]byte, 2048)
	src := packet.IPv6AddrFromParts(0x20010db800000001, 1)
	return packet.BuildUDP6(buf, size, srcMAC, dstMAC, src, dst, 6, 7)
}

func TestIPv6FwdForwardAndHopLimit(t *testing.T) {
	entries := []route.Entry6{
		{Prefix6: route.Prefix6{Hi: 0x20010db800000000, Len: 32}, NextHop: 5},
	}
	app := &IPv6Fwd{Table: ipv6.Build(entries), NumPorts: 8}
	dst := packet.IPv6AddrFromParts(0x20010db8aaaa0000, 99)
	c := mkChunk(udp6Frame(dst, 78))
	pre := app.PreShade(c)
	if pre.InBytes != 16 {
		t.Errorf("in bytes = %d, want 16 (four times IPv4's copy volume)", pre.InBytes)
	}
	app.RunKernel(c)
	app.PostShade(c)
	if c.OutPorts[0] != 5 {
		t.Errorf("port = %d, want 5", c.OutPorts[0])
	}
	if hl := c.Bufs[0].Data[packet.EthHdrLen+7]; hl != 63 {
		t.Errorf("hop limit = %d, want 63", hl)
	}
}

func TestIPv6FwdHopLimitExpired(t *testing.T) {
	app := &IPv6Fwd{Table: ipv6.Build(nil), NumPorts: 8}
	dst := packet.IPv6AddrFromParts(1<<61, 0)
	frame := udp6Frame(dst, 78)
	frame[packet.EthHdrLen+7] = 1
	c := mkChunk(frame)
	app.PreShade(c)
	app.PostShade(c)
	if c.OutPorts[0] != -1 || app.SlowPath != 1 {
		t.Error("expired hop limit not punted")
	}
}

func TestIPv6CPUWorkMatchesKernel(t *testing.T) {
	entries := route.GenerateIPv6Table(1000, 8, 2)
	app := &IPv6Fwd{Table: ipv6.Build(entries), NumPorts: 8}
	rng := rand.New(rand.NewSource(2))
	var frames [][]byte
	for i := 0; i < 64; i++ {
		e := entries[rng.Intn(len(entries))]
		frames = append(frames, udp6Frame(packet.IPv6AddrFromParts(e.Prefix6.Hi, e.Prefix6.Lo), 78))
	}
	g := mkChunk(frames...)
	app.PreShade(g)
	app.RunKernel(g)
	app.PostShade(g)
	cchunk := mkChunk(frames...)
	app.PreShade(cchunk)
	app.CPUWork(cchunk)
	app.PostShade(cchunk)
	for i := range frames {
		if g.OutPorts[i] != cchunk.OutPorts[i] {
			t.Fatalf("packet %d diverges", i)
		}
	}
}

// ---------------------------------------------------------------------------
// OpenFlow switch
// ---------------------------------------------------------------------------

func TestOFSwitchExactMatch(t *testing.T) {
	sw := openflow.NewSwitch(16)
	frame := udp4Frame(0x0A0B0C0D, 64)
	c := mkChunk(frame)
	app := NewOFSwitch(sw, 8)
	app.PreShade(c)
	key := c.State.(*ofState).keys[0]
	sw.Exact.Insert(key, openflow.Action{Type: openflow.ActionOutput, Port: 6})

	app.RunKernel(c)
	app.PostShade(c)
	if c.OutPorts[0] != 6 {
		t.Errorf("port = %d, want 6", c.OutPorts[0])
	}
}

func TestOFSwitchWildcardFallback(t *testing.T) {
	sw := openflow.NewSwitch(16)
	sw.Wildcard.Insert(openflow.Rule{
		Wild: openflow.WAll, Priority: 1,
		Action: openflow.Action{Type: openflow.ActionOutput, Port: 2},
	})
	app := NewOFSwitch(sw, 8)
	c := mkChunk(udp4Frame(0x01020304, 64))
	app.PreShade(c)
	app.RunKernel(c)
	app.PostShade(c)
	if c.OutPorts[0] != 2 {
		t.Errorf("port = %d, want wildcard's 2", c.OutPorts[0])
	}
}

func TestOFSwitchMissDrops(t *testing.T) {
	sw := openflow.NewSwitch(16)
	app := NewOFSwitch(sw, 8)
	c := mkChunk(udp4Frame(0x01020304, 64))
	app.PreShade(c)
	app.RunKernel(c)
	app.PostShade(c)
	if c.OutPorts[0] != -1 {
		t.Error("miss not dropped")
	}
	if sw.Misses != 1 {
		t.Errorf("misses = %d", sw.Misses)
	}
}

func TestOFSwitchCPUAndGPUPathsAgree(t *testing.T) {
	sw := openflow.NewSwitch(1024)
	rng := rand.New(rand.NewSource(3))
	var frames [][]byte
	for i := 0; i < 32; i++ {
		frames = append(frames, udp4Frame(packet.IPv4Addr(rng.Uint32()), 64))
	}
	// Install exact entries for half of them.
	tmp := mkChunk(frames...)
	app := NewOFSwitch(sw, 8)
	app.PreShade(tmp)
	keys := tmp.State.(*ofState).keys
	for i := 0; i < 16; i++ {
		sw.Exact.Insert(keys[i], openflow.Action{Type: openflow.ActionOutput, Port: uint16(i % 8)})
	}
	sw.Wildcard.Insert(openflow.Rule{
		Wild: openflow.WAll &^ openflow.WNwProto, Priority: 3,
		Key:    openflow.FlowKey{NwProto: packet.ProtoUDP},
		Action: openflow.Action{Type: openflow.ActionOutput, Port: 7},
	})

	g := mkChunk(frames...)
	app.PreShade(g)
	app.RunKernel(g)
	app.PostShade(g)

	cpu := mkChunk(frames...)
	app.PreShade(cpu)
	app.CPUWork(cpu)
	app.PostShade(cpu)

	for i := range frames {
		if g.OutPorts[i] != cpu.OutPorts[i] {
			t.Fatalf("packet %d: GPU %d vs CPU %d", i, g.OutPorts[i], cpu.OutPorts[i])
		}
	}
}

func TestOFKernelCostGrowsWithWildcardTable(t *testing.T) {
	sw := openflow.NewSwitch(16)
	app := NewOFSwitch(sw, 8)
	small := app.Kernel().ExecTime(1024, 0)
	for i := 0; i < 256; i++ {
		sw.Wildcard.Insert(openflow.Rule{Wild: openflow.WAll, Priority: i,
			Action: openflow.Action{Type: openflow.ActionDrop}})
	}
	big := app.Kernel().ExecTime(1024, 0)
	if big <= small {
		t.Errorf("wildcard growth did not increase kernel cost: %v vs %v", big, small)
	}
}

func TestOFExactProbeCostGrowsWithTableSize(t *testing.T) {
	mk := func(n int) float64 {
		sw := openflow.NewSwitch(n)
		rng := rand.New(rand.NewSource(4))
		var k openflow.FlowKey
		for i := 0; i < n; i++ {
			k.NwSrc = packet.IPv4Addr(rng.Uint32())
			k.TpDst = uint16(i)
			sw.Exact.Insert(k, openflow.Action{})
		}
		return NewOFSwitch(sw, 8).exactProbeCycles()
	}
	if small, big := mk(1024), mk(1<<20); big <= small {
		t.Errorf("probe cost flat: %v vs %v", small, big)
	}
}

// ---------------------------------------------------------------------------
// IPsec gateway
// ---------------------------------------------------------------------------

func TestIPsecGWEncapsulatesVerifiably(t *testing.T) {
	app := NewIPsecGW(8)
	frame := udp4Frame(0x0C000001, 100)
	orig := make([]byte, len(frame))
	copy(orig, frame)
	c := mkChunk(frame)
	pre := app.PreShade(c)
	if pre.StreamBytes <= 0 || pre.InBytes <= 0 {
		t.Errorf("pre = %+v", pre)
	}
	app.RunKernel(c)
	app.PostShade(c)
	if app.Errors != 0 {
		t.Fatalf("encap errors: %d", app.Errors)
	}
	out := c.Bufs[0].Data
	if len(out) <= len(orig) {
		t.Fatal("ESP did not grow the packet")
	}
	// Decap with a receiver SA built from the same parameters.
	saIdx := c.State.(*ipsecState).sa[0]
	if c.OutPorts[0] != saIdx%8 {
		t.Errorf("routed to %d, want SA port %d", c.OutPorts[0], saIdx)
	}
	tx := app.SAs[saIdx]
	enc := make([]byte, 16)
	auth := make([]byte, 20)
	for j := range enc {
		enc[j] = byte(saIdx*16 + j)
	}
	for j := range auth {
		auth[j] = byte(saIdx*20 + j + 1)
	}
	rx := ipsec.NewSA(tx.SPI, uint32(0xabcd0000+saIdx), enc, auth, tx.LocalIP, tx.PeerIP)
	inner, err := rx.Decap(out[packet.EthHdrLen:])
	if err != nil {
		t.Fatalf("decap: %v", err)
	}
	if string(inner) != string(orig[packet.EthHdrLen:]) {
		t.Error("decapped inner differs from original")
	}
}

func TestIPsecGWNonIPv4Dropped(t *testing.T) {
	app := NewIPsecGW(8)
	dst := packet.IPv6AddrFromParts(1<<61, 0)
	c := mkChunk(udp6Frame(dst, 78))
	app.PreShade(c)
	app.RunKernel(c)
	app.PostShade(c)
	if c.OutPorts[0] != -1 {
		t.Error("IPv6 packet encapsulated by IPv4 tunnel app")
	}
}

func TestIPsecGWCPUPathSameResult(t *testing.T) {
	app := NewIPsecGW(8)
	app2 := NewIPsecGW(8) // fresh SAs so sequence numbers match
	var frames [][]byte
	for i := 0; i < 8; i++ {
		frames = append(frames, udp4Frame(packet.IPv4Addr(0x0C000000+uint32(i)), 64+i*10))
	}
	g := mkChunk(frames...)
	app.PreShade(g)
	app.RunKernel(g)
	app.PostShade(g)
	c := mkChunk(frames...)
	app2.PreShade(c)
	if cyc := app2.CPUWork(c); cyc <= 0 {
		t.Error("no CPU cycles charged")
	}
	app2.PostShade(c)
	for i := range frames {
		if string(g.Bufs[i].Data) != string(c.Bufs[i].Data) {
			t.Fatalf("packet %d: GPU and CPU ESP output differ", i)
		}
		if g.OutPorts[i] != c.OutPorts[i] {
			t.Fatalf("packet %d: ports differ", i)
		}
	}
}

func TestIPsecGWThroughputMetricBytes(t *testing.T) {
	// Pre-shading reports stream bytes ≈ ESP-grown sizes, which drive
	// the GPU cipher cost.
	app := NewIPsecGW(8)
	c := mkChunk(udp4Frame(0x0C000001, 1000))
	pre := app.PreShade(c)
	innerLen := 1000 - packet.EthHdrLen
	want := innerLen + ipsec.EncapOverhead(innerLen)
	if pre.StreamBytes != want {
		t.Errorf("stream bytes = %d, want %d", pre.StreamBytes, want)
	}
}

// simEnv and simTime are tiny helpers for router-level app tests.
func simEnv() *sim.Env { return sim.NewEnv() }

func simTime(ms int) sim.Time { return sim.Time(sim.Duration(ms) * sim.Millisecond) }

// garbageSource injects malformed frames mixed with valid ones —
// failure injection for the router fast path.
type garbageSource struct{ entries []route.Entry }

func (s garbageSource) Fill(b *packet.Buf, port, queue int, seq uint64) {
	switch seq % 4 {
	case 0: // valid routed packet
		e := s.entries[int(seq)%len(s.entries)]
		b.Data = packet.BuildUDP4(b.Data[:cap(b.Data)], 64, srcMAC, dstMAC,
			0x0A000001, e.Prefix.Addr, 5, 5)
	case 1: // random bytes
		x := seq * 0x9e3779b97f4a7c15
		for i := range b.Data {
			b.Data[i] = byte(x >> (uint(i) % 56))
		}
	case 2: // corrupted checksum
		b.Data = packet.BuildUDP4(b.Data[:cap(b.Data)], 64, srcMAC, dstMAC,
			1, 2, 3, 4)
		b.Data[packet.EthHdrLen+10] ^= 0xFF
	default: // TTL already at 1
		b.Data = packet.BuildUDP4(b.Data[:cap(b.Data)], 64, srcMAC, dstMAC,
			1, 2, 3, 4)
		hdr := b.Data[packet.EthHdrLen:]
		hdr[8] = 1
		hdr[10], hdr[11] = 0, 0
		cs := packet.Checksum(hdr[:20])
		hdr[10], hdr[11] = byte(cs>>8), byte(cs)
	}
}

// TestRouterSurvivesGarbageFlood: a 75%-malformed traffic mix must not
// crash the pipeline; valid packets still forward and the slow path
// counts the rest.
func TestRouterSurvivesGarbageFlood(t *testing.T) {
	entries := route.GenerateBGPTable(2000, 8, 6)
	for _, mode := range []core.Mode{core.ModeCPUOnly, core.ModeGPU} {
		app := buildIPv4App(t, entries)
		env := simEnv()
		cfg := core.DefaultConfig()
		cfg.Mode = mode
		cfg.IO.Nodes, cfg.IO.Ports = 1, 2
		cfg.OfferedGbpsPerPort = 5
		r := core.New(env, cfg, app)
		r.SetSource(garbageSource{entries: entries})
		r.Start()
		env.Run(simTime(3))
		_, _, tx, _ := r.Engine.AggregateStats()
		if tx == 0 {
			t.Errorf("mode %v: no valid packets forwarded through the flood", mode)
		}
		if app.SlowPath == 0 {
			t.Errorf("mode %v: no slow-path punts despite 75%% garbage", mode)
		}
		// Roughly three quarters should be punted/dropped.
		total := r.Stats.Packets
		if app.SlowPath < total/2 {
			t.Errorf("mode %v: slow path %d of %d, want ≈75%%", mode, app.SlowPath, total)
		}
	}
}

func TestOFSwitchAppliesModifyActions(t *testing.T) {
	sw := openflow.NewSwitch(16)
	frame := udp4Frame(0x0A0B0C0D, 100)
	c := mkChunk(frame)
	app := NewOFSwitch(sw, 8)
	app.PreShade(c)
	key := c.State.(*ofState).keys[0]
	newDst := packet.MAC{9, 8, 7, 6, 5, 4}
	sw.Exact.Insert(key, openflow.Action{
		Type: openflow.ActionOutput, Port: 3,
		Mods: []openflow.Mod{
			{Type: openflow.ModSetDlDst, MAC: newDst},
			{Type: openflow.ModSetNwDst, IP: packet.IPv4Addr(0x01010101)},
		},
	})
	app.RunKernel(c)
	app.PostShade(c)
	if c.OutPorts[0] != 3 {
		t.Fatalf("port = %d", c.OutPorts[0])
	}
	var d packet.Decoder
	if err := d.Decode(c.Bufs[0].Data); err != nil {
		t.Fatal(err)
	}
	if d.Eth.Dst != newDst || d.IPv4.Dst != 0x01010101 {
		t.Errorf("rewrites not applied: %v %v", d.Eth.Dst, d.IPv4.Dst)
	}
	if !packet.VerifyIPv4Checksum(c.Bufs[0].Data[packet.EthHdrLen:]) {
		t.Error("checksum broken by rewrite")
	}
}

// TestPreShadeWritesEveryOutPort pins the App contract core relies on:
// PreShade must write every OutPorts slot (forward, -1 drop, or -2 slow
// path), because worker.fetchChunk recycles chunks WITHOUT clearing
// OutPorts. Every slot is poisoned with a sentinel before PreShade; a
// surviving sentinel would mean a recycled chunk could leak a stale
// forwarding decision.
func TestPreShadeWritesEveryOutPort(t *testing.T) {
	const sentinel = 0x7ead
	entries := []route.Entry{
		{Prefix: route.Prefix{Addr: 0x0A000000, Len: 8}, NextHop: 3},
	}
	entries6 := []route.Entry6{
		{Prefix6: route.Prefix6{Hi: 0x20010db800000000, Len: 32}, NextHop: 5},
	}
	garbage := make([]byte, 60) // non-IP noise
	for i := range garbage {
		garbage[i] = byte(i * 37)
	}
	short := []byte{1, 2, 3}
	// A frame mix no single app fully accepts: valid IPv4/UDP, valid
	// IPv6/UDP, garbage, and a truncated runt.
	mix := [][]byte{
		udp4Frame(0x0A010101, 64),
		udp4Frame(0x0B010101, 64),
		udp6Frame(packet.IPv6AddrFromParts(0x20010db8aaaa0000, 9), 78),
		garbage,
		short,
	}
	multi, _, _ := newMulti(t)
	_, term := termFixture(t)
	appsUnderTest := map[string]core.App{
		"ipv4fwd":   buildIPv4App(t, entries),
		"ipv6fwd":   &IPv6Fwd{Table: ipv6.Build(entries6), NumPorts: 8},
		"ofswitch":  NewOFSwitch(openflow.NewSwitch(16), 8),
		"ipsecgw":   NewIPsecGW(8),
		"ipsecterm": term,
		"multiapp":  multi,
	}
	for name, app := range appsUnderTest {
		c := mkChunk(mix...)
		for i := range c.OutPorts {
			c.OutPorts[i] = sentinel
		}
		app.PreShade(c)
		for i, p := range c.OutPorts {
			if p == sentinel {
				t.Errorf("%s: PreShade left OutPorts[%d] unwritten", name, i)
			}
		}
	}
}
