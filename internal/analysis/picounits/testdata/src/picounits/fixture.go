// Fixture for the picounits analyzer: converting a bare numeric literal
// to sim.Duration/sim.Time hides a picosecond magnitude; spell the unit.
package picounits

import "packetshader/internal/sim"

func bad() sim.Duration {
	_ = sim.Duration(500)    // want `bare literal sim\.Duration\(500\): picosecond magnitude is implicit`
	_ = sim.Time(1000)       // want `bare literal sim\.Time\(1000\)`
	_ = sim.Duration(-3)     // want `bare literal sim\.Duration\(-3\)`
	_ = sim.Duration((250))  // want `bare literal sim\.Duration\(250\)`
	return sim.Duration(1e3) // want `bare literal sim\.Duration\(1e3\)`
}

func good(x int64, f float64) {
	_ = 500 * sim.Nanosecond // unit spelled out: ok
	_ = sim.Duration(0)      // zero has no magnitude
	_ = sim.Time(0)
	_ = sim.Duration(x)                // non-literal: assumed already scaled
	_ = sim.DurationFromSeconds(5e-7)  // explicit-unit constructor
	_ = sim.Duration(float64(x) * 0.5) // computed expression
	_ = sim.DurationFromSeconds(f)
}
