package ctrl

import (
	"fmt"
	"io"

	"packetshader/internal/core"
	"packetshader/internal/obs"
	"packetshader/internal/sim"
)

// Config wires a Controller to its router-side collaborators.
type Config struct {
	// Out receives command responses (confirmations, stats/metrics
	// snapshots, errors) in virtual-time order. nil discards them.
	Out io.Writer
	// FIB applies OpRoute batches. nil rejects route commands at Attach.
	FIB FIBApplier
	// Reg is the metrics registry OpMetrics snapshots — it must be the
	// registry installed with Router.EnableObs, so ObserveStats refreshes
	// it before each dump. nil downgrades OpMetrics to a stats line.
	Reg *obs.Registry
}

// exec is the per-command delivery record. Each scheduled callback owns
// exactly its own record (captured loop-locally in Attach, the
// injector's pattern), so deliveries share no mutable state; the
// Controller's accessors merge the records at read time.
type exec struct {
	cmd     Command
	fired   bool
	applied uint64 // route updates applied (OpRoute)
	cells   uint64 // DIR-24-8 cells touched (OpRoute)
	err     string // non-empty when the command failed
}

// Controller is an attached management session: every script command is
// scheduled on the virtual clock, and the record of what each one did
// is queryable once the run has advanced past it.
type Controller struct {
	env    *sim.Env
	router *core.Router
	out    io.Writer
	fib    FIBApplier
	reg    *obs.Registry

	recs []exec
}

// Attach schedules every command of script at now+Command.At on env's
// virtual clock, against router. Commands fire in scheduler context in
// (At, script-order) sequence — between worker steps, never mid-chunk —
// so reconfiguration timing is exact and the run stays deterministic.
// Attach returns an error if the script needs a collaborator the config
// does not provide (route commands without a FIBApplier) or if a
// command is malformed; nothing is scheduled on error.
func Attach(env *sim.Env, router *core.Router, script *Script, cfg Config) (*Controller, error) {
	cmds := script.Commands()
	for _, cmd := range cmds {
		if err := precheck(cmd, router, cfg); err != nil {
			return nil, err
		}
	}
	c := &Controller{
		env:    env,
		router: router,
		out:    cfg.Out,
		fib:    cfg.FIB,
		reg:    cfg.Reg,
		recs:   make([]exec, len(cmds)),
	}
	now := env.Now()
	for i, cmd := range cmds {
		c.recs[i].cmd = cmd
	}
	for i := range c.recs {
		rec := &c.recs[i]
		// The record writes happen here, through the loop-local
		// capture: run() never sees rec, so no two callbacks share
		// mutable state (the injector's delivery-record pattern).
		env.At(now+sim.Time(rec.cmd.At), func() {
			applied, cells, errs := c.run(rec.cmd)
			rec.fired = true
			rec.applied = applied
			rec.cells = cells
			rec.err = errs
		})
	}
	return c, nil
}

// precheck rejects commands that could never execute, so a bad script
// fails loudly at attach time instead of silently mid-run.
func precheck(cmd Command, router *core.Router, cfg Config) error {
	switch cmd.Op {
	case OpRoute:
		if cfg.FIB == nil {
			return fmt.Errorf("ctrl: script has route commands but no FIBApplier is configured (build the router with an updatable FIB)")
		}
		if len(cmd.Routes) == 0 {
			return fmt.Errorf("ctrl: empty route batch at %v", cmd.At)
		}
	case OpChunkCap, OpGatherMax:
		if cmd.N < 1 {
			return fmt.Errorf("ctrl: %s %d at %v: value must be >= 1", cmd.Op, cmd.N, cmd.At)
		}
	case OpPortAdmin:
		if cmd.N < 0 || cmd.N >= len(router.Engine.Ports) {
			return fmt.Errorf("ctrl: port %d at %v outside 0..%d", cmd.N, cmd.At, len(router.Engine.Ports)-1)
		}
	}
	return nil
}

// run executes one command in scheduler context and returns what it did
// (route updates applied, cells touched, error text); the caller owns
// the delivery record.
func (c *Controller) run(cmd Command) (applied, cells uint64, errs string) {
	switch cmd.Op {
	case OpRoute:
		cells, err := c.fib.ApplyRoutes(cmd.Routes)
		if err != nil {
			c.printf("@%v route error: %v\n", c.env.Now(), err)
			return 0, cells, err.Error()
		}
		c.printf("@%v route applied=%d cells=%d\n", c.env.Now(), len(cmd.Routes), cells)
		return uint64(len(cmd.Routes)), cells, ""
	case OpChunkCap:
		c.router.SetChunkCap(cmd.N)
		c.printf("@%v set chunkcap %d\n", c.env.Now(), cmd.N)
	case OpGatherMax:
		c.router.SetGatherMax(cmd.N)
		c.printf("@%v set gathermax %d\n", c.env.Now(), cmd.N)
	case OpOpportunistic:
		c.router.SetOpportunistic(cmd.On)
		c.printf("@%v set opportunistic %s\n", c.env.Now(), onOff(cmd.On))
	case OpPortAdmin:
		c.router.SetCarrier(cmd.N, cmd.On)
		c.printf("@%v port %d %s\n", c.env.Now(), cmd.N, upDown(cmd.On))
	case OpStats:
		c.stats()
	case OpMetrics:
		if c.reg == nil {
			c.stats()
			return 0, 0, ""
		}
		c.printf("@%v metrics:\n", c.env.Now())
		if c.out != nil {
			c.router.ObserveStats()
			c.reg.Dump(c.out) //nolint:errcheck // best-effort, like the end-of-run dumps
		}
	}
	return 0, 0, ""
}

// stats streams the one-line framework counter snapshot.
func (c *Controller) stats() {
	r := c.router
	rx, rxDropped, tx, txDropped := r.Engine.AggregateStats()
	c.printf("@%v stats packets=%d rx=%d rx_dropped=%d tx=%d tx_dropped=%d app_drops=%d chunks_cpu=%d chunks_gpu=%d launches=%d delivered_gbps=%.2f\n",
		c.env.Now(), r.Stats.Packets, rx, rxDropped, tx, txDropped,
		r.Stats.Drops, r.Stats.ChunksCPU, r.Stats.ChunksGPU,
		r.Stats.GPULaunches, r.DeliveredGbps())
}

func (c *Controller) printf(format string, args ...any) {
	if c.out != nil {
		fmt.Fprintf(c.out, format, args...)
	}
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}

func upDown(b bool) string {
	if b {
		return "up"
	}
	return "down"
}

// Fired reports how many commands have executed so far.
func (c *Controller) Fired() int {
	n := 0
	for i := range c.recs {
		if c.recs[i].fired {
			n++
		}
	}
	return n
}

// RoutesApplied reports the route updates applied so far, merged from
// the per-command records at read time.
func (c *Controller) RoutesApplied() uint64 {
	var n uint64
	for i := range c.recs {
		n += c.recs[i].applied
	}
	return n
}

// CellsTouched reports the cumulative DIR-24-8 cells touched by route
// commands so far.
func (c *Controller) CellsTouched() uint64 {
	var n uint64
	for i := range c.recs {
		n += c.recs[i].cells
	}
	return n
}

// Errors returns the error strings of failed commands, in command
// order (empty slice when everything succeeded).
func (c *Controller) Errors() []string {
	var out []string
	for i := range c.recs {
		if c.recs[i].err != "" {
			out = append(out, c.recs[i].err)
		}
	}
	return out
}
