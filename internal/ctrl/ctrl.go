// Package ctrl is the deterministic control plane: a management session
// for a running router whose commands arrive on the *virtual* clock.
//
// A Script is a timestamped list of management commands — route
// add/del/replace batches, live batch-policy retuning (chunk cap,
// gather max, opportunistic offload), port admin up/down, and
// stats/metrics snapshots. Attaching a Script to a router schedules
// every command as a simulation event at its offset from the attach
// instant, exactly the way internal/faults arms a fault plan, so a
// management session is part of a run's deterministic input: replaying
// the same script against the same seed produces byte-identical output,
// reconfiguration included.
//
// Commands reach the data path through three mediation channels, each
// chosen so live reconfiguration stays inside the determinism contract:
//
//   - route updates mutate the FIB through a FIBApplier in scheduler
//     context — atomic on the virtual clock because no worker runs
//     mid-callback, and every intermediate DIR-24-8 state is a
//     consistent routing function (internal/lookup/ipv4.DynamicTable);
//   - batch-policy knobs travel through per-worker/per-master tuning
//     queues (core.Router.SetChunkCap and friends), the same
//     scheduler-visible hand-off pattern as the master's gpuStatus
//     queue;
//   - port admin reuses the faults.Target carrier hooks.
//
// The text form of a Script (the .psc command language) is parsed by
// ParseScript; cmd/pshader's -ctrl flag runs the router as `pshaderd`,
// a long-lived service under script control.
package ctrl

import (
	"fmt"
	"sort"

	"packetshader/internal/route"
	"packetshader/internal/sim"
)

// Op is a management command type.
type Op uint8

// Command operations.
const (
	// OpRoute applies the command's Routes batch to the FIB.
	OpRoute Op = iota
	// OpChunkCap retunes the per-chunk packet cap (§5.3).
	OpChunkCap
	// OpGatherMax retunes chunks-per-GPU-launch (§5.4).
	OpGatherMax
	// OpOpportunistic toggles opportunistic offload (§7).
	OpOpportunistic
	// OpPortAdmin raises or drops one port's carrier.
	OpPortAdmin
	// OpStats streams a one-line framework counter snapshot.
	OpStats
	// OpMetrics streams a full metrics-registry snapshot.
	OpMetrics
)

// String names the operation for responses and errors.
func (o Op) String() string {
	switch o {
	case OpRoute:
		return "route"
	case OpChunkCap:
		return "set chunkcap"
	case OpGatherMax:
		return "set gathermax"
	case OpOpportunistic:
		return "set opportunistic"
	case OpPortAdmin:
		return "port"
	case OpStats:
		return "stats"
	case OpMetrics:
		return "metrics"
	default:
		return fmt.Sprintf("op-%d", uint8(o))
	}
}

// RouteAction is one route mutation kind inside an OpRoute batch.
type RouteAction uint8

// Route actions. ActAdd and ActReplace are the same table operation
// (DIR-24-8 insert overwrites); both are kept so scripts read like
// router CLIs and so appliers may distinguish them later.
const (
	ActAdd RouteAction = iota
	ActDel
	ActReplace
)

// String names the action.
func (a RouteAction) String() string {
	switch a {
	case ActAdd:
		return "add"
	case ActDel:
		return "del"
	case ActReplace:
		return "replace"
	default:
		return fmt.Sprintf("act-%d", uint8(a))
	}
}

// RouteUpdate is one route mutation.
type RouteUpdate struct {
	Act     RouteAction
	Prefix  route.Prefix
	NextHop uint16 // ignored for ActDel
}

// Command is one timestamped management command. At is an offset from
// the instant the script is attached (Attach), so scripts are
// position-independent and reusable across warmup phases, like fault
// plans.
type Command struct {
	At sim.Duration
	Op Op

	// Routes is the OpRoute batch: applied as one unit, so a
	// rebuild-strategy FIB pays one rebuild per batch.
	Routes []RouteUpdate
	// N carries the integer argument: the new cap for OpChunkCap /
	// OpGatherMax, the port for OpPortAdmin.
	N int
	// On carries the boolean argument: OpOpportunistic state,
	// OpPortAdmin carrier up.
	On bool
}

// RouteAdd returns a single-route add command.
func RouteAdd(at sim.Duration, p route.Prefix, nextHop uint16) Command {
	return Command{At: at, Op: OpRoute, Routes: []RouteUpdate{{Act: ActAdd, Prefix: p, NextHop: nextHop}}}
}

// RouteDel returns a single-route delete command.
func RouteDel(at sim.Duration, p route.Prefix) Command {
	return Command{At: at, Op: OpRoute, Routes: []RouteUpdate{{Act: ActDel, Prefix: p}}}
}

// RouteReplace returns a single-route replace command.
func RouteReplace(at sim.Duration, p route.Prefix, nextHop uint16) Command {
	return Command{At: at, Op: OpRoute, Routes: []RouteUpdate{{Act: ActReplace, Prefix: p, NextHop: nextHop}}}
}

// RouteBatch returns a batched route command: the whole batch is
// applied at one instant, and a rebuild-strategy FIB rebuilds once for
// all of it.
func RouteBatch(at sim.Duration, updates []RouteUpdate) Command {
	return Command{At: at, Op: OpRoute, Routes: updates}
}

// SetChunkCap returns a live chunk-cap retune command.
func SetChunkCap(at sim.Duration, n int) Command {
	return Command{At: at, Op: OpChunkCap, N: n}
}

// SetGatherMax returns a live gather-max retune command.
func SetGatherMax(at sim.Duration, n int) Command {
	return Command{At: at, Op: OpGatherMax, N: n}
}

// SetOpportunistic returns a live opportunistic-offload toggle command.
func SetOpportunistic(at sim.Duration, on bool) Command {
	return Command{At: at, Op: OpOpportunistic, On: on}
}

// PortAdmin returns a port admin command: up=false drops the port's
// carrier (RX stops, TX drops), up=true restores it.
func PortAdmin(at sim.Duration, port int, up bool) Command {
	return Command{At: at, Op: OpPortAdmin, N: port, On: up}
}

// Stats returns a counter-snapshot command.
func Stats(at sim.Duration) Command { return Command{At: at, Op: OpStats} }

// Metrics returns a metrics-registry-snapshot command.
func Metrics(at sim.Duration) Command { return Command{At: at, Op: OpMetrics} }

// Script is an ordered management-command schedule.
type Script struct {
	cmds []Command
}

// NewScript returns a script of the given commands.
func NewScript(cmds ...Command) *Script {
	s := &Script{}
	for _, c := range cmds {
		s.Add(c)
	}
	return s
}

// Add appends a command and returns the script for chaining.
func (s *Script) Add(c Command) *Script {
	s.cmds = append(s.cmds, c)
	return s
}

// Len reports the number of commands.
func (s *Script) Len() int {
	if s == nil {
		return 0
	}
	return len(s.cmds)
}

// HasRoutes reports whether any command mutates the FIB — such scripts
// need a router built with an updatable FIB (see FIBApplier).
func (s *Script) HasRoutes() bool {
	if s == nil {
		return false
	}
	for _, c := range s.cmds {
		if c.Op == OpRoute {
			return true
		}
	}
	return false
}

// RouteUpdates counts the individual route mutations across every
// OpRoute batch.
func (s *Script) RouteUpdates() int {
	if s == nil {
		return 0
	}
	n := 0
	for _, c := range s.cmds {
		if c.Op == OpRoute {
			n += len(c.Routes)
		}
	}
	return n
}

// Commands returns a copy of the schedule sorted by offset (stable, so
// same-instant commands keep script order — the deterministic
// tie-break, matching faults.Plan.Events).
func (s *Script) Commands() []Command {
	if s == nil {
		return nil
	}
	out := make([]Command, len(s.cmds))
	copy(out, s.cmds)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}
