// Package seededrand forbids math/rand's global, process-seeded source
// in the simulated stack.
//
// Workload generation (packet traces, synthetic BGP tables, Zipf flows)
// must be reproducible run-to-run, so all randomness under internal/
// must flow from an explicit rand.New(rand.NewSource(seed)) — the
// pattern internal/route already follows. Top-level calls such as
// rand.Intn or rand.Float64 draw from the shared global source, whose
// stream depends on whatever else the process consumed and (in
// math/rand/v2, or an unseeded v1 on modern Go) on a random per-process
// seed.
package seededrand

import (
	"go/ast"
	"go/types"

	"packetshader/internal/analysis"
)

// allowed are the constructors of explicit, seedable sources and
// generators; everything else at package scope is the global source.
var allowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

var Analyzer = &analysis.Analyzer{
	Name:         "seededrand",
	Doc:          "forbid the global math/rand source under internal/: use rand.New(rand.NewSource(seed))",
	InternalOnly: true,
	Run:          run,
}

func run(pass *analysis.Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "math/rand" && p != "math/rand/v2" {
			return true
		}
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
			return true // methods on *rand.Rand etc. are fine
		}
		if allowed[fn.Name()] || pass.IsTestFile(id.Pos()) {
			return true
		}
		pass.Reportf(id.Pos(),
			"rand.%s uses the global math/rand source; use an explicit seeded generator: rand.New(rand.NewSource(seed))",
			fn.Name())
		return true
	})
	return nil
}
