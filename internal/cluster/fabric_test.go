package cluster

import (
	"math"
	"reflect"
	"testing"

	"packetshader/internal/sim"
)

func fabCfg(n int, scheme Routing, m Matrix, workers int) FabricConfig {
	return FabricConfig{
		Cluster:     ps(n),
		Scheme:      scheme,
		Matrix:      m,
		LinkLatency: 50 * sim.Microsecond,
		Horizon:     5 * sim.Millisecond,
		Seed:        42,
		Workers:     workers,
	}
}

func TestFabricByteIdenticalAcrossWorkers(t *testing.T) {
	// The conservative-parallel world must produce the same FabricResult
	// no matter how many host goroutines advance the partitions.
	for _, scheme := range []Routing{Direct, VLB} {
		base, err := RunFabric(fabCfg(8, scheme, Uniform(8, 160), 1))
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{2, 8} {
			got, err := RunFabric(fabCfg(8, scheme, Uniform(8, 160), w))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, base) {
				t.Errorf("scheme %v: workers=%d diverged:\n got %+v\nwant %+v",
					scheme, w, got, base)
			}
		}
	}
}

func TestFabricDeliversAdmissibleLoad(t *testing.T) {
	// At a load the analytic model calls admissible, the fabric should
	// deliver nearly everything offered — the shortfall is only the
	// batches still in flight when the horizon cuts the run.
	for _, scheme := range []Routing{Direct, VLB} {
		n := 8
		m := Uniform(n, float64(n)*10) // 10 Gbps/node: well inside capacity
		ev, err := Evaluate(ps(n), scheme, m)
		if err != nil {
			t.Fatal(err)
		}
		if ev.Admissible < 1 {
			t.Fatalf("scheme %v: test load inadmissible (%.2f)", scheme, ev.Admissible)
		}
		res, err := RunFabric(fabCfg(n, scheme, m, 4))
		if err != nil {
			t.Fatal(err)
		}
		if res.DeliveredGbps < 0.9*res.OfferedGbps {
			t.Errorf("scheme %v: delivered %.1f of %.1f Gbps offered",
				scheme, res.DeliveredGbps, res.OfferedGbps)
		}
		if res.MeanLatency < sim.Duration(50*sim.Microsecond) {
			t.Errorf("scheme %v: mean latency %v below one link propagation",
				scheme, res.MeanLatency)
		}
	}
}

func TestFabricOverloadCapsAtCapacity(t *testing.T) {
	// Offered load far beyond the forwarding budget: the fabric delivers
	// no more than the analytic bottleneck admits, instead of inventing
	// throughput.
	n := 8
	m := Uniform(n, float64(n)*40) // 40 Gbps/node external: saturating
	res, err := RunFabric(fabCfg(n, VLB, m, 2))
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(ps(n), VLB, m)
	if err != nil {
		t.Fatal(err)
	}
	admissible := ev.Admissible * res.OfferedGbps
	if res.DeliveredGbps > admissible*1.05 {
		t.Errorf("delivered %.1f Gbps exceeds analytic admissible %.1f",
			res.DeliveredGbps, admissible)
	}
	if res.DeliveredGbps <= 0 {
		t.Error("overloaded fabric delivered nothing")
	}
}

func TestFabricHopsMatchScheme(t *testing.T) {
	// Direct routing takes exactly 2 forwarding operations per batch
	// (ingress node + egress node); VLB adds an intermediate for most
	// flows, so its mean sits strictly between 2 and 3. A permutation
	// matrix keeps the diagonal empty so no 1-hop local traffic dilutes
	// the means.
	n := 8
	m := Permutation(n, 10)
	direct, err := RunFabric(fabCfg(n, Direct, m, 1))
	if err != nil {
		t.Fatal(err)
	}
	if direct.MeanHops != 2 {
		t.Errorf("direct mean hops = %v, want exactly 2", direct.MeanHops)
	}
	vlb, err := RunFabric(fabCfg(n, VLB, m, 1))
	if err != nil {
		t.Fatal(err)
	}
	if vlb.MeanHops <= 2.1 || vlb.MeanHops >= 3 {
		t.Errorf("vlb mean hops = %v, want in (2.1, 3)", vlb.MeanHops)
	}
	if vlb.MeanLatency <= direct.MeanLatency {
		t.Errorf("vlb latency %v not above direct %v (extra hop is free?)",
			vlb.MeanLatency, direct.MeanLatency)
	}
}

func TestFabricSeedChangesVLBSpread(t *testing.T) {
	// Different seeds pick different flow keys, hence different VLB
	// intermediates; results must differ (and each be self-deterministic,
	// which TestFabricByteIdenticalAcrossWorkers already proves).
	cfg := fabCfg(8, VLB, Uniform(8, 160), 1)
	a, err := RunFabric(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 43
	b, err := RunFabric(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, b) {
		t.Error("different seeds produced identical fabric results")
	}
}

func TestFabricValidation(t *testing.T) {
	good := fabCfg(4, Direct, Uniform(4, 40), 1)
	if _, err := RunFabric(good); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mut  func(*FabricConfig)
	}{
		{"bad cluster", func(c *FabricConfig) { c.Cluster.Nodes = 1 }},
		{"directvlb unmodeled", func(c *FabricConfig) { c.Scheme = DirectVLB }},
		{"matrix size", func(c *FabricConfig) { c.Matrix = Uniform(5, 40) }},
		{"zero link latency", func(c *FabricConfig) { c.LinkLatency = 0 }},
		{"zero horizon", func(c *FabricConfig) { c.Horizon = 0 }},
	}
	for _, tc := range cases {
		cfg := fabCfg(4, Direct, Uniform(4, 40), 1)
		tc.mut(&cfg)
		if _, err := RunFabric(cfg); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestFabricOfferedMatchesMatrix(t *testing.T) {
	res, err := RunFabric(fabCfg(4, Direct, Uniform(4, 80), 1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.OfferedGbps-80) > 1e-9 {
		t.Errorf("offered = %v, want 80", res.OfferedGbps)
	}
	// Generated bits over the horizon approximate the offered rate.
	genGbps := float64(res.Batches) * (16 << 10) * 8 / (fabCfg(4, Direct, nil, 1).Horizon.Seconds() * 1e9)
	if genGbps < 72 || genGbps > 88 {
		t.Errorf("generated %.1f Gbps for 80 offered", genGbps)
	}
}
