package ctrl_test

import (
	"bytes"
	"strings"
	"testing"

	"packetshader/internal/apps"
	"packetshader/internal/core"
	"packetshader/internal/ctrl"
	"packetshader/internal/model"
	"packetshader/internal/pktgen"
	"packetshader/internal/route"
	"packetshader/internal/sim"

	lookupv4 "packetshader/internal/lookup/ipv4"
)

// --- parser ---

const demoScript = `
# demo
@500us  stats
@1ms    route add 10.1.0.0/16 via 3
@1ms    route del 10.2.0.0/16
@1ms    route replace 10.3.0.0/24 via 5
@1500us set chunkcap 32
@1500us set gathermax 1
@1500us set opportunistic off
@2ms    port 2 down
@2.5ms  port 2 up
@3ms    metrics
`

func TestParseScript(t *testing.T) {
	s, err := ctrl.ParseScript(strings.NewReader(demoScript))
	if err != nil {
		t.Fatal(err)
	}
	// The three same-offset route lines coalesce into one batch.
	if got := s.Len(); got != 8 {
		t.Fatalf("Len = %d, want 8", got)
	}
	if got := s.RouteUpdates(); got != 3 {
		t.Fatalf("RouteUpdates = %d, want 3", got)
	}
	if !s.HasRoutes() {
		t.Fatal("HasRoutes = false")
	}
	cmds := s.Commands()
	if cmds[0].Op != ctrl.OpStats || cmds[0].At != 500*sim.Microsecond {
		t.Fatalf("first command = %+v, want stats @500us", cmds[0])
	}
	batch := cmds[1]
	if batch.Op != ctrl.OpRoute || len(batch.Routes) != 3 {
		t.Fatalf("batch = %+v, want 3-route batch", batch)
	}
	wantActs := []ctrl.RouteAction{ctrl.ActAdd, ctrl.ActDel, ctrl.ActReplace}
	for i, act := range wantActs {
		if batch.Routes[i].Act != act {
			t.Errorf("route %d action = %v, want %v", i, batch.Routes[i].Act, act)
		}
	}
	if got := batch.Routes[0].Prefix; got.Len != 16 || uint32(got.Addr) != 0x0a010000 {
		t.Errorf("route 0 prefix = %+v, want 10.1.0.0/16", got)
	}
	if batch.Routes[0].NextHop != 3 {
		t.Errorf("route 0 hop = %d, want 3", batch.Routes[0].NextHop)
	}
	if cmds[7].Op != ctrl.OpMetrics || cmds[7].At != 3*sim.Millisecond {
		t.Fatalf("last command = %+v, want metrics @3ms", cmds[7])
	}
	// @2.5ms decimal offset.
	if cmds[6].At != 2500*sim.Microsecond {
		t.Fatalf("port up offset = %v, want 2.5ms", cmds[6].At)
	}
}

func TestParseScriptSplitRouteBatches(t *testing.T) {
	s, err := ctrl.ParseScript(strings.NewReader(`
@1ms route add 10.0.0.0/8 via 1
@2ms route add 11.0.0.0/8 via 1
@2ms route add 12.0.0.0/8 via 1
`))
	if err != nil {
		t.Fatal(err)
	}
	// Different offsets break the batch: 1 + 2.
	if s.Len() != 2 || s.RouteUpdates() != 3 {
		t.Fatalf("Len=%d RouteUpdates=%d, want 2 and 3", s.Len(), s.RouteUpdates())
	}
}

func TestParseScriptErrors(t *testing.T) {
	for _, bad := range []string{
		"stats",                            // missing @offset
		"@1x stats",                        // bad unit
		"@-1ms stats",                      // negative offset
		"@1ms bogus",                       // unknown command
		"@1ms route add 10.0.0.0/8",        // missing via
		"@1ms route add 10.1.0.0/8 via 1",  // host bits set
		"@1ms route add 300.0.0.0/8 via 1", // bad octet
		"@1ms route add 10.0.0.0/33 via 1", // bad length
		"@1ms route del",                   // missing prefix
		"@1ms set chunkcap zero",           // non-numeric
		"@1ms set chunkcap 0",              // below 1
		"@1ms set opportunistic maybe",     // bad bool
		"@1ms port 1 sideways",             // bad direction
		"@1ms stats now",                   // trailing arg
	} {
		if _, err := ctrl.ParseScript(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseScript(%q): want error", bad)
		}
	}
}

// --- FIB appliers ---

// TestAppliersEquivalent drives the same update batches through the
// incremental and rebuild strategies and checks the resulting routing
// functions agree (and diverge from the untouched base).
func TestAppliersEquivalent(t *testing.T) {
	entries := route.GenerateBGPTable(2000, 16, 9)
	dyn, err := lookupv4.NewDynamic(entries)
	if err != nil {
		t.Fatal(err)
	}
	var rebuilt *lookupv4.Table
	reb, err := ctrl.NewRebuildFIB(entries, func(tb *lookupv4.Table) { rebuilt = tb })
	if err != nil {
		t.Fatal(err)
	}
	base, err := lookupv4.Build(entries)
	if err != nil {
		t.Fatal(err)
	}
	batches := [][]ctrl.RouteUpdate{
		{
			{Act: ctrl.ActAdd, Prefix: route.Prefix{Addr: 0x0a000000, Len: 8}, NextHop: 9},
			{Act: ctrl.ActDel, Prefix: entries[0].Prefix},
		},
		{
			{Act: ctrl.ActReplace, Prefix: entries[1].Prefix, NextHop: 11},
			{Act: ctrl.ActAdd, Prefix: route.Prefix{Addr: 0x0a010200, Len: 24}, NextHop: 12},
		},
	}
	var dynCells, rebCells uint64
	for _, b := range batches {
		dc, err := (&ctrl.DynamicFIB{T: dyn}).ApplyRoutes(b)
		if err != nil {
			t.Fatal(err)
		}
		rc, err := reb.ApplyRoutes(b)
		if err != nil {
			t.Fatal(err)
		}
		dynCells += dc
		rebCells += rc
	}
	if rebuilt == nil {
		t.Fatal("Install hook never ran")
	}
	if rebCells != 2<<24 {
		t.Fatalf("rebuild cells = %d, want 2 full rebuilds (%d)", rebCells, 2<<24)
	}
	if dynCells == 0 || dynCells >= rebCells {
		t.Fatalf("incremental cells = %d, want nonzero and far below %d", dynCells, rebCells)
	}
	diverged := false
	for i := 0; i < 1<<16; i++ {
		addr := route.GenerateBGPTable(1, 16, int64(i))[0].Prefix.Addr
		d, r := dyn.Lookup(addr), rebuilt.Lookup(addr)
		if d != r {
			t.Fatalf("addr %v: incremental hop %d != rebuild hop %d", addr, d, r)
		}
		if d != base.Lookup(addr) {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("updates had no observable effect on any probed address")
	}
}

// --- controller on a live router ---

// testRouter assembles a small dynamic-FIB IPv4 router for controller
// tests. Traffic dsts are drawn from the table, so route churn has an
// observable forwarding effect.
func testRouter(t *testing.T) (*sim.Env, *core.Router, *lookupv4.DynamicTable, []route.Entry) {
	t.Helper()
	entries := route.GenerateBGPTable(2000, 16, 9)
	dyn, err := lookupv4.NewDynamic(entries)
	if err != nil {
		t.Fatal(err)
	}
	env := sim.NewEnv()
	t.Cleanup(env.Close)
	cfg := core.DefaultConfig()
	cfg.PacketSize = 64
	r := core.New(env, cfg, &apps.IPv4Fwd{Table: &dyn.Table, NumPorts: model.NumPorts})
	r.SetSource(&pktgen.UDP4Source{Size: 64, Seed: 9, Table: entries})
	return env, r, dyn, entries
}

func run(env *sim.Env, r *core.Router, d sim.Duration) {
	r.Start()
	env.Run(env.Now() + sim.Time(d))
}

func TestAttachPrechecks(t *testing.T) {
	env, r, dyn, _ := testRouter(t)
	cases := []struct {
		name   string
		script *ctrl.Script
		cfg    ctrl.Config
	}{
		{"route without FIB", ctrl.NewScript(ctrl.RouteDel(0, route.Prefix{Len: 8})), ctrl.Config{}},
		{"empty batch", ctrl.NewScript(ctrl.RouteBatch(0, nil)), ctrl.Config{FIB: &ctrl.DynamicFIB{T: dyn}}},
		{"chunkcap zero", ctrl.NewScript(ctrl.SetChunkCap(0, 0)), ctrl.Config{}},
		{"gathermax zero", ctrl.NewScript(ctrl.SetGatherMax(0, 0)), ctrl.Config{}},
		{"port high", ctrl.NewScript(ctrl.PortAdmin(0, model.NumPorts, false)), ctrl.Config{}},
		{"port negative", ctrl.NewScript(ctrl.PortAdmin(0, -1, false)), ctrl.Config{}},
	}
	for _, c := range cases {
		if _, err := ctrl.Attach(env, r, c.script, c.cfg); err == nil {
			t.Errorf("%s: want attach error", c.name)
		}
	}
}

// TestRouteCommandsChangeForwarding pins that a scripted route delete
// has a real data-path effect (app drops) and that restoring the route
// stops the bleeding — and that the controller accounts both batches.
func TestRouteCommandsChangeForwarding(t *testing.T) {
	env, r, dyn, entries := testRouter(t)
	// Delete a mid-table prefix at 1ms, restore it at 3ms.
	victim := entries[1000]
	script := ctrl.NewScript(
		ctrl.RouteDel(1*sim.Millisecond, victim.Prefix),
		ctrl.RouteAdd(3*sim.Millisecond, victim.Prefix, victim.NextHop),
	)
	var out bytes.Buffer
	ctl, err := ctrl.Attach(env, r, script, ctrl.Config{Out: &out, FIB: &ctrl.DynamicFIB{T: dyn}})
	if err != nil {
		t.Fatal(err)
	}
	run(env, r, 3*sim.Millisecond)
	dropsDuring := r.Stats.Drops
	if ctl.Fired() != 2 || ctl.RoutesApplied() != 2 {
		t.Fatalf("fired=%d applied=%d, want 2/2", ctl.Fired(), ctl.RoutesApplied())
	}
	if len(ctl.Errors()) != 0 {
		t.Fatalf("ctrl errors: %v", ctl.Errors())
	}
	if dropsDuring == 0 {
		t.Fatal("route del caused no app drops — storm had no forwarding effect")
	}
	// Let chunks that were already in flight at the restore instant
	// drain, then require the bleeding has fully stopped.
	env.Run(env.Now() + sim.Time(1*sim.Millisecond))
	settled := r.Stats.Drops
	env.Run(env.Now() + sim.Time(2*sim.Millisecond))
	if after := r.Stats.Drops - settled; after != 0 {
		t.Fatalf("%d drops long after the route was restored, want 0", after)
	}
	for _, want := range []string{"route applied=1", "@1000.000us", "@3000.000us"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestTuningObservable pins that a live gather-max retune reaches the
// master: launches-per-chunk rises once gathering is disabled.
func TestTuningObservable(t *testing.T) {
	env, r, _, _ := testRouter(t)
	script := ctrl.NewScript(
		ctrl.SetGatherMax(2*sim.Millisecond, 1),
		ctrl.SetChunkCap(2*sim.Millisecond, 16),
	)
	if _, err := ctrl.Attach(env, r, script, ctrl.Config{}); err != nil {
		t.Fatal(err)
	}
	run(env, r, 2*sim.Millisecond)
	launches0, chunks0 := r.Stats.GPULaunches, r.Stats.ChunksGPU
	if launches0 == 0 || chunks0 <= launches0 {
		t.Fatalf("before retune: launches=%d chunks=%d, want gathering >1 chunk/launch",
			launches0, chunks0)
	}
	// Let chunks in flight across the retune drain, then measure a
	// steady-state window: no gathering means exactly 1 chunk/launch.
	env.Run(env.Now() + sim.Time(1*sim.Millisecond))
	launches1, chunks1 := r.Stats.GPULaunches, r.Stats.ChunksGPU
	env.Run(env.Now() + sim.Time(2*sim.Millisecond))
	launches2, chunks2 := r.Stats.GPULaunches-launches1, r.Stats.ChunksGPU-chunks1
	if launches2 == 0 || chunks2 != launches2 {
		t.Fatalf("after gathermax=1: launches=%d chunks=%d, want exactly 1 chunk/launch",
			launches2, chunks2)
	}
}

// TestPortAdminDropsCarrier pins that scripted port admin reaches the
// NIC: TX to the downed port is dropped and accounted.
func TestPortAdminDropsCarrier(t *testing.T) {
	env, r, _, _ := testRouter(t)
	var out bytes.Buffer
	script := ctrl.NewScript(
		ctrl.PortAdmin(1*sim.Millisecond, 2, false),
		ctrl.Stats(2*sim.Millisecond),
		ctrl.PortAdmin(3*sim.Millisecond, 2, true),
	)
	if _, err := ctrl.Attach(env, r, script, ctrl.Config{Out: &out}); err != nil {
		t.Fatal(err)
	}
	run(env, r, 4*sim.Millisecond)
	if drops := r.CarrierDrops(); drops == 0 {
		t.Fatal("no carrier drops after scripted port down")
	}
	if !strings.Contains(out.String(), "port 2 down") ||
		!strings.Contains(out.String(), "port 2 up") ||
		!strings.Contains(out.String(), "stats packets=") {
		t.Fatalf("unexpected output:\n%s", out.String())
	}
}

// TestControllerByteIdentity replays the same script against two
// identically seeded routers and requires byte-identical responses —
// the determinism contract of the control plane.
func TestControllerByteIdentity(t *testing.T) {
	runOnce := func() string {
		env, r, dyn, entries := testRouter(t)
		script := ctrl.NewScript(
			ctrl.Stats(500*sim.Microsecond),
			ctrl.RouteDel(1*sim.Millisecond, entries[500].Prefix),
			ctrl.SetChunkCap(1500*sim.Microsecond, 32),
			ctrl.PortAdmin(2*sim.Millisecond, 1, false),
			ctrl.Stats(2500*sim.Microsecond),
		)
		var out bytes.Buffer
		if _, err := ctrl.Attach(env, r, script, ctrl.Config{Out: &out, FIB: &ctrl.DynamicFIB{T: dyn}}); err != nil {
			t.Fatal(err)
		}
		run(env, r, 3*sim.Millisecond)
		return out.String()
	}
	a, b := runOnce(), runOnce()
	if a != b {
		t.Fatalf("replay diverged:\n--- run 1 ---\n%s--- run 2 ---\n%s", a, b)
	}
	if !strings.Contains(a, "stats packets=") {
		t.Fatalf("unexpected output:\n%s", a)
	}
}
