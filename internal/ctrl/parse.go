package ctrl

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"packetshader/internal/packet"
	"packetshader/internal/route"
	"packetshader/internal/sim"
)

// ParseScript reads the .psc command language: one command per line,
// each prefixed with a virtual-time offset from the attach instant.
//
//	# pshaderd command script
//	@1ms   route add 10.1.0.0/16 via 3
//	@1ms   route del 10.2.0.0/16
//	@1ms   route replace 10.3.0.0/16 via 2
//	@2ms   set chunkcap 64
//	@2ms   set gathermax 4
//	@2ms   set opportunistic on
//	@3ms   port 2 down
//	@4ms   stats
//	@5ms   metrics
//
// Offsets take ps/ns/us/ms/s units with an integer or decimal value.
// Blank lines and `#` comments are ignored. Consecutive route lines
// with the same offset coalesce into one batch command, so a
// rebuild-strategy FIB pays one rebuild for the group — to force
// separate batches, separate the lines with a different offset or any
// non-route command.
func ParseScript(r io.Reader) (*Script, error) {
	s := NewScript()
	sc := bufio.NewScanner(r)
	lineNo := 0
	// Pending route batch being coalesced: valid when batchOpen.
	var batch Command
	batchOpen := false
	flush := func() {
		if batchOpen {
			s.Add(batch)
			batchOpen = false
		}
	}
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if !strings.HasPrefix(fields[0], "@") {
			return nil, fmt.Errorf("line %d: command must start with an @offset, got %q", lineNo, fields[0])
		}
		at, err := parseDuration(fields[0][1:])
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		cmd, err := parseCommand(at, fields[1:])
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		if cmd.Op == OpRoute {
			if batchOpen && batch.At == cmd.At {
				batch.Routes = append(batch.Routes, cmd.Routes...)
				continue
			}
			flush()
			batch = cmd
			batchOpen = true
			continue
		}
		flush()
		s.Add(cmd)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	flush()
	return s, nil
}

// parseCommand parses the fields after the @offset.
func parseCommand(at sim.Duration, f []string) (Command, error) {
	if len(f) == 0 {
		return Command{}, fmt.Errorf("missing command after offset")
	}
	switch f[0] {
	case "route":
		return parseRoute(at, f[1:])
	case "set":
		return parseSet(at, f[1:])
	case "port":
		if len(f) != 3 {
			return Command{}, fmt.Errorf("usage: port <n> up|down")
		}
		port, err := strconv.Atoi(f[1])
		if err != nil {
			return Command{}, fmt.Errorf("port %q: not a number", f[1])
		}
		up, err := parseUpDown(f[2])
		if err != nil {
			return Command{}, err
		}
		return PortAdmin(at, port, up), nil
	case "stats":
		if len(f) != 1 {
			return Command{}, fmt.Errorf("stats takes no arguments")
		}
		return Stats(at), nil
	case "metrics":
		if len(f) != 1 {
			return Command{}, fmt.Errorf("metrics takes no arguments")
		}
		return Metrics(at), nil
	default:
		return Command{}, fmt.Errorf("unknown command %q", f[0])
	}
}

func parseRoute(at sim.Duration, f []string) (Command, error) {
	if len(f) == 0 {
		return Command{}, fmt.Errorf("usage: route add|del|replace <prefix> [via <hop>]")
	}
	switch f[0] {
	case "add", "replace":
		act := ActAdd
		if f[0] == "replace" {
			act = ActReplace
		}
		if len(f) != 4 || f[2] != "via" {
			return Command{}, fmt.Errorf("usage: route %s a.b.c.d/len via <hop>", f[0])
		}
		p, err := parsePrefix(f[1])
		if err != nil {
			return Command{}, err
		}
		hop, err := strconv.ParseUint(f[3], 10, 16)
		if err != nil {
			return Command{}, fmt.Errorf("next hop %q: not a 16-bit number", f[3])
		}
		return Command{At: at, Op: OpRoute,
			Routes: []RouteUpdate{{Act: act, Prefix: p, NextHop: uint16(hop)}}}, nil
	case "del":
		if len(f) != 2 {
			return Command{}, fmt.Errorf("usage: route del a.b.c.d/len")
		}
		p, err := parsePrefix(f[1])
		if err != nil {
			return Command{}, err
		}
		return RouteDel(at, p), nil
	default:
		return Command{}, fmt.Errorf("unknown route action %q (want add, del or replace)", f[0])
	}
}

func parseSet(at sim.Duration, f []string) (Command, error) {
	if len(f) != 2 {
		return Command{}, fmt.Errorf("usage: set chunkcap|gathermax|opportunistic <value>")
	}
	switch f[0] {
	case "chunkcap", "gathermax":
		n, err := strconv.Atoi(f[1])
		if err != nil || n < 1 {
			return Command{}, fmt.Errorf("set %s %q: want a positive integer", f[0], f[1])
		}
		if f[0] == "chunkcap" {
			return SetChunkCap(at, n), nil
		}
		return SetGatherMax(at, n), nil
	case "opportunistic":
		switch f[1] {
		case "on":
			return SetOpportunistic(at, true), nil
		case "off":
			return SetOpportunistic(at, false), nil
		default:
			return Command{}, fmt.Errorf("set opportunistic %q: want on or off", f[1])
		}
	default:
		return Command{}, fmt.Errorf("unknown knob %q (want chunkcap, gathermax or opportunistic)", f[0])
	}
}

func parseUpDown(s string) (bool, error) {
	switch s {
	case "up":
		return true, nil
	case "down":
		return false, nil
	default:
		return false, fmt.Errorf("%q: want up or down", s)
	}
}

// parsePrefix parses `a.b.c.d/len` and insists the host bits are zero —
// a typo'd prefix should fail loudly, not silently cover a different
// range.
func parsePrefix(s string) (route.Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return route.Prefix{}, fmt.Errorf("prefix %q: missing /len", s)
	}
	plen, err := strconv.ParseUint(s[slash+1:], 10, 8)
	if err != nil || plen > 32 {
		return route.Prefix{}, fmt.Errorf("prefix %q: length must be 0..32", s)
	}
	addr, err := parseIPv4(s[:slash])
	if err != nil {
		return route.Prefix{}, fmt.Errorf("prefix %q: %v", s, err)
	}
	p := route.Prefix{Addr: addr, Len: uint8(plen)}
	if uint32(addr)&^p.Mask() != 0 {
		return route.Prefix{}, fmt.Errorf("prefix %q: host bits set (want %v/%d)",
			s, packet.IPv4Addr(uint32(addr)&p.Mask()), plen)
	}
	return p, nil
}

// parseIPv4 parses a dotted quad into a host-order address.
func parseIPv4(s string) (packet.IPv4Addr, error) {
	var addr uint32
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("want a dotted quad")
	}
	for _, part := range parts {
		o, err := strconv.ParseUint(part, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("bad octet %q", part)
		}
		addr = addr<<8 | uint32(o)
	}
	return packet.IPv4Addr(addr), nil
}

// psc duration units, longest spelling first so "ms" wins over "s".
var durUnits = []struct {
	suffix string
	d      sim.Duration
}{
	{"ns", sim.Nanosecond},
	{"us", sim.Microsecond},
	{"ms", sim.Millisecond},
	{"ps", sim.Picosecond},
	{"s", sim.Second},
}

// parseDuration parses an integer or decimal value with a ps/ns/us/ms/s
// unit into a virtual duration. (sim durations are picosecond integers;
// the decimal form is rounded to the nearest picosecond.)
func parseDuration(s string) (sim.Duration, error) {
	for _, u := range durUnits {
		v, ok := strings.CutSuffix(s, u.suffix)
		if !ok || v == "" {
			continue
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f < 0 {
			return 0, fmt.Errorf("offset %q: want a non-negative value before %q", s, u.suffix)
		}
		return sim.DurationFromSeconds(f * u.d.Seconds()), nil
	}
	return 0, fmt.Errorf("offset %q: want <value><ps|ns|us|ms|s>", s)
}
