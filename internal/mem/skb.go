package mem

import "packetshader/internal/model"

// Skb mirrors the two-buffer Linux packet representation (§4.1): a
// metadata object (208 bytes in Linux 2.6.28) plus a data buffer, both
// slab-allocated per packet.
type Skb struct {
	Meta Obj
	Data Obj
	Len  int
}

// SkbAllocator is the legacy per-packet allocation path whose costs
// Table 3 breaks down. Every RX packet performs: skb alloc (wrapper +
// slab + possibly page allocator), data-buffer alloc, metadata
// initialization, and the matching frees.
type SkbAllocator struct {
	metaCache *SlabCache
	dataCache *SlabCache
	// InitOps counts metadata initializations (the memset of 208B).
	InitOps uint64
}

// NewSkbAllocator builds the skb path over an arena of nPages pages.
func NewSkbAllocator(arena *Arena) *SkbAllocator {
	return &SkbAllocator{
		metaCache: NewSlabCache(arena, model.SkbMetadataBytes),
		dataCache: NewSlabCache(arena, model.HugeCellDataBytes),
	}
}

// Alloc allocates and initializes an skb for a packet of n bytes.
func (a *SkbAllocator) Alloc(n int) (*Skb, error) {
	meta, err := a.metaCache.Alloc()
	if err != nil {
		return nil, err
	}
	data, err := a.dataCache.Alloc()
	if err != nil {
		a.metaCache.Free(meta)
		return nil, err
	}
	// skb initialization: Linux memsets and links the whole 208-byte
	// metadata for every packet (Table 3: 4.9%).
	clear(meta.Data)
	a.InitOps++
	return &Skb{Meta: meta, Data: data, Len: n}, nil
}

// Free releases both buffers.
func (a *SkbAllocator) Free(s *Skb) {
	a.metaCache.Free(s.Meta)
	a.dataCache.Free(s.Data)
}

// SlabOps returns total slab operations performed (allocs+frees across
// both caches) and page-allocator refill operations.
func (a *SkbAllocator) SlabOps() (slabOps, pageOps uint64) {
	slabOps = a.metaCache.Allocs + a.metaCache.Frees +
		a.dataCache.Allocs + a.dataCache.Frees
	pageOps = a.metaCache.Refills + a.dataCache.Refills
	return
}

// Live returns outstanding skbs.
func (a *SkbAllocator) Live() int { return a.metaCache.Live() }
