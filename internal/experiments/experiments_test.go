package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// cell parses the numeric cell at (row, col) of a result.
func cell(t *testing.T, r *Result, row, col int) float64 {
	t.Helper()
	if row >= len(r.Rows) || col >= len(r.Rows[row]) {
		t.Fatalf("%s: no cell (%d,%d)", r.ID, row, col)
	}
	s := strings.TrimSuffix(strings.TrimSuffix(r.Rows[row][col], "x"), "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("%s: cell (%d,%d) = %q not numeric", r.ID, row, col, r.Rows[row][col])
	}
	return v
}

func TestRunUnknownID(t *testing.T) {
	if err := Run(discard{}, "nonsense"); err == nil {
		t.Error("unknown experiment id accepted")
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

func TestRegistryIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Registry {
		if seen[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
	}
	if len(Registry) < 15 {
		t.Errorf("registry has %d experiments, expected 15", len(Registry))
	}
}

func TestTable1MatchesPaperWithin15Percent(t *testing.T) {
	r := Table1()
	if len(r.Rows) != 7 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for i := range r.Rows {
		for _, pair := range [][2]int{{1, 3}, {2, 4}} { // measured vs paper
			got, want := cell(t, r, i, pair[0]), cell(t, r, i, pair[1])
			if got < want*0.85 || got > want*1.15 {
				t.Errorf("row %d (%s): %v vs paper %v", i, r.Rows[i][0], got, want)
			}
		}
	}
}

func TestLaunchLatencyAnchors(t *testing.T) {
	r := LaunchLatency()
	if one := cell(t, r, 0, 1); one < 3.7 || one > 3.9 {
		t.Errorf("launch(1) = %v us, want 3.8", one)
	}
	last := len(r.Rows) - 1
	if big := cell(t, r, last, 1); big < 4.0 || big > 4.2 {
		t.Errorf("launch(4096) = %v us, want 4.1", big)
	}
}

func TestFig2CrossoversInExperiment(t *testing.T) {
	r := Fig2()
	// Find rows for batches 256, 512, 1024, and the largest.
	byBatch := map[int][]float64{}
	for i := range r.Rows {
		b := int(cell(t, r, i, 0))
		byBatch[b] = []float64{cell(t, r, i, 1), cell(t, r, i, 2), cell(t, r, i, 3)}
	}
	if byBatch[256][2] >= byBatch[256][0] {
		t.Error("GPU already beats one CPU at batch 256")
	}
	if byBatch[512][2] <= byBatch[512][0] {
		t.Error("GPU does not beat one CPU at batch 512 (crossover ≈320)")
	}
	if byBatch[512][2] >= byBatch[512][1] {
		t.Error("GPU beats two CPUs at batch 512")
	}
	if byBatch[1024][2] <= byBatch[1024][1] {
		t.Error("GPU does not beat two CPUs at batch 1024 (crossover ≈640)")
	}
	peak := byBatch[65536][2]
	if ratio := peak / byBatch[65536][0]; ratio < 6.5 || ratio > 13 {
		t.Errorf("peak GPU/CPU ratio = %.1f, want ≈10", ratio)
	}
}

func TestTable3SharesMatchPaper(t *testing.T) {
	r := Table3()
	want := []float64{4.9, 8.0, 50.2, 13.3, 9.8, 13.8}
	for i, w := range want {
		if got := cell(t, r, i, 2); got < w-1.5 || got > w+1.5 {
			t.Errorf("%s share = %v%%, paper %v%%", r.Rows[i][0], got, w)
		}
	}
}

func TestFig5Anchors(t *testing.T) {
	r := Fig5()
	if one := cell(t, r, 0, 1); one < 0.66 || one > 0.9 {
		t.Errorf("batch=1 = %v Gbps, paper 0.78", one)
	}
	var batch64 float64
	for i := range r.Rows {
		if cell(t, r, i, 0) == 64 {
			batch64 = cell(t, r, i, 1)
		}
	}
	if batch64 < 9.5 || batch64 > 11.5 {
		t.Errorf("batch=64 = %v Gbps, paper 10.5", batch64)
	}
}

func TestFig6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-machine I/O sweep")
	}
	r := Fig6()
	for i := range r.Rows {
		rx, tx := cell(t, r, i, 1), cell(t, r, i, 2)
		fwd, cross := cell(t, r, i, 3), cell(t, r, i, 4)
		if tx < 76 || tx > 80.5 {
			t.Errorf("%sB TX = %v, paper 79.3-80.0", r.Rows[i][0], tx)
		}
		if rx < 53 || rx > 62 {
			t.Errorf("%sB RX = %v, paper 53.1-59.9", r.Rows[i][0], rx)
		}
		if fwd < 39 || fwd > 44.5 {
			t.Errorf("%sB forward = %v, paper >40 (41.1 at 64B)", r.Rows[i][0], fwd)
		}
		if cross < fwd*0.93 {
			t.Errorf("%sB node-crossing = %v collapsed vs %v", r.Rows[i][0], cross, fwd)
		}
		// RX < TX: the §3.2 asymmetry.
		if rx >= tx {
			t.Errorf("%sB: RX %v ≥ TX %v (asymmetry lost)", r.Rows[i][0], rx, tx)
		}
	}
}

func TestNUMAGap(t *testing.T) {
	if testing.Short() {
		t.Skip("full-machine NUMA sweep")
	}
	r := NUMA()
	aware, blind := cell(t, r, 0, 1), cell(t, r, 1, 1)
	if aware < blind*1.2 {
		t.Errorf("aware %v vs blind %v: want ≥20%% gap (paper ≈60%%)", aware, blind)
	}
	if aware < 38 || aware > 43 {
		t.Errorf("aware = %v, paper ≈40", aware)
	}
}

func TestFig11aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("application sweep")
	}
	r := Fig11a()
	cpu64, gpu64 := cell(t, r, 0, 1), cell(t, r, 0, 2)
	if gpu64 <= cpu64 {
		t.Errorf("64B: GPU %v ≤ CPU %v (paper: 39 vs 28)", gpu64, cpu64)
	}
	if cpu64 < 22 || cpu64 > 31 {
		t.Errorf("64B CPU-only = %v, paper ≈28", cpu64)
	}
	if gpu64 < 31 || gpu64 > 41 {
		t.Errorf("64B CPU+GPU = %v, paper ≈39", gpu64)
	}
	// Larger packets: both I/O-bound near 40.
	for i := 1; i < len(r.Rows); i++ {
		for c := 1; c <= 2; c++ {
			if v := cell(t, r, i, c); v < 38 || v > 44 {
				t.Errorf("row %s col %d = %v, want ≈40-41", r.Rows[i][0], c, v)
			}
		}
	}
}

func TestFig11bShape(t *testing.T) {
	if testing.Short() {
		t.Skip("application sweep")
	}
	r := Fig11b()
	cpu64, gpu64 := cell(t, r, 0, 1), cell(t, r, 0, 2)
	if cpu64 < 5 || cpu64 > 11 {
		t.Errorf("64B CPU-only = %v, paper ≈8 (memory-bound)", cpu64)
	}
	if gpu64 < 33 || gpu64 > 41 {
		t.Errorf("64B CPU+GPU = %v, paper 38.2", gpu64)
	}
	if gpu64 < cpu64*3.5 {
		t.Errorf("64B speedup %vx, IPv6 is the GPU's biggest win", gpu64/cpu64)
	}
}

func TestFig11cShape(t *testing.T) {
	if testing.Short() {
		t.Skip("application sweep")
	}
	r := Fig11c()
	for i := range r.Rows {
		cpu, gpu := cell(t, r, i, 2), cell(t, r, i, 3)
		if gpu <= cpu {
			t.Errorf("row %v+%v: GPU %v ≤ CPU %v (paper: GPU wins everywhere)",
				r.Rows[i][0], r.Rows[i][1], gpu, cpu)
		}
	}
	// The NetFPGA-comparable configuration (32K exact + 32 wildcard).
	for i := range r.Rows {
		if r.Rows[i][0] == "32768" && r.Rows[i][1] == "32" {
			if gpu := cell(t, r, i, 3); gpu < 28 || gpu > 36 {
				t.Errorf("32K+32 GPU = %v, paper 32", gpu)
			}
		}
	}
	// Throughput declines with exact-table size (cache effects).
	if first, last := cell(t, r, 0, 2), cell(t, r, 4, 2); last >= first {
		t.Errorf("CPU-only flat across table sizes: %v → %v", first, last)
	}
}

func TestFig11dShape(t *testing.T) {
	if testing.Short() {
		t.Skip("application sweep (slow: real crypto)")
	}
	r := Fig11d()
	gpu64 := cell(t, r, 0, 2)
	if gpu64 < 9 || gpu64 > 12.5 {
		t.Errorf("64B CPU+GPU = %v, paper 10.2", gpu64)
	}
	last := len(r.Rows) - 1
	if g := cell(t, r, last, 2); g < 18.5 || g > 22 {
		t.Errorf("1514B CPU+GPU = %v, paper 20.0", g)
	}
	// ≈3.5x across sizes.
	for i := range r.Rows {
		cpu, gpu := cell(t, r, i, 1), cell(t, r, i, 2)
		if ratio := gpu / cpu; ratio < 2.4 || ratio > 5.5 {
			t.Errorf("row %s: GPU/CPU = %.1f, paper ≈3.5", r.Rows[i][0], ratio)
		}
	}
}

func TestFig12Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("latency sweep")
	}
	r := Fig12()
	// At a sustainable moderate load (4-8 Gbps), batching must not
	// increase latency, and the GPU path costs more than CPU batch but
	// stays bounded.
	for i := range r.Rows {
		offered := cell(t, r, i, 0)
		noBatch, batch, gpu := cell(t, r, i, 1), cell(t, r, i, 2), cell(t, r, i, 3)
		if offered == 4 && batch > noBatch {
			t.Errorf("4 Gbps: batch %v > no-batch %v (batching should reduce queueing)", batch, noBatch)
		}
		// Compare GPU vs CPU-batch only where the CPU-only path is not
		// saturated (its IPv6 capacity is ≈7.4 Gbps at 64B).
		if gpu < batch && offered <= 4 {
			t.Errorf("%v Gbps: GPU latency %v below CPU batch %v", offered, gpu, batch)
		}
		if gpu > 500 {
			t.Errorf("%v Gbps: GPU latency %v us, paper stays 200-400", offered, gpu)
		}
	}
}

func TestAblationDirections(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep")
	}
	r := Ablation()
	full := cell(t, r, 0, 1)
	byName := map[string]float64{}
	for i := range r.Rows {
		byName[r.Rows[i][0]] = cell(t, r, i, 1)
	}
	for name, v := range byName {
		if name == "full PacketShader (CPU+GPU)" {
			continue
		}
		if v >= full {
			t.Errorf("%q (%v) not worse than full (%v)", name, v, full)
		}
	}
	if skb := byName["skb buffers instead of huge buffers"]; skb > full/4 {
		t.Errorf("skb path %v vs %v: the huge buffer should matter most", skb, full)
	}
}
