package experiments

import (
	"bytes"
	"fmt"
	"testing"

	"packetshader/internal/apps"
	"packetshader/internal/core"
	"packetshader/internal/model"
	"packetshader/internal/pktgen"
	"packetshader/internal/route"
	"packetshader/internal/sim"

	lookupv4 "packetshader/internal/lookup/ipv4"
)

// render prints a result to a buffer, exactly as `pshader experiments`
// would emit it.
func render(r *Result) string {
	var b bytes.Buffer
	r.Print(&b)
	return b.String()
}

// TestExperimentsDeterministicAcrossRuns is the end-to-end counterpart
// of the pslint determinism linters (cmd/pslint): the static analyzers
// forbid wall-clock time, unseeded randomness and order-sensitive map
// iteration, and this test checks the invariant they guard — running
// the same experiment twice in one process yields byte-identical
// output. It covers the §2 microbenchmarks including the Fig 2
// latency-hiding sweep, which exercises the full sim stack (virtual
// clock, GPU model, PCIe IOH, batched IPv6 lookups).
func TestExperimentsDeterministicAcrossRuns(t *testing.T) {
	cases := []struct {
		name string
		run  func() *Result
	}{
		{"table1", Table1},
		{"launch", LaunchLatency},
		{"fig2", Fig2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			first := render(c.run())
			second := render(c.run())
			if first == second {
				return
			}
			// Pinpoint the first differing line for a usable failure.
			fl, sl := bytes.Split([]byte(first), []byte("\n")), bytes.Split([]byte(second), []byte("\n"))
			for i := 0; i < len(fl) && i < len(sl); i++ {
				if !bytes.Equal(fl[i], sl[i]) {
					t.Fatalf("run-to-run output diverged at line %d:\n  first:  %s\n  second: %s",
						i+1, fl[i], sl[i])
				}
			}
			t.Fatalf("run-to-run output diverged in length: %d vs %d bytes", len(first), len(second))
		})
	}
}

// TestPooledHotPathDeterminism covers the allocation-pooled fast path:
// a GPU-mode IPv4 run long enough that chunks, app scratch state, and
// packet buffers are recycled many times over. Two identical runs must
// produce identical counters — a pooled object leaking stale state into
// the next chunk would show up here as diverging or wrong stats. The
// ChunkReuses counter proves recycling actually occurred (the test is
// vacuous without it).
func TestPooledHotPathDeterminism(t *testing.T) {
	entries := route.GenerateBGPTable(2000, 64, 7)
	tbl, err := lookupv4.Build(entries)
	if err != nil {
		t.Fatal(err)
	}
	run := func() (string, uint64) {
		env := sim.NewEnv()
		cfg := core.DefaultConfig()
		cfg.PacketSize = 64
		cfg.Mode = core.ModeGPU
		r := core.New(env, cfg, &apps.IPv4Fwd{Table: tbl, NumPorts: model.NumPorts})
		r.SetSource(&pktgen.UDP4Source{Size: 64, Seed: 7, Table: entries})
		r.Start()
		env.Run(sim.Time(4 * sim.Millisecond))
		return fmt.Sprintf("%+v delivered=%.6f", r.Stats, r.DeliveredGbps()), r.Stats.ChunkReuses
	}
	first, reuses := run()
	second, _ := run()
	if first != second {
		t.Errorf("pooled run diverged:\n  first:  %s\n  second: %s", first, second)
	}
	if reuses == 0 {
		t.Error("ChunkReuses = 0: the pooled path never recycled a chunk, test is vacuous")
	}
}
