package packetshader_test

import (
	"bytes"
	"strings"
	"testing"

	"packetshader"
	"packetshader/internal/ctrl"
	"packetshader/internal/faults"
	"packetshader/internal/model"
	"packetshader/internal/route"
	"packetshader/internal/sim"
)

// TestValidateBoundaries pins the exact acceptance edges of validate():
// the calibrated packet-size range and the positive-integer knobs.
func TestValidateBoundaries(t *testing.T) {
	for _, c := range []struct {
		name string
		opt  packetshader.Option
		ok   bool
	}{
		{"size 63", packetshader.WithPacketSize(63), false},
		{"size 64", packetshader.WithPacketSize(64), true},
		{"size 1514", packetshader.WithPacketSize(1514), true},
		{"size 1515", packetshader.WithPacketSize(1515), false},
		{"streams 0", packetshader.WithStreams(0), false},
		{"streams 1", packetshader.WithStreams(1), true},
		{"chunk cap 0", packetshader.WithChunkCap(0), false},
		{"chunk cap 1", packetshader.WithChunkCap(1), true},
		{"gather max 0", packetshader.WithGatherMax(0), false},
		{"gather max 1", packetshader.WithGatherMax(1), true},
		{"offered -1", packetshader.WithOfferedGbps(-1), false},
		{"fib mode 99", packetshader.WithFIBUpdate(packetshader.FIBUpdateMode(99)), false},
	} {
		_, err := packetshader.IPv4(500, 1, c.opt)
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: want validation error", c.name)
		}
	}
}

// TestValidateFaultTargets pins that fault options are range-checked at
// construction, not discovered as silent no-ops (or panics) mid-run.
func TestValidateFaultTargets(t *testing.T) {
	if _, err := packetshader.IPv4(500, 1,
		packetshader.WithLinkFlap(model.NumPorts, packetshader.Millisecond, packetshader.Millisecond)); err == nil ||
		!strings.Contains(err.Error(), "port") {
		t.Errorf("out-of-range flap port accepted: %v", err)
	}
	if _, err := packetshader.IPv4(500, 1,
		packetshader.WithLinkFlap(-1, packetshader.Millisecond, packetshader.Millisecond)); err == nil {
		t.Error("negative flap port accepted")
	}
	if _, err := packetshader.IPv4(500, 1, packetshader.WithFaults(
		faults.NewPlan().GPUOutage(model.NumNodes, 0, packetshader.Millisecond))); err == nil ||
		!strings.Contains(err.Error(), "node") {
		t.Errorf("out-of-range outage node accepted: %v", err)
	}
}

// TestWithFaultsMerges pins the option-composition contract: multiple
// fault options merge into one armed plan.
func TestWithFaultsMerges(t *testing.T) {
	pl := faults.NewPlan().LinkFlap(1, packetshader.Millisecond, packetshader.Millisecond)
	inst := packetshader.Must(packetshader.IPv4(2000, 5,
		packetshader.WithFaults(pl),
		packetshader.WithGPUOutage(packetshader.Millisecond, 2*packetshader.Millisecond)))
	rep := inst.Run(5 * packetshader.Millisecond)
	if inst.Router.CarrierDrops() == 0 {
		t.Error("merged plan produced no carrier drops")
	}
	if rep.Stats.GPUStalls == 0 {
		t.Error("merged plan produced no GPU stalls")
	}
}

// TestFaultsPlanMerge covers Merge directly, including nil.
func TestFaultsPlanMerge(t *testing.T) {
	a := faults.NewPlan().LinkFlap(0, 0, sim.Millisecond)
	b := faults.NewPlan().GPUOutage(1, sim.Millisecond, sim.Millisecond)
	if got := a.Merge(b).Merge(nil).Len(); got != 4 {
		t.Fatalf("merged plan has %d events, want 4", got)
	}
	if b.Len() != 2 {
		t.Fatalf("merge mutated its argument: %d events", b.Len())
	}
}

// TestRepeatedRunWarmupMeasure pins the warmup-then-measure contract:
// repeated Run calls continue one simulation (virtual time accumulates,
// cumulative stats grow) while the measurement window restarts.
func TestRepeatedRunWarmupMeasure(t *testing.T) {
	inst := packetshader.Must(packetshader.IPv4(2000, 5))
	r1 := inst.Run(2 * packetshader.Millisecond)
	if got := inst.Env.Now(); got != sim.Time(2*sim.Millisecond) {
		t.Fatalf("after first run Now = %v, want exactly 2ms", got)
	}
	r2 := inst.Run(2 * packetshader.Millisecond)
	if got := inst.Env.Now(); got != sim.Time(4*sim.Millisecond) {
		t.Fatalf("after second run Now = %v, want exactly 4ms", got)
	}
	if r2.Stats.Packets <= r1.Stats.Packets {
		t.Errorf("cumulative packets did not grow: %d then %d",
			r1.Stats.Packets, r2.Stats.Packets)
	}
	// The measured window restarted: post-warmup throughput must not be
	// dragged down by the cold start (ramp-up would halve r1).
	if r2.DeliveredGbps < r1.DeliveredGbps {
		t.Errorf("measured run slower than warmup: %.2f < %.2f",
			r2.DeliveredGbps, r1.DeliveredGbps)
	}
}

// TestControlRequiresUpdatableFIB pins that route scripts are rejected
// at attach on a static-table instance, with a pointed error.
func TestControlRequiresUpdatableFIB(t *testing.T) {
	inst := packetshader.Must(packetshader.IPv4(500, 1))
	script := ctrl.NewScript(ctrl.RouteDel(packetshader.Millisecond, route.Prefix{Len: 8}))
	if _, err := inst.Control(script, nil); err == nil ||
		!strings.Contains(err.Error(), "FIB") {
		t.Fatalf("static instance accepted route script: %v", err)
	}
	// Non-route commands are fine on any instance.
	if _, err := inst.Control(ctrl.NewScript(ctrl.Stats(packetshader.Millisecond)), nil); err != nil {
		t.Fatalf("stats script rejected: %v", err)
	}
}

// TestControlEndToEnd drives a parsed .psc session through the facade
// on a dynamic-FIB instance and checks the responses and the data-path
// effect, twice, byte-identically.
func TestControlEndToEnd(t *testing.T) {
	text := `
@500us stats
@1ms   route add 10.0.0.0/8 via 1
@1ms   route del 10.0.0.0/8
@2ms   stats
`
	runOnce := func(mode packetshader.FIBUpdateMode) string {
		script, err := ctrl.ParseScript(strings.NewReader(text))
		if err != nil {
			t.Fatal(err)
		}
		inst := packetshader.Must(packetshader.IPv4(2000, 5,
			packetshader.WithFIBUpdate(mode)))
		var out bytes.Buffer
		ctl, err := inst.Control(script, &out)
		if err != nil {
			t.Fatal(err)
		}
		// The two same-offset route lines coalesce into one batch:
		// stats, route(2), stats.
		if inst.Run(3 * packetshader.Millisecond); ctl.Fired() != 3 {
			t.Fatalf("fired %d of 3 commands", ctl.Fired())
		}
		if len(ctl.Errors()) != 0 {
			t.Fatalf("ctrl errors: %v", ctl.Errors())
		}
		if ctl.RoutesApplied() != 2 {
			t.Fatalf("applied %d route updates, want 2", ctl.RoutesApplied())
		}
		return out.String()
	}
	for _, mode := range []packetshader.FIBUpdateMode{packetshader.FIBDynamic, packetshader.FIBRebuild} {
		a, b := runOnce(mode), runOnce(mode)
		if a != b {
			t.Errorf("mode %v: replay diverged:\n%s\nvs\n%s", mode, a, b)
		}
		if !strings.Contains(a, "route applied=2") {
			t.Errorf("mode %v: batch response missing:\n%s", mode, a)
		}
	}
}
