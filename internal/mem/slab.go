package mem

// SlabCache is an object cache in the style of Bonwick's slab allocator
// [USENIX 1994], the allocator behind Linux's kmalloc/kmem_cache that
// Table 3 shows consuming half the RX cycles: pages from the arena are
// carved into fixed-size objects; freed objects return to their slab's
// freelist; empty slabs return pages to the arena.
type SlabCache struct {
	arena   *Arena
	objSize int
	perSlab int

	slabs   map[int32]*slab // by page index
	partial []*slab         // slabs with free objects (LIFO)

	// Allocs and Frees count object operations; Refills counts page
	// requests to the arena (the "underlying page allocator" cost).
	Allocs, Frees, Refills uint64
	live                   int
}

type slab struct {
	page      []byte
	pageIdx   int32
	free      []int16 // object indexes
	used      int
	inPartial bool
}

// NewSlabCache creates a cache of objSize-byte objects over arena.
func NewSlabCache(arena *Arena, objSize int) *SlabCache {
	if objSize <= 0 || objSize > PageSize {
		panic("mem: slab object size must be in (0, PageSize]")
	}
	return &SlabCache{
		arena:   arena,
		objSize: objSize,
		perSlab: PageSize / objSize,
		slabs:   make(map[int32]*slab),
	}
}

// Obj is a handle to an allocated object.
type Obj struct {
	Data    []byte
	pageIdx int32
	objIdx  int16
}

// Alloc returns an object (zeroing is the caller's concern, mirroring
// kmalloc semantics — skb *initialization* is a separate cost bin).
func (c *SlabCache) Alloc() (Obj, error) {
	c.Allocs++
	if len(c.partial) == 0 {
		page, idx, err := c.arena.AllocPage()
		if err != nil {
			return Obj{}, err
		}
		c.Refills++
		s := &slab{page: page, pageIdx: idx, inPartial: true}
		s.free = make([]int16, c.perSlab)
		for i := range s.free {
			s.free[i] = int16(c.perSlab - 1 - i)
		}
		c.slabs[idx] = s
		c.partial = append(c.partial, s)
	}
	s := c.partial[len(c.partial)-1]
	oi := s.free[len(s.free)-1]
	s.free = s.free[:len(s.free)-1]
	s.used++
	if len(s.free) == 0 {
		c.partial = c.partial[:len(c.partial)-1]
		s.inPartial = false
	}
	c.live++
	off := int(oi) * c.objSize
	return Obj{
		Data:    s.page[off : off+c.objSize : off+c.objSize],
		pageIdx: s.pageIdx,
		objIdx:  oi,
	}, nil
}

// Free returns an object to its slab; fully free slabs give their page
// back to the arena.
func (c *SlabCache) Free(o Obj) {
	c.Frees++
	s := c.slabs[o.pageIdx]
	if s == nil {
		panic("mem: Free of object from unknown slab")
	}
	s.free = append(s.free, o.objIdx)
	s.used--
	c.live--
	if s.used == 0 {
		// Return the page (Linux keeps some empty slabs cached; we
		// return eagerly, which only makes the skb path cheaper — a
		// conservative comparison).
		if s.inPartial {
			for i, p := range c.partial {
				if p == s {
					c.partial = append(c.partial[:i], c.partial[i+1:]...)
					break
				}
			}
		}
		delete(c.slabs, o.pageIdx)
		c.arena.FreePage(o.pageIdx)
		return
	}
	if !s.inPartial {
		s.inPartial = true
		c.partial = append(c.partial, s)
	}
}

// Live returns the number of outstanding objects.
func (c *SlabCache) Live() int { return c.live }

// ObjSize returns the object size.
func (c *SlabCache) ObjSize() int { return c.objSize }

// ObjectsPerSlab returns how many objects fit a page.
func (c *SlabCache) ObjectsPerSlab() int { return c.perSlab }
