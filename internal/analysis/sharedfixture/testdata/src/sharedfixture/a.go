// Fixture for the sharedfixture analyzer: a miniature of the
// experiments package's MapPoints job shape.
package sharedfixture

import "sync"

type Ctx struct{}

type Point struct{}

func MapPoints[T any](c *Ctx, n int, fn func(i int, pt *Point) T) []T {
	out := make([]T, n)
	for i := 0; i < n; i++ {
		out[i] = fn(i, &Point{})
	}
	return out
}

var (
	counter int
	table   []int
	config  = struct{ Size int }{}
	cells   = map[int]int{}
	once    sync.Once
)

// fixture is the sanctioned pattern: built exactly once under a
// sync.Once, read-only afterwards.
func fixture() []int {
	once.Do(func() {
		table = []int{1, 2, 3}
	})
	return table
}

// good jobs read fixtures and touch only their own stack.
func good(c *Ctx) []int {
	return MapPoints(c, 4, func(i int, _ *Point) int {
		local := fixture()[0]
		local++
		shadow := counter // reading package state is fine
		return local + shadow + i
	})
}

// bad jobs write package-level state directly.
func bad(c *Ctx) {
	MapPoints(c, 4, func(i int, _ *Point) int {
		counter++       // want `package-level state counter`
		table = nil     // want `package-level state table`
		config.Size = i // want `package-level state config`
		cells[i] = i    // want `package-level state cells`
		return i
	})
}

// helper writes state and is reachable from a job passed by name.
func helper(i int, _ *Point) int {
	counter += i // want `package-level state counter`
	return counter
}

func badByName(c *Ctx) []int {
	return MapPoints(c, 2, helper)
}

// Transitive reachability: job literal -> viaCall -> deepWrite.
func deepWrite() {
	counter = 0 // want `package-level state counter`
}

func viaCall(i int) int {
	deepWrite()
	return i
}

func badTransitive(c *Ctx) []int {
	return MapPoints(c, 2, func(i int, _ *Point) int {
		return viaCall(i)
	})
}

// Writes outside any pool job are not this analyzer's business.
func outsideJob() {
	counter = 42
	table = append(table, counter)
}

// A deliberate, justified write can be suppressed line-wise.
func suppressed(c *Ctx) {
	MapPoints(c, 1, func(i int, _ *Point) int {
		counter = i //pslint:ignore sharedfixture fixture exercises suppression
		return i
	})
}
