// Package callgraph is the pslint suite's shared call-graph machinery:
// an index from functions to their declarations across one or more
// type-checked packages, static callee resolution for direct calls, and
// a visited-once depth-first walker over every statement reachable from
// a root function or function literal.
//
// It generalizes the ad-hoc same-package call follower that used to
// live inside the sharedfixture analyzer: a Graph may hold several
// packages (the analyzers' cross-package fact passes feed it dependency
// packages loaded with full bodies), and the Walker's Visit/Follow
// hooks let each analyzer prune sanctioned subtrees (sync.Once builds,
// sim.Queue mediation) and restrict which call edges are followed.
//
// Resolution is purely static: direct calls of named functions and
// methods, including generic instantiations. Calls through interface
// methods, function-typed variables and fields are not resolvable and
// are reported to Follow with a nil callee so analyzers can account for
// the gap (the -race CI jobs backstop it at runtime).
package callgraph

import (
	"go/ast"
	"go/types"
)

// A Package couples one type-checked package with its syntax, the unit
// the Graph indexes. Info must cover the given files.
type Package struct {
	Types *types.Package
	Info  *types.Info
	Files []*ast.File
}

// A Graph indexes function declarations across a set of packages so
// walks can follow direct calls from package to package.
type Graph struct {
	pkgs  map[*types.Package]*Package
	decls map[*types.Func]*ast.FuncDecl
}

// New returns a Graph over the given packages.
func New(pkgs ...*Package) *Graph {
	g := &Graph{
		pkgs:  make(map[*types.Package]*Package),
		decls: make(map[*types.Func]*ast.FuncDecl),
	}
	for _, p := range pkgs {
		g.Add(p)
	}
	return g
}

// Add indexes one more package's declarations.
func (g *Graph) Add(p *Package) {
	if p == nil || p.Types == nil {
		return
	}
	g.pkgs[p.Types] = p
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
				g.decls[fn] = fd
			}
		}
	}
}

// Decl returns the declaration of fn if fn belongs to an indexed
// package, else nil.
func (g *Graph) Decl(fn *types.Func) *ast.FuncDecl { return g.decls[fn] }

// PackageOf returns the indexed package declaring fn, or nil.
func (g *Graph) PackageOf(fn *types.Func) *Package {
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	return g.pkgs[fn.Pkg()]
}

// StaticCallee resolves call's target to a *types.Func when it is a
// direct call of a named function or method (possibly a generic
// instantiation). It returns nil for closures bound to variables,
// interface methods, function-valued fields, and built-ins.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	switch f := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(f.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(f.X)
	}
	var id *ast.Ident
	switch f := fun.(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// A Walker performs a visited-once depth-first traversal of every
// function body reachable from one or more roots through direct calls.
// The zero value is not usable; set Graph (and optionally Visit and
// Follow) before calling Walk or WalkFunc. Visited state persists
// across roots: each named function's body is walked at most once per
// Walker, so flag-style analyzers dedupe work for free. Analyzers that
// need per-root attribution create one Walker per root.
type Walker struct {
	Graph *Graph

	// Visit is called for every node of every walked body, with the
	// package and function (nil for a root function literal) the body
	// belongs to, in ast.Inspect order. Returning false skips the
	// node's children — calls inside a skipped subtree are neither
	// visited nor followed, which is how analyzers prune sanctioned
	// patterns such as (*sync.Once).Do builds.
	Visit func(pkg *Package, fn *types.Func, n ast.Node) bool

	// Follow, if non-nil, gates call edges: it receives each call
	// expression the walk encounters together with its statically
	// resolved callee (nil when unresolvable) and reports whether to
	// descend into the callee's body. When Follow is nil every
	// resolvable callee with an indexed declaration is followed.
	Follow func(pkg *Package, fn *types.Func, call *ast.CallExpr, callee *types.Func) bool

	visited map[*types.Func]bool
}

// Walk traverses body, which belongs to fn (nil for a function literal)
// inside pkg, then recursively the bodies of followed callees.
func (w *Walker) Walk(pkg *Package, fn *types.Func, body ast.Node) {
	if body == nil {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if w.Visit != nil && n != nil && !w.Visit(pkg, fn, n) {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := StaticCallee(pkg.Info, call)
		if w.Follow != nil && !w.Follow(pkg, fn, call, callee) {
			return true // keep inspecting the call's arguments
		}
		w.WalkFunc(callee)
		return true
	})
}

// WalkFunc traverses the body of fn if fn has an indexed declaration
// and has not been walked by this Walker before.
func (w *Walker) WalkFunc(fn *types.Func) {
	if fn == nil || w.visited[fn] {
		return
	}
	decl := w.Graph.Decl(fn)
	pkg := w.Graph.PackageOf(fn)
	if decl == nil || decl.Body == nil || pkg == nil {
		return
	}
	if w.visited == nil {
		w.visited = make(map[*types.Func]bool)
	}
	w.visited[fn] = true
	w.Walk(pkg, fn, decl.Body)
}
