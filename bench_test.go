package packetshader_test

import (
	"fmt"
	"io"
	"testing"

	"packetshader"
	"packetshader/internal/cluster"
	"packetshader/internal/experiments"
	"packetshader/internal/sim"
)

// One benchmark per table/figure of the paper: each iteration regenerates
// the full table or figure on the simulated testbed. Run a single
// experiment with e.g.
//
//	go test -bench=BenchmarkFig11aIPv4 -benchtime=1x
//
// and inspect the regenerated rows with cmd/psbench.

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	// Pinned to one worker so the numbers stay an apples-to-apples
	// measure of the engine hot path across PRs, independent of how many
	// cores the bench host happens to have.
	for i := 0; i < b.N; i++ {
		if err := experiments.NewRunner(1).Run(io.Discard, id); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1PCIeTransfer regenerates Table 1 (PCIe transfer rates).
func BenchmarkTable1PCIeTransfer(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkKernelLaunch regenerates the §2.2 launch-latency numbers.
func BenchmarkKernelLaunch(b *testing.B) { benchExperiment(b, "launch") }

// BenchmarkFig2IPv6Lookup regenerates Figure 2 (lookup throughput vs
// batch size, CPU vs GPU).
func BenchmarkFig2IPv6Lookup(b *testing.B) { benchExperiment(b, "fig2") }

// BenchmarkTable3RxBreakdown regenerates Table 3 (skb RX cycle bins).
func BenchmarkTable3RxBreakdown(b *testing.B) { benchExperiment(b, "table3") }

// BenchmarkFig5Batch regenerates Figure 5 (batch-size sweep).
func BenchmarkFig5Batch(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig6PacketIO regenerates Figure 6 (engine RX/TX/forwarding).
func BenchmarkFig6PacketIO(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkNUMAPlacement regenerates the §4.5 NUMA comparison.
func BenchmarkNUMAPlacement(b *testing.B) { benchExperiment(b, "numa") }

// BenchmarkFig11aIPv4 regenerates Figure 11(a).
func BenchmarkFig11aIPv4(b *testing.B) { benchExperiment(b, "fig11a") }

// BenchmarkFig11bIPv6 regenerates Figure 11(b).
func BenchmarkFig11bIPv6(b *testing.B) { benchExperiment(b, "fig11b") }

// BenchmarkFig11cOpenFlow regenerates Figure 11(c).
func BenchmarkFig11cOpenFlow(b *testing.B) { benchExperiment(b, "fig11c") }

// BenchmarkFig11dIPsec regenerates Figure 11(d).
func BenchmarkFig11dIPsec(b *testing.B) { benchExperiment(b, "fig11d") }

// BenchmarkFig12Latency regenerates Figure 12 (latency vs offered load).
func BenchmarkFig12Latency(b *testing.B) { benchExperiment(b, "fig12") }

// BenchmarkAblationDesignChoices regenerates the §4-§5 ablations.
func BenchmarkAblationDesignChoices(b *testing.B) { benchExperiment(b, "ablation") }

// BenchmarkClusterVLB evaluates the §7 horizontal-scaling extension.
func BenchmarkClusterVLB(b *testing.B) { benchExperiment(b, "cluster") }

// BenchmarkFIBUpdate compares the §7 FIB-update strategies under churn.
func BenchmarkFIBUpdate(b *testing.B) { benchExperiment(b, "fibupdate") }

// BenchmarkRouterIPv4GPU measures a single CPU+GPU IPv4 run through the
// public API (Gbps is reported via the experiment tables; this measures
// simulation cost per virtual millisecond).
func BenchmarkRouterIPv4GPU(b *testing.B) {
	inst, err := packetshader.IPv4(20000, 1, packetshader.WithMode(packetshader.ModeGPU))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst.Run(1 * packetshader.Millisecond)
	}
}

// BenchmarkFabricWorkers measures the conservative-parallel cluster
// fabric (16 nodes, VLB, near-admissible load, 50 ms of virtual time)
// at 1, 2 and 8 partition workers. The result bytes are identical for
// every worker count — CI enforces that — so the ns/op spread is the
// pure core-scaling curve of the windowed world scheduler. On a
// single-core host the curve is flat; scripts/bench.sh records it with
// the host's core count in BENCH_PR10.json either way.
func BenchmarkFabricWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 8} {
		b.Run(fmt.Sprintf("p%d", workers), func(b *testing.B) {
			cfg := cluster.FabricConfig{
				Cluster: cluster.Config{
					Nodes:              16,
					ExternalGbps:       40,
					NodeForwardingGbps: 40,
					InternalLinkGbps:   10,
				},
				Scheme:      cluster.VLB,
				Matrix:      cluster.Uniform(16, 200),
				LinkLatency: 50 * sim.Microsecond,
				Horizon:     50 * sim.Millisecond,
				Seed:        7,
				Workers:     workers,
			}
			for i := 0; i < b.N; i++ {
				if _, err := cluster.RunFabric(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLeafSpineScale measures the leaf–spine fabric's host cost as
// the node count grows: 16, 64 and 128 leaves with a proportional spine
// tier, Zipf flows, 5 ms of virtual time, serial partition advance.
// This is the scale-frontier curve of the timer-wheel scheduler and the
// dirty-link window barrier — the 128-leaf row is a 144-partition world
// with 8,192 links.
func BenchmarkLeafSpineScale(b *testing.B) {
	for _, s := range []struct{ leaves, spines int }{{16, 4}, {64, 8}, {128, 16}} {
		b.Run(fmt.Sprintf("l%d", s.leaves), func(b *testing.B) {
			cfg := cluster.FabricConfig{
				Topo: &cluster.LeafSpine{
					Leaves: s.leaves, Spines: s.spines, Uplinks: 2,
					EdgeGbps: 40, LeafGbps: 40, SpineGbps: 160, UplinkGbps: 10,
				},
				Matrix:      cluster.Uniform(s.leaves, float64(s.leaves)*10),
				LinkLatency: 50 * sim.Microsecond,
				Horizon:     5 * sim.Millisecond,
				Seed:        2026,
				Workers:     1,
				Flows:       cluster.FlowModel{ZipfS: 1.1},
			}
			for i := 0; i < b.N; i++ {
				if _, err := cluster.RunFabric(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
