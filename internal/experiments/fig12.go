package experiments

import (
	"fmt"

	"packetshader/internal/apps"
	"packetshader/internal/core"
	"packetshader/internal/model"
	"packetshader/internal/packet"
	"packetshader/internal/pktgen"
	"packetshader/internal/sim"
)

// Fig12 regenerates Figure 12: average round-trip latency of IPv6
// forwarding (64B packets) versus the offered input traffic level, for
// (i) CPU-only without batching, (ii) CPU-only with batching, and
// (iii) CPU+GPU with batching and parallelization.
func Fig12() *Result { return runSolo(fig12) }

func fig12(c *Ctx) *Result {
	r := &Result{
		ID:     "fig12",
		Title:  "Average round-trip latency, IPv6 forwarding 64B (us)",
		Header: []string{"Offered Gbps", "CPU no-batch", "CPU batch", "CPU+GPU"},
	}
	entries, tbl := IPv6Fixture()

	measure := func(mode core.Mode, offered float64, tweak func(*core.Config)) float64 {
		env := sim.NewEnv()
		defer env.Close()
		cfg := core.DefaultConfig()
		cfg.Mode = mode
		cfg.PacketSize = 64
		cfg.OfferedGbpsPerPort = offered / float64(model.NumPorts)
		if tweak != nil {
			tweak(&cfg)
		}
		app := &apps.IPv6Fwd{Table: tbl, NumPorts: model.NumPorts}
		router := core.New(env, cfg, app)
		sink := pktgen.NewLatencySink()
		for _, p := range router.Engine.Ports {
			p.Tx.OnComplete = func(b *packet.Buf, at sim.Time) { sink.Observe(b, at) }
		}
		src := &pktgen.UDP6Source{Size: 64, Seed: 21, Table: entries}
		router.SetSource(src)
		router.Start()
		env.Run(sim.Time(6 * sim.Millisecond))
		return sink.MeanMicros()
	}

	offeredLevels := []float64{1, 4, 8, 12, 16, 20, 24, 28}
	// One job per (offered load, variant) cell — three independent
	// router worlds per row.
	vals := MapPoints(c, 3*len(offeredLevels), func(k int, _ *Point) float64 {
		offered := offeredLevels[k/3]
		switch k % 3 {
		case 0:
			return measure(core.ModeCPUOnly, offered, func(c *core.Config) {
				c.ChunkCap = 1
				c.IO.BatchCap = 1
			})
		case 1:
			return measure(core.ModeCPUOnly, offered, nil)
		default:
			return measure(core.ModeGPU, offered, nil)
		}
	})
	for i, offered := range offeredLevels {
		r.AddRow(fmt.Sprintf("%.0f", offered),
			fmt.Sprintf("%.0f", vals[3*i]), fmt.Sprintf("%.0f", vals[3*i+1]),
			fmt.Sprintf("%.0f", vals[3*i+2]))
	}
	r.Note("paper: batching LOWERS latency (less queueing); GPU adds overhead but stays 200-400 us")
	r.Note("elevated latency at the lightest load comes from NIC interrupt moderation (§6.4)")
	return r
}
