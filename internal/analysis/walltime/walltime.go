// Package walltime forbids host wall-clock time in the simulated stack.
//
// Every figure the benchmark harness reproduces is measured on
// internal/sim's virtual clock; a single time.Now or time.Sleep in a
// model or experiment couples results to host speed and turns a
// deterministic reproduction into machine-dependent noise. All timing
// under internal/ must go through sim.Time / sim.Duration /
// sim.Env.Now. The cmd/ front-ends may still report host time (the
// analyzer is marked InternalOnly, and the pslint driver scopes it).
package walltime

import (
	"go/ast"

	"packetshader/internal/analysis"
)

// forbidden are the package-level wall-clock entry points of package
// time. Pure conversions and constants (time.Duration, time.Millisecond,
// time.ParseDuration, ...) stay legal: they carry no host clock.
var forbidden = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"Since":     true,
	"Until":     true,
	"Tick":      true,
	"After":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
}

var Analyzer = &analysis.Analyzer{
	Name:         "walltime",
	Doc:          "forbid time.Now/Sleep/Since/... under internal/: all timing must use sim virtual time",
	InternalOnly: true,
	Run:          run,
}

func run(pass *analysis.Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
			return true
		}
		if !forbidden[obj.Name()] || pass.IsTestFile(id.Pos()) {
			return true
		}
		pass.Reportf(id.Pos(),
			"time.%s reads the host wall clock; simulated code must use sim virtual time (sim.Env.Now, Proc.Sleep)",
			obj.Name())
		return true
	})
	return nil
}
