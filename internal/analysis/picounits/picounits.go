// Package picounits flags bare numeric literals converted directly to
// sim.Duration or sim.Time.
//
// The virtual clock ticks in picoseconds, three decimal orders below
// the nanoseconds most people think in, so sim.Duration(500) reads as
// "500ns" but means 500ps — a 1000x modelling error that no test
// necessarily catches (the simulation still runs, just with absurd
// hardware). Writing the unit makes the magnitude explicit:
//
//	sim.Duration(500)        // BAD: 500 what?
//	500 * sim.Nanosecond     // GOOD
//	sim.DurationFromSeconds(5e-7) // GOOD
//
// Zero is exempt (sim.Duration(0) has no magnitude to get wrong), as
// are conversions of non-literal expressions, which are assumed to
// carry already-scaled picosecond values.
package picounits

import (
	"go/ast"
	"go/token"

	"packetshader/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "picounits",
	Doc:  "flag bare numeric literals converted to sim.Duration/sim.Time: write N * sim.Nanosecond etc. so the magnitude is explicit",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 || pass.IsTestFile(call.Pos()) {
			return true
		}
		// A conversion is a CallExpr whose Fun denotes a type.
		tv, ok := pass.TypesInfo.Types[call.Fun]
		if !ok || !tv.IsType() {
			return true
		}
		var unit string
		switch {
		case analysis.IsSimNamed(tv.Type, "Duration"):
			unit = "Duration"
		case analysis.IsSimNamed(tv.Type, "Time"):
			unit = "Time"
		default:
			return true
		}
		lit, neg := bareLiteral(call.Args[0])
		if lit == nil || isZero(lit) {
			return true
		}
		val := lit.Value
		if neg {
			val = "-" + val
		}
		pass.Reportf(call.Pos(),
			"bare literal sim.%s(%s): picosecond magnitude is implicit; write the unit (e.g. %s * sim.Nanosecond) or use sim.DurationFromSeconds",
			unit, val, val)
		return true
	})
	return nil
}

// bareLiteral unwraps parentheses and unary minus and returns the
// numeric literal being converted, if any.
func bareLiteral(e ast.Expr) (lit *ast.BasicLit, neg bool) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.SUB && x.Op != token.ADD {
				return nil, false
			}
			if x.Op == token.SUB {
				neg = !neg
			}
			e = x.X
		case *ast.BasicLit:
			if x.Kind == token.INT || x.Kind == token.FLOAT {
				return x, neg
			}
			return nil, false
		default:
			return nil, false
		}
	}
}

func isZero(lit *ast.BasicLit) bool {
	for _, c := range lit.Value {
		switch c {
		case '0', '.', 'x', 'X', 'o', 'O', 'b', 'B', '_':
		default:
			return false
		}
	}
	return true
}
