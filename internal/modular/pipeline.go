package modular

import (
	"fmt"

	"packetshader/internal/core"
	"packetshader/internal/hw/gpu"
)

// Pipeline is a compiled element graph implementing core.App: elements
// upstream of the GPU element run in pre-shading, the GPU element's
// kernel in the shading step, and everything downstream in
// post-shading. The unused edge "" drops packets.
type Pipeline struct {
	nodes map[string]*node
	entry string
	// gpuName is the offloadable element ("" = pure CPU pipeline).
	gpuName string
	gpuEl   GPUElement
}

// buildPipeline validates the graph: exactly one entry (an element with
// no incoming edges), at most one GPU element, and no cycles.
func buildPipeline(nodes map[string]*node, declOrder []string) (*Pipeline, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("modular: empty configuration")
	}
	incoming := map[string]int{}
	for _, n := range nodes {
		for _, to := range n.out {
			if to != "" {
				incoming[to]++
			}
		}
	}
	p := &Pipeline{nodes: nodes}
	for _, name := range declOrder {
		if incoming[name] == 0 {
			if p.entry != "" {
				return nil, fmt.Errorf("modular: multiple entry elements (%s and %s)", p.entry, name)
			}
			p.entry = name
		}
		if g, ok := nodes[name].el.(GPUElement); ok {
			if p.gpuName != "" {
				return nil, fmt.Errorf("modular: more than one GPU element (%s and %s); the framework runs one kernel at a time (§7)", p.gpuName, name)
			}
			p.gpuName = name
			p.gpuEl = g
		}
	}
	if p.entry == "" {
		return nil, fmt.Errorf("modular: no entry element (cycle?)")
	}
	// Cycle check: DFS.
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := map[string]int{}
	var visit func(string) error
	visit = func(name string) error {
		switch color[name] {
		case grey:
			return fmt.Errorf("modular: cycle through %s", name)
		case black:
			return nil
		}
		color[name] = grey
		for _, to := range nodes[name].out {
			if to == "" {
				continue
			}
			if err := visit(to); err != nil {
				return err
			}
		}
		color[name] = black
		return nil
	}
	if err := visit(p.entry); err != nil {
		return nil, err
	}
	return p, nil
}

// Entry returns the entry element's name.
func (p *Pipeline) Entry() string { return p.entry }

// ElementByName returns a declared element (for reading counters).
func (p *Pipeline) ElementByName(name string) Element {
	if n := p.nodes[name]; n != nil {
		return n.el
	}
	return nil
}

// pipeState carries the per-chunk context and the GPU element's pending
// input between the shading phases.
type pipeState struct {
	ctx     *Ctx
	gpuIdxs []int
}

// Name implements core.App.
func (p *Pipeline) Name() string { return "modular-pipeline" }

// Kernel implements core.App.
func (p *Pipeline) Kernel() *gpu.KernelSpec {
	if p.gpuEl != nil {
		return p.gpuEl.Kernel()
	}
	return &gpu.KernelSpec{Name: "cpu-only-pipeline"}
}

// run walks the graph from (name, idxs), stopping paths that reach the
// GPU element when stopAtGPU is set (collecting their indices).
func (p *Pipeline) run(st *pipeState, name string, idxs []int, stopAtGPU bool) float64 {
	if len(idxs) == 0 {
		return 0
	}
	if stopAtGPU && name == p.gpuName {
		st.gpuIdxs = append(st.gpuIdxs, idxs...)
		return 0
	}
	n := p.nodes[name]
	outs, cycles := n.el.Process(st.ctx, idxs)
	for k, outIdxs := range outs {
		if len(outIdxs) == 0 {
			continue
		}
		if k < len(n.out) && n.out[k] != "" {
			cycles += p.run(st, n.out[k], outIdxs, stopAtGPU)
		} else {
			// Unwired output: drop.
			for _, i := range outIdxs {
				st.ctx.Chunk.OutPorts[i] = -1
			}
		}
	}
	return cycles
}

// PreShade implements core.App: run the graph up to the GPU element.
func (p *Pipeline) PreShade(c *core.Chunk) core.PreResult {
	st := &pipeState{ctx: NewCtx(c)}
	c.State = st
	all := make([]int, len(c.Bufs))
	for i := range all {
		all[i] = i
		c.OutPorts[i] = -1
	}
	cycles := p.run(st, p.entry, all, p.gpuEl != nil)
	res := core.PreResult{CPUCycles: cycles}
	if p.gpuEl != nil && len(st.gpuIdxs) > 0 {
		res.Threads, res.InBytes, res.OutBytes, res.StreamBytes =
			p.gpuEl.Gather(st.ctx, st.gpuIdxs)
	}
	return res
}

// RunKernel implements core.App.
func (p *Pipeline) RunKernel(c *core.Chunk) {
	st := c.State.(*pipeState)
	if p.gpuEl != nil && len(st.gpuIdxs) > 0 {
		p.gpuEl.RunKernel(st.ctx, st.gpuIdxs)
	}
}

// PostShade implements core.App: resume the graph from the GPU element.
func (p *Pipeline) PostShade(c *core.Chunk) float64 {
	st := c.State.(*pipeState)
	if p.gpuEl == nil || len(st.gpuIdxs) == 0 {
		return 0
	}
	return p.run(st, p.gpuName, st.gpuIdxs, false)
}

// CPUWork implements core.App: the GPU element's work on the CPU.
func (p *Pipeline) CPUWork(c *core.Chunk) float64 {
	st := c.State.(*pipeState)
	if p.gpuEl == nil || len(st.gpuIdxs) == 0 {
		return 0
	}
	cycles := p.gpuEl.CPUCycles(st.ctx, st.gpuIdxs)
	p.gpuEl.RunKernel(st.ctx, st.gpuIdxs)
	return cycles
}
