// Package pcap writes and reads classic libpcap capture files
// (nanosecond variant), so traffic crossing the simulated router can be
// inspected with standard tools (tcpdump -r, Wireshark). A Tap hooks a
// TX port's completion callback and records each transmitted frame at
// its virtual transmission time.
package pcap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"packetshader/internal/packet"
	"packetshader/internal/sim"
)

// File format constants.
const (
	// MagicNanos is the nanosecond-resolution pcap magic.
	MagicNanos = 0xa1b23c4d
	// LinkTypeEthernet is DLT_EN10MB.
	LinkTypeEthernet = 1

	versionMajor = 2
	versionMinor = 4

	globalHeaderLen = 24
	recordHeaderLen = 16
)

// ErrBadMagic reports a file that is not a nanosecond pcap.
var ErrBadMagic = errors.New("pcap: bad magic")

// Writer emits a pcap stream.
type Writer struct {
	w        io.Writer
	snaplen  int
	wroteHdr bool
	// Packets counts records written.
	Packets uint64
}

// NewWriter creates a writer with the given snap length (0 = 65535).
func NewWriter(w io.Writer, snaplen int) *Writer {
	if snaplen <= 0 {
		snaplen = 65535
	}
	return &Writer{w: w, snaplen: snaplen}
}

func (w *Writer) writeHeader() error {
	var hdr [globalHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], MagicNanos)
	binary.LittleEndian.PutUint16(hdr[4:6], versionMajor)
	binary.LittleEndian.PutUint16(hdr[6:8], versionMinor)
	// thiszone, sigfigs zero.
	binary.LittleEndian.PutUint32(hdr[16:20], uint32(w.snaplen))
	binary.LittleEndian.PutUint32(hdr[20:24], LinkTypeEthernet)
	_, err := w.w.Write(hdr[:])
	w.wroteHdr = true
	return err
}

// WritePacket records one frame captured at virtual time at.
func (w *Writer) WritePacket(at sim.Time, frame []byte) error {
	if !w.wroteHdr {
		if err := w.writeHeader(); err != nil {
			return err
		}
	}
	ns := int64(at) / int64(sim.Nanosecond)
	sec := uint32(ns / 1e9)
	nsec := uint32(ns % 1e9)
	incl := len(frame)
	if incl > w.snaplen {
		incl = w.snaplen
	}
	var rec [recordHeaderLen]byte
	binary.LittleEndian.PutUint32(rec[0:4], sec)
	binary.LittleEndian.PutUint32(rec[4:8], nsec)
	binary.LittleEndian.PutUint32(rec[8:12], uint32(incl))
	binary.LittleEndian.PutUint32(rec[12:16], uint32(len(frame)))
	if _, err := w.w.Write(rec[:]); err != nil {
		return err
	}
	if _, err := w.w.Write(frame[:incl]); err != nil {
		return err
	}
	w.Packets++
	return nil
}

// Record is one captured packet.
type Record struct {
	At      sim.Time
	Data    []byte
	OrigLen int
}

// Reader parses a pcap stream written by Writer.
type Reader struct {
	r       io.Reader
	snaplen int
}

// NewReader validates the global header and returns a reader.
func NewReader(r io.Reader) (*Reader, error) {
	var hdr [globalHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != MagicNanos {
		return nil, ErrBadMagic
	}
	if lt := binary.LittleEndian.Uint32(hdr[20:24]); lt != LinkTypeEthernet {
		return nil, fmt.Errorf("pcap: unsupported link type %d", lt)
	}
	return &Reader{r: r, snaplen: int(binary.LittleEndian.Uint32(hdr[16:20]))}, nil
}

// Next returns the next record, or io.EOF.
func (r *Reader) Next() (Record, error) {
	var rec [recordHeaderLen]byte
	if _, err := io.ReadFull(r.r, rec[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return Record{}, io.EOF
		}
		return Record{}, err
	}
	sec := binary.LittleEndian.Uint32(rec[0:4])
	nsec := binary.LittleEndian.Uint32(rec[4:8])
	incl := binary.LittleEndian.Uint32(rec[8:12])
	orig := binary.LittleEndian.Uint32(rec[12:16])
	if int(incl) > r.snaplen {
		return Record{}, fmt.Errorf("pcap: record length %d exceeds snaplen %d", incl, r.snaplen)
	}
	data := make([]byte, incl)
	if _, err := io.ReadFull(r.r, data); err != nil {
		return Record{}, err
	}
	at := sim.Time(int64(sec)*1e9+int64(nsec)) * sim.Time(sim.Nanosecond)
	return Record{At: at, Data: data, OrigLen: int(orig)}, nil
}

// ReadAll drains the stream.
func (r *Reader) ReadAll() ([]Record, error) {
	var out []Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}

// Tap samples transmitted frames into a Writer. Attach Observe to a
// TxPort's OnComplete. SampleEvery downsamples (1 = every packet);
// Limit stops the capture after that many records (0 = unlimited).
type Tap struct {
	W           *Writer
	SampleEvery uint64
	Limit       uint64

	seen uint64
	// Err holds the first write error (captures are best-effort).
	Err error
}

// Observe records b if the sampling policy selects it.
func (t *Tap) Observe(b *packet.Buf, at sim.Time) {
	t.seen++
	every := t.SampleEvery
	if every == 0 {
		every = 1
	}
	if (t.seen-1)%every != 0 {
		return
	}
	if t.Limit > 0 && t.W.Packets >= t.Limit {
		return
	}
	if err := t.W.WritePacket(at, b.Data); err != nil && t.Err == nil {
		t.Err = err
	}
}
